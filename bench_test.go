package mtbase

// Benchmarks regenerating every table and figure of the paper's
// evaluation at laptop scale. One testing.B benchmark corresponds to one
// paper artifact; the mtbench CLI runs the same specs with configurable
// scale and prints the paper-style tables.
//
// Per-query micro benchmarks for the conversion-intensive queries the
// paper focuses on (Q1, Q6, Q22) expose individual (query, level) timings
// via sub-benchmarks.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mtbase/internal/bench"
	"mtbase/internal/client"
	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/server"
)

// benchSF keeps `go test -bench=.` tractable; mtbench -sf raises it.
const benchSF = 0.002

const benchTenants = 5

func runTable(b *testing.B, number int) {
	spec, err := bench.TableSpec(number, benchSF, benchTenants)
	if err != nil {
		b.Fatal(err)
	}
	spec.Repeats = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunOptLevels(spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 — optimization levels, PostgreSQL mode, C=1, D={1}.
func BenchmarkTable3(b *testing.B) { runTable(b, 3) }

// BenchmarkTable4 — optimization levels, PostgreSQL mode, C=1, D={2}.
func BenchmarkTable4(b *testing.B) { runTable(b, 4) }

// BenchmarkTable5 — optimization levels, PostgreSQL mode, C=1, D=all.
func BenchmarkTable5(b *testing.B) { runTable(b, 5) }

// BenchmarkTable7 — optimization levels, System C mode, C=1, D={1}.
func BenchmarkTable7(b *testing.B) { runTable(b, 7) }

// BenchmarkTable8 — optimization levels, System C mode, C=1, D={2}.
func BenchmarkTable8(b *testing.B) { runTable(b, 8) }

// BenchmarkTable9 — optimization levels, System C mode, C=1, D=all.
func BenchmarkTable9(b *testing.B) { runTable(b, 9) }

func runFigure(b *testing.B, number int) {
	spec, err := bench.FigureSpec(number, benchSF, []int{1, 5, 25})
	if err != nil {
		b.Fatal(err)
	}
	spec.Repeats = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunScaling(spec, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5 — tenant scaling of Q1/Q6/Q22, PostgreSQL mode.
func BenchmarkFigure5(b *testing.B) { runFigure(b, 5) }

// BenchmarkFigure6 — tenant scaling of Q1/Q6/Q22, System C mode.
func BenchmarkFigure6(b *testing.B) { runFigure(b, 6) }

// BenchmarkQuery measures the conversion-intensive queries per
// optimization level on a shared instance (PostgreSQL mode, D = all).
func BenchmarkQuery(b *testing.B) {
	cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	db := inst.Srv.DB()
	for _, id := range []int{1, 6, 22} {
		q, err := mth.QueryByID(cfg.SF, id)
		if err != nil {
			b.Fatal(err)
		}
		for _, level := range []optimizer.Level{
			optimizer.Canonical, optimizer.O1, optimizer.O2,
			optimizer.O3, optimizer.O4, optimizer.InlOnly,
		} {
			b.Run(q.Name+"/"+level.String(), func(b *testing.B) {
				b.ReportAllocs()
				conn.SetOptLevel(level)
				db.Stats = engine.Stats{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mth.RunOnMT(conn, q); err != nil {
						b.Fatal(err)
					}
				}
				// Streaming-executor counters: rows moved between operators
				// per execution, and the largest batch any operator emitted.
				// A jump in rows_streamed/op (or peak_batch past the batch
				// size) flags accidental materialization.
				b.ReportMetric(float64(db.Stats.RowsStreamed)/float64(b.N), "rows_streamed/op")
				b.ReportMetric(float64(db.Stats.PeakBatch), "peak_batch")
			})
		}
	}
}

// BenchmarkQuerySpill measures the memory-bound execution path: Q1 (wide
// grouped aggregation) and Q18 (join + group + sort over the largest
// intermediate) at the unlimited default, a 1MB cap and a 64KB cap. The
// capped runs overflow sort buffers, group tables and join builds to
// disk; spill_runs/op, spill_mb/op and peak_mem_bytes report how much of
// each statement went through the external path. The unlimited row is the
// latency baseline — no accountant is armed there, so its memory metrics
// read zero by design.
func BenchmarkQuerySpill(b *testing.B) {
	cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	db := inst.Srv.DB()
	db.SetSpillDir(b.TempDir())
	defer db.SetSpillDir("")
	defer db.SetMemoryLimit(0)
	for _, id := range []int{1, 18} {
		q, err := mth.QueryByID(cfg.SF, id)
		if err != nil {
			b.Fatal(err)
		}
		for _, lim := range []struct {
			name  string
			bytes int64
		}{{"unlimited", 0}, {"mem1MB", 1 << 20}, {"mem64KB", 64 << 10}} {
			b.Run(fmt.Sprintf("%s/%s", q.Name, lim.name), func(b *testing.B) {
				db.SetMemoryLimit(lim.bytes)
				// Warm plan and UDF caches so the series compares execution.
				if _, err := mth.RunOnMT(conn, q); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				db.Stats = engine.Stats{}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mth.RunOnMT(conn, q); err != nil {
						b.Fatal(err)
					}
				}
				st := db.Stats.Snapshot()
				b.ReportMetric(float64(st.SpillRuns)/float64(b.N), "spill_runs/op")
				b.ReportMetric(float64(st.SpillBytes)/float64(b.N)/(1<<20), "spill_mb/op")
				b.ReportMetric(float64(st.PeakMemBytes), "peak_mem_bytes")
			})
		}
	}
}

// BenchmarkQueryPlanCache isolates per-statement planning cost on the
// conversion-heavy Q1 at the canonical level (the worst-case statement
// text the rewrite emits). "cold" drops the middleware statement caches and
// the engine plan cache before every execution, so each iteration pays
// parse + rewrite + optimize + serialize + reparse + lowering; "warm" reuses
// the cached plan and reports the plan-cache hit rate as a custom metric so
// BENCH_*.json records that the cache actually served the runs.
func BenchmarkQueryPlanCache(b *testing.B) {
	cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	conn.SetOptLevel(optimizer.Canonical)
	q, err := mth.QueryByID(cfg.SF, 1)
	if err != nil {
		b.Fatal(err)
	}
	db := inst.Srv.DB()
	// Planning only — no execution: client parse + rewrite + optimize +
	// serialize + engine parse + lowering analysis. The cold/warm delta IS
	// the per-statement planning cost the cache eliminates.
	rewritten, err := conn.RewriteSQL(q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	txt := rewritten.String()
	b.Run("q1-canonical-plan-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst.Srv.InvalidateStatementCaches()
			rw, err := conn.RewriteSQL(q.SQL)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := db.Prepare(rw.String()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("q1-canonical-plan-warm", func(b *testing.B) {
		if _, err := db.Prepare(txt); err != nil {
			b.Fatal(err)
		}
		db.Stats = engine.Stats{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := db.Prepare(txt); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.Stats.PlanCacheHits)/float64(b.N), "plan_hits/op")
		b.ReportMetric(float64(db.Stats.PlanCacheMisses)/float64(b.N), "plan_misses/op")
	})
	// End-to-end: the same statement with execution included.
	b.Run("q1-canonical-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			inst.Srv.InvalidateStatementCaches()
			if _, err := mth.RunOnMT(conn, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("q1-canonical-warm", func(b *testing.B) {
		if _, err := mth.RunOnMT(conn, q); err != nil {
			b.Fatal(err)
		}
		db.Stats = engine.Stats{}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := mth.RunOnMT(conn, q); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(db.Stats.PlanCacheHits)/float64(b.N), "plan_hits/op")
		b.ReportMetric(float64(db.Stats.PlanCacheMisses)/float64(b.N), "plan_misses/op")
	})
}

// BenchmarkQueryParam measures the conversion-intensive queries with
// literal-varying workloads: each iteration runs a *distinct* binding.
// "binds" executes one prepared, parameterized text (every execution after
// the first hits the rewrite and plan caches — param_hits/op reports the
// engine plan-cache hit rate); "inlined" serializes the same values as
// literals, so every iteration is a byte-distinct text that misses every
// cache. The delta is the planning cost this API removes from realistic
// traffic.
func BenchmarkQueryParam(b *testing.B) {
	cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	db := inst.Srv.DB()
	for _, pq := range mth.ParamQueries() {
		st, err := conn.Prepare(pq.SQL)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Q%02d/binds", pq.ID), func(b *testing.B) {
			// Warm the caches once so param_hits/op reports the steady state
			// (every measured execution is a hit) independent of benchtime.
			if _, err := st.QueryResult(pq.Args(0)...); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			db.Stats = engine.Stats{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.QueryResult(pq.Args(i + 1)...); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(db.Stats.PlanCacheHits)/float64(b.N), "param_hits/op")
		})
		b.Run(fmt.Sprintf("Q%02d/inlined", pq.ID), func(b *testing.B) {
			b.ReportAllocs()
			db.Stats = engine.Stats{}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Query(pq.Inlined(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(db.Stats.PlanCacheHits)/float64(b.N), "param_hits/op")
		})
	}
}

// BenchmarkQueryScaling measures intra-query parallel speedup: Q1 at the
// canonical level (the conversion-heavy worst case) on a dataset large
// enough for the morsel paths to engage, at 1/2/4/8 workers. The par1
// sub-benchmark is the serial oracle; the ns/op ratio across the series is
// the scaling curve bench.sh records into BENCH_*.json.
func BenchmarkQueryScaling(b *testing.B) {
	// Bigger than benchSF so every parallel operator (scan filter,
	// aggregate columns, join builds, sort runs) clears the 2-morsel
	// threshold at the default morsel size.
	cfg := mth.Config{SF: 0.02, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	conn.SetOptLevel(optimizer.Canonical)
	db := inst.Srv.DB()
	defer db.SetParallelism(0)
	q, err := mth.QueryByID(cfg.SF, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("q1-canonical/par%d", par), func(b *testing.B) {
			db.SetParallelism(par)
			// Warm plan and UDF caches so the series compares execution.
			if _, err := mth.RunOnMT(conn, q); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := mth.RunOnMT(conn, q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(par), "workers")
		})
	}
}

// BenchmarkShardScaling measures the conversion-intensive queries (Q1, Q6,
// Q22) over tenant-partitioned engine shards at 1/2/4/8 shards, cross-tenant
// scope, O4. The shards1 series is the unsharded-equivalent oracle (the
// router passes statements straight through); the ns/op trajectory across
// the series prices D′-routed scatter/gather — partial-agg pushdown for
// Q1/Q6, ordered gather and the repartition fallback for Q22. One dataset
// is generated once and re-partitioned per shard count, so every series
// answers over identical rows.
func BenchmarkShardScaling(b *testing.B) {
	cfg := mth.Config{SF: 0.01, Tenants: 16, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	data := mth.Generate(cfg)
	for _, nshards := range []int{1, 2, 4, 8} {
		inst, err := mth.LoadMTSharded(data, nshards)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.GrantReadTo(1); err != nil {
			b.Fatal(err)
		}
		conn, err := inst.Connect(1, "IN ()")
		if err != nil {
			b.Fatal(err)
		}
		conn.SetOptLevel(optimizer.O4)
		for _, id := range []int{1, 6, 22} {
			q, err := mth.QueryByID(cfg.SF, id)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/shards%d", q.Name, nshards), func(b *testing.B) {
				// Warm plan and UDF caches on every shard so the series
				// compares execution, not first-touch planning.
				if _, err := mth.RunOnMT(conn, q); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := mth.RunOnMT(conn, q); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(nshards), "shards")
			})
		}
	}
}

// BenchmarkMixedReadWrite measures read throughput while writers commit
// continuously: background goroutines insert into and update a side table
// (publishing fresh table snapshots under DB.mu) while the measured loop
// runs parallel aggregate scans over lineitem and advances an open cursor
// pinned before the writes began. Reported metrics: qps (measured reads
// per second), read latency p50/p99 in milliseconds, and the write commits
// per second that overlapped them — the snapshot-isolation concurrency
// story in one number set.
func BenchmarkMixedReadWrite(b *testing.B) {
	cfg := mth.Config{SF: 0.01, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	db := inst.Srv.DB()
	defer db.SetParallelism(0)
	db.SetParallelism(4)
	if _, err := db.ExecSQL(`CREATE TABLE bench_audit (id INTEGER NOT NULL, v INTEGER NOT NULL)`); err != nil {
		b.Fatal(err)
	}
	q, err := mth.QueryByID(cfg.SF, 6)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := mth.RunOnMT(conn, q); err != nil { // warm caches
		b.Fatal(err)
	}

	// Cursor pinned before any writer commits; advanced between reads and
	// drained after the writers stop — it must still see its snapshot.
	cursor, err := db.QueryRows(`SELECT l_orderkey FROM lineitem`)
	if err != nil {
		b.Fatal(err)
	}
	defer cursor.Close()

	stop := make(chan struct{})
	var writes int64
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.ExecSQL(fmt.Sprintf(`INSERT INTO bench_audit VALUES (%d, %d)`, w*1_000_000+i, i)); err != nil {
					b.Error(err)
					return
				}
				if i%8 == 0 {
					if _, err := db.ExecSQL(fmt.Sprintf(`UPDATE bench_audit SET v = v + 1 WHERE id %% 13 = %d`, i%13)); err != nil {
						b.Error(err)
						return
					}
				}
				atomic.AddInt64(&writes, 1)
			}
		}(w)
	}

	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if _, err := mth.RunOnMT(conn, q); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
		if !cursor.Next() {
			b.Fatal("open cursor exhausted early or failed:", cursor.Err())
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		if len(lat) == 0 {
			return 0
		}
		idx := int(p * float64(len(lat)-1))
		return float64(lat[idx].Nanoseconds()) / 1e6
	}
	b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
	b.ReportMetric(pct(0.50), "p50_ms")
	b.ReportMetric(pct(0.99), "p99_ms")
	b.ReportMetric(float64(writes)/elapsed.Seconds(), "writes_per_sec")
}

// BenchmarkRewrite isolates the middleware's own cost: parse + canonical
// rewrite + optimization of Q1 without execution (the paper argues this
// overhead is negligible compared to execution).
func BenchmarkRewrite(b *testing.B) {
	cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		b.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		b.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		b.Fatal(err)
	}
	q, err := mth.QueryByID(cfg.SF, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []optimizer.Level{optimizer.Canonical, optimizer.O4} {
		b.Run(level.String(), func(b *testing.B) {
			b.ReportAllocs()
			conn.SetOptLevel(level)
			for i := 0; i < b.N; i++ {
				if _, err := conn.RewriteSQL(q.SQL); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// serveBench lazily starts one wire server over the benchmark dataset,
// shared by every BenchmarkServe sub-benchmark.
var serveBench struct {
	once sync.Once
	addr string
	err  error
	stop func()
}

func serveBenchAddr(b *testing.B) string {
	serveBench.once.Do(func() {
		cfg := mth.Config{SF: benchSF, Tenants: benchTenants, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
		inst, err := mth.LoadMT(mth.Generate(cfg))
		if err != nil {
			serveBench.err = err
			return
		}
		if err := inst.GrantReadTo(1); err != nil {
			serveBench.err = err
			return
		}
		srv := server.New(inst.Srv, nil, server.Config{})
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			serveBench.err = err
			return
		}
		serveBench.addr = bound.String()
		serveBench.stop = func() { srv.Shutdown(context.Background()) }
	})
	if serveBench.err != nil {
		b.Fatal(serveBench.err)
	}
	return serveBench.addr
}

// BenchmarkServe measures Q6 over the mtserve wire protocol — a real TCP
// loopback round trip per execution — one sub-benchmark per optimization
// level. Reported metrics mirror BenchmarkMixedReadWrite: qps, p50_ms and
// p99_ms, so bench.sh records the wire numbers on the same JSON trajectory
// and the in-process numbers beside them put a price on the network hop.
func BenchmarkServe(b *testing.B) {
	addr := serveBenchAddr(b)
	q, err := mth.QueryByID(benchSF, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range optimizer.Levels {
		b.Run(level.String(), func(b *testing.B) {
			conn, err := client.Dial(addr, 1, level.String())
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Exec(`SET SCOPE = "IN ()"`); err != nil {
				b.Fatal(err)
			}
			if _, err := conn.Query(q.SQL); err != nil { // warm caches
				b.Fatal(err)
			}
			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				t0 := time.Now()
				if _, err := conn.Query(q.SQL); err != nil {
					b.Fatal(err)
				}
				lat = append(lat, time.Since(t0))
			}
			elapsed := time.Since(start)
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			pct := func(p float64) float64 {
				if len(lat) == 0 {
					return 0
				}
				return float64(lat[int(p*float64(len(lat)-1))].Nanoseconds()) / 1e6
			}
			b.ReportMetric(float64(b.N)/elapsed.Seconds(), "qps")
			b.ReportMetric(pct(0.50), "p50_ms")
			b.ReportMetric(pct(0.99), "p99_ms")
		})
	}
}
