// Command mtserve runs the MTBase network server: an MT-H instance served
// over TCP with per-tenant sessions, admission control and (with -data)
// write-ahead logged durability.
//
//	mtserve -addr :7687 -sf 0.01 -tenants 5                 # ephemeral
//	mtserve -data /var/lib/mtbase -snapshot-every 4096      # durable
//	mtserve -data dir -rate 100 -inflight 4 -tenant-conns 8 # admission limits
//	mtserve -shards 4 -sf 0.01 -tenants 16                  # tenant-partitioned
//
// With -data, the first start writes MANIFEST.json and an empty WAL; later
// starts recover the exact acknowledged state by rebuilding the manifest's
// deterministic base instance, installing the newest heap snapshot and
// replaying the WAL tail. SIGINT/SIGTERM shut down gracefully: in-flight
// statements finish, new ones are refused, the WAL is synced.
//
// Connect with mtsh -connect host:port, or programmatically via
// internal/client.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", fmt.Sprintf(":%d", 7687), "listen address")
		sf        = flag.Float64("sf", 0.01, "MT-H scale factor")
		tenants   = flag.Int("tenants", 5, "number of tenants")
		dist      = flag.String("dist", "uniform", "tenant size distribution (uniform|zipf)")
		seed      = flag.Int64("seed", 42, "data generator seed")
		mode      = flag.String("mode", "postgres", "engine mode (postgres|system-c)")
		grantAll  = flag.Bool("grant-all", true, "grant every tenant read access to every tenant (the paper's evaluation setup)")
		data      = flag.String("data", "", "durability directory (empty = ephemeral, no WAL)")
		snapEvery = flag.Int("snapshot-every", 4096, "records between automatic snapshots (0 disables)")
		shards    = flag.Int("shards", 1, "number of tenant-partitioned engine shards (1 = unsharded)")

		maxConns    = flag.Int("max-conns", 0, "max concurrent connections (0 = unlimited)")
		tenantConns = flag.Int("tenant-conns", 0, "max concurrent connections per tenant (0 = unlimited)")
		rate        = flag.Float64("rate", 0, "statement rate limit per tenant, statements/sec (0 = unlimited)")
		burst       = flag.Int("burst", 0, "statement rate burst (0 = ceil(rate))")
		inflight    = flag.Int("inflight", 0, "max in-flight statements per tenant (0 = unlimited)")
		stmtWait    = flag.Duration("wait", time.Second, "longest a rate-limited statement waits for a token")

		memLimit    = flag.Int64("memlimit", 0, "engine memory budget in bytes (0 = unlimited)")
		spillDir    = flag.String("spill-dir", "", "spill directory (default: system temp)")
		parallelism = flag.Int("parallelism", 0, "engine worker count (0 = GOMAXPROCS)")
		drain       = flag.Duration("drain", 15*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("mtserve: ")

	man := server.Manifest{
		SF: *sf, Tenants: *tenants, Dist: *dist, Seed: *seed, Mode: *mode, GrantAll: *grantAll,
	}

	limits := server.Limits{
		MaxConns: *maxConns, TenantConns: *tenantConns,
		StmtRate: *rate, StmtBurst: *burst,
		TenantInflight: *inflight, MaxStmtWait: *stmtWait,
	}

	if *shards > 1 {
		if *data != "" {
			log.Fatal("-shards and -data are mutually exclusive: durability is an unsharded-tier feature")
		}
		cfg, err := man.Config()
		if err != nil {
			log.Fatal(err)
		}
		sinst, err := mth.BuildMTSharded(cfg, *shards)
		if err != nil {
			log.Fatal(err)
		}
		if *grantAll {
			for t := int64(1); t <= int64(cfg.Tenants); t++ {
				if err := sinst.GrantReadTo(t); err != nil {
					log.Fatal(err)
				}
			}
		}
		dbs := make([]*engine.DB, 0, *shards+1)
		for _, mw := range sinst.Srv.Shards() {
			dbs = append(dbs, mw.DB())
		}
		dbs = append(dbs, sinst.Srv.Replica().DB())
		for _, db := range dbs {
			if *memLimit > 0 {
				db.SetMemoryLimit(*memLimit)
			}
			if *spillDir != "" {
				db.SetSpillDir(*spillDir)
			}
			if *parallelism > 0 {
				db.SetParallelism(*parallelism)
			}
		}
		log.Printf("sharded: shards=%d sf=%g tenants=%d mode=%s", *shards, *sf, *tenants, *mode)
		srv := server.NewSharded(sinst.Srv, server.Config{
			AdminTenant: mth.ModellerTTID, Limits: limits,
		})
		serveUntilSignal(srv, *addr, *drain)
		return
	}

	var (
		inst  *mth.Instance
		store *server.Store
	)
	if *data != "" {
		st, err := server.OpenStore(*data, man, *snapEvery)
		if err != nil {
			log.Fatal(err)
		}
		store = st
		inst = st.Instance()
		eff := st.Manifest()
		log.Printf("durable: dir=%s sf=%g tenants=%d mode=%s recovered=%d records (lsn %d)",
			*data, eff.SF, eff.Tenants, eff.Mode, st.Recovered(), st.LastLSN())
	} else {
		cfg, err := man.Config()
		if err != nil {
			log.Fatal(err)
		}
		inst, err = mth.BuildMT(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if *grantAll {
			for t := int64(1); t <= int64(cfg.Tenants); t++ {
				if err := inst.GrantReadTo(t); err != nil {
					log.Fatal(err)
				}
			}
		}
		log.Printf("ephemeral: sf=%g tenants=%d mode=%s", *sf, *tenants, *mode)
	}

	db := inst.Srv.DB()
	if *memLimit > 0 {
		db.SetMemoryLimit(*memLimit)
	}
	if *spillDir != "" {
		db.SetSpillDir(*spillDir)
	}
	if *parallelism > 0 {
		db.SetParallelism(*parallelism)
	}

	srv := server.New(inst.Srv, store, server.Config{
		AdminTenant: mth.ModellerTTID, Limits: limits,
	})
	serveUntilSignal(srv, *addr, *drain)
}

// serveUntilSignal listens, blocks for SIGINT/SIGTERM, then drains.
func serveUntilSignal(srv *server.Server, addr string, drain time.Duration) {
	bound, err := srv.Listen(addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", bound)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigc
	log.Printf("%s: draining (timeout %s)", sig, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	log.Printf("clean shutdown")
}
