// Command mtlint runs the project's static-analysis suite (internal/lint)
// over the named package patterns and exits non-zero on findings — the
// multichecker that gates CI:
//
//	go run ./cmd/mtlint ./...
//
// Each analyzer mechanizes one engine invariant (DESIGN.md ADR-007);
// intentional exceptions carry //mtlint:ignore <analyzer> <reason>
// annotations in the source. Exit status: 0 clean, 1 findings, 2 the
// analysis itself failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtbase/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mtlint [-list] [-only name,name] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "mtlint: unknown analyzer %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	n, err := lint.Run(os.Stdout, ".", analyzers, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtlint: %v\n", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "mtlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
