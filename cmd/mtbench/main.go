// Command mtbench regenerates the paper's evaluation artifacts: Tables
// 3–5 and 7–9 (response times of the 22 MT-H queries per optimization
// level) and Figures 5–6 (tenant scaling of Q1/Q6/Q22), at a configurable
// scale factor.
//
// Examples:
//
//	mtbench -table 3                 # one table at the default scale
//	mtbench -table 3,4,5 -sf 0.05    # the PostgreSQL-mode tables, bigger
//	mtbench -figure 5 -tenants 1,10,100,1000
//	mtbench -all                     # everything (takes a while)
//	mtbench -table 3 -parallelism 4  # intra-query parallel scans
//	mtbench -table 5 -shards 4       # tenant-partitioned scatter/gather
//	mtbench -table 3 -memlimit 64KB  # bounded memory: statements spill to disk
//	mtbench -mixed -concurrency 4 -parallelism 2 -ops 200
//	mtbench -serve -concurrency 4 -ops 100
//	mtbench -serve -serve-addr localhost:7687
//
// The -mixed mode measures read throughput (qps, p50/p99 latency) while
// background writers commit continuously — the copy-on-write snapshot
// concurrency demonstration. The -serve mode measures the same shape of
// numbers per optimization level over the mtserve wire protocol (a TCP
// loopback server by default, or a running server with -serve-addr),
// putting a price on the network hop.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mtbase/internal/bench"
	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
)

func main() {
	var (
		tables      = flag.String("table", "", "comma-separated paper table numbers (3,4,5,7,8,9)")
		figures     = flag.String("figure", "", "comma-separated paper figure numbers (5,6)")
		all         = flag.Bool("all", false, "run every table and figure")
		sf          = flag.Float64("sf", 0.01, "TPC-H scale factor")
		tenants     = flag.Int("T", 10, "number of tenants for the tables")
		tcounts     = flag.String("tenants", "1,10,100,1000", "tenant counts for the figures")
		dist        = flag.String("dist", "", "override tenant share distribution (uniform|zipf)")
		repeats     = flag.Int("repeats", 2, "measurement repetitions; the last is reported")
		queries     = flag.String("queries", "", "restrict to comma-separated query ids")
		progress    = flag.Bool("progress", false, "print per-measurement progress")
		printBatch  = flag.Bool("print-batch-size", false, "print the engine's execution batch size and exit")
		noPlanCache = flag.Bool("no-plan-cache", false, "disable the statement plan caches (A/B the pre-cache behaviour)")
		parallelism = flag.Int("parallelism", 0, "intra-query worker count (0 = engine default GOMAXPROCS, 1 = serial)")
		shards      = flag.Int("shards", 1, "tenant-partitioned engine shards for tables/figures (1 = unsharded)")
		memlimit    = flag.String("memlimit", "", "per-statement memory cap, e.g. 64KB, 1MB (empty = unlimited; capped statements spill to disk)")
		mixed       = flag.Bool("mixed", false, "run the mixed read/write throughput mode")
		concurrency = flag.Int("concurrency", 1, "concurrent reader connections for -mixed/-serve")
		writers     = flag.Int("writers", 2, "background writer goroutines for -mixed")
		ops         = flag.Int("ops", 64, "total measured reads for -mixed (per level for -serve)")
		level       = flag.String("level", "o4", "optimization level for -mixed")
		mixedQuery  = flag.Int("mixed-query", 6, "measured query id for -mixed/-serve")
		serve       = flag.Bool("serve", false, "run the wire-protocol throughput mode (per optimization level, over TCP)")
		serveAddr   = flag.String("serve-addr", "", "benchmark a running mtserve at host:port instead of an in-process loopback server")
	)
	flag.Parse()

	if *printBatch {
		fmt.Println(engine.BatchSize)
		return
	}

	var memBytes int64
	if *memlimit != "" {
		var err error
		if memBytes, err = engine.ParseMemLimit(*memlimit); err != nil {
			fatal(err)
		}
	}

	if *serve {
		spec := bench.ServeSpec{
			SF: *sf, Tenants: *tenants, Mode: engine.ModePostgres,
			QueryID: *mixedQuery, Concurrency: *concurrency, Ops: *ops,
			Parallelism: *parallelism, Addr: *serveAddr,
		}
		if *dist != "" {
			spec.Dist = mth.Distribution(*dist)
		}
		var progressW io.Writer
		if *progress {
			progressW = os.Stderr
		}
		res, err := bench.RunServe(spec, progressW)
		if err != nil {
			fatal(err)
		}
		res.WriteServe(os.Stdout)
		return
	}

	if *mixed {
		lv, err := optimizer.ParseLevel(*level)
		if err != nil {
			fatal(err)
		}
		spec := bench.MixedSpec{
			SF: *sf, Tenants: *tenants, Mode: engine.ModePostgres, Level: lv,
			QueryID: *mixedQuery, Concurrency: *concurrency,
			Parallelism: *parallelism, Writers: *writers, Ops: *ops,
			MemLimit: memBytes,
		}
		if *dist != "" {
			spec.Dist = mth.Distribution(*dist)
		}
		var progressW io.Writer
		if *progress {
			progressW = os.Stderr
		}
		res, err := bench.RunMixed(spec, progressW)
		if err != nil {
			fatal(err)
		}
		res.WriteMixed(os.Stdout)
		return
	}

	tableNums, err := parseInts(*tables)
	if err != nil {
		fatal(err)
	}
	figureNums, err := parseInts(*figures)
	if err != nil {
		fatal(err)
	}
	if *all {
		tableNums = []int{3, 4, 5, 7, 8, 9}
		figureNums = []int{5, 6}
	}
	if len(tableNums) == 0 && len(figureNums) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	queryIDs, err := parseInts(*queries)
	if err != nil {
		fatal(err)
	}
	tenantCounts, err := parseInts(*tcounts)
	if err != nil {
		fatal(err)
	}
	var progressW io.Writer
	if *progress {
		progressW = os.Stderr
	}

	for _, n := range tableNums {
		spec, err := bench.TableSpec(n, *sf, *tenants)
		if err != nil {
			fatal(err)
		}
		spec.Repeats = *repeats
		spec.Queries = queryIDs
		spec.NoPlanCache = *noPlanCache
		spec.Parallelism = *parallelism
		spec.MemLimit = memBytes
		spec.Shards = *shards
		if *dist != "" {
			spec.Dist = mth.Distribution(*dist)
		}
		res, err := bench.RunOptLevels(spec, progressW)
		if err != nil {
			fatal(err)
		}
		res.WriteTable(os.Stdout)
		fmt.Println()
	}
	for _, n := range figureNums {
		spec, err := bench.FigureSpec(n, *sf, tenantCounts)
		if err != nil {
			fatal(err)
		}
		spec.Repeats = *repeats
		spec.Parallelism = *parallelism
		spec.MemLimit = memBytes
		spec.Shards = *shards
		if len(queryIDs) > 0 {
			spec.QueryIDs = queryIDs
		}
		if *dist != "" {
			spec.Dist = mth.Distribution(*dist)
		}
		res, err := bench.RunScaling(spec, progressW)
		if err != nil {
			fatal(err)
		}
		res.WriteFigure(os.Stdout)
		fmt.Println()
	}
}

func parseInts(csv string) ([]int, error) {
	if strings.TrimSpace(csv) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtbench:", err)
	os.Exit(1)
}
