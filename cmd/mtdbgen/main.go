// Command mtdbgen generates an MT-H dataset (§5) and writes it as CSV
// files — the MT-H counterpart of TPC-H's dbgen. Tenant-specific tables
// carry a leading ttid column and hold values in each owner's currency /
// phone format; the conversion meta tables (Tenant, CurrencyTransform,
// PhoneTransform) are emitted alongside.
//
// Example:
//
//	mtdbgen -sf 0.1 -tenants 100 -dist zipf -dir ./out
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/sqltypes"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.01, "TPC-H scale factor")
		tenants = flag.Int("tenants", 10, "number of tenants T")
		dist    = flag.String("dist", "uniform", "tenant share distribution (uniform|zipf)")
		seed    = flag.Int64("seed", 42, "generator seed")
		dir     = flag.String("dir", ".", "output directory")
	)
	flag.Parse()

	cfg := mth.Config{SF: *sf, Tenants: *tenants, Dist: mth.Distribution(*dist),
		Seed: *seed, Mode: engine.ModePostgres}
	d := mth.Generate(cfg)

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	write := func(name string, rows [][]sqltypes.Value, tenantsOf []int64, convert func([]sqltypes.Value, int64) []sqltypes.Value) {
		f, err := os.Create(filepath.Join(*dir, name+".csv"))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		defer w.Flush()
		for i, row := range rows {
			out := row
			if tenantsOf != nil {
				out = convert(row, tenantsOf[i])
			}
			rec := make([]string, len(out))
			for j, v := range out {
				rec[j] = v.String()
			}
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-12s %8d rows\n", name, len(rows))
	}

	write("region", d.Region, nil, nil)
	write("nation", d.Nation, nil, nil)
	write("supplier", d.Supplier, nil, nil)
	write("part", d.Part, nil, nil)
	write("partsupp", d.Partsupp, nil, nil)

	prepend := func(row []sqltypes.Value, t int64) []sqltypes.Value {
		out := make([]sqltypes.Value, 0, len(row)+1)
		out = append(out, sqltypes.NewInt(t))
		return append(out, row...)
	}
	write("customer", d.Customer, d.CustTenant, func(row []sqltypes.Value, t int64) []sqltypes.Value {
		out := prepend(row, t)
		out[5] = sqltypes.NewString(d.ConvertPhone(out[5].S, t))
		out[6] = sqltypes.NewFloat(d.ConvertCurrency(out[6].F, t))
		return out
	})
	write("orders", d.Orders, d.OrderTenant, func(row []sqltypes.Value, t int64) []sqltypes.Value {
		out := prepend(row, t)
		out[4] = sqltypes.NewFloat(d.ConvertCurrency(out[4].F, t))
		return out
	})
	write("lineitem", d.Lineitem, d.LineTenant, func(row []sqltypes.Value, t int64) []sqltypes.Value {
		out := prepend(row, t)
		out[6] = sqltypes.NewFloat(d.ConvertCurrency(out[6].F, t))
		return out
	})

	// Conversion meta tables.
	meta := func(name string, rows [][]string) {
		f, err := os.Create(filepath.Join(*dir, name+".csv"))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w := csv.NewWriter(f)
		defer w.Flush()
		for _, rec := range rows {
			if err := w.Write(rec); err != nil {
				fatal(err)
			}
		}
		fmt.Printf("%-12s %8d rows\n", name, len(rows))
	}
	var tenantRows, ctRows, ptRows [][]string
	for t := int64(1); t <= int64(*tenants); t++ {
		ts := strconv.FormatInt(t, 10)
		tenantRows = append(tenantRows, []string{ts, ts, ts})
		rate := d.ToUniversalRate[t]
		ctRows = append(ctRows, []string{ts,
			strconv.FormatFloat(rate, 'f', 6, 64),
			strconv.FormatFloat(1/rate, 'f', 6, 64)})
		ptRows = append(ptRows, []string{ts, d.PhonePrefix[t]})
	}
	meta("tenant", tenantRows)
	meta("currencytransform", ctRows)
	meta("phonetransform", ptRows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtdbgen:", err)
	os.Exit(1)
}
