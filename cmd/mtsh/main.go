// Command mtsh is a minimal MTSQL shell. By default it loads an in-process
// MTBase instance with the MT-H dataset; with -connect it speaks the mtserve
// wire protocol to a running server instead. Either way it demonstrates the
// full client experience of the paper: connect as a tenant (C comes from the
// connection), steer the dataset with SET SCOPE, and run plain SQL that the
// middleware rewrites behind the scenes. Query output streams through the
// cursor API — rows print as batches arrive, so large cross-tenant scans are
// usable interactively.
//
// Meta commands:
//
//	\c <ttid>            reconnect as another tenant
//	\level <name>        set optimization level (canonical,o1,o2,o3,o4,inl-only)
//	\explain <sql>       print the rewritten+optimized SQL without executing
//	\prepare name <sql>  prepare a statement with ? / $n placeholders
//	\exec name [args]    execute a prepared statement with bind values
//	                     (numbers, 'strings', dates as 'YYYY-MM-DD', null)
//	\stats               print engine/middleware/server counters
//	\shards              print the tenant placement map and per-shard row counts
//	\q                   quit
//
// Example sessions:
//
//	mtsh -sf 0.005 -tenants 5
//	mtsh -shards 4 -tenants 16
//	mtsh -connect localhost:7687 -c 2
//	mtsql(C=1)> SET SCOPE = "IN ()";
//	mtsql(C=1)> SELECT COUNT(*) FROM customer;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mtbase/internal/client"
	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/shard"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// rowStream is the cursor surface the shell prints from. *engine.Rows
// (in-process) and *client.Rows (wire) both satisfy it.
type rowStream interface {
	Columns() []string
	Next() bool
	Row() []sqltypes.Value
	Err() error
	Close() error
}

// prepStmt is the prepared-statement surface. *middleware.Stmt and
// *client.Stmt both satisfy it.
type prepStmt interface {
	NumParams() int
	IsQuery() bool
	Exec(args ...any) (*engine.Result, error)
	QueryResult(args ...any) (*engine.Result, error)
	Close() error
}

// backend abstracts where statements run: an in-process middleware
// connection or a wire connection to mtserve.
type backend interface {
	C() int64
	Exec(sql string) (*engine.Result, error)
	Stream(sql string) (rowStream, error)
	Prepare(sql string) (prepStmt, error)
	SetLevel(l optimizer.Level) error
	Explain(sql string) (string, error)
	Reconnect(ttid int64) (backend, error)
	Stats() ([]string, error)
}

func main() {
	var (
		connect = flag.String("connect", "", "host:port of a running mtserve (empty = in-process instance)")
		sf      = flag.Float64("sf", 0.002, "TPC-H scale factor for the in-process demo data")
		tenants = flag.Int("tenants", 5, "number of tenants (in-process)")
		ttid    = flag.Int64("c", 1, "client tenant C")
		mode    = flag.String("mode", "postgres", "engine mode (postgres|system-c, in-process)")
		shards  = flag.Int("shards", 1, "tenant-partitioned engine shards (in-process, 1 = unsharded)")
	)
	flag.Parse()

	var (
		be  backend
		err error
	)
	switch {
	case *connect != "":
		be, err = dialRemote(*connect, *ttid, optimizer.O4)
	case *shards > 1:
		be, err = buildSharded(*sf, *tenants, *mode, *shards, *ttid)
	default:
		be, err = buildLocal(*sf, *tenants, *mode, *ttid)
	}
	if err != nil {
		fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prepared := make(map[string]prepStmt)
	prompt := func() { fmt.Printf("mtsql(C=%d)> ", be.C()) }
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if done := metaCommand(&be, prepared, trimmed); done {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
		pending.Reset()
		if stmt != "" {
			execute(be, stmt)
		}
		prompt()
	}
}

// localBackend runs statements on an in-process instance.
type localBackend struct {
	inst *mth.Instance
	conn *middleware.Conn
}

func buildLocal(sf float64, tenants int, mode string, ttid int64) (backend, error) {
	m := engine.ModePostgres
	if mode == "system-c" {
		m = engine.ModeSystemC
	}
	fmt.Fprintf(os.Stderr, "loading MT-H sf=%g T=%d ...\n", sf, tenants)
	inst, err := mth.BuildMT(mth.Config{SF: sf, Tenants: tenants, Dist: mth.Uniform, Seed: 42, Mode: m})
	if err != nil {
		return nil, err
	}
	// Demo convenience: everyone may read everyone (the paper's healthcare
	// scenario would use explicit GRANTs instead).
	for t := int64(1); t <= int64(tenants); t++ {
		if err := inst.GrantReadTo(t); err != nil {
			return nil, err
		}
	}
	conn, err := inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	return &localBackend{inst: inst, conn: conn}, nil
}

func (b *localBackend) C() int64                                 { return b.conn.C() }
func (b *localBackend) Exec(sql string) (*engine.Result, error)  { return b.conn.Exec(sql) }
func (b *localBackend) Stream(sql string) (rowStream, error)     { return b.conn.QueryRows(sql) }
func (b *localBackend) Prepare(sql string) (prepStmt, error)     { return b.conn.Prepare(sql) }
func (b *localBackend) SetLevel(l optimizer.Level) error         { b.conn.SetOptLevel(l); return nil }

func (b *localBackend) Explain(sql string) (string, error) {
	rewritten, err := b.conn.RewriteSQL(sql)
	if err != nil {
		return "", err
	}
	return rewritten.String(), nil
}

func (b *localBackend) Reconnect(ttid int64) (backend, error) {
	next, err := b.inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	next.SetOptLevel(b.conn.OptLevel())
	return &localBackend{inst: b.inst, conn: next}, nil
}

func (b *localBackend) Stats() ([]string, error) {
	es := b.inst.Srv.DB().Stats.Snapshot()
	hits, misses := b.inst.Srv.RewriteCacheStats()
	return []string{
		fmt.Sprintf("engine.udf_calls %d", es.UDFCalls),
		fmt.Sprintf("engine.plan_cache_hits %d", es.PlanCacheHits),
		fmt.Sprintf("engine.plan_cache_misses %d", es.PlanCacheMisses),
		fmt.Sprintf("engine.rows_streamed %d", es.RowsStreamed),
		fmt.Sprintf("engine.spill_runs %d", es.SpillRuns),
		fmt.Sprintf("engine.spill_bytes %d", es.SpillBytes),
		fmt.Sprintf("engine.peak_mem_bytes %d", es.PeakMemBytes),
		fmt.Sprintf("middleware.rewrite_cache_hits %d", hits),
		fmt.Sprintf("middleware.rewrite_cache_misses %d", misses),
	}, nil
}

// shardInfo is the optional backend surface behind \shards.
type shardInfo interface {
	ShardInfo() ([]string, error)
}

// shardedBackend runs statements on an in-process tenant-partitioned
// instance: single-tenant statements hit one shard, cross-tenant ones
// scatter/gather.
type shardedBackend struct {
	inst *mth.ShardedInstance
	conn *shard.Conn
}

func buildSharded(sf float64, tenants int, mode string, nshards int, ttid int64) (backend, error) {
	m := engine.ModePostgres
	if mode == "system-c" {
		m = engine.ModeSystemC
	}
	fmt.Fprintf(os.Stderr, "loading MT-H sf=%g T=%d over %d shards ...\n", sf, tenants, nshards)
	inst, err := mth.BuildMTSharded(mth.Config{SF: sf, Tenants: tenants, Dist: mth.Uniform, Seed: 42, Mode: m}, nshards)
	if err != nil {
		return nil, err
	}
	for t := int64(1); t <= int64(tenants); t++ {
		if err := inst.GrantReadTo(t); err != nil {
			return nil, err
		}
	}
	conn, err := inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	return &shardedBackend{inst: inst, conn: conn}, nil
}

func (b *shardedBackend) C() int64                                { return b.conn.C() }
func (b *shardedBackend) Exec(sql string) (*engine.Result, error) { return b.conn.Exec(sql) }
func (b *shardedBackend) Stream(sql string) (rowStream, error)    { return b.conn.QueryRows(sql) }
func (b *shardedBackend) Prepare(sql string) (prepStmt, error)    { return b.conn.Prepare(sql) }
func (b *shardedBackend) SetLevel(l optimizer.Level) error        { b.conn.SetOptLevel(l); return nil }

func (b *shardedBackend) Explain(sql string) (string, error) {
	rewritten, err := b.conn.RewriteSQL(sql)
	if err != nil {
		return "", err
	}
	return rewritten.String(), nil
}

func (b *shardedBackend) Reconnect(ttid int64) (backend, error) {
	next, err := b.inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	next.SetOptLevel(b.conn.OptLevel())
	return &shardedBackend{inst: b.inst, conn: next}, nil
}

func (b *shardedBackend) Stats() ([]string, error) {
	stats := b.inst.Srv.StatLines()
	lines := make([]string, len(stats))
	for i, st := range stats {
		lines[i] = fmt.Sprintf("%s %d", st.Name, st.Value)
	}
	return lines, nil
}

func (b *shardedBackend) ShardInfo() ([]string, error) {
	srv := b.inst.Srv
	lines := []string{fmt.Sprintf("shards %d (placement: tenant -> shard)", srv.NumShards())}
	for _, ts := range srv.PlacementMap() {
		lines = append(lines, fmt.Sprintf("tenant %d -> shard %d", ts.Tenant, ts.Shard))
	}
	for rank, n := range srv.RowCounts() {
		lines = append(lines, fmt.Sprintf("shard %d: %d tenant rows", rank, n))
	}
	return lines, nil
}

// remoteBackend runs statements over the mtserve wire protocol.
type remoteBackend struct {
	addr  string
	conn  *client.Conn
	level optimizer.Level
}

func dialRemote(addr string, ttid int64, level optimizer.Level) (backend, error) {
	conn, err := client.Dial(addr, ttid, level.String())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "connected to %s (%s, session %d)\n", addr, conn.Server(), conn.SessionID())
	return &remoteBackend{addr: addr, conn: conn, level: level}, nil
}

func (b *remoteBackend) C() int64                                { return b.conn.C() }
func (b *remoteBackend) Exec(sql string) (*engine.Result, error) { return b.conn.Exec(sql) }
func (b *remoteBackend) Stream(sql string) (rowStream, error)    { return b.conn.QueryRows(sql) }
func (b *remoteBackend) Prepare(sql string) (prepStmt, error)    { return b.conn.Prepare(sql) }
func (b *remoteBackend) Explain(sql string) (string, error)      { return b.conn.Explain(sql) }

func (b *remoteBackend) SetLevel(l optimizer.Level) error {
	if err := b.conn.SetOptLevel(l); err != nil {
		return err
	}
	b.level = l
	return nil
}

func (b *remoteBackend) Reconnect(ttid int64) (backend, error) {
	next, err := dialRemote(b.addr, ttid, b.level)
	if err != nil {
		return nil, err
	}
	b.conn.Close()
	return next, nil
}

func (b *remoteBackend) Stats() ([]string, error) {
	pairs, err := b.conn.Stats()
	if err != nil {
		return nil, err
	}
	lines := make([]string, len(pairs))
	for i, p := range pairs {
		lines[i] = fmt.Sprintf("%s %d", p.Name, p.Value)
	}
	return lines, nil
}

func metaCommand(be *backend, prepared map[string]prepStmt, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q":
		return true
	case "\\c":
		if len(fields) != 2 {
			fmt.Println("usage: \\c <ttid>")
			return false
		}
		ttid, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Println("bad tenant id:", fields[1])
			return false
		}
		next, err := (*be).Reconnect(ttid)
		if err != nil {
			fmt.Println(err)
			return false
		}
		*be = next
		// Prepared statements capture the session's C; drop them.
		for name, st := range prepared {
			st.Close()
			delete(prepared, name)
		}
		fmt.Println("prepared statements cleared")
	case "\\prepare":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\prepare"))
		name, sql, ok := strings.Cut(rest, " ")
		if !ok || name == "" || strings.TrimSpace(sql) == "" {
			fmt.Println("usage: \\prepare name <sql with ? or $n placeholders>")
			return false
		}
		st, err := (*be).Prepare(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if err != nil {
			fmt.Println(err)
			return false
		}
		prepared[name] = st
		fmt.Printf("prepared %q (%d parameters)\n", name, st.NumParams())
	case "\\exec":
		if len(fields) < 2 {
			fmt.Println("usage: \\exec name [args...]")
			return false
		}
		st, ok := prepared[fields[1]]
		if !ok {
			fmt.Printf("no prepared statement %q\n", fields[1])
			return false
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(cmd, "\\exec")), fields[1]))
		args, err := parseBindArgs(rest)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if len(args) != st.NumParams() {
			fmt.Printf("statement %q takes %d parameters, got %d\n", fields[1], st.NumParams(), len(args))
			return false
		}
		run := st.Exec
		if st.IsQuery() {
			run = st.QueryResult
		}
		res, err := run(args...)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printResult(res)
	case "\\level":
		if len(fields) != 2 {
			fmt.Println("usage: \\level <canonical|o1|o2|o3|o4|inl-only>")
			return false
		}
		level, err := optimizer.ParseLevel(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		if err := (*be).SetLevel(level); err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Println("optimization level:", level)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rewritten, err := (*be).Explain(strings.TrimSuffix(sql, ";"))
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Println(rewritten)
	case "\\stats":
		lines, err := (*be).Stats()
		if err != nil {
			fmt.Println(err)
			return false
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	case "\\shards":
		si, ok := (*be).(shardInfo)
		if !ok {
			fmt.Println("not a sharded session (start mtsh with -shards N)")
			return false
		}
		lines, err := si.ShardInfo()
		if err != nil {
			fmt.Println(err)
			return false
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return false
}

func execute(be backend, sql string) {
	// Queries stream through the cursor API: rows print as batches arrive
	// from the operator tree (or the wire), so a large cross-tenant scan
	// shows output immediately instead of materializing the whole result
	// first. DML/DDL and session statements go through Exec.
	if stmt, err := sqlparse.ParseStatement(sql); err == nil {
		if _, ok := stmt.(*sqlast.Select); ok {
			streamQuery(be, sql)
			return
		}
	}
	res, err := be.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
}

// streamQuery drains a cursor, printing the first maxShow rows as they are
// delivered and counting the rest.
func streamQuery(be backend, sql string) {
	rows, err := be.Stream(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	const maxShow = 50
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		n++
		if n > maxShow {
			continue
		}
		row := rows.Row()
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if n > maxShow {
		fmt.Printf("... (%d rows total)\n", n)
	}
}

func printResult(res *engine.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		if i >= 50 {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}

// parseBindArgs tokenizes a \exec argument string: single-quoted strings
// (with ” escapes), numbers, true/false, null, and DATE-shaped quoted
// values pass as strings (plan-time slot hints coerce them to dates).
func parseBindArgs(s string) ([]any, error) {
	var args []any
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '\'' {
			var sb strings.Builder
			i++
			for {
				if i >= len(s) {
					return nil, fmt.Errorf("unterminated string in bind arguments")
				}
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			args = append(args, sb.String())
			continue
		}
		start := i
		for i < len(s) && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		word := s[start:i]
		switch strings.ToLower(word) {
		case "null":
			args = append(args, nil)
			continue
		case "true":
			args = append(args, true)
			continue
		case "false":
			args = append(args, false)
			continue
		}
		if n, err := strconv.ParseInt(word, 10, 64); err == nil {
			args = append(args, n)
			continue
		}
		if f, err := strconv.ParseFloat(word, 64); err == nil {
			args = append(args, f)
			continue
		}
		return nil, fmt.Errorf("bad bind argument %q (quote strings with '...')", word)
	}
	return args, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtsh:", err)
	os.Exit(1)
}
