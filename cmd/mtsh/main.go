// Command mtsh is a minimal MTSQL shell against an in-process MTBase
// instance loaded with the MT-H dataset. It demonstrates the full client
// experience of the paper: connect as a tenant (C comes from the
// connection), steer the dataset with SET SCOPE, and run plain SQL that
// the middleware rewrites behind the scenes.
//
// Meta commands:
//
//	\c <ttid>        reconnect as another tenant
//	\level <name>    set optimization level (canonical,o1,o2,o3,o4,inl-only)
//	\explain <sql>   print the rewritten+optimized SQL without executing
//	\q               quit
//
// Example session:
//
//	mtsh -sf 0.005 -tenants 5
//	mtsql(C=1)> SET SCOPE = "IN ()";
//	mtsql(C=1)> SELECT COUNT(*) FROM customer;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.002, "TPC-H scale factor for the demo data")
		tenants = flag.Int("tenants", 5, "number of tenants")
		ttid    = flag.Int64("c", 1, "client tenant C")
		mode    = flag.String("mode", "postgres", "engine mode (postgres|system-c)")
	)
	flag.Parse()

	m := engine.ModePostgres
	if *mode == "system-c" {
		m = engine.ModeSystemC
	}
	fmt.Fprintf(os.Stderr, "loading MT-H sf=%g T=%d ...\n", *sf, *tenants)
	inst, err := mth.BuildMT(mth.Config{SF: *sf, Tenants: *tenants, Dist: mth.Uniform, Seed: 42, Mode: m})
	if err != nil {
		fatal(err)
	}
	// Demo convenience: everyone may read everyone (the paper's healthcare
	// scenario would use explicit GRANTs instead).
	for t := int64(1); t <= int64(*tenants); t++ {
		if err := inst.GrantReadTo(t); err != nil {
			fatal(err)
		}
	}
	conn, err := inst.Srv.Connect(*ttid)
	if err != nil {
		fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() { fmt.Printf("mtsql(C=%d)> ", conn.C()) }
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if done := metaCommand(inst.Srv, &conn, trimmed); done {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
		pending.Reset()
		if stmt != "" {
			execute(conn, stmt)
		}
		prompt()
	}
}

func metaCommand(srv *middleware.Server, conn **middleware.Conn, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q":
		return true
	case "\\c":
		if len(fields) != 2 {
			fmt.Println("usage: \\c <ttid>")
			return false
		}
		ttid, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Println("bad tenant id:", fields[1])
			return false
		}
		next, err := srv.Connect(ttid)
		if err != nil {
			fmt.Println(err)
			return false
		}
		next.SetOptLevel((*conn).OptLevel())
		*conn = next
	case "\\level":
		if len(fields) != 2 {
			fmt.Println("usage: \\level <canonical|o1|o2|o3|o4|inl-only>")
			return false
		}
		level, err := optimizer.ParseLevel(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		(*conn).SetOptLevel(level)
		fmt.Println("optimization level:", level)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rewritten, err := (*conn).RewriteSQL(strings.TrimSuffix(sql, ";"))
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Println(rewritten.String())
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return false
}

func execute(conn *middleware.Conn, sql string) {
	res, err := conn.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		if i >= 50 {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtsh:", err)
	os.Exit(1)
}
