// Command mtsh is a minimal MTSQL shell against an in-process MTBase
// instance loaded with the MT-H dataset. It demonstrates the full client
// experience of the paper: connect as a tenant (C comes from the
// connection), steer the dataset with SET SCOPE, and run plain SQL that
// the middleware rewrites behind the scenes. Query output streams through
// the cursor API — rows print as batches arrive from the engine's operator
// tree, so large cross-tenant scans are usable interactively.
//
// Meta commands:
//
//	\c <ttid>            reconnect as another tenant
//	\level <name>        set optimization level (canonical,o1,o2,o3,o4,inl-only)
//	\explain <sql>       print the rewritten+optimized SQL without executing
//	\prepare name <sql>  prepare a statement with ? / $n placeholders
//	\exec name [args]    execute a prepared statement with bind values
//	                     (numbers, 'strings', dates as 'YYYY-MM-DD', null)
//	\q                   quit
//
// Example session:
//
//	mtsh -sf 0.005 -tenants 5
//	mtsql(C=1)> SET SCOPE = "IN ()";
//	mtsql(C=1)> SELECT COUNT(*) FROM customer;
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

func main() {
	var (
		sf      = flag.Float64("sf", 0.002, "TPC-H scale factor for the demo data")
		tenants = flag.Int("tenants", 5, "number of tenants")
		ttid    = flag.Int64("c", 1, "client tenant C")
		mode    = flag.String("mode", "postgres", "engine mode (postgres|system-c)")
	)
	flag.Parse()

	m := engine.ModePostgres
	if *mode == "system-c" {
		m = engine.ModeSystemC
	}
	fmt.Fprintf(os.Stderr, "loading MT-H sf=%g T=%d ...\n", *sf, *tenants)
	inst, err := mth.BuildMT(mth.Config{SF: *sf, Tenants: *tenants, Dist: mth.Uniform, Seed: 42, Mode: m})
	if err != nil {
		fatal(err)
	}
	// Demo convenience: everyone may read everyone (the paper's healthcare
	// scenario would use explicit GRANTs instead).
	for t := int64(1); t <= int64(*tenants); t++ {
		if err := inst.GrantReadTo(t); err != nil {
			fatal(err)
		}
	}
	conn, err := inst.Srv.Connect(*ttid)
	if err != nil {
		fatal(err)
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prepared := make(map[string]*middleware.Stmt)
	prompt := func() { fmt.Printf("mtsql(C=%d)> ", conn.C()) }
	prompt()
	for in.Scan() {
		line := in.Text()
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "\\") {
			if done := metaCommand(inst.Srv, &conn, prepared, trimmed); done {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if !strings.Contains(line, ";") {
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
		pending.Reset()
		if stmt != "" {
			execute(conn, stmt)
		}
		prompt()
	}
}

func metaCommand(srv *middleware.Server, conn **middleware.Conn, prepared map[string]*middleware.Stmt, cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q":
		return true
	case "\\c":
		if len(fields) != 2 {
			fmt.Println("usage: \\c <ttid>")
			return false
		}
		ttid, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			fmt.Println("bad tenant id:", fields[1])
			return false
		}
		next, err := srv.Connect(ttid)
		if err != nil {
			fmt.Println(err)
			return false
		}
		next.SetOptLevel((*conn).OptLevel())
		*conn = next
		// Prepared statements capture the session's C; drop them.
		for name := range prepared {
			delete(prepared, name)
		}
		fmt.Println("prepared statements cleared")
	case "\\prepare":
		rest := strings.TrimSpace(strings.TrimPrefix(cmd, "\\prepare"))
		name, sql, ok := strings.Cut(rest, " ")
		if !ok || name == "" || strings.TrimSpace(sql) == "" {
			fmt.Println("usage: \\prepare name <sql with ? or $n placeholders>")
			return false
		}
		st, err := (*conn).Prepare(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if err != nil {
			fmt.Println(err)
			return false
		}
		prepared[name] = st
		fmt.Printf("prepared %q (%d parameters)\n", name, st.NumParams())
	case "\\exec":
		if len(fields) < 2 {
			fmt.Println("usage: \\exec name [args...]")
			return false
		}
		st, ok := prepared[fields[1]]
		if !ok {
			fmt.Printf("no prepared statement %q\n", fields[1])
			return false
		}
		rest := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(strings.TrimPrefix(cmd, "\\exec")), fields[1]))
		args, err := parseBindArgs(rest)
		if err != nil {
			fmt.Println(err)
			return false
		}
		if len(args) != st.NumParams() {
			fmt.Printf("statement %q takes %d parameters, got %d\n", fields[1], st.NumParams(), len(args))
			return false
		}
		res, err := st.Exec(args...)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		printResult(res)
	case "\\level":
		if len(fields) != 2 {
			fmt.Println("usage: \\level <canonical|o1|o2|o3|o4|inl-only>")
			return false
		}
		level, err := optimizer.ParseLevel(fields[1])
		if err != nil {
			fmt.Println(err)
			return false
		}
		(*conn).SetOptLevel(level)
		fmt.Println("optimization level:", level)
	case "\\explain":
		sql := strings.TrimSpace(strings.TrimPrefix(cmd, "\\explain"))
		rewritten, err := (*conn).RewriteSQL(strings.TrimSuffix(sql, ";"))
		if err != nil {
			fmt.Println(err)
			return false
		}
		fmt.Println(rewritten.String())
	default:
		fmt.Println("unknown command:", fields[0])
	}
	return false
}

func execute(conn *middleware.Conn, sql string) {
	// Queries stream through the cursor API: rows print as batches arrive
	// from the operator tree, so a large cross-tenant scan shows output
	// immediately instead of materializing the whole result first. DML/DDL
	// and session statements go through Exec.
	if stmt, err := sqlparse.ParseStatement(sql); err == nil {
		if _, ok := stmt.(*sqlast.Select); ok {
			streamQuery(conn, sql)
			return
		}
	}
	res, err := conn.Exec(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
}

// streamQuery drains a cursor, printing the first maxShow rows as they are
// delivered and counting the rest.
func streamQuery(conn *middleware.Conn, sql string) {
	rows, err := conn.QueryRows(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	const maxShow = 50
	fmt.Println(strings.Join(rows.Columns(), " | "))
	n := 0
	for rows.Next() {
		n++
		if n > maxShow {
			continue
		}
		row := rows.Row()
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	if n > maxShow {
		fmt.Printf("... (%d rows total)\n", n)
	}
}

func printResult(res *engine.Result) {
	if len(res.Cols) == 0 {
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
		return
	}
	fmt.Println(strings.Join(res.Cols, " | "))
	for i, row := range res.Rows {
		if i >= 50 {
			fmt.Printf("... (%d rows total)\n", len(res.Rows))
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
}

// parseBindArgs tokenizes a \exec argument string: single-quoted strings
// (with ” escapes), numbers, true/false, null, and DATE-shaped quoted
// values pass as strings (plan-time slot hints coerce them to dates).
func parseBindArgs(s string) ([]any, error) {
	var args []any
	i := 0
	for i < len(s) {
		for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
			i++
		}
		if i >= len(s) {
			break
		}
		if s[i] == '\'' {
			var sb strings.Builder
			i++
			for {
				if i >= len(s) {
					return nil, fmt.Errorf("unterminated string in bind arguments")
				}
				if s[i] == '\'' {
					if i+1 < len(s) && s[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(s[i])
				i++
			}
			args = append(args, sb.String())
			continue
		}
		start := i
		for i < len(s) && s[i] != ' ' && s[i] != '\t' {
			i++
		}
		word := s[start:i]
		switch strings.ToLower(word) {
		case "null":
			args = append(args, nil)
			continue
		case "true":
			args = append(args, true)
			continue
		case "false":
			args = append(args, false)
			continue
		}
		if n, err := strconv.ParseInt(word, 10, 64); err == nil {
			args = append(args, n)
			continue
		}
		if f, err := strconv.ParseFloat(word, 64); err == nil {
			args = append(args, f)
			continue
		}
		return nil, fmt.Errorf("bad bind argument %q (quote strings with '...')", word)
	}
	return args, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtsh:", err)
	os.Exit(1)
}
