package rewrite

import (
	"strings"
	"testing"

	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

// exampleSchema builds the running example's MT metadata (Figure 2).
func exampleSchema(t testing.TB) *mtsql.Schema {
	t.Helper()
	s := mtsql.NewSchema()
	if err := s.Convs().Register(mtsql.ConvPair{
		Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal",
		Class: mtsql.ClassLinear,
	}); err != nil {
		t.Fatal(err)
	}
	ddl := []string{
		`CREATE TABLE Employees SPECIFIC (
			E_emp_id INTEGER NOT NULL SPECIFIC,
			E_name VARCHAR(25) NOT NULL COMPARABLE,
			E_role_id INTEGER NOT NULL SPECIFIC,
			E_reg_id INTEGER NOT NULL COMPARABLE,
			E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
			E_age INTEGER NOT NULL COMPARABLE)`,
		`CREATE TABLE Roles SPECIFIC (
			R_role_id INTEGER NOT NULL SPECIFIC,
			R_name VARCHAR(25) NOT NULL COMPARABLE)`,
		`CREATE TABLE Regions (
			Re_reg_id INTEGER NOT NULL,
			Re_name VARCHAR(25) NOT NULL)`,
	}
	for _, d := range ddl {
		stmt, err := sqlparse.ParseStatement(d)
		if err != nil {
			t.Fatalf("parse %s: %v", d, err)
		}
		if _, err := s.AddTable(stmt.(*sqlast.CreateTable)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func ctxFor(t testing.TB, c int64, d ...int64) *Context {
	return &Context{C: c, D: d, Schema: exampleSchema(t)}
}

func mustRewrite(t *testing.T, ctx *Context, sql string) string {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Query(ctx, q)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	text := out.String()
	if _, err := sqlparse.ParseQuery(text); err != nil {
		t.Fatalf("rewritten SQL does not reparse: %v\n%s", err, text)
	}
	return text
}

func TestRewriteAddsDFilter(t *testing.T) {
	ctx := ctxFor(t, 0, 3, 7)
	got := mustRewrite(t, ctx, "SELECT E_age FROM Employees")
	if !strings.Contains(got, "employees.ttid IN (3, 7)") {
		t.Errorf("missing D-filter: %s", got)
	}
}

func TestRewriteEmptyDatasetContradiction(t *testing.T) {
	ctx := ctxFor(t, 0) // no privileges at all
	got := mustRewrite(t, ctx, "SELECT E_age FROM Employees")
	if !strings.Contains(got, "(1 = 0)") {
		t.Errorf("empty D should yield a contradiction: %s", got)
	}
}

func TestRewriteConversionInSelect(t *testing.T) {
	// Listing 10, line 3.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_salary FROM Employees")
	want := "currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0) AS E_salary"
	if !strings.Contains(got, want) {
		t.Errorf("conversion wrapping missing:\n got: %s\nwant substring: %s", got, want)
	}
}

func TestRewriteConversionInsideAggregate(t *testing.T) {
	// Listing 10, line 6: conversion inside AVG.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT AVG(E_salary) AS avg_sal FROM Employees")
	if !strings.Contains(got, "AVG(currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0)) AS avg_sal") {
		t.Errorf("aggregate conversion: %s", got)
	}
}

func TestRewriteStarHidesTTID(t *testing.T) {
	// Listing 10, line 9.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT * FROM Employees")
	if strings.Contains(strings.ToLower(strings.Split(got, "FROM")[0]), "ttid,") {
		t.Errorf("star expansion leaked ttid: %s", got)
	}
	for _, col := range []string{"E_emp_id", "E_name", "E_role_id", "E_reg_id", "E_age"} {
		if !strings.Contains(got, col) {
			t.Errorf("star expansion missing %s: %s", col, got)
		}
	}
	// E_salary appears wrapped in conversions.
	if !strings.Contains(got, "currencyToUniversal(employees.E_salary") {
		t.Errorf("star expansion must convert E_salary: %s", got)
	}
}

func TestRewriteConstantComparison(t *testing.T) {
	// Listing 11, line 3: the attribute is converted, the constant is in
	// C's format already.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_name FROM Employees WHERE E_salary > 50000")
	if !strings.Contains(got, "currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0) > 50000") {
		t.Errorf("constant comparison: %s", got)
	}
}

func TestRewriteTenantSpecificJoinGetsTTID(t *testing.T) {
	// Listing 11, line 9.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id")
	if !strings.Contains(got, "employees.ttid = roles.ttid") {
		t.Errorf("missing ttid join predicate: %s", got)
	}
	// And both tables get D-filters.
	if !strings.Contains(got, "employees.ttid IN (0, 1)") || !strings.Contains(got, "roles.ttid IN (0, 1)") {
		t.Errorf("missing D-filters: %s", got)
	}
}

func TestRewriteComparableJoinNoTTID(t *testing.T) {
	// §1: joining on age (comparable) must NOT add ttid predicates.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT e1.E_name FROM Employees e1, Employees e2 WHERE e1.E_age = e2.E_age")
	if strings.Contains(got, "e1.ttid = e2.ttid") {
		t.Errorf("comparable join must not be tenant-restricted: %s", got)
	}
}

func TestRewriteSelfJoinSameBindingNoTTID(t *testing.T) {
	// Attributes of the same table binding are owned by the same tenant.
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_name FROM Employees WHERE E_role_id = E_emp_id")
	if strings.Contains(got, "employees.ttid = employees.ttid") {
		t.Errorf("same-table predicate must not add ttid equality: %s", got)
	}
}

func TestRewriteRejectsMixedComparison(t *testing.T) {
	// §2.4.2: comparing E_role_id (specific) with E_age (comparable).
	ctx := ctxFor(t, 0, 0, 1)
	q, err := sqlparse.ParseQuery("SELECT E_name FROM Employees WHERE E_role_id = E_age")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Query(ctx, q); err == nil {
		t.Error("mixed tenant-specific comparison accepted")
	}
}

func TestRewriteExplicitJoinOn(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_name FROM Employees JOIN Roles ON E_role_id = R_role_id")
	if !strings.Contains(got, "employees.ttid = roles.ttid") {
		t.Errorf("ON condition not extended: %s", got)
	}
}

func TestRewriteGlobalTableUntouched(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT Re_name FROM Regions")
	if strings.Contains(got, "ttid") {
		t.Errorf("global table got tenant machinery: %s", got)
	}
}

func TestRewriteSubqueryGetsOwnFilters(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, `SELECT AVG(x.sal) FROM (SELECT E_salary AS sal FROM Employees WHERE E_age >= 45) AS x`)
	if !strings.Contains(got, "employees.ttid IN (0, 1)") {
		t.Errorf("derived table missing D-filter: %s", got)
	}
	// Inner select converts salary; outer treats x.sal as comparable.
	if !strings.Contains(got, "currencyToUniversal(E_salary") {
		t.Errorf("derived table missing conversion: %s", got)
	}
	if strings.Contains(got, "toUniversal(x.sal") {
		t.Errorf("derived output must not be re-converted: %s", got)
	}
}

func TestRewriteCorrelatedExists(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, `SELECT R_name FROM Roles r WHERE EXISTS (
		SELECT 1 FROM Employees e WHERE e.E_role_id = r.R_role_id)`)
	// Correlated tenant-specific comparison gets ttid equality inside the
	// subquery, plus D-filters at both levels.
	if !strings.Contains(got, "e.ttid = r.ttid") {
		t.Errorf("correlated ttid predicate missing: %s", got)
	}
	if !strings.Contains(got, "e.ttid IN (0, 1)") || !strings.Contains(got, "r.ttid IN (0, 1)") {
		t.Errorf("D-filters missing: %s", got)
	}
}

func TestRewriteTupleInForTenantSpecific(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, `SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id FROM Roles WHERE R_name = 'postdoc')`)
	if !strings.Contains(got, "(E_role_id, employees.ttid) IN (SELECT R_role_id, roles.ttid FROM Roles") {
		t.Errorf("tuple IN extension missing: %s", got)
	}
}

func TestRewriteTupleInGroupBy(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, `SELECT E_name FROM Employees WHERE E_role_id IN (
		SELECT R_role_id FROM Roles GROUP BY R_role_id)`)
	// ttid must join the GROUP BY list of the subquery.
	if !strings.Contains(got, "GROUP BY R_role_id, roles.ttid") {
		t.Errorf("group by not extended: %s", got)
	}
}

func TestRewriteRejectsTenantSpecificInComparableSubquery(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	q, err := sqlparse.ParseQuery("SELECT E_name FROM Employees WHERE E_role_id IN (SELECT Re_reg_id FROM Regions)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Query(ctx, q); err == nil {
		t.Error("tenant-specific IN over global output accepted")
	}
}

func TestRewriteGroupByConversion(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_salary, COUNT(*) AS cnt FROM Employees GROUP BY E_salary")
	if !strings.Contains(got, "GROUP BY currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0)") {
		t.Errorf("group by conversion missing: %s", got)
	}
}

func TestRewriteHavingConversion(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	got := mustRewrite(t, ctx, "SELECT E_reg_id FROM Employees GROUP BY E_reg_id HAVING AVG(E_salary) > 100000")
	if !strings.Contains(got, "HAVING (AVG(currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0)) > 100000)") {
		t.Errorf("having conversion missing: %s", got)
	}
}

func TestRewriteIdempotentClone(t *testing.T) {
	// Query() must not mutate its input.
	ctx := ctxFor(t, 0, 0, 1)
	q, err := sqlparse.ParseQuery("SELECT E_salary FROM Employees WHERE E_salary > 100")
	if err != nil {
		t.Fatal(err)
	}
	before := q.String()
	if _, err := Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if q.String() != before {
		t.Error("rewrite mutated its input")
	}
}

func TestRewriteUnknownTable(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	q, err := sqlparse.ParseQuery("SELECT 1 FROM nothere")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Query(ctx, q); err == nil {
		t.Error("unknown table accepted")
	}
}

// ---------------------------------------------------------------- DDL/DML

func TestPhysicalCreateTable(t *testing.T) {
	s := exampleSchema(t)
	stmt, err := sqlparse.ParseStatement(`CREATE TABLE Assignments SPECIFIC (
		A_id INTEGER NOT NULL SPECIFIC,
		A_role_id INTEGER NOT NULL SPECIFIC,
		A_reg_id INTEGER NOT NULL COMPARABLE,
		CONSTRAINT pk_a PRIMARY KEY (A_id),
		CONSTRAINT fk_a FOREIGN KEY (A_role_id) REFERENCES Roles (R_role_id),
		CONSTRAINT fk_g FOREIGN KEY (A_reg_id) REFERENCES Regions (Re_reg_id))`)
	if err != nil {
		t.Fatal(err)
	}
	phys := PhysicalCreateTable(s, stmt.(*sqlast.CreateTable))
	if phys.Columns[0].Name != mtsql.TTIDColumn {
		t.Error("ttid column not first")
	}
	for _, con := range phys.Constraints {
		switch con.Name {
		case "pk_a":
			if con.Columns[0] != mtsql.TTIDColumn {
				t.Errorf("PK not extended: %v", con.Columns)
			}
		case "fk_a": // tenant-specific target: both sides extended
			if con.Columns[len(con.Columns)-1] != mtsql.TTIDColumn || con.RefColumns[len(con.RefColumns)-1] != mtsql.TTIDColumn {
				t.Errorf("FK to tenant-specific table not extended: %v -> %v", con.Columns, con.RefColumns)
			}
		case "fk_g": // global target: untouched
			if len(con.Columns) != 1 || len(con.RefColumns) != 1 {
				t.Errorf("FK to global table wrongly extended: %v -> %v", con.Columns, con.RefColumns)
			}
		}
	}
}

func TestTenantFKAsCheck(t *testing.T) {
	fk := sqlast.Constraint{
		Kind: sqlast.ConstraintForeignKey, Name: "fk_emp",
		Columns: []string{"E_role_id"}, RefTable: "Roles", RefColumns: []string{"R_role_id"},
	}
	check, err := TenantFKAsCheck(0, "Employees", fk)
	if err != nil {
		t.Fatal(err)
	}
	text := check.String()
	for _, want := range []string{"COUNT(E_role_id)", "ttid = 0", "NOT IN", "= 0"} {
		if !strings.Contains(text, want) {
			t.Errorf("check constraint missing %q: %s", want, text)
		}
	}
}

func TestInsertRewritePerTenant(t *testing.T) {
	ctx := ctxFor(t, 0, 1) // C=0 inserting on behalf of tenant 1
	stmt, err := sqlparse.ParseStatement(`INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (9, 'Zoe', 0, 3, 150000, 46)`)
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := Insert(ctx, stmt.(*sqlast.Insert))
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 1 {
		t.Fatalf("statements = %d", len(stmts))
	}
	text := stmts[0].String()
	if !strings.Contains(text, "(ttid, E_emp_id") {
		t.Errorf("ttid column missing: %s", text)
	}
	// Salary converted from C=0's format into tenant 1's.
	if !strings.Contains(text, "currencyFromUniversal(currencyToUniversal(150000, 0), 1)") {
		t.Errorf("value conversion missing: %s", text)
	}
	if !strings.Contains(text, "VALUES (1, 9, 'Zoe'") {
		t.Errorf("ttid value missing: %s", text)
	}
}

func TestInsertSelectRewrite(t *testing.T) {
	// Appendix A.2's example: copy records from C=0 to tenant 1.
	ctx := ctxFor(t, 0, 1)
	stmt, err := sqlparse.ParseStatement(`INSERT INTO Employees (E_name, E_reg_id, E_salary, E_age)
		SELECT E_name, E_reg_id, E_salary, E_age FROM Employees WHERE E_age > 40`)
	if err != nil {
		t.Fatal(err)
	}
	stmts, err := Insert(ctx, stmt.(*sqlast.Insert))
	if err != nil {
		t.Fatal(err)
	}
	text := stmts[0].String()
	// The sub-select is rewritten on behalf of C (with D-filter for tenant 1).
	if !strings.Contains(text, "employees.ttid IN (1)") {
		t.Errorf("subquery D-filter missing: %s", text)
	}
	// Output salary re-converted into the target tenant's format.
	if !strings.Contains(text, "currencyFromUniversal(currencyToUniversal(mt_src.mt_c3, 0), 1)") {
		t.Errorf("insert-select conversion missing: %s", text)
	}
}

func TestUpdateRewrite(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	stmt, err := sqlparse.ParseStatement("UPDATE Employees SET E_salary = 99000 WHERE E_age > 60")
	if err != nil {
		t.Fatal(err)
	}
	up, err := Update(ctx, stmt.(*sqlast.Update))
	if err != nil {
		t.Fatal(err)
	}
	text := up.String()
	// New value stored in each row owner's format via the row's ttid.
	if !strings.Contains(text, "currencyFromUniversal(currencyToUniversal(99000, 0), employees.ttid)") {
		t.Errorf("update conversion missing: %s", text)
	}
	if !strings.Contains(text, "employees.ttid IN (0, 1)") {
		t.Errorf("update D-filter missing: %s", text)
	}
}

func TestUpdateRejectsTTIDAssignment(t *testing.T) {
	ctx := ctxFor(t, 0, 0)
	stmt, _ := sqlparse.ParseStatement("UPDATE Employees SET ttid = 5")
	if _, err := Update(ctx, stmt.(*sqlast.Update)); err == nil {
		t.Error("ttid assignment accepted")
	}
}

func TestDeleteRewrite(t *testing.T) {
	ctx := ctxFor(t, 0, 1)
	stmt, err := sqlparse.ParseStatement("DELETE FROM Employees WHERE E_age > 70")
	if err != nil {
		t.Fatal(err)
	}
	del, err := Delete(ctx, stmt.(*sqlast.Delete))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(del.String(), "employees.ttid IN (1)") {
		t.Errorf("delete D-filter missing: %s", del)
	}
}

func TestScopeRewrite(t *testing.T) {
	// Listing 12.
	ctx := ctxFor(t, 0, 0, 1)
	ss, err := sqlparse.ParseScopeText("FROM Employees WHERE E_salary > 180000")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Scope(ctx, ss.Complex)
	if err != nil {
		t.Fatal(err)
	}
	text := sel.String()
	if !strings.Contains(text, "SELECT DISTINCT employees.ttid") {
		t.Errorf("scope projection: %s", text)
	}
	if !strings.Contains(text, "currencyFromUniversal(currencyToUniversal(E_salary, employees.ttid), 0) > 180000") {
		t.Errorf("scope conversion: %s", text)
	}
	if strings.Contains(text, "IN (0, 1)") {
		t.Errorf("scope query must not be D-filtered: %s", text)
	}
}

func TestScopeRequiresTenantSpecificTable(t *testing.T) {
	ctx := ctxFor(t, 0, 0)
	ss, _ := sqlparse.ParseScopeText("FROM Regions WHERE Re_reg_id > 1")
	if _, err := Scope(ctx, ss.Complex); err == nil {
		t.Error("global-only scope accepted")
	}
}

func TestViewRewrite(t *testing.T) {
	ctx := ctxFor(t, 0, 0, 1)
	stmt, err := sqlparse.ParseStatement("CREATE VIEW seniors AS SELECT E_name, E_salary FROM Employees WHERE E_age >= 45")
	if err != nil {
		t.Fatal(err)
	}
	cv, err := View(ctx, stmt.(*sqlast.CreateView))
	if err != nil {
		t.Fatal(err)
	}
	text := cv.String()
	if !strings.Contains(text, "employees.ttid IN (0, 1)") || !strings.Contains(text, "currencyToUniversal") {
		t.Errorf("view body not rewritten: %s", text)
	}
}
