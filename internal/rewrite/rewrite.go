// Package rewrite implements the canonical MTSQL-to-SQL rewrite algorithm
// of §3.1 (Algorithms 1 and 2) and the statement rewrites of §3.3 and
// Appendix A. All functions are pure AST→AST: they clone their input and
// never touch the database — the middleware (internal/middleware) supplies
// the resolved dataset D′ and ships the rewritten SQL to the DBMS.
//
// The rewrite maintains the paper's invariant for every (sub)query: the
// result is filtered according to D′ and presented in the format required
// by client C.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
)

// Context carries the rewrite inputs: the client C, the privilege-pruned
// dataset D′, and the MT-specific schema metadata.
type Context struct {
	C      int64
	D      []int64 // resolved dataset D′, concrete tenant ids
	DAll   bool    // true when D′ covers every tenant in the database
	Schema *mtsql.Schema
}

// DIsExactlyClient reports D′ = {C}, the trivial-optimization case o1
// uses to drop conversions.
func (ctx *Context) DIsExactlyClient() bool {
	return len(ctx.D) == 1 && ctx.D[0] == ctx.C
}

// Query rewrites an MTSQL query into plain SQL (Algorithm 1). The input
// is not modified.
func Query(ctx *Context, q *sqlast.Select) (*sqlast.Select, error) {
	out := sqlast.CloneSelect(q)
	if err := rewriteQuery(ctx, out, nil); err != nil {
		return nil, err
	}
	return out, nil
}

// resolver resolves column references to MT metadata across nested query
// scopes (parent chain implements correlated references).
type resolver struct {
	parent   *resolver
	bindings []*rBinding
}

// rBinding is one FROM item: a base table with metadata, or a derived
// table whose outputs are — by the rewrite invariant — already in client
// format and D-filtered, hence treated as comparable.
type rBinding struct {
	name    string // lower-case binding name
	info    *mtsql.TableInfo
	outputs map[string]bool // derived/global-view output columns (lower)
}

// attr is a resolved attribute.
type attr struct {
	binding string
	col     *mtsql.ColumnInfo // nil for derived outputs
}

func (r *resolver) resolve(ref *sqlast.ColumnRef) (attr, bool) {
	tl := strings.ToLower(ref.Table)
	cl := strings.ToLower(ref.Name)
	for res := r; res != nil; res = res.parent {
		for _, b := range res.bindings {
			if tl != "" && b.name != tl {
				continue
			}
			if b.info != nil {
				if cl == mtsql.TTIDColumn {
					if b.info.TenantSpecific() && tl != "" {
						return attr{binding: b.name}, true
					}
					continue
				}
				if ci := b.info.Column(ref.Name); ci != nil {
					return attr{binding: b.name, col: ci}, true
				}
			} else if b.outputs[cl] {
				return attr{binding: b.name}, true
			}
		}
	}
	return attr{}, false
}

// comparability classifies a resolved attribute; derived outputs count as
// comparable (rewrite invariant).
func (a attr) comparability() sqlast.Comparability {
	if a.col == nil {
		return sqlast.Comparable
	}
	return a.col.Comparability
}

// rewriteQuery rewrites q in place. parent is the enclosing resolver for
// correlated references.
func rewriteQuery(ctx *Context, q *sqlast.Select, parent *resolver) error {
	res, err := buildResolver(ctx, q, parent)
	if err != nil {
		return err
	}
	// D-filters for tables under the preserved side of an outer join must
	// live in the ON condition: a WHERE filter on a NULL-extended ttid
	// would wrongly drop unmatched rows. rewriteFrom records the bindings
	// it filters so rewriteWhere skips them.
	onFiltered := make(map[string]bool)
	if err := rewriteFrom(ctx, q, res, onFiltered); err != nil {
		return err
	}
	if err := rewriteSelectList(ctx, q, res); err != nil {
		return err
	}
	if err := rewriteWhere(ctx, q, res, onFiltered); err != nil {
		return err
	}
	if err := rewriteGroupBy(ctx, q, res); err != nil {
		return err
	}
	if err := rewriteHaving(ctx, q, res); err != nil {
		return err
	}
	// ORDER BY clauses need not be rewritten at all (§3.1): they reference
	// output columns, which the invariant guarantees are in client format.
	return nil
}

// buildResolver walks the FROM clause, recursively rewriting derived
// tables (rewriteQuery establishes the invariant for them) and recording
// bindings.
func buildResolver(ctx *Context, q *sqlast.Select, parent *resolver) (*resolver, error) {
	res := &resolver{parent: parent}
	var visit func(te sqlast.TableExpr) error
	visit = func(te sqlast.TableExpr) error {
		switch t := te.(type) {
		case *sqlast.TableName:
			info := ctx.Schema.Table(t.Name)
			if info == nil {
				// Views created through the middleware satisfy the
				// invariant already; expose their outputs as comparable.
				if cols := ctx.Schema.View(t.Name); cols != nil {
					outputs := make(map[string]bool, len(cols))
					for _, c := range cols {
						outputs[strings.ToLower(c)] = true
					}
					res.bindings = append(res.bindings, &rBinding{
						name:    strings.ToLower(t.Binding()),
						outputs: outputs,
					})
					return nil
				}
				return fmt.Errorf("rewrite: unknown table %s", t.Name)
			}
			res.bindings = append(res.bindings, &rBinding{
				name: strings.ToLower(t.Binding()),
				info: info,
			})
		case *sqlast.DerivedTable:
			if err := rewriteQuery(ctx, t.Sub, res); err != nil {
				return err
			}
			res.bindings = append(res.bindings, &rBinding{
				name:    strings.ToLower(t.Alias),
				outputs: outputColumns(t.Sub),
			})
		case *sqlast.JoinExpr:
			if err := visit(t.L); err != nil {
				return err
			}
			return visit(t.R)
		}
		return nil
	}
	for _, te := range q.From {
		if err := visit(te); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// outputColumns derives the visible output column names of a subquery.
func outputColumns(q *sqlast.Select) map[string]bool {
	out := make(map[string]bool)
	for _, it := range q.Items {
		switch {
		case it.Alias != "":
			out[strings.ToLower(it.Alias)] = true
		case it.Expr != nil:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				out[strings.ToLower(cr.Name)] = true
			} else {
				out[strings.ToLower(it.Expr.String())] = true
			}
		}
	}
	return out
}

// rewriteFrom implements Algorithm 2: derived tables were already rewritten
// by buildResolver; join conditions are rewritten exactly like WHERE
// clauses, including ttid-extension of tenant-specific join predicates.
// D-filters for tenant-specific base tables on the null-supplying side of
// a LEFT OUTER JOIN are added to the ON condition here.
func rewriteFrom(ctx *Context, q *sqlast.Select, res *resolver, onFiltered map[string]bool) error {
	var visit func(te sqlast.TableExpr) error
	visit = func(te sqlast.TableExpr) error {
		j, ok := te.(*sqlast.JoinExpr)
		if !ok {
			return nil
		}
		if err := visit(j.L); err != nil {
			return err
		}
		if err := visit(j.R); err != nil {
			return err
		}
		if j.On != nil {
			on, err := rewriteBoolExpr(ctx, j.On, res)
			if err != nil {
				return err
			}
			j.On = on
		}
		if j.Kind == sqlast.JoinLeftOuter {
			for _, t := range sqlast.BaseTablesOf([]sqlast.TableExpr{j.R}) {
				binding := strings.ToLower(t.Binding())
				info := ctx.Schema.Table(t.Name)
				if info != nil && info.TenantSpecific() && !onFiltered[binding] {
					onFiltered[binding] = true
					j.On = sqlast.AndExprs(j.On, DFilter(ctx, binding))
				}
			}
		}
		return nil
	}
	for _, te := range q.From {
		if err := visit(te); err != nil {
			return err
		}
	}
	return nil
}

// rewriteSelectList converts every attribute to client format and expands
// star expressions hiding the invisible ttid column (§3.1, Listing 10).
func rewriteSelectList(ctx *Context, q *sqlast.Select, res *resolver) error {
	// Phase 1: expand stars into explicit column references (hiding ttid).
	var items []sqlast.SelectItem
	for _, it := range q.Items {
		if it.Star {
			expanded, err := expandStar(it, res)
			if err != nil {
				return err
			}
			items = append(items, expanded...)
			continue
		}
		items = append(items, it)
	}
	// Phase 2: rewrite subqueries and wrap convertible attributes.
	for i := range items {
		it := &items[i]
		if err := rewriteSubqueriesIn(ctx, it.Expr, res); err != nil {
			return err
		}
		wrapped, converted := wrapConvertibles(ctx, it.Expr, res)
		if converted && it.Alias == "" {
			// Rename the conversion result back to the name the attribute
			// had before, so super-queries keep working (Listing 10 l.3).
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				it.Alias = cr.Name
			}
		}
		it.Expr = wrapped
	}
	q.Items = items
	return nil
}

func expandStar(it sqlast.SelectItem, res *resolver) ([]sqlast.SelectItem, error) {
	var out []sqlast.SelectItem
	want := strings.ToLower(it.StarTable)
	matched := false
	for _, b := range res.bindings {
		if want != "" && b.name != want {
			continue
		}
		matched = true
		if b.info != nil {
			for i := range b.info.Columns {
				ci := &b.info.Columns[i]
				out = append(out, sqlast.SelectItem{
					Expr: &sqlast.ColumnRef{Table: b.name, Name: ci.Name},
				})
			}
		} else {
			cols := make([]string, 0, len(b.outputs))
			for c := range b.outputs {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				out = append(out, sqlast.SelectItem{
					Expr: &sqlast.ColumnRef{Table: b.name, Name: c},
				})
			}
		}
	}
	if !matched {
		return nil, fmt.Errorf("rewrite: unknown table %q in star expression", it.StarTable)
	}
	return out, nil
}

// rewriteWhere rewrites the WHERE clause (conversions, ttid join
// predicates, rejection rules) and appends the D-filters for every
// tenant-specific base table (§3.1, Listing 11).
func rewriteWhere(ctx *Context, q *sqlast.Select, res *resolver, onFiltered map[string]bool) error {
	if q.Where != nil {
		w, err := rewriteBoolExpr(ctx, q.Where, res)
		if err != nil {
			return err
		}
		q.Where = w
	}
	// D-filters for this query level's own tenant-specific base tables
	// (those not already filtered in an outer-join ON condition).
	for _, b := range res.bindings {
		if b.info == nil || !b.info.TenantSpecific() || onFiltered[b.name] {
			continue
		}
		q.Where = sqlast.AndExprs(q.Where, DFilter(ctx, b.name))
	}
	return nil
}

// DFilter builds `binding.ttid IN (d1, ...)` — or a contradiction when D′
// is empty (no privileges).
func DFilter(ctx *Context, bindingName string) sqlast.Expr {
	ttid := &sqlast.ColumnRef{Table: bindingName, Name: mtsql.TTIDColumn}
	if len(ctx.D) == 0 {
		return &sqlast.BinaryExpr{Op: "=", L: sqlast.NewIntLit(1), R: sqlast.NewIntLit(0)}
	}
	list := make([]sqlast.Expr, len(ctx.D))
	for i, d := range ctx.D {
		list[i] = sqlast.NewIntLit(d)
	}
	return &sqlast.InExpr{X: ttid, List: list}
}

func rewriteGroupBy(ctx *Context, q *sqlast.Select, res *resolver) error {
	for i, g := range q.GroupBy {
		if err := rewriteSubqueriesIn(ctx, g, res); err != nil {
			return err
		}
		wrapped, _ := wrapConvertibles(ctx, g, res)
		q.GroupBy[i] = wrapped
	}
	return nil
}

func rewriteHaving(ctx *Context, q *sqlast.Select, res *resolver) error {
	if q.Having == nil {
		return nil
	}
	h, err := rewriteBoolExpr(ctx, q.Having, res)
	if err != nil {
		return err
	}
	q.Having = h
	return nil
}

// ---------------------------------------------------------------- predicates

// rewriteBoolExpr rewrites a predicate expression:
//  1. nested subqueries are rewritten recursively (invariant),
//  2. convertible attributes are wrapped in conversion-function calls,
//  3. predicates over tenant-specific attributes of different tables get
//     ttid equality predicates appended; IN-subqueries over tenant-specific
//     attributes become tuple INs carrying ttid on both sides,
//  4. predicates mixing tenant-specific with other attributes are rejected
//     (§2.4.2).
func rewriteBoolExpr(ctx *Context, e sqlast.Expr, res *resolver) (sqlast.Expr, error) {
	if err := rewriteSubqueriesIn(ctx, e, res); err != nil {
		return nil, err
	}
	pairs, err := analyzeTenantSpecific(ctx, e, res)
	if err != nil {
		return nil, err
	}
	wrapped, _ := wrapConvertibles(ctx, e, res)
	for _, p := range pairs {
		wrapped = sqlast.AndExprs(wrapped, &sqlast.BinaryExpr{
			Op: "=",
			L:  &sqlast.ColumnRef{Table: p[0], Name: mtsql.TTIDColumn},
			R:  &sqlast.ColumnRef{Table: p[1], Name: mtsql.TTIDColumn},
		})
	}
	return wrapped, nil
}

// rewriteSubqueriesIn rewrites every directly nested subquery of e in
// place, chaining the resolver for correlated references.
func rewriteSubqueriesIn(ctx *Context, e sqlast.Expr, res *resolver) error {
	var firstErr error
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if firstErr != nil {
			return false
		}
		switch x := n.(type) {
		case *sqlast.InExpr:
			if x.Sub != nil {
				if err := rewriteQuery(ctx, x.Sub, res); err != nil {
					firstErr = err
				}
			}
		case *sqlast.ExistsExpr:
			if err := rewriteQuery(ctx, x.Sub, res); err != nil {
				firstErr = err
			}
		case *sqlast.SubqueryExpr:
			if err := rewriteQuery(ctx, x.Sub, res); err != nil {
				firstErr = err
			}
		}
		return true
	})
	return firstErr
}

// wrapConvertibles wraps every reference to a convertible attribute in
// fromUniversal(toUniversal(attr, B.ttid), C). Constants are already in
// C's format and stay untouched. Subqueries are boundaries.
func wrapConvertibles(ctx *Context, e sqlast.Expr, res *resolver) (sqlast.Expr, bool) {
	converted := false
	out := sqlast.TransformExpr(e, func(n sqlast.Expr) sqlast.Expr {
		cr, ok := n.(*sqlast.ColumnRef)
		if !ok {
			return n
		}
		a, found := res.resolve(cr)
		if !found || a.col == nil || a.col.Comparability != sqlast.Convertible {
			return n
		}
		converted = true
		return ConversionCall(a.col, a.binding, cr, ctx.C)
	})
	return out, converted
}

// ConversionCall builds fromUniversal(toUniversal(expr, binding.ttid), C).
func ConversionCall(col *mtsql.ColumnInfo, binding string, expr sqlast.Expr, c int64) sqlast.Expr {
	to := &sqlast.FuncCall{Name: col.ToFunc, Args: []sqlast.Expr{
		expr,
		&sqlast.ColumnRef{Table: binding, Name: mtsql.TTIDColumn},
	}}
	return &sqlast.FuncCall{Name: col.FromFunc, Args: []sqlast.Expr{
		to,
		sqlast.NewIntLit(c),
	}}
}

// analyzeTenantSpecific walks comparison predicates, validating the
// tenant-specific comparison rules and collecting the (binding, binding)
// pairs that need ttid equality predicates. It also tuple-extends
// IN-subqueries over tenant-specific attributes in place.
func analyzeTenantSpecific(ctx *Context, e sqlast.Expr, res *resolver) ([][2]string, error) {
	var pairs [][2]string
	seen := make(map[string]bool)
	addPair := func(a, b string) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		k := a + "|" + b
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, [2]string{a, b})
		}
	}

	var firstErr error
	fail := func(err error) bool {
		if firstErr == nil {
			firstErr = err
		}
		return false
	}

	// classify returns the tenant-specific bindings and whether any
	// non-tenant-specific attribute occurs in the operand expression.
	classify := func(x sqlast.Expr) (tsBindings []string, hasOther bool) {
		for _, cr := range sqlast.ColumnRefsOf(x) {
			a, found := res.resolve(cr)
			if !found {
				continue
			}
			if a.comparability() == sqlast.Specific {
				tsBindings = append(tsBindings, a.binding)
			} else {
				hasOther = true
			}
		}
		return
	}

	checkComparison := func(operands ...sqlast.Expr) {
		var ts []string
		other := false
		for _, op := range operands {
			t, o := classify(op)
			ts = append(ts, t...)
			other = other || o
		}
		if len(ts) > 0 && other {
			fail(fmt.Errorf("rewrite: cannot compare tenant-specific attributes with other attributes (§2.4.2)"))
			return
		}
		for i := 1; i < len(ts); i++ {
			addPair(ts[0], ts[i])
		}
	}

	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if firstErr != nil {
			return false
		}
		switch x := n.(type) {
		case *sqlast.BinaryExpr:
			switch x.Op {
			case "=", "<>", "<", "<=", ">", ">=":
				checkComparison(x.L, x.R)
				return false
			}
		case *sqlast.BetweenExpr:
			checkComparison(x.X, x.Lo, x.Hi)
			return false
		case *sqlast.LikeExpr:
			checkComparison(x.X, x.Pattern)
			return false
		case *sqlast.InExpr:
			if x.Sub == nil {
				ops := append([]sqlast.Expr{x.X}, x.List...)
				checkComparison(ops...)
				return false
			}
			if err := extendTenantSpecificIn(ctx, x, res); err != nil {
				fail(err)
			}
			return false
		}
		return true
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return pairs, nil
}

// extendTenantSpecificIn makes `ts_attr IN (SELECT ts_attr ...)` tenant-
// aware by extending both sides with the owning tables' ttid columns:
// (attr, B.ttid) IN (SELECT attr', B'.ttid ...). The subquery has already
// been rewritten (and D-filtered) at this point.
func extendTenantSpecificIn(ctx *Context, in *sqlast.InExpr, res *resolver) error {
	cr, ok := in.X.(*sqlast.ColumnRef)
	if !ok {
		return nil // expression left sides stay as-is
	}
	a, found := res.resolve(cr)
	if !found || a.comparability() != sqlast.Specific {
		return nil
	}
	// The subquery's output must itself be a tenant-specific base column.
	if len(in.Sub.Items) != 1 || in.Sub.Items[0].Star {
		return fmt.Errorf("rewrite: IN subquery over tenant-specific attribute must select a single column")
	}
	subRes, err := buildResolver(ctx, in.Sub, res)
	if err != nil {
		return err
	}
	subItem := in.Sub.Items[0]
	subCr, ok := subItem.Expr.(*sqlast.ColumnRef)
	if !ok {
		return fmt.Errorf("rewrite: cannot compare tenant-specific attribute %s with a computed subquery column (§2.4.2)", cr)
	}
	sa, found := subRes.resolve(subCr)
	if !found || sa.comparability() != sqlast.Specific {
		return fmt.Errorf("rewrite: cannot compare tenant-specific attribute %s with non-tenant-specific subquery output (§2.4.2)", cr)
	}
	in.X = &sqlast.RowExpr{Exprs: []sqlast.Expr{
		in.X,
		&sqlast.ColumnRef{Table: a.binding, Name: mtsql.TTIDColumn},
	}}
	in.Sub.Items = append(in.Sub.Items, sqlast.SelectItem{
		Expr: &sqlast.ColumnRef{Table: sa.binding, Name: mtsql.TTIDColumn},
	})
	// GROUP BY subqueries must group by the new ttid output as well.
	if len(in.Sub.GroupBy) > 0 {
		in.Sub.GroupBy = append(in.Sub.GroupBy, &sqlast.ColumnRef{Table: sa.binding, Name: mtsql.TTIDColumn})
	}
	return nil
}
