package rewrite

import (
	"fmt"
	"strings"

	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
)

// PhysicalCreateTable converts an MTSQL CREATE TABLE into the physical
// form executed on the DBMS (basic layout, Figure 2): tenant-specific
// tables get the invisible ttid meta column, their primary key is extended
// with ttid, and global foreign keys between tenant-specific tables are
// extended with ttid on both sides (Appendix A.1).
func PhysicalCreateTable(schema *mtsql.Schema, ct *sqlast.CreateTable) *sqlast.CreateTable {
	out := &sqlast.CreateTable{Name: ct.Name, Generality: sqlast.Global}
	ts := ct.Generality == sqlast.TenantSpecific
	if ts {
		out.Columns = append(out.Columns, sqlast.ColumnDef{
			Name:    mtsql.TTIDColumn,
			Type:    sqlast.TypeName{Name: "INTEGER"},
			NotNull: true,
		})
	}
	for _, cd := range ct.Columns {
		phys := cd
		phys.Comparability = sqlast.Comparable // physical table carries no MT metadata
		phys.ToUniversal, phys.FromUniversal = "", ""
		out.Columns = append(out.Columns, phys)
	}
	for _, con := range ct.Constraints {
		pc := con
		switch con.Kind {
		case sqlast.ConstraintPrimaryKey:
			if ts {
				pc.Columns = append([]string{mtsql.TTIDColumn}, con.Columns...)
			}
		case sqlast.ConstraintForeignKey:
			ref := schema.Table(con.RefTable)
			if ts && ref != nil && ref.TenantSpecific() {
				pc.Columns = append(append([]string{}, con.Columns...), mtsql.TTIDColumn)
				pc.RefColumns = append(append([]string{}, con.RefColumns...), mtsql.TTIDColumn)
			}
		}
		out.Constraints = append(out.Constraints, pc)
	}
	return out
}

// TenantFKAsCheck rewrites a tenant-specific referential integrity
// constraint (imposed by tenant c on her own data only) into a CHECK
// constraint, following Appendix A.1:
//
//	CHECK ((SELECT COUNT(col) FROM t WHERE ttid=c AND col NOT IN
//	        (SELECT refcol FROM ref WHERE ttid=c)) = 0)
func TenantFKAsCheck(c int64, table string, fk sqlast.Constraint) (sqlast.Constraint, error) {
	if fk.Kind != sqlast.ConstraintForeignKey || len(fk.Columns) != 1 || len(fk.RefColumns) != 1 {
		return sqlast.Constraint{}, fmt.Errorf("rewrite: tenant-specific FK must reference a single column")
	}
	inner := sqlast.NewSelect()
	inner.Items = []sqlast.SelectItem{{Expr: &sqlast.ColumnRef{Name: fk.RefColumns[0]}}}
	inner.From = []sqlast.TableExpr{&sqlast.TableName{Name: fk.RefTable}}
	inner.Where = &sqlast.BinaryExpr{Op: "=",
		L: &sqlast.ColumnRef{Name: mtsql.TTIDColumn}, R: sqlast.NewIntLit(c)}

	outer := sqlast.NewSelect()
	outer.Items = []sqlast.SelectItem{{Expr: &sqlast.FuncCall{
		Name: "COUNT", Args: []sqlast.Expr{&sqlast.ColumnRef{Name: fk.Columns[0]}},
	}}}
	outer.From = []sqlast.TableExpr{&sqlast.TableName{Name: table}}
	outer.Where = sqlast.AndExprs(
		&sqlast.BinaryExpr{Op: "=", L: &sqlast.ColumnRef{Name: mtsql.TTIDColumn}, R: sqlast.NewIntLit(c)},
		&sqlast.InExpr{X: &sqlast.ColumnRef{Name: fk.Columns[0]}, Not: true, Sub: inner},
	)

	name := fk.Name
	if name == "" {
		name = fmt.Sprintf("fk_check_%s_%d", strings.ToLower(table), c)
	} else {
		name = fmt.Sprintf("%s_%d", name, c)
	}
	return sqlast.Constraint{
		Kind:  sqlast.ConstraintCheck,
		Name:  name,
		Check: &sqlast.BinaryExpr{Op: "=", L: &sqlast.SubqueryExpr{Sub: outer}, R: sqlast.NewIntLit(0)},
	}, nil
}

// Insert rewrites an MTSQL INSERT into one physical INSERT per tenant in
// D′ (§2.5, Appendix A.2): the ttid column is added, and values for
// convertible columns — supplied in C's format — are converted into each
// target tenant's format.
func Insert(ctx *Context, ins *sqlast.Insert) ([]sqlast.Statement, error) {
	info := ctx.Schema.Table(ins.Table)
	if info == nil {
		return nil, fmt.Errorf("rewrite: unknown table %s", ins.Table)
	}
	if !info.TenantSpecific() {
		// Global tables are inserted as-is (values are universal format).
		return []sqlast.Statement{cloneInsert(ins)}, nil
	}
	targets := ins.Columns
	if len(targets) == 0 {
		targets = info.ColumnNames()
	}
	cols := make([]*mtsql.ColumnInfo, len(targets))
	for i, name := range targets {
		ci := info.Column(name)
		if ci == nil {
			return nil, fmt.Errorf("rewrite: no column %s in %s", name, ins.Table)
		}
		cols[i] = ci
	}

	var out []sqlast.Statement
	for _, d := range ctx.D {
		phys := &sqlast.Insert{
			Table:   ins.Table,
			Columns: append([]string{mtsql.TTIDColumn}, targets...),
		}
		if ins.Sub != nil {
			sub, err := Query(ctx, ins.Sub)
			if err != nil {
				return nil, err
			}
			// Name the subquery outputs positionally and convert per column.
			for i := range sub.Items {
				sub.Items[i].Alias = fmt.Sprintf("mt_c%d", i+1)
			}
			wrapper := sqlast.NewSelect()
			wrapper.From = []sqlast.TableExpr{&sqlast.DerivedTable{Sub: sub, Alias: "mt_src"}}
			wrapper.Items = append(wrapper.Items, sqlast.SelectItem{Expr: sqlast.NewIntLit(d)})
			for i, ci := range cols {
				var e sqlast.Expr = &sqlast.ColumnRef{Table: "mt_src", Name: fmt.Sprintf("mt_c%d", i+1)}
				if ci.Comparability == sqlast.Convertible {
					e = convertCToTenant(ci, e, ctx.C, d)
				}
				wrapper.Items = append(wrapper.Items, sqlast.SelectItem{Expr: e})
			}
			phys.Sub = wrapper
		} else {
			for _, row := range ins.Rows {
				if len(row) != len(cols) {
					return nil, fmt.Errorf("rewrite: INSERT row has %d values for %d columns", len(row), len(cols))
				}
				newRow := make([]sqlast.Expr, 0, len(row)+1)
				newRow = append(newRow, sqlast.NewIntLit(d))
				for i, e := range row {
					v := sqlast.CloneExpr(e)
					if cols[i].Comparability == sqlast.Convertible {
						v = convertCToTenant(cols[i], v, ctx.C, d)
					}
					newRow = append(newRow, v)
				}
				phys.Rows = append(phys.Rows, newRow)
			}
		}
		out = append(out, phys)
	}
	return out, nil
}

func cloneInsert(ins *sqlast.Insert) *sqlast.Insert {
	out := &sqlast.Insert{
		Table:   ins.Table,
		Columns: append([]string{}, ins.Columns...),
		Sub:     sqlast.CloneSelect(ins.Sub),
	}
	for _, row := range ins.Rows {
		newRow := make([]sqlast.Expr, len(row))
		for i, e := range row {
			newRow[i] = sqlast.CloneExpr(e)
		}
		out.Rows = append(out.Rows, newRow)
	}
	return out
}

// convertCToTenant builds fromUniversal(toUniversal(e, C), d).
func convertCToTenant(ci *mtsql.ColumnInfo, e sqlast.Expr, c, d int64) sqlast.Expr {
	to := &sqlast.FuncCall{Name: ci.ToFunc, Args: []sqlast.Expr{e, sqlast.NewIntLit(c)}}
	return &sqlast.FuncCall{Name: ci.FromFunc, Args: []sqlast.Expr{to, sqlast.NewIntLit(d)}}
}

// Update rewrites an MTSQL UPDATE: the WHERE clause is rewritten like a
// query predicate plus D-filter, and assignments to convertible columns
// convert the C-format value into each row owner's format via the row's
// own ttid.
func Update(ctx *Context, up *sqlast.Update) (*sqlast.Update, error) {
	info := ctx.Schema.Table(up.Table)
	if info == nil {
		return nil, fmt.Errorf("rewrite: unknown table %s", up.Table)
	}
	out := &sqlast.Update{Table: up.Table}
	binding := strings.ToLower(up.Table)
	res := &resolver{bindings: []*rBinding{{name: binding, info: info}}}

	for _, a := range up.Sets {
		ci := info.Column(a.Column)
		if ci == nil {
			return nil, fmt.Errorf("rewrite: no column %s in %s", a.Column, up.Table)
		}
		if strings.EqualFold(a.Column, mtsql.TTIDColumn) {
			return nil, fmt.Errorf("rewrite: cannot assign to %s", mtsql.TTIDColumn)
		}
		e := sqlast.CloneExpr(a.Expr)
		if err := rewriteSubqueriesIn(ctx, e, res); err != nil {
			return nil, err
		}
		e, _ = wrapConvertibles(ctx, e, res)
		if ci.Comparability == sqlast.Convertible {
			// Store in the owner's format: from(to(expr, C), ttid).
			to := &sqlast.FuncCall{Name: ci.ToFunc, Args: []sqlast.Expr{e, sqlast.NewIntLit(ctx.C)}}
			e = &sqlast.FuncCall{Name: ci.FromFunc, Args: []sqlast.Expr{
				to, &sqlast.ColumnRef{Table: binding, Name: mtsql.TTIDColumn},
			}}
		}
		out.Sets = append(out.Sets, sqlast.Assignment{Column: a.Column, Expr: e})
	}

	var where sqlast.Expr
	if up.Where != nil {
		w, err := rewriteBoolExpr(ctx, sqlast.CloneExpr(up.Where), res)
		if err != nil {
			return nil, err
		}
		where = w
	}
	if info.TenantSpecific() {
		where = sqlast.AndExprs(where, DFilter(ctx, binding))
	}
	out.Where = where
	return out, nil
}

// Delete rewrites an MTSQL DELETE: predicate rewrite plus D-filter.
func Delete(ctx *Context, del *sqlast.Delete) (*sqlast.Delete, error) {
	info := ctx.Schema.Table(del.Table)
	if info == nil {
		return nil, fmt.Errorf("rewrite: unknown table %s", del.Table)
	}
	out := &sqlast.Delete{Table: del.Table}
	binding := strings.ToLower(del.Table)
	res := &resolver{bindings: []*rBinding{{name: binding, info: info}}}
	if del.Where != nil {
		w, err := rewriteBoolExpr(ctx, sqlast.CloneExpr(del.Where), res)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	if info.TenantSpecific() {
		out.Where = sqlast.AndExprs(out.Where, DFilter(ctx, binding))
	}
	return out, nil
}

// View rewrites CREATE VIEW: the defining query is rewritten with the
// creator's (C, D) so the view adheres to the invariant (§2.2.4).
func View(ctx *Context, cv *sqlast.CreateView) (*sqlast.CreateView, error) {
	sub, err := Query(ctx, cv.Sub)
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateView{Name: cv.Name, Sub: sub}, nil
}

// Scope rewrites a complex SCOPE expression into the SQL query that
// resolves it to a set of ttids (§3.1, Listing 12): every tenant owning at
// least one record satisfying the predicate is in D. Conversion functions
// are applied to convertible attributes; the scope query itself is not
// D-filtered (it *defines* D).
func Scope(ctx *Context, sq *sqlast.ScopeQuery) (*sqlast.Select, error) {
	tmp := sqlast.NewSelect()
	tmp.From = make([]sqlast.TableExpr, len(sq.From))
	for i, te := range sq.From {
		tmp.From[i] = sqlast.CloneTableExpr(te)
	}
	res, err := buildResolver(ctx, tmp, nil)
	if err != nil {
		return nil, err
	}
	// Project the ttid of the first tenant-specific base table.
	var tsBinding string
	for _, b := range res.bindings {
		if b.info != nil && b.info.TenantSpecific() {
			tsBinding = b.name
			break
		}
	}
	if tsBinding == "" {
		return nil, fmt.Errorf("rewrite: complex scope requires a tenant-specific table in FROM")
	}
	out := sqlast.NewSelect()
	out.Distinct = true
	out.Items = []sqlast.SelectItem{{
		Expr: &sqlast.ColumnRef{Table: tsBinding, Name: mtsql.TTIDColumn}, Alias: mtsql.TTIDColumn,
	}}
	out.From = tmp.From
	if sq.Where != nil {
		w, err := rewriteBoolExpr(ctx, sqlast.CloneExpr(sq.Where), res)
		if err != nil {
			return nil, err
		}
		out.Where = w
	}
	return out, nil
}
