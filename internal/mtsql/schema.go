package mtsql

import (
	"fmt"
	"strings"

	"mtbase/internal/sqlast"
)

// TTIDColumn is the invisible meta column that implements data ownership
// in the basic (shared-tables) layout, Figure 2.
const TTIDColumn = "ttid"

// ColumnInfo is the MT-specific metadata of one attribute (Table 1).
type ColumnInfo struct {
	Name          string
	Comparability sqlast.Comparability
	ToFunc        string // set iff Convertible
	FromFunc      string
}

// TableInfo is the MT-specific metadata of one table.
type TableInfo struct {
	Name       string
	Generality sqlast.Generality
	Columns    []ColumnInfo
	byName     map[string]*ColumnInfo
}

// TenantSpecific reports whether rows of this table are tenant-owned.
func (t *TableInfo) TenantSpecific() bool { return t.Generality == sqlast.TenantSpecific }

// Column returns metadata for a column (case-insensitive), or nil.
func (t *TableInfo) Column(name string) *ColumnInfo { return t.byName[strings.ToLower(name)] }

// ColumnNames returns the visible column names in order (ttid excluded —
// it is invisible to clients).
func (t *TableInfo) ColumnNames() []string {
	names := make([]string, 0, len(t.Columns))
	for _, c := range t.Columns {
		names = append(names, c.Name)
	}
	return names
}

// Schema is the MT-specific catalog the middleware caches: per-table
// generality and per-attribute comparability (persisted in the paper's
// "Schema" meta table), the conversion-function registry, and the parsed
// bodies of SQL-defined conversion UDFs (needed by the o4 inliner).
type Schema struct {
	tables map[string]*TableInfo
	convs  *Registry
	funcs  map[string]*sqlast.CreateFunction
	views  map[string][]string // view name -> client-visible output columns
}

// NewSchema returns an empty schema with an empty conversion registry.
func NewSchema() *Schema {
	return &Schema{
		tables: make(map[string]*TableInfo),
		convs:  NewRegistry(),
		funcs:  make(map[string]*sqlast.CreateFunction),
		views:  make(map[string][]string),
	}
}

// AddView records a view's client-visible output columns. A view created
// through the middleware already satisfies the rewrite invariant (its body
// was rewritten at creation, §2.2.4), so the rewriter treats it like a
// derived table: comparable outputs, no D-filter.
func (s *Schema) AddView(name string, cols []string) {
	s.views[strings.ToLower(name)] = cols
}

// View returns a view's output columns, or nil when unknown.
func (s *Schema) View(name string) []string { return s.views[strings.ToLower(name)] }

// DropView removes a view registration.
func (s *Schema) DropView(name string) { delete(s.views, strings.ToLower(name)) }

// Convs exposes the conversion registry.
func (s *Schema) Convs() *Registry { return s.convs }

// AddTable registers MT metadata from a CREATE TABLE statement and checks
// that convertible columns reference registered conversion pairs.
func (s *Schema) AddTable(ct *sqlast.CreateTable) (*TableInfo, error) {
	key := strings.ToLower(ct.Name)
	if _, dup := s.tables[key]; dup {
		return nil, fmt.Errorf("mtsql: table %s already registered", ct.Name)
	}
	info := &TableInfo{
		Name:       ct.Name,
		Generality: ct.Generality,
		byName:     make(map[string]*ColumnInfo),
	}
	for _, cd := range ct.Columns {
		if strings.EqualFold(cd.Name, TTIDColumn) {
			return nil, fmt.Errorf("mtsql: column name %s is reserved", TTIDColumn)
		}
		ci := ColumnInfo{Name: cd.Name, Comparability: cd.Comparability}
		if cd.Comparability == sqlast.Convertible {
			if ct.Generality != sqlast.TenantSpecific {
				return nil, fmt.Errorf("mtsql: global table %s cannot have convertible column %s", ct.Name, cd.Name)
			}
			pair := s.convs.ByFunc(cd.ToUniversal)
			if pair == nil || !strings.EqualFold(pair.ToFunc, cd.ToUniversal) {
				return nil, fmt.Errorf("mtsql: column %s.%s: unknown toUniversal function %s", ct.Name, cd.Name, cd.ToUniversal)
			}
			if !strings.EqualFold(pair.FromFunc, cd.FromUniversal) {
				return nil, fmt.Errorf("mtsql: column %s.%s: %s and %s are not a registered pair", ct.Name, cd.Name, cd.ToUniversal, cd.FromUniversal)
			}
			ci.ToFunc = pair.ToFunc
			ci.FromFunc = pair.FromFunc
		}
		if ct.Generality == sqlast.Global && cd.Comparability != sqlast.Comparable {
			// Global tables are shared between all tenants and can only
			// have comparable attributes (§2.2.1, footnote 1).
			return nil, fmt.Errorf("mtsql: global table %s requires comparable columns, %s is %s", ct.Name, cd.Name, cd.Comparability)
		}
		info.Columns = append(info.Columns, ci)
		info.byName[strings.ToLower(cd.Name)] = &info.Columns[len(info.Columns)-1]
	}
	s.tables[key] = info
	return info, nil
}

// DropTable removes a table's metadata.
func (s *Schema) DropTable(name string) { delete(s.tables, strings.ToLower(name)) }

// Table returns metadata for a table (case-insensitive), or nil.
func (s *Schema) Table(name string) *TableInfo { return s.tables[strings.ToLower(name)] }

// Tables returns all registered tables (unordered).
func (s *Schema) Tables() []*TableInfo {
	out := make([]*TableInfo, 0, len(s.tables))
	for _, t := range s.tables {
		out = append(out, t)
	}
	return out
}

// AddFunction retains the parsed body of a SQL-defined function so the o4
// inliner can expand conversion calls into joins with the meta tables.
func (s *Schema) AddFunction(cf *sqlast.CreateFunction) {
	s.funcs[strings.ToLower(cf.Name)] = cf
}

// Function returns a retained function definition, or nil.
func (s *Schema) Function(name string) *sqlast.CreateFunction {
	return s.funcs[strings.ToLower(name)]
}
