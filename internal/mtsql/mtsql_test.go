package mtsql

import (
	"math"
	"testing"
	"testing/quick"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// TestDistributabilityTable2 reproduces the full matrix of Table 2.
func TestDistributabilityTable2(t *testing.T) {
	cases := []struct {
		agg  string
		want map[ConvClass]bool
	}{
		{"COUNT", map[ConvClass]bool{ClassLinear: true, ClassAffine: true, ClassOrderPreserving: true, ClassEqualityPreserving: true}},
		{"MIN", map[ConvClass]bool{ClassLinear: true, ClassAffine: true, ClassOrderPreserving: true, ClassEqualityPreserving: false}},
		{"MAX", map[ConvClass]bool{ClassLinear: true, ClassAffine: true, ClassOrderPreserving: true, ClassEqualityPreserving: false}},
		{"SUM", map[ConvClass]bool{ClassLinear: true, ClassAffine: true, ClassOrderPreserving: false, ClassEqualityPreserving: false}},
		{"AVG", map[ConvClass]bool{ClassLinear: true, ClassAffine: true, ClassOrderPreserving: false, ClassEqualityPreserving: false}},
		{"MEDIAN", map[ConvClass]bool{ClassLinear: false, ClassAffine: false, ClassOrderPreserving: false, ClassEqualityPreserving: false}}, // holistic
	}
	for _, c := range cases {
		for class, want := range c.want {
			if got := Distributes(c.agg, class); got != want {
				t.Errorf("Distributes(%s, %s) = %v, want %v", c.agg, class, got, want)
			}
		}
	}
}

func TestConvClassLattice(t *testing.T) {
	if !ClassLinear.AtLeast(ClassAffine) || !ClassAffine.AtLeast(ClassOrderPreserving) ||
		!ClassOrderPreserving.AtLeast(ClassEqualityPreserving) {
		t.Error("lattice ordering broken")
	}
	if ClassEqualityPreserving.AtLeast(ClassOrderPreserving) {
		t.Error("equality-preserving must not imply order-preserving")
	}
}

// currencyPair mirrors Listings 6/7: multiplication by a per-tenant rate.
func currencyPair(rates map[int64]float64) GoPair {
	return GoPair{
		To: func(v sqltypes.Value, t int64) sqltypes.Value {
			return sqltypes.NewFloat(v.AsFloat() * rates[t])
		},
		From: func(v sqltypes.Value, t int64) sqltypes.Value {
			return sqltypes.NewFloat(v.AsFloat() / rates[t])
		},
	}
}

// phonePair mirrors Listings 4/5: strip/prepend a per-tenant prefix.
func phonePair(prefixes map[int64]string) GoPair {
	return GoPair{
		To: func(v sqltypes.Value, t int64) sqltypes.Value {
			s := v.AsString()
			p := prefixes[t]
			if len(s) >= len(p) && s[:len(p)] == p {
				return sqltypes.NewString(s[len(p):])
			}
			return sqltypes.NewString(s)
		},
		From: func(v sqltypes.Value, t int64) sqltypes.Value {
			return sqltypes.NewString(prefixes[t] + v.AsString())
		},
	}
}

func floatEq(a, b sqltypes.Value) bool {
	x, y := a.AsFloat(), b.AsFloat()
	if x == y {
		return true
	}
	return math.Abs(x-y) <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
}

func strEq(a, b sqltypes.Value) bool { return a.AsString() == b.AsString() }

func TestCurrencyPairSatisfiesDefinition1(t *testing.T) {
	rates := map[int64]float64{1: 1.0, 2: 1.1, 3: 0.25}
	pair := currencyPair(rates)
	tenants := []int64{1, 2, 3}
	samples := []sqltypes.Value{
		sqltypes.NewFloat(0), sqltypes.NewFloat(1), sqltypes.NewFloat(-3.5),
		sqltypes.NewFloat(50000), sqltypes.NewFloat(1e6),
	}
	if err := pair.Validate(tenants, samples, floatEq); err != nil {
		t.Error(err)
	}
	if err := pair.CheckOrderPreserving(tenants, samples); err != nil {
		t.Errorf("currency must be order-preserving: %v", err)
	}
}

func TestPhonePairEqualityOnly(t *testing.T) {
	prefixes := map[int64]string{1: "", 2: "00", 3: "+"}
	pair := phonePair(prefixes)
	// Definition 1 (iii) quantifies over each tenant's own domain: samples
	// must carry that tenant's prefix.
	universal := []string{"4411223344", "15550001111", "7", "991"}
	for tenant, prefix := range prefixes {
		samples := make([]sqltypes.Value, len(universal))
		for i, u := range universal {
			samples[i] = sqltypes.NewString(prefix + u)
		}
		if err := pair.Validate([]int64{tenant}, samples, strEq); err != nil {
			t.Errorf("tenant %d: %v", tenant, err)
		}
	}
	// The pair is NOT order-preserving (§4.2.2): stripping the prefix "00"
	// inverts the order of "0044..." (prefixed) and "15..." (already in
	// exit-code-free form): "0044" < "15" but to gives "44" > "15".
	if err := pair.CheckOrderPreserving([]int64{2}, []sqltypes.Value{
		sqltypes.NewString("0044"), sqltypes.NewString("15"),
	}); err == nil {
		t.Error("phone pair unexpectedly order-preserving")
	}
}

// Property: linear conversions distribute over SUM — summing converted
// values equals converting the sum (Corollary of fully-SUM-preserving).
func TestLinearSumPreservationProperty(t *testing.T) {
	rates := map[int64]float64{7: 1.25}
	pair := currencyPair(rates)
	f := func(xs []float64) bool {
		var sumConv, sum float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // outside the modelled domain
			}
			sumConv += pair.To(sqltypes.NewFloat(x), 7).AsFloat()
			sum += x
		}
		conv := pair.To(sqltypes.NewFloat(sum), 7).AsFloat()
		return math.Abs(conv-sumConv) <= 1e-6*math.Max(1, math.Abs(conv))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: affine conversions distribute over AVG via the weighted form
// (Appendix B): avg(to(x)) = to(avg(x)).
func TestAffineAvgPreservationProperty(t *testing.T) {
	a, b := 1.8, 32.0 // Celsius -> Fahrenheit
	to := func(x float64) float64 { return a*x + b }
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		var sumConv, sum float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true
			}
			sumConv += to(x)
			sum += x
		}
		n := float64(len(xs))
		return math.Abs(sumConv/n-to(sum/n)) <= 1e-6*math.Max(1, math.Abs(sumConv/n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(ConvPair{Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal", Class: ClassLinear}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(ConvPair{Name: "currency", ToFunc: "x", FromFunc: "y"}); err == nil {
		t.Error("duplicate name accepted")
	}
	if err := r.Register(ConvPair{Name: "other", ToFunc: "currencyToUniversal", FromFunc: "z"}); err == nil {
		t.Error("duplicate function accepted")
	}
	if p := r.ByName("CURRENCY"); p == nil || p.Class != ClassLinear {
		t.Error("ByName lookup failed")
	}
	if p := r.ByFunc("currencyfromuniversal"); p == nil || p.Name != "currency" {
		t.Error("ByFunc lookup failed")
	}
	if len(r.Pairs()) != 1 {
		t.Error("Pairs count")
	}
}

func newTestSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	if err := s.Convs().Register(ConvPair{Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal", Class: ClassLinear}); err != nil {
		t.Fatal(err)
	}
	return s
}

func addTable(t *testing.T, s *Schema, ddl string) *TableInfo {
	t.Helper()
	stmt, err := sqlparse.ParseStatement(ddl)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := s.AddTable(stmt.(*sqlast.CreateTable))
	if err != nil {
		t.Fatalf("AddTable: %v", err)
	}
	return info
}

func TestSchemaComparabilityTable1(t *testing.T) {
	s := newTestSchema(t)
	emp := addTable(t, s, `CREATE TABLE Employees SPECIFIC (
		E_emp_id INTEGER NOT NULL SPECIFIC,
		E_name VARCHAR(25) NOT NULL COMPARABLE,
		E_role_id INTEGER NOT NULL SPECIFIC,
		E_reg_id INTEGER NOT NULL COMPARABLE,
		E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
		E_age INTEGER NOT NULL COMPARABLE)`)
	reg := addTable(t, s, `CREATE TABLE Regions (Re_reg_id INTEGER NOT NULL, Re_name VARCHAR(25) NOT NULL)`)

	// Table 1's classification of the running example.
	if !emp.TenantSpecific() || reg.TenantSpecific() {
		t.Error("generality wrong")
	}
	wantComp := map[string]sqlast.Comparability{
		"E_emp_id": sqlast.Specific, "E_name": sqlast.Comparable,
		"E_role_id": sqlast.Specific, "E_reg_id": sqlast.Comparable,
		"E_salary": sqlast.Convertible, "E_age": sqlast.Comparable,
	}
	for col, want := range wantComp {
		if got := emp.Column(col).Comparability; got != want {
			t.Errorf("%s comparability = %v, want %v", col, got, want)
		}
	}
	if emp.Column("E_salary").ToFunc != "currencyToUniversal" {
		t.Error("conversion pair not recorded")
	}
	if reg.Column("Re_name").Comparability != sqlast.Comparable {
		t.Error("global columns must be comparable")
	}
}

func TestSchemaRejectsInvalid(t *testing.T) {
	s := newTestSchema(t)
	cases := []string{
		// convertible column with unregistered function
		"CREATE TABLE t SPECIFIC (a DECIMAL(15,2) CONVERTIBLE @nope @nada)",
		// mismatched pair (from used as to)
		"CREATE TABLE t SPECIFIC (a DECIMAL(15,2) CONVERTIBLE @currencyFromUniversal @currencyToUniversal)",
		// global table with a specific column
		"CREATE TABLE g (a INTEGER SPECIFIC)",
		// reserved ttid column
		"CREATE TABLE t SPECIFIC (ttid INTEGER)",
	}
	for _, ddl := range cases {
		stmt, err := sqlparse.ParseStatement(ddl)
		if err != nil {
			t.Fatalf("parse %q: %v", ddl, err)
		}
		if _, err := s.AddTable(stmt.(*sqlast.CreateTable)); err == nil {
			t.Errorf("accepted invalid DDL: %s", ddl)
		}
	}
}

func TestSchemaDropAndFunctions(t *testing.T) {
	s := newTestSchema(t)
	addTable(t, s, "CREATE TABLE t SPECIFIC (a INTEGER)")
	if s.Table("T") == nil {
		t.Fatal("lookup failed")
	}
	s.DropTable("t")
	if s.Table("t") != nil {
		t.Error("drop failed")
	}
	stmt, err := sqlparse.ParseStatement(`CREATE FUNCTION f (INTEGER) RETURNS INTEGER AS 'SELECT $1 + 1' LANGUAGE SQL IMMUTABLE`)
	if err != nil {
		t.Fatal(err)
	}
	s.AddFunction(stmt.(*sqlast.CreateFunction))
	if s.Function("F") == nil {
		t.Error("function lookup failed")
	}
}
