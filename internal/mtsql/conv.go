// Package mtsql implements the MTSQL semantic layer of the paper (§2):
// table generality, attribute comparability, conversion-function pairs with
// their algebraic property lattice (Definition 1 and §2.2.2), and the
// aggregate-distributability matrix of Table 2 that gates the o3
// optimization pass.
package mtsql

import (
	"fmt"
	"strings"

	"mtbase/internal/sqltypes"
)

// ConvClass places a conversion-function pair in the property lattice of
// §2.2.2. Classes are ordered: every linear pair is affine, every affine
// pair (with positive slope) is order-preserving, and every valid pair is
// at least equality-preserving (Corollary 1).
type ConvClass uint8

// Conversion classes, weakest first.
const (
	// ClassEqualityPreserving is the minimal property every valid pair
	// has (Corollary 1); e.g. the phone-prefix conversions of Listing 4/5.
	ClassEqualityPreserving ConvClass = iota
	// ClassOrderPreserving: x < y ⇔ to(x,t) < to(y,t) for all tenants.
	ClassOrderPreserving
	// ClassAffine: to(x,t) = a_t·x + b_t (e.g. temperature units).
	ClassAffine
	// ClassLinear: to(x,t) = c_t·x (e.g. the currency conversions of
	// Listing 6/7, fully-SUM-preserving).
	ClassLinear
)

func (c ConvClass) String() string {
	switch c {
	case ClassEqualityPreserving:
		return "equality-preserving"
	case ClassOrderPreserving:
		return "order-preserving"
	case ClassAffine:
		return "affine"
	case ClassLinear:
		return "linear"
	}
	return fmt.Sprintf("ConvClass(%d)", uint8(c))
}

// AtLeast reports whether c has all the guarantees of o.
func (c ConvClass) AtLeast(o ConvClass) bool { return c >= o }

// Distributes reproduces Table 2: whether the aggregate function agg
// distributes over a conversion pair of the given class. Holistic
// aggregates (anything not in the standard five) never distribute.
func Distributes(agg string, c ConvClass) bool {
	switch strings.ToUpper(agg) {
	case "COUNT":
		// Conversion functions are scalar-to-scalar, hence always
		// fully-COUNT-preserving.
		return true
	case "MIN", "MAX":
		return c.AtLeast(ClassOrderPreserving)
	case "SUM", "AVG":
		// Linear pairs distribute directly; affine pairs distribute via
		// the count-weighted form proven in Appendix B.
		return c.AtLeast(ClassAffine)
	}
	return false
}

// ConvPair is the metadata of a registered conversion-function pair: the
// names of the two SQL UDFs plus the algebraic class the optimizer may
// rely on.
type ConvPair struct {
	Name     string // pair name, e.g. "currency"
	ToFunc   string // toUniversal UDF name
	FromFunc string // fromUniversal UDF name
	Class    ConvClass
}

// GoPair is an executable Go realization of a conversion pair, used by the
// data generator (to materialize tenant formats) and by property tests of
// Definition 1.
type GoPair struct {
	To   func(v sqltypes.Value, tenant int64) sqltypes.Value
	From func(v sqltypes.Value, tenant int64) sqltypes.Value
}

// Validate checks Definition 1 (iii) — fromUniversal inverts toUniversal —
// and the Corollary 1/2 equality-preservation consequences on the given
// sample values and tenants. eq decides value equality (callers pass an
// epsilon comparison for floating-point domains).
func (p GoPair) Validate(tenants []int64, samples []sqltypes.Value, eq func(a, b sqltypes.Value) bool) error {
	for _, t := range tenants {
		for _, x := range samples {
			// (iii) from(to(x,t),t) = x
			if got := p.From(p.To(x, t), t); !eq(got, x) {
				return fmt.Errorf("mtsql: pair is not invertible for tenant %d: from(to(%v)) = %v", t, x, got)
			}
		}
	}
	// Corollary 1: to is equality-preserving (injective on samples).
	for _, t := range tenants {
		seen := make(map[string]sqltypes.Value)
		for _, x := range samples {
			k := string(sqltypes.AppendKey(nil, p.To(x, t)))
			if prev, dup := seen[k]; dup && !eq(prev, x) {
				return fmt.Errorf("mtsql: toUniversal(·,%d) maps %v and %v to the same value", t, prev, x)
			}
			seen[k] = x
		}
	}
	// Corollary 2: cross-tenant conversion through universal format
	// preserves equality.
	for _, ti := range tenants {
		for _, tj := range tenants {
			for _, x := range samples {
				a := p.From(p.To(x, ti), tj)
				b := p.From(p.To(x, ti), tj)
				if !eq(a, b) {
					return fmt.Errorf("mtsql: cross-tenant conversion is not deterministic")
				}
			}
		}
	}
	return nil
}

// CheckOrderPreserving verifies the order-preservation property on samples
// for each tenant; used to validate a claimed ConvClass.
func (p GoPair) CheckOrderPreserving(tenants []int64, samples []sqltypes.Value) error {
	for _, t := range tenants {
		for _, x := range samples {
			for _, y := range samples {
				cx, okx := sqltypes.Compare(x, y)
				tx := p.To(x, t)
				ty := p.To(y, t)
				cu, oku := sqltypes.Compare(tx, ty)
				if okx && oku && sign(cx) != sign(cu) {
					return fmt.Errorf("mtsql: order not preserved for tenant %d: %v vs %v -> %v vs %v", t, x, y, tx, ty)
				}
			}
		}
	}
	return nil
}

func sign(c int) int {
	switch {
	case c < 0:
		return -1
	case c > 0:
		return 1
	}
	return 0
}

// Registry holds the conversion pairs known to an MTBase deployment,
// addressable by pair name and by either UDF name.
type Registry struct {
	byName map[string]*ConvPair
	byFunc map[string]*ConvPair
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*ConvPair), byFunc: make(map[string]*ConvPair)}
}

// Register adds a pair; it is an error to reuse a name or function name.
func (r *Registry) Register(p ConvPair) error {
	key := strings.ToLower(p.Name)
	if _, dup := r.byName[key]; dup {
		return fmt.Errorf("mtsql: conversion pair %s already registered", p.Name)
	}
	for _, fn := range []string{p.ToFunc, p.FromFunc} {
		if _, dup := r.byFunc[strings.ToLower(fn)]; dup {
			return fmt.Errorf("mtsql: conversion function %s already registered", fn)
		}
	}
	cp := p
	r.byName[key] = &cp
	r.byFunc[strings.ToLower(p.ToFunc)] = &cp
	r.byFunc[strings.ToLower(p.FromFunc)] = &cp
	return nil
}

// ByName returns the pair registered under name, or nil.
func (r *Registry) ByName(name string) *ConvPair { return r.byName[strings.ToLower(name)] }

// ByFunc returns the pair owning the given UDF name, or nil.
func (r *Registry) ByFunc(fn string) *ConvPair { return r.byFunc[strings.ToLower(fn)] }

// Pairs returns all registered pairs (unordered).
func (r *Registry) Pairs() []*ConvPair {
	out := make([]*ConvPair, 0, len(r.byName))
	for _, p := range r.byName {
		out = append(out, p)
	}
	return out
}
