package bench

// Wire-protocol throughput experiment: N client connections speak the
// mtserve protocol over a real TCP loopback (or to an externally running
// server), each running an MT-H query in a closed loop, one series per
// optimization level. Compared against the in-process numbers this puts a
// price on the network hop: framing, value codec, per-statement admission
// and the extra copy out of the engine's reused row buffers.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mtbase/internal/client"
	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/server"
)

// ServeSpec parameterizes the wire throughput run (mtbench -serve).
type ServeSpec struct {
	SF          float64
	Tenants     int
	Dist        mth.Distribution
	Mode        engine.Mode
	QueryID     int               // measured query; default Q6
	Concurrency int               // concurrent client connections; default 1
	Ops         int               // measured executions per level; default 64
	Levels      []optimizer.Level // default: every level
	Parallelism int               // intra-query workers (loopback server only)
	Addr        string            // non-empty: benchmark a running server instead
}

// ServeLevelResult is one optimization level's series.
type ServeLevelResult struct {
	Level   optimizer.Level
	Reads   int
	Elapsed float64 // seconds
	QPS     float64
	P50     float64 // milliseconds
	P99     float64
}

// ServeResult holds the per-level wire throughput numbers.
type ServeResult struct {
	Spec   ServeSpec
	Addr   string // the address actually benchmarked
	Levels []ServeLevelResult
}

func (s *ServeSpec) defaults() {
	if s.QueryID == 0 {
		s.QueryID = 6
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 1
	}
	if s.Ops <= 0 {
		s.Ops = 64
	}
	if len(s.Levels) == 0 {
		s.Levels = append([]optimizer.Level(nil), optimizer.Levels...)
	}
	if s.Dist == "" {
		s.Dist = mth.Uniform
	}
}

// runWireQuery mirrors mth.RunOnMT over a wire connection: setup
// statements, the measured SELECT, teardown.
func runWireQuery(conn *client.Conn, q mth.Query) error {
	for _, s := range q.Setup {
		if _, err := conn.Exec(s); err != nil {
			return fmt.Errorf("Q%d setup: %w", q.ID, err)
		}
	}
	_, err := conn.Query(q.SQL)
	for _, s := range q.Teardown {
		if _, terr := conn.Exec(s); terr != nil && err == nil {
			err = terr
		}
	}
	if err != nil {
		return fmt.Errorf("Q%d: %w", q.ID, err)
	}
	return nil
}

// RunServe measures wire-protocol query throughput per optimization level.
// With spec.Addr empty it builds the MT-H instance and serves it on a TCP
// loopback; otherwise it connects to the server already running there
// (which must serve a dataset with spec.QueryID's tables).
func RunServe(spec ServeSpec, progress io.Writer) (*ServeResult, error) {
	spec.defaults()
	addr := spec.Addr
	if addr == "" {
		cfg := mth.Config{SF: spec.SF, Tenants: spec.Tenants, Dist: spec.Dist, Seed: 42, Mode: spec.Mode}
		inst, err := mth.LoadMT(mth.Generate(cfg))
		if err != nil {
			return nil, err
		}
		if err := inst.GrantReadTo(1); err != nil {
			return nil, err
		}
		if spec.Parallelism > 0 {
			inst.Srv.DB().SetParallelism(spec.Parallelism)
		}
		srv := server.New(inst.Srv, nil, server.Config{})
		bound, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Shutdown(context.Background())
		addr = bound.String()
	}
	q, err := mth.QueryByID(spec.SF, spec.QueryID)
	if err != nil {
		return nil, err
	}

	res := &ServeResult{Spec: spec, Addr: addr}
	for _, level := range spec.Levels {
		lr, err := runServeLevel(addr, level, q, spec)
		if err != nil {
			return nil, err
		}
		res.Levels = append(res.Levels, *lr)
		if progress != nil {
			fmt.Fprintf(progress, "serve Q%d %s: %d reads in %.2fs (%.1f qps)\n",
				spec.QueryID, level, lr.Reads, lr.Elapsed, lr.QPS)
		}
	}
	return res, nil
}

func runServeLevel(addr string, level optimizer.Level, q mth.Query, spec ServeSpec) (*ServeLevelResult, error) {
	conns := make([]*client.Conn, spec.Concurrency)
	for i := range conns {
		conn, err := client.Dial(addr, 1, level.String())
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		if _, err := conn.Exec(`SET SCOPE = "IN ()"`); err != nil {
			return nil, err
		}
		conns[i] = conn
	}
	if err := runWireQuery(conns[0], q); err != nil { // warm plan + UDF caches
		return nil, err
	}

	var taken int64
	errc := make(chan error, spec.Concurrency)
	lats := make([][]time.Duration, spec.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for r := 0; r < spec.Concurrency; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for atomic.AddInt64(&taken, 1) <= int64(spec.Ops) {
				t0 := time.Now()
				if err := runWireQuery(conns[r], q); err != nil {
					errc <- err
					return
				}
				lats[r] = append(lats[r], time.Since(t0))
			}
		}(r)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e6
	}
	return &ServeLevelResult{
		Level:   level,
		Reads:   len(all),
		Elapsed: elapsed.Seconds(),
		QPS:     float64(len(all)) / elapsed.Seconds(),
		P50:     pct(0.50),
		P99:     pct(0.99),
	}, nil
}

// WriteServe renders the per-level series as one human-readable table.
func (r *ServeResult) WriteServe(w io.Writer) {
	fmt.Fprintf(w, "wire throughput: Q%d over %s, sf=%g, T=%d, clients=%d, %d ops/level\n",
		r.Spec.QueryID, r.Addr, r.Spec.SF, r.Spec.Tenants, r.Spec.Concurrency, r.Spec.Ops)
	fmt.Fprintf(w, "  %-10s %10s %10s %10s\n", "level", "qps", "p50 ms", "p99 ms")
	for _, l := range r.Levels {
		fmt.Fprintf(w, "  %-10s %10.1f %10.2f %10.2f\n", l.Level, l.QPS, l.P50, l.P99)
	}
}
