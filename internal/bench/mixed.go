package bench

// Mixed read/write throughput experiment: N reader connections run a
// conversion-heavy MT-H query in a closed loop while background writers
// commit inserts and updates to a side table, each commit publishing a
// fresh copy-on-write table snapshot under DB.mu. A cursor opened before
// the first write stays pinned to its snapshot the whole time and is
// drained at the end — the row count proves writers never perturbed an
// open reader. This is the concurrency story ADR-005 claims, measured:
// reads/sec with tail latencies, against the write commit rate that
// overlapped them.

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
)

// MixedSpec parameterizes the mixed read/write run (mtbench -mixed).
type MixedSpec struct {
	SF          float64
	Tenants     int
	Dist        mth.Distribution
	Mode        engine.Mode
	Level       optimizer.Level
	QueryID     int // measured read query; default Q6
	Concurrency int // concurrent reader connections; default 1
	Parallelism int   // intra-query workers per read; 0 = engine default
	Writers     int   // background writer goroutines; default 2
	Ops         int   // total measured reads across all readers; default 64
	MemLimit    int64 // per-statement memory cap in bytes; 0 = unlimited
}

// MixedResult holds the measured throughput numbers.
type MixedResult struct {
	Spec         MixedSpec
	Reads        int     // measured read executions
	Writes       int64   // write commits that overlapped them
	Elapsed      float64 // seconds
	QPS          float64 // reads per second
	P50          float64 // read latency median, milliseconds
	P99          float64 // read latency 99th percentile, milliseconds
	WritesPerSec float64
	CursorRows   int // rows the pre-write cursor drained (its pinned snapshot)
}

func (s *MixedSpec) defaults() {
	if s.QueryID == 0 {
		s.QueryID = 6
	}
	if s.Concurrency <= 0 {
		s.Concurrency = 1
	}
	if s.Writers < 0 {
		s.Writers = 0
	} else if s.Writers == 0 {
		s.Writers = 2
	}
	if s.Ops <= 0 {
		s.Ops = 64
	}
	// Level's zero value is Canonical — a valid choice, so it is not
	// defaulted here; mtbench defaults it to o4 at the flag layer.
	if s.Dist == "" {
		s.Dist = mth.Uniform
	}
}

// RunMixed builds the MT-H instance and drives the mixed workload.
func RunMixed(spec MixedSpec, progress io.Writer) (*MixedResult, error) {
	spec.defaults()
	cfg := mth.Config{SF: spec.SF, Tenants: spec.Tenants, Dist: spec.Dist, Seed: 42, Mode: spec.Mode}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		return nil, err
	}
	if err := inst.GrantReadTo(1); err != nil {
		return nil, err
	}
	db := inst.Srv.DB()
	if spec.Parallelism > 0 {
		db.SetParallelism(spec.Parallelism)
	}
	if spec.MemLimit > 0 {
		db.SetMemoryLimit(spec.MemLimit)
	}
	if _, err := db.ExecSQL(`CREATE TABLE bench_audit (id INTEGER NOT NULL, v INTEGER NOT NULL)`); err != nil {
		return nil, err
	}
	q, err := mth.QueryByID(spec.SF, spec.QueryID)
	if err != nil {
		return nil, err
	}

	conns := make([]*middleware.Conn, spec.Concurrency)
	for i := range conns {
		if conns[i], err = inst.Connect(1, "IN ()"); err != nil {
			return nil, err
		}
		conns[i].SetOptLevel(spec.Level)
	}
	if _, err := mth.RunOnMT(conns[0], q); err != nil { // warm plan + UDF caches
		return nil, err
	}

	// Pin a cursor before the first write commits; it must drain exactly
	// the rows of its snapshot no matter how many commits happen meanwhile.
	pinned := db.Table("lineitem").RowCount()
	cursor, err := db.QueryRows(`SELECT l_orderkey FROM lineitem`)
	if err != nil {
		return nil, err
	}
	defer cursor.Close()

	stop := make(chan struct{})
	errc := make(chan error, spec.Writers+spec.Concurrency)
	var writes int64
	var wg sync.WaitGroup
	for w := 0; w < spec.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.ExecSQL(fmt.Sprintf(`INSERT INTO bench_audit VALUES (%d, %d)`, w*1_000_000+i, i)); err != nil {
					errc <- err
					return
				}
				if i%8 == 0 {
					if _, err := db.ExecSQL(fmt.Sprintf(`UPDATE bench_audit SET v = v + 1 WHERE id %% 13 = %d`, i%13)); err != nil {
						errc <- err
						return
					}
				}
				atomic.AddInt64(&writes, 1)
			}
		}(w)
	}

	var opsTaken int64
	lats := make([][]time.Duration, spec.Concurrency)
	var rg sync.WaitGroup
	start := time.Now()
	for r := 0; r < spec.Concurrency; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			conn := conns[r]
			for atomic.AddInt64(&opsTaken, 1) <= int64(spec.Ops) {
				t0 := time.Now()
				if _, err := mth.RunOnMT(conn, q); err != nil {
					errc <- err
					return
				}
				lats[r] = append(lats[r], time.Since(t0))
			}
		}(r)
	}
	rg.Wait()
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	drained := 0
	for cursor.Next() {
		drained++
	}
	if err := cursor.Err(); err != nil {
		return nil, fmt.Errorf("pinned cursor failed after %d writes: %w", writes, err)
	}
	if drained != pinned {
		return nil, fmt.Errorf("pinned cursor saw %d rows, snapshot had %d — writers leaked into an open cursor", drained, pinned)
	}

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return float64(all[int(p*float64(len(all)-1))].Nanoseconds()) / 1e6
	}
	res := &MixedResult{
		Spec:         spec,
		Reads:        len(all),
		Writes:       writes,
		Elapsed:      elapsed.Seconds(),
		QPS:          float64(len(all)) / elapsed.Seconds(),
		P50:          pct(0.50),
		P99:          pct(0.99),
		WritesPerSec: float64(writes) / elapsed.Seconds(),
		CursorRows:   drained,
	}
	if progress != nil {
		fmt.Fprintf(progress, "mixed Q%d: %d reads / %d writes in %.2fs\n", spec.QueryID, res.Reads, res.Writes, res.Elapsed)
	}
	return res, nil
}

// WriteMixed renders the result as one human-readable block.
func (r *MixedResult) WriteMixed(w io.Writer) {
	fmt.Fprintf(w, "mixed read/write: Q%d at %s, sf=%g, T=%d, mode=%s, readers=%d, writers=%d, parallelism=%d\n",
		r.Spec.QueryID, r.Spec.Level, r.Spec.SF, r.Spec.Tenants, r.Spec.Mode,
		r.Spec.Concurrency, r.Spec.Writers, r.Spec.Parallelism)
	fmt.Fprintf(w, "  reads       %8d   (%.1f qps)\n", r.Reads, r.QPS)
	fmt.Fprintf(w, "  p50 / p99   %8.2f / %.2f ms\n", r.P50, r.P99)
	fmt.Fprintf(w, "  writes      %8d   (%.1f commits/sec, overlapping the reads)\n", r.Writes, r.WritesPerSec)
	fmt.Fprintf(w, "  cursor      %8d   rows drained from the pre-write snapshot (unperturbed)\n", r.CursorRows)
}
