package bench

import (
	"bytes"
	"strings"
	"testing"

	"mtbase/internal/optimizer"
)

func TestTableSpecPresets(t *testing.T) {
	for _, n := range []int{3, 4, 5, 7, 8, 9} {
		spec, err := TableSpec(n, 0.01, 10)
		if err != nil {
			t.Fatalf("Table %d: %v", n, err)
		}
		if spec.Label == "" || spec.BaseSF <= 0 {
			t.Errorf("Table %d spec incomplete: %+v", n, spec)
		}
	}
	if _, err := TableSpec(6, 0.01, 10); err == nil {
		t.Error("Table 6 accepted")
	}
	if _, err := FigureSpec(7, 0.01, nil); err == nil {
		t.Error("Figure 7 accepted")
	}
}

// TestRunTable3Shape runs a miniature Table 3 end-to-end and checks the
// paper's qualitative findings for D={1}: trivial optimizations already
// eliminate all conversions (§6.3), so o1..o4 issue no UDF calls.
func TestRunTable3Shape(t *testing.T) {
	spec, err := TableSpec(3, 0.001, 5)
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = []int{1, 6} // keep the unit test fast
	spec.Repeats = 1
	res, err := RunOptLevels(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.QueryIDs {
		if res.UDFCalls[optimizer.Canonical][i] == 0 {
			t.Errorf("canonical Q%d executed no conversions", res.QueryIDs[i])
		}
		for _, level := range []optimizer.Level{optimizer.O1, optimizer.O4} {
			if res.UDFCalls[level][i] != 0 {
				t.Errorf("%s Q%d still calls UDFs with D={C}... wait, D={1}=C", level, res.QueryIDs[i])
			}
		}
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"Table 3", "canonical", "inl-only", "Q01", "Q06", "tpch-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

// TestRunTable5Shape checks the D=all shape: conversions cannot be
// dropped, aggregation distribution (o3) cuts UDF calls to ~T+1, and
// inlining (o4) eliminates them.
func TestRunTable5Shape(t *testing.T) {
	spec, err := TableSpec(9, 0.001, 5) // System C mode: exact call counts
	if err != nil {
		t.Fatal(err)
	}
	spec.Queries = []int{6}
	spec.Repeats = 1
	res, err := RunOptLevels(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	canonical := res.UDFCalls[optimizer.Canonical][0]
	o3 := res.UDFCalls[optimizer.O3][0]
	o4 := res.UDFCalls[optimizer.O4][0]
	inl := res.UDFCalls[optimizer.InlOnly][0]
	if canonical < 100 {
		t.Errorf("canonical Q6 UDF calls suspiciously low: %d", canonical)
	}
	if o3 > int64(res.Spec.Tenants)+1 {
		t.Errorf("o3 Q6 UDF calls = %d, want <= T+1 = %d", o3, res.Spec.Tenants+1)
	}
	// o4 keeps the (cheap) per-tenant partial conversions as UDFs — the
	// cost-based gate — so it needs at most T+1 calls as well.
	if o4 > int64(res.Spec.Tenants)+1 {
		t.Errorf("o4 Q6 UDF calls = %d, want <= T+1 = %d", o4, res.Spec.Tenants+1)
	}
	// inl-only (no distribution) inlines the per-row conversions away.
	if inl != 0 {
		t.Errorf("inl-only Q6 UDF calls = %d, want 0", inl)
	}
}

func TestRunScalingShape(t *testing.T) {
	spec, err := FigureSpec(5, 0.001, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	spec.QueryIDs = []int{6}
	spec.Repeats = 1
	res, err := RunScaling(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rel[optimizer.O4][0]) != 2 {
		t.Fatalf("series length: %+v", res.Rel)
	}
	var buf bytes.Buffer
	res.WriteFigure(&buf)
	if !strings.Contains(buf.String(), "MT-H Query 6") {
		t.Errorf("figure output:\n%s", buf.String())
	}
}

func TestSig2(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		0.0347: "0.035",
		0.347:  "0.35",
		3.47:   "3.5",
		34.7:   "35",
	}
	for in, want := range cases {
		if got := sig2(in); got != want {
			t.Errorf("sig2(%v) = %q, want %q", in, got, want)
		}
	}
}
