// Package bench is the MT-H experiment driver: it regenerates every table
// and figure of the paper's evaluation (§6 and Appendices C/D) — response
// times of the 22 queries across optimization levels (Tables 3–5 on the
// PostgreSQL-like engine, Tables 7–9 on the System-C-like engine) and the
// tenant-scaling curves for Q1/Q6/Q22 (Figures 5 and 6).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
)

// OptSpec parameterizes one optimization-level table (Tables 3–5, 7–9).
type OptSpec struct {
	Label   string // e.g. "Table 3"
	SF      float64
	Tenants int
	Dist    mth.Distribution
	Mode    engine.Mode
	C       int64
	Scope   string  // MTSQL scope text, e.g. "IN (1)" or "IN ()"
	BaseSF  float64 // plain TPC-H baseline scale factor
	Repeats int     // measurement runs; the last one is reported (§6.2)
	Queries []int   // query ids; nil = all 22

	// NoPlanCache disables the statement plan caches (middleware and
	// engine), restoring per-execution lowering for A/B comparison.
	NoPlanCache bool

	// Parallelism sets the engine's intra-query worker count for the
	// measured runs (0 keeps the engine default, GOMAXPROCS; 1 is the
	// serial oracle).
	Parallelism int

	// MemLimit caps per-statement working memory in bytes (0 keeps the
	// unlimited default); capped runs overflow sort buffers, group
	// tables and join builds to disk and the table reports what spilled.
	MemLimit int64

	// Shards partitions tenants over N engine shards (0/1 = unsharded);
	// the table then measures the D′-routed scatter/gather path, with
	// engine counters summed over shards and the gather replica.
	Shards int
}

// Levels evaluated in every table (Table 6 of the paper).
var levels = []optimizer.Level{
	optimizer.Canonical, optimizer.O1, optimizer.O2,
	optimizer.O3, optimizer.O4, optimizer.InlOnly,
}

// OptResult holds measured response times in seconds.
type OptResult struct {
	Spec       OptSpec
	QueryIDs   []int
	Baseline   []float64                     // plain TPC-H per query
	Times      map[optimizer.Level][]float64 // per level, per query
	UDFCalls   map[optimizer.Level][]int64   // ablation metric
	Allocs     map[optimizer.Level][]uint64  // heap allocations of the measured run
	PlanHits   map[optimizer.Level][]int64   // engine plan-cache hits across the runs
	PlanMisses map[optimizer.Level][]int64   // engine plan-cache misses (builds)
	SpillRuns  map[optimizer.Level][]int64   // spill runs written (memory-capped runs)
	PeakMem    map[optimizer.Level][]int64   // accounted peak bytes of the measured runs
}

func (s OptSpec) repeats() int {
	if s.Repeats <= 0 {
		return 2
	}
	return s.Repeats
}

func (s OptSpec) queryIDs() []int {
	if len(s.Queries) > 0 {
		out := append([]int{}, s.Queries...)
		sort.Ints(out)
		return out
	}
	ids := make([]int, 22)
	for i := range ids {
		ids[i] = i + 1
	}
	return ids
}

// session is the measured surface: a middleware.Conn or a shard.Conn.
type session interface {
	SetOptLevel(optimizer.Level)
	Exec(sql string) (*engine.Result, error)
}

// buildMTSession stands up the measured deployment — unsharded, or with
// nshards > 1 partitioned over engine shards — applying the spec's engine
// knobs everywhere, and returns the session plus every engine DB involved
// so counters can be aggregated across shards and the gather replica.
func buildMTSession(cfg mth.Config, nshards int, c int64, scope string,
	noPlanCache bool, parallelism int, memLimit int64) (session, []*engine.DB, error) {
	data := mth.Generate(cfg)
	var (
		conn    session
		servers []*middleware.Server
	)
	if nshards > 1 {
		inst, err := mth.LoadMTSharded(data, nshards)
		if err != nil {
			return nil, nil, err
		}
		if err := inst.GrantReadTo(c); err != nil {
			return nil, nil, err
		}
		if conn, err = inst.Connect(c, scope); err != nil {
			return nil, nil, err
		}
		servers = append(servers, inst.Srv.Shards()...)
		servers = append(servers, inst.Srv.Replica())
	} else {
		inst, err := mth.LoadMT(data)
		if err != nil {
			return nil, nil, err
		}
		if err := inst.GrantReadTo(c); err != nil {
			return nil, nil, err
		}
		if conn, err = inst.Connect(c, scope); err != nil {
			return nil, nil, err
		}
		servers = append(servers, inst.Srv)
	}
	dbs := make([]*engine.DB, 0, len(servers))
	for _, mw := range servers {
		if noPlanCache {
			mw.SetStatementCaching(false)
		}
		db := mw.DB()
		if parallelism > 0 {
			db.SetParallelism(parallelism)
		}
		if memLimit > 0 {
			db.SetMemoryLimit(memLimit)
		}
		dbs = append(dbs, db)
	}
	return conn, dbs, nil
}

// resetStats zeroes and sumStats aggregates counters over every measured DB.
func resetStats(dbs []*engine.DB) {
	for _, db := range dbs {
		db.Stats = engine.Stats{}
	}
}

func sumStats(dbs []*engine.DB) engine.Stats {
	var total engine.Stats
	for _, db := range dbs {
		st := db.Stats.Snapshot()
		total.UDFCalls += st.UDFCalls
		total.PlanCacheHits += st.PlanCacheHits
		total.PlanCacheMisses += st.PlanCacheMisses
		total.SpillRuns += st.SpillRuns
		if st.PeakMemBytes > total.PeakMemBytes {
			total.PeakMemBytes = st.PeakMemBytes
		}
	}
	return total
}

// RunOptLevels builds the MT-H instance and the plain baseline, then
// measures every query at every optimization level.
func RunOptLevels(spec OptSpec, progress io.Writer) (*OptResult, error) {
	cfg := mth.Config{SF: spec.SF, Tenants: spec.Tenants, Dist: spec.Dist, Seed: 42, Mode: spec.Mode}
	conn, dbs, err := buildMTSession(cfg, spec.Shards, spec.C, spec.Scope,
		spec.NoPlanCache, spec.Parallelism, spec.MemLimit)
	if err != nil {
		return nil, err
	}

	baseCfg := mth.Config{SF: spec.BaseSF, Tenants: 1, Dist: mth.Uniform, Seed: 42, Mode: spec.Mode}
	plain, err := mth.LoadPlain(mth.Generate(baseCfg), spec.Mode)
	if err != nil {
		return nil, err
	}

	ids := spec.queryIDs()
	res := &OptResult{
		Spec:       spec,
		QueryIDs:   ids,
		Times:      make(map[optimizer.Level][]float64),
		UDFCalls:   make(map[optimizer.Level][]int64),
		Allocs:     make(map[optimizer.Level][]uint64),
		PlanHits:   make(map[optimizer.Level][]int64),
		PlanMisses: make(map[optimizer.Level][]int64),
		SpillRuns:  make(map[optimizer.Level][]int64),
		PeakMem:    make(map[optimizer.Level][]int64),
	}

	for _, id := range ids {
		q, err := mth.QueryByID(spec.BaseSF, id)
		if err != nil {
			return nil, err
		}
		secs, _, err := timePlain(plain, q, spec.repeats())
		if err != nil {
			return nil, fmt.Errorf("baseline Q%d: %w", id, err)
		}
		res.Baseline = append(res.Baseline, secs)
	}

	for _, level := range levels {
		conn.SetOptLevel(level)
		for _, id := range ids {
			q, err := mth.QueryByID(spec.SF, id)
			if err != nil {
				return nil, err
			}
			resetStats(dbs)
			secs, allocs, err := timeMT(conn, q, spec.repeats())
			if err != nil {
				return nil, fmt.Errorf("%s Q%d at %s: %w", spec.Label, id, level, err)
			}
			// Counters are updated with sync/atomic by the engine; read them
			// through Snapshot copies rather than plain field loads (mtlint
			// atomicstats — plain reads race with any still-parallel work).
			st := sumStats(dbs)
			res.Times[level] = append(res.Times[level], secs)
			res.UDFCalls[level] = append(res.UDFCalls[level], st.UDFCalls)
			res.Allocs[level] = append(res.Allocs[level], allocs)
			res.PlanHits[level] = append(res.PlanHits[level], st.PlanCacheHits)
			res.PlanMisses[level] = append(res.PlanMisses[level], st.PlanCacheMisses)
			res.SpillRuns[level] = append(res.SpillRuns[level], st.SpillRuns)
			res.PeakMem[level] = append(res.PeakMem[level], st.PeakMemBytes)
			if progress != nil {
				fmt.Fprintf(progress, "%s %-9s Q%02d %8.4fs (%d UDF calls, plan cache %d/%d hit/miss)\n",
					spec.Label, level, id, secs, st.UDFCalls,
					st.PlanCacheHits, st.PlanCacheMisses)
			}
		}
	}
	return res, nil
}

// mallocs reads the process-wide allocation counter; deltas around a
// single-threaded run approximate allocs per query, making interpreter
// overhead visible next to response times.
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

func timePlain(db *engine.DB, q mth.Query, repeats int) (float64, uint64, error) {
	var last float64
	var allocs uint64
	for i := 0; i < repeats; i++ {
		before := mallocs()
		start := time.Now()
		if _, err := mth.RunOnPlain(db, q); err != nil {
			return 0, 0, err
		}
		last = time.Since(start).Seconds()
		allocs = mallocs() - before
	}
	return last, allocs, nil
}

func timeMT(conn mth.Session, q mth.Query, repeats int) (float64, uint64, error) {
	var last float64
	var allocs uint64
	for i := 0; i < repeats; i++ {
		before := mallocs()
		start := time.Now()
		if _, err := mth.RunOnMT(conn, q); err != nil {
			return 0, 0, err
		}
		last = time.Since(start).Seconds()
		allocs = mallocs() - before
	}
	return last, allocs, nil
}

// WriteTable renders the result in the paper's layout: one row per level,
// one column per query, seconds with two significant digits.
func (r *OptResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%s: response times [sec], sf=%g, T=%d, dist=%s, mode=%s, C=%d, D=%q",
		r.Spec.Label, r.Spec.SF, r.Spec.Tenants, r.Spec.Dist, r.Spec.Mode, r.Spec.C, r.Spec.Scope)
	if r.Spec.Shards > 1 {
		fmt.Fprintf(w, ", shards=%d", r.Spec.Shards)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "Level")
	for _, id := range r.QueryIDs {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("Q%02d", id))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", fmt.Sprintf("tpch-%g", r.Spec.BaseSF))
	for _, t := range r.Baseline {
		fmt.Fprintf(w, " %8s", sig2(t))
	}
	fmt.Fprintln(w)
	for _, level := range levels {
		fmt.Fprintf(w, "%-10s", level.String())
		for _, t := range r.Times[level] {
			fmt.Fprintf(w, " %8s", sig2(t))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "UDF body executions per level (ablation):")
	for _, level := range levels {
		fmt.Fprintf(w, "%-10s", level.String())
		for _, n := range r.UDFCalls[level] {
			fmt.Fprintf(w, " %8d", n)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "heap allocations per level (measured run):")
	for _, level := range levels {
		fmt.Fprintf(w, "%-10s", level.String())
		for _, n := range r.Allocs[level] {
			fmt.Fprintf(w, " %8d", n)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "plan cache hits/misses per level (across all runs of a query):")
	for _, level := range levels {
		fmt.Fprintf(w, "%-10s", level.String())
		for i := range r.PlanHits[level] {
			fmt.Fprintf(w, " %8s", fmt.Sprintf("%d/%d", r.PlanHits[level][i], r.PlanMisses[level][i]))
		}
		fmt.Fprintln(w)
	}
	if r.Spec.MemLimit > 0 {
		fmt.Fprintf(w, "spill runs / peak accounted KB per level (memory limit %d bytes):\n", r.Spec.MemLimit)
		for _, level := range levels {
			fmt.Fprintf(w, "%-10s", level.String())
			for i := range r.SpillRuns[level] {
				fmt.Fprintf(w, " %8s", fmt.Sprintf("%d/%d", r.SpillRuns[level][i], r.PeakMem[level][i]>>10))
			}
			fmt.Fprintln(w)
		}
	}
}

// sig2 formats seconds with two significant digits, like the paper.
func sig2(t float64) string {
	switch {
	case t <= 0:
		return "0"
	case t < 0.0001:
		return fmt.Sprintf("%.1e", t)
	case t < 0.001:
		return fmt.Sprintf("%.5f", t)
	case t < 0.01:
		return fmt.Sprintf("%.4f", t)
	case t < 0.1:
		return fmt.Sprintf("%.3f", t)
	case t < 1:
		return fmt.Sprintf("%.2f", t)
	case t < 10:
		return fmt.Sprintf("%.1f", t)
	default:
		return fmt.Sprintf("%.0f", t)
	}
}

// ---------------------------------------------------------------- scaling

// ScaleSpec parameterizes a tenant-scaling figure (Figures 5 and 6).
type ScaleSpec struct {
	Label        string
	SF           float64
	TenantCounts []int
	Dist         mth.Distribution
	Mode         engine.Mode
	QueryIDs     []int // default Q1, Q6, Q22
	Repeats      int
	Parallelism  int   // intra-query workers; 0 = engine default
	MemLimit     int64 // per-statement memory cap in bytes; 0 = unlimited
	Shards       int   // tenant-partitioned engine shards; 0/1 = unsharded
}

// ScaleResult holds response times relative to plain TPC-H (= 1.0).
type ScaleResult struct {
	Spec     ScaleSpec
	QueryIDs []int
	Baseline []float64                       // absolute seconds per query
	Rel      map[optimizer.Level][][]float64 // [query][tenantCount]
}

var scaleLevels = []optimizer.Level{optimizer.O4, optimizer.InlOnly}

// RunScaling measures the conversion-intensive queries for a growing
// number of tenants, comparing o4 and inl-only to single-tenant TPC-H
// (§6.4: "the cost overhead compared to single-tenant query-processing").
func RunScaling(spec ScaleSpec, progress io.Writer) (*ScaleResult, error) {
	ids := spec.QueryIDs
	if len(ids) == 0 {
		ids = []int{1, 6, 22}
	}
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 2
	}

	res := &ScaleResult{Spec: spec, QueryIDs: ids, Rel: make(map[optimizer.Level][][]float64)}
	baseCfg := mth.Config{SF: spec.SF, Tenants: 1, Dist: mth.Uniform, Seed: 42, Mode: spec.Mode}
	plain, err := mth.LoadPlain(mth.Generate(baseCfg), spec.Mode)
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		q, err := mth.QueryByID(spec.SF, id)
		if err != nil {
			return nil, err
		}
		secs, _, err := timePlain(plain, q, repeats)
		if err != nil {
			return nil, err
		}
		res.Baseline = append(res.Baseline, secs)
	}
	for _, level := range scaleLevels {
		res.Rel[level] = make([][]float64, len(ids))
	}

	for _, tcount := range spec.TenantCounts {
		cfg := mth.Config{SF: spec.SF, Tenants: tcount, Dist: spec.Dist, Seed: 42, Mode: spec.Mode}
		conn, _, err := buildMTSession(cfg, spec.Shards, 1, "IN ()",
			false, spec.Parallelism, spec.MemLimit)
		if err != nil {
			return nil, err
		}
		for _, level := range scaleLevels {
			conn.SetOptLevel(level)
			for qi, id := range ids {
				q, err := mth.QueryByID(spec.SF, id)
				if err != nil {
					return nil, err
				}
				secs, _, err := timeMT(conn, q, repeats)
				if err != nil {
					return nil, fmt.Errorf("%s T=%d Q%d at %s: %w", spec.Label, tcount, id, level, err)
				}
				rel := secs / res.Baseline[qi]
				res.Rel[level][qi] = append(res.Rel[level][qi], rel)
				if progress != nil {
					fmt.Fprintf(progress, "%s T=%-6d %-9s Q%02d %8.4fs (%.2fx TPC-H)\n",
						spec.Label, tcount, level, id, secs, rel)
				}
			}
		}
	}
	return res, nil
}

// WriteFigure renders one series block per query: tenant count vs
// response time relative to TPC-H for o4 and inl-only.
func (r *ScaleResult) WriteFigure(w io.Writer) {
	fmt.Fprintf(w, "%s: response time relative to TPC-H (=1.0), sf=%g, dist=%s, mode=%s\n",
		r.Spec.Label, r.Spec.SF, r.Spec.Dist, r.Spec.Mode)
	for qi, id := range r.QueryIDs {
		fmt.Fprintf(w, "MT-H Query %d (baseline %.4fs):\n", id, r.Baseline[qi])
		fmt.Fprintf(w, "  %-10s %10s %10s\n", "tenants", "o4", "inl-only")
		for ti, t := range r.Spec.TenantCounts {
			fmt.Fprintf(w, "  %-10d %10.2f %10.2f\n", t,
				r.Rel[optimizer.O4][qi][ti], r.Rel[optimizer.InlOnly][qi][ti])
		}
	}
}

// ---------------------------------------------------------------- presets

// TableSpec returns the preset for a numbered paper table. sf scales the
// experiment (the paper used sf=1 for Tables 3–5 and sf=10 for 7–9; the
// default here is laptop-scale — shapes, not absolute numbers).
func TableSpec(number int, sf float64, tenants int) (OptSpec, error) {
	base := OptSpec{SF: sf, Tenants: tenants, Dist: mth.Uniform, C: 1, Repeats: 2}
	switch number {
	case 3:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 3", engine.ModePostgres, "IN (1)", sf/float64(tenants)
	case 4:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 4", engine.ModePostgres, "IN (2)", sf/float64(tenants)
	case 5:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 5", engine.ModePostgres, "IN ()", sf
	case 7:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 7", engine.ModeSystemC, "IN (1)", sf/float64(tenants)
	case 8:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 8", engine.ModeSystemC, "IN (2)", sf/float64(tenants)
	case 9:
		base.Label, base.Mode, base.Scope, base.BaseSF = "Table 9", engine.ModeSystemC, "IN ()", sf
	default:
		return OptSpec{}, fmt.Errorf("bench: no Table %d preset (3-5, 7-9)", number)
	}
	return base, nil
}

// FigureSpec returns the preset for a numbered paper figure.
func FigureSpec(number int, sf float64, tenantCounts []int) (ScaleSpec, error) {
	if len(tenantCounts) == 0 {
		tenantCounts = []int{1, 10, 100, 1000}
	}
	spec := ScaleSpec{SF: sf, TenantCounts: tenantCounts, Dist: mth.Zipf, Repeats: 2}
	switch number {
	case 5:
		spec.Label, spec.Mode = "Figure 5", engine.ModePostgres
	case 6:
		spec.Label, spec.Mode = "Figure 6", engine.ModeSystemC
	default:
		return ScaleSpec{}, fmt.Errorf("bench: no Figure %d preset (5 or 6)", number)
	}
	return spec, nil
}
