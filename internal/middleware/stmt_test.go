package middleware

// Tests for the middleware prepared-statement API: bind parameters flow
// through the canonical rewrite untouched, the rewrite cache and engine
// plan cache are shared across bindings of one parameterized text, Query
// rejects non-SELECT statements, and prepared execution matches the
// literal-inlined equivalent in both compile modes.

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"mtbase/internal/engine"
)

func grantCross(t *testing.T, srv *Server) (alpha, beta *Conn) {
	t.Helper()
	var err error
	alpha, err = srv.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	beta, err = srv.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := beta.Exec(`GRANT READ ON DATABASE TO 0`); err != nil {
		t.Fatal(err)
	}
	if _, err := alpha.Exec(`SET SCOPE = "IN ()"`); err != nil {
		t.Fatal(err)
	}
	return alpha, beta
}

func TestQueryRejectsNonSelect(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c, err := srv.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(`INSERT INTO Roles (R_role_id, R_name) VALUES (9, 'x')`)
	if err == nil || !strings.Contains(err.Error(), "not a query") {
		t.Fatalf("Query must reject DML, got %v", err)
	}
	_, err = c.Query(`SET SCOPE = "IN ()"`)
	if err == nil || !strings.Contains(err.Error(), "not a query") {
		t.Fatalf("Query must reject session statements, got %v", err)
	}
	// Exec still handles DML.
	if _, err := c.Exec(`INSERT INTO Roles (R_role_id, R_name) VALUES (9, 'x')`); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedMatchesInlined(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModePostgres, engine.ModeSystemC} {
		for _, compiled := range []bool{true, false} {
			srv := newExample(t, mode)
			srv.DB().SetCompileExprs(compiled)
			alpha, _ := grantCross(t, srv)

			st, err := alpha.Prepare(`SELECT E_name, E_salary FROM Employees WHERE E_age >= ? ORDER BY E_name`)
			if err != nil {
				t.Fatal(err)
			}
			if st.NumParams() != 1 {
				t.Fatalf("NumParams = %d", st.NumParams())
			}
			for _, age := range []int{25, 30, 46, 100} {
				got, err := st.QueryResult(age)
				if err != nil {
					t.Fatalf("mode=%v compiled=%v age=%d: %v", mode, compiled, age, err)
				}
				want, err := alpha.Query(
					strings.Replace(`SELECT E_name, E_salary FROM Employees WHERE E_age >= ? ORDER BY E_name`,
						"?", strconv.Itoa(age), 1))
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Rows) != len(want.Rows) {
					t.Fatalf("mode=%v compiled=%v age=%d: %d rows vs %d", mode, compiled, age, len(got.Rows), len(want.Rows))
				}
				for i := range got.Rows {
					for j := range got.Rows[i] {
						if got.Rows[i][j].String() != want.Rows[i][j].String() {
							t.Fatalf("row %d col %d: %v vs %v", i, j, got.Rows[i][j], want.Rows[i][j])
						}
					}
				}
			}
		}
	}
}

// TestPreparedSharesCaches: 100 distinct bindings of one parameterized text
// produce one rewrite-cache miss and >= 99 engine plan-cache hits — the
// headline behaviour this API exists for.
func TestPreparedSharesCaches(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	alpha, _ := grantCross(t, srv)
	st, err := alpha.Prepare(`SELECT COUNT(*) AS n FROM Employees WHERE E_salary > ?`)
	if err != nil {
		t.Fatal(err)
	}
	db := srv.DB()
	db.Stats = engine.Stats{}
	srv.rwHits, srv.rwMisses = 0, 0
	for i := 0; i < 100; i++ {
		res, err := st.QueryResult(1000 * i)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("iteration %d: %d rows", i, len(res.Rows))
		}
	}
	if db.Stats.PlanCacheHits < 99 {
		t.Fatalf("engine plan-cache hits = %d of 100, want >= 99 (misses %d)",
			db.Stats.PlanCacheHits, db.Stats.PlanCacheMisses)
	}
	hits, misses := srv.RewriteCacheStats()
	if misses != 1 || hits != 99 {
		t.Fatalf("rewrite cache hits/misses = %d/%d, want 99/1", hits, misses)
	}
}

// TestPreparedDML: binds flow through the per-tenant DML rewrite.
func TestPreparedDML(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c, err := srv.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Prepare(`UPDATE Employees SET E_salary = E_salary + ? WHERE E_name = ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Exec(1000, "John")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 1 {
		t.Fatalf("affected %d", res.Affected)
	}
	got, err := c.Query(`SELECT E_salary FROM Employees WHERE E_name = 'John'`)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0].AsFloat() != 71000 {
		t.Fatalf("salary after prepared update = %v", got.Rows[0][0])
	}
	// DDL cannot be prepared.
	if _, err := c.Prepare(`CREATE TABLE nope (x INTEGER)`); err == nil {
		t.Fatal("Prepare must reject DDL")
	}
}

// TestPreparedRowsStreaming: the cursor API works through the middleware,
// with context cancellation honoured.
func TestPreparedRowsStreaming(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	alpha, _ := grantCross(t, srv)
	st, err := alpha.Prepare(`SELECT E_name FROM Employees WHERE E_age < ?`)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query(50)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		names[name] = true
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// Everyone but Nancy (72).
	if len(names) != 5 || names["Nancy"] {
		t.Fatalf("names = %v", names)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.QueryContext(ctx, 50); err == nil {
		t.Fatal("cancelled context must abort prepared query")
	}
}

// TestBindValueConversion covers the middleware's Go-value bind bridge.
func TestBindValueConversion(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c, err := srv.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT E_name FROM Employees WHERE E_salary > ? AND E_age < ?`, 60000.0, int64(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "John" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := c.Query(`SELECT E_name FROM Employees WHERE E_age < ?`, struct{}{}); err == nil {
		t.Fatal("unsupported bind type must error")
	}
	res, err = c.Query(`SELECT COUNT(*) AS n FROM Employees WHERE E_age > ?`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("NULL bind comparison should match nothing, got %v", res.Rows[0][0])
	}
}
