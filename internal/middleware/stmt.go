package middleware

// This file implements the client-facing prepared-statement API of the
// middleware: Prepare → Stmt → Query(args...) → Rows. The client text is
// parsed once; each execution resolves the session's scope into D′ and
// serves the canonical rewrite + optimization from the rewrite cache keyed
// on the *parameterized* text, so the C/level/D′ rewrite — and the engine
// plan behind it — is shared across every binding. This is what turns
// plan-cache hits into the common case for literal-varying workloads: the
// paper's middleware ships "pure SQL" per statement, and with placeholders
// that SQL is byte-identical across bindings.

import (
	"context"
	"fmt"

	"mtbase/internal/engine"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

// Stmt is a prepared MTSQL statement bound to one session (it captures the
// session's C; scope and optimization level are read per execution, like
// any other statement on the connection).
type Stmt struct {
	conn    *Conn
	raw     string
	sel     *sqlast.Select   // non-nil for queries
	stmt    sqlast.Statement // non-nil for DML
	nParams int
}

// Prepare parses one MTSQL statement with `?` / `$n` placeholders and
// returns a reusable handle. Queries and DML are accepted; DDL and
// session statements have nothing to parameterize and are rejected.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	st := &Stmt{conn: c, raw: sql}
	if sel, ok := c.srv.cachedSelect(sql); ok {
		st.sel = sel
		st.nParams = sqlast.MaxParam(sel)
		return st, nil
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sqlast.Select:
		c.srv.storeSelect(sql, s)
		st.sel = s
	case *sqlast.Insert, *sqlast.Update, *sqlast.Delete:
		st.stmt = stmt
	default:
		return nil, fmt.Errorf("middleware: cannot prepare %T (only queries and DML)", stmt)
	}
	st.nParams = sqlast.MaxParam(stmt)
	return st, nil
}

// NumParams returns the number of bind parameters the statement expects.
func (st *Stmt) NumParams() int { return st.nParams }

// SQL returns the client text the statement was prepared from.
func (st *Stmt) SQL() string { return st.raw }

// IsQuery reports whether the statement is a SELECT (row-returning)
// rather than DML.
func (st *Stmt) IsQuery() bool { return st.sel != nil }

// Close releases the handle; the cached parse and rewrites stay warm for
// future preparations of the same text.
func (st *Stmt) Close() error { return nil }

// Query executes a prepared SELECT with the given bind values and returns
// a streaming cursor over the engine's operator tree (every query shape
// streams batch-at-a-time).
func (st *Stmt) Query(args ...any) (*engine.Rows, error) {
	return st.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation polled inside every operator.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*engine.Rows, error) {
	if st.sel == nil {
		return nil, fmt.Errorf("middleware: not a query: %s (use Exec)", st.raw)
	}
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	return st.conn.queryRows(ctx, st.sel, st.raw, vals)
}

// QueryResult executes a prepared SELECT and materializes the result
// atomically under the DBMS lock — a convenience over Query for callers
// that want the whole set.
func (st *Stmt) QueryResult(args ...any) (*engine.Result, error) {
	if st.sel == nil {
		return nil, fmt.Errorf("middleware: not a query: %s (use Exec)", st.raw)
	}
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	return st.conn.query(context.Background(), st.sel, st.raw, vals)
}

// Exec executes a prepared statement (query or DML) with the given bind
// values, materializing the outcome.
func (st *Stmt) Exec(args ...any) (*engine.Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation checked at batch boundaries.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*engine.Result, error) {
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	if st.sel != nil {
		return st.conn.query(ctx, st.sel, st.raw, vals)
	}
	return st.conn.execStatement(ctx, st.stmt, vals)
}
