package middleware

import (
	"math"
	"strings"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
)

// newExample stands up a complete MTBase instance with the paper's
// running example: two tenants (0: USD, 1: EUR), Employees/Roles
// tenant-specific, Regions global, conversion UDFs + meta tables.
func newExample(t testing.TB, mode engine.Mode) *Server {
	t.Helper()
	db := engine.Open(mode)
	srv := NewServer(db, WithDataModeller(99))
	if err := srv.Schema().Convs().Register(mtsql.ConvPair{
		Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal",
		Class: mtsql.ClassLinear,
	}); err != nil {
		t.Fatal(err)
	}

	admin, err := srv.Connect(99)
	if err != nil {
		t.Fatal(err)
	}
	ddl := []string{
		`CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL)`,
		`CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
			CT_to_universal DECIMAL(15,2) NOT NULL, CT_from_universal DECIMAL(15,2) NOT NULL)`,
		`CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
			AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
			LANGUAGE SQL IMMUTABLE`,
		`CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
			AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
			LANGUAGE SQL IMMUTABLE`,
		`CREATE TABLE Regions (Re_reg_id INTEGER NOT NULL, Re_name VARCHAR(25) NOT NULL)`,
		`CREATE TABLE Roles SPECIFIC (
			R_role_id INTEGER NOT NULL SPECIFIC,
			R_name VARCHAR(25) NOT NULL COMPARABLE,
			CONSTRAINT pk_roles PRIMARY KEY (R_role_id))`,
		`CREATE TABLE Employees SPECIFIC (
			E_emp_id INTEGER NOT NULL SPECIFIC,
			E_name VARCHAR(25) NOT NULL COMPARABLE,
			E_role_id INTEGER NOT NULL SPECIFIC,
			E_reg_id INTEGER NOT NULL COMPARABLE,
			E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
			E_age INTEGER NOT NULL COMPARABLE,
			CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
			CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id))`,
	}
	for _, d := range ddl {
		if _, err := admin.Exec(d); err != nil {
			t.Fatalf("DDL %q: %v", d[:40], err)
		}
	}
	for _, ttid := range []int64{0, 1} {
		if err := srv.CreateTenant(ttid); err != nil {
			t.Fatal(err)
		}
	}
	// Meta data: tenant 0 uses USD (universal), tenant 1 uses EUR.
	seed := `
INSERT INTO Tenant VALUES (0, 0), (1, 1);
INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, 1.1, 0.9090909090909091);
INSERT INTO Regions VALUES (0,'AFRICA'),(1,'ASIA'),(2,'AUSTRALIA'),(3,'EUROPE'),(4,'N-AMERICA'),(5,'S-AMERICA')`
	if _, err := db.ExecScript(seed); err != nil {
		t.Fatal(err)
	}
	// Tenants load their own data through their own sessions.
	t0, err := srv.Connect(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := srv.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	load := func(conn *Conn, stmts []string) {
		for _, s := range stmts {
			if _, err := conn.Exec(s); err != nil {
				t.Fatalf("load %q: %v", s[:40], err)
			}
		}
	}
	load(t0, []string{
		"INSERT INTO Roles (R_role_id, R_name) VALUES (0, 'phD stud.'), (1, 'postdoc'), (2, 'professor')",
		"INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (0, 'Patrick', 1, 3, 50000, 30), (1, 'John', 0, 3, 70000, 28), (2, 'Alice', 2, 3, 150000, 46)",
	})
	load(t1, []string{
		"INSERT INTO Roles (R_role_id, R_name) VALUES (0, 'intern'), (1, 'researcher'), (2, 'executive')",
		"INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (0, 'Allan', 1, 2, 80000, 25), (1, 'Nancy', 2, 4, 200000, 72), (2, 'Ed', 0, 4, 1000000, 46)",
	})
	return srv
}

func connFor(t testing.TB, srv *Server, ttid int64) *Conn {
	t.Helper()
	c, err := srv.Connect(ttid)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func approx(t *testing.T, got sqltypes.Value, want float64) {
	t.Helper()
	g := got.AsFloat()
	if math.Abs(g-want) > 1e-6*math.Max(1, math.Abs(want)) {
		t.Errorf("value = %v, want %v", g, want)
	}
}

func TestDefaultScopeIsOwnData(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	res, err := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Errorf("default scope must be {C}: %v", res.Rows)
	}
}

func TestSimpleScopeCrossTenant(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	// Tenant 1 must first grant tenant 0 access.
	c1 := connFor(t, srv, 1)
	if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	res, err := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 {
		t.Errorf("cross-tenant count = %v", res.Rows)
	}
}

func TestPrivilegePruning(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	// No grant from tenant 1: D = {0, 1} is pruned to D' = {0}.
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	res, err := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Errorf("unprivileged data leaked: %v", res.Rows)
	}
}

func TestRevokeRemovesAccess(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
	if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	res, _ := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if res.Rows[0][0].I != 6 {
		t.Fatalf("grant did not take effect: %v", res.Rows)
	}
	if _, err := c1.Exec("REVOKE READ ON Employees FROM 0"); err != nil {
		t.Fatal(err)
	}
	res, _ = c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if res.Rows[0][0].I != 3 {
		t.Errorf("revoke did not take effect: %v", res.Rows)
	}
}

// TestClientPresentation reproduces §2.4.1: the same query returns values
// in the asking client's format.
func TestClientPresentation(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModePostgres, engine.ModeSystemC} {
		srv := newExample(t, mode)
		c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
		if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
			t.Fatal(err)
		}
		// Tenant 0 (USD) queries tenant 1's average salary.
		if _, err := c0.Exec(`SET SCOPE = "IN (1)"`); err != nil {
			t.Fatal(err)
		}
		res, err := c0.Query("SELECT AVG(E_salary) AS avg_sal FROM Employees")
		if err != nil {
			t.Fatal(err)
		}
		// EUR average = (80000+200000+1000000)/3; in USD multiply by 1.1.
		approx(t, res.Rows[0][0], 1280000.0/3.0*1.1)

		// Tenant 1 (EUR) asking the same query gets EUR (as is).
		res, err = c1.Query("SELECT AVG(E_salary) AS avg_sal FROM Employees")
		if err != nil {
			t.Fatal(err)
		}
		approx(t, res.Rows[0][0], 1280000.0/3.0)
	}
}

// TestIntroJoinSemantics reproduces §1's motivating example: the
// role join must not pair Patrick with researcher or Ed with professor,
// while the age self-join must pair Alice with Ed.
func TestIntroJoinSemantics(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
	for _, stmt := range []string{"GRANT READ ON Employees TO 0", "GRANT READ ON Roles TO 0"} {
		if _, err := c1.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c0.Exec(`SET SCOPE = "IN ()"`); err != nil { // all tenants
		t.Fatal(err)
	}
	res, err := c0.Query(`SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name`)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string)
	for _, row := range res.Rows {
		got[row[0].S] = row[1].S
	}
	want := map[string]string{
		"Patrick": "postdoc", "John": "phD stud.", "Alice": "professor",
		"Allan": "researcher", "Nancy": "executive", "Ed": "intern",
	}
	for name, role := range want {
		if got[name] != role {
			t.Errorf("%s has role %q, want %q", name, got[name], role)
		}
	}

	res, err = c0.Query(`SELECT e1.E_name, e2.E_name FROM Employees e1, Employees e2
		WHERE e1.E_age = e2.E_age AND e1.E_name < e2.E_name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Alice" || res.Rows[0][1].S != "Ed" {
		t.Errorf("age self-join: %v", res.Rows)
	}
}

func TestComplexScope(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c1 := connFor(t, srv, 1)
	c0 := connFor(t, srv, 0)
	if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	// Tenants with at least one salary above 180K USD (client format of
	// C=0): tenant 1 qualifies (Nancy 200000 EUR = 220000 USD; Ed 1M EUR),
	// tenant 0 does not... Alice has 150000 USD < 180000. So D = {1}.
	if _, err := c0.Exec(`SET SCOPE = "FROM Employees WHERE E_salary > 180000"`); err != nil {
		t.Fatal(err)
	}
	res, err := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Errorf("complex scope resolved wrong: %v", res.Rows)
	}
	res, err = c0.Query("SELECT MIN(E_name) AS m FROM Employees")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "Allan" {
		t.Errorf("expected tenant 1 data, got %v", res.Rows)
	}
}

func TestDMLOnBehalfOfOtherTenant(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
	if _, err := c1.Exec("GRANT INSERT ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (1)"`); err != nil {
		t.Fatal(err)
	}
	// C=0 inserts 110000 (USD); tenant 1 stores EUR -> 100000.
	if _, err := c0.Exec("INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (9, 'Zoe', 0, 3, 110000, 31)"); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Query("SELECT E_salary FROM Employees WHERE E_name = 'Zoe'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("row not visible to owner: %v", res.Rows)
	}
	approx(t, res.Rows[0][0], 100000)
}

func TestUpdateConvertsPerOwner(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
	if _, err := c1.Exec("GRANT UPDATE ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	// Set every 46-year-old's salary to 110000 USD.
	res, err := c0.Exec("UPDATE Employees SET E_salary = 110000 WHERE E_age = 46")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != 2 { // Alice (t0) and Ed (t1)
		t.Fatalf("affected = %d", res.Affected)
	}
	r, _ := c0.Query("SELECT E_salary FROM Employees WHERE E_name = 'Alice'")
	approx(t, r.Rows[0][0], 110000) // USD stored as is
	r, _ = c1.Query("SELECT E_salary FROM Employees WHERE E_name = 'Ed'")
	approx(t, r.Rows[0][0], 100000) // stored in EUR
}

func TestDeleteScoped(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	if _, err := c0.Exec("DELETE FROM Employees WHERE E_age > 40"); err != nil {
		t.Fatal(err)
	}
	res, _ := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if res.Rows[0][0].I != 2 {
		t.Errorf("delete affected wrong rows: %v", res.Rows)
	}
	// Tenant 1's data untouched.
	c1 := connFor(t, srv, 1)
	res, _ = c1.Query("SELECT COUNT(*) AS n FROM Employees")
	if res.Rows[0][0].I != 3 {
		t.Errorf("delete crossed tenants: %v", res.Rows)
	}
}

func TestDDLRequiresModeller(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	if _, err := c0.Exec("CREATE TABLE Hax (h INTEGER)"); err == nil {
		t.Error("non-modeller created a table")
	}
	if _, err := c0.Exec("DROP TABLE Employees"); err == nil {
		t.Error("non-modeller dropped a table")
	}
}

func TestViews(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c1 := connFor(t, srv, 1)
	if _, err := c1.Exec("CREATE VIEW my_seniors AS SELECT E_name, E_salary FROM Employees WHERE E_age >= 46"); err != nil {
		t.Fatal(err)
	}
	res, err := c1.Query("SELECT COUNT(*) AS n FROM my_seniors")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 2 { // Nancy, Ed
		t.Errorf("view rows: %v", res.Rows)
	}
}

func TestAllOptimizationLevelsAgree(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c1 := connFor(t, srv, 1)
	c0 := connFor(t, srv, 0)
	if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("GRANT READ ON Roles TO 0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN ()"`); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"SELECT SUM(E_salary) AS s FROM Employees",
		"SELECT E_reg_id, AVG(E_salary) AS a, COUNT(*) AS c FROM Employees GROUP BY E_reg_id ORDER BY E_reg_id",
		"SELECT E_name FROM Employees WHERE E_salary > 100000 ORDER BY E_name",
		"SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name",
	}
	for _, sql := range queries {
		c0.SetOptLevel(optimizer.Canonical)
		want, err := c0.Query(sql)
		if err != nil {
			t.Fatalf("canonical %q: %v", sql, err)
		}
		for _, level := range []optimizer.Level{optimizer.O1, optimizer.O2, optimizer.O3, optimizer.O4, optimizer.InlOnly} {
			c0.SetOptLevel(level)
			got, err := c0.Query(sql)
			if err != nil {
				t.Fatalf("%s %q: %v", level, sql, err)
			}
			if len(got.Rows) != len(want.Rows) {
				t.Errorf("%s %q: %d rows vs %d", level, sql, len(got.Rows), len(want.Rows))
				continue
			}
			for i := range want.Rows {
				for j := range want.Rows[i] {
					a, b := want.Rows[i][j], got.Rows[i][j]
					if a.IsNumeric() && b.IsNumeric() {
						if math.Abs(a.AsFloat()-b.AsFloat()) > 1e-6*math.Max(1, math.Abs(a.AsFloat())) {
							t.Errorf("%s %q row %d col %d: %v vs %v", level, sql, i, j, a, b)
						}
					} else if a.String() != b.String() {
						t.Errorf("%s %q row %d col %d: %v vs %v", level, sql, i, j, a, b)
					}
				}
			}
		}
	}
}

func TestTupleInThroughMiddleware(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c1 := connFor(t, srv, 1)
	c0 := connFor(t, srv, 0)
	for _, g := range []string{"GRANT READ ON Employees TO 0", "GRANT READ ON Roles TO 0"} {
		if _, err := c1.Exec(g); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	c0.SetOptLevel(optimizer.Canonical)
	res, err := c0.Query("SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id FROM Roles WHERE R_name = 'professor') ORDER BY E_name")
	if err != nil {
		t.Fatal(err)
	}
	// Only Alice: role 'professor' exists only at tenant 0 with id 2.
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Alice" {
		t.Errorf("tenant-aware IN: %v", res.Rows)
	}
}

func TestStarHidesTTIDEndToEnd(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	res, err := c0.Query("SELECT * FROM Employees ORDER BY E_emp_id")
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range res.Cols {
		if strings.EqualFold(col, "ttid") {
			t.Errorf("ttid leaked to client: %v", res.Cols)
		}
	}
	if len(res.Cols) != 6 {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestConnectUnknownTenant(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	if _, err := srv.Connect(12345); err == nil {
		t.Error("unknown tenant connected")
	}
}

func TestGrantToAllUsesD(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c1 := connFor(t, srv, 1)
	// GRANT ... TO ALL with D = {0}: grants to tenant 0 only.
	if _, err := c1.Exec(`SET SCOPE = "IN (0)"`); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec("GRANT READ ON Employees TO ALL"); err != nil {
		t.Fatal(err)
	}
	c0 := connFor(t, srv, 0)
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	res, _ := c0.Query("SELECT COUNT(*) AS n FROM Employees")
	if res.Rows[0][0].I != 6 {
		t.Errorf("grant-to-all failed: %v", res.Rows)
	}
}
