// Package middleware implements MTBase proper (§3, Figure 4): an
// MTSQL-to-SQL translation layer between clients and a DBMS. Sessions
// carry the client tenant C (from the connection) and the SCOPE runtime
// parameter defining the dataset D. Each statement is processed as the
// paper describes: a complex scope is resolved against the DBMS, D is
// pruned against C's privileges to D′, the statement is canonically
// rewritten, optimized at the session's optimization level, serialized to
// SQL text and shipped to the DBMS.
package middleware

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/optimizer"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// privKey identifies one privilege grant: grantee may act on owner's
// instance of table (lower-case; empty = whole database).
type privKey struct {
	grantee int64
	owner   int64
	table   string
	priv    sqlast.Privilege
}

// Server is one MTBase deployment: the backing DBMS, the MT-specific
// meta-data cache (schema, conversion registry, privileges, tenants), and
// the data-modeller role.
type Server struct {
	mu     sync.Mutex
	db     *engine.DB
	schema *mtsql.Schema

	tenants    map[int64]bool
	privs      map[privKey]bool
	modellers  map[int64]bool   // tenants with DDL privilege (§2.2)
	viewOwners map[string]int64 // view name -> creating tenant

	// Statement caches: selCache maps client MTSQL SELECT text to its parsed
	// form (rewrite and optimizer clone their input, so the AST is shared
	// safely); rwCache maps (text, C, level, schema generation, D′) to the
	// rewritten-and-optimized SQL text shipped to the DBMS, which the engine
	// plan cache then recognizes. schemaGen bumps on every DDL so rewrites
	// derived from an older schema can never be served.
	selCache   map[string]*sqlast.Select
	rwCache    map[rwKey]string
	schemaGen  uint64
	rwHits     int64
	rwMisses   int64
	cachingOff bool
}

// stmtCacheCap bounds both statement caches; on overflow they restart empty.
const stmtCacheCap = 512

// rwKey identifies one rewrite-cache entry. D′ is part of the key — scope,
// privilege and tenant changes land in a different slot instead of evicting.
type rwKey struct {
	sql   string
	c     int64
	level optimizer.Level
	gen   uint64
	dkey  string
}

// Option configures a Server.
type Option func(*Server)

// WithDataModeller grants the DDL role to a tenant at start-up.
func WithDataModeller(ttid int64) Option {
	return func(s *Server) { s.modellers[ttid] = true }
}

// NewServer wraps a DBMS instance in an MTBase middleware.
func NewServer(db *engine.DB, opts ...Option) *Server {
	s := &Server{
		db:         db,
		schema:     mtsql.NewSchema(),
		tenants:    make(map[int64]bool),
		privs:      make(map[privKey]bool),
		modellers:  make(map[int64]bool),
		viewOwners: make(map[string]int64),
		selCache:   make(map[string]*sqlast.Select),
		rwCache:    make(map[rwKey]string),
	}
	for _, o := range opts {
		o(s)
	}
	s.bootstrapMetaTables()
	return s
}

// DB exposes the backing DBMS (used by generators and benchmarks).
func (s *Server) DB() *engine.DB { return s.db }

// Schema exposes the MT meta-data cache.
func (s *Server) Schema() *mtsql.Schema { return s.schema }

// bootstrapMetaTables creates the middleware's persisted meta tables
// (mirroring the Go-side cache, as in Figure 4 where MT meta data lives in
// the DBMS alongside user data).
func (s *Server) bootstrapMetaTables() {
	s.db.CreateTableDirect("mt_tenants", []engine.Column{
		{Name: "ttid", Type: sqltypes.KindInt, NotNull: true},
	}, []string{"ttid"})
	s.db.CreateTableDirect("mt_privileges", []engine.Column{
		{Name: "grantee", Type: sqltypes.KindInt, NotNull: true},
		{Name: "owner", Type: sqltypes.KindInt, NotNull: true},
		{Name: "table_name", Type: sqltypes.KindString},
		{Name: "privilege", Type: sqltypes.KindString, NotNull: true},
	}, nil)
}

// CreateTenant registers a tenant and installs the default privileges of
// §2.3: READ on global tables and full rights on her own instances.
func (s *Server) CreateTenant(ttid int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tenants[ttid] {
		return fmt.Errorf("middleware: tenant %d already exists", ttid)
	}
	s.tenants[ttid] = true
	s.db.Table("mt_tenants").AppendRow([]sqltypes.Value{sqltypes.NewInt(ttid)})
	for _, p := range []sqlast.Privilege{sqlast.PrivRead, sqlast.PrivInsert, sqlast.PrivUpdate, sqlast.PrivDelete} {
		s.grantLocked(ttid, ttid, "", p)
	}
	return nil
}

// Tenants returns all registered ttids, sorted.
func (s *Server) Tenants() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenantsLocked()
}

func (s *Server) tenantsLocked() []int64 {
	out := make([]int64, 0, len(s.tenants))
	for t := range s.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Server) grantLocked(grantee, owner int64, table string, p sqlast.Privilege) {
	key := privKey{grantee: grantee, owner: owner, table: strings.ToLower(table), priv: p}
	if s.privs[key] {
		return
	}
	s.privs[key] = true
	s.db.Table("mt_privileges").AppendRow([]sqltypes.Value{
		sqltypes.NewInt(grantee), sqltypes.NewInt(owner),
		sqltypes.NewString(strings.ToLower(table)), sqltypes.NewString(string(p)),
	})
}

func (s *Server) revokeLocked(grantee, owner int64, table string, p sqlast.Privilege) {
	key := privKey{grantee: grantee, owner: owner, table: strings.ToLower(table), priv: p}
	delete(s.privs, key)
	mt := s.db.Table("mt_privileges")
	// Build the kept set in a fresh slice: snapshots published to readers
	// are immutable, so the old backing array must not be compacted in
	// place.
	heap := mt.Heap()
	kept := make([][]sqltypes.Value, 0, len(heap))
	for _, row := range heap {
		if row[0].I == grantee && row[1].I == owner && row[2].S == strings.ToLower(table) && row[3].S == string(p) {
			continue
		}
		kept = append(kept, row)
	}
	mt.ReplaceRows(kept)
}

// hasPrivilege checks a privilege, honouring database-wide grants.
func (s *Server) hasPrivilege(grantee, owner int64, table string, p sqlast.Privilege) bool {
	if s.privs[privKey{grantee: grantee, owner: owner, table: "", priv: p}] {
		return true
	}
	return s.privs[privKey{grantee: grantee, owner: owner, table: strings.ToLower(table), priv: p}]
}

// Connect opens a session for tenant ttid; C is fixed for the connection
// lifetime (§2.1: derived from the connection string).
func (s *Server) Connect(ttid int64) (*Conn, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.tenants[ttid] && !s.modellers[ttid] {
		return nil, fmt.Errorf("middleware: unknown tenant %d", ttid)
	}
	return &Conn{srv: s, c: ttid, level: optimizer.O4}, nil
}

// Conn is one client session: the client tenant C, the current SCOPE and
// the optimization level applied to rewritten statements.
type Conn struct {
	srv   *Server
	c     int64
	scope *sqlast.SetScope // nil = default scope {C}
	level optimizer.Level
}

// C returns the session's client tenant.
func (c *Conn) C() int64 { return c.c }

// SetOptLevel switches the optimization pass stack for this session.
func (c *Conn) SetOptLevel(l optimizer.Level) { c.level = l }

// OptLevel returns the session's optimization level.
func (c *Conn) OptLevel() optimizer.Level { return c.level }

// Exec parses and executes one MTSQL statement. SELECT texts hit the
// statement caches: the parse, the canonical rewrite and the optimization
// are each reused when the text, session context and schema are unchanged.
func (c *Conn) Exec(sql string) (*engine.Result, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecStatement executes a parsed MTSQL statement.
func (c *Conn) ExecStatement(stmt sqlast.Statement) (*engine.Result, error) {
	return c.execStatement(context.Background(), stmt, nil)
}

func (c *Conn) execStatement(ctx context.Context, stmt sqlast.Statement, args []sqltypes.Value) (*engine.Result, error) {
	switch st := stmt.(type) {
	case *sqlast.Select:
		return c.query(ctx, st, "", args)
	case *sqlast.Insert:
		return c.insert(ctx, st, args)
	case *sqlast.Update:
		return c.update(ctx, st, args)
	case *sqlast.Delete:
		return c.delete(ctx, st, args)
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("middleware: statement takes no bind parameters, got %d", len(args))
	}
	switch st := stmt.(type) {
	case *sqlast.SetScope:
		c.scope = st
		return &engine.Result{}, nil
	case *sqlast.CreateTable:
		return c.createTable(st)
	case *sqlast.CreateView:
		return c.createView(st)
	case *sqlast.CreateFunction:
		return c.createFunction(st)
	case *sqlast.DropTable:
		return c.dropTable(st)
	case *sqlast.DropView:
		// Views are droppable by their creator or the data modeller
		// (tenants manage their own views, §2.2.4).
		if owner, ok := c.srv.viewOwner(st.Name); ok && owner != c.c && !c.srv.isModeller(c.c) {
			return nil, fmt.Errorf("middleware: view %s belongs to tenant %d", st.Name, owner)
		}
		res, err := c.srv.db.Exec(st)
		if err != nil {
			return nil, err
		}
		c.srv.schema.DropView(st.Name)
		c.srv.dropViewOwner(st.Name)
		c.srv.bumpSchemaGen()
		return res, nil
	case *sqlast.Grant:
		return c.grant(st)
	case *sqlast.Revoke:
		return c.revoke(st)
	}
	return nil, fmt.Errorf("middleware: unsupported statement %T", stmt)
}

// Query executes a SELECT and materializes the result atomically (the
// whole execution runs under the DBMS lock, unlike a streaming cursor).
// Unlike Exec it rejects anything that is not a query — DML/DDL must go
// through Exec.
func (c *Conn) Query(sql string, args ...any) (*engine.Result, error) {
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	sel, err := c.parseSelect(sql)
	if err != nil {
		return nil, err
	}
	return c.query(context.Background(), sel, sql, vals)
}

// parseSelect resolves sql to a SELECT through the parse cache, rejecting
// non-queries.
func (c *Conn) parseSelect(sql string) (*sqlast.Select, error) {
	if sel, ok := c.srv.cachedSelect(sql); ok {
		return sel, nil
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlast.Select)
	if !ok {
		return nil, fmt.Errorf("middleware: not a query: %T (use Exec for DML/DDL)", stmt)
	}
	c.srv.storeSelect(sql, sel)
	return sel, nil
}

// QueryRows executes a SELECT and returns a streaming cursor.
func (c *Conn) QueryRows(sql string, args ...any) (*engine.Rows, error) {
	return c.QueryContext(context.Background(), sql, args...)
}

// QueryContext executes a SELECT with bind-parameter values, returning a
// streaming cursor over the engine's operator tree — every query shape
// streams batch-at-a-time, joins and grouping included; ctx cancellation
// is polled inside every operator. Only queries are accepted. See
// engine.Rows for the cursor's concurrency contract (each batch pull
// briefly re-acquires the DBMS lock).
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...any) (*engine.Rows, error) {
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	sel, err := c.parseSelect(sql)
	if err != nil {
		return nil, err
	}
	return c.queryRows(ctx, sel, sql, vals)
}

// ExecContext executes one MTSQL statement with bind-parameter values;
// ctx cancellation is checked at batch boundaries of the DBMS execution.
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...any) (*engine.Result, error) {
	vals, err := bindValues(args)
	if err != nil {
		return nil, err
	}
	if sel, ok := c.srv.cachedSelect(sql); ok {
		return c.query(ctx, sel, sql, vals)
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	if sel, ok := stmt.(*sqlast.Select); ok {
		c.srv.storeSelect(sql, sel)
		return c.query(ctx, sel, sql, vals)
	}
	return c.execStatement(ctx, stmt, vals)
}

// bindValues converts client bind arguments to engine values.
func bindValues(args []any) ([]sqltypes.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqltypes.Value, len(args))
	for i, a := range args {
		v, err := sqltypes.BindValue(a)
		if err != nil {
			return nil, fmt.Errorf("middleware: bind $%d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

func (s *Server) isModeller(ttid int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.modellers[ttid]
}

// DelegateDDL passes the data-modeller role to another tenant (§2.2: "the
// data modeller can delegate this privilege to any tenant she trusts").
// Only a current modeller may delegate.
func (c *Conn) DelegateDDL(to int64) error {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if !c.srv.modellers[c.c] {
		return fmt.Errorf("middleware: tenant %d lacks the DDL role", c.c)
	}
	if !c.srv.tenants[to] && !c.srv.modellers[to] {
		return fmt.Errorf("middleware: unknown tenant %d", to)
	}
	c.srv.modellers[to] = true
	return nil
}

// RevokeDDL removes a delegated modeller role.
func (c *Conn) RevokeDDL(from int64) error {
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if !c.srv.modellers[c.c] {
		return fmt.Errorf("middleware: tenant %d lacks the DDL role", c.c)
	}
	if from == c.c {
		return fmt.Errorf("middleware: cannot revoke own DDL role")
	}
	delete(c.srv.modellers, from)
	return nil
}

func (s *Server) viewOwner(name string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.viewOwners[strings.ToLower(name)]
	return owner, ok
}

func (s *Server) setViewOwner(name string, ttid int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.viewOwners[strings.ToLower(name)] = ttid
}

func (s *Server) dropViewOwner(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.viewOwners, strings.ToLower(name))
}

// RewriteContext resolves the session's scope into a concrete,
// privilege-pruned dataset D′ and returns the rewrite context for a
// statement touching the given tenant-specific tables.
func (c *Conn) RewriteContext(priv sqlast.Privilege, tables ...string) (*rewrite.Context, error) {
	d, all, err := c.resolveScope()
	if err != nil {
		return nil, err
	}
	pruned := c.srv.pruneDataset(c.c, d, priv, tables)
	return &rewrite.Context{
		C:      c.c,
		D:      pruned,
		DAll:   all && len(pruned) == len(d),
		Schema: c.srv.schema,
	}, nil
}

// resolveScope materializes D: the default scope {C}, a simple IN list,
// all tenants for the empty IN list, or the result of evaluating a
// complex scope query against the DBMS (§3, Listing 12).
func (c *Conn) resolveScope() (d []int64, all bool, err error) {
	switch {
	case c.scope == nil:
		return []int64{c.c}, false, nil
	case c.scope.Complex != nil:
		ctx := &rewrite.Context{C: c.c, Schema: c.srv.schema}
		sq, err := rewrite.Scope(ctx, c.scope.Complex)
		if err != nil {
			return nil, false, err
		}
		res, err := c.srv.db.Query(sq)
		if err != nil {
			return nil, false, fmt.Errorf("middleware: evaluating scope: %w", err)
		}
		for _, row := range res.Rows {
			d = append(d, row[0].AsInt())
		}
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		return d, false, nil
	case c.scope.All:
		return c.srv.Tenants(), true, nil
	default:
		d = append(d, c.scope.Simple...)
		return d, false, nil
	}
}

// pruneDataset drops tenants whose data C may not touch: D′ (§3). The
// check covers every tenant-specific table the statement references.
func (s *Server) pruneDataset(client int64, d []int64, priv sqlast.Privilege, tables []string) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ts []string
	for _, t := range tables {
		if info := s.schema.Table(t); info != nil && info.TenantSpecific() {
			ts = append(ts, t)
		}
	}
	var out []int64
	for _, owner := range d {
		if !s.tenants[owner] {
			continue
		}
		ok := true
		for _, t := range ts {
			if !s.hasPrivilege(client, owner, t, priv) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, owner)
		}
	}
	return out
}

// tenantSpecificTables collects base-table names referenced anywhere in a
// query (including subqueries), for privilege pruning.
func tenantSpecificTables(q *sqlast.Select) []string {
	seen := make(map[string]bool)
	var out []string
	var visitQ func(s *sqlast.Select)
	var visitTE func(te sqlast.TableExpr)
	visitExpr := func(e sqlast.Expr) {
		if e == nil {
			return
		}
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			switch x := n.(type) {
			case *sqlast.InExpr:
				if x.Sub != nil {
					visitQ(x.Sub)
				}
			case *sqlast.ExistsExpr:
				visitQ(x.Sub)
			case *sqlast.SubqueryExpr:
				visitQ(x.Sub)
			}
			return true
		})
	}
	visitTE = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableName:
			key := strings.ToLower(t.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, t.Name)
			}
		case *sqlast.DerivedTable:
			visitQ(t.Sub)
		case *sqlast.JoinExpr:
			visitTE(t.L)
			visitTE(t.R)
			visitExpr(t.On)
		}
	}
	visitQ = func(s *sqlast.Select) {
		for _, te := range s.From {
			visitTE(te)
		}
		for _, it := range s.Items {
			visitExpr(it.Expr)
		}
		visitExpr(s.Where)
		visitExpr(s.Having)
	}
	visitQ(q)
	return out
}

// rewrittenText resolves the session context and returns the optimized SQL
// text for q, serving repeated texts from the rewrite cache. raw is the
// client's original text when the call came in as SQL; it keys the rewrite
// cache together with everything the rewrite depends on (C, level, schema
// generation, the resolved D′), so a hit skips rewrite, optimization and
// serialization. Bind-parameter placeholders pass through the rewrite
// untouched, so one parameterized text — and therefore one engine plan —
// serves every binding. Scope resolution and privilege pruning always run —
// they are what D′ captures.
func (c *Conn) rewrittenText(q *sqlast.Select, raw string) (string, error) {
	ctx, err := c.RewriteContext(sqlast.PrivRead, tenantSpecificTables(q)...)
	if err != nil {
		return "", err
	}
	var key rwKey
	if raw != "" {
		key = rwKey{sql: raw, c: c.c, level: c.level, gen: c.srv.schemaGeneration(), dkey: datasetKey(ctx)}
		if txt, ok := c.srv.rewriteLookup(key); ok {
			return txt, nil
		}
	}
	rewritten, err := rewrite.Query(ctx, q)
	if err != nil {
		return "", err
	}
	optimized, err := optimizer.Optimize(ctx, rewritten, c.level)
	if err != nil {
		return "", err
	}
	txt := optimized.String()
	if raw != "" {
		c.srv.rewriteStore(key, txt)
	}
	return txt, nil
}

// query executes a SELECT, materializing the result.
func (c *Conn) query(ctx context.Context, q *sqlast.Select, raw string, args []sqltypes.Value) (*engine.Result, error) {
	// The middleware communicates with the DBMS "by the means of pure
	// SQL" (§3): serialize and reparse.
	txt, err := c.rewrittenText(q, raw)
	if err != nil {
		return nil, err
	}
	return c.srv.execSQLArgs(ctx, txt, args)
}

// queryRows executes a SELECT through a streaming cursor.
func (c *Conn) queryRows(ctx context.Context, q *sqlast.Select, raw string, args []sqltypes.Value) (*engine.Rows, error) {
	txt, err := c.rewrittenText(q, raw)
	if err != nil {
		return nil, err
	}
	// A parse failure of the rewritten text is a rewrite bug worth showing
	// with the SQL; bind and execution errors are the caller's and pass
	// through clean (mirroring execSQLArgs).
	if _, err := c.srv.db.PreparePlan(txt); err != nil {
		return nil, fmt.Errorf("middleware: rewritten SQL failed to parse: %w\n%s", err, txt)
	}
	return c.srv.db.QueryContext(ctx, txt, args...)
}

// datasetKey serializes the rewrite-relevant dataset state: D′ in rewrite
// order plus the all-tenants flag.
func datasetKey(ctx *rewrite.Context) string {
	var sb strings.Builder
	for i, t := range ctx.D {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", t)
	}
	if ctx.DAll {
		sb.WriteString("|all")
	}
	return sb.String()
}

func (s *Server) execSQLText(sql string) (*engine.Result, error) {
	return s.execSQLArgs(context.Background(), sql, nil)
}

func (s *Server) execSQLArgs(ctx context.Context, sql string, args []sqltypes.Value) (*engine.Result, error) {
	// PreparePlan hits the engine's plan cache; its errors are parse errors
	// of the rewritten text, i.e. rewrite bugs worth showing with the SQL.
	plan, err := s.db.PreparePlan(sql)
	if err != nil {
		return nil, fmt.Errorf("middleware: rewritten SQL failed to parse: %w\n%s", err, sql)
	}
	return s.db.ExecPlanContext(ctx, plan, args...)
}

// ---------------------------------------------------------------- caches

func (s *Server) cachedSelect(sql string) (*sqlast.Select, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cachingOff {
		return nil, false
	}
	sel, ok := s.selCache[sql]
	return sel, ok
}

func (s *Server) storeSelect(sql string, sel *sqlast.Select) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cachingOff {
		return
	}
	if len(s.selCache) >= stmtCacheCap {
		s.selCache = make(map[string]*sqlast.Select)
	}
	s.selCache[sql] = sel
}

func (s *Server) schemaGeneration() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.schemaGen
}

// bumpSchemaGen retires every cached rewrite derived from the previous
// schema. DDL paths already holding s.mu increment schemaGen directly.
func (s *Server) bumpSchemaGen() {
	s.mu.Lock()
	s.schemaGen++
	s.mu.Unlock()
}

func (s *Server) rewriteLookup(key rwKey) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cachingOff {
		return "", false
	}
	txt, ok := s.rwCache[key]
	if ok {
		s.rwHits++
	} else {
		s.rwMisses++
	}
	return txt, ok
}

func (s *Server) rewriteStore(key rwKey, txt string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cachingOff {
		return
	}
	if len(s.rwCache) >= stmtCacheCap {
		s.rwCache = make(map[rwKey]string)
	}
	s.rwCache[key] = txt
}

// RewriteCacheStats reports rewrite-cache hits and misses.
func (s *Server) RewriteCacheStats() (hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rwHits, s.rwMisses
}

// InvalidateStatementCaches drops the parse and rewrite caches and the
// engine's plan cache; benchmarks use it to measure cold planning.
func (s *Server) InvalidateStatementCaches() {
	s.mu.Lock()
	s.selCache = make(map[string]*sqlast.Select)
	s.rwCache = make(map[rwKey]string)
	s.mu.Unlock()
	s.db.InvalidatePlans()
}

// SetStatementCaching toggles the middleware statement caches and the
// engine plan cache together (on by default); mtbench -no-plan-cache uses
// it to A/B the pre-cache behaviour.
func (s *Server) SetStatementCaching(on bool) {
	s.mu.Lock()
	s.cachingOff = !on
	s.selCache = make(map[string]*sqlast.Select)
	s.rwCache = make(map[rwKey]string)
	s.mu.Unlock()
	s.db.SetPlanCache(on)
}

// RewriteSQL parses, rewrites and optimizes a query without executing it.
func (c *Conn) RewriteSQL(sql string) (*sqlast.Select, error) {
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	return c.RewriteOnly(q)
}

// RewriteOnly rewrites and optimizes a query without executing it —
// used by tools (mtsh -explain) and the benchmark harness.
func (c *Conn) RewriteOnly(q *sqlast.Select) (*sqlast.Select, error) {
	ctx, err := c.RewriteContext(sqlast.PrivRead, tenantSpecificTables(q)...)
	if err != nil {
		return nil, err
	}
	rewritten, err := rewrite.Query(ctx, q)
	if err != nil {
		return nil, err
	}
	return optimizer.Optimize(ctx, rewritten, c.level)
}

// TenantSpecificTables exposes tenantSpecificTables for layered
// deployments: the sharding layer (internal/shard) classifies and routes
// statements by the same table set the rewrite prunes privileges over.
func TenantSpecificTables(q *sqlast.Select) []string {
	return tenantSpecificTables(q)
}

// ResolveScope materializes the session's dataset D without privilege
// pruning: the default scope {C}, a simple IN list, all registered tenants
// (all=true) for the empty IN list, or the evaluated complex scope query.
// The sharding layer uses it to pre-resolve scope-dependent DDL (views,
// grants to ALL) once, globally, before fanning the statement out — each
// shard evaluating a complex scope against its own partition would
// diverge.
func (c *Conn) ResolveScope() ([]int64, bool, error) {
	return c.resolveScope()
}
