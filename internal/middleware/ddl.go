package middleware

import (
	"context"
	"fmt"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/optimizer"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// createTable handles MTSQL CREATE TABLE: only the data modeller (or a
// delegate) may define tables (§2.2). The statement is registered in the
// MT meta-data cache and executed on the DBMS in its physical form
// (ttid column, extended keys).
func (c *Conn) createTable(ct *sqlast.CreateTable) (*engine.Result, error) {
	if !c.srv.isModeller(c.c) {
		return nil, fmt.Errorf("middleware: tenant %d lacks the DDL role", c.c)
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	if _, err := c.srv.schema.AddTable(ct); err != nil {
		return nil, err
	}
	phys := rewrite.PhysicalCreateTable(c.srv.schema, ct)
	res, err := c.srv.db.Exec(phys)
	if err != nil {
		c.srv.schema.DropTable(ct.Name)
		return nil, err
	}
	c.srv.schemaGen++
	return res, nil
}

func (c *Conn) dropTable(dt *sqlast.DropTable) (*engine.Result, error) {
	if !c.srv.isModeller(c.c) {
		return nil, fmt.Errorf("middleware: tenant %d lacks the DDL role", c.c)
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	res, err := c.srv.db.Exec(dt)
	if err != nil {
		return nil, err
	}
	c.srv.schema.DropTable(dt.Name)
	c.srv.schemaGen++
	return res, nil
}

// createFunction registers a (conversion) UDF on the DBMS and retains its
// parsed body for the o4 inliner.
func (c *Conn) createFunction(cf *sqlast.CreateFunction) (*engine.Result, error) {
	if !c.srv.isModeller(c.c) {
		return nil, fmt.Errorf("middleware: tenant %d lacks the DDL role", c.c)
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	res, err := c.srv.db.Exec(cf)
	if err != nil {
		return nil, err
	}
	c.srv.schema.AddFunction(cf)
	c.srv.schemaGen++
	return res, nil
}

// createView rewrites the defining query with the session's (C, D) so the
// stored view satisfies the invariant (§2.2.4), then creates it.
func (c *Conn) createView(cv *sqlast.CreateView) (*engine.Result, error) {
	ctx, err := c.RewriteContext(sqlast.PrivRead, tenantSpecificTables(cv.Sub)...)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.View(ctx, cv)
	if err != nil {
		return nil, err
	}
	opt, err := optimizer.Optimize(ctx, rw.Sub, c.level)
	if err != nil {
		return nil, err
	}
	res, err := c.srv.db.Exec(&sqlast.CreateView{Name: rw.Name, Sub: opt})
	if err != nil {
		return nil, err
	}
	c.srv.schema.AddView(cv.Name, visibleOutputs(cv.Sub))
	c.srv.setViewOwner(cv.Name, c.c)
	c.srv.bumpSchemaGen()
	return res, nil
}

// visibleOutputs derives the client-visible output column names of the
// original (pre-rewrite) view body.
func visibleOutputs(q *sqlast.Select) []string {
	var out []string
	for _, it := range q.Items {
		switch {
		case it.Alias != "":
			out = append(out, it.Alias)
		case it.Expr != nil:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				out = append(out, cr.Name)
			} else {
				out = append(out, it.Expr.String())
			}
		}
	}
	return out
}

// AddForeignKey adds a referential integrity constraint (§2.2.3,
// Appendix A.1). Issued by the data modeller it becomes a global
// constraint: the physical FK is extended with ttid when both tables are
// tenant-specific. Issued by a regular tenant it binds only her own data
// and is rewritten into a CHECK constraint.
func (c *Conn) AddForeignKey(table string, fk sqlast.Constraint) error {
	if fk.Kind != sqlast.ConstraintForeignKey {
		return fmt.Errorf("middleware: AddForeignKey requires a FOREIGN KEY constraint")
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	info := c.srv.schema.Table(table)
	if info == nil {
		return fmt.Errorf("middleware: unknown table %s", table)
	}
	tab := c.srv.db.Table(table)
	if tab == nil {
		return fmt.Errorf("middleware: table %s missing in DBMS", table)
	}
	if c.srv.modellers[c.c] {
		phys := fk
		ref := c.srv.schema.Table(fk.RefTable)
		if info.TenantSpecific() && ref != nil && ref.TenantSpecific() {
			phys.Columns = append(append([]string{}, fk.Columns...), mtsql.TTIDColumn)
			phys.RefColumns = append(append([]string{}, fk.RefColumns...), mtsql.TTIDColumn)
		}
		tab.Constraints = append(tab.Constraints, phys)
		return nil
	}
	check, err := rewrite.TenantFKAsCheck(c.c, table, fk)
	if err != nil {
		return err
	}
	tab.Constraints = append(tab.Constraints, check)
	return nil
}

// insert applies the MTSQL DML semantics of §2.5: the statement is applied
// to each tenant in D separately, with value conversion into each target
// tenant's format. Bind parameters pass through the rewrite and are bound
// on every per-tenant physical statement.
func (c *Conn) insert(ctx context.Context, ins *sqlast.Insert, args []sqltypes.Value) (*engine.Result, error) {
	var subTables []string
	if ins.Sub != nil {
		subTables = tenantSpecificTables(ins.Sub)
	}
	rctx, err := c.RewriteContext(sqlast.PrivInsert, append([]string{ins.Table}, subTables...)...)
	if err != nil {
		return nil, err
	}
	// Reads inside INSERT ... SELECT require READ on the source tables;
	// reuse the same context pruned for INSERT on the target (the paper
	// prunes once per statement).
	stmts, err := rewrite.Insert(rctx, ins)
	if err != nil {
		return nil, err
	}
	total := 0
	for _, st := range stmts {
		res, err := c.srv.execSQLArgs(ctx, st.String(), args)
		if err != nil {
			return nil, err
		}
		total += res.Affected
	}
	return &engine.Result{Affected: total}, nil
}

func (c *Conn) update(ctx context.Context, up *sqlast.Update, args []sqltypes.Value) (*engine.Result, error) {
	rctx, err := c.RewriteContext(sqlast.PrivUpdate, up.Table)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.Update(rctx, up)
	if err != nil {
		return nil, err
	}
	return c.srv.execSQLArgs(ctx, rw.String(), args)
}

func (c *Conn) delete(ctx context.Context, del *sqlast.Delete, args []sqltypes.Value) (*engine.Result, error) {
	rctx, err := c.RewriteContext(sqlast.PrivDelete, del.Table)
	if err != nil {
		return nil, err
	}
	rw, err := rewrite.Delete(rctx, del)
	if err != nil {
		return nil, err
	}
	return c.srv.execSQLArgs(ctx, rw.String(), args)
}

// grant implements the MTSQL GRANT semantics (§2.3): privileges are
// granted on C's instance of the table; GRANT ... TO ALL grants to every
// tenant in D.
func (c *Conn) grant(g *sqlast.Grant) (*engine.Result, error) {
	grantees := []int64{g.Grantee}
	if g.GranteeAll {
		d, _, err := c.resolveScope()
		if err != nil {
			return nil, err
		}
		grantees = d
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	for _, grantee := range grantees {
		for _, p := range g.Privileges {
			c.srv.grantLocked(grantee, c.c, g.Table, p)
		}
	}
	return &engine.Result{}, nil
}

func (c *Conn) revoke(r *sqlast.Revoke) (*engine.Result, error) {
	grantees := []int64{r.Grantee}
	if r.GranteeAll {
		d, _, err := c.resolveScope()
		if err != nil {
			return nil, err
		}
		grantees = d
	}
	c.srv.mu.Lock()
	defer c.srv.mu.Unlock()
	for _, grantee := range grantees {
		for _, p := range r.Privileges {
			c.srv.revokeLocked(grantee, c.c, r.Table, p)
		}
	}
	return &engine.Result{}, nil
}
