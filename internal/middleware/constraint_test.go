package middleware

import (
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/sqlast"
)

// TestTenantSpecificFKAsCheck exercises Appendix A.1: a tenant imposes a
// referential integrity constraint on her own data only; it becomes a
// CHECK constraint that ignores other tenants' rows.
func TestTenantSpecificFKAsCheck(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	// Remove the example's global FK so only the tenant-specific
	// constraint under test remains.
	srv.DB().Table("Employees").Constraints = nil
	fk := sqlast.Constraint{
		Kind: sqlast.ConstraintForeignKey, Name: "fk_emp_role",
		Columns: []string{"E_role_id"}, RefTable: "Roles", RefColumns: []string{"R_role_id"},
	}
	if err := c0.AddForeignKey("Employees", fk); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().ValidateConstraints(); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
	// A dangling role for tenant 1 does NOT violate tenant 0's constraint.
	c1 := connFor(t, srv, 1)
	if _, err := c1.Exec("INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (7, 'Uwe', 99, 3, 1000, 40)"); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().ValidateConstraints(); err != nil {
		t.Fatalf("other tenant's dangling FK wrongly flagged: %v", err)
	}
	// A dangling role for tenant 0 violates it.
	if _, err := c0.Exec("INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (8, 'Vera', 99, 3, 1000, 40)"); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().ValidateConstraints(); err == nil {
		t.Error("tenant-specific FK violation not detected")
	}
}

// TestGlobalFKExtendedWithTTID: the modeller's global FK between
// tenant-specific tables carries ttid on both sides.
func TestGlobalFKExtendedWithTTID(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	admin := connFor(t, srv, 99)
	fk := sqlast.Constraint{
		Kind: sqlast.ConstraintForeignKey, Name: "fk_global",
		Columns: []string{"E_role_id"}, RefTable: "Roles", RefColumns: []string{"R_role_id"},
	}
	if err := admin.AddForeignKey("Employees", fk); err != nil {
		t.Fatal(err)
	}
	tab := srv.DB().Table("Employees")
	got := tab.Constraints[len(tab.Constraints)-1]
	if len(got.Columns) != 2 || got.Columns[1] != "ttid" || got.RefColumns[1] != "ttid" {
		t.Errorf("FK not extended: %v -> %v", got.Columns, got.RefColumns)
	}
	if err := srv.DB().ValidateConstraints(); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
	// Cross-tenant dangling link: role 99 exists nowhere.
	c0 := connFor(t, srv, 0)
	if _, err := c0.Exec("INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES (9, 'Wil', 99, 3, 1000, 40)"); err != nil {
		t.Fatal(err)
	}
	if err := srv.DB().ValidateConstraints(); err == nil {
		t.Error("global FK violation not detected")
	}
}

func TestAddForeignKeyErrors(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	bad := sqlast.Constraint{Kind: sqlast.ConstraintPrimaryKey}
	if err := c0.AddForeignKey("Employees", bad); err == nil {
		t.Error("non-FK constraint accepted")
	}
	fk := sqlast.Constraint{Kind: sqlast.ConstraintForeignKey,
		Columns: []string{"x"}, RefTable: "Roles", RefColumns: []string{"y"}}
	if err := c0.AddForeignKey("nothere", fk); err == nil {
		t.Error("unknown table accepted")
	}
}
