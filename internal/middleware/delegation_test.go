package middleware

import (
	"testing"

	"mtbase/internal/engine"
)

// TestDDLDelegation covers §2.2: the data modeller delegates the DDL
// privilege to a trusted tenant, who can then create tables; revoking
// takes it away again.
func TestDDLDelegation(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	admin := connFor(t, srv, 99)
	c0 := connFor(t, srv, 0)

	if _, err := c0.Exec("CREATE TABLE Notes SPECIFIC (n_id INTEGER SPECIFIC)"); err == nil {
		t.Fatal("tenant 0 created a table without the DDL role")
	}
	if err := c0.DelegateDDL(1); err == nil {
		t.Fatal("non-modeller delegated the DDL role")
	}
	if err := admin.DelegateDDL(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec("CREATE TABLE Notes SPECIFIC (n_id INTEGER SPECIFIC)"); err != nil {
		t.Fatalf("delegated tenant cannot create tables: %v", err)
	}
	if err := admin.RevokeDDL(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c0.Exec("CREATE TABLE Notes2 SPECIFIC (n_id INTEGER SPECIFIC)"); err == nil {
		t.Error("revoked tenant still has the DDL role")
	}
	if err := admin.RevokeDDL(99); err == nil {
		t.Error("modeller revoked own role")
	}
	if err := admin.DelegateDDL(12345); err == nil {
		t.Error("delegated to unknown tenant")
	}
}
