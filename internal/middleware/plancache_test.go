package middleware

import (
	"strings"
	"sync"
	"testing"

	"mtbase/internal/engine"
)

// TestStatementCacheInvalidatedByDDL is the stale-plan-after-DDL regression:
// a SELECT text executes (caching its rewrite and its engine plan), the data
// modeller drops and recreates a referenced table with a different shape,
// and the same text must re-execute against the new schema — both the
// middleware rewrite cache (schema generation) and the engine plan cache
// (dependency identity) have to notice.
func TestStatementCacheInvalidatedByDDL(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	admin := connFor(t, srv, 99)
	c0 := connFor(t, srv, 0)

	sql := "SELECT Re_name FROM Regions WHERE Re_reg_id = 3"
	res, err := c0.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].S != "EUROPE" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, err := c0.Exec(sql); err != nil { // warm every cache layer
		t.Fatal(err)
	}

	if _, err := admin.Exec("DROP TABLE Regions"); err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec(`CREATE TABLE Regions (
		Re_reg_id INTEGER NOT NULL,
		Re_name VARCHAR(25) NOT NULL,
		Re_population INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DB().ExecSQL(
		"INSERT INTO Regions VALUES (3, 'NEW-EUROPE', 7)"); err != nil {
		t.Fatal(err)
	}

	res, err = c0.Exec(sql)
	if err != nil {
		t.Fatalf("re-execution after DDL: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "NEW-EUROPE" {
		t.Fatalf("stale plan served after DDL: %v", res.Rows)
	}

	// SELECT * arity must follow the new schema too.
	star, err := c0.Exec("SELECT * FROM Regions")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, col := range star.Cols {
		if strings.EqualFold(col, "Re_population") {
			found = true
		}
	}
	if !found {
		t.Fatalf("star expansion missed new column: %v", star.Cols)
	}
}

// TestRewriteCacheKeyedByScopeAndLevel: the same text under a different
// SCOPE or optimization level must not reuse the previous rewrite.
func TestRewriteCacheKeyedByScopeAndLevel(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0, c1 := connFor(t, srv, 0), connFor(t, srv, 1)
	if _, err := c1.Exec("GRANT READ ON Employees TO 0"); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT COUNT(*) AS n FROM Employees"
	res, err := c0.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Fatalf("default scope: %v", res.Rows)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0, 1)"`); err != nil {
		t.Fatal(err)
	}
	res, err = c0.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 6 {
		t.Fatalf("widened scope served a cached narrow rewrite: %v", res.Rows)
	}
	if _, err := c0.Exec(`SET SCOPE = "IN (0)"`); err != nil {
		t.Fatal(err)
	}
	res, err = c0.Exec(sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 3 {
		t.Fatalf("narrowed scope served a cached wide rewrite: %v", res.Rows)
	}
}

// TestRewriteCacheHitsRepeatedStatements: repeated texts on one session
// land in the rewrite cache.
func TestRewriteCacheHitsRepeatedStatements(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	c0 := connFor(t, srv, 0)
	sql := "SELECT E_name FROM Employees WHERE E_age > 27 ORDER BY E_name"
	var want *engine.Result
	for i := 0; i < 5; i++ {
		res, err := c0.Exec(sql)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
		} else if len(res.Rows) != len(want.Rows) {
			t.Fatalf("iteration %d: %d rows, want %d", i, len(res.Rows), len(want.Rows))
		}
	}
	hits, misses := srv.RewriteCacheStats()
	if hits != 4 || misses != 1 {
		t.Fatalf("rewrite cache: %d hits / %d misses, want 4/1", hits, misses)
	}
	srv.InvalidateStatementCaches()
	if _, err := c0.Exec(sql); err != nil {
		t.Fatal(err)
	}
	if _, m2 := srv.RewriteCacheStats(); m2 != 2 {
		t.Fatalf("invalidation did not clear the rewrite cache: misses = %d", m2)
	}
}

// TestConcurrentSessionsSharedCaches drives several sessions through the
// cached statement path concurrently; the -race CI job enforces the
// caches' locking discipline.
func TestConcurrentSessionsSharedCaches(t *testing.T) {
	srv := newExample(t, engine.ModePostgres)
	sql := "SELECT SUM(E_salary) AS s FROM Employees"
	var wg sync.WaitGroup
	errs := make(chan error, 6)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(ttid int64) {
			defer wg.Done()
			c, err := srv.Connect(ttid)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 10; i++ {
				if _, err := c.Exec(sql); err != nil {
					errs <- err
					return
				}
			}
		}(int64(g % 2))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
