package wal

// Record layout (on disk, little-endian where fixed-width):
//
//	[u32 len][u32 crc32c(payload)][payload]
//
//	payload = uvarint LSN
//	        | byte   kind
//	        | varint tenant (C)
//	        | byte   optimization level
//	        | string scope  (the SET SCOPE statement in effect; "" = default)
//	        | string sql    (the client statement text, placeholders intact)
//	        | values args   (bind values, wire codec, bit-exact)
//
// The CRC covers the payload only; the length prefix is validated by
// bounds checking. A record that fails either check stops its segment.

import (
	"bufio"
	"encoding/binary"
	"hash/crc32"
	"io"

	"mtbase/internal/sqltypes"
	"mtbase/internal/wire"
)

// Kind classifies a record for snapshot-aware replay.
type Kind uint8

const (
	// KindData marks DML (INSERT/UPDATE/DELETE): its heap effects are
	// captured by any later snapshot, so replay skips it when recovering
	// from one.
	KindData Kind = 1
	// KindSchema marks DDL, GRANT and REVOKE: it shapes catalog and
	// privilege state that lives outside the snapshotted heaps, so replay
	// applies it even under a snapshot.
	KindSchema Kind = 2
)

// Record is one logged mutating statement with its session context.
type Record struct {
	LSN    uint64
	Kind   Kind
	Tenant int64
	Level  uint8
	Scope  string
	SQL    string
	Args   []sqltypes.Value
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// encode appends the on-disk image of r to buf.
func (r *Record) encode(buf []byte) []byte {
	var payload []byte
	payload = wire.AppendUvarint(payload, r.LSN)
	payload = append(payload, byte(r.Kind))
	payload = wire.AppendVarint(payload, r.Tenant)
	payload = append(payload, r.Level)
	payload = wire.AppendString(payload, r.Scope)
	payload = wire.AppendString(payload, r.SQL)
	payload = wire.AppendValues(payload, r.Args)

	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	return append(buf, payload...)
}

// maxRecord bounds one record's payload; larger length prefixes are
// treated as corruption rather than allocation requests.
const maxRecord = 64 << 20

// decodeFrom reads one record, reporting (false, nil) at a clean EOF and
// an error for a torn or corrupt record.
func (r *Record) decodeFrom(br *bufio.Reader) (bool, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return false, nil
		}
		return false, err // torn header
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	crc := binary.LittleEndian.Uint32(hdr[4:])
	if n == 0 || n > maxRecord {
		return false, wire.ErrCorrupt
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return false, err // torn payload
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return false, wire.ErrCorrupt
	}
	rd := wire.NewReader(payload)
	lsn, err := rd.Uvarint()
	if err != nil {
		return false, err
	}
	r.LSN = lsn
	kb, err := rd.Byte()
	if err != nil {
		return false, err
	}
	r.Kind = Kind(kb)
	if r.Tenant, err = rd.Varint(); err != nil {
		return false, err
	}
	if r.Level, err = rd.Byte(); err != nil {
		return false, err
	}
	if r.Scope, err = rd.String(); err != nil {
		return false, err
	}
	if r.SQL, err = rd.String(); err != nil {
		return false, err
	}
	if r.Args, err = rd.Values(); err != nil {
		return false, err
	}
	return true, nil
}
