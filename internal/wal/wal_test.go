package wal

// Durability invariants: reopen replays exactly what was appended, torn
// tails stop a segment cleanly, corruption never silently truncates more
// than the tail, group commit keeps the durable watermark monotone under
// concurrency, snapshots round-trip bit-exactly and prune to two
// generations, and an online backup of a live directory reopens to the
// same records.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"mtbase/internal/sqltypes"
)

func rec(i int) *Record {
	return &Record{
		Kind:   Kind(1 + i%2),
		Tenant: int64(i % 5),
		Level:  uint8(i % 6),
		Scope:  fmt.Sprintf("SET SCOPE = \"IN (%d)\"", i%3),
		SQL:    fmt.Sprintf("INSERT INTO t VALUES (%d, ?)", i),
		Args:   []sqltypes.Value{sqltypes.NewFloat(float64(i) + 0.5), sqltypes.NewString("x")},
	}
}

func mustOpen(t *testing.T, dir string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestAppendSyncReopen(t *testing.T) {
	dir := t.TempDir()
	l, recs := mustOpen(t, dir)
	if len(recs) != 0 {
		t.Fatalf("fresh dir has %d records", len(recs))
	}
	const n = 100
	for i := 0; i < n; i++ {
		lsn, err := l.Append(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d, want %d", lsn, i+1)
		}
	}
	if err := l.Sync(uint64(n)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := mustOpen(t, dir)
	defer l2.Close()
	if len(recs) != n {
		t.Fatalf("reopen: %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		want := rec(i)
		if r.SQL != want.SQL || r.Scope != want.Scope || r.Kind != want.Kind ||
			r.Tenant != want.Tenant || r.Level != want.Level || len(r.Args) != 2 ||
			math.Float64bits(r.Args[0].F) != math.Float64bits(want.Args[0].F) {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	// The new segment starts after the old tail.
	lsn, err := l2.Append(rec(0))
	if err != nil || lsn != n+1 {
		t.Fatalf("append after reopen: lsn %d err %v", lsn, err)
	}
}

func TestTornTailStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		l.Append(rec(i))
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the last record's payload: a torn tail.
	if err := os.WriteFile(seg, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("torn tail: %d records, want 9", len(recs))
	}
}

func TestCorruptRecordStopsSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		l.Append(rec(i))
	}
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, _ := os.ReadFile(seg)
	data[len(data)-3] ^= 0xff // flip a bit in the last payload
	os.WriteFile(seg, data, 0o644)
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 {
		t.Fatalf("corrupt tail: %d records, want 9", len(recs))
	}
}

func TestMissingSegmentBreaksContinuity(t *testing.T) {
	dir := t.TempDir()
	for round := 0; round < 3; round++ {
		l, _ := mustOpen(t, dir)
		for i := 0; i < 5; i++ {
			l.Append(rec(i))
		}
		l.Close()
	}
	// Drop the middle segment (LSNs 6..10).
	if err := os.Remove(filepath.Join(dir, segName(6))); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(dir); err == nil {
		t.Fatal("gutted directory read back without error")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append(rec(w*each + i))
				if err == nil {
					err = l.Sync(lsn)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != writers*each {
		t.Fatalf("%d records, want %d", len(recs), writers*each)
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

func snapFor(lsn uint64) *Snapshot {
	return &Snapshot{LSN: lsn, Tables: []TableDump{
		{Name: "t", Rows: [][]sqltypes.Value{
			{sqltypes.NewInt(int64(lsn)), sqltypes.NewFloat(math.Inf(-1))},
			{sqltypes.NewString("s"), sqltypes.Null},
		}},
		{Name: "empty", Rows: nil},
	}}
}

func TestSnapshotRoundTripAndPrune(t *testing.T) {
	dir := t.TempDir()
	for _, lsn := range []uint64{10, 20, 30} {
		if _, err := WriteSnapshot(dir, snapFor(lsn)); err != nil {
			t.Fatal(err)
		}
	}
	lsns := snapshotLSNs(dir)
	if len(lsns) != keepSnapshots || lsns[0] != 20 || lsns[1] != 30 {
		t.Fatalf("pruned to %v", lsns)
	}
	s, err := ReadLatestSnapshot(dir)
	if err != nil || s == nil || s.LSN != 30 {
		t.Fatalf("latest: %+v %v", s, err)
	}
	if len(s.Tables) != 2 || s.Tables[0].Name != "t" || len(s.Tables[0].Rows) != 2 {
		t.Fatalf("tables: %+v", s.Tables)
	}
	if !math.IsInf(s.Tables[0].Rows[0][1].F, -1) {
		t.Fatal("float not bit-exact through snapshot")
	}
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	WriteSnapshot(dir, snapFor(10))
	WriteSnapshot(dir, snapFor(20))
	path := filepath.Join(dir, snapName(20))
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xff
	os.WriteFile(path, data, 0o644)
	s, err := ReadLatestSnapshot(dir)
	if err != nil || s == nil || s.LSN != 10 {
		t.Fatalf("fallback: %+v %v", s, err)
	}
}

func TestBackupReopens(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir)
	for i := 0; i < 20; i++ {
		l.Append(rec(i))
	}
	l.Sync(20)
	WriteSnapshot(dir, snapFor(15))
	os.WriteFile(filepath.Join(dir, "MANIFEST.json"), []byte("{}\n"), 0o644)

	dst := filepath.Join(t.TempDir(), "backup")
	n, err := Backup(dir, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 { // manifest + snapshot + one segment
		t.Fatalf("copied %d files, want 3", n)
	}
	l.Close()

	recs, err := ReadAll(dst)
	if err != nil || len(recs) != 20 {
		t.Fatalf("backup read: %d records, %v", len(recs), err)
	}
	s, err := ReadLatestSnapshot(dst)
	if err != nil || s == nil || s.LSN != 15 {
		t.Fatalf("backup snapshot: %+v %v", s, err)
	}
	if _, err := Backup(dir, dst); err == nil {
		t.Fatal("backup into non-empty destination accepted")
	}
}
