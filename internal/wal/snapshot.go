package wal

// Heap snapshots. A snapshot captures every table's full heap (row order
// included — row order is query-visible for unordered scans) as of one WAL
// LSN. Thanks to the engine's copy-on-write snapshot pointers (ADR-005),
// *taking* the consistent picture is a pointer read per table under the
// server's write lock; the expensive serialization happens afterwards on
// immutable data, concurrent with new writes.
//
// Recovery uses a snapshot to skip replaying the DML bulk: schema-class
// records up to the snapshot LSN are replayed (they shape catalog and
// privilege state outside the heaps), the snapshot heaps are installed
// wholesale, and only records after the snapshot LSN replay in full.
//
// File format:
//
//	"MTSNAP1\n" | uvarint LSN | uvarint #tables
//	  per table: string name | uvarint #rows | rows (wire value lists)
//	| u32 crc32c over everything before it
//
// Files are written to a temp name, fsynced and renamed into place, so a
// crash mid-snapshot leaves the previous snapshot authoritative.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"mtbase/internal/sqltypes"
	"mtbase/internal/wire"
)

const snapMagic = "MTSNAP1\n"

// TableDump is one table's heap in a snapshot.
type TableDump struct {
	Name string
	Rows [][]sqltypes.Value
}

// Snapshot is a consistent picture of every heap as of LSN.
type Snapshot struct {
	LSN    uint64
	Tables []TableDump
}

// keepSnapshots is how many snapshot generations survive pruning: the new
// one plus one predecessor, so a corrupt latest file never strands
// recovery.
const keepSnapshots = 2

// WriteSnapshot serializes s into dir atomically and prunes old snapshot
// generations. The Tables' row slices must be immutable while it runs —
// engine heap snapshots are exactly that.
func WriteSnapshot(dir string, s *Snapshot) (string, error) {
	final := filepath.Join(dir, snapName(s.LSN))
	tmp, err := os.CreateTemp(dir, "snap-tmp-*")
	if err != nil {
		return "", err
	}
	defer os.Remove(tmp.Name())

	crc := crc32.New(crcTable)
	bw := bufio.NewWriterSize(tmp, 256<<10)
	write := func(p []byte) error {
		crc.Write(p)
		_, err := bw.Write(p)
		return err
	}

	if err := write([]byte(snapMagic)); err != nil {
		return "", err
	}
	hdr := wire.AppendUvarint(nil, s.LSN)
	hdr = wire.AppendUvarint(hdr, uint64(len(s.Tables)))
	if err := write(hdr); err != nil {
		return "", err
	}
	var buf []byte
	for _, t := range s.Tables {
		buf = wire.AppendString(buf[:0], t.Name)
		buf = wire.AppendUvarint(buf, uint64(len(t.Rows)))
		if err := write(buf); err != nil {
			return "", err
		}
		for _, row := range t.Rows {
			buf = wire.AppendValues(buf[:0], row)
			if err := write(buf); err != nil {
				return "", err
			}
		}
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := bw.Write(sum[:]); err != nil {
		return "", err
	}
	if err := bw.Flush(); err != nil {
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		return "", err
	}
	if err := tmp.Close(); err != nil {
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", err
	}
	pruneSnapshots(dir)
	return final, nil
}

// pruneSnapshots removes all but the newest keepSnapshots generations.
func pruneSnapshots(dir string) {
	lsns := snapshotLSNs(dir)
	for i := 0; i < len(lsns)-keepSnapshots; i++ {
		os.Remove(filepath.Join(dir, snapName(lsns[i])))
	}
}

// snapshotLSNs lists snapshot LSNs under dir, ascending.
func snapshotLSNs(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var lsns []uint64
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			lsns = append(lsns, n)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns
}

// ReadLatestSnapshot returns the newest snapshot that validates, or nil
// when none exists. A corrupt newer file (crash mid-write never produces
// one, but disks do) falls back to its predecessor.
func ReadLatestSnapshot(dir string) (*Snapshot, error) {
	lsns := snapshotLSNs(dir)
	for i := len(lsns) - 1; i >= 0; i-- {
		s, err := readSnapshot(filepath.Join(dir, snapName(lsns[i])))
		if err == nil {
			return s, nil
		}
	}
	return nil, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("wal: %s: not a snapshot", path)
	}
	body, sum := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(sum) {
		return nil, fmt.Errorf("wal: %s: checksum mismatch", path)
	}
	r := wire.NewReader(body[len(snapMagic):])
	s := &Snapshot{}
	if s.LSN, err = r.Uvarint(); err != nil {
		return nil, err
	}
	nt, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	s.Tables = make([]TableDump, nt)
	for i := range s.Tables {
		if s.Tables[i].Name, err = r.String(); err != nil {
			return nil, err
		}
		nr, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		rows := make([][]sqltypes.Value, nr)
		for j := range rows {
			if rows[j], err = r.Values(); err != nil {
				return nil, err
			}
		}
		s.Tables[i].Rows = rows
	}
	return s, nil
}
