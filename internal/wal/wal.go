// Package wal implements crash durability for mtserve: a write-ahead log
// of logical records (the mutating statements a server applied, with their
// session context), periodic snapshots of the engine's copy-on-write table
// heaps, and online backup of the whole durability directory.
//
// The log is logical, not physical: the engine's execution is deterministic
// (the differential suites pin results byte-identical across compile
// modes, parallelism settings and memory budgets), so re-executing the
// same statements from the same base state reproduces the same heaps
// byte-for-byte. A record therefore carries everything replay needs to
// reproduce the original execution exactly: the tenant the statement ran
// as (C), the optimization level, the SET SCOPE statement in effect, the
// statement text and the bind values (bit-exact, wire codec).
//
// Layout of a durability directory:
//
//	MANIFEST.json      how to rebuild the base state (written by the server)
//	wal-<lsn16>.log    append-only record segments; <lsn16> = first LSN
//	snap-<lsn16>.snap  heap snapshots; <lsn16> = last LSN the snapshot covers
//
// Durability contract. Append buffers a record and assigns its LSN; Sync
// makes everything up to an LSN durable with one fsync shared by every
// waiter that piled up meanwhile (group commit). The server acknowledges a
// write to the client only after Sync returns, so an acknowledged write is
// always recovered; an unacknowledged write may or may not be, but replay
// order always equals apply order.
//
// Torn tails. A crash can leave a half-written record at the end of the
// segment being appended. Records are length-prefixed and checksummed;
// readers stop a segment at the first record that fails to decode. Each
// Open starts a fresh segment, so a torn tail is always at the end of some
// segment and never followed by valid records in the same file; cross-
// segment LSN continuity is verified so a misordered or gutted directory
// is detected rather than silently replayed.
package wal

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SegmentSize is the rotation threshold: once a segment exceeds it, the
// next sync boundary starts a new one.
const SegmentSize = 64 << 20

// Log is an open write-ahead log. Append/Sync are safe for concurrent use.
type Log struct {
	dir string

	mu       sync.Mutex // append path: file, writer, LSNs
	f        *os.File
	w        *bufio.Writer
	appended uint64 // last LSN written to the buffer
	segBytes int64

	syncMu  sync.Mutex // sync path: one fsync at a time
	durMu   sync.Mutex // durable/err + cond
	durCond *sync.Cond
	durable uint64 // last LSN known fsynced
	syncErr error  // sticky: the log is dead after a sync failure
}

func segName(firstLSN uint64) string  { return fmt.Sprintf("wal-%016x.log", firstLSN) }
func snapName(lsn uint64) string      { return fmt.Sprintf("snap-%016x.snap", lsn) }
func parseSeq(name, pre, suf string) (uint64, bool) {
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(pre):len(name)-len(suf)], 16, 64)
	return n, err == nil
}

// Open reads every record already in dir (in LSN order, stopping segments
// at torn tails) and returns them together with a Log ready to append; the
// first new record gets LSN last+1. The directory is created if missing.
func Open(dir string) (*Log, []Record, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	recs, err := ReadAll(dir)
	if err != nil {
		return nil, nil, err
	}
	next := uint64(1)
	if len(recs) > 0 {
		next = recs[len(recs)-1].LSN + 1
	}
	// segName(next) can already exist: a previous Open that never appended
	// (or appended only a torn record) leaves it behind. Such a file holds
	// zero decodable records by construction — otherwise next would be past
	// it — so truncating loses nothing acknowledged.
	f, err := os.OpenFile(filepath.Join(dir, segName(next)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l := &Log{dir: dir, f: f, w: bufio.NewWriterSize(f, 256<<10), appended: next - 1}
	l.durCond = sync.NewCond(&l.durMu)
	l.durable = next - 1
	return l, recs, nil
}

// Dir returns the durability directory.
func (l *Log) Dir() string { return l.dir }

// Append encodes rec, assigns it the next LSN and buffers it. The record
// is NOT durable until Sync(lsn) returns; the caller must apply records in
// Append order (hold one lock across Append+apply) so replay order equals
// apply order.
func (l *Log) Append(rec *Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.loadErr(); err != nil {
		return 0, err
	}
	rec.LSN = l.appended + 1
	buf := rec.encode(nil)
	if _, err := l.w.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.appended = rec.LSN
	l.segBytes += int64(len(buf))
	return rec.LSN, nil
}

// LastLSN reports the most recently appended LSN.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// Sync blocks until every record up to lsn is fsynced. Concurrent callers
// share fsyncs: whoever grabs the sync path flushes and syncs everything
// appended so far, and the rest observe the advanced watermark without
// touching the disk (group commit).
func (l *Log) Sync(lsn uint64) error {
	for {
		l.durMu.Lock()
		d, err := l.durable, l.syncErr
		l.durMu.Unlock()
		if err != nil {
			return err
		}
		if d >= lsn {
			return nil
		}
		l.syncOnce()
	}
}

// syncOnce performs (or waits out) one flush+fsync round covering every
// record appended before it started.
func (l *Log) syncOnce() {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()

	l.mu.Lock()
	target := l.appended
	err := l.w.Flush()
	f := l.f
	l.mu.Unlock()
	if err == nil {
		err = f.Sync()
	}

	l.durMu.Lock()
	if err != nil {
		l.syncErr = fmt.Errorf("wal: sync: %w", err)
	} else if target > l.durable {
		l.durable = target
	}
	l.durCond.Broadcast()
	l.durMu.Unlock()

	if err == nil {
		l.maybeRotate(target)
	}
}

// maybeRotate starts a new segment once the current one is oversized. It
// runs at a sync boundary (syncMu held, everything durable up to target),
// so the old segment closes complete and the new one starts at target+1.
func (l *Log) maybeRotate(target uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.segBytes < SegmentSize || l.appended != target {
		return
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segName(target+1)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return // keep appending to the old segment; rotation is opportunistic
	}
	l.f.Close()
	l.f = f
	l.w = bufio.NewWriterSize(f, 256<<10)
	l.segBytes = 0
}

func (l *Log) loadErr() error {
	l.durMu.Lock()
	defer l.durMu.Unlock()
	return l.syncErr
}

// Close flushes, syncs and closes the log.
func (l *Log) Close() error {
	err := l.Sync(l.LastLSN())
	l.mu.Lock()
	defer l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadAll decodes every record under dir in LSN order. Within a segment,
// reading stops at the first undecodable record (torn tail); across
// segments, LSN continuity is enforced.
func ReadAll(dir string) ([]Record, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type seg struct {
		first uint64
		name  string
	}
	var segs []seg
	for _, e := range entries {
		if n, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs = append(segs, seg{first: n, name: e.Name()})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	var recs []Record
	next := uint64(0)
	for _, s := range segs {
		if next != 0 && s.first != next {
			return nil, fmt.Errorf("wal: segment %s breaks LSN continuity (want first LSN %d)", s.name, next)
		}
		if next == 0 {
			next = s.first
		}
		segRecs, err := readSegment(filepath.Join(dir, s.name))
		if err != nil {
			return nil, err
		}
		for i := range segRecs {
			if segRecs[i].LSN != next {
				return nil, fmt.Errorf("wal: %s: record LSN %d, want %d", s.name, segRecs[i].LSN, next)
			}
			next++
		}
		recs = append(recs, segRecs...)
	}
	return recs, nil
}

// readSegment decodes one segment, stopping cleanly at a torn tail.
func readSegment(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 256<<10)
	var recs []Record
	for {
		var rec Record
		ok, err := rec.decodeFrom(br)
		if err != nil || !ok {
			// A decode error here is a torn or corrupt tail: stop the
			// segment at the last valid record. Cross-segment continuity
			// checking in ReadAll catches the case where valid data was
			// supposed to follow.
			return recs, nil
		}
		recs = append(recs, rec)
	}
}
