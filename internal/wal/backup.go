package wal

// Online backup: copy a live durability directory into another directory
// while the server keeps serving. No quiescing is needed because every
// file is either immutable once named (snapshots are rename-published,
// the manifest is written once) or append-only with self-validating
// records (WAL segments): a segment copied while the server appends has at
// worst a torn tail, which recovery already stops at cleanly. Copy order
// — manifest, snapshots, then WAL segments oldest-first — guarantees the
// copied WAL is at least as new as the copied snapshot, so the backup is a
// crash-consistent prefix of the live history. Restoring is pointing
// `mtserve -data` at the backup.

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Backup copies the durability directory src into dst (created; must be
// empty or missing) and returns the number of files copied.
func Backup(src, dst string) (int, error) {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return 0, err
	}
	existing, err := os.ReadDir(dst)
	if err != nil {
		return 0, err
	}
	if len(existing) > 0 {
		return 0, fmt.Errorf("wal: backup destination %s is not empty", dst)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return 0, err
	}
	var manifests, snaps, segs, rest []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case !e.Type().IsRegular() || strings.HasPrefix(name, "snap-tmp-"):
			// skip directories and in-flight snapshot temps
		case name == "MANIFEST.json":
			manifests = append(manifests, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			segs = append(segs, name)
		default:
			rest = append(rest, name)
		}
	}
	sort.Strings(snaps)
	sort.Strings(segs) // hex LSN names sort lexically == numerically at fixed width
	n := 0
	for gi, group := range [][]string{manifests, snaps, segs, rest} {
		for _, name := range group {
			if err := copyFile(filepath.Join(src, name), filepath.Join(dst, name)); err != nil {
				// A snapshot listed by ReadDir may be pruned by a concurrent
				// automatic snapshot before we open it; it was superseded by
				// a newer generation, so skipping it keeps the backup valid.
				if gi == 1 && errors.Is(err, os.ErrNotExist) {
					continue
				}
				return n, err
			}
			n++
		}
	}
	return n, nil
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.OpenFile(dst, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		return err
	}
	if err := out.Sync(); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}
