package wire

// Message payload encodings. Each message type has an Encode func building
// the payload and a Decode func parsing it; framing (wire.go) carries the
// type byte, so payloads hold only the message fields.

import (
	"fmt"

	"mtbase/internal/sqltypes"
)

// Hello opens the handshake: protocol magic, the highest version the
// client speaks, the tenant the connection binds to (C), and the initial
// optimization level by name ("" = server default).
type Hello struct {
	Version uint32
	Tenant  int64
	Level   string
}

// EncodeHello builds a Hello payload.
func EncodeHello(h Hello) []byte {
	buf := append([]byte(nil), Magic...)
	buf = AppendUvarint(buf, uint64(h.Version))
	buf = AppendVarint(buf, h.Tenant)
	return AppendString(buf, h.Level)
}

// DecodeHello parses a Hello payload.
func DecodeHello(payload []byte) (Hello, error) {
	var h Hello
	if len(payload) < len(Magic) || string(payload[:len(Magic)]) != Magic {
		return h, fmt.Errorf("wire: bad magic")
	}
	r := NewReader(payload[len(Magic):])
	v, err := r.Uvarint()
	if err != nil {
		return h, err
	}
	h.Version = uint32(v)
	if h.Tenant, err = r.Varint(); err != nil {
		return h, err
	}
	h.Level, err = r.String()
	return h, err
}

// HelloOK completes the handshake with the negotiated version.
type HelloOK struct {
	Version   uint32
	Server    string
	SessionID uint64
}

// EncodeHelloOK builds a HelloOK payload.
func EncodeHelloOK(h HelloOK) []byte {
	buf := AppendUvarint(nil, uint64(h.Version))
	buf = AppendString(buf, h.Server)
	return AppendUvarint(buf, h.SessionID)
}

// DecodeHelloOK parses a HelloOK payload.
func DecodeHelloOK(payload []byte) (HelloOK, error) {
	var h HelloOK
	r := NewReader(payload)
	v, err := r.Uvarint()
	if err != nil {
		return h, err
	}
	h.Version = uint32(v)
	if h.Server, err = r.String(); err != nil {
		return h, err
	}
	sid, err := r.Uvarint()
	h.SessionID = sid
	return h, err
}

// Query is the simple protocol: one SQL statement (any kind — SELECT
// streams rows, DML/DDL/SET SCOPE answer Done) with optional bind values.
type Query struct {
	SQL  string
	Args []sqltypes.Value
}

// EncodeQuery builds a Query payload.
func EncodeQuery(q Query) []byte {
	buf := AppendString(nil, q.SQL)
	return AppendValues(buf, q.Args)
}

// DecodeQuery parses a Query payload.
func DecodeQuery(payload []byte) (Query, error) {
	var q Query
	r := NewReader(payload)
	var err error
	if q.SQL, err = r.String(); err != nil {
		return q, err
	}
	q.Args, err = r.Values()
	return q, err
}

// Prepare registers a statement under a client-chosen id.
type Prepare struct {
	StmtID uint32
	SQL    string
}

// EncodePrepare builds a Prepare payload.
func EncodePrepare(p Prepare) []byte {
	buf := AppendUvarint(nil, uint64(p.StmtID))
	return AppendString(buf, p.SQL)
}

// DecodePrepare parses a Prepare payload.
func DecodePrepare(payload []byte) (Prepare, error) {
	var p Prepare
	r := NewReader(payload)
	id, err := r.Uvarint()
	if err != nil {
		return p, err
	}
	p.StmtID = uint32(id)
	p.SQL, err = r.String()
	return p, err
}

// PrepareOK acknowledges a Prepare.
type PrepareOK struct {
	StmtID    uint32
	NumParams uint32
	IsQuery   bool
}

// EncodePrepareOK builds a PrepareOK payload.
func EncodePrepareOK(p PrepareOK) []byte {
	buf := AppendUvarint(nil, uint64(p.StmtID))
	buf = AppendUvarint(buf, uint64(p.NumParams))
	return AppendBool(buf, p.IsQuery)
}

// DecodePrepareOK parses a PrepareOK payload.
func DecodePrepareOK(payload []byte) (PrepareOK, error) {
	var p PrepareOK
	r := NewReader(payload)
	id, err := r.Uvarint()
	if err != nil {
		return p, err
	}
	p.StmtID = uint32(id)
	n, err := r.Uvarint()
	if err != nil {
		return p, err
	}
	p.NumParams = uint32(n)
	p.IsQuery, err = r.Bool()
	return p, err
}

// Bind attaches argument values to a prepared statement's portal.
type Bind struct {
	StmtID uint32
	Args   []sqltypes.Value
}

// EncodeBind builds a Bind payload.
func EncodeBind(b Bind) []byte {
	buf := AppendUvarint(nil, uint64(b.StmtID))
	return AppendValues(buf, b.Args)
}

// DecodeBind parses a Bind payload.
func DecodeBind(payload []byte) (Bind, error) {
	var b Bind
	r := NewReader(payload)
	id, err := r.Uvarint()
	if err != nil {
		return b, err
	}
	b.StmtID = uint32(id)
	b.Args, err = r.Values()
	return b, err
}

// Execute runs the bound portal. WantRows distinguishes the client's
// Query path (errors on DML, mirroring middleware.Stmt.Query) from Exec.
type Execute struct {
	StmtID   uint32
	WantRows bool
}

// EncodeExecute builds an Execute payload.
func EncodeExecute(e Execute) []byte {
	buf := AppendUvarint(nil, uint64(e.StmtID))
	return AppendBool(buf, e.WantRows)
}

// DecodeExecute parses an Execute payload.
func DecodeExecute(payload []byte) (Execute, error) {
	var e Execute
	r := NewReader(payload)
	id, err := r.Uvarint()
	if err != nil {
		return e, err
	}
	e.StmtID = uint32(id)
	e.WantRows, err = r.Bool()
	return e, err
}

// EncodeStmtID builds the payload of the one-field statement messages
// (CloseStmt, CloseOK).
func EncodeStmtID(id uint32) []byte { return AppendUvarint(nil, uint64(id)) }

// DecodeStmtID parses a one-field statement payload.
func DecodeStmtID(payload []byte) (uint32, error) {
	id, err := NewReader(payload).Uvarint()
	return uint32(id), err
}

// RowHeader opens a row stream with the output column names.
type RowHeader struct {
	Cols []string
}

// EncodeRowHeader builds a RowHeader payload.
func EncodeRowHeader(h RowHeader) []byte {
	buf := AppendUvarint(nil, uint64(len(h.Cols)))
	for _, c := range h.Cols {
		buf = AppendString(buf, c)
	}
	return buf
}

// DecodeRowHeader parses a RowHeader payload.
func DecodeRowHeader(payload []byte) (RowHeader, error) {
	var h RowHeader
	r := NewReader(payload)
	n, err := r.Uvarint()
	if err != nil || n > maxWireList {
		return h, ErrCorrupt
	}
	h.Cols = make([]string, n)
	for i := range h.Cols {
		if h.Cols[i], err = r.String(); err != nil {
			return h, err
		}
	}
	return h, nil
}

// RowBatch carries a bounded chunk of a row stream.
type RowBatch struct {
	Rows [][]sqltypes.Value
}

// EncodeRowBatch builds a RowBatch payload.
func EncodeRowBatch(b RowBatch) []byte {
	buf := AppendUvarint(nil, uint64(len(b.Rows)))
	for _, row := range b.Rows {
		buf = AppendValues(buf, row)
	}
	return buf
}

// DecodeRowBatch parses a RowBatch payload.
func DecodeRowBatch(payload []byte) (RowBatch, error) {
	var b RowBatch
	r := NewReader(payload)
	n, err := r.Uvarint()
	if err != nil || n > maxWireList {
		return b, ErrCorrupt
	}
	b.Rows = make([][]sqltypes.Value, n)
	for i := range b.Rows {
		if b.Rows[i], err = r.Values(); err != nil {
			return b, err
		}
	}
	return b, nil
}

// Done terminates a successful statement: rows streamed for queries,
// affected count for DML.
type Done struct {
	Rows     int64
	Affected int64
}

// EncodeDone builds a Done payload.
func EncodeDone(d Done) []byte {
	buf := AppendVarint(nil, d.Rows)
	return AppendVarint(buf, d.Affected)
}

// DecodeDone parses a Done payload.
func DecodeDone(payload []byte) (Done, error) {
	var d Done
	r := NewReader(payload)
	var err error
	if d.Rows, err = r.Varint(); err != nil {
		return d, err
	}
	d.Affected, err = r.Varint()
	return d, err
}

// EncodeError builds an Error payload from a typed error.
func EncodeError(e *Err) []byte {
	buf := AppendString(nil, e.Code)
	return AppendString(buf, e.Message)
}

// DecodeError parses an Error payload.
func DecodeError(payload []byte) (*Err, error) {
	r := NewReader(payload)
	code, err := r.String()
	if err != nil {
		return nil, err
	}
	msg, err := r.String()
	if err != nil {
		return nil, err
	}
	return &Err{Code: code, Message: msg}, nil
}

// StatPair is one named counter in a StatsOK reply.
type StatPair struct {
	Name  string
	Value int64
}

// StatsOK reports engine and server counters in a stable order.
type StatsOK struct {
	Pairs []StatPair
}

// EncodeStatsOK builds a StatsOK payload.
func EncodeStatsOK(s StatsOK) []byte {
	buf := AppendUvarint(nil, uint64(len(s.Pairs)))
	for _, p := range s.Pairs {
		buf = AppendString(buf, p.Name)
		buf = AppendVarint(buf, p.Value)
	}
	return buf
}

// DecodeStatsOK parses a StatsOK payload.
func DecodeStatsOK(payload []byte) (StatsOK, error) {
	var s StatsOK
	r := NewReader(payload)
	n, err := r.Uvarint()
	if err != nil || n > maxWireList {
		return s, ErrCorrupt
	}
	s.Pairs = make([]StatPair, n)
	for i := range s.Pairs {
		if s.Pairs[i].Name, err = r.String(); err != nil {
			return s, err
		}
		if s.Pairs[i].Value, err = r.Varint(); err != nil {
			return s, err
		}
	}
	return s, nil
}

// Set is the session/admin option message: Set("level", "o3") switches the
// optimization level, Set("explain", sql) returns the rewritten SQL,
// Set("backup", dir) runs an online backup, Set("snapshot", "") forces a
// durability snapshot. SetOK answers with the resulting value.
type Set struct {
	Name  string
	Value string
}

// EncodeSet builds a Set payload.
func EncodeSet(s Set) []byte {
	buf := AppendString(nil, s.Name)
	return AppendString(buf, s.Value)
}

// DecodeSet parses a Set payload.
func DecodeSet(payload []byte) (Set, error) {
	var s Set
	r := NewReader(payload)
	var err error
	if s.Name, err = r.String(); err != nil {
		return s, err
	}
	s.Value, err = r.String()
	return s, err
}

// EncodeSetOK builds a SetOK payload.
func EncodeSetOK(value string) []byte { return AppendString(nil, value) }

// DecodeSetOK parses a SetOK payload.
func DecodeSetOK(payload []byte) (string, error) { return NewReader(payload).String() }
