package wire

// Codec invariants: value round-trips must be bit-exact (NaN payloads,
// negative zero, infinities — the same discipline the engine spill codec
// is tested to), nil and empty lists must stay distinct, corrupt payloads
// must error rather than panic or misdecode, and framing must reject
// oversized frames.

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mtbase/internal/sqltypes"
)

func bitsEqual(a, b sqltypes.Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func TestValueRoundTripBitExact(t *testing.T) {
	vals := []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(0),
		sqltypes.NewInt(-1),
		sqltypes.NewInt(math.MaxInt64),
		sqltypes.NewInt(math.MinInt64),
		sqltypes.NewFloat(0),
		sqltypes.NewFloat(math.Copysign(0, -1)),
		sqltypes.NewFloat(math.NaN()),
		sqltypes.NewFloat(math.Float64frombits(0x7ff8000000000123)), // NaN payload
		sqltypes.NewFloat(math.Inf(1)),
		sqltypes.NewFloat(math.Inf(-1)),
		sqltypes.NewFloat(1.0000000000000002),
		sqltypes.NewString(""),
		sqltypes.NewString("café \x00 binary"),
		sqltypes.NewBool(true),
		sqltypes.NewBool(false),
		{K: sqltypes.KindDate, I: 9140},
		{K: sqltypes.KindInterval, I: 3, F: 2.5},
	}
	buf := AppendValues(nil, vals)
	got, err := NewReader(buf).Values()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(vals) {
		t.Fatalf("got %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if !bitsEqual(vals[i], got[i]) {
			t.Errorf("value %d: got %+v, want %+v", i, got[i], vals[i])
		}
	}
}

func TestNilVsEmptyValueList(t *testing.T) {
	if got, _ := NewReader(AppendValues(nil, nil)).Values(); got != nil {
		t.Fatalf("nil list decoded as %v", got)
	}
	got, err := NewReader(AppendValues(nil, []sqltypes.Value{})).Values()
	if err != nil || got == nil || len(got) != 0 {
		t.Fatalf("empty list decoded as %v (err %v)", got, err)
	}
}

func TestCorruptPayloadsError(t *testing.T) {
	good := AppendValue(nil, sqltypes.NewString("hello"))
	cases := map[string][]byte{
		"empty":          {},
		"bad kind":       {0xee},
		"truncated str":  good[:len(good)-2],
		"huge strlen":    {byte(sqltypes.KindString), 0xff, 0xff, 0xff, 0xff, 0x7f},
		"truncated f64":  AppendValue(nil, sqltypes.NewFloat(1))[:5],
		"huge list":      AppendUvarint(nil, uint64(maxWireList)+10),
		"truncated list": AppendUvarint(nil, 5),
	}
	for name, buf := range cases {
		r := NewReader(buf)
		if name == "huge list" || name == "truncated list" {
			if _, err := r.Values(); err == nil {
				t.Errorf("%s: no error", name)
			}
			continue
		}
		if _, err := r.Value(); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestFrameRoundTripAndLimits(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("payload bytes")
	if err := WriteFrame(&buf, MsgQuery, payload); err != nil {
		t.Fatal(err)
	}
	tp, got, err := ReadFrame(&buf)
	if err != nil || tp != MsgQuery || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %v %s %q", err, tp, got)
	}
	// Oversized length prefix must be rejected without allocating.
	huge := []byte{0xff, 0xff, 0xff, 0xff, byte(MsgQuery)}
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err := WriteFrame(&buf, MsgQuery, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized write accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	hello := Hello{Version: 1, Tenant: 42, Level: "o3"}
	h2, err := DecodeHello(EncodeHello(hello))
	if err != nil || h2 != hello {
		t.Fatalf("hello: %+v %v", h2, err)
	}
	if _, err := DecodeHello([]byte("XXWP\x01")); err == nil {
		t.Fatal("bad magic accepted")
	}
	q := Query{SQL: "SELECT 1", Args: []sqltypes.Value{sqltypes.NewInt(7)}}
	q2, err := DecodeQuery(EncodeQuery(q))
	if err != nil || q2.SQL != q.SQL || len(q2.Args) != 1 || q2.Args[0].I != 7 {
		t.Fatalf("query: %+v %v", q2, err)
	}
	p := PrepareOK{StmtID: 9, NumParams: 2, IsQuery: true}
	p2, err := DecodePrepareOK(EncodePrepareOK(p))
	if err != nil || p2 != p {
		t.Fatalf("prepareok: %+v %v", p2, err)
	}
	b := RowBatch{Rows: [][]sqltypes.Value{{sqltypes.NewInt(1)}, nil, {}}}
	b2, err := DecodeRowBatch(EncodeRowBatch(b))
	if err != nil || len(b2.Rows) != 3 || b2.Rows[1] != nil || b2.Rows[2] == nil {
		t.Fatalf("rowbatch: %+v %v", b2, err)
	}
	d := Done{Rows: -3, Affected: 12}
	if d2, err := DecodeDone(EncodeDone(d)); err != nil || d2 != d {
		t.Fatalf("done: %+v %v", d2, err)
	}
	we := &Err{Code: CodeRateLimited, Message: "slow down"}
	we2, err := DecodeError(EncodeError(we))
	if err != nil || *we2 != *we {
		t.Fatalf("error: %+v %v", we2, err)
	}
	if !strings.Contains(we2.Error(), CodeRateLimited) {
		t.Fatalf("error text: %s", we2.Error())
	}
	s := StatsOK{Pairs: []StatPair{{Name: "a", Value: 1}, {Name: "b", Value: -2}}}
	s2, err := DecodeStatsOK(EncodeStatsOK(s))
	if err != nil || len(s2.Pairs) != 2 || s2.Pairs[1] != s.Pairs[1] {
		t.Fatalf("stats: %+v %v", s2, err)
	}
}
