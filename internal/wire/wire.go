// Package wire defines mtserve's client/server protocol: length-prefixed
// binary frames over a byte stream (TCP in production, net.Pipe in tests).
//
// Framing. Every message travels as one frame:
//
//	[u32 big-endian length][1 byte message type][payload]
//
// where length counts the type byte plus the payload. Frames larger than
// MaxFrame are a protocol error on both sides — row streams are chunked
// into batches well under the cap, so an oversized frame can only mean a
// desynchronized or hostile peer.
//
// Handshake. The client opens with Hello carrying the magic, the highest
// protocol version it speaks, the tenant it connects as (C is a property
// of the connection, exactly as in the paper §2.1) and an optimization
// level name. The server answers HelloOK with the negotiated version
// (min(client, server)) or Error and closes. Everything after the
// handshake is version-gated on that negotiated number.
//
// Statement flow. The protocol is synchronous per connection — one
// statement at a time — but requests may be pipelined (the client can send
// Bind+Execute in one write); every request receives exactly one
// terminating reply (the matching *OK / Done, or Error), so both sides
// stay in lockstep. Queries stream: RowHeader, zero or more RowBatch
// frames (each bounded by the engine's execution batch size), then Done.
// Cancel is the one asynchronous message: the client may send it while a
// stream is in flight and the server aborts the running statement at the
// next batch boundary, terminating the stream with an Error of code
// CodeCancelled.
//
// Values. Bind arguments and row values use the same bit-exact encoding
// discipline as the engine's spill files (engine/spill.go): a kind byte
// followed by a kind-specific payload, floats as raw IEEE-754 bits so a
// value round-trips the wire bit-identical, and value lists encoding
// length+1 so a nil slice stays distinct from an empty one. This is what
// lets the server-mode acceptance tests demand byte-identical results to
// the in-process path rather than "close enough".
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Magic opens every Hello payload.
const Magic = "MTWP"

// MaxVersion is the highest protocol version this build speaks.
const MaxVersion uint32 = 1

// MaxFrame bounds a single frame (type byte + payload).
const MaxFrame = 16 << 20

// DefaultPort is the conventional mtserve listen port.
const DefaultPort = 7687

// MsgType identifies a frame's message.
type MsgType byte

// Message types. Client→server unless noted.
const (
	MsgInvalid   MsgType = 0x00
	MsgHello     MsgType = 0x01
	MsgHelloOK   MsgType = 0x02 // server→client
	MsgQuery     MsgType = 0x03 // simple protocol: one SQL statement + args
	MsgPrepare   MsgType = 0x04
	MsgPrepareOK MsgType = 0x05 // server→client
	MsgBind      MsgType = 0x06
	MsgBindOK    MsgType = 0x07 // server→client
	MsgExecute   MsgType = 0x08
	MsgCloseStmt MsgType = 0x09
	MsgCloseOK   MsgType = 0x0a // server→client
	MsgRowHeader MsgType = 0x0b // server→client
	MsgRowBatch  MsgType = 0x0c // server→client
	MsgDone      MsgType = 0x0d // server→client
	MsgError     MsgType = 0x0e // server→client
	MsgStats     MsgType = 0x0f
	MsgStatsOK   MsgType = 0x10 // server→client
	MsgSet       MsgType = 0x11
	MsgSetOK     MsgType = 0x12 // server→client
	MsgCancel    MsgType = 0x13 // asynchronous
	MsgGoodbye   MsgType = 0x14
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "Hello"
	case MsgHelloOK:
		return "HelloOK"
	case MsgQuery:
		return "Query"
	case MsgPrepare:
		return "Prepare"
	case MsgPrepareOK:
		return "PrepareOK"
	case MsgBind:
		return "Bind"
	case MsgBindOK:
		return "BindOK"
	case MsgExecute:
		return "Execute"
	case MsgCloseStmt:
		return "CloseStmt"
	case MsgCloseOK:
		return "CloseOK"
	case MsgRowHeader:
		return "RowHeader"
	case MsgRowBatch:
		return "RowBatch"
	case MsgDone:
		return "Done"
	case MsgError:
		return "Error"
	case MsgStats:
		return "Stats"
	case MsgStatsOK:
		return "StatsOK"
	case MsgSet:
		return "Set"
	case MsgSetOK:
		return "SetOK"
	case MsgCancel:
		return "Cancel"
	case MsgGoodbye:
		return "Goodbye"
	}
	return fmt.Sprintf("MsgType(0x%02x)", byte(t))
}

// Error codes carried by MsgError. Codes are part of the protocol: clients
// branch on them (admission rejections are retryable, parse errors are
// not), so they are stable strings rather than numeric enums that would
// drift across versions.
const (
	CodeParse        = "parse"          // statement failed to parse
	CodeBind         = "bind"           // bad bind arguments (arity, type)
	CodeExec         = "exec"           // runtime execution failure
	CodeAuth         = "auth"           // unknown tenant at handshake
	CodeProtocol     = "protocol"       // framing/sequence violation
	CodeUnknownStmt  = "unknown_stmt"   // Bind/Execute/Close of an unknown id
	CodeNotQuery     = "not_query"      // Execute wanted rows from DML
	CodeCancelled    = "cancelled"      // statement aborted (Cancel/disconnect)
	CodeRateLimited  = "rate_limited"   // per-tenant token bucket exhausted
	CodeQuota        = "quota"          // per-tenant in-flight statement quota
	CodeTooManyConns = "too_many_conns" // connection limit (global or tenant)
	CodeDraining     = "draining"       // server shutting down, no new work
	CodeUnsupported  = "unsupported"    // unknown Set option / message
	CodeInternal     = "internal"       // anything else server-side
)

// Err is a typed protocol error: the terminating Error frame of a failed
// request, surfaced by clients as a Go error.
type Err struct {
	Code    string
	Message string
}

func (e *Err) Error() string { return fmt.Sprintf("mtserve: %s: %s", e.Code, e.Message) }

// ErrCode extracts the protocol error code from err, or "" when err is not
// a wire error.
func ErrCode(err error) string {
	if e, ok := err.(*Err); ok {
		return e.Code
	}
	return ""
}

// ---------------------------------------------------------------- framing

// WriteFrame writes one frame. The caller batches frames behind a buffered
// writer and flushes at reply boundaries.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame too large (%d bytes)", n)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(n))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame, enforcing MaxFrame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return MsgInvalid, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > MaxFrame {
		return MsgInvalid, nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return MsgInvalid, nil, err
	}
	return MsgType(hdr[4]), payload, nil
}
