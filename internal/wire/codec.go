package wire

// Payload codec: append-style writers over a []byte and a cursor-style
// Reader, mirroring the engine spill codec's bit-exactness discipline
// (engine/spill.go): values carry a kind byte plus a kind-specific
// payload, float payloads are raw IEEE-754 bits, and value lists encode
// length+1 so nil stays distinct from empty.

import (
	"encoding/binary"
	"fmt"
	"math"

	"mtbase/internal/sqltypes"
)

// ErrCorrupt reports an undecodable payload.
var ErrCorrupt = fmt.Errorf("wire: corrupt payload")

// maxWireList bounds decoded list lengths (values, rows, columns) so a
// corrupt length prefix cannot drive an allocation of arbitrary size.
const maxWireList = 1 << 22

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(buf []byte, v uint64) []byte { return binary.AppendUvarint(buf, v) }

// AppendVarint appends v in zig-zag varint encoding.
func AppendVarint(buf []byte, v int64) []byte { return binary.AppendVarint(buf, v) }

// AppendString appends a length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendBool appends a single 0/1 byte.
func AppendBool(buf []byte, b bool) []byte {
	if b {
		return append(buf, 1)
	}
	return append(buf, 0)
}

// AppendValue appends the exact binary image of v: kind byte plus payload.
// Floats travel as raw IEEE-754 bits so decoded values are bit-identical.
func AppendValue(buf []byte, v sqltypes.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindDate:
		buf = binary.AppendVarint(buf, v.I)
	case sqltypes.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case sqltypes.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case sqltypes.KindBool:
		b := byte(0)
		if v.I != 0 {
			b = 1
		}
		buf = append(buf, b)
	case sqltypes.KindInterval:
		buf = binary.AppendVarint(buf, v.I)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	}
	return buf
}

// AppendValues appends a value list; length encodes len+1 so a nil slice
// (0) stays distinct from an empty one (1).
func AppendValues(buf []byte, vals []sqltypes.Value) []byte {
	if vals == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(vals))+1)
	for _, v := range vals {
		buf = AppendValue(buf, v)
	}
	return buf
}

// Reader is a cursor over a payload. Decoding methods return ErrCorrupt
// (wrapped with context) on malformed input; the zero Reader over the
// payload slice is ready to use.
type Reader struct {
	buf []byte
}

// NewReader returns a Reader over payload.
func NewReader(payload []byte) *Reader { return &Reader{buf: payload} }

// Rest reports how many undecoded bytes remain.
func (r *Reader) Rest() int { return len(r.buf) }

// Uvarint decodes an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.buf = r.buf[n:]
	return v, nil
}

// Varint decodes a zig-zag varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.buf = r.buf[n:]
	return v, nil
}

// String decodes a length-prefixed string.
func (r *Reader) String() (string, error) {
	l, err := r.Uvarint()
	if err != nil || uint64(len(r.buf)) < l {
		return "", ErrCorrupt
	}
	s := string(r.buf[:l])
	r.buf = r.buf[l:]
	return s, nil
}

// Bool decodes a 0/1 byte.
func (r *Reader) Bool() (bool, error) {
	b, err := r.Byte()
	return b != 0, err
}

// Byte decodes one raw byte.
func (r *Reader) Byte() (byte, error) {
	if len(r.buf) < 1 {
		return 0, ErrCorrupt
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

// Value decodes one value.
func (r *Reader) Value() (sqltypes.Value, error) {
	if len(r.buf) == 0 {
		return sqltypes.Null, ErrCorrupt
	}
	var v sqltypes.Value
	v.K = sqltypes.Kind(r.buf[0])
	r.buf = r.buf[1:]
	switch v.K {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindDate:
		i, err := r.Varint()
		if err != nil {
			return sqltypes.Null, err
		}
		v.I = i
	case sqltypes.KindFloat:
		if len(r.buf) < 8 {
			return sqltypes.Null, ErrCorrupt
		}
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
		r.buf = r.buf[8:]
	case sqltypes.KindString:
		s, err := r.String()
		if err != nil {
			return sqltypes.Null, err
		}
		v.S = s
	case sqltypes.KindBool:
		b, err := r.Bool()
		if err != nil {
			return sqltypes.Null, err
		}
		if b {
			v.I = 1
		}
	case sqltypes.KindInterval:
		i, err := r.Varint()
		if err != nil {
			return sqltypes.Null, err
		}
		if len(r.buf) < 8 {
			return sqltypes.Null, ErrCorrupt
		}
		v.I = i
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
		r.buf = r.buf[8:]
	default:
		return sqltypes.Null, ErrCorrupt
	}
	return v, nil
}

// Values decodes a value list (nil for the 0 sentinel).
func (r *Reader) Values() ([]sqltypes.Value, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n-1 > maxWireList {
		return nil, ErrCorrupt
	}
	vals := make([]sqltypes.Value, n-1)
	for i := range vals {
		if vals[i], err = r.Value(); err != nil {
			return nil, err
		}
	}
	return vals, nil
}
