package mth

import (
	"fmt"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mtsql"
	"mtbase/internal/sqltypes"
)

// ModellerTTID is the data-modeller role used to issue the MT-H DDL
// (§2.2: "the SaaS provider"); it owns no data.
const ModellerTTID = 0

// metaDDL sets up the conversion meta tables and UDFs (Listings 4–7).
var metaDDL = []string{
	`CREATE TABLE Tenant (
		T_tenant_key INTEGER NOT NULL,
		T_currency_key INTEGER NOT NULL,
		T_phone_prefix_key INTEGER NOT NULL,
		CONSTRAINT pk_tenant PRIMARY KEY (T_tenant_key))`,
	`CREATE TABLE CurrencyTransform (
		CT_currency_key INTEGER NOT NULL,
		CT_to_universal DECIMAL(15,2) NOT NULL,
		CT_from_universal DECIMAL(15,2) NOT NULL,
		CONSTRAINT pk_ct PRIMARY KEY (CT_currency_key))`,
	`CREATE TABLE PhoneTransform (
		PT_phone_prefix_key INTEGER NOT NULL,
		PT_prefix VARCHAR(8) NOT NULL,
		CONSTRAINT pk_pt PRIMARY KEY (PT_phone_prefix_key))`,
	`CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
		AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
		LANGUAGE SQL IMMUTABLE`,
	`CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
		AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
		LANGUAGE SQL IMMUTABLE`,
	`CREATE FUNCTION phoneToUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17)
		AS 'SELECT SUBSTRING($1, CHAR_LENGTH(PT_prefix) + 1) FROM Tenant, PhoneTransform WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key'
		LANGUAGE SQL IMMUTABLE`,
	`CREATE FUNCTION phoneFromUniversal (VARCHAR(17), INTEGER) RETURNS VARCHAR(17)
		AS 'SELECT CONCAT(PT_prefix, $1) FROM Tenant, PhoneTransform WHERE T_tenant_key = $2 AND T_phone_prefix_key = PT_phone_prefix_key'
		LANGUAGE SQL IMMUTABLE`,
}

// globalDDL defines the publicly shared tables of §5 (plain SQL types;
// global tables default to comparable attributes).
var globalDDL = []string{
	`CREATE TABLE region (r_regionkey INTEGER NOT NULL, r_name VARCHAR(25) NOT NULL,
		r_comment VARCHAR(152), CONSTRAINT pk_r PRIMARY KEY (r_regionkey))`,
	`CREATE TABLE nation (n_nationkey INTEGER NOT NULL, n_name VARCHAR(25) NOT NULL,
		n_regionkey INTEGER NOT NULL, n_comment VARCHAR(152),
		CONSTRAINT pk_n PRIMARY KEY (n_nationkey),
		CONSTRAINT fk_n_r FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey))`,
	`CREATE TABLE supplier (s_suppkey INTEGER NOT NULL, s_name VARCHAR(25) NOT NULL,
		s_address VARCHAR(40) NOT NULL, s_nationkey INTEGER NOT NULL,
		s_phone VARCHAR(15) NOT NULL, s_acctbal DECIMAL(15,2) NOT NULL,
		s_comment VARCHAR(101) NOT NULL,
		CONSTRAINT pk_s PRIMARY KEY (s_suppkey),
		CONSTRAINT fk_s_n FOREIGN KEY (s_nationkey) REFERENCES nation (n_nationkey))`,
	`CREATE TABLE part (p_partkey INTEGER NOT NULL, p_name VARCHAR(55) NOT NULL,
		p_mfgr VARCHAR(25) NOT NULL, p_brand VARCHAR(10) NOT NULL,
		p_type VARCHAR(25) NOT NULL, p_size INTEGER NOT NULL,
		p_container VARCHAR(10) NOT NULL, p_retailprice DECIMAL(15,2) NOT NULL,
		p_comment VARCHAR(23) NOT NULL, CONSTRAINT pk_p PRIMARY KEY (p_partkey))`,
	`CREATE TABLE partsupp (ps_partkey INTEGER NOT NULL, ps_suppkey INTEGER NOT NULL,
		ps_availqty INTEGER NOT NULL, ps_supplycost DECIMAL(15,2) NOT NULL,
		ps_comment VARCHAR(199) NOT NULL,
		CONSTRAINT pk_ps PRIMARY KEY (ps_partkey, ps_suppkey),
		CONSTRAINT fk_ps_p FOREIGN KEY (ps_partkey) REFERENCES part (p_partkey),
		CONSTRAINT fk_ps_s FOREIGN KEY (ps_suppkey) REFERENCES supplier (s_suppkey))`,
}

// tenantDDL defines the tenant-specific tables with MT-H's attribute
// comparability (§5): keys are tenant-specific, monetary values and the
// customer phone are convertible, everything else is comparable.
var tenantDDL = []string{
	`CREATE TABLE customer SPECIFIC (
		c_custkey INTEGER NOT NULL SPECIFIC,
		c_name VARCHAR(25) NOT NULL COMPARABLE,
		c_address VARCHAR(40) NOT NULL COMPARABLE,
		c_nationkey INTEGER NOT NULL COMPARABLE,
		c_phone VARCHAR(17) NOT NULL CONVERTIBLE @phoneToUniversal @phoneFromUniversal,
		c_acctbal DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
		c_mktsegment VARCHAR(10) NOT NULL COMPARABLE,
		c_comment VARCHAR(117) NOT NULL COMPARABLE,
		CONSTRAINT pk_c PRIMARY KEY (c_custkey))`,
	`CREATE TABLE orders SPECIFIC (
		o_orderkey INTEGER NOT NULL SPECIFIC,
		o_custkey INTEGER NOT NULL SPECIFIC,
		o_orderstatus VARCHAR(1) NOT NULL COMPARABLE,
		o_totalprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
		o_orderdate DATE NOT NULL COMPARABLE,
		o_orderpriority VARCHAR(15) NOT NULL COMPARABLE,
		o_clerk VARCHAR(15) NOT NULL COMPARABLE,
		o_shippriority INTEGER NOT NULL COMPARABLE,
		o_comment VARCHAR(79) NOT NULL COMPARABLE,
		CONSTRAINT pk_o PRIMARY KEY (o_orderkey),
		CONSTRAINT fk_o_c FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey))`,
	`CREATE TABLE lineitem SPECIFIC (
		l_orderkey INTEGER NOT NULL SPECIFIC,
		l_partkey INTEGER NOT NULL COMPARABLE,
		l_suppkey INTEGER NOT NULL COMPARABLE,
		l_linenumber INTEGER NOT NULL COMPARABLE,
		l_quantity DECIMAL(15,2) NOT NULL COMPARABLE,
		l_extendedprice DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
		l_discount DECIMAL(15,2) NOT NULL COMPARABLE,
		l_tax DECIMAL(15,2) NOT NULL COMPARABLE,
		l_returnflag VARCHAR(1) NOT NULL COMPARABLE,
		l_linestatus VARCHAR(1) NOT NULL COMPARABLE,
		l_shipdate DATE NOT NULL COMPARABLE,
		l_commitdate DATE NOT NULL COMPARABLE,
		l_receiptdate DATE NOT NULL COMPARABLE,
		l_shipinstruct VARCHAR(25) NOT NULL COMPARABLE,
		l_shipmode VARCHAR(10) NOT NULL COMPARABLE,
		l_comment VARCHAR(44) NOT NULL COMPARABLE,
		CONSTRAINT fk_l_o FOREIGN KEY (l_orderkey) REFERENCES orders (o_orderkey))`,
}

// Instance is a loaded MT-H deployment.
type Instance struct {
	Cfg  Config
	Srv  *middleware.Server
	Data *Data
}

// BuildMT generates data and stands up a complete MTBase instance.
func BuildMT(cfg Config) (*Instance, error) {
	return LoadMT(Generate(cfg))
}

// LoadMT stands up an MTBase instance from pre-generated data.
func LoadMT(d *Data) (*Instance, error) {
	cfg := d.Cfg
	db := engine.Open(cfg.Mode)
	srv := middleware.NewServer(db, middleware.WithDataModeller(ModellerTTID))
	if err := srv.Schema().Convs().Register(mtsql.ConvPair{
		Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal",
		Class: mtsql.ClassLinear,
	}); err != nil {
		return nil, err
	}
	if err := srv.Schema().Convs().Register(mtsql.ConvPair{
		Name: "phone", ToFunc: "phoneToUniversal", FromFunc: "phoneFromUniversal",
		Class: mtsql.ClassEqualityPreserving,
	}); err != nil {
		return nil, err
	}
	admin, err := srv.Connect(ModellerTTID)
	if err != nil {
		return nil, err
	}
	for _, group := range [][]string{metaDDL, globalDDL, tenantDDL} {
		for _, ddl := range group {
			if _, err := admin.Exec(ddl); err != nil {
				return nil, fmt.Errorf("mth: DDL failed: %w", err)
			}
		}
	}
	for t := int64(1); t <= int64(cfg.Tenants); t++ {
		if err := srv.CreateTenant(t); err != nil {
			return nil, err
		}
	}

	// Conversion meta data: one currency and one phone prefix per tenant.
	tenantT := db.Table("Tenant")
	ct := db.Table("CurrencyTransform")
	pt := db.Table("PhoneTransform")
	for t := int64(1); t <= int64(cfg.Tenants); t++ {
		tenantT.AppendRow([]sqltypes.Value{
			sqltypes.NewInt(t), sqltypes.NewInt(t), sqltypes.NewInt(t),
		})
		rate := d.ToUniversalRate[t]
		ct.AppendRow([]sqltypes.Value{
			sqltypes.NewInt(t), sqltypes.NewFloat(rate), sqltypes.NewFloat(1 / rate),
		})
		pt.AppendRow([]sqltypes.Value{
			sqltypes.NewInt(t), sqltypes.NewString(d.PhonePrefix[t]),
		})
	}

	loadGlobal := func(name string, rows [][]sqltypes.Value) {
		db.Table(name).BulkLoad(rows)
	}
	loadGlobal("region", d.Region)
	loadGlobal("nation", d.Nation)
	loadGlobal("supplier", d.Supplier)
	loadGlobal("part", d.Part)
	loadGlobal("partsupp", d.Partsupp)

	// Tenant-specific rows: prepend ttid and convert monetary / phone
	// values from universal into the owner's format (the dbgen
	// modification of §5).
	loadTenant := func(name string, rows [][]sqltypes.Value, tenants []int64, convert func(row []sqltypes.Value, t int64)) {
		tab := db.Table(name)
		out := make([][]sqltypes.Value, len(rows))
		for i, row := range rows {
			t := tenants[i]
			nr := make([]sqltypes.Value, 0, len(row)+1)
			nr = append(nr, sqltypes.NewInt(t))
			nr = append(nr, row...)
			convert(nr, t)
			out[i] = nr
		}
		tab.BulkLoad(out)
	}
	// Tenant-format monetary values are stored at full precision (not
	// rounded to cents): rounding at load time would make converted
	// values differ from the universal originals by up to half a cent per
	// row, which Q9-style big-positive-minus-big-negative aggregations
	// amplify past any sensible validation tolerance.
	loadTenant("customer", d.Customer, d.CustTenant, func(row []sqltypes.Value, t int64) {
		// row[0]=ttid; columns shift by one.
		row[5] = sqltypes.NewString(d.ConvertPhone(row[5].S, t))
		row[6] = sqltypes.NewFloat(d.ConvertCurrency(row[6].F, t))
	})
	loadTenant("orders", d.Orders, d.OrderTenant, func(row []sqltypes.Value, t int64) {
		row[4] = sqltypes.NewFloat(d.ConvertCurrency(row[4].F, t))
	})
	loadTenant("lineitem", d.Lineitem, d.LineTenant, func(row []sqltypes.Value, t int64) {
		row[6] = sqltypes.NewFloat(d.ConvertCurrency(row[6].F, t))
	})
	return &Instance{Cfg: cfg, Srv: srv, Data: d}, nil
}

// GrantReadTo lets the given client read every tenant's data (database-
// wide READ grants from every owner), the §6 evaluation setup.
func (inst *Instance) GrantReadTo(client int64) error {
	for t := int64(1); t <= int64(inst.Cfg.Tenants); t++ {
		if t == client {
			continue
		}
		conn, err := inst.Srv.Connect(t)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(fmt.Sprintf("GRANT READ ON DATABASE TO %d", client)); err != nil {
			return err
		}
	}
	return nil
}

// Connect opens a session with the given scope already set.
func (inst *Instance) Connect(ttid int64, scope string) (*middleware.Conn, error) {
	conn, err := inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	if scope != "" {
		if _, err := conn.Exec(fmt.Sprintf("SET SCOPE = \"%s\"", scope)); err != nil {
			return nil, err
		}
	}
	return conn, nil
}

// plainDDL mirrors the MT-H tables without tenant machinery, for the plain
// TPC-H baseline database.
func plainDDL() []string {
	out := make([]string, 0, len(globalDDL)+3)
	out = append(out, globalDDL...)
	out = append(out,
		`CREATE TABLE customer (c_custkey INTEGER NOT NULL, c_name VARCHAR(25) NOT NULL,
			c_address VARCHAR(40) NOT NULL, c_nationkey INTEGER NOT NULL,
			c_phone VARCHAR(17) NOT NULL, c_acctbal DECIMAL(15,2) NOT NULL,
			c_mktsegment VARCHAR(10) NOT NULL, c_comment VARCHAR(117) NOT NULL,
			CONSTRAINT pk_c PRIMARY KEY (c_custkey))`,
		`CREATE TABLE orders (o_orderkey INTEGER NOT NULL, o_custkey INTEGER NOT NULL,
			o_orderstatus VARCHAR(1) NOT NULL, o_totalprice DECIMAL(15,2) NOT NULL,
			o_orderdate DATE NOT NULL, o_orderpriority VARCHAR(15) NOT NULL,
			o_clerk VARCHAR(15) NOT NULL, o_shippriority INTEGER NOT NULL,
			o_comment VARCHAR(79) NOT NULL, CONSTRAINT pk_o PRIMARY KEY (o_orderkey))`,
		`CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, l_partkey INTEGER NOT NULL,
			l_suppkey INTEGER NOT NULL, l_linenumber INTEGER NOT NULL,
			l_quantity DECIMAL(15,2) NOT NULL, l_extendedprice DECIMAL(15,2) NOT NULL,
			l_discount DECIMAL(15,2) NOT NULL, l_tax DECIMAL(15,2) NOT NULL,
			l_returnflag VARCHAR(1) NOT NULL, l_linestatus VARCHAR(1) NOT NULL,
			l_shipdate DATE NOT NULL, l_commitdate DATE NOT NULL, l_receiptdate DATE NOT NULL,
			l_shipinstruct VARCHAR(25) NOT NULL, l_shipmode VARCHAR(10) NOT NULL,
			l_comment VARCHAR(44) NOT NULL)`,
	)
	return out
}

// LoadPlain builds the plain TPC-H baseline database: the same generated
// rows, universal format, no ttid columns.
func LoadPlain(d *Data, mode engine.Mode) (*engine.DB, error) {
	db := engine.Open(mode)
	for _, ddl := range plainDDL() {
		if _, err := db.ExecSQL(ddl); err != nil {
			return nil, err
		}
	}
	db.Table("region").BulkLoad(d.Region)
	db.Table("nation").BulkLoad(d.Nation)
	db.Table("supplier").BulkLoad(d.Supplier)
	db.Table("part").BulkLoad(d.Part)
	db.Table("partsupp").BulkLoad(d.Partsupp)
	db.Table("customer").BulkLoad(d.Customer)
	db.Table("orders").BulkLoad(d.Orders)
	db.Table("lineitem").BulkLoad(d.Lineitem)
	return db, nil
}
