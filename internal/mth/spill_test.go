package mth

// Differential acceptance suite for bounded-memory execution: every MT-H
// query, at every optimization level, in both compile modes and at
// parallelism 1 and 8, must produce byte-identical results under a 1MB and
// a 64KB statement memory limit as under the unlimited default — the
// serial in-memory path is the oracle, the capped runs overflow sort
// buffers, group tables, DISTINCT sets and join builds to disk. The suite
// also asserts the tight limits actually spilled (so it cannot silently
// pass on the in-memory path), that the accounted peak stays within one
// batch of slack above the limit, and that no temp file outlives a
// statement.

import (
	"os"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
)

// spillSlack is the allowed overshoot above the configured limit: charges
// land at batch granularity, so a breaker may buffer one more ~1024-row
// batch of wide MT-H tuples (plus parallel-scan row references, which are
// charged but never spill) before the overflow path engages.
const spillSlack = 2 << 20

func TestSpillDifferentialQ1toQ22(t *testing.T) {
	cfg := Config{SF: 0.002, Tenants: 3, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
	inst, err := LoadMT(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	dir := t.TempDir()
	db.SetSpillDir(dir)
	engine.SetMorselSize(1)
	defer engine.SetMorselSize(0)
	defer db.SetMemoryLimit(0)
	defer db.SetParallelism(0)
	defer db.SetCompileExprs(true)

	levels := []optimizer.Level{optimizer.Canonical, optimizer.O3, optimizer.O4}
	compileModes := []bool{true, false}
	limits := []int64{1 << 20, 64 << 10}
	if testing.Short() {
		levels = []optimizer.Level{optimizer.O4}
		compileModes = []bool{true}
	}

	for _, level := range levels {
		conn.SetOptLevel(level)
		for _, compiled := range compileModes {
			db.SetCompileExprs(compiled)

			// Serial, unlimited, in-memory: the oracle.
			db.SetParallelism(1)
			db.SetMemoryLimit(0)
			base := make(map[int]string)
			for _, q := range Queries(cfg.SF) {
				res, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("level=%v compiled=%v Q%d oracle: %v", level, compiled, q.ID, err)
				}
				base[q.ID] = exactKey(res)
			}

			for _, limit := range limits {
				for _, par := range []int{1, 8} {
					db.SetMemoryLimit(limit)
					db.SetParallelism(par)
					db.Stats = engine.Stats{}
					for _, q := range Queries(cfg.SF) {
						res, err := RunOnMT(conn, q)
						if err != nil {
							t.Fatalf("level=%v compiled=%v limit=%d par=%d Q%d: %v",
								level, compiled, limit, par, q.ID, err)
						}
						if exactKey(res) != base[q.ID] {
							t.Errorf("level=%v compiled=%v limit=%d par=%d Q%d: capped run differs from unlimited oracle",
								level, compiled, limit, par, q.ID)
						}
					}
					st := db.Stats.Snapshot()
					if st.SpillRuns == 0 {
						t.Errorf("level=%v compiled=%v limit=%d par=%d: suite never spilled — the capped arm tested the in-memory path",
							level, compiled, limit, par)
					}
					if st.PeakMemBytes > limit+spillSlack {
						t.Errorf("level=%v compiled=%v limit=%d par=%d: PeakMemBytes %d exceeds limit plus one batch of slack",
							level, compiled, limit, par, st.PeakMemBytes)
					}
				}
			}
		}
	}

	db.SetMemoryLimit(0)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d spill files leaked", len(ents))
	}
}
