package mth

// Differential acceptance suite for the sharded router (ADR-009): the
// same Data loaded over N shards must answer every MT-H query
// byte-identically to the unsharded middleware — across optimization
// levels, compile modes, shard counts and placements — while routing
// single-tenant statements to exactly one shard and pushing partial
// aggregation into the shards for cross-tenant aggregates.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
	"mtbase/internal/shard"
)

func shardTestConfig() Config {
	return Config{SF: 0.002, Tenants: 5, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
}

var allLevels = []optimizer.Level{
	optimizer.Canonical, optimizer.O1, optimizer.O2,
	optimizer.O3, optimizer.O4, optimizer.InlOnly,
}

// setCompileAll flips expression compilation on every engine of a sharded
// server (shards + coordinator replica).
func setCompileAll(srv *shard.Server, on bool) {
	for _, mw := range srv.Shards() {
		mw.DB().SetCompileExprs(on)
	}
	srv.Replica().DB().SetCompileExprs(on)
}

// oracleKeys runs Q1–Q22 through an unsharded instance at every level and
// compile mode, returning exactKey per (level, compiled, query).
func oracleKeys(t *testing.T, d *Data, levels []optimizer.Level) map[optimizer.Level]map[bool]map[int]string {
	t.Helper()
	inst, err := LoadMT(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	defer db.SetCompileExprs(true)
	keys := make(map[optimizer.Level]map[bool]map[int]string)
	for _, level := range levels {
		conn.SetOptLevel(level)
		keys[level] = make(map[bool]map[int]string)
		for _, compiled := range []bool{true, false} {
			db.SetCompileExprs(compiled)
			keys[level][compiled] = make(map[int]string)
			for _, q := range Queries(d.Cfg.SF) {
				res, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("oracle level=%v compiled=%v Q%d: %v", level, compiled, q.ID, err)
				}
				keys[level][compiled][q.ID] = exactKey(res)
			}
		}
	}
	return keys
}

// TestShardDifferentialQ1toQ22 is the acceptance gate of the sharded
// router: Q1–Q22 at all six optimization levels, in both compile modes,
// over 1, 2 and 4 shards, byte-identical to the unsharded oracle.
// shards=1 exercises the pass-through route; 2 and 4 exercise single-
// shard, scatter and fallback routing over a genuinely split tenant set.
func TestShardDifferentialQ1toQ22(t *testing.T) {
	cfg := shardTestConfig()
	d := Generate(cfg)
	oracle := oracleKeys(t, d, allLevels)

	for _, nshards := range []int{1, 2, 4} {
		sinst, err := LoadMTSharded(d, nshards)
		if err != nil {
			t.Fatal(err)
		}
		if err := sinst.GrantReadTo(1); err != nil {
			t.Fatal(err)
		}
		conn, err := sinst.Connect(1, "IN ()")
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range allLevels {
			conn.SetOptLevel(level)
			for _, compiled := range []bool{true, false} {
				setCompileAll(sinst.Srv, compiled)
				for _, q := range Queries(cfg.SF) {
					res, err := RunOnMT(conn, q)
					if err != nil {
						t.Fatalf("shards=%d level=%v compiled=%v Q%d: %v", nshards, level, compiled, q.ID, err)
					}
					if got, want := exactKey(res), oracle[level][compiled][q.ID]; got != want {
						t.Errorf("shards=%d level=%v compiled=%v Q%d: differs from unsharded oracle\n got: %.400s\nwant: %.400s",
							nshards, level, compiled, q.ID, got, want)
					}
				}
			}
		}
		setCompileAll(sinst.Srv, true)
		if nshards > 1 {
			snap := sinst.Srv.Stats().Snapshot()
			if snap.RoutedScatter == 0 {
				t.Errorf("shards=%d: expected cross-shard statements, routed_scatter=0", nshards)
			}
			if snap.PartialsPushed == 0 {
				t.Errorf("shards=%d: expected partial aggregation pushdown, partials_pushed=0", nshards)
			}
		}
	}
}

// TestShardSkewedPlacement pins four of five tenants onto shard 0 (a hot
// co-location map) and the fifth onto shard 2 of 3, leaving shard 1
// empty: placement must be invisible to results.
func TestShardSkewedPlacement(t *testing.T) {
	cfg := shardTestConfig()
	d := Generate(cfg)
	levels := []optimizer.Level{optimizer.Canonical, optimizer.O4}
	oracle := oracleKeys(t, d, levels)

	place := shard.MapPlacement{
		Assign:   map[int64]int{1: 0, 2: 0, 3: 0, 4: 0, 5: 2},
		Fallback: shard.HashPlacement{N: 3},
	}
	sinst, err := LoadMTSharded(d, 3, shard.WithPlacement(place))
	if err != nil {
		t.Fatal(err)
	}
	if err := sinst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := sinst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	counts := sinst.Srv.RowCounts()
	if counts[1] != 0 {
		t.Errorf("shard 1 should hold no tenant rows under the skewed map, has %d", counts[1])
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Errorf("skewed map did not split rows as pinned: %v", counts)
	}
	for _, level := range levels {
		conn.SetOptLevel(level)
		for _, q := range Queries(cfg.SF) {
			res, err := RunOnMT(conn, q)
			if err != nil {
				t.Fatalf("skewed level=%v Q%d: %v", level, q.ID, err)
			}
			if got, want := exactKey(res), oracle[level][true][q.ID]; got != want {
				t.Errorf("skewed level=%v Q%d: differs from unsharded oracle", level, q.ID)
			}
		}
	}
}

// rowsStreamedPerShard snapshots each shard engine's RowsStreamed counter.
func rowsStreamedPerShard(srv *shard.Server) []int64 {
	out := make([]int64, srv.NumShards())
	for i, mw := range srv.Shards() {
		out[i] = mw.DB().Stats.Snapshot().RowsStreamed
	}
	return out
}

// TestShardSingleTenantRouting: a statement under the default scope (D′ =
// {C}) must execute on exactly the owning shard — zero coordination, no
// other shard engine touched.
func TestShardSingleTenantRouting(t *testing.T) {
	cfg := shardTestConfig()
	sinst, err := LoadMTSharded(Generate(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	srv := sinst.Srv
	for _, ttid := range []int64{1, 2, 3} {
		conn, err := sinst.Connect(ttid, "")
		if err != nil {
			t.Fatal(err)
		}
		before := rowsStreamedPerShard(srv)
		preSingle := srv.Stats().Snapshot().RoutedSingle
		q, err := QueryByID(cfg.SF, 6)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunOnMT(conn, q); err != nil {
			t.Fatalf("tenant %d Q6: %v", ttid, err)
		}
		after := rowsStreamedPerShard(srv)
		home := srv.ShardOf(ttid)
		for rank := range after {
			moved := after[rank] != before[rank]
			if rank == home && !moved {
				t.Errorf("tenant %d: owning shard %d streamed no rows", ttid, home)
			}
			if rank != home && moved {
				t.Errorf("tenant %d: shard %d touched by a single-tenant statement (home %d)", ttid, rank, home)
			}
		}
		snap := srv.Stats().Snapshot()
		if snap.RoutedSingle <= preSingle {
			t.Errorf("tenant %d: routed_single did not advance", ttid)
		}
		if snap.RoutedScatter != 0 || snap.RoutedFallback != 0 {
			t.Errorf("tenant %d: single-tenant statement scattered: %+v", ttid, snap)
		}
	}
}

// TestShardPartialAggPushdown: a cross-tenant aggregate must push partial
// aggregation into the shards (partials_pushed advances) and still match
// the unsharded result byte for byte.
func TestShardPartialAggPushdown(t *testing.T) {
	cfg := shardTestConfig()
	d := Generate(cfg)
	levels := []optimizer.Level{optimizer.O4}
	oracle := oracleKeys(t, d, levels)

	sinst, err := LoadMTSharded(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sinst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := sinst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	for _, id := range []int{1, 6} {
		q, err := QueryByID(cfg.SF, id)
		if err != nil {
			t.Fatal(err)
		}
		pre := sinst.Srv.Stats().Snapshot().PartialsPushed
		res, err := RunOnMT(conn, q)
		if err != nil {
			t.Fatalf("Q%d: %v", id, err)
		}
		if got := sinst.Srv.Stats().Snapshot().PartialsPushed; got <= pre {
			t.Errorf("Q%d: partials_pushed did not advance (%d -> %d)", id, pre, got)
		}
		if exactKey(res) != oracle[optimizer.O4][true][id] {
			t.Errorf("Q%d: pushed-partial result differs from unsharded oracle", id)
		}
	}
}

func spillLeftovers(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(os.TempDir(), "mtbase-spill-*"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestShardGatherCancellation: closing a scatter-gather cursor early —
// explicitly or via context cancellation mid-stream — must release every
// in-flight shard cursor and leave no spill files behind, and the session
// must stay usable.
func TestShardGatherCancellation(t *testing.T) {
	if n := spillLeftovers(t); len(n) > 0 {
		t.Skipf("pre-existing spill files in temp dir: %v", n)
	}
	cfg := shardTestConfig()
	sinst, err := LoadMTSharded(Generate(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sinst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := sinst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	// A pinned scan with ORDER BY: cross-shard k-way merge keeps shard
	// cursors open while the client iterates.
	const scan = "SELECT c_custkey, c_name FROM customer ORDER BY c_custkey"

	// Early Rows.Close after a single row.
	rows, err := conn.QueryRows(scan)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("expected at least one row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	// Context cancellation mid-scatter.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err = conn.QueryContext(ctx, scan)
	if err != nil {
		t.Fatal(err)
	}
	rows.Next()
	cancel()
	for rows.Next() { // drain until the cancellation surfaces or EOF
	}
	rows.Close()

	if left := spillLeftovers(t); len(left) > 0 {
		t.Errorf("gather cancellation leaked spill files: %v", left)
	}
	// The session and its shard sub-connections must still work.
	res, err := conn.Query("SELECT COUNT(*) AS n FROM customer")
	if err != nil {
		t.Fatalf("session unusable after cancelled gather: %v", err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("count after cancelled gather returned 0")
	}
}

// TestShardSnapshotIsolation: a cross-shard gather cursor pins each
// shard's snapshot at creation; a write landing on one shard mid-gather
// is invisible to the open cursor and visible to the next statement.
func TestShardSnapshotIsolation(t *testing.T) {
	cfg := shardTestConfig()
	sinst, err := LoadMTSharded(Generate(cfg), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sinst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	reader, err := sinst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := reader.Query("SELECT COUNT(*) AS n FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	want := baseline.Rows[0][0].I

	rows, err := reader.QueryRows("SELECT c_custkey FROM customer ORDER BY c_custkey")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	// Tenant 2 lives on the other shard than tenant 1 under 2-way hash
	// placement; its insert lands mid-gather on a scattered shard.
	writer, err := sinst.Connect(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(`INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment)
		VALUES (999999, 'late', 'addr', 1, '11-123', 0, 'BUILDING', 'mid-gather insert')`); err != nil {
		t.Fatal(err)
	}
	got := int64(1) // the row already consumed
	for rows.Next() {
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if got != want {
		t.Errorf("open gather cursor saw the concurrent insert: got %d rows, want %d", got, want)
	}
	after, err := reader.Query("SELECT COUNT(*) AS n FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows[0][0].I != want+1 {
		t.Errorf("next statement should see the insert: got %d, want %d", after.Rows[0][0].I, want+1)
	}
}

// TestShardWriteRouting: single-tenant DML lands on the owning shard
// only; a cross-tenant UPDATE (with UPDATE grants) scatters and reports
// the summed affected count; global-table writes replicate everywhere.
func TestShardWriteRouting(t *testing.T) {
	cfg := shardTestConfig()
	sinst, err := LoadMTSharded(Generate(cfg), 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := sinst.Srv

	// Single-tenant INSERT routes to the owning shard.
	conn3, err := sinst.Connect(3, "")
	if err != nil {
		t.Fatal(err)
	}
	home := srv.ShardOf(3)
	countOn := func(rank int, table string) int {
		return srv.Shards()[rank].DB().Table(table).RowCount()
	}
	beforeHome := countOn(home, "orders")
	beforeOther := countOn(1-home, "orders")
	if _, err := conn3.Exec(`INSERT INTO orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_clerk, o_shippriority, o_comment)
		VALUES (888888, 1, 'O', 10, DATE '1995-01-01', '1-URGENT', 'Clerk#1', 0, 'routed insert')`); err != nil {
		t.Fatal(err)
	}
	if got := countOn(home, "orders"); got != beforeHome+1 {
		t.Errorf("insert did not land on owning shard %d: %d -> %d", home, beforeHome, got)
	}
	if got := countOn(1-home, "orders"); got != beforeOther {
		t.Errorf("insert leaked onto shard %d: %d -> %d", 1-home, beforeOther, got)
	}

	// Cross-tenant UPDATE: grant UPDATE to client 1 from every tenant,
	// then update under scope ALL; affected must equal the unsharded
	// per-tenant sum (every orders row matches the predicate).
	for t2 := int64(2); t2 <= int64(cfg.Tenants); t2++ {
		c, err := sinst.Connect(t2, "")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Exec("GRANT READ, UPDATE ON DATABASE TO 1"); err != nil {
			t.Fatal(err)
		}
	}
	upd, err := sinst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, mw := range srv.Shards() {
		total += mw.DB().Table("orders").RowCount()
	}
	res, err := upd.Exec("UPDATE orders SET o_clerk = 'Clerk#X' WHERE o_shippriority >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Affected != total {
		t.Errorf("cross-shard UPDATE affected %d rows, want %d", res.Affected, total)
	}
	if snap := srv.Stats().Snapshot(); snap.RoutedScatter == 0 {
		t.Error("cross-tenant UPDATE did not scatter")
	}

	// Global-table write replicates to every shard and the replica.
	admin, err := sinst.Connect(ModellerTTID, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := admin.Exec("INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (99, 'NOWHERE', 'added')"); err != nil {
		t.Fatal(err)
	}
	for rank, mw := range srv.Shards() {
		if n := mw.DB().Table("region").RowCount(); n != 6 {
			t.Errorf("shard %d region rows = %d, want 6", rank, n)
		}
	}
	if n := srv.Replica().DB().Table("region").RowCount(); n != 6 {
		t.Errorf("replica region rows = %d, want 6", n)
	}
}
