package mth

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
)

// RunOnPlain executes a query (with setup/teardown) on the plain TPC-H
// baseline database.
func RunOnPlain(db *engine.DB, q Query) (*engine.Result, error) {
	for _, s := range q.Setup {
		if _, err := db.ExecSQL(s); err != nil {
			return nil, fmt.Errorf("mth: Q%d setup: %w", q.ID, err)
		}
	}
	res, err := db.ExecSQL(q.SQL)
	for _, s := range q.Teardown {
		if _, terr := db.ExecSQL(s); terr != nil && err == nil {
			err = fmt.Errorf("mth: Q%d teardown: %w", q.ID, terr)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("mth: Q%d: %w", q.ID, err)
	}
	return res, nil
}

// Session is the statement-execution surface RunOnMT needs — satisfied by
// both middleware.Conn (unsharded) and shard.Conn (sharded).
type Session interface {
	Exec(sql string) (*engine.Result, error)
}

// RunOnMT executes a query through a middleware or sharded session.
func RunOnMT(conn Session, q Query) (*engine.Result, error) {
	for _, s := range q.Setup {
		if _, err := conn.Exec(s); err != nil {
			return nil, fmt.Errorf("mth: Q%d setup: %w", q.ID, err)
		}
	}
	res, err := conn.Exec(q.SQL)
	for _, s := range q.Teardown {
		if _, terr := conn.Exec(s); terr != nil && err == nil {
			err = fmt.Errorf("mth: Q%d teardown: %w", q.ID, terr)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("mth: Q%d: %w", q.ID, err)
	}
	return res, nil
}

// canonicalRows renders a result as a sorted multiset of rows for
// order-insensitive comparison; floats are normalized.
func canonicalRows(res *engine.Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		var sb strings.Builder
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(normalizeValue(v))
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func normalizeValue(v sqltypes.Value) string {
	switch v.K {
	case sqltypes.KindFloat:
		// Round to 4 significant decimals relative to magnitude to absorb
		// float reassociation across optimization levels.
		return fmt.Sprintf("%.4g", roundRel(v.F))
	case sqltypes.KindInt:
		return fmt.Sprintf("%d", v.I)
	default:
		return v.String()
	}
}

func roundRel(f float64) float64 {
	if f == 0 || math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	mag := math.Pow(10, math.Floor(math.Log10(math.Abs(f)))-5)
	return math.Round(f/mag) * mag
}

// Diff compares two results order-insensitively with float tolerance,
// returning "" when equal or a human-readable discrepancy.
func Diff(a, b *engine.Result) string {
	ra, rb := canonicalRows(a), canonicalRows(b)
	if len(ra) != len(rb) {
		return fmt.Sprintf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			return fmt.Sprintf("row %d differs:\n  a: %s\n  b: %s", i, ra[i], rb[i])
		}
	}
	return ""
}

// Report is the outcome of validating one query at one optimization level.
type Report struct {
	QueryID int
	Level   optimizer.Level
	OK      bool
	Detail  string
}

// Validate implements §5's validation: with C = 1 (universal formats) and
// D = all tenants, every MT-H query must produce the plain TPC-H result.
// Because this generator derives both databases from one dataset with
// globally unique keys, the equality even holds for the customer-order
// join queries the paper excepts; the canonical rewrite remains the gold
// standard all optimization levels are additionally compared against.
func Validate(inst *Instance, plain *engine.DB, levels []optimizer.Level) ([]Report, error) {
	if err := inst.GrantReadTo(1); err != nil {
		return nil, err
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		return nil, err
	}
	var reports []Report
	for _, q := range Queries(inst.Cfg.SF) {
		want, err := RunOnPlain(plain, q)
		if err != nil {
			return nil, err
		}
		conn.SetOptLevel(optimizer.Canonical)
		gold, err := RunOnMT(conn, q)
		if err != nil {
			return nil, err
		}
		if d := Diff(want, gold); d != "" {
			reports = append(reports, Report{QueryID: q.ID, Level: optimizer.Canonical,
				Detail: "canonical vs plain TPC-H: " + d})
		} else {
			reports = append(reports, Report{QueryID: q.ID, Level: optimizer.Canonical, OK: true})
		}
		for _, level := range levels {
			if level == optimizer.Canonical {
				continue
			}
			conn.SetOptLevel(level)
			got, err := RunOnMT(conn, q)
			if err != nil {
				return nil, fmt.Errorf("Q%d at %s: %w", q.ID, level, err)
			}
			r := Report{QueryID: q.ID, Level: level, OK: true}
			if d := Diff(gold, got); d != "" {
				r.OK = false
				r.Detail = d
			}
			reports = append(reports, r)
		}
	}
	return reports, nil
}
