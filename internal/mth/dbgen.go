// Package mth implements the MT-H benchmark of §5: a multi-tenant
// extension of TPC-H. It contains a dbgen-style data generator with the
// paper's modifications (tenant-specific Customer/Orders/Lineitem,
// per-tenant currency and phone formats, uniform/zipfian tenant shares
// preserving foreign-key locality), the 22 queries, the schema setup
// through the MTBase middleware, and the §5 validation harness.
package mth

import (
	"fmt"
	"math"
	"math/rand"

	"mtbase/internal/engine"
	"mtbase/internal/sqltypes"
)

// Distribution selects the tenant-share distribution ρ of §5.
type Distribution string

// Tenant share distributions.
const (
	Uniform Distribution = "uniform"
	Zipf    Distribution = "zipf"
)

// Config parameterizes an MT-H database.
type Config struct {
	SF      float64 // TPC-H scale factor (1.0 = ~6M lineitems)
	Tenants int     // T; ttids range from 1 to T (§5)
	Dist    Distribution
	Seed    int64
	Mode    engine.Mode
}

// DefaultConfig is a laptop-scale Scenario-1 shape (§6.2).
func DefaultConfig() Config {
	return Config{SF: 0.01, Tenants: 10, Dist: Uniform, Seed: 42, Mode: engine.ModePostgres}
}

// rowCounts scales the TPC-H table cardinalities.
func (c Config) rowCounts() (suppliers, parts, customers, orders int) {
	suppliers = max(int(c.SF*10000), 10)
	parts = max(int(c.SF*200000), 200)
	customers = max(int(c.SF*150000), 150)
	orders = max(int(c.SF*1500000), 1500)
	return
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Data is a generated MT-H dataset. Tenant-specific rows are kept in
// universal format alongside their tenant assignment; loaders convert them
// into each owner's currency/phone format (the dbgen modification of §5).
type Data struct {
	Cfg Config

	Region, Nation, Supplier, Part, Partsupp [][]sqltypes.Value

	Customer, Orders, Lineitem          [][]sqltypes.Value
	CustTenant, OrderTenant, LineTenant []int64

	// Per-tenant formats; tenant 1 has the universal format for both (§5).
	ToUniversalRate map[int64]float64 // universal = tenant_value * rate
	PhonePrefix     map[int64]string
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

// nationDefs maps the 25 TPC-H nations to their regions.
var nationDefs = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	partColors = []string{"almond", "antique", "aquamarine", "azure", "beige",
		"bisque", "black", "blanched", "blue", "blush", "brown", "burlywood",
		"burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
		"cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab",
		"firebrick", "floral", "forest", "frosted", "gainsboro", "ghost",
		"goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian",
		"ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime",
		"linen", "magenta", "maroon", "medium", "metallic", "midnight", "mint",
		"misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
		"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
		"seashell", "sienna", "sky", "slate", "smoke", "snow", "spring",
		"steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat",
		"white", "yellow"}
	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1   = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2   = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	instructions  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	shipmodes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	commentWords  = []string{"carefully", "quickly", "furiously", "slyly", "blithely",
		"ironic", "final", "bold", "express", "regular", "pending", "even",
		"silent", "daring", "accounts", "packages", "theodolites", "pinto",
		"beans", "foxes", "ideas", "requests", "deposits", "platelets"}
	phonePrefixes = []string{"", "00", "+", "011", "0011", "810", "009", "1", "8~10"}
)

// Date domain: orders span [1992-01-01, 1998-08-02] as in TPC-H.
var (
	startDate = sqltypes.MustDate("1992-01-01").I
	endDate   = sqltypes.MustDate("1998-08-02").I
	currentDT = sqltypes.MustDate("1995-06-17").I // CURRENTDATE for flags
)

func comment(r *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += commentWords[r.Intn(len(commentWords))]
	}
	return out
}

// Generate produces a deterministic MT-H dataset for the configuration.
func Generate(cfg Config) *Data {
	if cfg.Tenants < 1 {
		cfg.Tenants = 1
	}
	d := &Data{Cfg: cfg,
		ToUniversalRate: make(map[int64]float64),
		PhonePrefix:     make(map[int64]string),
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Per-tenant formats: tenant 1 is universal (§5).
	for t := int64(1); t <= int64(cfg.Tenants); t++ {
		if t == 1 {
			d.ToUniversalRate[t] = 1.0
			d.PhonePrefix[t] = ""
			continue
		}
		d.ToUniversalRate[t] = math.Round((0.25+4.75*r.Float64())*10000) / 10000
		d.PhonePrefix[t] = phonePrefixes[int(t)%len(phonePrefixes)]
	}

	suppliers, parts, customers, orders := cfg.rowCounts()

	for i, name := range regionNames {
		d.Region = append(d.Region, []sqltypes.Value{
			sqltypes.NewInt(int64(i)), sqltypes.NewString(name),
			sqltypes.NewString(comment(r, 4)),
		})
	}
	for i, n := range nationDefs {
		d.Nation = append(d.Nation, []sqltypes.Value{
			sqltypes.NewInt(int64(i)), sqltypes.NewString(n.name),
			sqltypes.NewInt(int64(n.region)), sqltypes.NewString(comment(r, 4)),
		})
	}
	for i := 1; i <= suppliers; i++ {
		cmt := comment(r, 6)
		if r.Intn(100) == 0 {
			cmt = "blithely Customer ironic Complaints " + cmt // Q16 filter
		}
		nation := r.Intn(len(nationDefs))
		d.Supplier = append(d.Supplier, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Supplier#%09d", i)),
			sqltypes.NewString(comment(r, 2)),
			sqltypes.NewInt(int64(nation)),
			sqltypes.NewString(tpchPhone(nation, r)),
			sqltypes.NewFloat(money(r, -999.99, 9999.99)),
			sqltypes.NewString(cmt),
		})
	}
	retail := make([]float64, parts+1)
	for i := 1; i <= parts; i++ {
		name := partColors[r.Intn(len(partColors))] + " " +
			partColors[r.Intn(len(partColors))] + " " +
			partColors[r.Intn(len(partColors))]
		ptype := typeSyllable1[r.Intn(6)] + " " + typeSyllable2[r.Intn(5)] + " " + typeSyllable3[r.Intn(5)]
		brand := fmt.Sprintf("Brand#%d%d", 1+r.Intn(5), 1+r.Intn(5))
		container := containers1[r.Intn(5)] + " " + containers2[r.Intn(8)]
		retail[i] = 900 + float64(i%1000) + 0.01*float64(i%100)
		d.Part = append(d.Part, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(name),
			sqltypes.NewString(fmt.Sprintf("Manufacturer#%d", 1+r.Intn(5))),
			sqltypes.NewString(brand),
			sqltypes.NewString(ptype),
			sqltypes.NewInt(int64(1 + r.Intn(50))),
			sqltypes.NewString(container),
			sqltypes.NewFloat(retail[i]),
			sqltypes.NewString(comment(r, 3)),
		})
	}
	supplycost := make(map[[2]int64]float64)
	for i := 1; i <= parts; i++ {
		for j := 0; j < 4; j++ {
			sk := int64((i+j*(suppliers/4+1))%suppliers + 1)
			cost := money(r, 1, 1000)
			supplycost[[2]int64{int64(i), sk}] = cost
			d.Partsupp = append(d.Partsupp, []sqltypes.Value{
				sqltypes.NewInt(int64(i)), sqltypes.NewInt(sk),
				sqltypes.NewInt(int64(1 + r.Intn(9999))),
				sqltypes.NewFloat(cost),
				sqltypes.NewString(comment(r, 5)),
			})
		}
	}

	// Tenant assignment: customers are distributed uniformly or zipfian;
	// orders pick a customer of their own tenant so FK locality holds (§5).
	assign := tenantSampler(cfg, r)
	custsOf := make(map[int64][]int64) // tenant -> custkeys
	for i := 1; i <= customers; i++ {
		t := assign()
		nation := r.Intn(len(nationDefs))
		d.CustTenant = append(d.CustTenant, t)
		custsOf[t] = append(custsOf[t], int64(i))
		d.Customer = append(d.Customer, []sqltypes.Value{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewString(fmt.Sprintf("Customer#%09d", i)),
			sqltypes.NewString(comment(r, 2)),
			sqltypes.NewInt(int64(nation)),
			sqltypes.NewString(tpchPhone(nation, r)), // universal format
			sqltypes.NewFloat(money(r, -999.99, 9999.99)),
			sqltypes.NewString(segments[r.Intn(len(segments))]),
			sqltypes.NewString(comment(r, 8)),
		})
	}

	for i := 1; i <= orders; i++ {
		// Pick the order's tenant with the same distribution, then a
		// customer within that tenant (FK locality, §5).
		t := assign()
		if len(custsOf[t]) == 0 {
			t = d.CustTenant[r.Intn(customers)]
		}
		ckeys := custsOf[t]
		custkey := ckeys[r.Intn(len(ckeys))]
		orderdate := startDate + int64(r.Intn(int(endDate-startDate)-150))
		okey := int64(i)
		d.OrderTenant = append(d.OrderTenant, t)

		nlines := 1 + r.Intn(7)
		var total float64
		fCount := 0
		for ln := 1; ln <= nlines; ln++ {
			pk := int64(1 + r.Intn(parts))
			// one of the part's four suppliers
			j := r.Intn(4)
			sk := int64((int(pk)+j*(suppliers/4+1))%suppliers + 1)
			qty := float64(1 + r.Intn(50))
			price := round2(qty * retail[pk] / 10)
			discount := float64(r.Intn(11)) / 100
			tax := float64(r.Intn(9)) / 100
			shipdate := orderdate + int64(1+r.Intn(121))
			commitdate := orderdate + int64(30+r.Intn(61))
			receiptdate := shipdate + int64(1+r.Intn(30))
			var returnflag string
			if receiptdate <= currentDT {
				if r.Intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			} else {
				returnflag = "N"
			}
			linestatus := "O"
			if shipdate <= currentDT {
				linestatus = "F"
				fCount++
			}
			d.LineTenant = append(d.LineTenant, t)
			d.Lineitem = append(d.Lineitem, []sqltypes.Value{
				sqltypes.NewInt(okey),
				sqltypes.NewInt(pk),
				sqltypes.NewInt(sk),
				sqltypes.NewInt(int64(ln)),
				sqltypes.NewFloat(qty),
				sqltypes.NewFloat(price), // universal format
				sqltypes.NewFloat(discount),
				sqltypes.NewFloat(tax),
				sqltypes.NewString(returnflag),
				sqltypes.NewString(linestatus),
				sqltypes.NewDate(shipdate),
				sqltypes.NewDate(commitdate),
				sqltypes.NewDate(receiptdate),
				sqltypes.NewString(instructions[r.Intn(len(instructions))]),
				sqltypes.NewString(shipmodes[r.Intn(len(shipmodes))]),
				sqltypes.NewString(comment(r, 3)),
			})
			total += price * (1 + tax) * (1 - discount)
		}
		status := "P"
		switch fCount {
		case nlines:
			status = "F"
		case 0:
			status = "O"
		}
		cmt := comment(r, 6)
		if r.Intn(100) == 0 {
			cmt = "special packages requests " + cmt // Q13 filter
		}
		d.Orders = append(d.Orders, []sqltypes.Value{
			sqltypes.NewInt(okey),
			sqltypes.NewInt(custkey),
			sqltypes.NewString(status),
			sqltypes.NewFloat(round2(total)), // universal format
			sqltypes.NewDate(orderdate),
			sqltypes.NewString(priorities[r.Intn(len(priorities))]),
			sqltypes.NewString(fmt.Sprintf("Clerk#%09d", 1+r.Intn(max(suppliers, 1)))),
			sqltypes.NewInt(0),
			sqltypes.NewString(cmt),
		})
	}
	return d
}

// tenantSampler returns a deterministic sampler of ttids 1..T following
// the configured share distribution ρ.
func tenantSampler(cfg Config, r *rand.Rand) func() int64 {
	if cfg.Dist != Zipf || cfg.Tenants == 1 {
		next := 0
		return func() int64 {
			// Uniform shares via round-robin keeps per-tenant counts exact.
			next++
			return int64((next-1)%cfg.Tenants + 1)
		}
	}
	// Zipf with s=1: tenant 1 gets the biggest share (§5).
	cum := make([]float64, cfg.Tenants)
	sum := 0.0
	for k := 1; k <= cfg.Tenants; k++ {
		sum += 1 / float64(k)
		cum[k-1] = sum
	}
	return func() int64 {
		x := r.Float64() * sum
		lo, hi := 0, cfg.Tenants-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo + 1)
	}
}

// tpchPhone renders the TPC-H phone format CC-NNN-NNN-NNNN with country
// code nationkey+10 — the universal phone format of MT-H (Q22 relies on
// the country code prefix).
func tpchPhone(nation int, r *rand.Rand) string {
	return fmt.Sprintf("%d-%03d-%03d-%04d", nation+10,
		100+r.Intn(900), 100+r.Intn(900), 1000+r.Intn(9000))
}

func money(r *rand.Rand, lo, hi float64) float64 {
	return round2(lo + (hi-lo)*r.Float64())
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

// ConvertCurrency converts a universal amount into tenant format.
func (d *Data) ConvertCurrency(universal float64, t int64) float64 {
	return universal / d.ToUniversalRate[t]
}

// ConvertPhone converts a universal phone number into tenant format.
func (d *Data) ConvertPhone(universal string, t int64) string {
	return d.PhonePrefix[t] + universal
}
