package mth

// Differential acceptance suite for the pull-based operator executor: every
// MT-H query (the full Q1–Q22 shape spread — joins, grouping, ORDER BY,
// DISTINCT, correlated and uncorrelated subqueries, EXISTS/IN, conversion
// UDFs) must produce byte-identical results through the streaming operator
// tree and the materializing reference executor, in both compile modes and
// at both ends of the optimization-level spectrum.

import (
	"fmt"
	"strings"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
)

// exactKey renders a result order- and type-sensitively: the differential
// claim is byte identity, not multiset equality.
func exactKey(res *engine.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v:%s", v.K, v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestStreamDifferentialQ1toQ22(t *testing.T) {
	cfg := Config{SF: 0.002, Tenants: 3, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
	inst, err := LoadMT(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	defer db.SetStreamExec(true)
	defer db.SetCompileExprs(true)

	for _, level := range []optimizer.Level{optimizer.Canonical, optimizer.O4} {
		conn.SetOptLevel(level)
		for _, compiled := range []bool{true, false} {
			db.SetCompileExprs(compiled)
			for _, q := range Queries(cfg.SF) {
				db.SetStreamExec(true)
				streamed, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("level=%v compiled=%v Q%d streamed: %v", level, compiled, q.ID, err)
				}
				db.SetStreamExec(false)
				materialized, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("level=%v compiled=%v Q%d materialized: %v", level, compiled, q.ID, err)
				}
				if sk, mk := exactKey(streamed), exactKey(materialized); sk != mk {
					t.Errorf("level=%v compiled=%v Q%d: operator tree differs from materializing executor", level, compiled, q.ID)
				}
			}
		}
	}
}

// TestParallelDifferentialQ1toQ22 is the acceptance gate for morsel-driven
// parallel execution: every MT-H query at canonical, O3 and O4, in both
// compile modes, must produce byte-identical results at parallelism 8 and
// at parallelism 1 (the serial oracle). The morsel size is shrunk so the
// parallel scan, aggregate, join-build and sort paths all engage on the
// small differential dataset.
func TestParallelDifferentialQ1toQ22(t *testing.T) {
	engine.SetMorselSize(1)
	defer engine.SetMorselSize(0)
	cfg := Config{SF: 0.002, Tenants: 3, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
	inst, err := LoadMT(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	defer db.SetParallelism(0)
	defer db.SetCompileExprs(true)

	for _, level := range []optimizer.Level{optimizer.Canonical, optimizer.O3, optimizer.O4} {
		conn.SetOptLevel(level)
		for _, compiled := range []bool{true, false} {
			db.SetCompileExprs(compiled)
			for _, q := range Queries(cfg.SF) {
				db.SetParallelism(1)
				serial, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("level=%v compiled=%v Q%d serial: %v", level, compiled, q.ID, err)
				}
				db.SetParallelism(8)
				parallel, err := RunOnMT(conn, q)
				if err != nil {
					t.Fatalf("level=%v compiled=%v Q%d parallel: %v", level, compiled, q.ID, err)
				}
				if sk, pk := exactKey(serial), exactKey(parallel); sk != pk {
					t.Errorf("level=%v compiled=%v Q%d: parallelism 8 differs from serial oracle", level, compiled, q.ID)
				}
			}
		}
	}
}

// TestStreamCursorMatchesResult drains the middleware cursor for the
// conversion-heavy queries and compares against the materialized result —
// the end-to-end path mtsh streams through.
func TestStreamCursorMatchesResult(t *testing.T) {
	cfg := Config{SF: 0.002, Tenants: 3, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
	inst, err := LoadMT(Generate(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	for _, id := range []int{1, 6, 22} {
		q, err := QueryByID(cfg.SF, id)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunOnMT(conn, q)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := conn.QueryRows(q.SQL)
		if err != nil {
			t.Fatalf("Q%d cursor: %v", id, err)
		}
		got, err := rows.Collect()
		if err != nil {
			t.Fatalf("Q%d collect: %v", id, err)
		}
		if exactKey(got) != exactKey(want) {
			t.Errorf("Q%d: cursor differs from materialized result", id)
		}
	}
}
