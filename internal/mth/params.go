package mth

// Parameterized variants of the conversion-intensive MT-H queries (Q1, Q6,
// Q22). The paper's evaluation inlines the TPC-H validation literals; real
// interactive traffic varies them per request, which defeats any cache
// keyed on byte-identical SQL. These variants bind the varying literals
// (dates, quantities, country codes) through `?` / `$n` placeholders so one
// parameterized text — and one engine plan — serves every binding; the
// Inlined form of each binding exists for differential validation and for
// benchmarking binds against the literal-inlining baseline.

import (
	"fmt"
	"strings"

	"mtbase/internal/sqltypes"
)

// ParamQuery is one parameterized benchmark query plus a generator of
// distinct bindings and their literal-inlined equivalents.
type ParamQuery struct {
	ID   int
	Name string
	SQL  string
	// Args returns the i-th binding. Distinct i yield distinct literal
	// values within the query's validation window.
	Args func(i int) []any
	// Inlined returns the literal-inlined SQL equivalent to binding i.
	Inlined func(i int) string
}

// ParamQueries returns the parameterized Q1/Q6/Q22 variants.
func ParamQueries() []ParamQuery {
	q1Base := sqltypes.MustDate("1998-12-01")
	q1Date := func(i int) sqltypes.Value {
		return sqltypes.NewDate(q1Base.I - int64(i%60))
	}
	q1SQL := `
SELECT l_returnflag, l_linestatus,
  SUM(l_quantity) AS sum_qty,
  SUM(l_extendedprice) AS sum_base_price,
  SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
  SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
  AVG(l_quantity) AS avg_qty,
  AVG(l_extendedprice) AS avg_price,
  AVG(l_discount) AS avg_disc,
  COUNT(*) AS count_order
FROM lineitem
WHERE l_shipdate <= %s - INTERVAL '90' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus`

	q6Dates := []string{"1993-01-01", "1994-01-01", "1995-01-01", "1996-01-01"}
	q6Disc := func(i int) float64 { return 0.02 + 0.01*float64(i%6) }
	q6Qty := func(i int) int { return 24 + i%2 }
	q6SQL := `
SELECT SUM(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= $1 AND l_shipdate < $1 + INTERVAL '1' YEAR
  AND l_discount BETWEEN $2 - 0.01 AND $2 + 0.01 AND l_quantity < $3`

	q22Pool := []string{"13", "31", "23", "29", "30", "18", "17", "25", "33", "27"}
	q22Codes := func(i int) []string {
		codes := make([]string, 7)
		for j := range codes {
			codes[j] = q22Pool[(i+j)%len(q22Pool)]
		}
		return codes
	}
	q22SQL := `
SELECT cntrycode, COUNT(*) AS numcust, SUM(bal) AS totacctbal
FROM (
  SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal AS bal
  FROM customer
  WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN (%s)
    AND c_acctbal > (
      SELECT AVG(c_acctbal) FROM customer
      WHERE c_acctbal > 0.00
        AND SUBSTRING(c_phone FROM 1 FOR 2) IN (%s))
    AND NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)
) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode`
	q22Params := "$1, $2, $3, $4, $5, $6, $7"

	return []ParamQuery{
		{
			ID: 1, Name: "pricing summary report (bound date)",
			SQL: fmt.Sprintf(q1SQL, "?"),
			Args: func(i int) []any {
				return []any{q1Date(i)}
			},
			Inlined: func(i int) string {
				return fmt.Sprintf(q1SQL, q1Date(i).SQLLiteral())
			},
		},
		{
			ID: 6, Name: "forecasting revenue change (bound date/discount/quantity)",
			SQL: q6SQL,
			Args: func(i int) []any {
				return []any{q6Dates[i%len(q6Dates)], q6Disc(i), q6Qty(i)}
			},
			Inlined: func(i int) string {
				s := strings.ReplaceAll(q6SQL, "$1", fmt.Sprintf("DATE '%s'", q6Dates[i%len(q6Dates)]))
				s = strings.ReplaceAll(s, "$2", fmt.Sprintf("%.2f", q6Disc(i)))
				return strings.ReplaceAll(s, "$3", fmt.Sprintf("%d", q6Qty(i)))
			},
		},
		{
			ID: 22, Name: "global sales opportunity (bound country codes)",
			SQL: fmt.Sprintf(q22SQL, q22Params, q22Params),
			Args: func(i int) []any {
				codes := q22Codes(i)
				args := make([]any, len(codes))
				for j, c := range codes {
					args[j] = c
				}
				return args
			},
			Inlined: func(i int) string {
				quoted := make([]string, 0, 7)
				for _, c := range q22Codes(i) {
					quoted = append(quoted, "'"+c+"'")
				}
				list := strings.Join(quoted, ", ")
				return fmt.Sprintf(q22SQL, list, list)
			},
		},
	}
}

// ParamQueryByID returns one parameterized query.
func ParamQueryByID(id int) (ParamQuery, error) {
	for _, q := range ParamQueries() {
		if q.ID == id {
			return q, nil
		}
	}
	return ParamQuery{}, fmt.Errorf("mth: no parameterized query %d", id)
}
