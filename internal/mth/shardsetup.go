package mth

// Sharded MT-H deployment: the same schema, conversion metadata and
// generated rows as LoadMT, stood up over a shard.Server. Metadata,
// global tables and conversion meta rows replicate to every shard AND the
// coordinator replica; each tenant's rows bulk load onto its owning shard
// only (the replica holds none — its tenant tables are the repartition
// scratch area).

import (
	"fmt"

	"mtbase/internal/middleware"
	"mtbase/internal/mtsql"
	"mtbase/internal/shard"
	"mtbase/internal/sqltypes"
)

// ShardedInstance is a loaded MT-H deployment partitioned over N shards.
type ShardedInstance struct {
	Cfg  Config
	Srv  *shard.Server
	Data *Data
}

// BuildMTSharded generates data and stands up a sharded MTBase instance.
func BuildMTSharded(cfg Config, nshards int, opts ...shard.Option) (*ShardedInstance, error) {
	return LoadMTSharded(Generate(cfg), nshards, opts...)
}

// LoadMTSharded stands up a sharded MTBase instance from pre-generated
// data. The same Data loaded unsharded (LoadMT) and sharded under any
// placement must answer every query identically — the differential
// harness depends on it.
func LoadMTSharded(d *Data, nshards int, opts ...shard.Option) (*ShardedInstance, error) {
	cfg := d.Cfg
	opts = append([]shard.Option{shard.WithDataModeller(ModellerTTID)}, opts...)
	srv, err := shard.New(nshards, cfg.Mode, opts...)
	if err != nil {
		return nil, err
	}

	// Every server — shards and replica — carries the full conversion
	// registry and metadata; rewrites happen wherever a statement lands.
	servers := append([]*middleware.Server{}, srv.Shards()...)
	servers = append(servers, srv.Replica())
	for _, mw := range servers {
		if err := mw.Schema().Convs().Register(mtsql.ConvPair{
			Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal",
			Class: mtsql.ClassLinear,
		}); err != nil {
			return nil, err
		}
		if err := mw.Schema().Convs().Register(mtsql.ConvPair{
			Name: "phone", ToFunc: "phoneToUniversal", FromFunc: "phoneFromUniversal",
			Class: mtsql.ClassEqualityPreserving,
		}); err != nil {
			return nil, err
		}
	}

	// DDL through a sharded admin session fans out to every server under
	// the schema barrier.
	admin, err := srv.Connect(ModellerTTID)
	if err != nil {
		return nil, err
	}
	for _, group := range [][]string{metaDDL, globalDDL, tenantDDL} {
		for _, ddl := range group {
			if _, err := admin.Exec(ddl); err != nil {
				return nil, fmt.Errorf("mth: sharded DDL failed: %w", err)
			}
		}
	}
	for t := int64(1); t <= int64(cfg.Tenants); t++ {
		if err := srv.CreateTenant(t); err != nil {
			return nil, err
		}
	}

	// Conversion meta rows and global tables replicate everywhere.
	for _, mw := range servers {
		db := mw.DB()
		tenantT := db.Table("Tenant")
		ct := db.Table("CurrencyTransform")
		pt := db.Table("PhoneTransform")
		for t := int64(1); t <= int64(cfg.Tenants); t++ {
			tenantT.AppendRow([]sqltypes.Value{
				sqltypes.NewInt(t), sqltypes.NewInt(t), sqltypes.NewInt(t),
			})
			rate := d.ToUniversalRate[t]
			ct.AppendRow([]sqltypes.Value{
				sqltypes.NewInt(t), sqltypes.NewFloat(rate), sqltypes.NewFloat(1 / rate),
			})
			pt.AppendRow([]sqltypes.Value{
				sqltypes.NewInt(t), sqltypes.NewString(d.PhonePrefix[t]),
			})
		}
		db.Table("region").BulkLoad(d.Region)
		db.Table("nation").BulkLoad(d.Nation)
		db.Table("supplier").BulkLoad(d.Supplier)
		db.Table("part").BulkLoad(d.Part)
		db.Table("partsupp").BulkLoad(d.Partsupp)
	}

	// Tenant rows go to the owning shard only, preserving the generated
	// relative order within each shard (heap order is part of what the
	// differential suite compares through unordered scans).
	loadTenant := func(name string, rows [][]sqltypes.Value, tenants []int64, convert func(row []sqltypes.Value, t int64)) {
		parts := make([][][]sqltypes.Value, nshards)
		for i, row := range rows {
			t := tenants[i]
			nr := make([]sqltypes.Value, 0, len(row)+1)
			nr = append(nr, sqltypes.NewInt(t))
			nr = append(nr, row...)
			convert(nr, t)
			rank := srv.ShardOf(t)
			parts[rank] = append(parts[rank], nr)
		}
		for rank, mw := range srv.Shards() {
			mw.DB().Table(name).BulkLoad(parts[rank])
		}
	}
	loadTenant("customer", d.Customer, d.CustTenant, func(row []sqltypes.Value, t int64) {
		row[5] = sqltypes.NewString(d.ConvertPhone(row[5].S, t))
		row[6] = sqltypes.NewFloat(d.ConvertCurrency(row[6].F, t))
	})
	loadTenant("orders", d.Orders, d.OrderTenant, func(row []sqltypes.Value, t int64) {
		row[4] = sqltypes.NewFloat(d.ConvertCurrency(row[4].F, t))
	})
	loadTenant("lineitem", d.Lineitem, d.LineTenant, func(row []sqltypes.Value, t int64) {
		row[6] = sqltypes.NewFloat(d.ConvertCurrency(row[6].F, t))
	})
	return &ShardedInstance{Cfg: cfg, Srv: srv, Data: d}, nil
}

// GrantReadTo lets the given client read every tenant's data, mirroring
// Instance.GrantReadTo. Grants are metadata and fan out to every server.
func (inst *ShardedInstance) GrantReadTo(client int64) error {
	for t := int64(1); t <= int64(inst.Cfg.Tenants); t++ {
		if t == client {
			continue
		}
		conn, err := inst.Srv.Connect(t)
		if err != nil {
			return err
		}
		if _, err := conn.Exec(fmt.Sprintf("GRANT READ ON DATABASE TO %d", client)); err != nil {
			return err
		}
	}
	return nil
}

// Connect opens a sharded session with the given scope already set.
func (inst *ShardedInstance) Connect(ttid int64, scope string) (*shard.Conn, error) {
	conn, err := inst.Srv.Connect(ttid)
	if err != nil {
		return nil, err
	}
	if scope != "" {
		if _, err := conn.Exec(fmt.Sprintf("SET SCOPE = \"%s\"", scope)); err != nil {
			return nil, err
		}
	}
	return conn, nil
}
