package mth

// Acceptance tests for the prepared-statement API on the MT-H workload:
// parameterized Q1/Q6/Q22 executed with distinct bindings must (a) be
// byte-identical to their literal-inlined forms in both compile modes, (b)
// hit the engine plan cache on effectively every execution, and (c) return
// the same rows through the streaming cursor as through the materialized
// result.

import (
	"strings"
	"testing"

	"mtbase/internal/engine"
)

func paramInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := BuildMT(Config{SF: 0.002, Tenants: 3, Dist: Uniform, Seed: 42, Mode: engine.ModePostgres})
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestParamQueriesMatchInlined(t *testing.T) {
	inst := paramInstance(t)
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	for _, pq := range ParamQueries() {
		st, err := conn.Prepare(pq.SQL)
		if err != nil {
			t.Fatalf("Q%d prepare: %v", pq.ID, err)
		}
		for _, compiled := range []bool{true, false} {
			db.SetCompileExprs(compiled)
			for i := 0; i < 3; i++ {
				got, err := st.QueryResult(pq.Args(i)...)
				if err != nil {
					t.Fatalf("Q%d binding %d compiled=%v: %v", pq.ID, i, compiled, err)
				}
				want, err := conn.Query(pq.Inlined(i))
				if err != nil {
					t.Fatalf("Q%d inlined %d compiled=%v: %v", pq.ID, i, compiled, err)
				}
				gk := strings.Join(canonicalRows(got), "\n")
				wk := strings.Join(canonicalRows(want), "\n")
				if gk != wk {
					t.Fatalf("Q%d binding %d compiled=%v: parameterized differs from inlined\n%s\nvs\n%s",
						pq.ID, i, compiled, gk, wk)
				}
			}
		}
		db.SetCompileExprs(true)
	}
}

// TestParamQ1PlanCacheHitRate is the acceptance criterion: a parameterized
// Q1 executed 100× with distinct bindings shows >= 99/100 engine plan-cache
// hits, where the literal-inlined forms would miss every time.
func TestParamQ1PlanCacheHitRate(t *testing.T) {
	inst := paramInstance(t)
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	pq, err := ParamQueryByID(1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := conn.Prepare(pq.SQL)
	if err != nil {
		t.Fatal(err)
	}
	db := inst.Srv.DB()
	db.Stats = engine.Stats{}
	for i := 0; i < 100; i++ {
		if _, err := st.QueryResult(pq.Args(i)...); err != nil {
			t.Fatalf("binding %d: %v", i, err)
		}
	}
	if db.Stats.PlanCacheHits < 99 {
		t.Fatalf("parameterized Q1 plan-cache hits = %d of 100, want >= 99 (misses %d)",
			db.Stats.PlanCacheHits, db.Stats.PlanCacheMisses)
	}

	// The same 100 executions inlined as literals: every distinct text is a
	// cold plan, the regression this API fixes.
	db.Stats = engine.Stats{}
	for i := 0; i < 5; i++ {
		if _, err := conn.Query(pq.Inlined(i)); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats.PlanCacheHits != 0 {
		t.Fatalf("distinct inlined texts should never hit, got %d hits", db.Stats.PlanCacheHits)
	}
}

// TestParamQueryRowsCursor: the streaming cursor over a parameterized MT-H
// query returns exactly the rows of the materialized result.
func TestParamQueryRowsCursor(t *testing.T) {
	inst := paramInstance(t)
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	pq, err := ParamQueryByID(6)
	if err != nil {
		t.Fatal(err)
	}
	st, err := conn.Prepare(pq.SQL)
	if err != nil {
		t.Fatal(err)
	}
	want, err := st.QueryResult(pq.Args(0)...)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := st.Query(pq.Args(0)...)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]string
	for rows.Next() {
		row := rows.Row()
		out := make([]string, len(row))
		for j, v := range row {
			out[j] = v.String()
		}
		got = append(got, out)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Rows) {
		t.Fatalf("cursor rows %d vs result rows %d", len(got), len(want.Rows))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want.Rows[i][j].String() {
				t.Fatalf("row %d col %d: %s vs %s", i, j, got[i][j], want.Rows[i][j])
			}
		}
	}
}
