package mth

import (
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
)

func tinyConfig() Config {
	return Config{SF: 0.001, Tenants: 5, Dist: Uniform, Seed: 7, Mode: engine.ModePostgres}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(tinyConfig())
	b := Generate(tinyConfig())
	if len(a.Lineitem) != len(b.Lineitem) || len(a.Customer) != len(b.Customer) {
		t.Fatal("sizes differ between runs")
	}
	for i := range a.Customer {
		for j := range a.Customer[i] {
			if a.Customer[i][j].String() != b.Customer[i][j].String() {
				t.Fatalf("customer row %d col %d differs", i, j)
			}
		}
	}
}

func TestTenantSharesUniform(t *testing.T) {
	d := Generate(tinyConfig())
	counts := make(map[int64]int)
	for _, tt := range d.CustTenant {
		counts[tt]++
	}
	if len(counts) != 5 {
		t.Fatalf("tenants present: %d", len(counts))
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Errorf("uniform shares unbalanced: min=%d max=%d", min, max)
	}
}

func TestTenantSharesZipf(t *testing.T) {
	cfg := tinyConfig()
	cfg.Dist = Zipf
	cfg.Tenants = 8
	d := Generate(cfg)
	counts := make(map[int64]int)
	for _, tt := range d.CustTenant {
		counts[tt]++
	}
	// Tenant 1 gets the biggest share (§5).
	for tt, c := range counts {
		if tt != 1 && c > counts[1] {
			t.Errorf("tenant %d share %d exceeds tenant 1 share %d", tt, c, counts[1])
		}
	}
	if counts[1] <= counts[8]*2 {
		t.Errorf("zipf skew too weak: t1=%d t8=%d", counts[1], counts[8])
	}
}

func TestFKLocality(t *testing.T) {
	d := Generate(tinyConfig())
	custTenant := make(map[int64]int64)
	for i, row := range d.Customer {
		custTenant[row[0].I] = d.CustTenant[i]
	}
	for i, row := range d.Orders {
		ck := row[1].I
		if custTenant[ck] != d.OrderTenant[i] {
			t.Fatalf("order %d links to customer of another tenant", row[0].I)
		}
	}
	orderTenant := make(map[int64]int64)
	for i, row := range d.Orders {
		orderTenant[row[0].I] = d.OrderTenant[i]
	}
	for i, row := range d.Lineitem {
		if orderTenant[row[0].I] != d.LineTenant[i] {
			t.Fatalf("lineitem %d crosses tenants", i)
		}
	}
}

func TestTenant1IsUniversal(t *testing.T) {
	d := Generate(tinyConfig())
	if d.ToUniversalRate[1] != 1.0 || d.PhonePrefix[1] != "" {
		t.Errorf("tenant 1 must have universal formats: rate=%v prefix=%q",
			d.ToUniversalRate[1], d.PhonePrefix[1])
	}
	for tt := int64(2); tt <= 5; tt++ {
		if d.ToUniversalRate[tt] <= 0 {
			t.Errorf("tenant %d has invalid rate %v", tt, d.ToUniversalRate[tt])
		}
	}
}

func TestConversionRoundTrip(t *testing.T) {
	d := Generate(tinyConfig())
	for tt := int64(1); tt <= 5; tt++ {
		v := 12345.67
		tenant := d.ConvertCurrency(v, tt)
		back := tenant * d.ToUniversalRate[tt]
		if back < v*0.999999 || back > v*1.000001 {
			t.Errorf("tenant %d: round trip %v -> %v", tt, v, back)
		}
		p := d.ConvertPhone("13-555-111-2222", tt)
		if p != d.PhonePrefix[tt]+"13-555-111-2222" {
			t.Errorf("tenant %d phone: %q", tt, p)
		}
	}
}

func TestBuildMTAndConstraints(t *testing.T) {
	inst, err := BuildMT(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The physical FK constraints (extended with ttid) must hold on the
	// loaded data.
	if err := inst.Srv.DB().ValidateConstraints(); err != nil {
		t.Errorf("constraint violation in generated data: %v", err)
	}
	// Row counts.
	db := inst.Srv.DB()
	if n := db.Table("lineitem").RowCount(); n < 1500 {
		t.Errorf("lineitem rows = %d", n)
	}
	if n := db.Table("region").RowCount(); n != 5 {
		t.Errorf("region rows = %d", n)
	}
}

func TestQueriesParse(t *testing.T) {
	inst, err := BuildMT(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	for _, q := range Queries(inst.Cfg.SF) {
		if _, err := RunOnMT(conn, q); err != nil {
			t.Errorf("Q%d failed: %v", q.ID, err)
		}
	}
}

// TestValidation is the §5 validation: C=1, D=all vs plain TPC-H, plus
// every optimization level vs the canonical gold standard.
func TestValidation(t *testing.T) {
	cfg := tinyConfig()
	d := Generate(cfg)
	inst, err := LoadMT(d)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := LoadPlain(d, cfg.Mode)
	if err != nil {
		t.Fatal(err)
	}
	levels := []optimizer.Level{optimizer.O1, optimizer.O2, optimizer.O3, optimizer.O4, optimizer.InlOnly}
	reports, err := Validate(inst, plain, levels)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.OK {
			t.Errorf("Q%02d at %-9s: %s", r.QueryID, r.Level, r.Detail)
		}
	}
	if len(reports) != 22*6 {
		t.Errorf("reports = %d, want %d", len(reports), 22*6)
	}
}

func TestValidationZipfSystemC(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := tinyConfig()
	cfg.Dist = Zipf
	cfg.Mode = engine.ModeSystemC
	d := Generate(cfg)
	inst, err := LoadMT(d)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := LoadPlain(d, cfg.Mode)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Validate(inst, plain, []optimizer.Level{optimizer.O4})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reports {
		if !r.OK {
			t.Errorf("Q%02d at %-9s: %s", r.QueryID, r.Level, r.Detail)
		}
	}
}

func TestQueryByID(t *testing.T) {
	q, err := QueryByID(1, 15)
	if err != nil || q.ID != 15 || len(q.Setup) != 1 {
		t.Errorf("QueryByID: %+v, %v", q, err)
	}
	if _, err := QueryByID(1, 99); err == nil {
		t.Error("bogus id accepted")
	}
}
