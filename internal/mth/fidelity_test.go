package mth

import (
	"testing"

	"mtbase/internal/optimizer"
	"mtbase/internal/sqlparse"
)

// TestRewriteSerializationFidelity checks the property the middleware's
// architecture rests on (§3: communication "by the means of pure SQL"):
// for every MT-H query at every optimization level, the rewritten AST
// serializes to SQL that reparses to an identical serialization.
func TestRewriteSerializationFidelity(t *testing.T) {
	inst, err := BuildMT(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries(inst.Cfg.SF) {
		// Q15's main query needs its view; create it canonically.
		for _, s := range q.Setup {
			if _, err := conn.Exec(s); err != nil {
				t.Fatalf("Q%d setup: %v", q.ID, err)
			}
		}
		for _, level := range []optimizer.Level{
			optimizer.Canonical, optimizer.O1, optimizer.O2,
			optimizer.O3, optimizer.O4, optimizer.InlOnly,
		} {
			conn.SetOptLevel(level)
			rw, err := conn.RewriteSQL(q.SQL)
			if err != nil {
				t.Fatalf("Q%d rewrite at %s: %v", q.ID, level, err)
			}
			text := rw.String()
			reparsed, err := sqlparse.ParseQuery(text)
			if err != nil {
				t.Fatalf("Q%d at %s does not reparse: %v\n%s", q.ID, level, err, text)
			}
			if got := reparsed.String(); got != text {
				t.Errorf("Q%d at %s: serialization not a fixed point:\n first: %s\nsecond: %s",
					q.ID, level, text, got)
			}
		}
		for _, s := range q.Teardown {
			if _, err := conn.Exec(s); err != nil {
				t.Fatalf("Q%d teardown: %v", q.ID, err)
			}
		}
	}
}

// TestScopeReResolvedPerStatement: a complex scope is evaluated at every
// statement execution (§3), so D follows data changes.
func TestScopeReResolvedPerStatement(t *testing.T) {
	inst, err := BuildMT(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Connect(1, "")
	if err != nil {
		t.Fatal(err)
	}
	// Scope: tenants owning at least one order above a threshold in C=1's
	// (universal) format.
	if _, err := conn.Exec(`SET SCOPE = "FROM orders WHERE o_totalprice > 99999999"`); err != nil {
		t.Fatal(err)
	}
	res, err := conn.Exec("SELECT COUNT(*) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 0 {
		t.Fatalf("no tenant should qualify yet: %v", res.Rows)
	}
	// Insert a qualifying order into tenant 1's data; the SAME session's
	// next query must now see tenant 1 in D.
	self, err := inst.Connect(1, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := self.Exec(`INSERT INTO orders (o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate, o_orderpriority, o_clerk, o_shippriority, o_comment)
		VALUES (999999, 1, 'O', 100000000, DATE '1995-01-01', '1-URGENT', 'Clerk#1', 0, 'big')`); err != nil {
		t.Fatal(err)
	}
	res, err = conn.Exec("SELECT COUNT(*) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I == 0 {
		t.Error("complex scope not re-resolved after data change")
	}
}
