package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqllex"
)

// ---------------------------------------------------------------- CREATE

func (p *Parser) parseCreate() (sqlast.Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	switch {
	case p.eatKeyword("TABLE"):
		return p.parseCreateTable()
	case p.eatKeyword("VIEW"):
		return p.parseCreateView()
	case p.eatKeyword("FUNCTION"):
		return p.parseCreateFunction()
	}
	return nil, p.errorf("expected TABLE, VIEW or FUNCTION after CREATE, got %s", p.peek())
}

func (p *Parser) parseCreateTable() (sqlast.Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct := &sqlast.CreateTable{Name: name, Generality: sqlast.Global}
	// MTSQL table generality (tables default to global, §2.2.1).
	if p.eatKeyword("SPECIFIC") {
		ct.Generality = sqlast.TenantSpecific
	} else {
		p.eatKeyword("GLOBAL")
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		if p.isKeyword("CONSTRAINT") || p.isKeyword("PRIMARY") || p.isKeyword("FOREIGN") || p.isKeyword("CHECK") {
			con, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			ct.Constraints = append(ct.Constraints, con)
		} else {
			col, err := p.parseColumnDef(ct.Generality)
			if err != nil {
				return nil, err
			}
			ct.Columns = append(ct.Columns, col)
		}
		if !p.eatOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *Parser) parseColumnDef(gen sqlast.Generality) (sqlast.ColumnDef, error) {
	var col sqlast.ColumnDef
	name, err := p.expectIdent()
	if err != nil {
		return col, err
	}
	col.Name = name
	col.Type, err = p.parseTypeName()
	if err != nil {
		return col, err
	}
	// Defaults per §2.2.1: attributes of tenant-specific tables default to
	// tenant-specific; attributes of global tables default to comparable.
	if gen == sqlast.TenantSpecific {
		col.Comparability = sqlast.Specific
	} else {
		col.Comparability = sqlast.Comparable
	}
	for {
		switch {
		case p.eatKeyword("NOT"):
			if err := p.expectKeyword("NULL"); err != nil {
				return col, err
			}
			col.NotNull = true
		case p.eatKeyword("COMPARABLE"):
			col.Comparability = sqlast.Comparable
		case p.eatKeyword("SPECIFIC"):
			col.Comparability = sqlast.Specific
		case p.eatKeyword("CONVERTIBLE"):
			col.Comparability = sqlast.Convertible
			// @toUniversal @fromUniversal annotations
			t := p.peek()
			if t.Kind != sqllex.TokAt {
				return col, p.errorf("CONVERTIBLE requires @toUniversal @fromUniversal annotations")
			}
			col.ToUniversal = p.next().Text
			t = p.peek()
			if t.Kind != sqllex.TokAt {
				return col, p.errorf("CONVERTIBLE requires a second @fromUniversal annotation")
			}
			col.FromUniversal = p.next().Text
		default:
			return col, nil
		}
	}
}

// typeNames is the set of recognized column types.
var typeNames = map[string]bool{
	"INTEGER": true, "INT": true, "BIGINT": true, "DECIMAL": true,
	"NUMERIC": true, "VARCHAR": true, "CHAR": true, "TEXT": true,
	"DATE": true, "BOOLEAN": true,
}

func (p *Parser) parseTypeName() (sqlast.TypeName, error) {
	t := p.peek()
	if (t.Kind != sqllex.TokKeyword && t.Kind != sqllex.TokIdent) || !typeNames[strings.ToUpper(t.Text)] {
		return sqlast.TypeName{}, p.errorf("expected type name, got %s", t)
	}
	p.pos++
	tn := sqlast.TypeName{Name: strings.ToUpper(t.Text)}
	if p.eatOp("(") {
		for {
			num := p.peek()
			if num.Kind != sqllex.TokNumber {
				return tn, p.errorf("expected type size, got %s", num)
			}
			n, err := strconv.Atoi(num.Text)
			if err != nil {
				return tn, p.errorf("bad type size %q", num.Text)
			}
			p.pos++
			tn.Args = append(tn.Args, n)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return tn, err
		}
	}
	return tn, nil
}

func (p *Parser) parseConstraint() (sqlast.Constraint, error) {
	var con sqlast.Constraint
	if p.eatKeyword("CONSTRAINT") {
		name, err := p.expectIdent()
		if err != nil {
			return con, err
		}
		con.Name = name
	}
	switch {
	case p.eatKeyword("PRIMARY"):
		if err := p.expectKeyword("KEY"); err != nil {
			return con, err
		}
		con.Kind = sqlast.ConstraintPrimaryKey
		cols, err := p.parseParenIdentList()
		if err != nil {
			return con, err
		}
		con.Columns = cols
	case p.eatKeyword("FOREIGN"):
		if err := p.expectKeyword("KEY"); err != nil {
			return con, err
		}
		con.Kind = sqlast.ConstraintForeignKey
		cols, err := p.parseParenIdentList()
		if err != nil {
			return con, err
		}
		con.Columns = cols
		if err := p.expectKeyword("REFERENCES"); err != nil {
			return con, err
		}
		ref, err := p.expectIdent()
		if err != nil {
			return con, err
		}
		con.RefTable = ref
		refCols, err := p.parseParenIdentList()
		if err != nil {
			return con, err
		}
		con.RefColumns = refCols
	case p.eatKeyword("CHECK"):
		con.Kind = sqlast.ConstraintCheck
		if err := p.expectOp("("); err != nil {
			return con, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return con, err
		}
		if err := p.expectOp(")"); err != nil {
			return con, err
		}
		con.Check = e
	default:
		return con, p.errorf("expected PRIMARY KEY, FOREIGN KEY or CHECK, got %s", p.peek())
	}
	return con, nil
}

func (p *Parser) parseParenIdentList() ([]string, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var out []string
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, id)
		if !p.eatOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *Parser) parseCreateView() (sqlast.Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sub, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &sqlast.CreateView{Name: name, Sub: sub}, nil
}

func (p *Parser) parseCreateFunction() (sqlast.Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	cf := &sqlast.CreateFunction{Name: name}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	if !p.isOp(")") {
		for {
			tn, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			cf.ParamTypes = append(cf.ParamTypes, tn)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	cf.ReturnType, err = p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	body := p.peek()
	if body.Kind != sqllex.TokString {
		return nil, p.errorf("expected quoted SQL body after AS, got %s", body)
	}
	p.pos++
	bodyText := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(body.Text), ";"))
	sub, err := ParseQuery(bodyText)
	if err != nil {
		return nil, p.errorf("function body: %v", err)
	}
	cf.Body = sub
	if p.eatKeyword("LANGUAGE") {
		if err := p.expectKeyword("SQL"); err != nil {
			return nil, err
		}
	}
	if p.eatKeyword("IMMUTABLE") {
		cf.Immutable = true
	}
	return cf, nil
}

// ---------------------------------------------------------------- DROP

func (p *Parser) parseDrop() (sqlast.Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	switch {
	case p.eatKeyword("TABLE"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropTable{Name: name}, nil
	case p.eatKeyword("VIEW"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.DropView{Name: name}, nil
	}
	return nil, p.errorf("expected TABLE or VIEW after DROP, got %s", p.peek())
}

// ---------------------------------------------------------------- DML

func (p *Parser) parseInsert() (sqlast.Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &sqlast.Insert{Table: table}
	if p.isOp("(") {
		cols, err := p.parseParenIdentList()
		if err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	if p.isKeyword("SELECT") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Sub = sub
		return ins, nil
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.eatOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (sqlast.Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	up := &sqlast.Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Sets = append(up.Sets, sqlast.Assignment{Column: col, Expr: e})
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		up.Where = w
	}
	return up, nil
}

func (p *Parser) parseDelete() (sqlast.Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &sqlast.Delete{Table: table}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = w
	}
	return del, nil
}

// ---------------------------------------------------------------- DCL

func (p *Parser) parsePrivileges() ([]sqlast.Privilege, error) {
	var privs []sqlast.Privilege
	for {
		t := p.peek()
		var pr sqlast.Privilege
		switch {
		case t.Kind == sqllex.TokKeyword && t.Text == "READ":
			pr = sqlast.PrivRead
		case t.Kind == sqllex.TokKeyword && t.Text == "INSERT":
			pr = sqlast.PrivInsert
		case t.Kind == sqllex.TokKeyword && t.Text == "UPDATE":
			pr = sqlast.PrivUpdate
		case t.Kind == sqllex.TokKeyword && t.Text == "DELETE":
			pr = sqlast.PrivDelete
		default:
			return nil, p.errorf("expected privilege, got %s", t)
		}
		p.pos++
		privs = append(privs, pr)
		if !p.eatOp(",") {
			break
		}
	}
	return privs, nil
}

// parseGranteeTarget parses the ON <database|table> TO/FROM <ttid|ALL> tail.
func (p *Parser) parseGranteeTarget(sep string) (table string, grantee int64, all bool, err error) {
	if err = p.expectKeyword("ON"); err != nil {
		return
	}
	if t := p.peek(); t.Kind == sqllex.TokIdent {
		if strings.EqualFold(t.Text, "DATABASE") {
			p.pos++
		} else {
			table = t.Text
			p.pos++
		}
	} else {
		err = p.errorf("expected table name or DATABASE, got %s", t)
		return
	}
	if err = p.expectKeyword(sep); err != nil {
		return
	}
	t := p.peek()
	switch {
	case t.Kind == sqllex.TokKeyword && t.Text == "ALL":
		p.pos++
		all = true
	case t.Kind == sqllex.TokNumber:
		p.pos++
		grantee, err = strconv.ParseInt(t.Text, 10, 64)
	default:
		err = p.errorf("expected tenant id or ALL, got %s", t)
	}
	return
}

func (p *Parser) parseGrant() (sqlast.Statement, error) {
	if err := p.expectKeyword("GRANT"); err != nil {
		return nil, err
	}
	privs, err := p.parsePrivileges()
	if err != nil {
		return nil, err
	}
	table, grantee, all, err := p.parseGranteeTarget("TO")
	if err != nil {
		return nil, err
	}
	return &sqlast.Grant{Privileges: privs, Table: table, Grantee: grantee, GranteeAll: all}, nil
}

func (p *Parser) parseRevoke() (sqlast.Statement, error) {
	if err := p.expectKeyword("REVOKE"); err != nil {
		return nil, err
	}
	privs, err := p.parsePrivileges()
	if err != nil {
		return nil, err
	}
	table, grantee, all, err := p.parseGranteeTarget("FROM")
	if err != nil {
		return nil, err
	}
	return &sqlast.Revoke{Privileges: privs, Table: table, Grantee: grantee, GranteeAll: all}, nil
}

// ---------------------------------------------------------------- SET SCOPE

// parseSetScope parses the MTSQL scope statement:
//
//	SET SCOPE = "IN (1,3,42)"        -- simple scope
//	SET SCOPE = "IN ()"              -- all tenants
//	SET SCOPE = "FROM t WHERE p"     -- complex scope (§2.1)
//
// The scope text is carried in a double-quoted (or single-quoted) string.
func (p *Parser) parseSetScope() (sqlast.Statement, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SCOPE"); err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind != sqllex.TokString && t.Kind != sqllex.TokIdent {
		return nil, p.errorf("expected quoted scope expression, got %s", t)
	}
	p.pos++
	return ParseScopeText(t.Text)
}

// ParseScopeText parses the contents of a SCOPE string.
func ParseScopeText(text string) (*sqlast.SetScope, error) {
	inner, err := New(text)
	if err != nil {
		return nil, err
	}
	switch {
	case inner.eatKeyword("IN"):
		if err := inner.expectOp("("); err != nil {
			return nil, err
		}
		ss := &sqlast.SetScope{}
		if inner.eatOp(")") {
			ss.All = true // empty IN list = all tenants (§2.1)
			return ss, nil
		}
		for {
			t := inner.peek()
			if t.Kind != sqllex.TokNumber {
				return nil, inner.errorf("expected tenant id in scope, got %s", t)
			}
			id, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return nil, inner.errorf("bad tenant id %q", t.Text)
			}
			inner.pos++
			ss.Simple = append(ss.Simple, id)
			if !inner.eatOp(",") {
				break
			}
		}
		if err := inner.expectOp(")"); err != nil {
			return nil, err
		}
		return ss, nil
	case inner.eatKeyword("FROM"):
		sq := &sqlast.ScopeQuery{}
		for {
			te, err := inner.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sq.From = append(sq.From, te)
			if !inner.eatOp(",") {
				break
			}
		}
		if inner.eatKeyword("WHERE") {
			w, err := inner.parseExpr()
			if err != nil {
				return nil, err
			}
			sq.Where = w
		}
		return &sqlast.SetScope{Complex: sq}, nil
	}
	return nil, fmt.Errorf("sqlparse: scope must start with IN or FROM: %q", text)
}
