// Package sqlparse parses the SQL dialect used by MTBase into sqlast trees.
// It covers everything the 22 TPC-H / MT-H queries need (joins, derived
// tables, correlated subqueries, CASE, LIKE, EXTRACT, SUBSTRING, INTERVAL
// arithmetic, aggregates with DISTINCT, GROUP BY/HAVING/ORDER BY/LIMIT)
// plus the MTSQL extensions: CREATE TABLE with generality/comparability,
// conversion-function annotations, CREATE FUNCTION, SET SCOPE and the
// MT-aware GRANT/REVOKE.
package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqllex"
	"mtbase/internal/sqltypes"
)

// Parser consumes a token stream.
type Parser struct {
	toks []sqllex.Token
	pos  int
	// nextOrdinal numbers anonymous `?` placeholders left to right; they
	// share the $n parameter space (don't mix the two spellings in one
	// statement unless the $n indices deliberately alias `?` slots).
	nextOrdinal int
}

// New returns a parser over src.
func New(src string) (*Parser, error) {
	toks, err := sqllex.Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks}, nil
}

// ParseStatement parses a single statement from src.
func ParseStatement(src string) (sqlast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.eatOp(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %s", p.peek())
	}
	return stmt, nil
}

// ParseStatements parses a ;-separated script.
func ParseStatements(src string) ([]sqlast.Statement, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	var stmts []sqlast.Statement
	for !p.atEOF() {
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.eatOp(";") && !p.atEOF() {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
	return stmts, nil
}

// ParseQuery parses a single SELECT.
func ParseQuery(src string) (*sqlast.Select, error) {
	stmt, err := ParseStatement(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlast.Select)
	if !ok {
		return nil, fmt.Errorf("sqlparse: not a query: %T", stmt)
	}
	return sel, nil
}

// ParseExpr parses a standalone expression (used in tests and for CHECK
// constraint bodies stored as text).
func ParseExpr(src string) (sqlast.Expr, error) {
	p, err := New(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %s", p.peek())
	}
	return e, nil
}

// ---------------------------------------------------------------- helpers

func (p *Parser) peek() sqllex.Token { return p.toks[p.pos] }
func (p *Parser) next() sqllex.Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool        { return p.peek().Kind == sqllex.TokEOF }
func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: "+format, args...)
}

func (p *Parser) isKeyword(words ...string) bool {
	t := p.peek()
	if t.Kind != sqllex.TokKeyword {
		return false
	}
	for _, w := range words {
		if t.Text == w {
			return true
		}
	}
	return false
}

func (p *Parser) eatKeyword(word string) bool {
	if p.isKeyword(word) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(word string) error {
	if !p.eatKeyword(word) {
		return p.errorf("expected %s, got %s", word, p.peek())
	}
	return nil
}

func (p *Parser) isOp(op string) bool {
	t := p.peek()
	return t.Kind == sqllex.TokOp && t.Text == op
}

func (p *Parser) eatOp(op string) bool {
	if p.isOp(op) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.eatOp(op) {
		return p.errorf("expected %q, got %s", op, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != sqllex.TokIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

// identLike accepts identifiers and non-reserved-looking keywords used as
// names (e.g. a column named "year" would lex as keyword YEAR).
func (p *Parser) identLike() (string, bool) {
	t := p.peek()
	if t.Kind == sqllex.TokIdent {
		p.pos++
		return t.Text, true
	}
	return "", false
}

// ---------------------------------------------------------------- statements

func (p *Parser) parseStatement() (sqlast.Statement, error) {
	p.nextOrdinal = 0 // `?` slots are numbered per statement
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("DROP"):
		return p.parseDrop()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("GRANT"):
		return p.parseGrant()
	case p.isKeyword("REVOKE"):
		return p.parseRevoke()
	case p.isKeyword("SET"):
		return p.parseSetScope()
	}
	return nil, p.errorf("unexpected start of statement: %s", p.peek())
}

// ---------------------------------------------------------------- SELECT

func (p *Parser) parseSelect() (*sqlast.Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := sqlast.NewSelect()
	if p.eatKeyword("DISTINCT") {
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.eatOp(",") {
			break
		}
	}
	if p.eatKeyword("FROM") {
		for {
			t, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, t)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.eatKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, g)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
	}
	if p.eatKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Expr: e}
			if p.eatKeyword("DESC") {
				item.Desc = true
			} else {
				p.eatKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if p.eatKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != sqllex.TokNumber {
			return nil, p.errorf("expected LIMIT count, got %s", t)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.Text)
		}
		p.pos++
		sel.Limit = n
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (sqlast.SelectItem, error) {
	if p.eatOp("*") {
		return sqlast.SelectItem{Star: true}, nil
	}
	// t.* form: ident '.' '*'
	if p.peek().Kind == sqllex.TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == sqllex.TokOp && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == sqllex.TokOp && p.toks[p.pos+2].Text == "*" {
		name := p.next().Text
		p.pos += 2
		return sqlast.SelectItem{Star: true, StarTable: name}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.eatKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if a, ok := p.identLike(); ok {
		item.Alias = a
	}
	return item, nil
}

// ---------------------------------------------------------------- FROM

func (p *Parser) parseTableExpr() (sqlast.TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind sqlast.JoinKind
		switch {
		case p.isKeyword("JOIN"):
			p.pos++
			kind = sqlast.JoinInner
		case p.isKeyword("INNER"):
			p.pos++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinInner
		case p.isKeyword("LEFT"):
			p.pos++
			p.eatKeyword("OUTER")
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinLeftOuter
		case p.isKeyword("CROSS"):
			p.pos++
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			kind = sqlast.JoinCross
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		join := &sqlast.JoinExpr{Kind: kind, L: left, R: right}
		if kind != sqlast.JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			join.On = cond
		}
		left = join
	}
}

func (p *Parser) parseTablePrimary() (sqlast.TableExpr, error) {
	if p.eatOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		p.eatKeyword("AS")
		alias, err := p.expectIdent()
		if err != nil {
			return nil, fmt.Errorf("derived table requires an alias: %w", err)
		}
		return &sqlast.DerivedTable{Sub: sub, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &sqlast.TableName{Name: name}
	if p.eatKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t.Alias = a
	} else if a, ok := p.identLike(); ok {
		t.Alias = a
	}
	return t, nil
}

// ---------------------------------------------------------------- expressions

// parseExpr parses with precedence: OR < AND < NOT < predicate < additive
// (+ - ||) < multiplicative (* / %) < unary < primary.
func (p *Parser) parseExpr() (sqlast.Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (sqlast.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "OR", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (sqlast.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.eatKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (sqlast.Expr, error) {
	if p.isKeyword("NOT") && !p.nextIsExistsAfterNot() {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

// nextIsExistsAfterNot lets NOT EXISTS be handled by parsePrimary so the
// AST carries ExistsExpr{Not:true}.
func (p *Parser) nextIsExistsAfterNot() bool {
	t := p.toks[p.pos+1]
	return t.Kind == sqllex.TokKeyword && t.Text == "EXISTS"
}

var comparisonOps = map[string]bool{"=": true, "<>": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parsePredicate() (sqlast.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// comparison
	if t := p.peek(); t.Kind == sqllex.TokOp && comparisonOps[t.Text] {
		op := t.Text
		if op == "!=" {
			op = "<>"
		}
		p.pos++
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.BinaryExpr{Op: op, L: left, R: right}, nil
	}
	not := false
	if p.isKeyword("NOT") {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		nt := p.toks[p.pos+1]
		if nt.Kind == sqllex.TokKeyword && (nt.Text == "IN" || nt.Text == "BETWEEN" || nt.Text == "LIKE") {
			p.pos++
			not = true
		}
	}
	switch {
	case p.eatKeyword("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.isKeyword("SELECT") {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &sqlast.InExpr{X: left, Not: not, Sub: sub}, nil
		}
		var list []sqlast.Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.eatOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.InExpr{X: left, Not: not, List: list}, nil
	case p.eatKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
	case p.eatKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &sqlast.LikeExpr{X: left, Pattern: pat, Not: not}, nil
	case p.eatKeyword("IS"):
		isNot := p.eatKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &sqlast.IsNullExpr{X: left, Not: isNot}, nil
	}
	return left, nil
}

func (p *Parser) parseAdditive() (sqlast.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("+"):
			op = "+"
		case p.isOp("-"):
			op = "-"
		case p.isOp("||"):
			op = "||"
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseMultiplicative() (sqlast.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isOp("*"):
			op = "*"
		case p.isOp("/"):
			op = "/"
		case p.isOp("%"):
			op = "%"
		default:
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &sqlast.BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (sqlast.Expr, error) {
	if p.eatOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &sqlast.UnaryExpr{Op: "-", X: x}, nil
	}
	p.eatOp("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqllex.TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &sqlast.Literal{Val: sqltypes.NewFloat(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &sqlast.Literal{Val: sqltypes.NewInt(i)}, nil
	case sqllex.TokString:
		p.pos++
		return &sqlast.Literal{Val: sqltypes.NewString(t.Text)}, nil
	case sqllex.TokParam:
		p.pos++
		if t.Text == "" { // `?` placeholder: auto-numbered
			p.nextOrdinal++
			return &sqlast.Param{N: p.nextOrdinal}, nil
		}
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 1 {
			return nil, p.errorf("bad parameter $%s", t.Text)
		}
		return &sqlast.Param{N: n}, nil
	case sqllex.TokIdent:
		return p.parseIdentExpr()
	case sqllex.TokKeyword:
		return p.parseKeywordExpr()
	case sqllex.TokOp:
		if t.Text == "(" {
			p.pos++
			if p.isKeyword("SELECT") {
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &sqlast.SubqueryExpr{Sub: sub}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.isOp(",") { // row value constructor: (a, b, ...)
				row := &sqlast.RowExpr{Exprs: []sqlast.Expr{e}}
				for p.eatOp(",") {
					item, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					row.Exprs = append(row.Exprs, item)
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return row, nil
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

func (p *Parser) parseIdentExpr() (sqlast.Expr, error) {
	name := p.next().Text
	// function call?
	if p.isOp("(") {
		return p.parseFuncCall(name)
	}
	// qualified column?
	if p.eatOp(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &sqlast.ColumnRef{Table: name, Name: col}, nil
	}
	return &sqlast.ColumnRef{Name: name}, nil
}

func (p *Parser) parseFuncCall(name string) (sqlast.Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	fc := &sqlast.FuncCall{Name: strings.ToUpper(name)}
	if !isBuiltinName(fc.Name) {
		fc.Name = name // preserve user-function spelling
	}
	if p.eatOp("*") {
		fc.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.eatKeyword("DISTINCT") {
		fc.Distinct = true
	}
	if !p.isOp(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = append(fc.Args, a)
			if !p.eatOp(",") {
				break
			}
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

func isBuiltinName(upper string) bool {
	switch upper {
	case "COUNT", "SUM", "AVG", "MIN", "MAX", "CONCAT", "CHAR_LENGTH", "ABS", "ROUND", "COALESCE":
		return true
	}
	return false
}

func (p *Parser) parseKeywordExpr() (sqlast.Expr, error) {
	t := p.peek()
	switch t.Text {
	case "NULL":
		p.pos++
		return &sqlast.Literal{Val: sqltypes.Null}, nil
	case "TRUE":
		p.pos++
		return &sqlast.Literal{Val: sqltypes.NewBool(true)}, nil
	case "FALSE":
		p.pos++
		return &sqlast.Literal{Val: sqltypes.NewBool(false)}, nil
	case "DATE":
		p.pos++
		lit := p.peek()
		if lit.Kind != sqllex.TokString {
			return nil, p.errorf("expected date literal after DATE, got %s", lit)
		}
		p.pos++
		v, err := sqltypes.ParseDate(lit.Text)
		if err != nil {
			return nil, err
		}
		return &sqlast.Literal{Val: v}, nil
	case "INTERVAL":
		p.pos++
		lit := p.peek()
		if lit.Kind != sqllex.TokString && lit.Kind != sqllex.TokNumber {
			return nil, p.errorf("expected interval quantity, got %s", lit)
		}
		p.pos++
		n, err := strconv.ParseInt(lit.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad interval quantity %q", lit.Text)
		}
		unit := p.peek()
		if unit.Kind != sqllex.TokKeyword || (unit.Text != "DAY" && unit.Text != "MONTH" && unit.Text != "YEAR") {
			return nil, p.errorf("expected DAY/MONTH/YEAR, got %s", unit)
		}
		p.pos++
		return &sqlast.IntervalExpr{N: n, Unit: unit.Text}, nil
	case "CASE":
		return p.parseCase()
	case "EXISTS":
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExistsExpr{Sub: sub}, nil
	case "NOT":
		// NOT EXISTS
		p.pos++
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExistsExpr{Not: true, Sub: sub}, nil
	case "EXTRACT":
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		field := p.peek()
		if field.Kind != sqllex.TokKeyword || (field.Text != "YEAR" && field.Text != "MONTH" && field.Text != "DAY") {
			return nil, p.errorf("expected YEAR/MONTH/DAY in EXTRACT, got %s", field)
		}
		p.pos++
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.ExtractExpr{Field: field.Text, X: x}, nil
	case "SUBSTRING":
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		var from, length sqlast.Expr
		if p.eatKeyword("FROM") {
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.eatKeyword("FOR") {
				length, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		} else if p.eatOp(",") { // SUBSTRING(x, from [, for]) spelling
			from, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.eatOp(",") {
				length, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
		} else {
			return nil, p.errorf("expected FROM in SUBSTRING, got %s", p.peek())
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &sqlast.SubstringExpr{X: x, From: from, For: length}, nil
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		p.pos++
		return p.parseFuncCall(t.Text)
	case "CAST":
		p.pos++
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		tn, err := p.parseTypeName()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		// CAST is represented as a builtin function call CAST_<TYPE>.
		return &sqlast.FuncCall{Name: "CAST_" + tn.Name, Args: []sqlast.Expr{x}}, nil
	}
	return nil, p.errorf("unexpected keyword %s in expression", t)
}

func (p *Parser) parseCase() (sqlast.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &sqlast.CaseExpr{}
	if !p.isKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.eatKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, sqlast.CaseWhen{Cond: cond, Then: then})
	}
	if p.eatKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE without WHEN arms")
	}
	return c, nil
}
