package sqlparse

import (
	"strings"
	"testing"

	"mtbase/internal/sqlast"
)

// roundTrip parses src, serializes, reparses and checks the two serializations
// agree — the property the middleware relies on to ship rewritten SQL.
func roundTrip(t *testing.T, src string) sqlast.Statement {
	t.Helper()
	s1, err := ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	text := s1.String()
	s2, err := ParseStatement(text)
	if err != nil {
		t.Fatalf("reparse %q: %v", text, err)
	}
	if got := s2.String(); got != text {
		t.Fatalf("round trip mismatch:\n first: %s\nsecond: %s", text, got)
	}
	return s1
}

func TestParseSimpleSelect(t *testing.T) {
	sel := roundTrip(t, "SELECT e_name, e_salary FROM Employees WHERE e_age >= 45 ORDER BY e_salary DESC LIMIT 10").(*sqlast.Select)
	if len(sel.Items) != 2 || len(sel.From) != 1 || sel.Where == nil {
		t.Errorf("unexpected shape: %+v", sel)
	}
	if sel.Limit != 10 || !sel.OrderBy[0].Desc {
		t.Errorf("order/limit: %+v", sel)
	}
}

func TestParseStar(t *testing.T) {
	sel := roundTrip(t, "SELECT * FROM Employees").(*sqlast.Select)
	if !sel.Items[0].Star {
		t.Error("star not detected")
	}
	sel = roundTrip(t, "SELECT e.* FROM Employees e").(*sqlast.Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "e" {
		t.Errorf("qualified star: %+v", sel.Items[0])
	}
}

func TestParseJoins(t *testing.T) {
	sel := roundTrip(t, "SELECT c_name FROM customer LEFT OUTER JOIN orders ON c_custkey = o_custkey AND o_comment NOT LIKE '%special%'").(*sqlast.Select)
	j, ok := sel.From[0].(*sqlast.JoinExpr)
	if !ok || j.Kind != sqlast.JoinLeftOuter {
		t.Fatalf("join shape: %T", sel.From[0])
	}
	if j.On == nil {
		t.Error("missing ON condition")
	}
}

func TestParseImplicitJoinList(t *testing.T) {
	sel := roundTrip(t, "SELECT 1 FROM a, b x, c AS y WHERE a.k = x.k").(*sqlast.Select)
	if len(sel.From) != 3 {
		t.Fatalf("from count = %d", len(sel.From))
	}
	if sel.From[1].(*sqlast.TableName).Alias != "x" {
		t.Error("bare alias not parsed")
	}
	if sel.From[2].(*sqlast.TableName).Alias != "y" {
		t.Error("AS alias not parsed")
	}
}

func TestParseGroupHaving(t *testing.T) {
	sel := roundTrip(t, "SELECT l_returnflag, SUM(l_quantity) AS sum_qty FROM lineitem GROUP BY l_returnflag HAVING SUM(l_quantity) > 100").(*sqlast.Select)
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Errorf("group/having: %+v", sel)
	}
}

func TestParseSubqueries(t *testing.T) {
	sel := roundTrip(t, "SELECT p_partkey FROM part WHERE p_size = (SELECT MIN(p_size) FROM part)").(*sqlast.Select)
	cmp := sel.Where.(*sqlast.BinaryExpr)
	if _, ok := cmp.R.(*sqlast.SubqueryExpr); !ok {
		t.Errorf("scalar subquery: %T", cmp.R)
	}

	sel = roundTrip(t, "SELECT 1 FROM orders WHERE EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)").(*sqlast.Select)
	if _, ok := sel.Where.(*sqlast.ExistsExpr); !ok {
		t.Errorf("exists: %T", sel.Where)
	}

	sel = roundTrip(t, "SELECT 1 FROM part WHERE p_brand NOT IN ('a', 'b') AND p_partkey IN (SELECT ps_partkey FROM partsupp)").(*sqlast.Select)
	and := sel.Where.(*sqlast.BinaryExpr)
	if in := and.L.(*sqlast.InExpr); !in.Not || len(in.List) != 2 {
		t.Errorf("not-in list: %+v", and.L)
	}
	if in := and.R.(*sqlast.InExpr); in.Sub == nil {
		t.Errorf("in subquery: %+v", and.R)
	}
}

func TestParseNotExists(t *testing.T) {
	sel := roundTrip(t, "SELECT 1 FROM customer WHERE NOT EXISTS (SELECT 1 FROM orders WHERE o_custkey = c_custkey)").(*sqlast.Select)
	ex, ok := sel.Where.(*sqlast.ExistsExpr)
	if !ok || !ex.Not {
		t.Errorf("not exists: %#v", sel.Where)
	}
}

func TestParseCase(t *testing.T) {
	sel := roundTrip(t, "SELECT SUM(CASE WHEN o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) FROM orders").(*sqlast.Select)
	fc := sel.Items[0].Expr.(*sqlast.FuncCall)
	c := fc.Args[0].(*sqlast.CaseExpr)
	if len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case: %+v", c)
	}
}

func TestParseDateInterval(t *testing.T) {
	sel := roundTrip(t, "SELECT 1 FROM lineitem WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY").(*sqlast.Select)
	if sel.Where == nil {
		t.Fatal("no where")
	}
	if !strings.Contains(sel.Where.String(), "INTERVAL '90' DAY") {
		t.Errorf("interval serialization: %s", sel.Where.String())
	}
}

func TestParseExtractSubstring(t *testing.T) {
	roundTrip(t, "SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year FROM orders")
	roundTrip(t, "SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode FROM customer")
}

func TestParseBetweenLike(t *testing.T) {
	roundTrip(t, "SELECT 1 FROM part WHERE p_size BETWEEN 1 AND 15 AND p_type LIKE '%BRASS'")
	roundTrip(t, "SELECT 1 FROM part WHERE p_size NOT BETWEEN 1 AND 15 AND p_name NOT LIKE 'forest%'")
}

func TestParseAggregates(t *testing.T) {
	sel := roundTrip(t, "SELECT COUNT(*), COUNT(DISTINCT ps_suppkey), AVG(l_quantity) FROM x").(*sqlast.Select)
	if !sel.Items[0].Expr.(*sqlast.FuncCall).Star {
		t.Error("count(*) star")
	}
	if !sel.Items[1].Expr.(*sqlast.FuncCall).Distinct {
		t.Error("count distinct")
	}
}

func TestParseDerivedTable(t *testing.T) {
	sel := roundTrip(t, "SELECT AVG(x.sal) FROM (SELECT e_salary AS sal FROM Employees WHERE e_age >= 45) AS x").(*sqlast.Select)
	d, ok := sel.From[0].(*sqlast.DerivedTable)
	if !ok || d.Alias != "x" {
		t.Fatalf("derived: %T", sel.From[0])
	}
}

func TestParseCreateTableMTSQL(t *testing.T) {
	stmt := roundTrip(t, `CREATE TABLE Employees SPECIFIC (
		E_emp_id INTEGER NOT NULL SPECIFIC,
		E_name VARCHAR(25) NOT NULL COMPARABLE,
		E_role_id INTEGER NOT NULL SPECIFIC,
		E_reg_id INTEGER NOT NULL COMPARABLE,
		E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
		E_age INTEGER NOT NULL COMPARABLE,
		CONSTRAINT pk_emp PRIMARY KEY (E_emp_id),
		CONSTRAINT fk_emp FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id)
	)`)
	ct := stmt.(*sqlast.CreateTable)
	if ct.Generality != sqlast.TenantSpecific {
		t.Error("generality")
	}
	if ct.Columns[4].Comparability != sqlast.Convertible || ct.Columns[4].ToUniversal != "currencyToUniversal" {
		t.Errorf("convertible column: %+v", ct.Columns[4])
	}
	if ct.Columns[1].Comparability != sqlast.Comparable {
		t.Error("comparable column")
	}
	if ct.Columns[0].Comparability != sqlast.Specific {
		t.Error("specific column")
	}
	if len(ct.Constraints) != 2 {
		t.Errorf("constraints: %d", len(ct.Constraints))
	}
}

func TestParseDefaultComparability(t *testing.T) {
	// Attributes of tenant-specific tables default to tenant-specific,
	// attributes of global tables to comparable (§2.2.1).
	ct := roundTrip(t, "CREATE TABLE t SPECIFIC (a INTEGER)").(*sqlast.CreateTable)
	if ct.Columns[0].Comparability != sqlast.Specific {
		t.Error("tenant-specific default")
	}
	ct = roundTrip(t, "CREATE TABLE g (a INTEGER)").(*sqlast.CreateTable)
	if ct.Generality != sqlast.Global || ct.Columns[0].Comparability != sqlast.Comparable {
		t.Error("global default")
	}
}

func TestParseCreateFunction(t *testing.T) {
	stmt := roundTrip(t, `CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
		AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
		LANGUAGE SQL IMMUTABLE`)
	cf := stmt.(*sqlast.CreateFunction)
	if !cf.Immutable || len(cf.ParamTypes) != 2 || cf.Body == nil {
		t.Errorf("function: %+v", cf)
	}
}

func TestParseSetScope(t *testing.T) {
	ss := roundTrip(t, `SET SCOPE = "IN (1, 3, 42)"`).(*sqlast.SetScope)
	if len(ss.Simple) != 3 || ss.Simple[2] != 42 {
		t.Errorf("simple scope: %+v", ss)
	}
	ss = roundTrip(t, `SET SCOPE = "IN ()"`).(*sqlast.SetScope)
	if !ss.All {
		t.Error("empty IN list must mean all tenants")
	}
	ss = roundTrip(t, `SET SCOPE = "FROM Employees WHERE E_salary > 180000"`).(*sqlast.SetScope)
	if ss.Complex == nil || ss.Complex.Where == nil {
		t.Errorf("complex scope: %+v", ss)
	}
}

func TestParseGrantRevoke(t *testing.T) {
	g := roundTrip(t, "GRANT READ ON Employees TO 42").(*sqlast.Grant)
	if g.Table != "Employees" || g.Grantee != 42 {
		t.Errorf("grant: %+v", g)
	}
	g = roundTrip(t, "GRANT READ, INSERT ON DATABASE TO ALL").(*sqlast.Grant)
	if g.Table != "" || !g.GranteeAll || len(g.Privileges) != 2 {
		t.Errorf("grant all: %+v", g)
	}
	r := roundTrip(t, "REVOKE DELETE ON Employees FROM 7").(*sqlast.Revoke)
	if r.Grantee != 7 {
		t.Errorf("revoke: %+v", r)
	}
}

func TestParseDML(t *testing.T) {
	ins := roundTrip(t, "INSERT INTO Roles (R_role_id, R_name) VALUES (0, 'intern'), (1, 'researcher')").(*sqlast.Insert)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	insSel := roundTrip(t, "INSERT INTO Employees (E_name) SELECT E_name FROM Employees WHERE E_age > 40").(*sqlast.Insert)
	if insSel.Sub == nil {
		t.Error("insert-select")
	}
	up := roundTrip(t, "UPDATE Employees SET E_salary = E_salary * 1.1 WHERE E_age > 60").(*sqlast.Update)
	if len(up.Sets) != 1 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
	del := roundTrip(t, "DELETE FROM Employees WHERE E_age > 99").(*sqlast.Delete)
	if del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
}

func TestParseViews(t *testing.T) {
	cv := roundTrip(t, "CREATE VIEW revenue AS SELECT l_suppkey AS supplier_no, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue FROM lineitem GROUP BY l_suppkey").(*sqlast.CreateView)
	if cv.Name != "revenue" {
		t.Errorf("view: %+v", cv)
	}
	roundTrip(t, "DROP VIEW revenue")
	roundTrip(t, "DROP TABLE t")
}

func TestParseStatements(t *testing.T) {
	stmts, err := ParseStatements("SELECT 1; SELECT 2; DROP TABLE t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Errorf("statement count = %d", len(stmts))
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(a + (b * c))" {
		t.Errorf("precedence: %s", e.String())
	}
	e, err = ParseExpr("a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((a = 1) OR ((b = 2) AND (c = 3)))" {
		t.Errorf("bool precedence: %s", e.String())
	}
	e, err = ParseExpr("NOT a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(NOT (a = 1))" {
		t.Errorf("not precedence: %s", e.String())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT 1 FROM",
		"SELECT 1 FROM t WHERE",
		"FROB 1",
		"CREATE TABLE t (a CONVERTIBLE)",
		"SET SCOPE = \"BOGUS\"",
		"SELECT 1 FROM (SELECT 2)", // derived table needs alias
		"INSERT INTO t VALUES",
	}
	for _, src := range bad {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("accepted invalid SQL: %q", src)
		}
	}
}

func TestParseCast(t *testing.T) {
	e, err := ParseExpr("CAST(x AS INTEGER)")
	if err != nil {
		t.Fatal(err)
	}
	fc := e.(*sqlast.FuncCall)
	if fc.Name != "CAST_INTEGER" {
		t.Errorf("cast: %s", fc.Name)
	}
}

func TestCloneIndependence(t *testing.T) {
	sel, err := ParseQuery("SELECT a, b FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	clone := sqlast.CloneSelect(sel)
	clone.Items[0].Expr.(*sqlast.ColumnRef).Name = "mutated"
	if sel.Items[0].Expr.(*sqlast.ColumnRef).Name != "a" {
		t.Error("clone shares memory with original")
	}
	if clone.String() == sel.String() {
		t.Error("mutation did not take effect on clone")
	}
}

func TestQuestionMarkNumbering(t *testing.T) {
	sel, err := ParseQuery("SELECT a FROM t WHERE a > ? AND b < ? AND c = $1")
	if err != nil {
		t.Fatal(err)
	}
	var ns []int
	sqlast.WalkExpr(sel.Where, func(e sqlast.Expr) bool {
		if p, ok := e.(*sqlast.Param); ok {
			ns = append(ns, p.N)
		}
		return true
	})
	if len(ns) != 3 || ns[0] != 1 || ns[1] != 2 || ns[2] != 1 {
		t.Fatalf("param numbering = %v, want [1 2 1]", ns)
	}
	if sqlast.MaxParam(sel) != 2 {
		t.Fatalf("MaxParam = %d, want 2", sqlast.MaxParam(sel))
	}
	// ? numbering restarts per statement in a script.
	stmts, err := ParseStatements("SELECT a FROM t WHERE a = ?; SELECT b FROM t WHERE b = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stmts {
		if got := sqlast.MaxParam(st); got != 1 {
			t.Fatalf("statement %d MaxParam = %d, want 1", i, got)
		}
	}
	// Params render as $n, so rewritten texts stay parameterized.
	if s := sel.String(); !strings.Contains(s, "$1") || !strings.Contains(s, "$2") {
		t.Fatalf("serialized form lost placeholders: %s", s)
	}
}

func TestBadDollarParam(t *testing.T) {
	if _, err := ParseStatement("SELECT a FROM t WHERE a = $0"); err == nil {
		t.Error("$0 accepted")
	}
}
