// Package server exposes an MTBase middleware instance over TCP: one
// tenant-bound session per connection, per-tenant admission control, and —
// when opened over a Store — write-ahead logged durability. The wire
// format lives in internal/wire; a native client in internal/client.
//
// Sessions do exactly what an embedded middleware.Conn does (the
// cross-tenant MTSQL rewrite happens at the session edge, so the engine
// under the server is byte-for-byte the in-process engine), which is what
// makes the differential server tests possible: any query, at any
// optimization level, must return the identical bytes over a socket and
// in process.
package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"mtbase/internal/middleware"
	"mtbase/internal/shard"
)

func newReader(nc net.Conn) *bufio.Reader { return bufio.NewReaderSize(nc, 64<<10) }
func newWriter(nc net.Conn) *bufio.Writer { return bufio.NewWriterSize(nc, 64<<10) }

// Config tunes a Server. The zero value serves unlimited tenants with no
// admission limits and no durability.
type Config struct {
	Name        string // server name sent in HelloOK
	AdminTenant int64  // tenant allowed to run backup/snapshot (the data modeller)
	Limits      Limits
}

// Server accepts connections and runs sessions until Shutdown.
type Server struct {
	backend Backend
	store   *Store // nil = ephemeral
	cfg     Config
	adm     *admission

	mu         sync.Mutex
	cond       *sync.Cond // signalled when inflight hits zero
	ln         net.Listener
	sessions   map[uint64]*session
	nextSID    uint64
	inflight   int
	draining   bool
	statements atomic.Int64

	connWG sync.WaitGroup
}

// New wraps mw (and, optionally, the Store that recovered it) in a Server.
func New(mw *middleware.Server, store *Store, cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "mtserve/1"
	}
	s := &Server{backend: mwBackend{mw}, store: store, cfg: cfg,
		adm: newAdmission(cfg.Limits, nil), sessions: make(map[uint64]*session)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// NewSharded fronts a tenant-partitioned shard.Server. Sharded servers are
// ephemeral — durability (WAL + snapshots) is an unsharded-tier feature —
// and admission attributes per-tenant counters to the owning shard.
func NewSharded(ss *shard.Server, cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "mtserve/1"
	}
	s := &Server{backend: shardBackend{ss}, cfg: cfg,
		adm: newAdmission(cfg.Limits, ss.ShardOf), sessions: make(map[uint64]*session)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Store returns the durability store, or nil for an ephemeral server.
func (s *Server) Store() *Store { return s.store }

// Listen binds addr and starts serving in a background goroutine,
// returning the bound address (useful with ":0").
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	return ln.Addr(), nil
}

// Serve accepts connections on ln until it closes (normally via
// Shutdown). Each connection runs its session on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.isDraining() {
				return nil
			}
			return err
		}
		s.startSession(nc)
	}
}

func (s *Server) startSession(nc net.Conn) {
	ctx, cancel := context.WithCancel(context.Background())
	s.mu.Lock()
	s.nextSID++
	sess := &session{
		srv: s, id: s.nextSID, nc: nc,
		br: newReader(nc), bw: newWriter(nc),
		ctx: ctx, cancel: cancel,
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		sess.run()
		s.mu.Lock()
		delete(s.sessions, sess.id)
		s.mu.Unlock()
	}()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) sessionsOpen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.sessions))
}

// beginStmt admits one statement into the drain accounting; it fails once
// shutdown started (the caller answers CodeDraining).
func (s *Server) beginStmt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight++
	s.statements.Add(1)
	return true
}

func (s *Server) endStmt() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// Shutdown drains gracefully: stop accepting, refuse new statements, let
// in-flight statements finish streaming, then close every connection and
// the durability store. If ctx expires first, in-flight statements are
// cancelled instead of awaited.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}

	drained := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.inflight > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(drained)
	}()
	var timedOut bool
	select {
	case <-drained:
	case <-ctx.Done():
		timedOut = true
	}

	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.cancel()   // aborts anything still running at its batch boundary
		sess.nc.Close() // unblocks the reader
	}
	s.mu.Unlock()
	// cond.Wait above must not strand the drain goroutine.
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.connWG.Wait()

	var err error
	if s.store != nil {
		err = s.store.Close()
	}
	if timedOut && err == nil {
		err = fmt.Errorf("server: drain timed out: %w", context.Cause(ctx))
	}
	return err
}
