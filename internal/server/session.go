package server

// One session per accepted connection. The handshake binds the session to
// a tenant (the cross-tenant rewrite context C / SCOPE / level lives here,
// at the edge, exactly like an in-process middleware.Conn); after it, a
// reader goroutine feeds frames to the session loop so an asynchronous
// Cancel — or the socket dying — can abort the statement in flight at the
// next batch boundary via context cancellation.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
	"mtbase/internal/wal"
	"mtbase/internal/wire"
)

// handshakeTimeout bounds how long an accepted socket may dawdle before
// sending Hello.
const handshakeTimeout = 10 * time.Second

// batchRows and batchBytes bound one RowBatch frame; whichever trips first
// flushes the batch, so cancellation latency and frame size stay bounded
// even for wide rows.
const (
	batchRows  = 256
	batchBytes = 256 << 10
)

type frame struct {
	t       wire.MsgType
	payload []byte
}

type sessStmt struct {
	st      BackendStmt
	args    []sqltypes.Value
	bound   bool
	bindErr *wire.Err // deterministic failure replayed to the pipelined Execute
}

type session struct {
	srv    *Server
	id     uint64
	nc     net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	ctx    context.Context
	cancel context.CancelFunc

	tenant int64
	conn   BackendConn
	scope  string // verbatim SET SCOPE statement in effect; "" = default
	stmts  map[uint32]*sessStmt

	stmtMu     sync.Mutex
	stmtCancel context.CancelFunc // cancels the statement in flight, if any
}

// run drives the session to completion; it owns the socket.
func (s *session) run() {
	defer s.nc.Close()
	defer s.cancel()
	if err := s.handshake(); err != nil {
		return
	}
	defer s.srv.adm.releaseConn(s.tenant)

	frames := make(chan frame, 64)
	go s.readLoop(frames)
	for fr := range frames {
		if !s.dispatch(fr) {
			return
		}
		if err := s.bw.Flush(); err != nil {
			return
		}
	}
}

// readLoop pulls frames off the socket. Cancel is handled here — it must
// work while the session loop is busy streaming — and everything else is
// handed over. A dead socket cancels the session context, which aborts any
// running statement at its next batch boundary.
func (s *session) readLoop(frames chan<- frame) {
	defer close(frames)
	for {
		t, payload, err := wire.ReadFrame(s.br)
		if err != nil {
			s.cancel()
			return
		}
		if t == wire.MsgCancel {
			s.cancelStmt()
			continue
		}
		select {
		case frames <- frame{t, payload}:
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *session) cancelStmt() {
	s.stmtMu.Lock()
	if s.stmtCancel != nil {
		s.stmtCancel()
	}
	s.stmtMu.Unlock()
}

// beginStmtCtx derives the context for one statement and registers its
// cancel function for MsgCancel.
func (s *session) beginStmtCtx() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(s.ctx)
	s.stmtMu.Lock()
	s.stmtCancel = cancel
	s.stmtMu.Unlock()
	return ctx, func() {
		s.stmtMu.Lock()
		s.stmtCancel = nil
		s.stmtMu.Unlock()
		cancel()
	}
}

func (s *session) send(t wire.MsgType, payload []byte) bool {
	return wire.WriteFrame(s.bw, t, payload) == nil
}

func (s *session) sendErr(e *wire.Err) bool {
	return s.send(wire.MsgError, wire.EncodeError(e))
}

// wireErr wraps an arbitrary failure as a typed wire error.
func wireErr(code string, err error) *wire.Err {
	if we, ok := err.(*wire.Err); ok {
		return we
	}
	return &wire.Err{Code: code, Message: err.Error()}
}

// handshake reads Hello, admits the connection and answers HelloOK.
// Handshake failures answer a typed Error and drop the connection.
func (s *session) handshake() error {
	s.nc.SetReadDeadline(time.Now().Add(handshakeTimeout))
	t, payload, err := wire.ReadFrame(s.br)
	if err != nil {
		return err
	}
	fail := func(e *wire.Err) error {
		s.sendErr(e)
		s.bw.Flush()
		return e
	}
	if t != wire.MsgHello {
		return fail(&wire.Err{Code: wire.CodeProtocol, Message: fmt.Sprintf("expected Hello, got %s", t)})
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		return fail(wireErr(wire.CodeProtocol, err))
	}
	if hello.Version < 1 {
		return fail(&wire.Err{Code: wire.CodeProtocol, Message: "client speaks no supported protocol version"})
	}
	version := min(hello.Version, wire.MaxVersion)
	if s.srv.isDraining() {
		return fail(&wire.Err{Code: wire.CodeDraining, Message: "server is shutting down"})
	}
	if e := s.srv.adm.acquireConn(hello.Tenant); e != nil {
		return fail(e)
	}
	// The slot is held from here on; every error return below must give it
	// back (run only defers releaseConn once handshake succeeds), or a
	// client dying mid-handshake leaks a conn slot forever.
	release := func(err error) error {
		s.srv.adm.releaseConn(hello.Tenant)
		return err
	}
	conn, err := s.srv.backend.Connect(hello.Tenant)
	if err != nil {
		return release(fail(wireErr(wire.CodeAuth, err)))
	}
	if hello.Level != "" {
		lv, err := optimizer.ParseLevel(hello.Level)
		if err != nil {
			return release(fail(wireErr(wire.CodeProtocol, err)))
		}
		conn.SetOptLevel(lv)
	}
	s.tenant = hello.Tenant
	s.conn = conn
	s.stmts = make(map[uint32]*sessStmt)
	ok := wire.EncodeHelloOK(wire.HelloOK{Version: version, Server: s.srv.cfg.Name, SessionID: s.id})
	if !s.send(wire.MsgHelloOK, ok) {
		return release(fmt.Errorf("handshake write failed"))
	}
	s.nc.SetReadDeadline(time.Time{})
	if err := s.bw.Flush(); err != nil {
		return release(err)
	}
	return nil
}

// dispatch handles one frame, reporting whether the session survives.
// Statement failures answer a typed Error and keep the session; protocol
// violations answer and close it.
func (s *session) dispatch(fr frame) bool {
	switch fr.t {
	case wire.MsgQuery:
		return s.handleQuery(fr.payload)
	case wire.MsgPrepare:
		return s.handlePrepare(fr.payload)
	case wire.MsgBind:
		return s.handleBind(fr.payload)
	case wire.MsgExecute:
		return s.handleExecute(fr.payload)
	case wire.MsgCloseStmt:
		return s.handleCloseStmt(fr.payload)
	case wire.MsgStats:
		return s.handleStats()
	case wire.MsgSet:
		return s.handleSet(fr.payload)
	case wire.MsgGoodbye:
		return false
	default:
		s.sendErr(&wire.Err{Code: wire.CodeProtocol, Message: fmt.Sprintf("unexpected %s", fr.t)})
		s.bw.Flush()
		return false
	}
}

// admit runs per-tenant admission + draining checks for one statement.
// A non-nil cleanup means the statement was admitted and must be released.
func (s *session) admit() (func(), *wire.Err) {
	if !s.srv.beginStmt() {
		return nil, &wire.Err{Code: wire.CodeDraining, Message: "server is shutting down"}
	}
	if e := s.srv.adm.acquireStmt(s.ctx, s.tenant); e != nil {
		s.srv.endStmt()
		return nil, e
	}
	return func() {
		s.srv.adm.releaseStmt(s.tenant)
		s.srv.endStmt()
	}, nil
}

func (s *session) handleQuery(payload []byte) bool {
	q, err := wire.DecodeQuery(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	done, e := s.admit()
	if e != nil {
		return s.sendErr(e)
	}
	defer done()
	stmt, err := sqlparse.ParseStatement(q.SQL)
	if err != nil {
		return s.sendErr(wireErr(wire.CodeParse, err))
	}
	ctx, finish := s.beginStmtCtx()
	defer finish()
	args := valuesToAny(q.Args)
	switch st := stmt.(type) {
	case *sqlast.Select:
		rows, err := s.conn.QueryContext(ctx, q.SQL, args...)
		if err != nil {
			return s.sendErr(wireErr(wire.CodeExec, err))
		}
		return s.streamRows(ctx, rows)
	case *sqlast.SetScope:
		res, err := s.conn.ExecContext(ctx, q.SQL, args...)
		if err != nil {
			return s.sendErr(wireErr(wire.CodeExec, err))
		}
		s.scope = q.SQL
		return s.sendResult(res)
	default:
		kind, logged := classify(st)
		exec := func() (*engine.Result, error) { return s.conn.ExecContext(ctx, q.SQL, args...) }
		var res *engine.Result
		if logged && s.srv.store != nil {
			res, err = s.srv.store.Apply(kind, s.tenant, s.conn.OptLevel(), s.scope, q.SQL, q.Args, exec)
		} else {
			res, err = exec()
		}
		if err != nil {
			return s.sendErr(s.execErr(ctx, err))
		}
		return s.sendResult(res)
	}
}

// classify sorts a mutating statement into its WAL record kind; the second
// result is false for statements that are not logged (session state,
// scope queries).
func classify(stmt sqlast.Statement) (wal.Kind, bool) {
	switch stmt.(type) {
	case *sqlast.Insert, *sqlast.Update, *sqlast.Delete:
		return wal.KindData, true
	case *sqlast.CreateTable, *sqlast.CreateView, *sqlast.CreateFunction,
		*sqlast.DropTable, *sqlast.DropView, *sqlast.Grant, *sqlast.Revoke:
		return wal.KindSchema, true
	}
	return 0, false
}

// execErr types a statement failure: cancellation (client Cancel or
// disconnect) is distinguished from an execution error.
func (s *session) execErr(ctx context.Context, err error) *wire.Err {
	if ctx.Err() != nil {
		return &wire.Err{Code: wire.CodeCancelled, Message: err.Error()}
	}
	return wireErr(wire.CodeExec, err)
}

func (s *session) handlePrepare(payload []byte) bool {
	p, err := wire.DecodePrepare(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	if _, dup := s.stmts[p.StmtID]; dup {
		return s.sendErr(&wire.Err{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("statement id %d already prepared", p.StmtID)})
	}
	st, err := s.conn.Prepare(p.SQL)
	if err != nil {
		return s.sendErr(wireErr(wire.CodeParse, err))
	}
	s.stmts[p.StmtID] = &sessStmt{st: st}
	ok := wire.EncodePrepareOK(wire.PrepareOK{
		StmtID: p.StmtID, NumParams: uint32(st.NumParams()), IsQuery: st.IsQuery(),
	})
	return s.send(wire.MsgPrepareOK, ok)
}

func (s *session) handleBind(payload []byte) bool {
	b, err := wire.DecodeBind(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	st, ok := s.stmts[b.StmtID]
	if !ok {
		return s.sendErr(&wire.Err{Code: wire.CodeUnknownStmt,
			Message: fmt.Sprintf("bind of unknown statement id %d", b.StmtID)})
	}
	if len(b.Args) != st.st.NumParams() {
		// Remember the failure: the client pipelines Execute behind Bind,
		// and the pipelined Execute must fail deterministically too.
		st.bound, st.args = false, nil
		st.bindErr = &wire.Err{Code: wire.CodeBind,
			Message: fmt.Sprintf("statement wants %d args, got %d", st.st.NumParams(), len(b.Args))}
		return s.sendErr(st.bindErr)
	}
	st.bound, st.args, st.bindErr = true, b.Args, nil
	return s.send(wire.MsgBindOK, wire.EncodeStmtID(b.StmtID))
}

func (s *session) handleExecute(payload []byte) bool {
	e, err := wire.DecodeExecute(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	st, ok := s.stmts[e.StmtID]
	if !ok {
		return s.sendErr(&wire.Err{Code: wire.CodeUnknownStmt,
			Message: fmt.Sprintf("execute of unknown statement id %d", e.StmtID)})
	}
	if st.bindErr != nil {
		return s.sendErr(st.bindErr)
	}
	if !st.bound {
		return s.sendErr(&wire.Err{Code: wire.CodeProtocol,
			Message: fmt.Sprintf("statement id %d executed before bind", e.StmtID)})
	}
	done, adErr := s.admit()
	if adErr != nil {
		return s.sendErr(adErr)
	}
	defer done()
	ctx, finish := s.beginStmtCtx()
	defer finish()
	args := valuesToAny(st.args)
	if st.st.IsQuery() {
		rows, err := st.st.QueryContext(ctx, args...)
		if err != nil {
			return s.sendErr(s.execErr(ctx, err))
		}
		return s.streamRows(ctx, rows)
	}
	if e.WantRows {
		return s.sendErr(&wire.Err{Code: wire.CodeNotQuery,
			Message: fmt.Sprintf("statement id %d is not a query", e.StmtID)})
	}
	exec := func() (*engine.Result, error) { return st.st.ExecContext(ctx, args...) }
	var res *engine.Result
	if s.srv.store != nil {
		res, err = s.srv.store.Apply(wal.KindData, s.tenant, s.conn.OptLevel(), s.scope,
			st.st.SQL(), st.args, exec)
	} else {
		res, err = exec()
	}
	if err != nil {
		return s.sendErr(s.execErr(ctx, err))
	}
	return s.sendResult(res)
}

func (s *session) handleCloseStmt(payload []byte) bool {
	id, err := wire.DecodeStmtID(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	st, ok := s.stmts[id]
	if !ok {
		return s.sendErr(&wire.Err{Code: wire.CodeUnknownStmt,
			Message: fmt.Sprintf("close of unknown statement id %d", id)})
	}
	st.st.Close()
	delete(s.stmts, id)
	return s.send(wire.MsgCloseOK, wire.EncodeStmtID(id))
}

// streamRows pulls the cursor and ships RowHeader / RowBatch* / Done,
// encoding rows straight into the batch buffer (cursor rows may be reused
// by the engine between Next calls). Rows.Close always runs — it is what
// releases spill files and accounted memory — and a mid-stream failure
// (including cancellation) terminates the stream with a typed Error frame.
func (s *session) streamRows(ctx context.Context, rows *engine.Rows) bool {
	defer rows.Close()
	if !s.send(wire.MsgRowHeader, wire.EncodeRowHeader(wire.RowHeader{Cols: rows.Columns()})) {
		return false
	}
	var (
		count int
		body  []byte
		total int64
	)
	flush := func() bool {
		if count == 0 {
			return true
		}
		payload := wire.AppendUvarint(make([]byte, 0, len(body)+4), uint64(count))
		payload = append(payload, body...)
		ok := s.send(wire.MsgRowBatch, payload)
		count, body = 0, body[:0]
		return ok && s.bw.Flush() == nil
	}
	for rows.Next() {
		body = wire.AppendValues(body, rows.Row())
		count++
		total++
		if count >= batchRows || len(body) >= batchBytes {
			if !flush() {
				return false // client gone; Close cleans up spills
			}
		}
	}
	if err := rows.Err(); err != nil {
		return s.sendErr(s.execErr(ctx, err))
	}
	if !flush() {
		return false
	}
	return s.send(wire.MsgDone, wire.EncodeDone(wire.Done{Rows: total}))
}

// sendResult ships a materialized result: row-returning ones as a header
// plus RowBatch frames chunked under the same bounds as streamRows (a
// single batch could exceed MaxFrame for large results), DML as a bare
// Done.
func (s *session) sendResult(res *engine.Result) bool {
	if len(res.Cols) == 0 {
		return s.send(wire.MsgDone, wire.EncodeDone(wire.Done{Affected: int64(res.Affected)}))
	}
	if !s.send(wire.MsgRowHeader, wire.EncodeRowHeader(wire.RowHeader{Cols: res.Cols})) {
		return false
	}
	var (
		count int
		body  []byte
	)
	flush := func() bool {
		if count == 0 {
			return true
		}
		payload := wire.AppendUvarint(make([]byte, 0, len(body)+4), uint64(count))
		payload = append(payload, body...)
		ok := s.send(wire.MsgRowBatch, payload)
		count, body = 0, body[:0]
		return ok && s.bw.Flush() == nil
	}
	for _, row := range res.Rows {
		body = wire.AppendValues(body, row)
		count++
		if count >= batchRows || len(body) >= batchBytes {
			if !flush() {
				return false
			}
		}
	}
	if !flush() {
		return false
	}
	return s.send(wire.MsgDone, wire.EncodeDone(wire.Done{Rows: int64(len(res.Rows))}))
}

// handleStats replies with backend (engine + middleware, or shard) and
// server counters in a stable order (StatsOK is part of the protocol; map
// iteration would leak nondeterminism onto the wire).
func (s *session) handleStats() bool {
	pairs := s.srv.backend.StatPairs()
	pairs = append(pairs,
		wire.StatPair{Name: "server.sessions_open", Value: s.srv.sessionsOpen()},
		wire.StatPair{Name: "server.statements", Value: s.srv.statements.Load()},
	)
	pairs = append(pairs, s.srv.adm.statPairs()...)
	if st := s.srv.store; st != nil {
		pairs = append(pairs,
			wire.StatPair{Name: "wal.last_lsn", Value: int64(st.LastLSN())},
			wire.StatPair{Name: "wal.snapshots", Value: st.Snapshots()},
			wire.StatPair{Name: "wal.recovered", Value: int64(st.Recovered())},
		)
	}
	return s.send(wire.MsgStatsOK, wire.EncodeStatsOK(wire.StatsOK{Pairs: pairs}))
}

// handleSet multiplexes session options and admin operations.
func (s *session) handleSet(payload []byte) bool {
	set, err := wire.DecodeSet(payload)
	if err != nil {
		s.sendErr(wireErr(wire.CodeProtocol, err))
		return false
	}
	switch set.Name {
	case "level":
		lv, err := optimizer.ParseLevel(set.Value)
		if err != nil {
			return s.sendErr(wireErr(wire.CodeUnsupported, err))
		}
		s.conn.SetOptLevel(lv)
		return s.send(wire.MsgSetOK, wire.EncodeSetOK(lv.String()))
	case "explain":
		sel, err := s.conn.RewriteSQL(set.Value)
		if err != nil {
			return s.sendErr(wireErr(wire.CodeParse, err))
		}
		return s.send(wire.MsgSetOK, wire.EncodeSetOK(sel.String()))
	case "backup":
		if e := s.adminOnly(); e != nil {
			return s.sendErr(e)
		}
		n, err := s.srv.store.Backup(set.Value)
		if err != nil {
			return s.sendErr(wireErr(wire.CodeInternal, err))
		}
		return s.send(wire.MsgSetOK, wire.EncodeSetOK(fmt.Sprintf("%d files", n)))
	case "snapshot":
		if e := s.adminOnly(); e != nil {
			return s.sendErr(e)
		}
		lsn, err := s.srv.store.ForceSnapshot()
		if err != nil {
			return s.sendErr(wireErr(wire.CodeInternal, err))
		}
		return s.send(wire.MsgSetOK, wire.EncodeSetOK(fmt.Sprintf("lsn %d", lsn)))
	default:
		return s.sendErr(&wire.Err{Code: wire.CodeUnsupported,
			Message: fmt.Sprintf("unknown option %q", set.Name)})
	}
}

// adminOnly gates durability operations to the admin tenant (the data
// modeller, by default) on a durable server.
func (s *session) adminOnly() *wire.Err {
	if s.tenant != s.srv.cfg.AdminTenant {
		return &wire.Err{Code: wire.CodeAuth,
			Message: fmt.Sprintf("tenant %d may not run durability operations", s.tenant)}
	}
	if s.srv.store == nil {
		return &wire.Err{Code: wire.CodeUnsupported, Message: "server runs without a durability directory"}
	}
	return nil
}
