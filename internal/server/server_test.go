package server_test

// End-to-end acceptance for mtserve: the full MT-H query suite over a real
// TCP socket must return byte-identical results to the in-process
// middleware path at every optimization level; admission control,
// cancellation, graceful shutdown and the Stats message behave per the
// protocol contract.

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mtbase/internal/client"
	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/server"
	"mtbase/internal/wire"
)

// exactKey renders a result order- and type-sensitively: the differential
// claim is byte identity, not multiset equality.
func exactKey(res *engine.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v:%s", v.K, v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

var (
	e2eOnce sync.Once
	e2eInst *mth.Instance
	e2eSrv  *server.Server
	e2eAddr string
	e2eErr  error
)

// e2e lazily builds one shared small instance served over a loopback
// socket; tests share it read-mostly.
func e2e(t *testing.T) (*mth.Instance, string) {
	t.Helper()
	e2eOnce.Do(func() {
		cfg := mth.Config{SF: 0.002, Tenants: 3, Dist: mth.Uniform, Seed: 7, Mode: engine.ModePostgres}
		e2eInst, e2eErr = mth.BuildMT(cfg)
		if e2eErr != nil {
			return
		}
		for c := int64(1); c <= 3; c++ {
			if e2eErr = e2eInst.GrantReadTo(c); e2eErr != nil {
				return
			}
		}
		e2eSrv = server.New(e2eInst.Srv, nil, server.Config{})
		addr, err := e2eSrv.Listen("127.0.0.1:0")
		if err != nil {
			e2eErr = err
			return
		}
		e2eAddr = addr.String()
	})
	if e2eErr != nil {
		t.Fatal(e2eErr)
	}
	return e2eInst, e2eAddr
}

// TestE2EQueriesByteIdentical is the tentpole acceptance test: Q1–Q22 over
// TCP, at every optimization level, against the in-process path on the
// same instance.
func TestE2EQueriesByteIdentical(t *testing.T) {
	inst, addr := e2e(t)
	local, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range optimizer.Levels {
		remote, err := client.Dial(addr, 1, level.String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := remote.Exec(`SET SCOPE = "IN ()"`); err != nil {
			t.Fatal(err)
		}
		local.SetOptLevel(level)
		for _, q := range mth.Queries(inst.Cfg.SF) {
			want, err := mth.RunOnMT(local, q)
			if err != nil {
				t.Fatalf("%s Q%d local: %v", level, q.ID, err)
			}
			for _, s := range q.Setup {
				if _, err := remote.Exec(s); err != nil {
					t.Fatalf("%s Q%d setup: %v", level, q.ID, err)
				}
			}
			got, err := remote.Query(q.SQL)
			for _, s := range q.Teardown {
				if _, terr := remote.Exec(s); terr != nil && err == nil {
					err = terr
				}
			}
			if err != nil {
				t.Fatalf("%s Q%d remote: %v", level, q.ID, err)
			}
			if exactKey(got) != exactKey(want) {
				t.Fatalf("%s Q%d: remote result differs from in-process", level, q.ID)
			}
		}
		remote.Close()
	}
}

func TestE2EPreparedStatements(t *testing.T) {
	inst, addr := e2e(t)
	remote, err := client.Dial(addr, 1, "o3")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.Exec(`SET SCOPE = "IN ()"`); err != nil {
		t.Fatal(err)
	}
	local, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	local.SetOptLevel(optimizer.O3)

	const sql = `SELECT c_custkey, c_name FROM customer WHERE c_acctbal > ? AND c_nationkey < ? ORDER BY c_custkey LIMIT 10`
	rst, err := remote.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	if rst.NumParams() != 2 || !rst.IsQuery() {
		t.Fatalf("prepared meta: %d params, query=%v", rst.NumParams(), rst.IsQuery())
	}
	lst, err := local.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, bal := range []float64{0, 1000, 5000} {
		want, err := lst.QueryResult(bal, int64(20))
		if err != nil {
			t.Fatal(err)
		}
		got, err := rst.QueryResult(bal, int64(20))
		if err != nil {
			t.Fatal(err)
		}
		if exactKey(got) != exactKey(want) {
			t.Fatalf("prepared bal=%v differs", bal)
		}
	}
	// Bind arity failure answers both pipelined replies deterministically,
	// and the connection stays usable.
	if _, err := rst.QueryResult(1.0); wire.ErrCode(err) != wire.CodeBind {
		t.Fatalf("bad arity: %v", err)
	}
	if _, err := rst.QueryResult(0.0, int64(20)); err != nil {
		t.Fatalf("connection unusable after bind error: %v", err)
	}
	if err := rst.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rst.QueryResult(0.0, int64(20)); err == nil {
		t.Fatal("closed statement executed")
	}
}

func TestE2EStatsAndExplain(t *testing.T) {
	_, addr := e2e(t)
	remote, err := client.Dial(addr, 1, "o3")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.Query(`SELECT COUNT(*) FROM customer`); err != nil {
		t.Fatal(err)
	}
	pairs, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, p := range pairs {
		byName[p.Name] = p.Value
	}
	if byName["engine.rows_streamed"] <= 0 {
		t.Fatalf("no engine counters over the wire: %v", pairs)
	}
	if byName["server.statements"] <= 0 || byName["server.sessions_open"] <= 0 {
		t.Fatalf("no server counters: %v", pairs)
	}
	plan, err := remote.Explain(`SELECT c_name FROM customer WHERE c_custkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ttid") {
		t.Fatalf("explain returned no rewritten SQL: %s", plan)
	}
}

func TestE2ETypedErrors(t *testing.T) {
	_, addr := e2e(t)
	remote, err := client.Dial(addr, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.Query(`SELEC nonsense`); wire.ErrCode(err) != wire.CodeParse {
		t.Fatalf("parse error: %v", err)
	}
	if _, err := remote.Query(`SELECT no_such_col FROM customer`); wire.ErrCode(err) != wire.CodeExec {
		t.Fatalf("exec error: %v", err)
	}
	// The session survives statement errors.
	if _, err := remote.Query(`SELECT COUNT(*) FROM customer`); err != nil {
		t.Fatalf("session dead after errors: %v", err)
	}
	if _, err := client.Dial(addr, 999, ""); wire.ErrCode(err) != wire.CodeAuth {
		t.Fatalf("unknown tenant: %v", err)
	}
}

func TestAdmissionLimits(t *testing.T) {
	cfg := mth.Config{SF: 0.001, Tenants: 2, Dist: mth.Uniform, Seed: 1, Mode: engine.ModePostgres}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst.Srv, nil, server.Config{Limits: server.Limits{
		TenantConns: 1,
		StmtRate:    1, StmtBurst: 2, MaxStmtWait: 0,
	}})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	c1, err := client.Dial(addr.String(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := client.Dial(addr.String(), 1, ""); wire.ErrCode(err) != wire.CodeTooManyConns {
		t.Fatalf("second tenant-1 connection: %v", err)
	}
	// A different tenant still connects.
	c2, err := client.Dial(addr.String(), 2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	// Burst of 2 statements passes, the third trips the token bucket.
	var rateErr error
	for i := 0; i < 3; i++ {
		if _, err := c1.Query(`SELECT COUNT(*) FROM customer`); err != nil {
			rateErr = err
			break
		}
	}
	if wire.ErrCode(rateErr) != wire.CodeRateLimited {
		t.Fatalf("rate limit: %v", rateErr)
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	cfg := mth.Config{SF: 0.002, Tenants: 2, Dist: mth.Uniform, Seed: 3, Mode: engine.ModePostgres}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(inst.Srv, nil, server.Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := client.Dial(addr.String(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	// A streaming statement started before Shutdown finishes cleanly.
	rows, err := c.QueryRows(`SELECT c_custkey FROM customer ORDER BY c_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	n := 0
	for rows.Next() {
		n++
	}
	if rows.Err() != nil || n == 0 {
		t.Fatalf("drained stream: n=%d err=%v", n, rows.Err())
	}
	rows.Close()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New connections are refused after shutdown.
	if _, err := client.Dial(addr.String(), 1, ""); err == nil {
		t.Fatal("connected to a stopped server")
	}
}

// TestDisconnectMidQueryCleansSpills is the fault-path acceptance: a
// client that vanishes mid-stream aborts the statement at the next batch
// boundary and every spill file the query produced is released.
func TestDisconnectMidQueryCleansSpills(t *testing.T) {
	cfg := mth.Config{SF: 0.005, Tenants: 2, Dist: mth.Uniform, Seed: 5, Mode: engine.ModePostgres}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(1); c <= 2; c++ {
		if err := inst.GrantReadTo(c); err != nil {
			t.Fatal(err)
		}
	}
	spillDir := t.TempDir()
	db := inst.Srv.DB()
	db.SetSpillDir(spillDir)
	db.SetMemoryLimit(64 << 10) // force spilling on any real sort
	srv := server.New(inst.Srv, nil, server.Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// Raw wire session: handshake, fire a spill-heavy streaming query,
	// read a bit, then slam the socket shut mid-stream.
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	hello := wire.EncodeHello(wire.Hello{Version: wire.MaxVersion, Tenant: 1})
	if err := wire.WriteFrame(nc, wire.MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(nc); err != nil || mt != wire.MsgHelloOK {
		t.Fatalf("handshake: %v %v", mt, err)
	}
	scope := wire.EncodeQuery(wire.Query{SQL: `SET SCOPE = "IN ()"`})
	wire.WriteFrame(nc, wire.MsgQuery, scope)
	if mt, _, err := wire.ReadFrame(nc); err != nil || mt != wire.MsgDone {
		t.Fatalf("scope: %v %v", mt, err)
	}
	q := wire.EncodeQuery(wire.Query{SQL: `SELECT * FROM lineitem ORDER BY l_comment`})
	if err := wire.WriteFrame(nc, wire.MsgQuery, q); err != nil {
		t.Fatal(err)
	}
	if mt, _, err := wire.ReadFrame(nc); err != nil || mt != wire.MsgRowHeader {
		t.Fatalf("header: %v %v", mt, err)
	}
	if mt, _, err := wire.ReadFrame(nc); err != nil || mt != wire.MsgRowBatch {
		t.Fatalf("first batch: %v %v", mt, err)
	}
	nc.Close() // vanish mid-stream

	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, err := os.ReadDir(spillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) == 0 {
			break
		}
		if time.Now().After(deadline) {
			names := make([]string, len(entries))
			for i, e := range entries {
				names[i] = filepath.Join(spillDir, e.Name())
			}
			t.Fatalf("spill files leaked after disconnect: %v", names)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if snap := db.Stats.Snapshot(); snap.SpillRuns == 0 {
		t.Fatal("query did not spill; the test exercised nothing")
	}
}

// TestCancelMidStream exercises the protocol-level Cancel: a context
// cancellation client-side aborts the statement and frees the connection.
func TestCancelMidStream(t *testing.T) {
	_, addr := e2e(t)
	remote, err := client.Dial(addr, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.Exec(`SET SCOPE = "IN ()"`); err != nil {
		t.Fatal(err)
	}
	rows, err := remote.QueryRows(`SELECT * FROM lineitem ORDER BY l_comment`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("early close: %v", err)
	}
	// The connection is immediately reusable.
	res, err := remote.Query(`SELECT COUNT(*) FROM customer`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after cancel: %v", err)
	}
}

