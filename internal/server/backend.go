package server

// Backend abstracts the query-processing tier a Server fronts: the
// unsharded middleware or the tenant-partitioned shard router
// (internal/shard). Sessions talk only to these three interfaces, so the
// wire behavior — streaming, cancellation, prepared statements, typed
// errors — is identical over either tier; the differential server suite
// leans on that.

import (
	"context"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/optimizer"
	"mtbase/internal/shard"
	"mtbase/internal/sqlast"
	"mtbase/internal/wire"
)

// Backend opens tenant sessions and reports tier-level counters.
type Backend interface {
	Connect(ttid int64) (BackendConn, error)
	StatPairs() []wire.StatPair
}

// BackendConn is one tenant-bound session of the tier — the subset of
// middleware.Conn / shard.Conn the server needs.
type BackendConn interface {
	SetOptLevel(optimizer.Level)
	OptLevel() optimizer.Level
	QueryContext(ctx context.Context, sql string, args ...any) (*engine.Rows, error)
	ExecContext(ctx context.Context, sql string, args ...any) (*engine.Result, error)
	RewriteSQL(sql string) (*sqlast.Select, error)
	Prepare(sql string) (BackendStmt, error)
}

// BackendStmt is one prepared statement of the tier.
type BackendStmt interface {
	NumParams() int
	SQL() string
	IsQuery() bool
	Close() error
	QueryContext(ctx context.Context, args ...any) (*engine.Rows, error)
	ExecContext(ctx context.Context, args ...any) (*engine.Result, error)
}

// ---------------------------------------------------------------- middleware

// mwBackend fronts one middleware.Server (the unsharded tier).
type mwBackend struct{ mw *middleware.Server }

func (b mwBackend) Connect(ttid int64) (BackendConn, error) {
	c, err := b.mw.Connect(ttid)
	if err != nil {
		return nil, err
	}
	return mwConn{c}, nil
}

func (b mwBackend) StatPairs() []wire.StatPair {
	es := b.mw.DB().Stats.Snapshot()
	rwHits, rwMisses := b.mw.RewriteCacheStats()
	return []wire.StatPair{
		{Name: "engine.udf_calls", Value: es.UDFCalls},
		{Name: "engine.udf_cache_hits", Value: es.UDFCacheHits},
		{Name: "engine.plan_cache_hits", Value: es.PlanCacheHits},
		{Name: "engine.plan_cache_misses", Value: es.PlanCacheMisses},
		{Name: "engine.plan_cache_invalidations", Value: es.PlanCacheInvalidations},
		{Name: "engine.rows_streamed", Value: es.RowsStreamed},
		{Name: "engine.peak_batch", Value: es.PeakBatch},
		{Name: "engine.spill_runs", Value: es.SpillRuns},
		{Name: "engine.spill_bytes", Value: es.SpillBytes},
		{Name: "engine.peak_mem_bytes", Value: es.PeakMemBytes},
		{Name: "middleware.rewrite_cache_hits", Value: rwHits},
		{Name: "middleware.rewrite_cache_misses", Value: rwMisses},
	}
}

// mwConn adapts *middleware.Conn; only Prepare needs the wrapper (Go has
// no covariant returns).
type mwConn struct{ *middleware.Conn }

func (c mwConn) Prepare(sql string) (BackendStmt, error) { return c.Conn.Prepare(sql) }

// ---------------------------------------------------------------- sharded

// shardBackend fronts a shard.Server (the tenant-partitioned tier).
type shardBackend struct{ ss *shard.Server }

func (b shardBackend) Connect(ttid int64) (BackendConn, error) {
	c, err := b.ss.Connect(ttid)
	if err != nil {
		return nil, err
	}
	return shardConn{c}, nil
}

func (b shardBackend) StatPairs() []wire.StatPair {
	lines := b.ss.StatLines()
	pairs := make([]wire.StatPair, len(lines))
	for i, l := range lines {
		pairs[i] = wire.StatPair{Name: l.Name, Value: l.Value}
	}
	return pairs
}

type shardConn struct{ *shard.Conn }

func (c shardConn) Prepare(sql string) (BackendStmt, error) { return c.Conn.Prepare(sql) }
