package server

// Per-tenant admission control (layered over the engine's memory
// accountant, which bounds what admitted statements may use): connection
// caps keep one tenant from exhausting sockets, a token bucket bounds each
// tenant's statement rate, and an in-flight quota bounds each tenant's
// concurrent statements. All rejections are typed wire errors so clients
// can distinguish "back off" from "broken".

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"mtbase/internal/wire"
)

// Limits configures admission control; zero values mean unlimited.
type Limits struct {
	MaxConns       int           // concurrent connections, all tenants
	TenantConns    int           // concurrent connections per tenant
	StmtRate       float64       // statement tokens per second per tenant
	StmtBurst      int           // token bucket capacity (default: ceil(StmtRate), min 1)
	TenantInflight int           // concurrent in-flight statements per tenant
	MaxStmtWait    time.Duration // longest a statement waits for a token before CodeRateLimited
}

func (l Limits) burst() float64 {
	if l.StmtBurst > 0 {
		return float64(l.StmtBurst)
	}
	if b := float64(int(l.StmtRate + 0.999)); b > 1 {
		return b
	}
	return 1
}

type tenantAdm struct {
	conns    int
	inflight int
	tokens   float64
	last     time.Time
}

// shardAdm accumulates statement-admission outcomes for one shard rank, so
// an operator can see which partition a noisy tenant's pressure lands on.
type shardAdm struct {
	inflight     int
	admitted     int64
	rateWaits    int64
	quotaRejects int64
}

type admission struct {
	lim     Limits
	shardOf func(int64) int // tenant → shard rank; nil = unsharded (rank 0)
	mu      sync.Mutex
	conns   int
	tenants map[int64]*tenantAdm
	shards  map[int]*shardAdm
}

func newAdmission(lim Limits, shardOf func(int64) int) *admission {
	return &admission{lim: lim, shardOf: shardOf,
		tenants: make(map[int64]*tenantAdm), shards: make(map[int]*shardAdm)}
}

func (a *admission) shardLocked(t int64) *shardAdm {
	rank := 0
	if a.shardOf != nil {
		rank = a.shardOf(t)
	}
	sa := a.shards[rank]
	if sa == nil {
		sa = &shardAdm{}
		a.shards[rank] = sa
	}
	return sa
}

func (a *admission) tenant(t int64) *tenantAdm {
	ta := a.tenants[t]
	if ta == nil {
		ta = &tenantAdm{tokens: a.lim.burst(), last: time.Now()}
		a.tenants[t] = ta
	}
	return ta
}

// acquireConn admits one connection for tenant t, or explains why not.
func (a *admission) acquireConn(t int64) *wire.Err {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.lim.MaxConns > 0 && a.conns >= a.lim.MaxConns {
		return &wire.Err{Code: wire.CodeTooManyConns,
			Message: fmt.Sprintf("server connection limit %d reached", a.lim.MaxConns)}
	}
	ta := a.tenant(t)
	if a.lim.TenantConns > 0 && ta.conns >= a.lim.TenantConns {
		return &wire.Err{Code: wire.CodeTooManyConns,
			Message: fmt.Sprintf("tenant %d connection limit %d reached", t, a.lim.TenantConns)}
	}
	a.conns++
	ta.conns++
	return nil
}

func (a *admission) releaseConn(t int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.conns--
	if ta := a.tenants[t]; ta != nil {
		ta.conns--
	}
}

// refill tops up t's bucket for the time elapsed since the last refill.
func (a *admission) refillLocked(ta *tenantAdm, now time.Time) {
	if a.lim.StmtRate <= 0 {
		return
	}
	ta.tokens += now.Sub(ta.last).Seconds() * a.lim.StmtRate
	if b := a.lim.burst(); ta.tokens > b {
		ta.tokens = b
	}
	ta.last = now
}

// acquireStmt admits one statement for tenant t, waiting up to MaxStmtWait
// for a rate token. Quota rejections (too many concurrent statements) are
// immediate. A nil return means the caller must releaseStmt afterwards.
func (a *admission) acquireStmt(ctx context.Context, t int64) *wire.Err {
	deadline := time.Now().Add(a.lim.MaxStmtWait)
	for {
		a.mu.Lock()
		ta := a.tenant(t)
		sa := a.shardLocked(t)
		if a.lim.TenantInflight > 0 && ta.inflight >= a.lim.TenantInflight {
			sa.quotaRejects++
			a.mu.Unlock()
			return &wire.Err{Code: wire.CodeQuota,
				Message: fmt.Sprintf("tenant %d statement quota %d reached", t, a.lim.TenantInflight)}
		}
		if a.lim.StmtRate <= 0 {
			ta.inflight++
			sa.inflight++
			sa.admitted++
			a.mu.Unlock()
			return nil
		}
		now := time.Now()
		a.refillLocked(ta, now)
		if ta.tokens >= 1 {
			ta.tokens--
			ta.inflight++
			sa.inflight++
			sa.admitted++
			a.mu.Unlock()
			return nil
		}
		sa.rateWaits++
		wait := time.Duration((1 - ta.tokens) / a.lim.StmtRate * float64(time.Second))
		a.mu.Unlock()
		if now.Add(wait).After(deadline) {
			return &wire.Err{Code: wire.CodeRateLimited,
				Message: fmt.Sprintf("tenant %d over statement rate %.3g/s", t, a.lim.StmtRate)}
		}
		select {
		case <-ctx.Done():
			return &wire.Err{Code: wire.CodeCancelled, Message: "cancelled while rate limited"}
		case <-time.After(wait):
		}
	}
}

func (a *admission) releaseStmt(t int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ta := a.tenants[t]; ta != nil {
		ta.inflight--
	}
	a.shardLocked(t).inflight--
}

// statPairs reports per-shard admission counters in rank order. Unsharded
// servers attribute everything to rank 0.
func (a *admission) statPairs() []wire.StatPair {
	a.mu.Lock()
	defer a.mu.Unlock()
	ranks := make([]int, 0, len(a.shards))
	for r := range a.shards {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	pairs := make([]wire.StatPair, 0, 4*len(ranks))
	for _, r := range ranks {
		sa := a.shards[r]
		prefix := fmt.Sprintf("admission.shard%d.", r)
		pairs = append(pairs,
			wire.StatPair{Name: prefix + "admitted", Value: sa.admitted},
			wire.StatPair{Name: prefix + "inflight", Value: int64(sa.inflight)},
			wire.StatPair{Name: prefix + "rate_waits", Value: sa.rateWaits},
			wire.StatPair{Name: prefix + "quota_rejects", Value: sa.quotaRejects},
		)
	}
	return pairs
}
