package server_test

// Durability acceptance: a server killed with SIGKILL mid-workload must
// recover from its WAL to a state byte-identical to a clean instance that
// applied the same statement prefix; snapshots must not change the
// recovered bytes (only skip work); online backups must restore.
//
// The SIGKILL test re-executes this test binary as a child server process
// (TestHelperServe) so the kill takes the whole process — fsync claims are
// only worth testing against a process that actually died.

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mtbase/internal/client"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/server"
	"mtbase/internal/wal"
)

// testManifest is the shared shape for durability tests: tiny, two
// tenants, no cross-tenant grants (grants themselves are part of the
// logged workload).
func testManifest() server.Manifest {
	return server.Manifest{SF: 0.001, Tenants: 2, Dist: "uniform", Seed: 11, Mode: "postgres"}
}

// workload returns the i-th statement of the deterministic mixed workload
// and the tenant that issues it. Statement kinds cycle through INSERT,
// UPDATE and DELETE so replay exercises every DML path; every 10th
// statement is issued by tenant 2 so replay restores per-tenant context.
func workload(i int) (int64, string) {
	tenant := int64(1)
	if i%10 == 9 {
		tenant = 2
	}
	key := 100000 + i
	switch i % 3 {
	case 0:
		return tenant, fmt.Sprintf(
			`INSERT INTO customer (c_custkey, c_name, c_address, c_nationkey, c_phone, c_acctbal, c_mktsegment, c_comment) `+
				`VALUES (%d, 'Customer#%d', 'addr %d', %d, '11-%d', %d.25, 'BUILDING', 'recovery workload')`,
			key, key, key, i%25, key, i*3)
	case 1:
		return tenant, fmt.Sprintf(
			`UPDATE customer SET c_acctbal = c_acctbal + %d.5 WHERE c_custkey = %d`, i%7, 100000+i-1)
	default:
		return tenant, fmt.Sprintf(`DELETE FROM customer WHERE c_custkey = %d AND c_acctbal > %d`, 100000+i-2, i*5)
	}
}

// stateKey renders the full query-visible customer state of both tenants
// — row order included (heap order is query-visible for unordered scans,
// and the engine's determinism pins it).
func stateKey(t *testing.T, inst *mth.Instance) string {
	t.Helper()
	var sb strings.Builder
	for tenant := int64(1); tenant <= 2; tenant++ {
		conn, err := inst.Srv.Connect(tenant)
		if err != nil {
			t.Fatal(err)
		}
		res, err := conn.Query(`SELECT * FROM customer`)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(exactKey(res))
	}
	return sb.String()
}

// oracle builds a clean instance from man and applies the first n workload
// statements in process — the ground truth recovery must match.
func oracle(t *testing.T, man server.Manifest, n int) *mth.Instance {
	t.Helper()
	cfg, err := man.Config()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cache := map[int64]*middleware.Conn{}
	for i := 0; i < n; i++ {
		tenant, sql := workload(i)
		c := cache[tenant]
		if c == nil {
			if c, err = inst.Srv.Connect(tenant); err != nil {
				t.Fatal(err)
			}
			cache[tenant] = c
		}
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("oracle stmt %d: %v", i, err)
		}
	}
	return inst
}

func TestDurableRestartByteIdentical(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	st, err := server.OpenStore(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st.Instance().Srv, st, server.Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	conns := map[int64]*client.Conn{}
	for i := 0; i < n; i++ {
		tenant, sql := workload(i)
		c := conns[tenant]
		if c == nil {
			if c, err = client.Dial(addr.String(), tenant, ""); err != nil {
				t.Fatal(err)
			}
			conns[tenant] = c
		}
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	live := stateKey(t, st.Instance())
	for _, c := range conns {
		c.Close()
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	st2, err := server.OpenStore(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Recovered() != n {
		t.Fatalf("recovered %d records, want %d", st2.Recovered(), n)
	}
	if got := stateKey(t, st2.Instance()); got != live {
		t.Fatal("recovered state differs from pre-restart state")
	}
	if got := stateKey(t, oracle(t, man, n)); got != live {
		t.Fatal("recovered state differs from clean-run oracle")
	}
}

func TestSnapshotRecoveryMatchesFullReplay(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	st, err := server.OpenStore(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st.Instance().Srv, st, server.Config{AdminTenant: mth.ModellerTTID})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	admin, err := client.Dial(addr.String(), mth.ModellerTTID, "")
	if err != nil {
		t.Fatal(err)
	}
	// Schema records mix into the log: a view and a grant, which recovery
	// must replay even when heaps come from the snapshot.
	if _, err := admin.Exec(`CREATE VIEW big_balance AS SELECT c_custkey, c_acctbal FROM customer WHERE c_acctbal > 1000`); err != nil {
		t.Fatal(err)
	}
	c1, err := client.Dial(addr.String(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	const half = 16
	for i := 0; i < half; i++ {
		tenant, sql := workload(i)
		if tenant != 1 {
			continue
		}
		if _, err := c1.Exec(sql); err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	if _, err := admin.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(`GRANT READ ON DATABASE TO 2`); err != nil {
		t.Fatal(err)
	}
	for i := half; i < 2*half; i++ {
		tenant, sql := workload(i)
		if tenant != 1 {
			continue
		}
		if _, err := c1.Exec(sql); err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
	}
	live := stateKey(t, st.Instance())
	viewRes, err := c1.Query(`SELECT COUNT(*) FROM big_balance`)
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	admin.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st.Snapshots() != 1 {
		t.Fatalf("snapshots taken: %d", st.Snapshots())
	}

	// Recover with the snapshot...
	withSnap, err := server.OpenStore(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	snapState := stateKey(t, withSnap.Instance())
	conn1, err := withSnap.Instance().Srv.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	viewAfter, err := conn1.Query(`SELECT COUNT(*) FROM big_balance`)
	if err != nil {
		t.Fatalf("view lost in recovery: %v", err)
	}
	withSnap.Close()
	// ...and again with the snapshots deleted: pure WAL replay.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot files on disk")
	}
	for _, s := range snaps {
		os.Remove(s)
	}
	noSnap, err := server.OpenStore(dir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer noSnap.Close()
	if snapState != live {
		t.Fatal("snapshot recovery differs from pre-restart state")
	}
	if got := stateKey(t, noSnap.Instance()); got != snapState {
		t.Fatal("snapshot recovery differs from full WAL replay")
	}
	if exactKey(viewAfter) != exactKey(viewRes) {
		t.Fatal("view results differ after recovery")
	}
}

func TestOnlineBackupRestores(t *testing.T) {
	dir := t.TempDir()
	man := testManifest()
	st, err := server.OpenStore(dir, man, 8)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st.Instance().Srv, st, server.Config{AdminTenant: mth.ModellerTTID})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	c1, err := client.Dial(addr.String(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	for i := 0; i < 20; i++ {
		if tenant, sql := workload(i); tenant == 1 {
			if _, err := c1.Exec(sql); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Backups are gated to the admin tenant.
	if _, err := c1.Backup(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("non-admin backup accepted")
	}
	admin, err := client.Dial(addr.String(), mth.ModellerTTID, "")
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	backupDir := filepath.Join(t.TempDir(), "backup")
	if _, err := admin.Backup(backupDir); err != nil {
		t.Fatal(err)
	}
	// More writes after the backup: the backup must restore the state as
	// of the copy, a prefix of the live history.
	if _, err := c1.Exec(`DELETE FROM customer WHERE c_custkey >= 100000`); err != nil {
		t.Fatal(err)
	}

	restored, err := server.OpenStore(backupDir, man, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	recs, err := wal.ReadAll(dir)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Recovered() >= len(recs) {
		t.Fatalf("backup (%d records) should be a strict prefix of live (%d)", restored.Recovered(), len(recs))
	}
	if got := stateKey(t, restored.Instance()); got != stateKey(t, oracleBackup(t, man, restored.Recovered())) {
		t.Fatal("restored backup differs from oracle prefix")
	}
}

// oracleBackup replays the tenant-1-only workload prefix used by the
// backup test.
func oracleBackup(t *testing.T, man server.Manifest, n int) *mth.Instance {
	t.Helper()
	cfg, err := man.Config()
	if err != nil {
		t.Fatal(err)
	}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := inst.Srv.Connect(1)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	for i := 0; applied < n; i++ {
		tenant, sql := workload(i)
		if tenant != 1 {
			continue
		}
		if _, err := conn.Exec(sql); err != nil {
			t.Fatal(err)
		}
		applied++
	}
	return inst
}

// TestHelperServe is not a test: it is the child server process for
// TestKillNineRecovers, selected via environment.
func TestHelperServe(t *testing.T) {
	dir := os.Getenv("MTSERVE_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process for TestKillNineRecovers")
	}
	st, err := server.OpenStore(dir, testManifest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st.Instance().Srv, st, server.Config{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("HELPER_ADDR %s\n", addr)
	os.Stdout.Sync()
	time.Sleep(5 * time.Minute) // parent SIGKILLs long before this
}

// TestKillNineRecovers: SIGKILL the serving process mid-workload; the WAL
// must recover exactly the acknowledged prefix, byte-identical to a clean
// run of the same statements.
func TestKillNineRecovers(t *testing.T) {
	if os.Getenv("MTSERVE_HELPER_DIR") != "" {
		t.Skip("inside helper")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperServe$", "-test.v")
	cmd.Env = append(os.Environ(), "MTSERVE_HELPER_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	var addr string
	scan := bufio.NewScanner(stdout)
	for scan.Scan() {
		if rest, ok := strings.CutPrefix(scan.Text(), "HELPER_ADDR "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatal("helper never printed its address")
	}

	c1, err := client.Dial(addr, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := client.Dial(addr, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	acked := 0
	for i := 0; i < n; i++ {
		tenant, sql := workload(i)
		c := c1
		if tenant == 2 {
			c = c2
		}
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("stmt %d: %v", i, err)
		}
		acked++ // Exec returned: the record is fsynced
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL, no shutdown path runs
		t.Fatal(err)
	}
	cmd.Wait()

	st, err := server.OpenStore(dir, testManifest(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Recovered() != acked {
		t.Fatalf("recovered %d records, acked %d", st.Recovered(), acked)
	}
	if got, want := stateKey(t, st.Instance()), stateKey(t, oracle(t, testManifest(), acked)); got != want {
		t.Fatal("state recovered after SIGKILL differs from clean-run oracle")
	}
}
