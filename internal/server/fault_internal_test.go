package server

// Regression tests for fault paths that need package internals: admission
// slot accounting across handshake failures, and snapshot WaitGroup
// accounting across WAL sync failures.

import (
	"bufio"
	"context"
	"net"
	"testing"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/wal"
	"mtbase/internal/wire"
)

// TestHandshakeFailureReleasesConnSlot: a client that vanishes between
// Hello and the HelloOK flush must not leak its admission slot — with
// TenantConns=1 a leaked slot locks the tenant out forever. net.Pipe makes
// the flush failure deterministic: the peer closes before reading HelloOK.
func TestHandshakeFailureReleasesConnSlot(t *testing.T) {
	cfg := mth.Config{SF: 0.001, Tenants: 1, Dist: mth.Uniform, Seed: 1, Mode: engine.ModePostgres}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(inst.Srv, nil, Config{Limits: Limits{TenantConns: 1}})

	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess := &session{
		srv: srv, id: 1, nc: serverSide,
		br: bufio.NewReader(serverSide), bw: bufio.NewWriter(serverSide),
		ctx: ctx, cancel: cancel,
	}
	done := make(chan error, 1)
	go func() { done <- sess.handshake() }()
	hello := wire.EncodeHello(wire.Hello{Version: wire.MaxVersion, Tenant: 1})
	if err := wire.WriteFrame(clientSide, wire.MsgHello, hello); err != nil {
		t.Fatal(err)
	}
	clientSide.Close() // vanish before reading HelloOK; the server's flush fails
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("handshake succeeded against a closed pipe")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handshake did not return")
	}
	if e := srv.adm.acquireConn(1); e != nil {
		t.Fatalf("conn slot leaked by failed handshake: %v", e)
	}
	srv.adm.releaseConn(1)
}

// TestApplySyncFailureUnwindsSnapshotTrigger: a WAL sync failure on a
// record that tripped the snapshot trigger must not strand snapWG — before
// the fix, Store.Close (and so Server.Shutdown) deadlocked forever.
func TestApplySyncFailureUnwindsSnapshotTrigger(t *testing.T) {
	man := Manifest{SF: 0.001, Tenants: 1, Dist: string(mth.Uniform), Seed: 1, Mode: "postgres"}
	st, err := OpenStore(t.TempDir(), man, 1) // snapshot after every record
	if err != nil {
		t.Fatal(err)
	}
	// Kill the segment fd. The next Append still lands in the bufio buffer
	// and succeeds; the Sync flush then fails against the closed file.
	if err := st.log.Close(); err != nil {
		t.Fatal(err)
	}
	exec := func() (*engine.Result, error) { return &engine.Result{Affected: 1}, nil }
	if _, err := st.Apply(wal.KindData, 1, 0, "", "INSERT INTO t VALUES (1)", nil, exec); err == nil {
		t.Fatal("Apply acknowledged a write the log could not sync")
	}
	done := make(chan struct{})
	go func() {
		st.Close() // errors (log is dead) but must not hang on snapWG.Wait
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Store.Close deadlocked on the stranded snapshot WaitGroup")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.snapping {
		t.Fatal("snapping flag left set by the failed trigger")
	}
}
