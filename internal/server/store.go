package server

// Store is the durability side of mtserve: it owns the WAL, the snapshot
// schedule and the recovery path, and serializes every mutating statement
// so WAL order equals apply order.
//
// The base MT-H state is not logged. MANIFEST.json records the generator
// configuration (scale factor, tenant count, distribution, seed, engine
// mode); mth.BuildMT is deterministic, so recovery rebuilds the identical
// base state from the manifest and only the statements executed over the
// wire need the log. A record is appended only after its statement
// executed successfully — failed statements have no effects to redo — and
// the client is acknowledged only after the record is fsynced.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
	"mtbase/internal/wal"
)

// Manifest describes how to rebuild a server's base state. It is written
// once when a durability directory is initialized; on later opens the
// stored manifest wins over command-line flags.
type Manifest struct {
	Version  int     `json:"version"`
	SF       float64 `json:"sf"`
	Tenants  int     `json:"tenants"`
	Dist     string  `json:"dist"`
	Seed     int64   `json:"seed"`
	Mode     string  `json:"mode"` // "postgres" or "system-c"
	GrantAll bool    `json:"grant_all"`
}

// Config converts the manifest into the generator configuration.
func (m Manifest) Config() (mth.Config, error) {
	cfg := mth.Config{
		SF:      m.SF,
		Tenants: m.Tenants,
		Dist:    mth.Distribution(m.Dist),
		Seed:    m.Seed,
	}
	switch m.Mode {
	case "postgres", "":
		cfg.Mode = engine.ModePostgres
	case "system-c":
		cfg.Mode = engine.ModeSystemC
	default:
		return cfg, fmt.Errorf("server: manifest mode %q (want postgres or system-c)", m.Mode)
	}
	return cfg, nil
}

const manifestName = "MANIFEST.json"

// Store combines a WAL, a snapshot schedule and the live instance the
// records replay against.
type Store struct {
	dir  string
	man  Manifest
	log  *wal.Log
	inst *mth.Instance

	// mu serializes mutating statements: holding it across execute+append
	// makes WAL order equal apply order, and lets the snapshotter pin all
	// heaps at one record boundary.
	mu        sync.Mutex
	sinceSnap int  // records appended since the last snapshot
	snapEvery int  // snapshot after this many records; 0 disables
	snapping  bool // a snapshot goroutine is in flight

	snapWG    sync.WaitGroup
	snapshots atomic.Int64 // snapshots written since open
	recovered int          // records replayed at open
}

// OpenStore opens (or initializes) the durability directory dir and
// returns a Store whose instance has been recovered to the last
// acknowledged state: base state from the manifest, heaps from the newest
// valid snapshot, everything after from WAL replay. snapEvery is the
// number of logged records between automatic snapshots (0 disables them).
func OpenStore(dir string, man Manifest, snapEvery int) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	stored, err := readManifest(dir)
	switch {
	case err == nil:
		man = stored
	case os.IsNotExist(err):
		man.Version = 1
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	default:
		return nil, err
	}
	cfg, err := man.Config()
	if err != nil {
		return nil, err
	}
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		return nil, fmt.Errorf("server: rebuild base state: %w", err)
	}
	if man.GrantAll {
		for t := int64(1); t <= int64(cfg.Tenants); t++ {
			if err := inst.GrantReadTo(t); err != nil {
				return nil, err
			}
		}
	}
	log, recs, err := wal.Open(dir)
	if err != nil {
		return nil, err
	}
	snap, err := wal.ReadLatestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	st := &Store{dir: dir, man: man, log: log, inst: inst, snapEvery: snapEvery}
	if err := st.replay(recs, snap); err != nil {
		log.Close()
		return nil, err
	}
	return st, nil
}

// Instance returns the recovered live instance.
func (st *Store) Instance() *mth.Instance { return st.inst }

// Manifest returns the effective manifest (the stored one, on reopen).
func (st *Store) Manifest() Manifest { return st.man }

// Dir returns the durability directory.
func (st *Store) Dir() string { return st.dir }

// Recovered reports how many WAL records replayed at open.
func (st *Store) Recovered() int { return st.recovered }

// LastLSN reports the most recently appended LSN.
func (st *Store) LastLSN() uint64 { return st.log.LastLSN() }

// Snapshots reports how many snapshots were written since open.
func (st *Store) Snapshots() int64 { return st.snapshots.Load() }

// Apply runs one mutating statement through the durability path: execute
// under the store lock, append a record describing the execution exactly
// (tenant, level, scope, text, bind values), then group-commit fsync
// before returning. Failed statements are not logged — they have no
// effects — and their error returns immediately.
func (st *Store) Apply(kind wal.Kind, tenant int64, level optimizer.Level, scope, sql string,
	args []sqltypes.Value, exec func() (*engine.Result, error)) (*engine.Result, error) {
	st.mu.Lock()
	res, err := exec()
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	lsn, err := st.log.Append(&wal.Record{
		Kind: kind, Tenant: tenant, Level: uint8(level), Scope: scope, SQL: sql, Args: args,
	})
	if err != nil {
		st.mu.Unlock()
		return nil, err
	}
	st.sinceSnap++
	trigger := st.snapEvery > 0 && st.sinceSnap >= st.snapEvery && !st.snapping
	if trigger {
		st.snapping = true
		st.sinceSnap = 0
		st.snapWG.Add(1)
	}
	st.mu.Unlock()

	if err := st.log.Sync(lsn); err != nil {
		// The statement applied in memory but is not durable; surfacing
		// the error (instead of acknowledging) keeps the contract that
		// every acknowledged write is recovered. A pending snapshot trigger
		// must be unwound — its Add would never be matched by Done and
		// Close's Wait would hang — and re-armed for the next durable record.
		if trigger {
			st.mu.Lock()
			st.snapping = false
			st.sinceSnap = st.snapEvery
			st.mu.Unlock()
			st.snapWG.Done()
		}
		return nil, err
	}
	if trigger {
		go st.snapshot()
	}
	return res, nil
}

// snapshot pins every heap at the current record boundary (pointer reads
// under the store lock, cheap thanks to copy-on-write heaps) and
// serializes them concurrently with new writes.
func (st *Store) snapshot() {
	defer st.snapWG.Done()
	st.mu.Lock()
	lsn, tables := st.pinHeapsLocked()
	st.mu.Unlock()
	st.writeSnapshot(lsn, tables)
	st.mu.Lock()
	st.snapping = false
	st.mu.Unlock()
}

// ForceSnapshot writes a snapshot of the current state synchronously and
// returns the LSN it covers.
func (st *Store) ForceSnapshot() (uint64, error) {
	st.mu.Lock()
	lsn, tables := st.pinHeapsLocked()
	st.sinceSnap = 0
	st.mu.Unlock()
	return lsn, st.writeSnapshot(lsn, tables)
}

func (st *Store) pinHeapsLocked() (uint64, []wal.TableDump) {
	db := st.inst.Srv.DB()
	names := db.TableNames()
	tables := make([]wal.TableDump, 0, len(names))
	for _, name := range names {
		tables = append(tables, wal.TableDump{Name: name, Rows: db.Table(name).Heap()})
	}
	return st.log.LastLSN(), tables
}

func (st *Store) writeSnapshot(lsn uint64, tables []wal.TableDump) error {
	// Every record the snapshot covers must be durable before the
	// snapshot exists: recovery trusts a snapshot's LSN unconditionally.
	if err := st.log.Sync(lsn); err != nil {
		return err
	}
	if _, err := wal.WriteSnapshot(st.dir, &wal.Snapshot{LSN: lsn, Tables: tables}); err != nil {
		return err
	}
	st.snapshots.Add(1)
	return nil
}

// Backup copies the durability directory into dst (online; no quiescing)
// after making everything appended so far durable.
func (st *Store) Backup(dst string) (int, error) {
	if err := st.log.Sync(st.log.LastLSN()); err != nil {
		return 0, err
	}
	return wal.Backup(st.dir, dst)
}

// Close waits out any in-flight snapshot and closes the log (final fsync).
func (st *Store) Close() error {
	st.snapWG.Wait()
	return st.log.Close()
}

// replay applies recovered records to the freshly rebuilt base state.
// With a snapshot: schema-class records up to the snapshot LSN replay
// first (they shape catalog and privilege state outside the heaps), the
// snapshot heaps are installed wholesale, and records after the snapshot
// LSN replay in full. Replay reproduces each record's session context —
// tenant, optimization level, SET SCOPE statement — exactly; the engine's
// deterministic execution does the rest.
func (st *Store) replay(recs []wal.Record, snap *wal.Snapshot) error {
	conns := make(map[string]*middleware.Conn)
	session := func(tenant int64, scope string) (*middleware.Conn, error) {
		key := fmt.Sprintf("%d\x00%s", tenant, scope)
		if c, ok := conns[key]; ok {
			return c, nil
		}
		c, err := st.inst.Srv.Connect(tenant)
		if err != nil {
			return nil, err
		}
		if scope != "" {
			if _, err := c.Exec(scope); err != nil {
				return nil, fmt.Errorf("server: replay scope %q: %w", scope, err)
			}
		}
		conns[key] = c
		return c, nil
	}
	st.recovered = len(recs)
	installed := snap == nil
	install := func() error {
		db := st.inst.Srv.DB()
		for _, t := range snap.Tables {
			tab := db.Table(t.Name)
			if tab == nil {
				return fmt.Errorf("server: snapshot table %s missing after schema replay", t.Name)
			}
			tab.ReplaceRows(t.Rows)
		}
		installed = true
		return nil
	}
	ctx := context.Background()
	for i := range recs {
		rec := &recs[i]
		if !installed {
			if rec.LSN > snap.LSN {
				if err := install(); err != nil {
					return err
				}
			} else if rec.Kind == wal.KindData {
				continue // heap effects come from the snapshot
			}
		}
		c, err := session(rec.Tenant, rec.Scope)
		if err != nil {
			return err
		}
		c.SetOptLevel(optimizer.Level(rec.Level))
		if _, err := c.ExecContext(ctx, rec.SQL, valuesToAny(rec.Args)...); err != nil {
			// Only successful statements are logged; a replay failure
			// means the directory does not match its manifest.
			return fmt.Errorf("server: replay LSN %d (%s): %w", rec.LSN, rec.SQL, err)
		}
	}
	if !installed {
		if err := install(); err != nil {
			return err
		}
	}
	return nil
}

func valuesToAny(vals []sqltypes.Value) []any {
	if len(vals) == 0 {
		return nil
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		out[i] = v
	}
	return out
}

func readManifest(dir string) (Manifest, error) {
	var m Manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("server: %s: %w", manifestName, err)
	}
	return m, nil
}

func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	//mtlint:ignore spillsafe durability-directory manifest, not a spill file; removed on every exit path and renamed over MANIFEST.json on success
	tmp, err := os.CreateTemp(dir, "manifest-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, manifestName))
}
