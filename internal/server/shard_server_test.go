package server_test

// End-to-end acceptance for the sharded backend: mtserve fronting a
// shard.Server must return byte-identical results over TCP to the
// in-process sharded session, expose shard routing counters and per-shard
// admission counters through Stats, and keep the full prepared-statement
// surface working across the scatter/gather path.

import (
	"strings"
	"sync"
	"testing"

	"mtbase/internal/client"
	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/server"
	"mtbase/internal/wire"
)

var (
	shE2EOnce sync.Once
	shE2EInst *mth.ShardedInstance
	shE2EAddr string
	shE2EErr  error
)

// shardE2E stands up one shared 2-shard instance over a loopback socket.
// Five uniform tenants hash onto both shards, so cross-tenant queries
// genuinely scatter.
func shardE2E(t *testing.T) (*mth.ShardedInstance, string) {
	t.Helper()
	shE2EOnce.Do(func() {
		cfg := mth.Config{SF: 0.002, Tenants: 5, Dist: mth.Uniform, Seed: 7, Mode: engine.ModePostgres}
		shE2EInst, shE2EErr = mth.BuildMTSharded(cfg, 2)
		if shE2EErr != nil {
			return
		}
		for c := int64(1); c <= 5; c++ {
			if shE2EErr = shE2EInst.GrantReadTo(c); shE2EErr != nil {
				return
			}
		}
		srv := server.NewSharded(shE2EInst.Srv, server.Config{})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			shE2EErr = err
			return
		}
		shE2EAddr = addr.String()
	})
	if shE2EErr != nil {
		t.Fatal(shE2EErr)
	}
	return shE2EInst, shE2EAddr
}

// TestShardedE2EByteIdentical compares the wire path against the in-process
// sharded session (which the mth differential suite already pins to the
// unsharded oracle) across routing shapes: partial-agg pushdown (Q1, Q6),
// merge-gather joins (Q12) and the repartition fallback (Q22).
func TestShardedE2EByteIdentical(t *testing.T) {
	inst, addr := shardE2E(t)
	local, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range []optimizer.Level{optimizer.Canonical, optimizer.O4} {
		remote, err := client.Dial(addr, 1, level.String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := remote.Exec(`SET SCOPE = "IN ()"`); err != nil {
			t.Fatal(err)
		}
		local.SetOptLevel(level)
		for _, id := range []int{1, 6, 12, 22} {
			q, err := mth.QueryByID(inst.Cfg.SF, id)
			if err != nil {
				t.Fatal(err)
			}
			want, err := mth.RunOnMT(local, q)
			if err != nil {
				t.Fatalf("%s Q%d local: %v", level, id, err)
			}
			got, err := remote.Query(q.SQL)
			if err != nil {
				t.Fatalf("%s Q%d remote: %v", level, id, err)
			}
			if exactKey(got) != exactKey(want) {
				t.Fatalf("%s Q%d: wire result differs from in-process sharded", level, id)
			}
		}
		remote.Close()
	}
}

func TestShardedE2EPreparedAndStats(t *testing.T) {
	inst, addr := shardE2E(t)
	remote, err := client.Dial(addr, 1, "o3")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	if _, err := remote.Exec(`SET SCOPE = "IN ()"`); err != nil {
		t.Fatal(err)
	}
	local, err := inst.Connect(1, "IN ()")
	if err != nil {
		t.Fatal(err)
	}
	local.SetOptLevel(optimizer.O3)

	// A parameterized cross-tenant scan: prepared on the server, routed per
	// execution, byte-identical to the in-process prepared path.
	const sql = `SELECT c_custkey, c_name FROM customer WHERE c_acctbal > ? ORDER BY c_custkey LIMIT 10`
	rst, err := remote.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	lst, err := local.Prepare(sql)
	if err != nil {
		t.Fatal(err)
	}
	for _, bal := range []float64{0, 2500} {
		want, err := lst.QueryResult(bal)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rst.QueryResult(bal)
		if err != nil {
			t.Fatal(err)
		}
		if exactKey(got) != exactKey(want) {
			t.Fatalf("prepared bal=%v differs over the wire", bal)
		}
	}

	pairs, err := remote.Stats()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]int64{}
	for _, p := range pairs {
		byName[p.Name] = p.Value
	}
	if byName["shard.shards"] != 2 {
		t.Fatalf("shard.shards = %d over the wire: %v", byName["shard.shards"], pairs)
	}
	if byName["shard.routed_scatter"] <= 0 {
		t.Fatalf("no scatter routing visible in Stats: %v", pairs)
	}
	if byName["shard0.rows_streamed"] <= 0 || byName["shard1.rows_streamed"] <= 0 {
		t.Fatalf("per-shard engine counters missing: %v", pairs)
	}
	if byName["admission.shard0.admitted"]+byName["admission.shard1.admitted"] <= 0 {
		t.Fatalf("per-shard admission counters missing: %v", pairs)
	}
	if byName["server.statements"] <= 0 {
		t.Fatalf("server counters missing: %v", pairs)
	}

	// Explain goes through the shard session's rewriter.
	plan, err := remote.Explain(`SELECT c_name FROM customer WHERE c_custkey = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "ttid") {
		t.Fatalf("explain returned no rewritten SQL: %s", plan)
	}
}

// TestShardedE2EWritesAndDurabilityGate: single-tenant writes route over
// the wire, and durability operations are typed-unsupported on a sharded
// (ephemeral) server.
func TestShardedE2EWritesAndDurabilityGate(t *testing.T) {
	inst, addr := shardE2E(t)
	remote, err := client.Dial(addr, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	res, err := remote.Exec(`INSERT INTO region (r_regionkey, r_name, r_comment) VALUES (91, 'E2E', 'wire')`)
	if err != nil || res.Affected != 1 {
		t.Fatalf("global insert over wire: affected=%d err=%v", res.Affected, err)
	}
	// Global writes replicate to every shard and the replica.
	for rank, mw := range inst.Srv.Shards() {
		r, err := mw.DB().ExecSQL(`SELECT COUNT(*) FROM region WHERE r_regionkey = 91`)
		if err != nil || r.Rows[0][0].I != 1 {
			t.Fatalf("shard %d missing replicated global row: %v %v", rank, r, err)
		}
	}
	cnt, err := remote.Query(`SELECT COUNT(*) FROM region`)
	if err != nil || cnt.Rows[0][0].I != 6 {
		t.Fatalf("region count after wire insert: %v %v", cnt, err)
	}
	if _, err := remote.Exec(`DELETE FROM region WHERE r_regionkey = 91`); err != nil {
		t.Fatal(err)
	}
	// Sharded servers run without a Store: durability ops are typed errors,
	// not panics (non-admin tenants are refused before the store check).
	if _, err := remote.Snapshot(); wire.ErrCode(err) != wire.CodeAuth {
		t.Fatalf("snapshot on sharded server: %v", err)
	}
}
