package client

// Prepared statements over the wire. Statement ids are client-assigned so
// Bind and Execute pipeline in one network flush; the server replays a
// failed Bind deterministically to the pipelined Execute, so the client
// reads exactly one reply per request either way.

import (
	"context"
	"fmt"

	"mtbase/internal/engine"
	"mtbase/internal/wire"
)

// Stmt is a prepared statement bound to its Conn.
type Stmt struct {
	c       *Conn
	id      uint32
	sql     string
	nParams int
	isQuery bool
	closed  bool
}

// Prepare parses one statement server-side and returns a reusable handle.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextStmt++
	id := c.nextStmt
	c.mu.Unlock()
	p := wire.EncodePrepare(wire.Prepare{StmtID: id, SQL: sql})
	if err := c.writeFrames(frameOut{wire.MsgPrepare, p}); err != nil {
		return nil, err
	}
	t, payload, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if t != wire.MsgPrepareOK {
		return nil, fmt.Errorf("client: unexpected %s in Prepare reply", t)
	}
	ok, err := wire.DecodePrepareOK(payload)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: ok.StmtID, sql: sql, nParams: int(ok.NumParams), isQuery: ok.IsQuery}, nil
}

// NumParams returns the number of bind parameters the statement expects.
func (st *Stmt) NumParams() int { return st.nParams }

// SQL returns the statement text.
func (st *Stmt) SQL() string { return st.sql }

// IsQuery reports whether the statement returns rows.
func (st *Stmt) IsQuery() bool { return st.isQuery }

// Close releases the server-side handle.
func (st *Stmt) Close() error {
	if st.closed {
		return nil
	}
	st.closed = true
	if err := st.c.acquire(); err != nil {
		return err
	}
	if err := st.c.writeFrames(frameOut{wire.MsgCloseStmt, wire.EncodeStmtID(st.id)}); err != nil {
		return err
	}
	t, _, err := st.c.readReply()
	if err != nil {
		return err
	}
	if t != wire.MsgCloseOK {
		return fmt.Errorf("client: unexpected %s in Close reply", t)
	}
	return nil
}

// bindExecute pipelines Bind+Execute in one flush and consumes the Bind
// reply, leaving the Execute reply on the wire.
func (st *Stmt) bindExecute(args []any, wantRows bool) error {
	if st.closed {
		return fmt.Errorf("client: statement closed")
	}
	vals, err := bindArgs(args)
	if err != nil {
		return err
	}
	if err := st.c.acquire(); err != nil {
		return err
	}
	b := wire.EncodeBind(wire.Bind{StmtID: st.id, Args: vals})
	e := wire.EncodeExecute(wire.Execute{StmtID: st.id, WantRows: wantRows})
	if err := st.c.writeFrames(frameOut{wire.MsgBind, b}, frameOut{wire.MsgExecute, e}); err != nil {
		return err
	}
	t, _, err := st.c.readReply()
	if err != nil {
		// Bind failed; the server answers the pipelined Execute with the
		// same error — consume it so the connection stays in lockstep.
		st.c.readReply()
		return err
	}
	if t != wire.MsgBindOK {
		return fmt.Errorf("client: unexpected %s in Bind reply", t)
	}
	return nil
}

// Query executes a prepared query with the given bind values, streaming.
func (st *Stmt) Query(args ...any) (*Rows, error) {
	return st.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*Rows, error) {
	if err := st.bindExecute(args, true); err != nil {
		return nil, err
	}
	return st.c.startRows(ctx)
}

// QueryResult executes a prepared query and materializes the result.
func (st *Stmt) QueryResult(args ...any) (*engine.Result, error) {
	rows, err := st.Query(args...)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// Exec executes prepared DML (or a query, materialized) and returns the
// result.
func (st *Stmt) Exec(args ...any) (*engine.Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*engine.Result, error) {
	if err := st.bindExecute(args, st.isQuery); err != nil {
		return nil, err
	}
	rows, err := st.c.startRows(ctx)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}
