package client

// Rows is the streaming cursor over a remote result. It mirrors
// engine.Rows: Columns / Next / Row / Err / Close, with Close safe to call
// early — an early Close cancels the statement server-side and drains the
// stream, so the connection is immediately reusable and no spill files
// leak on the server.

import (
	"context"

	"mtbase/internal/engine"
	"mtbase/internal/sqltypes"
	"mtbase/internal/wire"
)

// Rows streams a remote result set.
type Rows struct {
	c    *Conn
	ctx  context.Context
	cols []string

	batch [][]sqltypes.Value
	pos   int
	cur   []sqltypes.Value

	done      bool // terminator received, connection released
	closed    bool
	cancelled bool // we asked for the abort; suppress the Cancelled error
	err       error
	affected  int64
	total     int64

	stopWatch chan struct{}
}

// watch arms ctx-driven cancellation for the statement this Rows streams.
func (r *Rows) watch() {
	if r.ctx == nil || r.ctx.Done() == nil {
		return
	}
	r.stopWatch = make(chan struct{})
	go func(stop <-chan struct{}) {
		select {
		case <-r.ctx.Done():
			r.c.sendCancel()
		case <-stop:
		}
	}(r.stopWatch)
}

func (r *Rows) unwatch() {
	if r.stopWatch != nil {
		close(r.stopWatch)
		r.stopWatch = nil
	}
}

// mapErr converts a server-side Cancelled error into the context's error
// when our context caused it, and suppresses it after an early Close.
func (r *Rows) mapErr(err error) error {
	if wire.ErrCode(err) == wire.CodeCancelled {
		if r.cancelled {
			return nil
		}
		if r.ctx != nil && r.ctx.Err() != nil {
			return r.ctx.Err()
		}
	}
	return err
}

// Columns returns the column labels (nil for row-less statements).
func (r *Rows) Columns() []string { return r.cols }

// Affected returns the affected-row count of a row-less statement.
func (r *Rows) Affected() int64 { return r.affected }

// Row returns the current row; valid until the next Next call.
func (r *Rows) Row() []sqltypes.Value { return r.cur }

// Err returns the error that terminated the stream, if any.
func (r *Rows) Err() error { return r.err }

// Next advances to the next row.
func (r *Rows) Next() bool {
	if r.closed || r.done || r.err != nil {
		return false
	}
	for r.pos >= len(r.batch) {
		t, payload, err := r.c.readReply()
		if err != nil {
			r.terminate(r.mapErr(err))
			return false
		}
		switch t {
		case wire.MsgRowBatch:
			b, err := wire.DecodeRowBatch(payload)
			if err != nil {
				r.terminate(err)
				return false
			}
			r.batch, r.pos = b.Rows, 0
		case wire.MsgDone:
			d, err := wire.DecodeDone(payload)
			if err == nil {
				r.affected = d.Affected
			}
			r.terminate(err)
			return false
		default:
			r.terminate(&wire.Err{Code: wire.CodeProtocol, Message: "unexpected " + t.String() + " mid-stream"})
			return false
		}
	}
	r.cur = r.batch[r.pos]
	r.pos++
	r.total++
	return true
}

// terminate records the stream end and releases the connection.
func (r *Rows) terminate(err error) {
	if r.err == nil {
		r.err = err
	}
	r.done = true
	r.unwatch()
	r.c.mu.Lock()
	if r.c.cursor == r {
		r.c.cursor = nil
	}
	r.c.mu.Unlock()
}

// Close releases the cursor. Called before the stream finished, it cancels
// the statement on the server and drains the remaining frames; like
// engine.Rows, an abandoned (not failed) stream leaves Err nil.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if !r.done {
		r.cancelled = true
		r.c.sendCancel()
		for {
			t, _, err := r.c.readReply()
			if err != nil {
				r.terminate(r.mapErr(err))
				break
			}
			if t == wire.MsgDone {
				r.terminate(nil)
				break
			}
		}
	}
	r.unwatch()
	return r.err
}

// collect drains the stream into a materialized engine.Result.
func (r *Rows) collect() (*engine.Result, error) {
	res := &engine.Result{Cols: r.cols, Affected: int(r.affected)}
	for r.Next() {
		row := make([]sqltypes.Value, len(r.cur))
		copy(row, r.cur)
		res.Rows = append(res.Rows, row)
	}
	r.Close()
	if r.err != nil {
		return nil, r.err
	}
	res.Affected = int(r.affected)
	return res, nil
}
