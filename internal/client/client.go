// Package client is the native mtserve client: the Conn / Stmt / Rows API
// of an in-process middleware.Conn, spoken over the internal/wire protocol
// instead of function calls. Results use the same engine.Result and
// sqltypes.Value types, so code (and tests) can swap an embedded
// connection for a remote one and compare outputs byte for byte.
//
// A Conn is a single session and, like its in-process counterpart, is not
// safe for concurrent use — except Cancel-driven aborts: closing a Rows
// mid-stream or cancelling a QueryContext sends an asynchronous Cancel
// that the server honors at the next row-batch boundary.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
	"mtbase/internal/wire"
)

// Conn is one open session with an mtserve server.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex // serializes socket writes (Cancel races the request path)
	bw  *bufio.Writer

	mu       sync.Mutex
	cursor   *Rows // open streaming result, if any
	nextStmt uint32
	closed   bool

	tenant    int64
	version   uint32
	server    string
	sessionID uint64
}

// DialTimeout bounds connection establishment and the handshake.
const DialTimeout = 10 * time.Second

// Dial connects to an mtserve server at addr and binds the session to
// tenant. level may be empty for the server default, or any
// optimizer.Level name ("canonical", "o1" … "o4", "inline-only").
func Dial(addr string, tenant int64, level string) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc: nc, br: bufio.NewReaderSize(nc, 64<<10), bw: bufio.NewWriterSize(nc, 64<<10),
		tenant: tenant,
	}
	nc.SetDeadline(time.Now().Add(DialTimeout))
	hello := wire.EncodeHello(wire.Hello{Version: wire.MaxVersion, Tenant: tenant, Level: level})
	if err := c.writeFrames(frameOut{wire.MsgHello, hello}); err != nil {
		nc.Close()
		return nil, err
	}
	t, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: handshake: %w", err)
	}
	switch t {
	case wire.MsgHelloOK:
		ok, err := wire.DecodeHelloOK(payload)
		if err != nil {
			nc.Close()
			return nil, err
		}
		c.version, c.server, c.sessionID = ok.Version, ok.Server, ok.SessionID
	case wire.MsgError:
		e, derr := wire.DecodeError(payload)
		nc.Close()
		if derr != nil {
			return nil, derr
		}
		return nil, e
	default:
		nc.Close()
		return nil, fmt.Errorf("client: handshake: unexpected %s", t)
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

// C returns the tenant this session is bound to.
func (c *Conn) C() int64 { return c.tenant }

// Server returns the server name from the handshake.
func (c *Conn) Server() string { return c.server }

// SessionID returns the server-assigned session id.
func (c *Conn) SessionID() uint64 { return c.sessionID }

// Close ends the session.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.writeFrames(frameOut{wire.MsgGoodbye, nil}) // best effort
	return c.nc.Close()
}

type frameOut struct {
	t       wire.MsgType
	payload []byte
}

// writeFrames ships frames in one flush (the pipelining primitive:
// Bind+Execute travel together).
func (c *Conn) writeFrames(frames ...frameOut) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for _, f := range frames {
		if err := wire.WriteFrame(c.bw, f.t, f.payload); err != nil {
			return err
		}
	}
	return c.bw.Flush()
}

// sendCancel asks the server to abort the statement in flight. Safe to
// call concurrently with the request path.
func (c *Conn) sendCancel() { c.writeFrames(frameOut{wire.MsgCancel, nil}) }

// acquire marks the connection busy for one request; it fails while a
// streaming result is open.
func (c *Conn) acquire() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("client: connection closed")
	}
	if c.cursor != nil {
		return fmt.Errorf("client: connection busy: a streaming result is open (close it first)")
	}
	return nil
}

// readReply reads one reply frame, decoding Error frames into *wire.Err.
func (c *Conn) readReply() (wire.MsgType, []byte, error) {
	t, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return 0, nil, err
	}
	if t == wire.MsgError {
		e, derr := wire.DecodeError(payload)
		if derr != nil {
			return 0, nil, derr
		}
		return t, nil, e
	}
	return t, payload, nil
}

func bindArgs(args []any) ([]sqltypes.Value, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqltypes.Value, len(args))
	for i, a := range args {
		v, err := sqltypes.BindValue(a)
		if err != nil {
			return nil, fmt.Errorf("client: arg %d: %w", i+1, err)
		}
		out[i] = v
	}
	return out, nil
}

// Exec runs one statement (any kind) and returns its materialized result.
func (c *Conn) Exec(sql string, args ...any) (*engine.Result, error) {
	return c.ExecContext(context.Background(), sql, args...)
}

// ExecContext is Exec with cancellation: ctx expiry sends Cancel and the
// server aborts the statement at its next batch boundary.
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...any) (*engine.Result, error) {
	rows, err := c.QueryContext(ctx, sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// Query runs a statement and returns its materialized result, failing for
// statements that return no rows.
func (c *Conn) Query(sql string, args ...any) (*engine.Result, error) {
	res, err := c.Exec(sql, args...)
	if err != nil {
		return nil, err
	}
	if res.Cols == nil {
		return nil, &wire.Err{Code: wire.CodeNotQuery, Message: "statement returned no rows"}
	}
	return res, nil
}

// QueryRows runs a statement and streams its result.
func (c *Conn) QueryRows(sql string, args ...any) (*Rows, error) {
	return c.QueryContext(context.Background(), sql, args...)
}

// QueryContext streams a statement's result with cancellation. For
// row-less statements the returned Rows has nil Columns and is already
// exhausted; Result() (or collect via ExecContext) carries the affected
// count.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...any) (*Rows, error) {
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	if err := c.acquire(); err != nil {
		return nil, err
	}
	q := wire.EncodeQuery(wire.Query{SQL: sql, Args: vals})
	if err := c.writeFrames(frameOut{wire.MsgQuery, q}); err != nil {
		return nil, err
	}
	return c.startRows(ctx)
}

// startRows reads the head of a statement reply: RowHeader begins a
// stream, Done ends a row-less statement, Error fails it.
func (c *Conn) startRows(ctx context.Context) (*Rows, error) {
	rows := &Rows{c: c, ctx: ctx}
	rows.watch()
	t, payload, err := c.readReply()
	if err != nil {
		rows.unwatch()
		return nil, rows.mapErr(err)
	}
	switch t {
	case wire.MsgRowHeader:
		h, err := wire.DecodeRowHeader(payload)
		if err != nil {
			rows.unwatch()
			return nil, err
		}
		rows.cols = h.Cols
		c.mu.Lock()
		c.cursor = rows
		c.mu.Unlock()
		return rows, nil
	case wire.MsgDone:
		d, err := wire.DecodeDone(payload)
		rows.unwatch()
		if err != nil {
			return nil, err
		}
		rows.done = true
		rows.affected = d.Affected
		return rows, nil
	default:
		rows.unwatch()
		return nil, fmt.Errorf("client: unexpected %s at statement start", t)
	}
}

// SetOptLevel switches the session's optimization level.
func (c *Conn) SetOptLevel(l optimizer.Level) error {
	_, err := c.set("level", l.String())
	return err
}

// Explain returns the cross-tenant rewrite of a query as SQL text.
func (c *Conn) Explain(sql string) (string, error) { return c.set("explain", sql) }

// Backup runs an online backup of the server's durability directory into
// dir (a path on the server's filesystem). Admin tenant only.
func (c *Conn) Backup(dir string) (string, error) { return c.set("backup", dir) }

// Snapshot forces a durability snapshot. Admin tenant only.
func (c *Conn) Snapshot() (string, error) { return c.set("snapshot", "") }

func (c *Conn) set(name, value string) (string, error) {
	if err := c.acquire(); err != nil {
		return "", err
	}
	if err := c.writeFrames(frameOut{wire.MsgSet, wire.EncodeSet(wire.Set{Name: name, Value: value})}); err != nil {
		return "", err
	}
	t, payload, err := c.readReply()
	if err != nil {
		return "", err
	}
	if t != wire.MsgSetOK {
		return "", fmt.Errorf("client: unexpected %s in Set reply", t)
	}
	return wire.DecodeSetOK(payload)
}

// Stats fetches the server's counter snapshot (engine, middleware, server
// and WAL counters, in stable order).
func (c *Conn) Stats() ([]wire.StatPair, error) {
	if err := c.acquire(); err != nil {
		return nil, err
	}
	if err := c.writeFrames(frameOut{wire.MsgStats, nil}); err != nil {
		return nil, err
	}
	t, payload, err := c.readReply()
	if err != nil {
		return nil, err
	}
	if t != wire.MsgStatsOK {
		return nil, fmt.Errorf("client: unexpected %s in Stats reply", t)
	}
	ok, err := wire.DecodeStatsOK(payload)
	return ok.Pairs, err
}
