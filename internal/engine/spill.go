package engine

// This file implements the disk overflow path pipeline breakers take when
// the statement memory accountant (accountant.go) reports the budget
// exceeded:
//
//   - a value/row codec (appendSpillValue / readSpillRec) that round-trips
//     sqltypes values bit-exactly (float payloads travel as raw IEEE bits),
//   - run files behind an injectable filesystem hook (spillFS) so tests can
//     fail writes and reads mid-run,
//   - an exec-wide registry that guarantees every temp file is removed by
//     Rows.Close / statement end even when an operator errors before its
//     own Close runs,
//   - partWriter, an unsorted partition file (Grace hash join), and
//   - spiller, the external stable merge sort: records accumulate in memory,
//     overflow as stably-sorted runs, and drain through a k-way merge where
//     the earlier run wins ties — so run order preserves arrival order and
//     the merged stream is byte-identical to one global stable sort.
//
// Everything here is created lazily: a statement under the default
// unlimited budget never touches this file.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"mtbase/internal/sqltypes"
)

// ---------------------------------------------------------------- spill FS

// spillFile is one temporary overflow file: written once front to back,
// then re-read any number of times, then removed.
type spillFile interface {
	io.Writer
	// finish flushes and closes the write side; the file becomes readable.
	finish() error
	// open returns a fresh reader over the finished file.
	open() (io.ReadCloser, error)
	// remove deletes the file; idempotent.
	remove() error
}

// spillFS creates spill files. The engine uses osSpillFS; fault-injection
// tests swap in an implementation that fails mid-run.
type spillFS interface {
	create(dir string) (spillFile, error)
}

type osSpillFS struct{}

type osSpillFile struct {
	f       *os.File
	path    string
	removed bool
}

func (osSpillFS) create(dir string) (spillFile, error) {
	f, err := os.CreateTemp(dir, "mtbase-spill-*")
	if err != nil {
		return nil, err
	}
	return &osSpillFile{f: f, path: f.Name()}, nil
}

func (s *osSpillFile) Write(p []byte) (int, error) { return s.f.Write(p) }

func (s *osSpillFile) finish() error {
	err := s.f.Close()
	s.f = nil
	return err
}

func (s *osSpillFile) open() (io.ReadCloser, error) { return os.Open(s.path) }

func (s *osSpillFile) remove() error {
	if s.removed {
		return nil
	}
	s.removed = true
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	return os.Remove(s.path)
}

// ---------------------------------------------------------------- registry

// spillRegistry tracks every live spill file of one statement. Operators
// remove their files in Close, but error paths can abandon half-built
// subtrees before the tree exists (e.g. a build-side drain failing during
// tree construction) — releaseSpills at statement end / Rows.Close is the
// backstop that removes whatever is left.
type spillRegistry struct {
	mu    sync.Mutex
	files map[spillFile]struct{}
}

func (r *spillRegistry) register(f spillFile) {
	r.mu.Lock()
	if r.files == nil {
		r.files = make(map[spillFile]struct{})
	}
	r.files[f] = struct{}{}
	r.mu.Unlock()
}

func (r *spillRegistry) deregister(f spillFile) {
	r.mu.Lock()
	delete(r.files, f)
	r.mu.Unlock()
}

// removeAll deletes every still-registered file.
func (r *spillRegistry) removeAll() {
	r.mu.Lock()
	files := r.files
	r.files = nil
	r.mu.Unlock()
	for f := range files {
		f.remove()
	}
}

// newSpillFile creates a registered spill file using the DB's configured
// directory and filesystem hook, counting it in Stats.SpillRuns.
func (ex *exec) newSpillFile() (spillFile, error) {
	fs := ex.db.spillfs
	if fs == nil {
		fs = osSpillFS{}
	}
	f, err := fs.create(ex.db.spillDir)
	if err != nil {
		return nil, fmt.Errorf("engine: spill: %w", err)
	}
	ex.spills.register(f)
	atomic.AddInt64(&ex.db.Stats.SpillRuns, 1)
	return f, nil
}

// dropSpillFile removes a file and forgets it.
func (ex *exec) dropSpillFile(f spillFile) {
	if f == nil {
		return
	}
	f.remove()
	ex.spills.deregister(f)
}

// releaseSpills removes every spill file the statement still holds. Called
// from Rows.Close and at the end of a top-level query execution; idempotent.
func (ex *exec) releaseSpills() {
	if ex.spills != nil {
		ex.spills.removeAll()
	}
}

// ---------------------------------------------------------------- codec

// spillRec is one spilled record: an ordering/partitioning key, an optional
// sequence number (arrival order, probe order, group rank — whatever the
// spilling operator sorts or regroups by), the row itself, and optional
// ORDER BY key columns travelling with the row.
type spillRec struct {
	seq  int64
	key  []byte
	row  []sqltypes.Value
	keys []sqltypes.Value
}

// appendSpillValue appends the exact binary image of v: kind byte plus a
// kind-specific payload. Floats travel as raw IEEE-754 bits so decoded
// values are bit-identical to the in-memory ones.
func appendSpillValue(buf []byte, v sqltypes.Value) []byte {
	buf = append(buf, byte(v.K))
	switch v.K {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindDate:
		buf = binary.AppendVarint(buf, v.I)
	case sqltypes.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case sqltypes.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case sqltypes.KindBool:
		b := byte(0)
		if v.I != 0 {
			b = 1
		}
		buf = append(buf, b)
	case sqltypes.KindInterval:
		buf = binary.AppendVarint(buf, v.I)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	}
	return buf
}

var errSpillCorrupt = fmt.Errorf("engine: spill: corrupt record")

// readSpillValue decodes one value from buf, returning the remainder.
func readSpillValue(buf []byte) (sqltypes.Value, []byte, error) {
	if len(buf) == 0 {
		return sqltypes.Null, nil, errSpillCorrupt
	}
	k := sqltypes.Kind(buf[0])
	buf = buf[1:]
	var v sqltypes.Value
	v.K = k
	switch k {
	case sqltypes.KindNull:
	case sqltypes.KindInt, sqltypes.KindDate:
		i, n := binary.Varint(buf)
		if n <= 0 {
			return sqltypes.Null, nil, errSpillCorrupt
		}
		v.I, buf = i, buf[n:]
	case sqltypes.KindFloat:
		if len(buf) < 8 {
			return sqltypes.Null, nil, errSpillCorrupt
		}
		v.F, buf = math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:]
	case sqltypes.KindString:
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return sqltypes.Null, nil, errSpillCorrupt
		}
		v.S, buf = string(buf[n:n+int(l)]), buf[n+int(l):]
	case sqltypes.KindBool:
		if len(buf) < 1 {
			return sqltypes.Null, nil, errSpillCorrupt
		}
		v.I, buf = int64(buf[0]), buf[1:]
	case sqltypes.KindInterval:
		i, n := binary.Varint(buf)
		if n <= 0 || len(buf)-n < 8 {
			return sqltypes.Null, nil, errSpillCorrupt
		}
		v.I = i
		v.F = math.Float64frombits(binary.LittleEndian.Uint64(buf[n:]))
		buf = buf[n+8:]
	}
	return v, buf, nil
}

// appendSpillRec appends the length-delimited encoding of rec. Value lists
// encode length+1 so a nil slice (0) stays distinct from an empty one (1):
// zero-width relations (SELECT with no FROM) carry empty non-nil rows.
func appendSpillRec(buf []byte, rec *spillRec) []byte {
	var payload []byte
	payload = binary.AppendVarint(payload, rec.seq)
	payload = binary.AppendUvarint(payload, uint64(len(rec.key)))
	payload = append(payload, rec.key...)
	payload = appendSpillVals(payload, rec.row)
	payload = appendSpillVals(payload, rec.keys)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	return append(buf, payload...)
}

func appendSpillVals(buf []byte, vals []sqltypes.Value) []byte {
	if vals == nil {
		return binary.AppendUvarint(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(vals))+1)
	for _, v := range vals {
		buf = appendSpillValue(buf, v)
	}
	return buf
}

func readSpillVals(buf []byte) ([]sqltypes.Value, []byte, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, errSpillCorrupt
	}
	buf = buf[w:]
	if n == 0 {
		return nil, buf, nil
	}
	vals := make([]sqltypes.Value, n-1)
	var err error
	for i := range vals {
		vals[i], buf, err = readSpillValue(buf)
		if err != nil {
			return nil, nil, err
		}
	}
	return vals, buf, nil
}

// spillReader streams records back from a finished spill file.
type spillReader struct {
	rc  io.ReadCloser
	br  *bufio.Reader
	buf []byte
}

func openSpillReader(f spillFile) (*spillReader, error) {
	rc, err := f.open()
	if err != nil {
		return nil, fmt.Errorf("engine: spill: %w", err)
	}
	return &spillReader{rc: rc, br: bufio.NewReaderSize(rc, 64<<10)}, nil
}

// next decodes the next record into rec, reporting (false, nil) at EOF.
func (r *spillReader) next(rec *spillRec) (bool, error) {
	n, err := binary.ReadUvarint(r.br)
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("engine: spill: %w", err)
	}
	if uint64(cap(r.buf)) < n {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return false, fmt.Errorf("engine: spill: %w", err)
	}
	buf := r.buf
	seq, w := binary.Varint(buf)
	if w <= 0 {
		return false, errSpillCorrupt
	}
	buf = buf[w:]
	kl, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) < kl {
		return false, errSpillCorrupt
	}
	key := append([]byte(nil), buf[w:w+int(kl)]...)
	buf = buf[w+int(kl):]
	row, buf, err := readSpillVals(buf)
	if err != nil {
		return false, err
	}
	keys, _, err := readSpillVals(buf)
	if err != nil {
		return false, err
	}
	rec.seq, rec.key, rec.row, rec.keys = seq, key, row, keys
	return true, nil
}

func (r *spillReader) close() {
	if r.rc != nil {
		r.rc.Close()
		r.rc = nil
	}
}

// ---------------------------------------------------------------- partitions

// partWriter is one unsorted partition file (Grace hash join): records are
// appended in arrival order and read back in the same order.
type partWriter struct {
	ex   *exec
	file spillFile
	bw   *bufio.Writer
	buf  []byte
	n    int64 // records written
}

// write appends rec, creating the file lazily on first use.
func (p *partWriter) write(rec *spillRec) error {
	if p.file == nil {
		f, err := p.ex.newSpillFile()
		if err != nil {
			return err
		}
		p.file = f
		p.bw = bufio.NewWriterSize(f, 64<<10)
	}
	p.buf = appendSpillRec(p.buf[:0], rec)
	if _, err := p.bw.Write(p.buf); err != nil {
		return fmt.Errorf("engine: spill: %w", err)
	}
	atomic.AddInt64(&p.ex.db.Stats.SpillBytes, int64(len(p.buf)))
	p.n++
	return nil
}

// finish closes the write side; a nil-file partition stays empty.
func (p *partWriter) finish() error {
	if p.file == nil {
		return nil
	}
	if err := p.bw.Flush(); err != nil {
		return fmt.Errorf("engine: spill: %w", err)
	}
	if err := p.file.finish(); err != nil {
		return fmt.Errorf("engine: spill: %w", err)
	}
	return nil
}

func (p *partWriter) open() (*spillReader, error) { return openSpillReader(p.file) }

func (p *partWriter) drop() {
	if p.file != nil {
		p.ex.dropSpillFile(p.file)
		p.file = nil
	}
}

// ---------------------------------------------------------------- spiller

// spiller is the external stable merge sort shared by the sort, group-by,
// distinct and join overflow paths. Records accumulate in memory (charged
// by the caller); flush writes the buffer as one stably-sorted run; drain
// merges all runs plus the still-buffered remainder with earlier-run-wins
// tie breaking. Because each run is a contiguous arrival-order segment and
// the in-memory remainder is the newest segment, ties resolve to arrival
// order — exactly what one global stable sort over all records produces.
type spiller struct {
	ex   *exec
	less func(a, b *spillRec) bool
	recs []spillRec
	runs []spillFile

	charged int64 // accountant bytes held by recs
	buf     []byte
}

func newSpiller(ex *exec, less func(a, b *spillRec) bool) *spiller {
	return &spiller{ex: ex, less: less}
}

// add buffers rec and charges cost bytes against the statement budget.
func (s *spiller) add(rec spillRec, cost int64) {
	s.recs = append(s.recs, rec)
	s.charged += cost
	s.ex.acct.charge(cost)
}

// flush writes the buffered records as one sorted run and frees them.
func (s *spiller) flush() error {
	if len(s.recs) == 0 {
		return nil
	}
	idx := make([]int32, len(s.recs))
	for i := range idx {
		idx[i] = int32(i)
	}
	stableSortIdx(idx, func(a, b int32) bool { return s.less(&s.recs[a], &s.recs[b]) })
	f, err := s.ex.newSpillFile()
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 64<<10)
	written := int64(0)
	for _, i := range idx {
		s.buf = appendSpillRec(s.buf[:0], &s.recs[i])
		if _, err := bw.Write(s.buf); err != nil {
			return fmt.Errorf("engine: spill: %w", err)
		}
		written += int64(len(s.buf))
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("engine: spill: %w", err)
	}
	if err := f.finish(); err != nil {
		return fmt.Errorf("engine: spill: %w", err)
	}
	atomic.AddInt64(&s.ex.db.Stats.SpillBytes, written)
	s.runs = append(s.runs, f)
	s.recs = s.recs[:0]
	s.ex.acct.release(s.charged)
	s.charged = 0
	return nil
}

// spilled reports whether any run has been written.
func (s *spiller) spilled() bool { return len(s.runs) > 0 }

// spillMinRun is the smallest buffer a per-record producer flushes as a
// run. When another operator holds the budget over on its own (a parallel
// scan's retained references, say), flushing after every add would burn
// one file per record without freeing anything; batching up to a minimum
// run keeps file counts proportional to data volume. The buffer stays
// within the one-batch slack the accounting model already allows.
const spillMinRun = 32 << 10

// maybeFlush flushes record-at-a-time producers: only once the budget is
// exceeded, and only once at least a minimum run (or a full batch of
// records) has accumulated.
func (s *spiller) maybeFlush() error {
	if !s.ex.acct.over() || (s.charged < spillMinRun && len(s.recs) < batchSize) {
		return nil
	}
	return s.flush()
}

// drain returns a merge iterator over all runs plus the in-memory
// remainder. The spiller must not be added to afterwards.
func (s *spiller) drain() (*mergeIter, error) {
	m := &mergeIter{less: s.less}
	for _, f := range s.runs {
		r, err := openSpillReader(f)
		if err != nil {
			m.close()
			return nil, err
		}
		src := &mergeSrc{r: r}
		ok, err := r.next(&src.rec)
		if err != nil {
			r.close()
			m.close()
			return nil, err
		}
		src.ok = ok
		m.srcs = append(m.srcs, src)
	}
	if len(s.recs) > 0 {
		// The remainder is the newest arrival segment: stably sorted like a
		// run and merged last so every file run wins ties against it.
		idx := make([]int32, len(s.recs))
		for i := range idx {
			idx[i] = int32(i)
		}
		stableSortIdx(idx, func(a, b int32) bool { return s.less(&s.recs[a], &s.recs[b]) })
		src := &mergeSrc{mem: s.recs, idx: idx}
		if len(idx) > 0 {
			src.rec = s.recs[idx[0]]
			src.pos, src.ok = 1, true
		}
		m.srcs = append(m.srcs, src)
	}
	return m, nil
}

// close removes every run file and releases the buffered charge.
func (s *spiller) close() {
	for _, f := range s.runs {
		s.ex.dropSpillFile(f)
	}
	s.runs = nil
	s.recs = nil
	s.ex.acct.release(s.charged)
	s.charged = 0
}

// mergeSrc is one input of the k-way merge: a run file or the in-memory
// remainder, with the current record buffered.
type mergeSrc struct {
	r   *spillReader
	mem []spillRec
	idx []int32
	pos int
	rec spillRec
	ok  bool
}

func (s *mergeSrc) advance() error {
	if s.r != nil {
		ok, err := s.r.next(&s.rec)
		s.ok = ok
		return err
	}
	if s.pos < len(s.idx) {
		s.rec = s.mem[s.idx[s.pos]]
		s.pos++
		return nil
	}
	s.ok = false
	return nil
}

// mergeIter yields records from all sources in sorted order, the earliest
// source winning ties. Sources are ordered oldest run first.
type mergeIter struct {
	less func(a, b *spillRec) bool
	srcs []*mergeSrc
	out  spillRec
}

// next returns the next record in merge order; (nil, nil) at exhaustion.
// The returned record stays valid until the next call.
func (m *mergeIter) next() (*spillRec, error) {
	best := -1
	for i, s := range m.srcs {
		if !s.ok {
			continue
		}
		// Strict less keeps the earlier source on ties.
		if best < 0 || m.less(&s.rec, &m.srcs[best].rec) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	s := m.srcs[best]
	m.out = s.rec
	if err := s.advance(); err != nil {
		return nil, err
	}
	return &m.out, nil
}

func (m *mergeIter) close() {
	for _, s := range m.srcs {
		if s.r != nil {
			s.r.close()
		}
	}
	m.srcs = nil
}
