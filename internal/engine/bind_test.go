package engine

// Tests for the bind-parameter subsystem: plan-time arity validation,
// type-slot coercion, NULL binds, differential compiled/interpreted
// execution, plan-cache sharing across bindings and concurrent Stmt reuse.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mtbase/internal/sqltypes"
)

// bindTestDB builds a small two-table database in the given compile mode.
func bindTestDB(t *testing.T, compiled bool) *DB {
	t.Helper()
	db := Open(ModePostgres)
	db.SetCompileExprs(compiled)
	ddl := []string{
		`CREATE TABLE items (id INTEGER NOT NULL, name VARCHAR(20) NOT NULL,
			price DECIMAL(10,2) NOT NULL, qty INTEGER NOT NULL, shipped DATE NOT NULL)`,
		`CREATE TABLE tags (item_id INTEGER NOT NULL, tag VARCHAR(20) NOT NULL)`,
	}
	for _, s := range ddl {
		if _, err := db.ExecSQL(s); err != nil {
			t.Fatal(err)
		}
	}
	ins := []string{
		`INSERT INTO items VALUES (1, 'anvil',  10.5, 3,  DATE '1995-01-10')`,
		`INSERT INTO items VALUES (2, 'bolt',   0.25, 90, DATE '1995-06-01')`,
		`INSERT INTO items VALUES (3, 'crate',  7.0,  12, DATE '1996-02-20')`,
		`INSERT INTO items VALUES (4, 'drill',  99.9, 1,  DATE '1997-11-05')`,
		`INSERT INTO tags VALUES (1, 'heavy'), (2, 'small'), (2, 'cheap'), (4, 'power')`,
	}
	for _, s := range ins {
		if _, err := db.ExecSQL(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func resultKey(t *testing.T, res *Result) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, ","))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.K.String())
			sb.WriteByte(':')
			sb.WriteString(v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestBindDifferential executes the same parameterized statements with the
// same bindings on a compiled and an interpreted DB and on literal-inlined
// equivalents; all four results must agree.
func TestBindDifferential(t *testing.T) {
	type tc struct {
		name    string
		param   string
		inlined string
		args    []sqltypes.Value
	}
	cases := []tc{
		{
			name:    "where-compare",
			param:   `SELECT id, name FROM items WHERE qty > ? ORDER BY id`,
			inlined: `SELECT id, name FROM items WHERE qty > 5 ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewInt(5)},
		},
		{
			name:    "dollar-reuse",
			param:   `SELECT id FROM items WHERE price > $1 OR qty > $1 ORDER BY id`,
			inlined: `SELECT id FROM items WHERE price > 10 OR qty > 10 ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewInt(10)},
		},
		{
			name:    "date-coercion-from-string",
			param:   `SELECT id FROM items WHERE shipped < ? ORDER BY id`,
			inlined: `SELECT id FROM items WHERE shipped < DATE '1996-01-01' ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewString("1996-01-01")},
		},
		{
			name:    "float-slot-int-bind",
			param:   `SELECT name FROM items WHERE price <= ? ORDER BY name`,
			inlined: `SELECT name FROM items WHERE price <= 7 ORDER BY name`,
			args:    []sqltypes.Value{sqltypes.NewInt(7)},
		},
		{
			name:    "between-binds",
			param:   `SELECT id FROM items WHERE qty BETWEEN ? AND ? ORDER BY id`,
			inlined: `SELECT id FROM items WHERE qty BETWEEN 2 AND 20 ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewInt(2), sqltypes.NewInt(20)},
		},
		{
			name:    "like-bind",
			param:   `SELECT id FROM items WHERE name LIKE ? ORDER BY id`,
			inlined: `SELECT id FROM items WHERE name LIKE '%l%' ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewString("%l%")},
		},
		{
			name:    "in-list-binds",
			param:   `SELECT name FROM items WHERE id IN (?, ?, ?) ORDER BY name`,
			inlined: `SELECT name FROM items WHERE id IN (1, 3, 4) ORDER BY name`,
			args:    []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(3), sqltypes.NewInt(4)},
		},
		{
			name:    "null-bind-compare",
			param:   `SELECT id FROM items WHERE qty > ? ORDER BY id`,
			inlined: `SELECT id FROM items WHERE qty > NULL ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.Null},
		},
		{
			name:    "null-bind-in-list",
			param:   `SELECT id FROM items WHERE id IN (?, ?) ORDER BY id`,
			inlined: `SELECT id FROM items WHERE id IN (2, NULL) ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewInt(2), sqltypes.Null},
		},
		{
			name:    "bind-in-projection",
			param:   `SELECT id, price * ? AS scaled FROM items ORDER BY id`,
			inlined: `SELECT id, price * 2.0 AS scaled FROM items ORDER BY id`,
			args:    []sqltypes.Value{sqltypes.NewFloat(2.0)},
		},
		{
			name:    "bind-in-subquery",
			param:   `SELECT name FROM items WHERE id IN (SELECT item_id FROM tags WHERE tag = ?) ORDER BY name`,
			inlined: `SELECT name FROM items WHERE id IN (SELECT item_id FROM tags WHERE tag = 'cheap') ORDER BY name`,
			args:    []sqltypes.Value{sqltypes.NewString("cheap")},
		},
		{
			name:    "bind-in-join-on",
			param:   `SELECT items.name, tags.tag FROM items JOIN tags ON items.id = tags.item_id AND tags.tag <> ? ORDER BY items.name, tags.tag`,
			inlined: `SELECT items.name, tags.tag FROM items JOIN tags ON items.id = tags.item_id AND tags.tag <> 'small' ORDER BY items.name, tags.tag`,
			args:    []sqltypes.Value{sqltypes.NewString("small")},
		},
		{
			name:    "grouped-with-bind",
			param:   `SELECT tag, COUNT(*) AS n FROM tags WHERE item_id < ? GROUP BY tag ORDER BY tag`,
			inlined: `SELECT tag, COUNT(*) AS n FROM tags WHERE item_id < 3 GROUP BY tag ORDER BY tag`,
			args:    []sqltypes.Value{sqltypes.NewInt(3)},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var keys []string
			for _, compiled := range []bool{true, false} {
				db := bindTestDB(t, compiled)
				got, err := db.ExecArgs(c.param, c.args...)
				if err != nil {
					t.Fatalf("compiled=%v param: %v", compiled, err)
				}
				want, err := db.ExecSQL(c.inlined)
				if err != nil {
					t.Fatalf("compiled=%v inlined: %v", compiled, err)
				}
				gk, wk := resultKey(t, got), resultKey(t, want)
				if gk != wk {
					t.Fatalf("compiled=%v: param result differs from inlined:\nparam:\n%s\ninlined:\n%s", compiled, gk, wk)
				}
				keys = append(keys, gk)
			}
			if keys[0] != keys[1] {
				t.Fatalf("compiled and interpreted disagree:\n%s\nvs\n%s", keys[0], keys[1])
			}
		})
	}
}

// TestBindDML exercises binds in UPDATE/DELETE/INSERT in both modes.
func TestBindDML(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		t.Run(fmt.Sprintf("compiled=%v", compiled), func(t *testing.T) {
			db := bindTestDB(t, compiled)
			res, err := db.ExecArgs(`UPDATE items SET qty = qty + ? WHERE price < ?`,
				sqltypes.NewInt(100), sqltypes.NewFloat(5.0))
			if err != nil {
				t.Fatal(err)
			}
			if res.Affected != 1 {
				t.Fatalf("update affected %d, want 1", res.Affected)
			}
			got, err := db.QuerySQL(`SELECT qty FROM items WHERE id = 2`)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows[0][0].AsInt() != 190 {
				t.Fatalf("qty = %v, want 190", got.Rows[0][0])
			}
			if _, err := db.ExecArgs(`INSERT INTO items VALUES (?, ?, ?, ?, ?)`,
				sqltypes.NewInt(5), sqltypes.NewString("epoxy"), sqltypes.NewFloat(3.5),
				sqltypes.NewInt(7), sqltypes.NewString("1998-03-04")); err != nil {
				t.Fatal(err)
			}
			got, err = db.QuerySQL(`SELECT shipped FROM items WHERE id = 5`)
			if err != nil {
				t.Fatal(err)
			}
			if got.Rows[0][0].K != sqltypes.KindDate {
				t.Fatalf("INSERT bind not coerced to DATE: %s", got.Rows[0][0].K)
			}
			res, err = db.ExecArgs(`DELETE FROM items WHERE id = ?`, sqltypes.NewInt(5))
			if err != nil {
				t.Fatal(err)
			}
			if res.Affected != 1 {
				t.Fatalf("delete affected %d, want 1", res.Affected)
			}
		})
	}
}

// TestBindArity checks wrong-arity errors at execution time, identically in
// both modes, and that extra args on parameterless statements fail.
func TestBindArity(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		db := bindTestDB(t, compiled)
		_, err := db.ExecArgs(`SELECT id FROM items WHERE qty > ? AND price < ?`, sqltypes.NewInt(1))
		if err == nil || !strings.Contains(err.Error(), "requires 2 bind parameters, got 1") {
			t.Fatalf("compiled=%v: want arity error, got %v", compiled, err)
		}
		_, err = db.ExecArgs(`SELECT id FROM items`, sqltypes.NewInt(1))
		if err == nil || !strings.Contains(err.Error(), "requires 0 bind parameters, got 1") {
			t.Fatalf("compiled=%v: want zero-arity error, got %v", compiled, err)
		}
		// $2 referenced without $1: arity is the max index; unused slots are
		// legal but the count must match.
		_, err = db.ExecArgs(`SELECT id FROM items WHERE qty > $2`, sqltypes.NewInt(0))
		if err == nil || !strings.Contains(err.Error(), "requires 2 bind parameters") {
			t.Fatalf("compiled=%v: want max-index arity error, got %v", compiled, err)
		}
		if _, err = db.ExecArgs(`SELECT id FROM items WHERE qty > $2`,
			sqltypes.Null, sqltypes.NewInt(0)); err != nil {
			t.Fatalf("compiled=%v: unused slot should be legal: %v", compiled, err)
		}
		// DDL never takes binds.
		_, err = db.ExecArgs(`DROP TABLE tags`, sqltypes.NewInt(1))
		if err == nil || !strings.Contains(err.Error(), "takes no bind parameters") {
			t.Fatalf("compiled=%v: want DDL bind rejection, got %v", compiled, err)
		}
	}
}

// TestBindCoercionFallback: hints are advisory. A bind that cannot be
// coerced losslessly to its slot's hinted kind passes through unconverted
// and evaluates exactly like the literal-inlined form — a malformed date
// string compares as SQL unknown (no rows, no error), a fractional float
// against an INTEGER slot compares numerically.
func TestBindCoercionFallback(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		db := bindTestDB(t, compiled)
		res, err := db.ExecArgs(`SELECT id FROM items WHERE shipped < ?`, sqltypes.NewString("not-a-date"))
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		if len(res.Rows) != 0 {
			t.Fatalf("compiled=%v: string/date comparison must be unknown, got %d rows", compiled, len(res.Rows))
		}
		got, err := db.ExecArgs(`SELECT id FROM items WHERE qty > ? ORDER BY id`, sqltypes.NewFloat(1.5))
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		want, err := db.ExecSQL(`SELECT id FROM items WHERE qty > 1.5 ORDER BY id`)
		if err != nil {
			t.Fatal(err)
		}
		if gk, wk := resultKey(t, got), resultKey(t, want); gk != wk {
			t.Fatalf("compiled=%v: fractional bind against int slot differs from inlined:\n%s\nvs\n%s", compiled, gk, wk)
		}
	}
}

// TestPlanCacheSharedAcrossBindings executes one parameterized text 100×
// with distinct bindings: every execution after the first must be a plan
// cache hit (the acceptance criterion for literal-varying workloads).
func TestPlanCacheSharedAcrossBindings(t *testing.T) {
	db := bindTestDB(t, true)
	st, err := db.Prepare(`SELECT id, name FROM items WHERE qty > ? ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	db.Stats = Stats{}
	for i := 0; i < 100; i++ {
		res, err := st.Exec(sqltypes.NewInt(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		_ = res
	}
	if db.Stats.PlanCacheHits < 99 {
		t.Fatalf("plan cache hits = %d of 100, want >= 99", db.Stats.PlanCacheHits)
	}
	if db.Stats.PlanCacheMisses > 1 {
		t.Fatalf("plan cache misses = %d, want <= 1", db.Stats.PlanCacheMisses)
	}
}

// TestStmtConcurrent reuses one Stmt from many goroutines with different
// bindings; run under -race this enforces that executions of one cached
// plan share no mutable state.
func TestStmtConcurrent(t *testing.T) {
	db := bindTestDB(t, true)
	st, err := db.Prepare(`SELECT COUNT(*) AS n FROM items WHERE qty >= ?`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{0: 4, 2: 3, 10: 2, 100: 0}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				for arg, n := range want {
					rows, err := st.Query(sqltypes.NewInt(arg))
					if err != nil {
						errs <- err
						return
					}
					res, err := rows.Collect()
					if err != nil {
						errs <- err
						return
					}
					if got := res.Rows[0][0].AsInt(); got != n {
						errs <- fmt.Errorf("qty >= %d: got %d, want %d", arg, got, n)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBindInsideUDFBodyKeepsFunctionArgs: $n inside a UDF body still
// resolves to the function argument, not to a statement bind, even when
// the statement itself carries binds.
func TestBindInsideUDFBodyKeepsFunctionArgs(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		db := bindTestDB(t, compiled)
		if _, err := db.ExecSQL(`CREATE FUNCTION triple (INTEGER) RETURNS INTEGER
			AS 'SELECT $1 * 3' LANGUAGE SQL IMMUTABLE`); err != nil {
			t.Fatal(err)
		}
		res, err := db.ExecArgs(`SELECT id, triple(qty) AS t3 FROM items WHERE id = $1`, sqltypes.NewInt(2))
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		if len(res.Rows) != 1 || res.Rows[0][1].AsInt() != 270 {
			t.Fatalf("compiled=%v: triple(qty) rows = %v", compiled, res.Rows)
		}
	}
}

// TestQueryContextCancel: an already-cancelled context aborts execution at
// the first batch boundary.
func TestQueryContextCancel(t *testing.T) {
	db := bindTestDB(t, true)
	// Blow the table up past several batches so the scan must hit a
	// boundary check.
	tab := db.Table("items")
	row := append([]sqltypes.Value(nil), tab.Heap()[0]...)
	for i := 0; i < 5000; i++ {
		r := append([]sqltypes.Value(nil), row...)
		tab.AppendRow(r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.ExecContext(ctx, `SELECT COUNT(*) AS n FROM items WHERE qty > 0`)
	if err == nil || err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Streaming cursor: cancellation surfaces from Next.
	ctx2, cancel2 := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx2, `SELECT id FROM items`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("first Next failed: %v", rows.Err())
	}
	cancel2()
	for rows.Next() {
	}
	if rows.Err() != context.Canceled {
		t.Fatalf("want context.Canceled from cursor, got %v", rows.Err())
	}
}
