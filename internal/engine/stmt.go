package engine

// This file implements the client-facing prepared-statement API:
// Prepare → Stmt → Query(args...) → Rows. A Stmt is a thin handle over the
// statement text — every execution resolves the current plan through the
// DB's plan cache, so a Stmt survives DDL and data changes transparently
// (the cache revalidates by dependency versions) and concurrent executions
// of one Stmt are just concurrent executions of one cached plan.

import (
	"context"
	"fmt"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// Stmt is a prepared statement: parameterized SQL text whose plan is served
// by the DB's plan cache on every execution.
type Stmt struct {
	db       *DB
	sql      string
	isSelect bool
	nParams  int
}

// Prepare parses sql, caches its plan and returns a reusable handle.
// Placeholders (`?` or `$n`) are bound per execution via Query/Exec.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	p, err := db.planForLocked(sql)
	if err != nil {
		return nil, err
	}
	_, isSel := p.stmt.(*sqlast.Select)
	return &Stmt{db: db, sql: sql, isSelect: isSel, nParams: p.nParams}, nil
}

// SQL returns the statement text the handle was prepared from.
func (st *Stmt) SQL() string { return st.sql }

// NumParams returns the number of bind parameters the statement expects.
func (st *Stmt) NumParams() int { return st.nParams }

// Close releases the handle. The plan stays cached on the DB (keyed by
// text) for future preparations; Close exists for API symmetry.
func (st *Stmt) Close() error { return nil }

// Exec runs the statement with the given bind values, materializing the
// outcome. Use it for DML/DDL; SELECTs work too but Query streams.
func (st *Stmt) Exec(args ...sqltypes.Value) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation checked at batch boundaries.
func (st *Stmt) ExecContext(ctx context.Context, args ...sqltypes.Value) (*Result, error) {
	return st.db.ExecContext(ctx, st.sql, args...)
}

// Query runs the statement with the given bind values and returns a
// streaming cursor pulling the plan's operator tree batch-at-a-time —
// every query shape streams, joins and grouping included. It rejects
// non-SELECT statements.
func (st *Stmt) Query(args ...sqltypes.Value) (*Rows, error) {
	return st.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation polled inside every operator.
func (st *Stmt) QueryContext(ctx context.Context, args ...sqltypes.Value) (*Rows, error) {
	if !st.isSelect {
		return nil, fmt.Errorf("engine: not a query: %s", st.sql)
	}
	return st.db.QueryContext(ctx, st.sql, args...)
}
