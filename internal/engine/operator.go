package engine

// This file implements the pull-based physical operator layer: every query
// shape — scans, filters, joins, grouping, ordering, DISTINCT, LIMIT —
// executes as a tree of Operators exchanging Batches, so memory scales with
// batch size plus pipeline-breaker state (hash tables, group buckets, sort
// buffers) rather than with intermediate result size. The tree is built per
// execution from the cached Plan's AST (join order and index choices are
// data-dependent, so the physical tree itself is not cached; the Plan
// contributes the parsed AST, the per-Select conjunct analysis and the UDF
// body lowerings), and both the materializing Result consumers and the
// streaming Rows cursor drain the same root.
//
// Contracts:
//   - Open acquires per-execution state and opens children. Pipeline
//     breakers (hash-join build, group bucketing, sort) drain their inputs
//     here; everything else stays lazy.
//   - Next returns the next Batch or (nil, nil) on exhaustion. The batch is
//     owned by the operator and valid until the next Next/Close call; row
//     slices ([]sqltypes.Value) inside it are stable and may be retained.
//     Every Next polls ctx cancellation before producing work.
//   - Close releases operator state and closes children; it is idempotent.
//
// Relation-shaped streams (FROM/WHERE pipelines) emit window batches whose
// selection vector may be refined by filters. Result-shaped streams
// (project, group, distinct, sort, limit) emit dense batches — sel is the
// identity — optionally carrying ORDER BY key columns in Batch.keys.
//
// Row-order equivalence with the materializing executor (exec.go, kept
// behind DB.SetStreamExec(false) as the differential-test reference) is by
// construction: filters refine selection vectors in row order, joins probe
// in input order and expand hash buckets in build insertion order, groups
// are emitted in first-seen key order, and the sort operator runs the same
// stable merge over the same precomputed key columns.

import (
	"bytes"
	"fmt"
	"strings"
	"sync/atomic"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// Operator is the pull-based physical operator interface. One tree executes
// one statement: operators capture their compiled programs at build time
// and receive the executing exec on every call (cancellation, scratch
// stack, statement caches).
type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

// resetKeyCols returns a key-column set of n empty columns, reusing the
// backing arrays. Safe because batches are owned by their producer until
// the next pull: every consumer (sort, distinct) copies key values out
// before pulling again.
func resetKeyCols(cols [][]sqltypes.Value, n int) [][]sqltypes.Value {
	if n == 0 {
		return nil
	}
	if cols == nil {
		return make([][]sqltypes.Value, n)
	}
	for k := range cols {
		cols[k] = cols[k][:0]
	}
	return cols
}

// noteStream records one emitted batch in the engine counters: total rows
// streamed between operators and the largest single batch seen. Counters
// are updated atomically — parallel workers and concurrent statements all
// stream batches at once.
func (ex *exec) noteStream(n int) {
	st := &ex.db.Stats
	atomic.AddInt64(&st.RowsStreamed, int64(n))
	for {
		peak := atomic.LoadInt64(&st.PeakBatch)
		if int64(n) <= peak || atomic.CompareAndSwapInt64(&st.PeakBatch, peak, int64(n)) {
			return
		}
	}
}

// pipe is one streaming source under construction: an operator plus the
// schema of the batches it emits. rel carries bindings/width/base; rel.rows
// is non-nil only when the pipe's full output is already materialized (base
// table scans, cross-product sizing).
type pipe struct {
	op  Operator
	rel *relation
}

// queryRoot is a built operator tree plus its output column names.
type queryRoot struct {
	op   Operator
	cols []string
}

// ---------------------------------------------------------------- sources

// scanOperator streams a materialized row set in fixed-size windows.
type scanOperator struct {
	rows [][]sqltypes.Value
	src  scanOp
	b    Batch
}

func (s *scanOperator) Open(ex *exec) error {
	s.src = scanOp{rows: s.rows}
	return nil
}

func (s *scanOperator) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if !s.src.next(&s.b) {
		return nil, nil
	}
	ex.noteStream(len(s.b.sel))
	return &s.b, nil
}

func (s *scanOperator) Close() {}

// indexScanOperator serves equality conjuncts over an unfiltered base table
// from the table's lazily built hash index: the probe values (constant
// w.r.t. the query level — literals, binds, outer references) are evaluated
// once at Open, and the matching heap rows stream through an embedded scan.
type indexScanOperator struct {
	tab    *Table
	cols   []string
	exprs  []sqlast.Expr
	parent *scope

	scan scanOperator
}

func (s *indexScanOperator) Open(ex *exec) error {
	heap := ex.heap(s.tab)
	idx, err := ex.tableIndex(s.tab, s.cols)
	if err != nil {
		return err
	}
	vals := make([]sqltypes.Value, len(s.exprs))
	psc := &scope{parent: s.parent}
	for i, e := range s.exprs {
		v, err := ex.eval(e, psc)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	ids := idx.probe(vals)
	rows := make([][]sqltypes.Value, len(ids))
	for i, id := range ids {
		rows[i] = heap[id]
	}
	s.scan.rows = rows
	return s.scan.Open(ex)
}

func (s *indexScanOperator) Next(ex *exec) (*Batch, error) { return s.scan.Next(ex) }

func (s *indexScanOperator) Close() { s.scan.rows = nil }

// errWrapOperator prefixes every error of its subtree — the streaming
// counterpart of the "in view X" wrapping of the materializing executor.
type errWrapOperator struct {
	child  Operator
	prefix string
}

func (w *errWrapOperator) wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("engine: in %s: %w", w.prefix, err)
}

func (w *errWrapOperator) Open(ex *exec) error { return w.wrap(w.child.Open(ex)) }

func (w *errWrapOperator) Next(ex *exec) (*Batch, error) {
	b, err := w.child.Next(ex)
	return b, w.wrap(err)
}

func (w *errWrapOperator) Close() { w.child.Close() }

// ---------------------------------------------------------------- filter

// filterOperator refines each input batch's selection vector with a
// conjunct list, reusing the batched filter kernel (batch.go) in both
// compile modes. Batches are passed through (never copied); empty batches
// are skipped.
type filterOperator struct {
	child Operator
	f     filterOp
}

// newFilterOperator lowers conjuncts against the stream's schema exactly
// like the materializing filterRelation.
func newFilterOperator(ex *exec, child Operator, rel *relation, conjs []*conjunct, parent *scope) *filterOperator {
	sc := rel.scopeFor(parent)
	o := &filterOperator{child: child, f: filterOp{ex: ex, sc: sc}}
	if !ex.db.noCompile {
		o.f.progs = make([]vecExpr, len(conjs))
		for i, c := range conjs {
			o.f.progs[i] = ex.vecCompile(c.expr, rel.bindings, sc)
		}
	} else {
		o.f.exprs = make([]sqlast.Expr, len(conjs))
		for i, c := range conjs {
			o.f.exprs[i] = c.expr
		}
	}
	return o
}

func (o *filterOperator) Open(ex *exec) error { return o.child.Open(ex) }

func (o *filterOperator) Next(ex *exec) (*Batch, error) {
	if o.f.failed != nil {
		return nil, o.f.failed
	}
	for {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := o.child.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if o.f.progs != nil {
			o.f.applyVec(b)
		} else {
			o.f.applyInterp(b)
		}
		if o.f.failed != nil {
			return nil, o.f.failed
		}
		if len(b.sel) > 0 {
			ex.noteStream(len(b.sel))
			return b, nil
		}
	}
}

func (o *filterOperator) Close() { o.child.Close() }

// ---------------------------------------------------------------- joins

// joinOperator is the inner hash join (degrading to the cross product with
// no equi pairs): Open materializes only the build side — the hash table,
// or the probe plan against a base table's persistent index — and Next
// streams probe batches, expanding each into at most batch-size output
// windows. Output rows are chunk-allocated per probe batch, exactly like
// the materializing hashJoin, so values and row order are identical.
type joinOperator struct {
	ex     *exec
	left   Operator
	right  Operator
	lrel   *relation
	rrel   *relation
	orel   *relation
	pairs  []equiPair
	parent *scope

	// Build state (Open): exactly one of idx (index fast path) or
	// build+rightRows (hash build / cross product) is used.
	idx       *hashIndex
	idxCols   []string
	build     map[string][]int
	rightRows [][]sqltypes.Value

	lsc     *scope
	lks     *vecKeySet
	buf     []byte
	buckets [][]int

	pending [][]sqltypes.Value
	pendPos int
	out     Batch

	// Memory-limited statements: build-side charge and, after an overflow,
	// the Grace hash join state (gracejoin.go).
	acct    *memAccountant
	charged int64
	grace   *graceState
}

func (ex *exec) newJoinPipe(l, r *pipe, pairs []equiPair, parent *scope) *pipe {
	orel := &relation{width: l.rel.width + r.rel.width}
	orel.bindings = append(orel.bindings, l.rel.bindings...)
	for _, b := range r.rel.bindings {
		nb := *b
		nb.off += l.rel.width
		orel.bindings = append(orel.bindings, &nb)
	}
	jo := &joinOperator{
		ex: ex, left: l.op, right: r.op,
		lrel: l.rel, rrel: r.rel, orel: orel,
		pairs: pairs, parent: parent,
	}
	return &pipe{op: jo, rel: orel}
}

func (j *joinOperator) Open(ex *exec) error {
	if err := j.left.Open(ex); err != nil {
		return err
	}
	j.lsc = j.lrel.scopeFor(j.parent)
	if len(j.pairs) > 0 {
		j.lks = ex.vecKeys(pairExprs(j.pairs, false), j.lrel.bindings, j.lsc)
		// Index fast path: unfiltered base table on the build side with
		// plain-column keys probes the table's persistent lazy index; no
		// transient hash table is built at all.
		if j.rrel.base != nil && len(j.rrel.bindings) == 1 {
			cols := make([]string, 0, len(j.pairs))
			simple := true
			for _, p := range j.pairs {
				cr, ok := p.right.(*sqlast.ColumnRef)
				if !ok || !relationHasRef(j.rrel, cr) {
					simple = false
					break
				}
				cols = append(cols, cr.Name)
			}
			if simple {
				idx, err := ex.tableIndex(j.rrel.base, cols)
				if err != nil {
					return err
				}
				j.idx, j.idxCols = idx, cols
				return nil
			}
		}
	}
	// Build side: drain the right child (base scans are already
	// materialized as the table heap) and hash it on the join keys. Under a
	// memory limit the equi build is charged and may overflow into a Grace
	// hash join; the cross product (no pairs) stays in-memory but charged.
	if len(j.pairs) > 0 && ex.acct != nil {
		return j.openChargedBuild(ex)
	}
	rows := j.rrel.rows
	if rows == nil {
		var err error
		rows, err = drainRows(ex, j.right)
		if err != nil {
			return err
		}
	}
	j.rightRows = rows
	if ex.acct != nil {
		j.acct = ex.acct
		for _, row := range rows {
			j.charged += rowBytes(row)
		}
		ex.acct.charge(j.charged)
	}
	if len(j.pairs) > 0 {
		build, err := ex.buildJoinHash(&relation{bindings: j.rrel.bindings, rows: rows, width: j.rrel.width}, j.pairs, j.parent)
		if err != nil {
			return err
		}
		j.build = build
	}
	return nil
}

func (j *joinOperator) Next(ex *exec) (*Batch, error) {
	if j.grace != nil {
		return j.graceNext(ex)
	}
	for j.pendPos >= len(j.pending) {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := j.left.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		j.pending = j.pending[:0]
		j.pendPos = 0
		if err := j.fillPending(ex, b); err != nil {
			return nil, err
		}
	}
	n := len(j.pending) - j.pendPos
	if n > batchSize {
		n = batchSize
	}
	j.out.window(j.pending[j.pendPos : j.pendPos+n])
	j.pendPos += n
	ex.noteStream(n)
	return &j.out, nil
}

// fillPending expands one probe batch into joined output rows, mirroring
// the per-batch loops of the materializing hashJoin.
func (j *joinOperator) fillPending(ex *exec, b *Batch) error {
	width := j.orel.width
	switch {
	case len(j.pairs) == 0: // cross product
		ck := newRowChunk(len(b.sel)*len(j.rightRows), width)
		for _, i := range b.sel {
			for _, rr := range j.rightRows {
				j.pending = append(j.pending, ck.concat(b.rows[i], rr))
			}
		}
	case j.idx != nil && j.lks != nil: // compiled index probe
		m := ex.vs.mark()
		sel := j.lks.compute(b, true, nil)
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			return err
		}
		if cap(j.buckets) < len(b.rows) {
			j.buckets = make([][]int, len(b.rows))
		}
		total := 0
		for _, i := range sel {
			var ids []int
			ids, j.buf = j.idx.probeKeyCols(j.buf, j.lks.cols, i)
			j.buckets[i] = ids
			total += len(ids)
		}
		ck := newRowChunk(total, width)
		for _, i := range sel {
			for _, id := range j.buckets[i] {
				j.pending = append(j.pending, ck.concat(b.rows[i], j.rrel.rows[id]))
			}
		}
		ex.vs.release(m)
	case j.idx != nil: // interpreted index probe
		vals := make([]sqltypes.Value, len(j.pairs))
		for _, i := range b.sel {
			lr := b.rows[i]
			null := false
			for k, p := range j.pairs {
				j.lsc.row = lr
				v, err := ex.eval(p.left, j.lsc)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				vals[k] = v
			}
			if null {
				continue
			}
			var ids []int
			ids, j.buf = j.idx.probeBuf(j.buf, vals)
			for _, id := range ids {
				j.pending = append(j.pending, concatRows(lr, j.rrel.rows[id], width))
			}
		}
	case j.lks != nil: // compiled hash probe
		m := ex.vs.mark()
		sel := j.lks.compute(b, true, nil)
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			return err
		}
		if cap(j.buckets) < len(b.rows) {
			j.buckets = make([][]int, len(b.rows))
		}
		total := 0
		for _, i := range sel {
			j.buf = encodeKeyCols(j.buf[:0], j.lks.cols, i)
			j.buckets[i] = j.build[string(j.buf)]
			total += len(j.buckets[i])
		}
		ck := newRowChunk(total, width)
		for _, i := range sel {
			for _, ri := range j.buckets[i] {
				j.pending = append(j.pending, ck.concat(b.rows[i], j.rightRows[ri]))
			}
		}
		ex.vs.release(m)
	default: // interpreted hash probe
		for _, i := range b.sel {
			lr := b.rows[i]
			j.buf = j.buf[:0]
			null := false
			for _, p := range j.pairs {
				j.lsc.row = lr
				v, err := ex.eval(p.left, j.lsc)
				if err != nil {
					return err
				}
				if v.IsNull() {
					null = true
					break
				}
				j.buf = sqltypes.AppendKey(j.buf, v)
			}
			if null {
				continue
			}
			for _, ri := range j.build[string(j.buf)] {
				j.pending = append(j.pending, concatRows(lr, j.rightRows[ri], width))
			}
		}
	}
	return nil
}

func (j *joinOperator) Close() {
	j.left.Close()
	j.right.Close()
	j.build = nil
	j.rightRows = nil
	j.pending = nil
	if j.grace != nil {
		j.grace.close()
		j.grace = nil
	}
	j.acct.release(j.charged)
	j.charged = 0
}

// leftOuterOperator preserves every probe row: the equi keys prune build
// candidates, the residual ON conjuncts decide matches, and unmatched probe
// rows emit null-extended. The build side materializes at Open (hash
// table); the probe side streams.
type leftOuterOperator struct {
	ex     *exec
	left   Operator
	right  Operator
	lrel   *relation
	rrel   *relation
	orel   *relation
	pairs  []equiPair
	resid  []*conjunct
	parent *scope

	build     map[string][]int
	rightRows [][]sqltypes.Value
	nulls     []sqltypes.Value
	lsc       *scope
	osc       *scope
	lks       *vecKeySet
	resFns    []compiledExpr
	buf       []byte
	buckets   [][]int
	nullMask  []bool
	inSel     []bool

	pending [][]sqltypes.Value
	pendPos int
	out     Batch

	// Memory-limited statements: build-side charge and, after an overflow,
	// the Grace hash join state (gracejoin.go).
	acct    *memAccountant
	charged int64
	grace   *graceState
}

func (ex *exec) newLeftOuterPipe(l, r *pipe, pairs []equiPair, residual []*conjunct, parent *scope) *pipe {
	orel := &relation{width: l.rel.width + r.rel.width}
	orel.bindings = append(orel.bindings, l.rel.bindings...)
	for _, b := range r.rel.bindings {
		nb := *b
		nb.off += l.rel.width
		orel.bindings = append(orel.bindings, &nb)
	}
	o := &leftOuterOperator{
		ex: ex, left: l.op, right: r.op,
		lrel: l.rel, rrel: r.rel, orel: orel,
		pairs: pairs, resid: residual, parent: parent,
	}
	return &pipe{op: o, rel: orel}
}

func (o *leftOuterOperator) Open(ex *exec) error {
	if err := o.left.Open(ex); err != nil {
		return err
	}
	o.nulls = make([]sqltypes.Value, o.rrel.width)
	o.lsc = o.lrel.scopeFor(o.parent)
	o.osc = o.orel.scopeFor(o.parent)
	o.lks = ex.vecKeys(pairExprs(o.pairs, false), o.lrel.bindings, o.lsc)
	o.resFns = make([]compiledExpr, len(o.resid))
	for i, c := range o.resid {
		o.resFns[i] = ex.compile(c.expr, o.orel.bindings, o.osc)
	}
	// Under a memory limit the equi build is charged and may overflow into
	// a Grace hash join. The pair-less LEFT JOIN (every probe row matches
	// the single bucket) would degenerate to one partition, so it stays
	// in-memory but charged.
	if len(o.pairs) > 0 && ex.acct != nil {
		return o.openChargedBuild(ex)
	}
	rows := o.rrel.rows
	if rows == nil {
		var err error
		rows, err = drainRows(ex, o.right)
		if err != nil {
			return err
		}
	}
	o.rightRows = rows
	if ex.acct != nil {
		o.acct = ex.acct
		for _, row := range rows {
			o.charged += rowBytes(row) + joinBucketBytes
		}
		ex.acct.charge(o.charged)
	}
	build, err := ex.buildJoinHash(&relation{bindings: o.rrel.bindings, rows: rows, width: o.rrel.width}, o.pairs, o.parent)
	if err != nil {
		return err
	}
	o.build = build
	return nil
}

// matchResidual applies the non-equi ON conjuncts to one candidate tuple.
func (o *leftOuterOperator) matchResidual(ex *exec, combined []sqltypes.Value) (bool, error) {
	for i, c := range o.resid {
		var v sqltypes.Value
		var err error
		if o.resFns[i] != nil {
			v, err = o.resFns[i](ex, combined)
		} else {
			o.osc.row = combined
			v, err = ex.eval(c.expr, o.osc)
		}
		if err != nil {
			return false, err
		}
		if truth, _ := sqltypes.Truthy(v); !truth {
			return false, nil
		}
	}
	return true, nil
}

func (o *leftOuterOperator) Next(ex *exec) (*Batch, error) {
	if o.grace != nil {
		return o.graceNext(ex)
	}
	for o.pendPos >= len(o.pending) {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := o.left.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		o.pending = o.pending[:0]
		o.pendPos = 0
		if err := o.fillPending(ex, b); err != nil {
			return nil, err
		}
	}
	n := len(o.pending) - o.pendPos
	if n > batchSize {
		n = batchSize
	}
	o.out.window(o.pending[o.pendPos : o.pendPos+n])
	o.pendPos += n
	ex.noteStream(n)
	return &o.out, nil
}

func (o *leftOuterOperator) fillPending(ex *exec, b *Batch) error {
	width := o.orel.width
	if o.lks != nil {
		// Batched probe: valid keys land in the selection vector, NULL keys
		// in the null mask (unmatched by definition, emitted null-extended).
		// A filtered probe stream may have dropped rows from the window: only
		// rows still in the incoming selection participate at all.
		n := len(b.rows)
		if cap(o.nullMask) < n {
			o.nullMask = make([]bool, n)
			o.buckets = make([][]int, n)
			o.inSel = make([]bool, n)
		}
		o.nullMask = o.nullMask[:n]
		o.buckets = o.buckets[:n]
		inSel := o.inSel[:n]
		for i := range inSel {
			o.nullMask[i] = false
			inSel[i] = false
		}
		for _, i := range b.sel {
			inSel[i] = true
		}
		m := ex.vs.mark()
		o.lks.compute(b, true, o.nullMask)
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			return err
		}
		total := 0
		for i := 0; i < n; i++ {
			o.buckets[i] = nil
			if !inSel[i] {
				continue
			}
			total++
			if !o.nullMask[i] {
				o.buf = encodeKeyCols(o.buf[:0], o.lks.cols, int32(i))
				o.buckets[i] = o.build[string(o.buf)]
				total += len(o.buckets[i])
			}
		}
		ck := newRowChunk(total, width)
		for i := 0; i < n; i++ {
			if !inSel[i] {
				continue
			}
			matched := false
			for _, ri := range o.buckets[i] {
				combined := ck.concat(b.rows[i], o.rightRows[ri])
				ok, err := o.matchResidual(ex, combined)
				if err != nil {
					ex.vs.release(m)
					return err
				}
				if ok {
					matched = true
					o.pending = append(o.pending, combined)
				}
			}
			if !matched {
				o.pending = append(o.pending, ck.concat(b.rows[i], o.nulls))
			}
		}
		ex.vs.release(m)
		return nil
	}
	for _, i := range b.sel {
		lr := b.rows[i]
		o.buf = o.buf[:0]
		null := false
		for _, p := range o.pairs {
			o.lsc.row = lr
			v, err := ex.eval(p.left, o.lsc)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			o.buf = sqltypes.AppendKey(o.buf, v)
		}
		matched := false
		if !null {
			for _, ri := range o.build[string(o.buf)] {
				combined := concatRows(lr, o.rightRows[ri], width)
				ok, err := o.matchResidual(ex, combined)
				if err != nil {
					return err
				}
				if ok {
					matched = true
					o.pending = append(o.pending, combined)
				}
			}
		}
		if !matched {
			o.pending = append(o.pending, concatRows(lr, o.nulls, width))
		}
	}
	return nil
}

func (o *leftOuterOperator) Close() {
	o.left.Close()
	o.right.Close()
	o.build = nil
	o.rightRows = nil
	o.pending = nil
	if o.grace != nil {
		o.grace.close()
		o.grace = nil
	}
	o.acct.release(o.charged)
	o.charged = 0
}

// ---------------------------------------------------------------- project

// projectOperator evaluates the SELECT list (and ORDER BY key expressions)
// batch-at-a-time, emitting dense batches of freshly chunk-allocated output
// tuples with key columns attached. It is the streaming twin of
// projectRowsBatched / the interpreter's projection loop.
type projectOperator struct {
	child Operator
	rel   *relation
	sc    *scope
	projs []projector
	plans []orderPlan
	width int
	cols  []string

	vprojs []vecExpr // compiled mode; nil entries are star segments
	vkeys  []vecExpr // compiled key expressions (outCol plans stay nil)

	colBuf  [][]sqltypes.Value
	keyBuf  [][]sqltypes.Value
	rowBuf  [][]sqltypes.Value
	keyCols [][]sqltypes.Value
	out     Batch
}

func (ex *exec) newProjectOperator(child Operator, rel *relation, sel *sqlast.Select, parent *scope, aliases map[string]sqlast.Expr) (*projectOperator, error) {
	sc := rel.scopeFor(parent)
	cols, err := ex.outputShape(sel, rel)
	if err != nil {
		return nil, err
	}
	plans := buildOrderPlan(sel, cols, sc, aliases)
	projs, width := ex.buildProjectors(sel, rel)
	o := &projectOperator{child: child, rel: rel, sc: sc, projs: projs, plans: plans, width: width, cols: cols}
	if !ex.db.noCompile {
		o.vprojs = make([]vecExpr, len(projs))
		for i := range projs {
			if !projs[i].star {
				o.vprojs[i] = ex.vecCompile(projs[i].expr, rel.bindings, sc)
			}
		}
		o.vkeys = make([]vecExpr, len(plans))
		for k := range plans {
			if plans[k].outCol < 0 {
				o.vkeys[k] = ex.vecCompile(plans[k].expr, rel.bindings, sc)
			}
		}
		o.colBuf = make([][]sqltypes.Value, len(projs))
		o.keyBuf = make([][]sqltypes.Value, len(plans))
	}
	return o, nil
}

func (o *projectOperator) Open(ex *exec) error { return o.child.Open(ex) }

func (o *projectOperator) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	b, err := o.child.Next(ex)
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, nil
	}
	o.rowBuf = o.rowBuf[:0]
	o.keyCols = resetKeyCols(o.keyCols, len(o.plans))
	if o.vprojs != nil {
		if err := o.projectVec(ex, b); err != nil {
			return nil, err
		}
	} else {
		if err := o.projectInterp(ex, b); err != nil {
			return nil, err
		}
	}
	o.out.window(o.rowBuf)
	o.out.keys = o.keyCols
	ex.noteStream(len(o.rowBuf))
	return &o.out, nil
}

func (o *projectOperator) projectVec(ex *exec, b *Batch) error {
	n := len(b.rows)
	sel := b.sel
	m := ex.vs.mark()
	defer ex.vs.release(m)
	selBuf := ex.vs.takeSel(len(sel))
	for i, vp := range o.vprojs {
		if vp == nil {
			continue
		}
		o.colBuf[i] = ex.vs.takeVals(n)
		vp(b, sel, o.colBuf[i])
		sel = b.compactSel(selBuf, sel)
	}
	for k, vk := range o.vkeys {
		if vk == nil {
			continue
		}
		o.keyBuf[k] = ex.vs.takeVals(n)
		vk(b, sel, o.keyBuf[k])
		sel = b.compactSel(selBuf, sel)
	}
	if err := b.firstErr(); err != nil {
		return err
	}
	ck := newRowChunk(len(sel), o.width)
	for _, i := range sel {
		row := ck.alloc(o.width)
		pos := 0
		for j := range o.projs {
			p := &o.projs[j]
			if p.star {
				for _, seg := range p.segs {
					pos += copy(row[pos:pos+seg[1]], b.rows[i][seg[0]:seg[0]+seg[1]])
				}
				continue
			}
			row[pos] = o.colBuf[j][i]
			pos++
		}
		o.rowBuf = append(o.rowBuf, row)
		for k := range o.plans {
			if o.plans[k].outCol >= 0 {
				o.keyCols[k] = append(o.keyCols[k], row[o.plans[k].outCol])
			} else {
				o.keyCols[k] = append(o.keyCols[k], o.keyBuf[k][i])
			}
		}
	}
	return nil
}

func (o *projectOperator) projectInterp(ex *exec, b *Batch) error {
	for _, i := range b.sel {
		row := b.rows[i]
		o.sc.row = row
		out := make([]sqltypes.Value, 0, o.width)
		for j := range o.projs {
			p := &o.projs[j]
			if p.star {
				for _, seg := range p.segs {
					out = append(out, row[seg[0]:seg[0]+seg[1]]...)
				}
				continue
			}
			v, err := ex.eval(p.expr, o.sc)
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		o.rowBuf = append(o.rowBuf, out)
		for k := range o.plans {
			p := &o.plans[k]
			var v sqltypes.Value
			var err error
			if p.outCol >= 0 {
				v = out[p.outCol]
			} else {
				v, err = ex.eval(p.expr, o.sc)
				if err != nil {
					return err
				}
			}
			o.keyCols[k] = append(o.keyCols[k], v)
		}
	}
	return nil
}

func (o *projectOperator) Close() { o.child.Close() }

// ---------------------------------------------------------------- group

// groupOperator is the grouped projection: a pipeline breaker that drains
// its input into hash buckets at Open (first-seen key order) and then
// evaluates HAVING, the SELECT list and ORDER BY keys group-at-a-time,
// emitting dense batches. Only the group members — the rows themselves are
// shared with the input, never copied — and the emitted output live in
// operator state.
type groupOperator struct {
	child    Operator
	rel      *relation
	sel      *sqlast.Select
	sc       *scope
	cols     []string
	plans    []orderPlan
	having   sqlast.Expr
	gexprs   []sqlast.Expr
	gks      *vecKeySet
	aggVec   map[sqlast.Expr]vecExpr
	aggScr   *aggScratch
	aggExprs []sqlast.Expr // retained for spill-merge site discovery

	groups map[string]*rowGroup
	order  []string
	pos    int

	rowBuf  [][]sqltypes.Value
	keyCols [][]sqltypes.Value
	out     Batch

	// Spill state (memory-limited statements only). keyRank is the
	// persistent key directory: every group key ever seen maps to its dense
	// first-seen rank, so rows spilled across multiple flushes regroup —
	// and emit — in exactly the in-memory first-seen order. The directory
	// itself stays resident (charged, never released until Close): it is
	// the irreducible state that makes regrouping deterministic.
	acct        *memAccountant
	charged     int64
	rankCharged int64
	keyRank     map[string]int64
	sp          *spiller
	merge       *mergeIter
	mrec        spillRec
	mhave       bool
	aggSites    []*sqlast.FuncCall
	chunk       [][]sqltypes.Value
	aggB        Batch
}

type rowGroup struct {
	rows [][]sqltypes.Value
}

func (ex *exec) newGroupOperator(child Operator, rel *relation, sel *sqlast.Select, parent *scope, aliases map[string]sqlast.Expr) (*groupOperator, error) {
	sc := rel.scopeFor(parent)
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * is invalid in a grouped query")
		}
	}
	cols, err := ex.outputShape(sel, rel)
	if err != nil {
		return nil, err
	}
	plans := buildOrderPlan(sel, cols, sc, aliases)
	gexprs := make([]sqlast.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		gexprs[i] = substituteAlias(sqlast.CloneExpr(g), sc, aliases)
		if hasAggregate(gexprs[i]) {
			return nil, fmt.Errorf("engine: aggregate in GROUP BY")
		}
	}
	having := sel.Having
	if having != nil {
		having = sqlast.TransformExpr(sqlast.CloneExpr(having), func(e sqlast.Expr) sqlast.Expr {
			return substituteAlias(e, sc, aliases)
		})
	}
	aggExprs := make([]sqlast.Expr, 0, len(sel.Items)+1+len(plans))
	for _, it := range sel.Items {
		aggExprs = append(aggExprs, it.Expr)
	}
	if having != nil {
		aggExprs = append(aggExprs, having)
	}
	for _, p := range plans {
		if p.expr != nil {
			aggExprs = append(aggExprs, p.expr)
		}
	}
	o := &groupOperator{
		child: child, rel: rel, sel: sel, sc: sc, cols: cols, plans: plans,
		having: having, gexprs: gexprs,
		gks:      ex.vecKeys(gexprs, rel.bindings, sc),
		aggVec:   ex.vecAggArgs(rel.bindings, sc, aggExprs...),
		aggExprs: aggExprs,
	}
	if o.aggVec != nil {
		o.aggScr = &aggScratch{}
	}
	return o, nil
}

func (o *groupOperator) Open(ex *exec) error {
	if err := o.child.Open(ex); err != nil {
		return err
	}
	o.acct = ex.acct
	o.groups = make(map[string]*rowGroup)
	o.order = o.order[:0]
	o.pos = 0
	var buf []byte
	var pend int64
	bucket := func(key []byte, row []sqltypes.Value) {
		k := string(key)
		gr, ok := o.groups[k]
		if !ok {
			gr = &rowGroup{}
			o.groups[k] = gr
			o.order = append(o.order, k)
			if o.acct != nil {
				pend += int64(len(k)) + groupEntryBytes
			}
		}
		gr.rows = append(gr.rows, row)
		if o.acct != nil {
			pend += rowBytes(row)
		}
	}
	for {
		if err := ex.cancelled(); err != nil {
			return err
		}
		b, err := o.child.Next(ex)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if o.gks != nil {
			m := ex.vs.mark()
			gsel := o.gks.compute(b, false, nil)
			if err := b.firstErr(); err != nil {
				ex.vs.release(m)
				return err
			}
			for _, i := range gsel {
				buf = encodeKeyCols(buf[:0], o.gks.cols, i)
				bucket(buf, b.rows[i])
			}
			ex.vs.release(m)
		} else {
			for _, i := range b.sel {
				o.sc.row = b.rows[i]
				buf = buf[:0]
				for _, g := range o.gexprs {
					v, err := ex.eval(g, o.sc)
					if err != nil {
						return err
					}
					buf = sqltypes.AppendKey(buf, v)
				}
				bucket(buf, b.rows[i])
			}
		}
		ex.acct.charge(pend)
		o.charged += pend
		pend = 0
		if ex.acct.over() {
			o.spillResidentGroups(ex)
			if err := o.sp.flush(); err != nil {
				return err
			}
		}
	}
	if o.sp != nil {
		// Sort-based fallback: spill the remainder (kept in memory as the
		// newest run) and merge everything back rank by rank.
		o.spillResidentGroups(ex)
		m, err := o.sp.drain()
		if err != nil {
			return err
		}
		o.merge = m
		o.aggSites = collectAggSites(o.aggExprs)
		rec, err := m.next()
		if err != nil {
			return err
		}
		if rec != nil {
			o.mrec, o.mhave = *rec, true
		}
		return nil
	}
	// A global aggregate (no GROUP BY) over zero rows still yields one group.
	if len(o.sel.GroupBy) == 0 && len(o.order) == 0 {
		o.groups[""] = &rowGroup{}
		o.order = append(o.order, "")
	}
	return nil
}

// spillResidentGroups moves every resident group's rows into the spiller,
// keyed by the group's persistent first-seen rank. Rows of one group spill
// in arrival order and later flushes land in later runs, so the
// rank-ordered merge reassembles each group's rows in exactly the order
// the in-memory bucket held them.
func (o *groupOperator) spillResidentGroups(ex *exec) {
	if o.sp == nil {
		o.sp = newSpiller(ex, func(a, b *spillRec) bool { return a.seq < b.seq })
	}
	if o.keyRank == nil {
		o.keyRank = make(map[string]int64, len(o.order))
	}
	ex.acct.release(o.charged)
	o.charged = 0
	var rankAdd int64
	for _, k := range o.order {
		if _, ok := o.keyRank[k]; !ok {
			o.keyRank[k] = int64(len(o.keyRank))
			rankAdd += int64(len(k)) + rankEntryBytes
		}
	}
	ex.acct.charge(rankAdd)
	o.rankCharged += rankAdd
	for _, k := range o.order {
		seq := o.keyRank[k]
		for _, row := range o.groups[k].rows {
			o.sp.add(spillRec{seq: seq, row: row}, rowBytes(row))
		}
	}
	o.groups = make(map[string]*rowGroup)
	o.order = o.order[:0]
}

// collectAggSites gathers the outermost aggregate call sites of the grouped
// projection's expressions — exactly the nodes evalAggregate is invoked on.
// Nested aggregates are not descended into (they error at eval time in both
// modes) and subqueries are walk boundaries (their aggregates belong to
// their own grouped context).
func collectAggSites(exprs []sqlast.Expr) []*sqlast.FuncCall {
	var sites []*sqlast.FuncCall
	for _, e := range exprs {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			if fc, ok := n.(*sqlast.FuncCall); ok && aggregateNames[strings.ToUpper(fc.Name)] {
				sites = append(sites, fc)
				return false
			}
			return true
		})
	}
	return sites
}

func (o *groupOperator) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if o.merge != nil {
		return o.nextMerged(ex)
	}
	if o.pos >= len(o.order) {
		return nil, nil
	}
	o.rowBuf = o.rowBuf[:0]
	o.keyCols = resetKeyCols(o.keyCols, len(o.plans))
	sc := o.sc
	for len(o.rowBuf) < batchSize && o.pos < len(o.order) {
		gr := o.groups[o.order[o.pos]]
		o.pos++
		if len(gr.rows) > 0 {
			sc.row = gr.rows[0]
		} else {
			sc.row = nil
		}
		sc.group = &groupCtx{rows: gr.rows, aggVec: o.aggVec, scr: o.aggScr}
		if o.having != nil {
			hv, err := ex.eval(o.having, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(hv); !truth {
				sc.group = nil
				continue
			}
		}
		out := make([]sqltypes.Value, 0, len(o.sel.Items))
		for _, it := range o.sel.Items {
			v, err := ex.eval(it.Expr, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			out = append(out, v)
		}
		o.rowBuf = append(o.rowBuf, out)
		for k := range o.plans {
			p := &o.plans[k]
			var v sqltypes.Value
			var err error
			if p.outCol >= 0 {
				v = out[p.outCol]
			} else {
				v, err = ex.eval(p.expr, sc)
				if err != nil {
					sc.group = nil
					return nil, err
				}
			}
			o.keyCols[k] = append(o.keyCols[k], v)
		}
		sc.group = nil
	}
	o.out.window(o.rowBuf)
	o.out.keys = o.keyCols
	ex.noteStream(len(o.rowBuf))
	return &o.out, nil
}

// aggSiteState is one aggregate call site's accumulator while a spilled
// group's rows stream through nextGroupAgg. An error latches on first
// occurrence (arity, argument evaluation) and is raised only if the site
// is actually evaluated — matching the in-memory path, where evalAggregate
// runs lazily per site.
type aggSiteState struct {
	acc  aggAcc
	err  error
	star bool // COUNT(*): answered by the group's row count
}

// nextMerged emits grouped output from the rank-ordered merge of spilled
// runs: each consecutive run of equal-rank records is one group, evaluated
// with the same HAVING/items/ORDER BY sequence — and the same error and
// short-circuit behavior — as the in-memory Next.
func (o *groupOperator) nextMerged(ex *exec) (*Batch, error) {
	if !o.mhave {
		return nil, nil
	}
	o.rowBuf = o.rowBuf[:0]
	o.keyCols = resetKeyCols(o.keyCols, len(o.plans))
	sc := o.sc
	for len(o.rowBuf) < batchSize && o.mhave {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		firstRow, nrows, pm, err := o.nextGroupAgg(ex)
		if err != nil {
			return nil, err
		}
		_ = nrows
		sc.row = firstRow
		sc.group = &groupCtx{aggVec: o.aggVec, scr: o.aggScr, precomp: pm}
		if o.having != nil {
			hv, err := ex.eval(o.having, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(hv); !truth {
				sc.group = nil
				continue
			}
		}
		out := make([]sqltypes.Value, 0, len(o.sel.Items))
		for _, it := range o.sel.Items {
			v, err := ex.eval(it.Expr, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			out = append(out, v)
		}
		o.rowBuf = append(o.rowBuf, out)
		for k := range o.plans {
			p := &o.plans[k]
			var v sqltypes.Value
			var err error
			if p.outCol >= 0 {
				v = out[p.outCol]
			} else {
				v, err = ex.eval(p.expr, sc)
				if err != nil {
					sc.group = nil
					return nil, err
				}
			}
			o.keyCols[k] = append(o.keyCols[k], v)
		}
		sc.group = nil
	}
	o.out.window(o.rowBuf)
	o.out.keys = o.keyCols
	ex.noteStream(len(o.rowBuf))
	return &o.out, nil
}

// nextGroupAgg consumes the next group (one run of equal-rank records) from
// the merge, streaming its rows through every aggregate site's accumulator
// in ≤ batchSize chunks, and returns the group's first row, row count and
// the per-site results. Compiled aggregate arguments run through the same
// vectorized programs as the in-memory path, over a fresh window per site
// per chunk so one site's poisoned rows never leak into another's.
func (o *groupOperator) nextGroupAgg(ex *exec) ([]sqltypes.Value, int, map[*sqlast.FuncCall]precompAgg, error) {
	seq := o.mrec.seq
	firstRow := o.mrec.row
	nrows := 0
	sts := make([]aggSiteState, len(o.aggSites))
	for i, fc := range o.aggSites {
		st := &sts[i]
		upper := strings.ToUpper(fc.Name)
		if upper == "COUNT" && fc.Star {
			st.star = true
			continue
		}
		if len(fc.Args) != 1 {
			st.err = fmt.Errorf("engine: %s takes exactly one argument", fc.Name)
			continue
		}
		st.acc = aggAcc{op: upper, distinct: fc.Distinct}
	}
	sc := o.sc
	flush := func() {
		if len(o.chunk) == 0 {
			return
		}
		for i, fc := range o.aggSites {
			st := &sts[i]
			if st.star || st.err != nil {
				continue
			}
			arg := fc.Args[0]
			if vecFn := o.aggVec[arg]; vecFn != nil && o.aggScr != nil {
				o.aggB.window(o.chunk)
				m := ex.vs.mark()
				col := ex.vs.takeVals(len(o.chunk))
				vecFn(&o.aggB, o.aggB.sel, col)
				if err := o.aggB.firstErr(); err != nil {
					st.err = err
				} else {
					for _, j := range o.aggB.sel {
						st.acc.add(col[j])
					}
				}
				ex.vs.release(m)
				continue
			}
			savedRow, savedGroup := sc.row, sc.group
			sc.group = nil
			for _, row := range o.chunk {
				sc.row = row
				v, err := ex.eval(arg, sc)
				if err != nil {
					st.err = err
					break
				}
				st.acc.add(v)
			}
			sc.row, sc.group = savedRow, savedGroup
		}
		o.chunk = o.chunk[:0]
	}
	o.chunk = o.chunk[:0]
	for o.mhave && o.mrec.seq == seq {
		o.chunk = append(o.chunk, o.mrec.row)
		nrows++
		if len(o.chunk) >= batchSize {
			flush()
		}
		rec, err := o.merge.next()
		if err != nil {
			return nil, 0, nil, err
		}
		if rec == nil {
			o.mhave = false
		} else {
			o.mrec = *rec
		}
	}
	flush()
	pm := make(map[*sqlast.FuncCall]precompAgg, len(o.aggSites))
	for i, fc := range o.aggSites {
		st := &sts[i]
		var pv precompAgg
		switch {
		case st.err != nil:
			pv.err = st.err
		case st.star:
			pv.v = sqltypes.NewInt(int64(nrows))
		default:
			res, ok := st.acc.result()
			if !ok {
				pv.err = fmt.Errorf("engine: unknown aggregate %s", fc.Name)
			} else {
				pv.v = res
			}
		}
		pm[fc] = pv
	}
	return firstRow, nrows, pm, nil
}

func (o *groupOperator) Close() {
	o.child.Close()
	o.groups = nil
	o.order = nil
	o.keyRank = nil
	if o.merge != nil {
		o.merge.close()
		o.merge = nil
	}
	if o.sp != nil {
		o.sp.close()
		o.sp = nil
	}
	o.acct.release(o.charged + o.rankCharged)
	o.charged, o.rankCharged = 0, 0
	o.chunk = nil
}

// ---------------------------------------------------------------- distinct

// distinctOperator streams DISTINCT: each output row is emitted the first
// time its encoding is seen, so state is bounded by the number of distinct
// output rows, not the input size. ORDER BY key columns travel with their
// surviving rows.
//
// Under a memory limit the seen-set is charged per new entry. When the
// budget overflows, streaming stops: the set's keys spill as marker records
// (seq -1), every remaining input row spills keyed by its encoding with its
// arrival sequence, and at child end a sort-by-(key, seq) merge picks each
// key's survivor — skipping keys whose group holds a marker (already
// emitted pre-spill) and otherwise keeping the earliest arrival. Survivors
// re-sort by arrival sequence, so the post-spill emissions continue the
// pre-spill arrival order exactly and output stays byte-identical.
type distinctOperator struct {
	child Operator
	seen  map[string]bool
	buf   []byte

	rowBuf  [][]sqltypes.Value
	keyCols [][]sqltypes.Value
	out     Batch

	acct    *memAccountant
	charged int64
	sp      *spiller // records keyed by row encoding, ordered (key, seq)
	outSp   *spiller // survivors, ordered by arrival seq
	merge   *mergeIter
	seq     int64
}

// distinctEntryBytes approximates the per-entry overhead of the seen-set
// (map bucket share plus string header) beyond the key bytes themselves.
const distinctEntryBytes = 48

func (o *distinctOperator) Open(ex *exec) error {
	o.seen = make(map[string]bool)
	o.acct = ex.acct
	return o.child.Open(ex)
}

func (o *distinctOperator) Next(ex *exec) (*Batch, error) {
	if o.merge != nil {
		return o.emitMerged(ex)
	}
	for {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		b, err := o.child.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			if o.sp == nil {
				return nil, nil
			}
			if err := o.mergeSurvivors(ex); err != nil {
				return nil, err
			}
			return o.emitMerged(ex)
		}
		if o.sp != nil {
			for _, i := range b.sel {
				row := b.rows[i]
				o.buf = o.buf[:0]
				for _, v := range row {
					o.buf = sqltypes.AppendKey(o.buf, v)
				}
				rec := spillRec{
					seq:  o.seq,
					key:  append([]byte(nil), o.buf...),
					row:  row,
					keys: keyRow(b.keys, i, len(b.keys)),
				}
				o.seq++
				o.sp.add(rec, int64(len(rec.key))+recCost(rec.row, rec.keys))
			}
			if ex.acct.over() {
				if err := o.sp.flush(); err != nil {
					return nil, err
				}
			}
			continue
		}
		o.rowBuf = o.rowBuf[:0]
		o.keyCols = resetKeyCols(o.keyCols, len(b.keys))
		var add int64
		for _, i := range b.sel {
			row := b.rows[i]
			o.buf = o.buf[:0]
			for _, v := range row {
				o.buf = sqltypes.AppendKey(o.buf, v)
			}
			if o.seen[string(o.buf)] {
				continue
			}
			o.seen[string(o.buf)] = true
			if ex.acct != nil {
				add += int64(len(o.buf)) + distinctEntryBytes
			}
			o.rowBuf = append(o.rowBuf, row)
			for k := range b.keys {
				o.keyCols[k] = append(o.keyCols[k], b.keys[k][i])
			}
		}
		ex.acct.charge(add)
		o.charged += add
		if ex.acct.over() {
			if err := o.engageSpill(ex); err != nil {
				return nil, err
			}
		}
		if len(o.rowBuf) > 0 {
			o.out.window(o.rowBuf)
			o.out.keys = o.keyCols
			ex.noteStream(len(o.rowBuf))
			return &o.out, nil
		}
	}
}

// engageSpill converts the seen-set into marker records (seq -1 sorts
// before every real arrival, so a marker group head means "already
// emitted") and frees the map.
func (o *distinctOperator) engageSpill(ex *exec) error {
	o.sp = newSpiller(ex, func(a, b *spillRec) bool {
		if c := bytes.Compare(a.key, b.key); c != 0 {
			return c < 0
		}
		return a.seq < b.seq
	})
	for k := range o.seen {
		o.sp.add(spillRec{seq: -1, key: []byte(k)}, int64(len(k))+16)
	}
	o.seen = nil
	ex.acct.release(o.charged)
	o.charged = 0
	return o.sp.flush()
}

// mergeSurvivors scans the (key, seq)-ordered merge of all spilled records
// group by group: the head record of each key group is either a pre-spill
// marker (skip the group) or the key's earliest post-spill arrival (the
// survivor). Survivors feed a second spiller ordered by arrival sequence.
func (o *distinctOperator) mergeSurvivors(ex *exec) error {
	m, err := o.sp.drain()
	if err != nil {
		return err
	}
	defer m.close()
	o.outSp = newSpiller(ex, func(a, b *spillRec) bool { return a.seq < b.seq })
	var curKey []byte
	have := false
	for {
		rec, err := m.next()
		if err != nil {
			return err
		}
		if rec == nil {
			break
		}
		if have && bytes.Equal(rec.key, curKey) {
			continue
		}
		curKey = append(curKey[:0], rec.key...)
		have = true
		if rec.seq < 0 {
			continue
		}
		o.outSp.add(spillRec{seq: rec.seq, row: rec.row, keys: rec.keys},
			recCost(rec.row, rec.keys))
		if err := o.outSp.maybeFlush(); err != nil {
			return err
		}
	}
	o.merge, err = o.outSp.drain()
	return err
}

// emitMerged streams the arrival-ordered survivors in batch windows,
// re-attaching their ORDER BY key columns.
func (o *distinctOperator) emitMerged(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	o.rowBuf = o.rowBuf[:0]
	nk := -1
	for len(o.rowBuf) < batchSize {
		rec, err := o.merge.next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		if nk < 0 {
			nk = len(rec.keys)
			o.keyCols = resetKeyCols(o.keyCols, nk)
		}
		o.rowBuf = append(o.rowBuf, rec.row)
		for k, v := range rec.keys {
			o.keyCols[k] = append(o.keyCols[k], v)
		}
	}
	if len(o.rowBuf) == 0 {
		return nil, nil
	}
	o.out.window(o.rowBuf)
	o.out.keys = o.keyCols
	ex.noteStream(len(o.rowBuf))
	return &o.out, nil
}

func (o *distinctOperator) Close() {
	o.child.Close()
	o.seen = nil
	if o.merge != nil {
		o.merge.close()
		o.merge = nil
	}
	if o.sp != nil {
		o.sp.close()
		o.sp = nil
	}
	if o.outSp != nil {
		o.outSp.close()
		o.outSp = nil
	}
	o.acct.release(o.charged)
	o.charged = 0
}

// ---------------------------------------------------------------- sort

// sortOperator is the ORDER BY pipeline breaker: Open drains the child,
// collecting rows and their precomputed key columns, runs the same stable
// merge sort as the materializing path, and Next emits windows of the
// sorted result.
//
// Under a memory limit the buffer is charged per input batch; when the
// budget overflows, buffered rows move into an external merge sort
// (spill.go): stably-sorted runs on disk, remainder in memory, k-way
// merge on Next. Runs are contiguous arrival-order segments and earlier
// runs win merge ties, so the merged order equals one global stable sort —
// byte-identical to the in-memory path at every parallelism setting.
type sortOperator struct {
	child Operator
	desc  []bool

	rows    [][]sqltypes.Value
	keyCols [][]sqltypes.Value
	pos     int
	out     Batch

	acct    *memAccountant
	charged int64
	sp      *spiller
	merge   *mergeIter
	rowBuf  [][]sqltypes.Value
}

func newSortOperator(child Operator, desc []bool) *sortOperator {
	return &sortOperator{child: child, desc: desc}
}

// sortRecLess orders spill records by the operator's key columns with the
// exact comparator of execResult.sortAndTrim; ties report false so the
// stable run sort and the earlier-run-wins merge preserve arrival order.
func sortRecLess(desc []bool) func(a, b *spillRec) bool {
	return func(a, b *spillRec) bool {
		for k := range desc {
			c := compareNullsFirst(a.keys[k], b.keys[k])
			if desc[k] {
				c = -c
			}
			if c != 0 {
				return c < 0
			}
		}
		return false
	}
}

func (o *sortOperator) Open(ex *exec) error {
	if err := o.child.Open(ex); err != nil {
		return err
	}
	o.acct = ex.acct
	o.rows = o.rows[:0]
	o.keyCols = make([][]sqltypes.Value, len(o.desc))
	o.pos = 0
	for {
		if err := ex.cancelled(); err != nil {
			return err
		}
		b, err := o.child.Next(ex)
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		if o.sp != nil {
			for _, i := range b.sel {
				rec := spillRec{row: b.rows[i], keys: keyRow(b.keys, i, len(o.desc))}
				o.sp.add(rec, recCost(rec.row, rec.keys))
			}
			if ex.acct.over() {
				if err := o.sp.flush(); err != nil {
					return err
				}
			}
			continue
		}
		var add int64
		for _, i := range b.sel {
			o.rows = append(o.rows, b.rows[i])
			for k := range b.keys {
				o.keyCols[k] = append(o.keyCols[k], b.keys[k][i])
			}
			if ex.acct != nil {
				add += rowBytes(b.rows[i])
				for k := range b.keys {
					add += valueSize + int64(len(b.keys[k][i].S))
				}
			}
		}
		ex.acct.charge(add)
		o.charged += add
		if ex.acct.over() {
			if err := o.engageSpill(ex); err != nil {
				return err
			}
		}
	}
	if o.sp != nil {
		m, err := o.sp.drain()
		if err != nil {
			return err
		}
		o.merge = m
		return nil
	}
	res := &execResult{Rows: o.rows, keyCols: o.keyCols, desc: o.desc}
	res.sortAndTrim(ex, -1)
	o.rows = res.Rows
	return nil
}

// engageSpill moves the buffered rows into a spiller (transferring their
// charge) and writes them as the first run — a contiguous arrival-order
// prefix, so stability is preserved across the switch.
func (o *sortOperator) engageSpill(ex *exec) error {
	o.sp = newSpiller(ex, sortRecLess(o.desc))
	ex.acct.release(o.charged)
	o.charged = 0
	for i, row := range o.rows {
		keys := make([]sqltypes.Value, len(o.desc))
		for k := range keys {
			keys[k] = o.keyCols[k][i]
		}
		o.sp.add(spillRec{row: row, keys: keys}, recCost(row, keys))
	}
	o.rows, o.keyCols = nil, nil
	return o.sp.flush()
}

func (o *sortOperator) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if o.merge != nil {
		o.rowBuf = o.rowBuf[:0]
		for len(o.rowBuf) < batchSize {
			rec, err := o.merge.next()
			if err != nil {
				return nil, err
			}
			if rec == nil {
				break
			}
			o.rowBuf = append(o.rowBuf, rec.row)
		}
		if len(o.rowBuf) == 0 {
			return nil, nil
		}
		o.out.window(o.rowBuf)
		ex.noteStream(len(o.rowBuf))
		return &o.out, nil
	}
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	n := len(o.rows) - o.pos
	if n > batchSize {
		n = batchSize
	}
	o.out.window(o.rows[o.pos : o.pos+n])
	o.pos += n
	ex.noteStream(n)
	return &o.out, nil
}

func (o *sortOperator) Close() {
	o.child.Close()
	o.rows = nil
	o.keyCols = nil
	if o.merge != nil {
		o.merge.close()
		o.merge = nil
	}
	if o.sp != nil {
		o.sp.close()
		o.sp = nil
	}
	o.acct.release(o.charged)
	o.charged = 0
	o.rowBuf = nil
}

// ---------------------------------------------------------------- limit

// limitOperator counts down a LIMIT, truncating the final batch and
// cutting off the child without draining it.
type limitOperator struct {
	child  Operator
	remain int64
}

func (o *limitOperator) Open(ex *exec) error { return o.child.Open(ex) }

func (o *limitOperator) Next(ex *exec) (*Batch, error) {
	if o.remain <= 0 {
		return nil, nil
	}
	b, err := o.child.Next(ex)
	if err != nil || b == nil {
		return nil, err
	}
	if int64(len(b.sel)) > o.remain {
		b.sel = b.sel[:o.remain]
	}
	o.remain -= int64(len(b.sel))
	return b, nil
}

func (o *limitOperator) Close() { o.child.Close() }

// ---------------------------------------------------------------- builder

// buildQueryOp lowers one SELECT level into a physical operator tree:
// FROM/WHERE pipeline, then grouped or plain projection, then DISTINCT,
// ORDER BY and LIMIT. The tree's structure mirrors the materializing
// executor's evaluation order exactly.
func (ex *exec) buildQueryOp(sel *sqlast.Select, parent *scope) (*queryRoot, error) {
	src, err := ex.buildSourcePipe(sel, parent)
	if err != nil {
		return nil, err
	}
	a := ex.selectAnalysis(sel)

	var op Operator
	var cols []string
	var desc []bool
	if a.grouped {
		g, err := ex.newGroupOperator(src.op, src.rel, sel, parent, a.aliases)
		if err != nil {
			return nil, err
		}
		op, cols = g, g.cols
		for _, p := range g.plans {
			desc = append(desc, p.desc)
		}
	} else {
		p, err := ex.newProjectOperator(src.op, src.rel, sel, parent, a.aliases)
		if err != nil {
			return nil, err
		}
		op, cols = p, p.cols
		for _, pl := range p.plans {
			desc = append(desc, pl.desc)
		}
	}
	if sel.Distinct {
		op = &distinctOperator{child: op}
	}
	if len(desc) > 0 {
		op = newSortOperator(op, desc)
	}
	if sel.Limit >= 0 {
		op = &limitOperator{child: op, remain: sel.Limit}
	}
	return &queryRoot{op: op, cols: cols}, nil
}

// buildSourcePipe lowers the FROM/WHERE part of one query level into a
// streaming pipeline, mirroring buildFromWhere: constant conjuncts gate the
// whole FROM, single-relation conjuncts filter their source (index probes
// where a base table allows), the greedy equi-join order composes join
// operators, and the residual conjuncts filter the joined stream.
func (ex *exec) buildSourcePipe(sel *sqlast.Select, parent *scope) (*pipe, error) {
	if len(sel.From) == 0 {
		rel := &relation{rows: [][]sqltypes.Value{{}}}
		if sel.Where != nil {
			sc := rel.scopeFor(parent)
			sc.row = rel.rows[0]
			v, err := ex.eval(sel.Where, sc)
			if err != nil {
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(v); !truth {
				rel.rows = nil
			}
		}
		return &pipe{op: &scanOperator{rows: rel.rows}, rel: rel}, nil
	}

	pipes := make([]*pipe, len(sel.From))
	for i, te := range sel.From {
		p, err := ex.buildTablePipe(te, parent)
		if err != nil {
			return nil, err
		}
		pipes[i] = p
	}
	// Duplicate binding names are ambiguous.
	seen := make(map[string]bool)
	for _, p := range pipes {
		for _, b := range p.rel.bindings {
			if seen[b.name] {
				return nil, fmt.Errorf("engine: duplicate table alias %s", b.name)
			}
			seen[b.name] = true
		}
	}

	colOwner := make(map[string][]string)
	for _, p := range pipes {
		for _, b := range p.rel.bindings {
			//mtlint:ignore detmap one append per (column, binding); the binding slice order fixes each per-column list
			for c := range b.colIdx {
				colOwner[c] = append(colOwner[c], b.name)
			}
		}
	}
	local := func(name string) bool { return seen[strings.ToLower(name)] }

	a := ex.selectAnalysis(sel)
	analyzed := make([]*conjunct, len(a.conjs))
	for i, c := range a.conjs {
		analyzed[i] = analyzeConjunct(c, local, colOwner)
		analyzed[i].fromOrFactor = i >= a.nPlain
	}

	// Constant conjuncts (no local refs, no subqueries) gate the whole FROM.
	for _, c := range analyzed {
		if len(c.refs) == 0 && !c.hasSub {
			sc := &scope{parent: parent}
			v, err := ex.eval(c.expr, sc)
			if err != nil {
				return nil, err
			}
			c.used = true
			if truth, _ := sqltypes.Truthy(v); !truth {
				rel := &relation{bindings: allPipeBindings(pipes), width: totalPipeWidth(pipes)}
				return &pipe{op: &scanOperator{}, rel: rel}, nil
			}
		}
	}

	// Pre-filter each source with its single-relation conjuncts.
	for i, p := range pipes {
		names := p.rel.names()
		var mine []*conjunct
		for _, c := range analyzed {
			if c.used || c.hasSub || len(c.refs) == 0 {
				continue
			}
			if subset(c.refs, names) {
				mine = append(mine, c)
			}
		}
		if len(mine) > 0 {
			pipes[i] = ex.filterPipe(p, mine, parent)
		}
	}

	// Greedy hash-join order: prefer sources connected by equi-conjuncts.
	cur := pipes[0]
	remaining := pipes[1:]
	for len(remaining) > 0 {
		pick := -1
		var pairs []equiPair
		for i, p := range remaining {
			pr := equiPairsBetween(analyzed, cur.rel, p.rel)
			if len(pr) > 0 {
				pick, pairs = i, pr
				break
			}
		}
		if pick < 0 {
			// No connection: the cross product takes the smallest source,
			// measured like the materializing path — on the filtered row
			// count, so unsized pipes are drained first (they would be
			// materialized as a join build side anyway).
			for _, p := range remaining {
				if err := ex.materializePipe(p); err != nil {
					return nil, err
				}
			}
			pick = 0
			for i, p := range remaining {
				if len(p.rel.rows) < len(remaining[pick].rel.rows) {
					pick = i
				}
			}
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		cur = ex.newJoinPipe(cur, next, pairs, parent)
		for _, p := range pairs {
			p.src.used = true
		}
	}

	// Residual conjuncts (multi-relation non-equi, subqueries).
	var residual []*conjunct
	for _, c := range analyzed {
		if !c.used && !c.fromOrFactor {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		cur = ex.filterPipe(cur, residual, parent)
	}
	return cur, nil
}

// filterPipe applies conjuncts to a streaming source, mirroring
// filterRelation: over an unfiltered base table, constant equality
// conjuncts become an index scan; everything else becomes a filter
// operator refining the stream's selection vectors.
func (ex *exec) filterPipe(p *pipe, conjs []*conjunct, parent *scope) *pipe {
	src := p.op
	rel := p.rel
	rest := conjs
	if rel.base != nil && len(rel.bindings) == 1 {
		var probeCols []string
		var probeExprs []sqlast.Expr
		rest = rest[:0:0]
		for _, c := range conjs {
			if col, val, ok := probeForm(c.expr, rel); ok {
				probeCols = append(probeCols, col)
				probeExprs = append(probeExprs, val)
			} else {
				rest = append(rest, c)
			}
		}
		if len(probeCols) > 0 {
			src = &indexScanOperator{tab: rel.base, cols: probeCols, exprs: probeExprs, parent: parent}
			rel = &relation{bindings: rel.bindings, width: rel.width}
		} else {
			rest = conjs
		}
	}
	for _, c := range conjs {
		c.used = true
	}
	if len(rest) == 0 {
		return &pipe{op: src, rel: rel}
	}
	// Morsel-parallel fused scan+filter: engages only for a plain heap scan
	// (src untouched by the index rewrite above) that is large enough to
	// split, on a parallel top-level execution.
	if sc, isScan := src.(*scanOperator); isScan && rel.base != nil && len(rel.bindings) == 1 &&
		ex.par > 1 && ex.depth == 0 && len(sc.rows) >= 2*morselLen() {
		po := newParallelScanFilter(ex, sc.rows, rel, rest, parent)
		return &pipe{op: po, rel: &relation{bindings: rel.bindings, width: rel.width}}
	}
	fo := newFilterOperator(ex, src, rel, rest, parent)
	return &pipe{op: fo, rel: &relation{bindings: rel.bindings, width: rel.width}}
}

// buildTablePipe lowers one FROM item: a base table scans its heap, views
// and derived tables mount their own operator subtree inline (streaming end
// to end), and JOIN expressions compose join operators.
func (ex *exec) buildTablePipe(te sqlast.TableExpr, parent *scope) (*pipe, error) {
	switch t := te.(type) {
	case *sqlast.TableName:
		key := strings.ToLower(t.Name)
		if view, ok := ex.cat.views[key]; ok {
			sub := sqlast.CloneSelect(view)
			root, err := ex.buildQueryOp(sub, &scope{parent: parent})
			if err != nil {
				return nil, fmt.Errorf("engine: in view %s: %w", t.Name, err)
			}
			b := newBinding(t.Binding(), root.cols)
			return &pipe{
				op:  &errWrapOperator{child: root.op, prefix: "view " + t.Name},
				rel: &relation{bindings: []*binding{b}, width: len(root.cols)},
			}, nil
		}
		tab := ex.cat.tables[key]
		if tab == nil {
			return nil, fmt.Errorf("engine: no such table %s", t.Name)
		}
		heap := ex.heap(tab)
		b := newBinding(t.Binding(), tab.ColNames())
		return &pipe{
			op:  &scanOperator{rows: heap},
			rel: &relation{bindings: []*binding{b}, rows: heap, width: len(tab.Cols), base: tab},
		}, nil
	case *sqlast.DerivedTable:
		root, err := ex.buildQueryOp(t.Sub, &scope{parent: parent})
		if err != nil {
			return nil, err
		}
		b := newBinding(t.Alias, root.cols)
		return &pipe{op: root.op, rel: &relation{bindings: []*binding{b}, width: len(root.cols)}}, nil
	case *sqlast.JoinExpr:
		return ex.buildJoinExprPipe(t, parent)
	}
	return nil, fmt.Errorf("engine: unsupported FROM item %T", te)
}

func (ex *exec) buildJoinExprPipe(j *sqlast.JoinExpr, parent *scope) (*pipe, error) {
	l, err := ex.buildTablePipe(j.L, parent)
	if err != nil {
		return nil, err
	}
	r, err := ex.buildTablePipe(j.R, parent)
	if err != nil {
		return nil, err
	}
	names := func(n string) bool {
		ln := strings.ToLower(n)
		return l.rel.names()[ln] || r.rel.names()[ln]
	}
	switch j.Kind {
	case sqlast.JoinCross:
		return ex.newJoinPipe(l, r, nil, parent), nil
	case sqlast.JoinInner:
		conjs := splitConjuncts(j.On)
		colOwner := ownerMap(l.rel, r.rel)
		analyzed := make([]*conjunct, len(conjs))
		for i, c := range conjs {
			analyzed[i] = analyzeConjunct(c, names, colOwner)
		}
		pairs := equiPairsBetween(analyzed, l.rel, r.rel)
		joined := ex.newJoinPipe(l, r, pairs, parent)
		var residual []*conjunct
		for _, c := range analyzed {
			used := false
			for _, p := range pairs {
				if p.src == c {
					used = true
					break
				}
			}
			if !used {
				residual = append(residual, c)
			}
		}
		if len(residual) == 0 {
			return joined, nil
		}
		return ex.filterPipe(joined, residual, parent), nil
	case sqlast.JoinLeftOuter:
		conjs := splitConjuncts(j.On)
		colOwner := ownerMap(l.rel, r.rel)
		analyzed := make([]*conjunct, len(conjs))
		for i, c := range conjs {
			analyzed[i] = analyzeConjunct(c, names, colOwner)
		}
		pairs := equiPairsBetween(analyzed, l.rel, r.rel)
		var residual []*conjunct
		for _, c := range analyzed {
			used := false
			for _, p := range pairs {
				if p.src == c {
					used = true
					break
				}
			}
			if !used {
				residual = append(residual, c)
			}
		}
		return ex.newLeftOuterPipe(l, r, pairs, residual, parent), nil
	}
	return nil, fmt.Errorf("engine: unsupported join kind %v", j.Kind)
}

// materializePipe drains a pipe into a buffered row set so its size is
// known (cross-product ordering) and its rows can be rescanned.
func (ex *exec) materializePipe(p *pipe) error {
	if p.rel.rows != nil {
		return nil
	}
	rows, err := drainRows(ex, p.op)
	if err != nil {
		return err
	}
	p.rel = &relation{bindings: p.rel.bindings, width: p.rel.width, rows: rows}
	p.op = &scanOperator{rows: rows}
	return nil
}

// drainRows opens op and collects every selected row. The row slices are
// stable (heap rows or chunk allocations); only the windows are transient.
func drainRows(ex *exec, op Operator) ([][]sqltypes.Value, error) {
	if err := op.Open(ex); err != nil {
		return nil, err
	}
	var rows [][]sqltypes.Value
	for {
		b, err := op.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return rows, nil
		}
		for _, i := range b.sel {
			rows = append(rows, b.rows[i])
		}
	}
}

// allPipeBindings flattens pipe schemas into one combined binding list.
func allPipeBindings(pipes []*pipe) []*binding {
	var out []*binding
	off := 0
	for _, p := range pipes {
		for _, b := range p.rel.bindings {
			nb := *b
			nb.off = off + b.off
			out = append(out, &nb)
		}
		off += p.rel.width
	}
	return out
}

func totalPipeWidth(pipes []*pipe) int {
	w := 0
	for _, p := range pipes {
		w += p.rel.width
	}
	return w
}

// runQueryStream executes one SELECT by building, opening and draining its
// operator tree — the streaming counterpart of the materializing runQuery.
func (ex *exec) runQueryStream(sel *sqlast.Select, parent *scope) (*Result, error) {
	root, err := ex.buildQueryOp(sel, parent)
	if err != nil {
		return nil, err
	}
	defer root.op.Close()
	if err := root.op.Open(ex); err != nil {
		return nil, err
	}
	res := &Result{Cols: root.cols}
	for {
		b, err := root.op.Next(ex)
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		for _, i := range b.sel {
			res.Rows = append(res.Rows, b.rows[i])
		}
	}
}

// fromWhereRelation materializes the FROM/WHERE part of one query level —
// the shape UDF body planning caches per parameter tuple. It drains the
// streaming pipeline (or delegates to the materializing builder when
// streaming is disabled).
func (ex *exec) fromWhereRelation(sel *sqlast.Select, parent *scope) (*relation, error) {
	if ex.db.streamOff {
		return ex.buildFromWhere(sel, parent)
	}
	p, err := ex.buildSourcePipe(sel, parent)
	if err != nil {
		return nil, err
	}
	if p.rel.rows != nil {
		return p.rel, nil
	}
	rows, err := drainRows(ex, p.op)
	if err != nil {
		return nil, err
	}
	return &relation{bindings: p.rel.bindings, width: p.rel.width, rows: rows}, nil
}
