package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mtbase/internal/sqltypes"
)

// ---------------------------------------------------------------- filtering

// TestSelectionVectorFilterEdgeCases pins the selection-vector filter on the
// shapes that stress its bookkeeping: an empty input, a filter that keeps
// everything (full selection vectors), a filter that keeps nothing, and
// NULL-heavy columns where three-valued logic drops rows without errors.
// Every case must agree with the row-at-a-time interpreter.
func TestSelectionVectorFilterEdgeCases(t *testing.T) {
	mk := func(rows int, nullEvery int) *DB {
		db := Open(ModePostgres)
		if _, err := db.ExecSQL("CREATE TABLE t (a INTEGER, b INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for i := 0; i < rows; i++ {
			a := sqltypes.NewInt(int64(i))
			if nullEvery > 0 && i%nullEvery == 0 {
				a = sqltypes.Null
			}
			tab.AppendRow([]sqltypes.Value{a, sqltypes.NewInt(int64(i % 7))})
		}
		return db
	}
	cases := []struct {
		name      string
		rows      int
		nullEvery int
		sql       string
	}{
		{"empty input", 0, 0, "SELECT a FROM t WHERE a > 5"},
		{"all selected", 2500, 0, "SELECT a FROM t WHERE a >= 0"},
		{"none selected", 2500, 0, "SELECT a FROM t WHERE a < 0"},
		{"null heavy", 2500, 2, "SELECT a, b FROM t WHERE a > 100 AND b < 5"},
		{"null heavy OR", 2500, 3, "SELECT a FROM t WHERE a < 10 OR a > 2400"},
		{"boundary 1024", 1024, 0, "SELECT a FROM t WHERE a <> 512"},
		{"boundary 1025", 1025, 0, "SELECT a FROM t WHERE a <> 0"},
	}
	for _, c := range cases {
		db := mk(c.rows, c.nullEvery)
		ir, cr, ierr, cerr := runBothPaths(db, c.sql)
		if ierr != nil || cerr != nil {
			t.Fatalf("%s: errors %v / %v", c.name, ierr, cerr)
		}
		if !sameResult(ir, cr) {
			t.Fatalf("%s: interpreter %d rows, batched %d rows", c.name, len(ir.Rows), len(cr.Rows))
		}
	}
}

// TestBatchedErrorIsFirstRowError pins the poisoning discipline: batched
// evaluation must surface the error of the first failing row in row order —
// including rows whose failure the interpreter would only reach on a later
// conjunct — with the identical message.
func TestBatchedErrorIsFirstRowError(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE t (a INTEGER, s VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for i := 0; i < 1500; i++ {
		tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewString("x")})
	}
	// s + 1 errors for every row; the filter a >= 700 short-circuits it for
	// earlier rows, so row 700 is the first failing row on both paths.
	sql := "SELECT a FROM t WHERE a >= 700 AND s + 1 > 0"
	_, _, ierr, cerr := runBothPaths(db, sql)
	if ierr == nil || cerr == nil {
		t.Fatalf("expected errors, got %v / %v", ierr, cerr)
	}
	if ierr.Error() != cerr.Error() {
		t.Fatalf("error mismatch:\n  interp:  %v\n  batched: %v", ierr, cerr)
	}
}

// ---------------------------------------------------------------- ordering

// TestOrderByStableDuplicateKeys proves ORDER BY over precomputed key
// columns preserves input order among duplicate keys, across batch
// boundaries, in both execution modes.
func TestOrderByStableDuplicateKeys(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE t (k INTEGER, seq INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	r := rand.New(rand.NewSource(3))
	const n = 3000 // three batches
	for i := 0; i < n; i++ {
		k := sqltypes.NewInt(int64(r.Intn(5))) // heavy duplication
		if r.Intn(20) == 0 {
			k = sqltypes.Null
		}
		tab.AppendRow([]sqltypes.Value{k, sqltypes.NewInt(int64(i))})
	}
	for _, compiled := range []bool{false, true} {
		db.SetCompileExprs(compiled)
		res, err := db.QuerySQL("SELECT k, seq FROM t ORDER BY k")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != n {
			t.Fatalf("compiled=%v: %d rows", compiled, len(res.Rows))
		}
		for i := 1; i < len(res.Rows); i++ {
			a, b := res.Rows[i-1], res.Rows[i]
			if c := compareNullsFirst(a[0], b[0]); c > 0 {
				t.Fatalf("compiled=%v: keys out of order at %d", compiled, i)
			} else if c == 0 && a[1].I >= b[1].I {
				t.Fatalf("compiled=%v: stability violated at %d: seq %d before %d", compiled, i, a[1].I, b[1].I)
			}
		}
	}
	db.SetCompileExprs(true)
}

// TestStableSortIdxMatchesSliceStable checks the reflection-free merge sort
// against sort.SliceStable on random multi-key columns.
func TestStableSortIdxMatchesSliceStable(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(300)
		k1 := make([]sqltypes.Value, n)
		k2 := make([]sqltypes.Value, n)
		for i := 0; i < n; i++ {
			k1[i] = sqltypes.NewInt(int64(r.Intn(4)))
			k2[i] = sqltypes.NewInt(int64(r.Intn(3)))
			if r.Intn(10) == 0 {
				k1[i] = sqltypes.Null
			}
		}
		less := func(a, b int32) bool {
			if c := compareNullsFirst(k1[a], k1[b]); c != 0 {
				return c < 0
			}
			return compareNullsFirst(k2[a], k2[b]) > 0 // second key DESC
		}
		got := make([]int32, n)
		want := make([]int, n)
		for i := range got {
			got[i] = int32(i)
			want[i] = i
		}
		stableSortIdx(got, less)
		sort.SliceStable(want, func(a, b int) bool { return less(int32(want[a]), int32(want[b])) })
		for i := range got {
			if int(got[i]) != want[i] {
				t.Fatalf("trial %d: permutation mismatch at %d", trial, i)
			}
		}
	}
}

// ---------------------------------------------------------------- grouping

// TestBatchedGroupByNullKeys: NULL is a valid group key and must form its
// own group in the batched grouping path, matching the interpreter.
func TestBatchedGroupByNullKeys(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE t (g INTEGER, v INTEGER)"); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("t")
	for i := 0; i < 2100; i++ {
		g := sqltypes.NewInt(int64(i % 3))
		if i%5 == 0 {
			g = sqltypes.Null
		}
		tab.AppendRow([]sqltypes.Value{g, sqltypes.NewInt(1)})
	}
	ir, cr, ierr, cerr := runBothPaths(db, "SELECT g, COUNT(*), SUM(v) FROM t GROUP BY g ORDER BY g")
	if ierr != nil || cerr != nil {
		t.Fatalf("errors %v / %v", ierr, cerr)
	}
	if !sameResult(ir, cr) {
		t.Fatalf("interpreter %v, batched %v", ir.Rows, cr.Rows)
	}
	if len(cr.Rows) != 4 { // NULL group + 0,1,2
		t.Fatalf("groups = %v", cr.Rows)
	}
}

// ---------------------------------------------------------------- DML

// TestBatchedDMLParity drives UPDATE and DELETE across batch boundaries and
// compares the resulting table contents against the interpreter.
func TestBatchedDMLParity(t *testing.T) {
	mk := func(compiled bool) *DB {
		db := Open(ModePostgres)
		db.SetCompileExprs(compiled)
		if _, err := db.ExecSQL("CREATE TABLE t (a INTEGER, b INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for i := 0; i < 2600; i++ {
			a := sqltypes.NewInt(int64(i))
			if i%11 == 0 {
				a = sqltypes.Null
			}
			tab.AppendRow([]sqltypes.Value{a, sqltypes.NewInt(int64(i % 13))})
		}
		return db
	}
	dump := func(db *DB) string {
		res, err := db.QuerySQL("SELECT a, b FROM t")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Rows)
	}
	for _, stmt := range []string{
		"UPDATE t SET b = b * 2 + 1 WHERE a % 3 = 0",
		"UPDATE t SET a = b, b = a WHERE b BETWEEN 2 AND 7",
		"DELETE FROM t WHERE a > 1300 OR a IS NULL",
	} {
		dbI, dbC := mk(false), mk(true)
		ri, erri := dbI.ExecSQL(stmt)
		rc, errc := dbC.ExecSQL(stmt)
		if erri != nil || errc != nil {
			t.Fatalf("%s: errors %v / %v", stmt, erri, errc)
		}
		if ri.Affected != rc.Affected {
			t.Fatalf("%s: affected %d (interp) vs %d (batched)", stmt, ri.Affected, rc.Affected)
		}
		if dump(dbI) != dump(dbC) {
			t.Fatalf("%s: table contents diverge", stmt)
		}
	}
}

// TestDMLSelfReferencePathParity pins the cases where DML expressions can
// observe the statement's own table: a DELETE predicate with a subquery
// over the same table, and an UPDATE whose SET calls a UDF reading the
// table (running-sum semantics — must take the row loop, not the batched
// snapshot evaluation). Both paths must agree exactly.
func TestDMLSelfReferencePathParity(t *testing.T) {
	mk := func(compiled bool) *DB {
		db := Open(ModePostgres)
		db.SetCompileExprs(compiled)
		if _, err := db.ExecScript(`
			CREATE TABLE t (x INTEGER);
			CREATE FUNCTION s () RETURNS INTEGER AS 'SELECT SUM(x) FROM t' LANGUAGE SQL`); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for i := 1; i <= 1500; i++ {
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i % 40))})
		}
		return db
	}
	dump := func(db *DB) string {
		res, err := db.QuerySQL("SELECT x FROM t")
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprint(res.Rows)
	}
	for _, stmt := range []string{
		"DELETE FROM t WHERE x * 50 > (SELECT SUM(x) / 30 FROM t)",
		"UPDATE t SET x = s() WHERE x = 3",
	} {
		dbI, dbC := mk(false), mk(true)
		ri, erri := dbI.ExecSQL(stmt)
		rc, errc := dbC.ExecSQL(stmt)
		if erri != nil || errc != nil {
			t.Fatalf("%s: errors %v / %v", stmt, erri, errc)
		}
		if ri.Affected != rc.Affected || dump(dbI) != dump(dbC) {
			t.Fatalf("%s: paths diverge (affected %d vs %d)", stmt, ri.Affected, rc.Affected)
		}
	}
}

// TestDeleteErrorLeavesTableIntact: a DELETE whose predicate errors must
// not corrupt the table (regression: in-place compaction used to overwrite
// the heap prefix before the error surfaced).
func TestDeleteErrorLeavesTableIntact(t *testing.T) {
	for _, compiled := range []bool{false, true} {
		db := Open(ModePostgres)
		db.SetCompileExprs(compiled)
		if _, err := db.ExecSQL("CREATE TABLE t (x INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for _, x := range []int64{4, 2, 9} {
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(x)})
		}
		if _, err := db.ExecSQL("DELETE FROM t WHERE x = 4 OR x / (x - 9) > 0"); err == nil {
			t.Fatalf("compiled=%v: expected division by zero", compiled)
		}
		res, err := db.QuerySQL("SELECT x FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(res.Rows) != "[[4] [2] [9]]" {
			t.Fatalf("compiled=%v: table corrupted: %v", compiled, res.Rows)
		}
	}
}

// ---------------------------------------------------------------- chunks

// TestRowChunkIsolation: tuples handed out by a chunk must be fully
// isolated — appending to one must never bleed into the next.
func TestRowChunkIsolation(t *testing.T) {
	ck := newRowChunk(4, 2)
	a := ck.concat([]sqltypes.Value{sqltypes.NewInt(1)}, []sqltypes.Value{sqltypes.NewInt(2)})
	b := ck.concat([]sqltypes.Value{sqltypes.NewInt(3)}, []sqltypes.Value{sqltypes.NewInt(4)})
	_ = append(a, sqltypes.NewInt(99)) // must not clobber b
	if b[0].I != 3 || b[1].I != 4 {
		t.Fatalf("chunk rows alias: %v", b)
	}
}

// TestVecStackReuse: marks and releases must restore positions so one
// statement's scratch is bounded by expression depth, not node count.
func TestVecStackReuse(t *testing.T) {
	var st vecStack
	m := st.mark()
	v1 := st.takeVals(100)
	s1 := st.takeSel(50)
	_ = append(s1, 1)
	if len(st.vals) != 100 || len(st.sel) != 50 {
		t.Fatalf("stack lengths %d/%d", len(st.vals), len(st.sel))
	}
	inner := st.mark()
	_ = st.takeVals(10)
	st.release(inner)
	if len(st.vals) != 100 {
		t.Fatalf("inner release: %d", len(st.vals))
	}
	v1[0] = sqltypes.NewInt(7) // still writable
	st.release(m)
	if len(st.vals) != 0 || len(st.sel) != 0 {
		t.Fatalf("outer release: %d/%d", len(st.vals), len(st.sel))
	}
}
