package engine_test

// Randomized differential fuzzer over the mtdbgen (MT-H) schemas: random
// SELECTs — joins, GROUP BY, ORDER BY, DISTINCT, IN- and EXISTS-subqueries —
// are cross-checked through every execution arm the engine offers: the
// streaming operator tree vs the materializing executor, compiled vs
// interpreted expressions, parallelism 1 vs 8, and unlimited vs a tiny
// memory limit that forces every pipeline breaker through the spill path.
// All arms must agree byte for byte.
//
// The generator emits only total expressions (no division), because a
// spilled statement may evaluate expressions an in-memory LIMIT run never
// reaches — the one accepted divergence of the overflow design (DESIGN.md
// ADR-006). The native FuzzQuery target, whose mutated inputs can contain
// anything, therefore treats error/success disagreement on capped arms as
// out of scope while still requiring byte identity whenever both runs
// succeed, and hard agreement on the materialized/interpreted/parallel arms.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
)

// fuzzKey renders an outcome order- and type-sensitively; errors render as
// their text so error agreement is part of the differential claim.
func fuzzKey(res *engine.Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			fmt.Fprintf(&sb, "%v:%s", v.K, v.String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// ------------------------------------------------------------- generator

// mtGen generates random SELECTs over the MT-H tenant view. Expressions are
// typed (numeric, string, date pools per table set) so generated queries
// plan cleanly, and total, so results carry no data-dependent errors.
type mtGen struct {
	r *rand.Rand
}

type fuzzCols struct {
	nums  []string
	strs  [][2]string // column, sample constant
	dates []string
}

var (
	lineitemCols = fuzzCols{
		nums: []string{"l_partkey", "l_suppkey", "l_linenumber", "l_quantity", "l_extendedprice", "l_discount", "l_tax"},
		strs: [][2]string{
			{"l_returnflag", "R"}, {"l_linestatus", "O"},
			{"l_shipmode", "TRUCK"}, {"l_shipinstruct", "DELIVER IN PERSON"},
		},
		dates: []string{"l_shipdate", "l_commitdate", "l_receiptdate"},
	}
	ordersCols = fuzzCols{
		nums:  []string{"o_shippriority", "o_totalprice", "o_custkey"},
		strs:  [][2]string{{"o_orderstatus", "O"}, {"o_orderpriority", "1-URGENT"}},
		dates: []string{"o_orderdate"},
	}
	customerCols = fuzzCols{
		nums: []string{"c_custkey", "c_nationkey", "c_acctbal"},
		strs: [][2]string{{"c_mktsegment", "BUILDING"}, {"c_name", "Customer#000000001"}},
	}
	supplierCols = fuzzCols{
		nums: []string{"s_suppkey", "s_nationkey", "s_acctbal"},
		strs: [][2]string{{"s_name", "Supplier#000000001"}},
	}
)

func merge(cs ...fuzzCols) fuzzCols {
	var out fuzzCols
	for _, c := range cs {
		out.nums = append(out.nums, c.nums...)
		out.strs = append(out.strs, c.strs...)
		out.dates = append(out.dates, c.dates...)
	}
	return out
}

func (g *mtGen) pick(ss []string) string { return ss[g.r.Intn(len(ss))] }

// numExpr is a total numeric expression: columns, small constants, and
// +, -, * (never division — see the package comment).
func (g *mtGen) numExpr(c fuzzCols, depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(4) == 0 {
			return fmt.Sprintf("%d", g.r.Intn(5000))
		}
		return g.pick(c.nums)
	}
	ops := []string{"+", "-", "*"}
	return fmt.Sprintf("(%s %s %s)",
		g.numExpr(c, depth-1), ops[g.r.Intn(len(ops))], g.numExpr(c, depth-1))
}

func (g *mtGen) pred(c fuzzCols, depth int) string {
	if depth <= 0 {
		switch g.r.Intn(3) {
		case 0:
			cmps := []string{"=", "<>", "<", "<=", ">", ">="}
			return fmt.Sprintf("(%s %s %s)",
				g.numExpr(c, 1), cmps[g.r.Intn(len(cmps))], g.numExpr(c, 1))
		case 1:
			sc := c.strs[g.r.Intn(len(c.strs))]
			cmps := []string{"=", "<>", "<", ">="}
			return fmt.Sprintf("(%s %s '%s')", sc[0], cmps[g.r.Intn(len(cmps))], sc[1])
		default:
			if len(c.dates) >= 2 {
				cmps := []string{"<", "<=", ">", ">="}
				return fmt.Sprintf("(%s %s %s)",
					g.pick(c.dates), cmps[g.r.Intn(len(cmps))], g.pick(c.dates))
			}
			return fmt.Sprintf("(%s >= %d)", g.pick(c.nums), g.r.Intn(2000))
		}
	}
	conj := []string{"AND", "OR"}
	return fmt.Sprintf("(%s %s %s)",
		g.pred(c, depth-1), conj[g.r.Intn(2)], g.pred(c, depth-1))
}

// query emits one random SELECT covering the breaker-heavy shapes: sorts,
// grouped aggregation, inner and LEFT joins, DISTINCT, IN and EXISTS.
func (g *mtGen) query() string {
	switch g.r.Intn(9) {
	case 0: // filtered scan through the external sort
		return fmt.Sprintf(
			"SELECT l_orderkey, l_linenumber, %s AS e FROM lineitem WHERE %s ORDER BY e, l_orderkey, l_linenumber LIMIT %d",
			g.numExpr(lineitemCols, 2), g.pred(lineitemCols, 2), 50+g.r.Intn(400))
	case 1: // grouped aggregation with HAVING
		return fmt.Sprintf(
			"SELECT l_returnflag, l_linestatus, COUNT(*) AS n, SUM(%s) AS s, AVG(%s) AS a, MIN(l_quantity) AS mn, MAX(l_extendedprice) AS mx "+
				"FROM lineitem WHERE %s GROUP BY l_returnflag, l_linestatus HAVING COUNT(*) > %d ORDER BY l_returnflag, l_linestatus",
			g.numExpr(lineitemCols, 2), g.numExpr(lineitemCols, 1), g.pred(lineitemCols, 2), g.r.Intn(4))
	case 2: // hash join orders ⋈ lineitem with residual predicate
		both := merge(ordersCols, lineitemCols)
		return fmt.Sprintf(
			"SELECT o_orderkey, o_totalprice, l_linenumber, %s AS e FROM orders, lineitem "+
				"WHERE o_orderkey = l_orderkey AND %s ORDER BY o_orderkey, l_linenumber, e LIMIT %d",
			g.numExpr(both, 1), g.pred(both, 1), 100+g.r.Intn(300))
	case 3: // LEFT JOIN with null-extended right side
		return fmt.Sprintf(
			"SELECT c_custkey, c_acctbal, o_orderkey, o_totalprice FROM customer LEFT JOIN orders ON c_custkey = o_custkey "+
				"WHERE %s ORDER BY c_custkey, o_orderkey",
			g.pred(customerCols, 1))
	case 4: // DISTINCT over an expression
		return fmt.Sprintf(
			"SELECT DISTINCT %s AS e, l_returnflag FROM lineitem WHERE %s ORDER BY e, l_returnflag",
			g.numExpr(lineitemCols, 1), g.pred(lineitemCols, 1))
	case 5: // uncorrelated IN subquery
		return fmt.Sprintf(
			"SELECT o_orderkey, o_totalprice FROM orders WHERE o_custkey IN "+
				"(SELECT c_custkey FROM customer WHERE %s) AND %s ORDER BY o_orderkey LIMIT %d",
			g.pred(customerCols, 1), g.pred(ordersCols, 1), 100+g.r.Intn(300))
	case 6: // three-way join into grouped aggregation
		all := merge(customerCols, ordersCols, lineitemCols)
		return fmt.Sprintf(
			"SELECT c_nationkey, COUNT(*) AS n, SUM(%s) AS s FROM customer, orders, lineitem "+
				"WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey AND %s GROUP BY c_nationkey ORDER BY c_nationkey",
			g.numExpr(lineitemCols, 1), g.pred(all, 1))
	case 7: // correlated EXISTS
		return fmt.Sprintf(
			"SELECT c_custkey, c_name FROM customer WHERE EXISTS "+
				"(SELECT 1 FROM orders WHERE o_custkey = c_custkey AND %s) ORDER BY c_custkey",
			g.pred(ordersCols, 1))
	default: // join against the globally shared tables
		both := merge(supplierCols, fuzzCols{nums: []string{"n_nationkey", "n_regionkey"}})
		return fmt.Sprintf(
			"SELECT s_suppkey, s_name, n_name FROM supplier, nation WHERE s_nationkey = n_nationkey AND %s ORDER BY s_suppkey",
			g.pred(both, 1))
	}
}

// ------------------------------------------------------------- arms

type fuzzArms struct {
	db   *engine.DB
	conn *middleware.Conn
}

func newFuzzArms(tb testing.TB) *fuzzArms {
	cfg := mth.Config{SF: 0.001, Tenants: 2, Dist: mth.Uniform, Seed: 11, Mode: engine.ModePostgres}
	inst, err := mth.LoadMT(mth.Generate(cfg))
	if err != nil {
		tb.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		tb.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		tb.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)
	return &fuzzArms{db: inst.Srv.DB(), conn: conn}
}

func (a *fuzzArms) reset() {
	a.db.SetStreamExec(true)
	a.db.SetCompileExprs(true)
	a.db.SetParallelism(1)
	a.db.SetMemoryLimit(0)
}

// run executes sql through the cursor path (which honors every knob,
// including the materializing fallback) under a timeout: mutated fuzz
// inputs can drop a join predicate and turn into multi-million-row cross
// products, and one such exec must not stall the whole fuzz loop.
func (a *fuzzArms) run(sql string, timeout time.Duration) string {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	rows, err := a.conn.QueryContext(ctx, sql)
	if err != nil {
		return "error: " + err.Error()
	}
	res, err := rows.Collect()
	rows.Close()
	return fuzzKey(res, err)
}

func timedOut(key string) bool {
	return strings.Contains(key, context.DeadlineExceeded.Error())
}

// fuzzMemLimit forces every breaker through the overflow path on the small
// fuzz dataset.
const fuzzMemLimit = 48 << 10

// check runs sql through every arm and compares against the serial,
// streamed, compiled, unlimited baseline. strict requires bit-identical
// outcomes everywhere (the generated corpus is total, so even errors must
// agree textually); lenient mode — for arbitrary mutated inputs — skips
// error/success disagreement on the capped arms only.
func (a *fuzzArms) check(t *testing.T, sql string, strict bool) {
	t.Helper()
	timeout := 2 * time.Minute
	if !strict {
		timeout = 5 * time.Second
	}
	a.reset()
	base := a.run(sql, timeout)
	baseErr := strings.HasPrefix(base, "error: ")
	if baseErr && !strict {
		// The planner rejected a mutated input (or a pathological one timed
		// out); nothing to cross-check beyond "no panic".
		return
	}
	arms := []struct {
		name   string
		prep   func()
		capped bool
	}{
		{"materialized", func() { a.db.SetStreamExec(false) }, false},
		{"interpreted", func() { a.db.SetCompileExprs(false) }, false},
		{"parallel-8", func() { a.db.SetParallelism(8) }, false},
		{"capped", func() { a.db.SetMemoryLimit(fuzzMemLimit) }, true},
		{"capped-parallel-8", func() {
			a.db.SetMemoryLimit(fuzzMemLimit)
			a.db.SetParallelism(8)
		}, true},
		{"capped-interpreted", func() {
			a.db.SetMemoryLimit(fuzzMemLimit)
			a.db.SetCompileExprs(false)
		}, true},
	}
	for _, arm := range arms {
		a.reset()
		arm.prep()
		got := a.run(sql, timeout)
		a.reset()
		if got == base {
			continue
		}
		if !strict && timedOut(got) {
			// A capped or parallel arm can legitimately be slower than the
			// baseline; a timeout is not a divergence.
			continue
		}
		gotErr := strings.HasPrefix(got, "error: ")
		if !strict && arm.capped && (gotErr != baseErr) && !strings.Contains(got, "spill") {
			// Accepted divergence: a capped run evaluates expressions an
			// in-memory LIMIT run never reaches (or vice versa). Spill
			// infrastructure errors are never acceptable.
			continue
		}
		t.Errorf("%s arm diverges on %q:\n--- arm\n%s--- baseline\n%s", arm.name, sql, got, base)
	}
}

// TestQueryFuzz is the seeded randomized differential suite: every
// generated query must produce identical bytes through all six arms, the
// capped arms must actually spill, and no temp file may outlive the run.
func TestQueryFuzz(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 25
	}
	a := newFuzzArms(t)
	dir := t.TempDir()
	a.db.SetSpillDir(dir)
	engine.SetMorselSize(1)
	defer engine.SetMorselSize(0)
	defer a.reset()
	a.db.Stats = engine.Stats{}
	levels := []optimizer.Level{optimizer.Canonical, optimizer.O3, optimizer.O4}
	g := &mtGen{r: rand.New(rand.NewSource(20260808))}
	for i := 0; i < seeds; i++ {
		a.conn.SetOptLevel(levels[i%len(levels)])
		a.check(t, g.query(), true)
	}
	if a.db.Stats.Snapshot().SpillRuns == 0 {
		t.Error("fuzz run never spilled: capped arms ran in memory")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("%d spill files leaked", len(ents))
	}
}

// FuzzQuery is the native fuzz target: arbitrary SQL (seeded with the 22
// MT-H queries and a sample of generated shapes) must never panic the
// engine, and whenever the baseline succeeds, every arm must agree as
// described in check.
func FuzzQuery(f *testing.F) {
	for _, q := range mth.Queries(0.001) {
		f.Add(q.SQL)
	}
	g := &mtGen{r: rand.New(rand.NewSource(5))}
	for i := 0; i < 24; i++ {
		f.Add(g.query())
	}
	a := newFuzzArms(f)
	a.db.SetSpillDir(f.TempDir())
	f.Fuzz(func(t *testing.T, sql string) {
		if len(sql) > 4096 {
			t.Skip("oversized input")
		}
		a.check(t, sql, false)
	})
}
