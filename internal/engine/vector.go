package engine

// This file lowers expressions into batch evaluators (vecExpr): tight loops
// over a batch's selection vector, the vectorized counterpart of the per-row
// closures in compile.go. Compilation is total in compiled mode — IN-
// subqueries and EXISTS run as native kernels probing the statement's
// subquery memos, and the remaining constructs without a batch kernel are
// lifted, either as a loop over the row-compiled closure (UDF call sites,
// builtins, EXTRACT/SUBSTRING) or, for constructs outside the row-compiled
// subset too (scalar subqueries, correlated references, aggregates misused
// outside a group), as a loop over the tree-walking interpreter. Lifting
// preserves exact per-row value and error semantics by construction, so
// mixing native kernels with lifted subtrees stays behaviourally identical
// to full interpretation.
//
// Contract for every vecExpr fn(b, sel, out):
//   - on entry b.errs[i] == nil for every i in sel;
//   - fn writes out[i] for each i in sel, or poisons row i instead;
//   - fn never modifies sel, and never reads rows outside sel;
//   - value/error per row equals interpreter evaluation of that row, with
//     short-circuits (AND/OR/CASE) expressed as selection-vector refinement
//     so short-circuited subtrees are not evaluated for those rows.
//
// Intermediate columns come from the statement-wide scratch stack
// (exec.vs): a kernel marks the stack, takes its operand columns, evaluates
// its children (whose frames push and pop above), combines, and releases.
// Scratch memory is therefore bounded by expression depth × batch size, not
// node count × batch size — crucial because correlated subqueries and UDF
// bodies recompile per execution.

import (
	"strings"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// vecExpr evaluates an expression for the selected rows of a batch.
type vecExpr func(b *Batch, sel []int32, out []sqltypes.Value)

// ---------------------------------------------------------------- scratch

// vecStack is the statement-wide stack allocator for batch scratch: value
// columns and selection vectors live exactly as long as the kernel
// invocation that took them. Nested queries (lifted subtrees) push frames on
// the same stack, so one statement reuses one arena throughout.
type vecStack struct {
	vals []sqltypes.Value
	sel  []int32
}

// vmark remembers a stack position for release.
type vmark struct{ v, s int }

func (st *vecStack) mark() vmark { return vmark{len(st.vals), len(st.sel)} }

func (st *vecStack) release(m vmark) {
	st.vals = st.vals[:m.v]
	st.sel = st.sel[:m.s]
}

// takeVals returns an uninitialized value column of length n on the stack.
func (st *vecStack) takeVals(n int) []sqltypes.Value {
	off := len(st.vals)
	if off+n > cap(st.vals) {
		grown := make([]sqltypes.Value, off, 2*(off+n))
		copy(grown, st.vals)
		st.vals = grown
	}
	st.vals = st.vals[:off+n]
	return st.vals[off : off+n : off+n]
}

// takeSel returns an empty selection buffer with capacity n on the stack.
func (st *vecStack) takeSel(n int) []int32 {
	off := len(st.sel)
	if off+n > cap(st.sel) {
		grown := make([]int32, off, 2*(off+n))
		copy(grown, st.sel)
		st.sel = grown
	}
	st.sel = st.sel[:off+n]
	return st.sel[off : off : off+n]
}

// ---------------------------------------------------------------- compile

// venv is the vectorizing compilation environment: the row-compile
// environment over the same bindings, the executing exec (vecExprs are
// built per execution — and per parallel worker, each of which compiles its
// own programs against its workerClone — so capturing it is safe), and the
// scope interpreter lifting runs in.
type venv struct {
	env *cenv
	ex  *exec
	sc  *scope
	vs  *vecStack
}

// vecCompile lowers e into a batch evaluator over the flat row layout of
// bindings; sc is the evaluation scope lifted interpretation runs in. It
// returns nil only when compilation is disabled (SetCompileExprs(false)) —
// operators then stay on their row-at-a-time loops.
func (ex *exec) vecCompile(e sqlast.Expr, bindings []*binding, sc *scope) vecExpr {
	if ex.db.noCompile {
		return nil
	}
	env := &cenv{db: ex.db, cat: ex.cat, bindings: bindings, clientBinds: !scopeHasParams(sc)}
	ve := &venv{env: env, ex: ex, sc: sc, vs: &ex.vs}
	return ve.compile(e)
}

func (ve *venv) compile(e sqlast.Expr) vecExpr {
	switch x := e.(type) {
	case *sqlast.Literal:
		return vecConst(x.Val)
	case *sqlast.Param:
		// Statement-level bind: broadcast the per-execution constant. UDF
		// parameter frames fall through to the lift, whose interpreter walk
		// resolves the innermost frame.
		if ve.env.params == nil && ve.env.clientBinds {
			ex := ve.ex
			n := x.N
			return func(b *Batch, sel []int32, out []sqltypes.Value) {
				v, err := ex.bind(n)
				if err != nil {
					for _, i := range sel {
						b.poison(i, err)
					}
					return
				}
				for _, i := range sel {
					out[i] = v
				}
			}
		}
	case *sqlast.ColumnRef:
		idx, ok := resolveLocal(ve.env.bindings, x.Table, x.Name)
		if !ok {
			break // ambiguous or correlated: interpreter semantics via lift
		}
		return func(b *Batch, sel []int32, out []sqltypes.Value) {
			rows := b.rows
			for _, i := range sel {
				out[i] = rows[i][idx]
			}
		}
	case *sqlast.BinaryExpr:
		if fn := ve.compileBinary(x); fn != nil {
			return fn
		}
	case *sqlast.UnaryExpr:
		return ve.compileUnary(x)
	case *sqlast.IsNullExpr:
		sub := ve.compile(x.X)
		not := x.Not
		return func(b *Batch, sel []int32, out []sqltypes.Value) {
			sub(b, sel, out)
			for _, i := range sel {
				if b.errs[i] != nil {
					continue
				}
				out[i] = sqltypes.NewBool(out[i].IsNull() != not)
			}
		}
	case *sqlast.BetweenExpr:
		return ve.compileBetween(x)
	case *sqlast.InExpr:
		if fn := ve.compileIn(x); fn != nil {
			return fn
		}
	case *sqlast.ExistsExpr:
		return ve.compileExists(x)
	case *sqlast.LikeExpr:
		return ve.compileLike(x)
	case *sqlast.CaseExpr:
		return ve.compileCase(x)
	case *sqlast.IntervalExpr:
		switch x.Unit {
		case "DAY":
			return vecConst(sqltypes.NewInterval(x.N, 0))
		case "MONTH":
			return vecConst(sqltypes.NewInterval(0, x.N))
		case "YEAR":
			return vecConst(sqltypes.NewInterval(0, 12*x.N))
		}
	}
	return ve.lift(e)
}

// vecConst broadcasts a constant.
func vecConst(v sqltypes.Value) vecExpr {
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		for _, i := range sel {
			out[i] = v
		}
	}
}

// lift wraps non-native constructs: the row-compiled closure when the
// expression is in the compiled subset (so UDF call sites keep their
// statement-cache probes and planned bodies), the interpreter otherwise.
func (ve *venv) lift(e sqlast.Expr) vecExpr {
	if fn, ok := ve.env.compile(e); ok {
		ex := ve.ex
		return func(b *Batch, sel []int32, out []sqltypes.Value) {
			rows := b.rows
			for _, i := range sel {
				v, err := fn(ex, rows[i])
				if err != nil {
					b.poison(i, err)
					continue
				}
				out[i] = v
			}
		}
	}
	ex, sc := ve.ex, ve.sc
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		rows := b.rows
		for _, i := range sel {
			sc.row = rows[i]
			v, err := ex.eval(e, sc)
			if err != nil {
				b.poison(i, err)
				continue
			}
			out[i] = v
		}
	}
}

// ---------------------------------------------------------------- binary

func (ve *venv) compileBinary(x *sqlast.BinaryExpr) vecExpr {
	switch x.Op {
	case "AND", "OR":
		return ve.compileLogical(x)
	case "=", "<>", "<", "<=", ">", ">=":
		return ve.compileCompare(x)
	case "+":
		return ve.binOp(x, sqltypes.Add)
	case "-":
		return ve.binOp(x, sqltypes.Sub)
	case "*":
		return ve.binOp(x, sqltypes.Mul)
	case "/":
		return ve.binOp(x, sqltypes.Div)
	case "%":
		return ve.binOp(x, func(lv, rv sqltypes.Value) (sqltypes.Value, error) {
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			if rv.AsInt() == 0 {
				return sqltypes.Null, errModuloZero
			}
			return sqltypes.NewInt(lv.AsInt() % rv.AsInt()), nil
		})
	case "||":
		return ve.binOp(x, func(lv, rv sqltypes.Value) (sqltypes.Value, error) {
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewString(lv.AsString() + rv.AsString()), nil
		})
	}
	return nil
}

// compareWant encodes which comparison outcomes satisfy an operator as a
// bitmask over cmp+1 ∈ {0,1,2}, turning the per-row operator dispatch into
// one shift-and-test.
func compareWant(op string) uint8 {
	switch op {
	case "=":
		return 1 << 1
	case "<>":
		return 1<<0 | 1<<2
	case "<":
		return 1 << 0
	case "<=":
		return 1<<0 | 1<<1
	case ">":
		return 1 << 2
	default: // ">="
		return 1<<1 | 1<<2
	}
}

func (ve *venv) compileCompare(x *sqlast.BinaryExpr) vecExpr {
	l, r := ve.compile(x.L), ve.compile(x.R)
	want := compareWant(x.Op)
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		lbuf := st.takeVals(n)
		l(b, sel, lbuf)
		sel = b.compactSel(st.takeSel(len(sel)), sel)
		rbuf := st.takeVals(n)
		r(b, sel, rbuf)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			cmp, ok := sqltypes.Compare(lbuf[i], rbuf[i])
			if !ok {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(want&(1<<uint(cmp+1)) != 0)
		}
		st.release(m)
	}
}

// binOp evaluates both sides column-wise and combines them per selected row.
func (ve *venv) binOp(x *sqlast.BinaryExpr, op func(a, b sqltypes.Value) (sqltypes.Value, error)) vecExpr {
	l, r := ve.compile(x.L), ve.compile(x.R)
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		lbuf := st.takeVals(n)
		l(b, sel, lbuf)
		sel = b.compactSel(st.takeSel(len(sel)), sel)
		rbuf := st.takeVals(n)
		r(b, sel, rbuf)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			v, err := op(lbuf[i], rbuf[i])
			if err != nil {
				b.poison(i, err)
				continue
			}
			out[i] = v
		}
		st.release(m)
	}
}

// compileLogical vectorizes AND/OR with the interpreter's short-circuit:
// rows decided by the left side drop out of the right side's selection
// vector, so the right operand (and any error it would raise) is only
// evaluated for rows the interpreter would evaluate it for.
func (ve *venv) compileLogical(x *sqlast.BinaryExpr) vecExpr {
	l, r := ve.compile(x.L), ve.compile(x.R)
	isAnd := x.Op == "AND"
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		lbuf := st.takeVals(n)
		l(b, sel, lbuf)
		need := st.takeSel(len(sel))
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			lt, known := sqltypes.Truthy(lbuf[i])
			if known && lt != isAnd { // AND: false decides; OR: true decides
				out[i] = sqltypes.NewBool(!isAnd)
				continue
			}
			need = append(need, i)
		}
		rbuf := st.takeVals(n)
		r(b, need, rbuf)
		for _, i := range need {
			if b.errs[i] != nil {
				continue
			}
			rv := rbuf[i]
			if rt, known := sqltypes.Truthy(rv); known && rt != isAnd {
				out[i] = sqltypes.NewBool(!isAnd)
				continue
			}
			if lbuf[i].IsNull() || rv.IsNull() {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(isAnd)
		}
		st.release(m)
	}
}

// ---------------------------------------------------------------- unary &co

func (ve *venv) compileUnary(x *sqlast.UnaryExpr) vecExpr {
	sub := ve.compile(x.X)
	if x.Op == "-" {
		return func(b *Batch, sel []int32, out []sqltypes.Value) {
			sub(b, sel, out)
			for _, i := range sel {
				if b.errs[i] != nil {
					continue
				}
				v, err := sqltypes.Neg(out[i])
				if err != nil {
					b.poison(i, err)
					continue
				}
				out[i] = v
			}
		}
	}
	// NOT with three-valued logic
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		sub(b, sel, out)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			if out[i].IsNull() {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(!out[i].Bool())
		}
	}
}

func (ve *venv) compileBetween(x *sqlast.BetweenExpr) vecExpr {
	sub, lo, hi := ve.compile(x.X), ve.compile(x.Lo), ve.compile(x.Hi)
	not := x.Not
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		vbuf := st.takeVals(n)
		sub(b, sel, vbuf)
		selScratch := st.takeSel(len(sel))
		sel = b.compactSel(selScratch, sel)
		lbuf := st.takeVals(n)
		lo(b, sel, lbuf)
		sel = b.compactSel(selScratch, sel)
		hbuf := st.takeVals(n)
		hi(b, sel, hbuf)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			c1, ok1 := sqltypes.Compare(vbuf[i], lbuf[i])
			c2, ok2 := sqltypes.Compare(vbuf[i], hbuf[i])
			if !ok1 || !ok2 {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool((c1 >= 0 && c2 <= 0) != not)
		}
		st.release(m)
	}
}

// compileIn vectorizes IN over literal-only lists as one hash probe per
// selected row (collision buckets confirmed with exact equality, matching
// compile.go) and IN-subqueries as a native probe of the statement's hashed
// subquery result. Other list shapes lift.
func (ve *venv) compileIn(x *sqlast.InExpr) vecExpr {
	if x.Sub != nil {
		return ve.compileInSubquery(x)
	}
	for _, item := range x.List {
		if _, isLit := item.(*sqlast.Literal); !isLit {
			return nil
		}
	}
	sub := ve.compile(x.X)
	not := x.Not
	set := make(map[string][]sqltypes.Value, len(x.List))
	sawNull := false
	var kb []byte
	for _, item := range x.List {
		v := item.(*sqlast.Literal).Val
		if v.IsNull() {
			sawNull = true
			continue
		}
		kb = sqltypes.AppendKey(kb[:0], v)
		set[string(kb)] = append(set[string(kb)], v)
	}
	var probe []byte
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		sub(b, sel, out)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			v := out[i]
			if v.IsNull() {
				out[i] = sqltypes.Null
				continue
			}
			probe = sqltypes.AppendKey(probe[:0], v)
			found := false
			for _, lv := range set[string(probe)] {
				if eq, ok := sqltypes.Equal(v, lv); ok && eq {
					found = true
					break
				}
			}
			if !found && sawNull {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(found != not)
		}
	}
}

// compileInSubquery is the batched form of evalInSubquery: the left side —
// scalar or row value — is computed column-wise, and membership probes the
// statement's hashed subquery result directly instead of lifting every row
// to the interpreter. The set is built through buildInSet on the first
// non-NULL left value (matching the interpreter, which never runs the
// subquery when every left side is NULL) and is memoized exactly when the
// subquery proves uncorrelated; a correlated subquery re-runs per row with
// the row installed in the scope, as the interpreter does.
func (ve *venv) compileInSubquery(x *sqlast.InExpr) vecExpr {
	comps := []vecExpr{}
	if row, isRow := x.X.(*sqlast.RowExpr); isRow {
		for _, e := range row.Exprs {
			comps = append(comps, ve.compile(e))
		}
	} else {
		comps = append(comps, ve.compile(x.X))
	}
	ex, sc, st := ve.ex, ve.sc, ve.vs
	id := ex.subqID(x.Sub)
	sub, not := x.Sub, x.Not
	cols := make([][]sqltypes.Value, len(comps))
	var keyBuf []byte
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		selBuf := st.takeSel(len(sel))
		for j, comp := range comps {
			cols[j] = st.takeVals(n)
			comp(b, sel, cols[j])
			sel = b.compactSel(selBuf, sel)
		}
		for _, i := range sel {
			null := false
			for j := range cols {
				if cols[j][i].IsNull() {
					null = true
					break
				}
			}
			if null {
				out[i] = sqltypes.Null
				continue
			}
			set, ok := ex.inSetCache[id]
			if !ok {
				sc.row = b.rows[i]
				var err error
				set, err = ex.buildInSet(sub, id, len(cols), sc)
				if err != nil {
					b.poison(i, err)
					continue
				}
			}
			keyBuf = keyBuf[:0]
			for j := range cols {
				keyBuf = sqltypes.AppendKey(keyBuf, cols[j][i])
			}
			found := set.m[string(keyBuf)]
			if !found && set.sawNull {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(found != not)
		}
		st.release(m)
	}
}

// compileExists evaluates EXISTS natively: runSubquery memoizes an
// uncorrelated subquery after its first execution, so every later row costs
// one map probe; a correlated subquery re-runs per row against the current
// scope row, exactly like the interpreter.
func (ve *venv) compileExists(x *sqlast.ExistsExpr) vecExpr {
	ex, sc := ve.ex, ve.sc
	sub, not := x.Sub, x.Not
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		rows := b.rows
		for _, i := range sel {
			sc.row = rows[i]
			res, err := ex.runSubquery(sub, sc)
			if err != nil {
				b.poison(i, err)
				continue
			}
			out[i] = sqltypes.NewBool((len(res.Rows) > 0) != not)
		}
	}
}

func (ve *venv) compileLike(x *sqlast.LikeExpr) vecExpr {
	sub, pat := ve.compile(x.X), ve.compile(x.Pattern)
	not := x.Not
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		sub(b, sel, out)
		sel = b.compactSel(st.takeSel(len(sel)), sel)
		pbuf := st.takeVals(n)
		pat(b, sel, pbuf)
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			if out[i].IsNull() || pbuf[i].IsNull() {
				out[i] = sqltypes.Null
				continue
			}
			out[i] = sqltypes.NewBool(likeMatch(out[i].AsString(), pbuf[i].AsString()) != not)
		}
		st.release(m)
	}
}

// compileCase vectorizes CASE by refining a pending-rows vector through the
// WHEN ladder: each condition is evaluated only for still-undecided rows and
// each THEN only for the rows its condition matched, mirroring the
// interpreter's per-row control flow.
func (ve *venv) compileCase(x *sqlast.CaseExpr) vecExpr {
	var operand vecExpr
	if x.Operand != nil {
		operand = ve.compile(x.Operand)
	}
	conds := make([]vecExpr, len(x.Whens))
	thens := make([]vecExpr, len(x.Whens))
	for i, w := range x.Whens {
		conds[i] = ve.compile(w.Cond)
		thens[i] = ve.compile(w.Then)
	}
	var elseFn vecExpr
	if x.Else != nil {
		elseFn = ve.compile(x.Else)
	}
	st := ve.vs
	return func(b *Batch, sel []int32, out []sqltypes.Value) {
		n := len(b.rows)
		m := st.mark()
		var opbuf []sqltypes.Value
		pending := append(st.takeSel(len(sel)), sel...)
		if operand != nil {
			opbuf = st.takeVals(n)
			operand(b, pending, opbuf)
			pending = b.compactSel(pending, pending)
		}
		other := st.takeSel(len(sel))
		matchBuf := st.takeSel(len(sel))
		cbuf := st.takeVals(n)
		for k := range conds {
			if len(pending) == 0 {
				break
			}
			conds[k](b, pending, cbuf)
			matched := matchBuf[:0]
			still := other[:0]
			for _, i := range pending {
				if b.errs[i] != nil {
					continue
				}
				var hit bool
				if operand != nil {
					eq, ok := sqltypes.Equal(opbuf[i], cbuf[i])
					hit = ok && eq
				} else {
					hit, _ = sqltypes.Truthy(cbuf[i])
				}
				if hit {
					matched = append(matched, i)
				} else {
					still = append(still, i)
				}
			}
			thens[k](b, matched, out)
			pending, other = still, pending[:0]
		}
		switch {
		case elseFn != nil:
			elseFn(b, pending, out)
		default:
			for _, i := range pending {
				if b.errs[i] == nil {
					out[i] = sqltypes.Null
				}
			}
		}
		st.release(m)
	}
}

// ---------------------------------------------------------------- key sets

// vecKeySet computes a set of key expressions (join or group-by keys) into
// per-batch key columns, dropping poisoned and NULL-key rows from the
// selection vector exactly where the row-at-a-time loops skip them. The key
// columns live on the scratch stack: callers mark before compute and release
// once the batch's keys have been consumed.
type vecKeySet struct {
	ex    *exec
	progs []vecExpr
	cols  [][]sqltypes.Value
}

// vecKeys compiles one batch program per expression; nil when compilation
// is disabled.
func (ex *exec) vecKeys(exprs []sqlast.Expr, bindings []*binding, sc *scope) *vecKeySet {
	if ex.db.noCompile {
		return nil
	}
	ks := &vecKeySet{ex: ex, progs: make([]vecExpr, len(exprs)), cols: make([][]sqltypes.Value, len(exprs))}
	for i, e := range exprs {
		ks.progs[i] = ex.vecCompile(e, bindings, sc)
	}
	return ks
}

// compute fills the key columns for b and returns the surviving selection.
// With dropNulls (join keys) rows with a NULL key are dropped — NULL never
// matches an equi key — and their remaining key expressions skipped, exactly
// like the row loops' per-row short-circuit; a non-nil nullMask additionally
// flags them so outer joins can emit them null-extended. Group-by callers
// pass dropNulls=false: NULL is a valid group key.
func (ks *vecKeySet) compute(b *Batch, dropNulls bool, nullMask []bool) []int32 {
	st := &ks.ex.vs
	sel := b.sel
	for j, prog := range ks.progs {
		ks.cols[j] = st.takeVals(len(b.rows))
		prog(b, sel, ks.cols[j])
		kept := st.takeSel(len(sel))
		col := ks.cols[j]
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			if dropNulls && col[i].IsNull() {
				if nullMask != nil {
					nullMask[i] = true
				}
				continue
			}
			kept = append(kept, i)
		}
		sel = kept
	}
	return sel
}

// ---------------------------------------------------------------- agg args

// vecAggArgs builds batch programs for single-argument aggregate calls, the
// vectorized counterpart the grouped projection hands to evalAggregate,
// which streams each group's rows through them batch-at-a-time.
func (ex *exec) vecAggArgs(bindings []*binding, sc *scope, exprs ...sqlast.Expr) map[sqlast.Expr]vecExpr {
	if ex.db.noCompile {
		return nil
	}
	var m map[sqlast.Expr]vecExpr
	for _, e := range exprs {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			fc, ok := n.(*sqlast.FuncCall)
			if !ok || !aggregateNames[strings.ToUpper(fc.Name)] || fc.Star || len(fc.Args) != 1 {
				return true
			}
			if _, done := m[fc.Args[0]]; done {
				return true
			}
			if fn := ex.vecCompile(fc.Args[0], bindings, sc); fn != nil {
				if m == nil {
					m = make(map[sqlast.Expr]vecExpr)
				}
				m[fc.Args[0]] = fn
			}
			return true
		})
	}
	return m
}
