package engine

// Tests for the bounded-memory overflow path: bit-exact codec roundtrips,
// the stability contract of the external merge (spilled runs must reassemble
// the exact order one global stable sort would produce), differential
// equivalence of capped vs unlimited execution across every breaker shape,
// and fault injection through the spillFS hook — a statement whose spill
// I/O fails must return an error (never panic), leave no temp files behind,
// and not poison subsequent statements.

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"os"
	"sync"
	"testing"

	"mtbase/internal/sqltypes"
)

// sameVal compares values bit-exactly: float payloads must round-trip to
// identical IEEE bits (NaN, -0.0 included), not merely compare ==.
func sameVal(a, b sqltypes.Value) bool {
	return a.K == b.K && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func codecValues() []sqltypes.Value {
	return []sqltypes.Value{
		sqltypes.Null,
		sqltypes.NewInt(0),
		sqltypes.NewInt(-1),
		sqltypes.NewInt(math.MaxInt64),
		sqltypes.NewInt(math.MinInt64),
		{K: sqltypes.KindFloat, F: 0},
		{K: sqltypes.KindFloat, F: math.Copysign(0, -1)},
		{K: sqltypes.KindFloat, F: math.NaN()},
		{K: sqltypes.KindFloat, F: math.Inf(1)},
		{K: sqltypes.KindFloat, F: math.Inf(-1)},
		{K: sqltypes.KindFloat, F: math.MaxFloat64},
		{K: sqltypes.KindFloat, F: math.SmallestNonzeroFloat64},
		{K: sqltypes.KindFloat, F: 3.14159265358979},
		sqltypes.NewString(""),
		sqltypes.NewString("plain"),
		sqltypes.NewString("emb\x00edded|delim\nlines"),
		sqltypes.NewString(string(bytes.Repeat([]byte("x"), 1<<15))),
		{K: sqltypes.KindBool, I: 0},
		{K: sqltypes.KindBool, I: 1},
		{K: sqltypes.KindDate, I: 728659},
		{K: sqltypes.KindDate, I: -1},
		{K: sqltypes.KindInterval, I: 3, F: 2.5},
		{K: sqltypes.KindInterval, I: -12, F: math.Copysign(0, -1)},
	}
}

func TestSpillValueCodecRoundTrip(t *testing.T) {
	for i, v := range codecValues() {
		buf := appendSpillValue(nil, v)
		got, rest, err := readSpillValue(buf)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if len(rest) != 0 {
			t.Fatalf("value %d: %d bytes left over", i, len(rest))
		}
		if !sameVal(v, got) {
			t.Errorf("value %d: %v:%v round-tripped to %v:%v", i, v.K, v, got.K, got)
		}
	}
}

// TestSpillRecRoundTrip streams records through the length-delimited file
// format, covering the nil-vs-empty row distinction (zero-width relations
// carry empty non-nil rows) and every seq/key edge.
func TestSpillRecRoundTrip(t *testing.T) {
	vals := codecValues()
	recs := []spillRec{
		{seq: 0, key: nil, row: nil, keys: nil},
		{seq: -1, key: []byte{}, row: []sqltypes.Value{}, keys: nil},
		{seq: math.MaxInt64, key: []byte("k"), row: vals, keys: vals[:3]},
		{seq: math.MinInt64, key: bytes.Repeat([]byte{0}, 300), row: vals[:1], keys: []sqltypes.Value{}},
		{seq: 42, key: []byte("dup"), row: []sqltypes.Value{sqltypes.NewString("a")}, keys: vals},
	}
	var buf []byte
	for i := range recs {
		buf = appendSpillRec(buf, &recs[i])
	}
	r := &spillReader{br: bufio.NewReader(bytes.NewReader(buf))}
	for i := range recs {
		var got spillRec
		ok, err := r.next(&got)
		if err != nil || !ok {
			t.Fatalf("rec %d: ok=%v err=%v", i, ok, err)
		}
		want := &recs[i]
		if got.seq != want.seq || !bytes.Equal(got.key, want.key) {
			t.Fatalf("rec %d: seq/key mismatch", i)
		}
		for _, pair := range [][2][]sqltypes.Value{{got.row, want.row}, {got.keys, want.keys}} {
			g, w := pair[0], pair[1]
			if (g == nil) != (w == nil) || len(g) != len(w) {
				t.Fatalf("rec %d: nil-ness or length not preserved (got %d/%v want %d/%v)",
					i, len(g), g == nil, len(w), w == nil)
			}
			for j := range g {
				if !sameVal(g[j], w[j]) {
					t.Fatalf("rec %d val %d: %v != %v", i, j, g[j], w[j])
				}
			}
		}
	}
	var end spillRec
	if ok, err := r.next(&end); ok || err != nil {
		t.Fatalf("expected clean EOF, got ok=%v err=%v", ok, err)
	}
	// A truncated stream must surface corruption, not garbage.
	r = &spillReader{br: bufio.NewReader(bytes.NewReader(buf[:len(buf)-3]))}
	var rec spillRec
	var err error
	for err == nil {
		var ok bool
		ok, err = r.next(&rec)
		if !ok && err == nil {
			t.Fatal("truncated stream decoded cleanly")
		}
	}
}

// testSpillExec builds a minimal exec for driving spill primitives directly.
func testSpillExec(db *DB, limit int64) *exec {
	return &exec{
		db:     db,
		acct:   &memAccountant{limit: limit, db: db},
		spills: &spillRegistry{},
	}
}

// TestSpillerStableExternalMerge checks the core ordering contract: many
// runs plus an in-memory remainder must merge to exactly what one global
// stable sort over all records in arrival order would produce — equal keys
// stay in arrival order, with file runs beating the newer remainder.
func TestSpillerStableExternalMerge(t *testing.T) {
	db := Open(ModePostgres)
	dir := t.TempDir()
	db.SetSpillDir(dir)
	ex := testSpillExec(db, 1)
	sp := newSpiller(ex, func(a, b *spillRec) bool { return bytes.Compare(a.key, b.key) < 0 })

	const n, runLen = 950, 100 // 9 full runs + a 50-record remainder
	for i := 0; i < n; i++ {
		rec := spillRec{
			seq: int64(i),
			key: []byte{byte(i % 7)},
			row: []sqltypes.Value{sqltypes.NewInt(int64(i))},
		}
		sp.add(rec, recCost(rec.row, rec.keys))
		if (i+1)%runLen == 0 {
			if err := sp.flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !sp.spilled() {
		t.Fatal("spiller wrote no runs")
	}
	m, err := sp.drain()
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	lastKey := -1
	lastSeq := int64(-1)
	for {
		rec, err := m.next()
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			break
		}
		k := int(rec.key[0])
		if k < lastKey {
			t.Fatalf("keys out of order: %d after %d", k, lastKey)
		}
		if k > lastKey {
			lastKey, lastSeq = k, -1
		}
		if rec.seq <= lastSeq {
			t.Fatalf("key %d: arrival order broken (seq %d after %d)", k, rec.seq, lastSeq)
		}
		if int(rec.seq)%7 != k || rec.row[0].I != rec.seq {
			t.Fatalf("record payload corrupted: seq=%d key=%d row=%v", rec.seq, k, rec.row)
		}
		lastSeq = rec.seq
		seen++
	}
	if seen != n {
		t.Fatalf("merged %d records, want %d", seen, n)
	}
	if got := db.Stats.Snapshot().SpillRuns; got != n/runLen {
		t.Fatalf("SpillRuns = %d, want %d", got, n/runLen)
	}
	m.close()
	sp.close()
	assertDirEmpty(t, dir)
	if used := ex.acct.used; used != 0 {
		t.Fatalf("accountant leaks %d bytes after close", used)
	}
}

func assertDirEmpty(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("spill dir not cleaned up: %v", names)
	}
}

// spillShapes engages every breaker's overflow path: external sort, group
// hash table, DISTINCT set, hash join build and LEFT JOIN build.
var spillShapes = []string{
	`SELECT id, val FROM fact ORDER BY val, id`,
	`SELECT id, k FROM fact ORDER BY k DESC, id DESC LIMIT 37`,
	`SELECT grp, k, COUNT(*) AS n, SUM(val) AS s, AVG(val) AS a, MIN(id) AS mn, MAX(id) AS mx FROM fact GROUP BY grp, k ORDER BY grp, k`,
	`SELECT k, COUNT(DISTINCT grp) AS dg FROM fact GROUP BY k ORDER BY k`,
	`SELECT DISTINCT val FROM fact`,
	`SELECT DISTINCT k, grp FROM fact ORDER BY k DESC, grp`,
	`SELECT f.id, d.name FROM fact f JOIN dim d ON f.k = d.k ORDER BY f.id LIMIT 100`,
	`SELECT f.id, o.tag FROM fact f LEFT JOIN other o ON f.id = o.id ORDER BY f.id`,
	`SELECT d.name, COUNT(*) AS n FROM fact f, dim d WHERE f.k = d.k GROUP BY d.name HAVING COUNT(*) > 10 ORDER BY n DESC, d.name`,
	`SELECT id FROM fact WHERE k IN (SELECT k FROM dim WHERE name <> 'd3') ORDER BY id LIMIT 50`,
}

// TestSpillDifferentialShapes is the engine-level acceptance gate: every
// breaker shape, at every memory limit down to 8KB, in both compile modes
// and at parallelism 1 and 8, must be byte-identical to the unlimited
// serial run; tight limits must actually spill, the accounted peak must
// stay within one batch of the limit, and every temp file must be gone.
func TestSpillDifferentialShapes(t *testing.T) {
	db := streamTestDB(t, 10000)
	dir := t.TempDir()
	db.SetSpillDir(dir)
	db.SetStreamExec(true)
	defer db.SetCompileExprs(true)
	defer db.SetParallelism(0)

	db.SetParallelism(1)
	db.SetMemoryLimit(0)
	base := make(map[string]string, len(spillShapes))
	for _, q := range spillShapes {
		base[q] = execKey(db.QuerySQL(q))
	}

	// One batch of slack: over() is polled per input batch, so the buffered
	// overshoot is bounded by one 1024-row batch of charged records (plus
	// parallel scan row references, which never spill).
	const slack = 512 << 10
	for _, limit := range []int64{1 << 20, 64 << 10, 8 << 10} {
		for _, compiled := range []bool{true, false} {
			for _, par := range []int{1, 8} {
				db.SetCompileExprs(compiled)
				db.SetParallelism(par)
				db.SetMemoryLimit(limit)
				db.Stats = Stats{}
				for _, q := range spillShapes {
					if got := execKey(db.QuerySQL(q)); got != base[q] {
						t.Errorf("limit=%d compiled=%v par=%d %q: capped run differs from unlimited oracle",
							limit, compiled, par, q)
					}
				}
				st := db.Stats.Snapshot()
				if limit <= 64<<10 && st.SpillRuns == 0 {
					t.Errorf("limit=%d compiled=%v par=%d: tight limit never spilled", limit, compiled, par)
				}
				if st.SpillRuns > 0 && st.SpillBytes == 0 {
					t.Errorf("limit=%d compiled=%v par=%d: runs without bytes", limit, compiled, par)
				}
				if st.PeakMemBytes > limit+slack {
					t.Errorf("limit=%d compiled=%v par=%d: PeakMemBytes %d exceeds limit plus one batch of slack",
						limit, compiled, par, st.PeakMemBytes)
				}
			}
		}
	}
	assertDirEmpty(t, dir)
}

// ------------------------------------------------------------- fault hook

var errInjected = errors.New("injected spill fault")

// faultFS implements spillFS over the real filesystem with configurable
// failure points: the Nth create, the Nth write, finishing a run, opening a
// run for reading, or the Nth read. Counters are cumulative across files so
// a fault can land mid-statement, after real state is already on disk.
type faultFS struct {
	mu      sync.Mutex
	creates int
	writes  int
	reads   int

	failCreateAt int // 1-based create index to fail at; 0 = never
	failWriteAt  int
	failReadAt   int
	failFinish   bool
	failOpen     bool
}

func (fs *faultFS) create(dir string) (spillFile, error) {
	fs.mu.Lock()
	fs.creates++
	fail := fs.failCreateAt > 0 && fs.creates >= fs.failCreateAt
	fs.mu.Unlock()
	if fail {
		return nil, errInjected
	}
	f, err := osSpillFS{}.create(dir)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, spillFile: f}, nil
}

type faultFile struct {
	fs *faultFS
	spillFile
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	fail := f.fs.failWriteAt > 0 && f.fs.writes >= f.fs.failWriteAt
	f.fs.mu.Unlock()
	if fail {
		return 0, errInjected
	}
	return f.spillFile.Write(p)
}

func (f *faultFile) finish() error {
	if f.fs.failFinish {
		return errInjected
	}
	return f.spillFile.finish()
}

func (f *faultFile) open() (io.ReadCloser, error) {
	if f.fs.failOpen {
		return nil, errInjected
	}
	rc, err := f.spillFile.open()
	if err != nil {
		return nil, err
	}
	return &faultReader{fs: f.fs, rc: rc}, nil
}

type faultReader struct {
	fs *faultFS
	rc io.ReadCloser
}

func (r *faultReader) Read(p []byte) (int, error) {
	r.fs.mu.Lock()
	r.fs.reads++
	fail := r.fs.failReadAt > 0 && r.fs.reads >= r.fs.failReadAt
	r.fs.mu.Unlock()
	if fail {
		return 0, errInjected
	}
	return r.rc.Read(p)
}

func (r *faultReader) Close() error { return r.rc.Close() }

// TestSpillFaultInjection fails spill I/O at every lifecycle point of a
// spilling statement. The contract: the statement returns the injected
// error (no panic), the spill directory is empty afterwards, and once the
// fault clears the same statement spills successfully with identical
// results.
func TestSpillFaultInjection(t *testing.T) {
	cases := []struct {
		name  string
		query string
		fs    *faultFS
	}{
		{"create", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failCreateAt: 1}},
		{"write", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failWriteAt: 1}},
		{"late-write", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failWriteAt: 3}},
		{"finish", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failFinish: true}},
		{"open", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failOpen: true}},
		{"read", `SELECT id, val FROM fact ORDER BY val, id`, &faultFS{failReadAt: 1}},
		{"group-write", `SELECT grp, k, SUM(val) AS s FROM fact GROUP BY grp, k ORDER BY grp, k`, &faultFS{failWriteAt: 1}},
		{"distinct-read", `SELECT DISTINCT id, val FROM fact`, &faultFS{failReadAt: 1}},
		{"join-write", `SELECT f.id, o.tag FROM fact f LEFT JOIN other o ON f.id = o.id`, &faultFS{failWriteAt: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := streamTestDB(t, 6000)
			db.SetStreamExec(true)
			db.SetParallelism(1)
			db.SetMemoryLimit(0)
			want := execKey(db.QuerySQL(tc.query))

			dir := t.TempDir()
			db.SetSpillDir(dir)
			db.SetMemoryLimit(16 << 10)
			db.spillfs = tc.fs
			res, err := db.QuerySQL(tc.query)
			if err == nil {
				t.Fatalf("statement succeeded with %d rows despite injected fault", len(res.Rows))
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("want injected fault, got: %v", err)
			}
			assertDirEmpty(t, dir)

			// The same statement through the cursor path: the error must
			// surface through Collect and Close must sweep the temp files.
			tc.fs.mu.Lock()
			tc.fs.creates, tc.fs.writes, tc.fs.reads = 0, 0, 0
			tc.fs.mu.Unlock()
			rows, err := db.QueryRows(tc.query)
			if err == nil {
				_, err = rows.Collect()
				rows.Close()
			}
			if !errors.Is(err, errInjected) {
				t.Fatalf("cursor path: want injected fault, got: %v", err)
			}
			assertDirEmpty(t, dir)

			// Fault cleared: the statement must recover, actually spill, and
			// match the unlimited oracle byte for byte.
			db.spillfs = nil
			db.Stats = Stats{}
			got, err := db.QuerySQL(tc.query)
			if err != nil {
				t.Fatalf("statement did not recover after fault cleared: %v", err)
			}
			if execKey(got, nil) != want {
				t.Fatal("recovered statement differs from unlimited oracle")
			}
			if db.Stats.Snapshot().SpillRuns == 0 {
				t.Fatal("recovered statement did not spill")
			}
			assertDirEmpty(t, dir)
		})
	}
}

// TestSpillCursorCleanup interleaves a partially drained spilling cursor
// with early Close: temp files must be gone the moment Close returns, and
// Close must stay idempotent.
func TestSpillCursorCleanup(t *testing.T) {
	db := streamTestDB(t, 6000)
	db.SetStreamExec(true)
	db.SetParallelism(1)
	dir := t.TempDir()
	db.SetSpillDir(dir)
	db.SetMemoryLimit(16 << 10)
	rows, err := db.QueryRows(`SELECT id, val FROM fact ORDER BY val, id`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && rows.Next(); i++ {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if db.Stats.Snapshot().SpillRuns == 0 {
		t.Fatal("sort did not spill at a 16KB limit")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertDirEmpty(t, dir)
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	assertDirEmpty(t, dir)
}
