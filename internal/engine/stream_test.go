package engine

// Tests for the pull-based operator executor: differential equivalence
// against the materializing executor across query shapes and compile
// modes, cancellation inside operators (mid-join included), cursor
// lifecycle (idempotent Close, error propagation through Collect), and the
// bounded-memory property of streamed joins.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"mtbase/internal/sqltypes"
)

// streamTestDB builds a small schema exercising every operator: two
// fact-ish tables, a dimension, a view and a UDF.
func streamTestDB(t *testing.T, n int) *DB {
	t.Helper()
	db := Open(ModePostgres)
	if _, err := db.ExecScript(`
		CREATE TABLE fact (id INTEGER NOT NULL, k INTEGER NOT NULL, val INTEGER NOT NULL, grp INTEGER NOT NULL);
		CREATE TABLE dim (k INTEGER NOT NULL, name VARCHAR NOT NULL);
		CREATE TABLE other (id INTEGER NOT NULL, tag VARCHAR NOT NULL);
		CREATE VIEW bigval AS SELECT id, val FROM fact WHERE val >= 50;
		CREATE FUNCTION dimname (INTEGER) RETURNS VARCHAR
			AS 'SELECT name FROM dim WHERE k = $1' LANGUAGE SQL IMMUTABLE`); err != nil {
		t.Fatal(err)
	}
	fact := db.Table("fact")
	rows := make([][]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []sqltypes.Value{
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 7)),
			sqltypes.NewInt(int64(i % 100)), sqltypes.NewInt(int64(i % 5)),
		}
	}
	fact.BulkLoad(rows)
	dim := db.Table("dim")
	for k := 0; k < 7; k++ {
		dim.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k)), sqltypes.NewString(fmt.Sprintf("d%d", k))})
	}
	other := db.Table("other")
	for i := 0; i < n/3; i++ {
		other.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i * 3)), sqltypes.NewString("t")})
	}
	return db
}

// streamShapes covers every operator and composition: scans, filters,
// index probes, hash and nested-loop joins, LEFT JOIN, cross products,
// grouping with HAVING, ORDER BY (column and expression keys), DISTINCT,
// LIMIT, derived tables, views, correlated and uncorrelated subqueries,
// EXISTS, IN, and UDF calls.
var streamShapes = []string{
	`SELECT id, val FROM fact WHERE val % 3 = 0`,
	`SELECT * FROM fact WHERE id >= 2500`,
	`SELECT f.id, d.name FROM fact f, dim d WHERE f.k = d.k AND f.val < 40`,
	`SELECT f.id, d.name FROM fact f JOIN dim d ON f.k = d.k WHERE f.val < 10 ORDER BY f.id`,
	`SELECT f.id, o.tag FROM fact f LEFT JOIN other o ON f.id = o.id WHERE f.id < 50 ORDER BY f.id`,
	`SELECT d.name, COUNT(*) AS n, SUM(f.val) AS tot FROM fact f, dim d WHERE f.k = d.k GROUP BY d.name HAVING COUNT(*) > 10 ORDER BY tot DESC, d.name`,
	`SELECT grp, COUNT(*) AS n FROM fact GROUP BY grp ORDER BY n DESC, grp LIMIT 3`,
	`SELECT DISTINCT val % 7 AS m FROM fact ORDER BY m DESC`,
	`SELECT DISTINCT k FROM fact`,
	`SELECT id FROM fact WHERE id > 100 LIMIT 17`,
	`SELECT x.id, x.v2 FROM (SELECT id, val * 2 AS v2 FROM fact WHERE grp = 1) AS x WHERE x.v2 > 150 ORDER BY x.id LIMIT 9`,
	`SELECT b.id, b.val FROM bigval b WHERE b.id < 200 ORDER BY b.val, b.id`,
	`SELECT id FROM fact WHERE val > (SELECT AVG(val) FROM fact) AND id < 100`,
	`SELECT id FROM fact f WHERE EXISTS (SELECT 1 FROM other o WHERE o.id = f.id) AND id < 90 ORDER BY id`,
	`SELECT id FROM fact WHERE k IN (SELECT k FROM dim WHERE name <> 'd3') AND id < 60`,
	`SELECT id, dimname(k) AS dn FROM fact WHERE id < 40 ORDER BY dn, id`,
	`SELECT COUNT(*) AS n FROM fact WHERE 1 = 0`,
	`SELECT f.id, o.tag FROM fact f, other o WHERE f.id = o.id AND f.val + o.id > 10 ORDER BY f.id LIMIT 25`,
	`SELECT MAX(val) AS mx, MIN(val) AS mn FROM fact WHERE grp = 2`,
	`SELECT grp, AVG(val) AS a FROM fact WHERE id % 2 = 0 GROUP BY grp ORDER BY grp`,
	`SELECT 1 AS one`,
	`SELECT f1.id FROM fact f1, fact2 f2 WHERE f1.id = f2.id AND f1.id < 30 ORDER BY f1.id`,
}

func execKey(res *Result, err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Cols, "|"))
	sb.WriteByte('\n')
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(fmt.Sprintf("%v:%s", v.K, v.String()))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestOperatorTreeMatchesMaterialized runs every shape through the
// operator tree and the materializing executor in both compile modes,
// requiring byte-identical results.
func TestOperatorTreeMatchesMaterialized(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		db := streamTestDB(t, 3000)
		// A second copy of fact for the self-join-ish shape.
		if _, err := db.ExecSQL(`CREATE TABLE fact2 (id INTEGER NOT NULL)`); err != nil {
			t.Fatal(err)
		}
		f2 := db.Table("fact2")
		for i := 0; i < 300; i++ {
			f2.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i * 2))})
		}
		db.SetCompileExprs(compiled)
		for _, q := range streamShapes {
			db.SetStreamExec(true)
			sk := execKey(db.QuerySQL(q))
			db.SetStreamExec(false)
			mk := execKey(db.QuerySQL(q))
			if sk != mk {
				t.Errorf("compiled=%v %q:\nstream:\n%s\nmaterialized:\n%s", compiled, q, sk, mk)
			}
			// The cursor must agree with both.
			db.SetStreamExec(true)
			rows, err := db.QueryRows(q)
			var ck string
			if err != nil {
				ck = "error: " + err.Error()
			} else {
				ck = execKey(rows.Collect())
			}
			if ck != mk {
				t.Errorf("compiled=%v %q: cursor differs:\n%s\nvs\n%s", compiled, q, ck, mk)
			}
		}
	}
}

// countdownCtx cancels itself after a fixed number of Err polls — a
// deterministic way to land a cancellation inside a specific operator
// phase.
type countdownCtx struct {
	context.Context
	polls int
}

func (c *countdownCtx) Err() error {
	c.polls--
	if c.polls <= 0 {
		return context.Canceled
	}
	return nil
}

// TestCancelMidJoin cancels during join execution: once while the build
// side drains (countdown context trips inside Open) and once mid-probe
// (real cancel between batch pulls). Both must surface context.Canceled
// through the cursor.
func TestCancelMidJoin(t *testing.T) {
	db := streamTestDB(t, 5000)
	join := `SELECT f.id, d.name FROM fact f, dim d WHERE f.k = d.k`

	// Build-phase cancellation: the countdown trips after a few operator
	// polls, well before the probe produces its first batch.
	rows, err := db.QueryContext(&countdownCtx{Context: context.Background(), polls: 3}, join)
	if err != nil {
		// Creation-time detection is also acceptable only if the countdown
		// already hit zero — it must be a cancellation either way.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		return
	}
	n := 0
	for rows.Next() {
		n++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("mid-build cancel: want context.Canceled after %d rows, got %v", n, rows.Err())
	}

	// Probe-phase cancellation: deliver the first batch, then cancel.
	ctx, cancel := context.WithCancel(context.Background())
	rows, err = db.QueryContext(ctx, join)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	cancel()
	got := 1
	for rows.Next() {
		got++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("mid-probe cancel: want context.Canceled, got %v", rows.Err())
	}
	if got >= 5000 {
		t.Fatalf("cancel was ignored: %d rows delivered", got)
	}
}

// TestRowsCloseIdempotentAfterError: Close is safe to call repeatedly,
// before exhaustion, and after a mid-stream error; Err survives Close.
func TestRowsCloseIdempotentAfterError(t *testing.T) {
	db := streamTestDB(t, 3000)

	// Mid-stream close, no error.
	rows, err := db.QueryRows(`SELECT id FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	for i := 0; i < 3; i++ {
		if err := rows.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}

	// Mid-stream error: val/(id-2000) poisons row 2000, past batch one.
	rows, err = db.QueryRows(`SELECT id, val % (id - 2000) AS m FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if rows.Err() == nil || !strings.Contains(rows.Err().Error(), "modulo by zero") {
		t.Fatalf("want modulo error, got %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after error: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close after error: %v", err)
	}
	if rows.Err() == nil {
		t.Fatal("Err must survive Close")
	}
}

// TestCollectPropagatesFirstError: Collect on a stream that fails midway
// returns the operator error and no partial result.
func TestCollectPropagatesFirstError(t *testing.T) {
	db := streamTestDB(t, 3000)
	rows, err := db.QueryRows(`SELECT id, val % (id - 2000) AS m FROM fact`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rows.Collect()
	if err == nil || !strings.Contains(err.Error(), "modulo by zero") {
		t.Fatalf("want modulo error from Collect, got res=%v err=%v", res, err)
	}
	if res != nil {
		t.Fatalf("Collect must not return a partial result, got %d rows", len(res.Rows))
	}
}

// TestStreamedJoinBoundedMemory proves a join+filter query streams: after
// the first row is delivered, the number of rows that have moved between
// operators is bounded by a few batches plus the build side — not by the
// probe table size. A materializing executor would have pushed all of
// fact's rows through the pipeline before the first row came out.
func TestStreamedJoinBoundedMemory(t *testing.T) {
	const n = 50000
	db := streamTestDB(t, n)
	// Parallel scans materialize survivor pointers per morsel before the
	// first row comes out; the bounded-memory property is a claim about the
	// serial pipeline, so pin it.
	db.SetParallelism(1)
	db.Stats = Stats{}
	rows, err := db.QueryRows(`SELECT f.id, d.name FROM fact f, dim d WHERE f.k = d.k AND f.id % 2 = 0`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	streamed := db.Stats.RowsStreamed
	// One probe batch flows through scan → filter → join → project (≤ 4
	// emissions of ≤ 1024 rows) plus the dim build side; 8 batches of slack
	// covers scratch. Anything near n means the pipeline materialized.
	if limit := int64(8*BatchSize + 100); streamed > limit {
		t.Fatalf("RowsStreamed = %d after first row; want <= %d (probe table has %d rows)", streamed, limit, n)
	}
	if db.Stats.PeakBatch > int64(BatchSize) {
		t.Fatalf("PeakBatch = %d exceeds batch size %d", db.Stats.PeakBatch, BatchSize)
	}
}
