package engine

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"unicode/utf8"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// exec carries per-statement execution state: the UDF result cache
// (ModePostgres) lives exactly as long as one statement, mirroring how
// PostgreSQL caches IMMUTABLE function results "for the rest of the query
// execution" (§4.2.1). The immutable side of the statement — the AST,
// subquery IDs, UDF body lowerings — lives in the Plan (plan.go), which the
// exec only reads, so one cached plan serves any number of executions.
type exec struct {
	db       *DB
	plan     *Plan
	udfCache map[string]sqltypes.Value // statement-wide UDF result memo (per worker)
	keyBuf   []byte                    // scratch for UDF cache keys; reused across calls
	depth    int                       // subquery/UDF nesting guard

	// cat is the schema snapshot captured at exec creation: every name
	// resolution during execution — tables, views, UDFs, compiled call
	// sites — goes through it, so a statement sees one consistent catalog
	// even while DDL swaps the DB's current one.
	cat *catalog

	// snap pins the heap snapshot of every table in cat at exec creation
	// (under DB.mu, so the pin set is a transactionally consistent cut).
	// All heap and index reads during execution route through it; the
	// statement therefore observes frozen data while writers publish new
	// snapshots concurrently. Worker clones share the same set.
	snap *snapshotSet

	// par is the degree of intra-query parallelism this execution may use
	// (1 = serial). Worker clones and nested executions run serial.
	par int

	// udfProj caches per-execution compiled projections of planned UDF
	// bodies: entries (rows + bindings) are shared across executions on the
	// plan, but the projection closure resolves $n through udfArgs, which
	// is execution state — so each exec compiles its own. udfEntries memoizes
	// plan-level entry lookups so hot call paths skip Plan.mu after the
	// first probe of a key.
	udfProj    map[*udfPlanEntry]compiledExpr
	udfEntries map[udfEntryKey]*udfPlanEntry
	udfArgs    []sqltypes.Value // current planned-UDF argument frame

	// pool holds this statement's parallel workers; it persists across
	// parallel sections so worker caches (compiled projections, scratch
	// stacks) warm up once per statement, not once per operator.
	pool *workerPool

	// subqCache memoizes results of subqueries that did not touch any
	// enclosing scope during execution (uncorrelated subqueries) — the
	// engine's equivalent of PostgreSQL's InitPlan, evaluated once per
	// statement. inSetCache additionally hashes IN-subquery results. Both
	// are keyed by plan-stable subquery IDs, not node pointers: the AST is
	// shared by every execution of a cached plan, so pointer keys would tie
	// the memo's identity to object identity the exec does not own.
	subqCache  map[int32]*Result
	inSetCache map[int32]*inSet

	// dynSubqIDs assigns IDs (above the plan's range) to subquery nodes the
	// plan has never seen: clones made during execution (view bodies, alias
	// substitution) and subqueries inside UDF bodies.
	dynSubqIDs map[*sqlast.Select]int32
	nextDynID  int32

	// vs is the statement-wide scratch stack batch evaluation allocates its
	// intermediate columns and selection buffers from (see vector.go).
	vs vecStack

	// binds holds the client bind-parameter values of this execution; a
	// statement-level $n / ? resolves here after the scope walk finds no UDF
	// parameter frame. One cached plan serves every binding because binds
	// live on the exec, never on the plan.
	binds []sqltypes.Value

	// ctx carries the caller's cancellation; batch loops poll it at batch
	// boundaries (exec.cancelled). nil means non-cancellable.
	ctx context.Context

	// acct is the statement's memory accountant (nil = unlimited); worker
	// clones share it, so parallel charges fold into one budget. spills
	// tracks every live overflow file for cleanup at Rows.Close/statement
	// end (see spill.go); it is shared with worker clones too.
	acct   *memAccountant
	spills *spillRegistry
}

// bind resolves statement-level parameter $n against this execution's bind
// values. With no binds at all the old pre-bind error is preserved: the
// statement-level $n of a non-parameterized execution is the "outside
// function body" shape UDF-only parameters used to raise.
func (ex *exec) bind(n int) (sqltypes.Value, error) {
	if ex.binds == nil {
		return sqltypes.Null, fmt.Errorf("engine: parameter $%d outside function body", n)
	}
	if n < 1 || n > len(ex.binds) {
		return sqltypes.Null, fmt.Errorf("engine: parameter $%d out of range", n)
	}
	return ex.binds[n-1], nil
}

// cancelled reports the context's error once the caller's context is done.
// It is polled at batch boundaries (1024 rows), never per row.
func (ex *exec) cancelled() error {
	if ex.ctx == nil {
		return nil
	}
	return ex.ctx.Err()
}

// scopeHasParams reports whether any scope on the chain carries a UDF
// parameter frame. Compilation uses it to decide whether a $n may be lowered
// to a client-bind lookup: inside a UDF body frame it must keep resolving to
// the function argument instead.
func scopeHasParams(sc *scope) bool {
	for s := sc; s != nil; s = s.parent {
		if s.params != nil {
			return true
		}
	}
	return false
}

// inSet is a hashed IN-subquery result.
type inSet struct {
	m       map[string]bool
	sawNull bool
}

func (db *DB) newExec(p *Plan) *exec {
	cat := db.catalogNow()
	ex := &exec{
		db:         db,
		plan:       p,
		cat:        cat,
		snap:       newSnapshotSet(cat),
		par:        db.parallelism(),
		udfCache:   make(map[string]sqltypes.Value),
		subqCache:  make(map[int32]*Result),
		inSetCache: make(map[int32]*inSet),
		nextDynID:  p.nSubq,
	}
	if db.memLimit > 0 {
		ex.acct = &memAccountant{limit: db.memLimit, db: db}
		ex.spills = &spillRegistry{}
	}
	return ex
}

// snapshotSet is the set of heap snapshots one statement reads: every table
// of the exec's catalog, pinned at exec creation under DB.mu. The map is
// immutable after construction, so workers share it without locking.
type snapshotSet struct {
	m map[*Table]*tableData
}

func newSnapshotSet(cat *catalog) *snapshotSet {
	m := make(map[*Table]*tableData, len(cat.tables))
	for _, t := range cat.tables {
		m[t] = t.data.Load()
	}
	return &snapshotSet{m: m}
}

// pin returns the statement's snapshot of t. Tables outside the pinned
// catalog (created after the exec, or detached) fall back to their current
// snapshot — still immutable, just not part of the statement's cut.
func (s *snapshotSet) pin(t *Table) *tableData {
	if d, ok := s.m[t]; ok {
		return d
	}
	return t.data.Load()
}

// heap returns the statement-pinned row snapshot of t.
func (ex *exec) heap(t *Table) [][]sqltypes.Value { return ex.snap.pin(t).rows }

// tableIndex returns a hash index built over the statement-pinned snapshot
// of t — heap and index always describe the same frozen rows.
func (ex *exec) tableIndex(t *Table, cols []string) (*hashIndex, error) {
	return ex.snap.pin(t).index(t, cols)
}

// function resolves a UDF in the exec's pinned catalog.
func (ex *exec) function(name string) *Function { return ex.cat.function(name) }

// workerClone builds a per-worker execution state for parallel operators:
// it shares the immutable statement context (plan, binds, catalog, pinned
// snapshots, cancellation) and owns everything mutable — caches, scratch
// stack, key buffers. Workers run serial (par = 1) so parallel sections
// never nest.
func (ex *exec) workerClone() *exec {
	return &exec{
		db:         ex.db,
		plan:       ex.plan,
		cat:        ex.cat,
		snap:       ex.snap,
		par:        1,
		depth:      ex.depth,
		binds:      ex.binds,
		ctx:        ex.ctx,
		acct:       ex.acct,
		spills:     ex.spills,
		udfCache:   make(map[string]sqltypes.Value),
		subqCache:  make(map[int32]*Result),
		inSetCache: make(map[int32]*inSet),
		nextDynID:  ex.plan.nSubq,
	}
}

// subqID resolves a subquery node to its memoization key: the plan-stable ID
// when the node belongs to the plan's AST, a per-execution ID otherwise.
func (ex *exec) subqID(sub *sqlast.Select) int32 {
	if id, ok := ex.plan.subqIDs[sub]; ok {
		return id
	}
	if id, ok := ex.dynSubqIDs[sub]; ok {
		return id
	}
	if ex.dynSubqIDs == nil {
		ex.dynSubqIDs = make(map[*sqlast.Select]int32)
	}
	id := ex.nextDynID
	ex.nextDynID++
	ex.dynSubqIDs[sub] = id
	return id
}

// binding is one named tuple slot (table alias) inside a scope. Columns of
// all bindings of a scope are concatenated in the scope's current row.
type binding struct {
	name   string // lower-case alias or table name
	cols   []string
	colIdx map[string]int // lower-case column name -> position within binding
	off    int            // offset of this binding within the scope row
}

func newBinding(name string, cols []string) *binding {
	b := &binding{name: strings.ToLower(name), cols: cols, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		b.colIdx[strings.ToLower(c)] = i
	}
	return b
}

// scope is one level of name resolution; parent links implement correlated
// subqueries and UDF parameter frames.
type scope struct {
	parent   *scope
	bindings []*binding
	row      []sqltypes.Value
	params   []sqltypes.Value // UDF arguments, addressed by $n
	group    *groupCtx        // non-nil while evaluating grouped output

	// crossed marks a subquery boundary: any name resolution that walks
	// past this scope into its ancestors flips the flag, telling the
	// caller the subquery is correlated and must not be cached.
	crossed *bool
}

// groupCtx holds the rows of the current group during aggregate evaluation,
// plus aggregate arguments vectorized against the grouped relation (shared
// by every group of one grouped projection, along with the batch scratch).
type groupCtx struct {
	rows   [][]sqltypes.Value
	aggVec map[sqlast.Expr]vecExpr
	scr    *aggScratch

	// precomp holds aggregate results computed incrementally while merging
	// spilled group runs (operator.go): the group's rows were streamed
	// through per-site accumulators and are no longer resident, so
	// evalAggregate answers from here instead of folding rows. Keyed by
	// call-site node; an error recorded for a site is raised only when the
	// site is actually evaluated, preserving HAVING/CASE short-circuiting.
	precomp map[*sqlast.FuncCall]precompAgg
}

// precompAgg is one precomputed aggregate call-site result.
type precompAgg struct {
	v   sqltypes.Value
	err error
}

// aggScratch is the reusable batch state aggregate evaluation streams group
// rows through; one instance is shared by all groups of a projection.
type aggScratch struct {
	b Batch
}

func rootScope() *scope { return &scope{} }

// lookup resolves a (qualifier, column) pair against the scope chain,
// marking every subquery boundary the resolution walks past.
func (sc *scope) lookup(table, col string) (*scope, int, error) {
	tl, cl := strings.ToLower(table), strings.ToLower(col)
	var crossed []*bool
	for s := sc; s != nil; s = s.parent {
		found := -1
		for _, b := range s.bindings {
			if tl != "" && b.name != tl {
				continue
			}
			if i, ok := b.colIdx[cl]; ok {
				if found >= 0 {
					return nil, 0, fmt.Errorf("engine: ambiguous column %s", col)
				}
				found = b.off + i
			}
		}
		if found >= 0 {
			for _, f := range crossed {
				*f = true
			}
			return s, found, nil
		}
		if s.crossed != nil {
			crossed = append(crossed, s.crossed)
		}
	}
	if table != "" {
		return nil, 0, fmt.Errorf("engine: unknown column %s.%s", table, col)
	}
	return nil, 0, fmt.Errorf("engine: unknown column %s", col)
}

// ---------------------------------------------------------------- eval

var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether a function name is an aggregate.
func IsAggregate(name string) bool { return aggregateNames[strings.ToUpper(name)] }

// builtinScalarFuncs lists every scalar builtin the switches in evalFunc
// (below) and compileFunc (compile.go) resolve; a name added to those
// switches MUST be added here too. Plan dependency analysis (plan.go)
// treats calls outside this set and the aggregates as UDF references: an
// unresolvable one makes the statement uncacheable, so an omission here
// silently disables plan caching for statements using the new builtin.
var builtinScalarFuncs = map[string]bool{
	"CONCAT": true, "CHAR_LENGTH": true, "ABS": true, "ROUND": true,
	"COALESCE": true, "CAST_INTEGER": true, "CAST_INT": true,
	"CAST_BIGINT": true, "CAST_DECIMAL": true, "CAST_NUMERIC": true,
	"CAST_VARCHAR": true, "CAST_CHAR": true, "CAST_TEXT": true,
}

func (ex *exec) eval(e sqlast.Expr, sc *scope) (sqltypes.Value, error) {
	switch x := e.(type) {
	case *sqlast.Literal:
		return x.Val, nil
	case *sqlast.ColumnRef:
		s, idx, err := sc.lookup(x.Table, x.Name)
		if err != nil {
			return sqltypes.Null, err
		}
		if s.row == nil {
			// A grouped query's empty global group has no representative
			// row; non-aggregated references evaluate to NULL so that
			// expressions like rate * SUM(x) yield NULL over empty input.
			if s.group != nil {
				return sqltypes.Null, nil
			}
			return sqltypes.Null, fmt.Errorf("engine: column %s referenced outside row context", x)
		}
		return s.row[idx], nil
	case *sqlast.Param:
		var crossed []*bool
		for s := sc; s != nil; s = s.parent {
			if s.params != nil {
				if x.N < 1 || x.N > len(s.params) {
					return sqltypes.Null, fmt.Errorf("engine: parameter $%d out of range", x.N)
				}
				for _, f := range crossed {
					*f = true
				}
				return s.params[x.N-1], nil
			}
			if s.crossed != nil {
				crossed = append(crossed, s.crossed)
			}
		}
		// No UDF parameter frame anywhere on the chain: a statement-level
		// bind parameter. Binds are per-execution constants, so resolving
		// one never marks a subquery as correlated.
		return ex.bind(x.N)
	case *sqlast.BinaryExpr:
		return ex.evalBinary(x, sc)
	case *sqlast.UnaryExpr:
		v, err := ex.eval(x.X, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if x.Op == "-" {
			return sqltypes.Neg(v)
		}
		// NOT with three-valued logic
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(!v.Bool()), nil
	case *sqlast.FuncCall:
		return ex.evalFunc(x, sc)
	case *sqlast.CaseExpr:
		return ex.evalCase(x, sc)
	case *sqlast.InExpr:
		return ex.evalIn(x, sc)
	case *sqlast.ExistsExpr:
		res, err := ex.runSubquery(x.Sub, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool((len(res.Rows) > 0) != x.Not), nil
	case *sqlast.RowExpr:
		return sqltypes.Null, fmt.Errorf("engine: row value outside IN predicate")
	case *sqlast.BetweenExpr:
		return ex.evalBetween(x, sc)
	case *sqlast.LikeExpr:
		return ex.evalLike(x, sc)
	case *sqlast.IsNullExpr:
		v, err := ex.eval(x.X, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		return sqltypes.NewBool(v.IsNull() != x.Not), nil
	case *sqlast.SubqueryExpr:
		return ex.evalScalarSubquery(x.Sub, sc)
	case *sqlast.ExtractExpr:
		return ex.evalExtract(x, sc)
	case *sqlast.SubstringExpr:
		return ex.evalSubstring(x, sc)
	case *sqlast.IntervalExpr:
		switch x.Unit {
		case "DAY":
			return sqltypes.NewInterval(x.N, 0), nil
		case "MONTH":
			return sqltypes.NewInterval(0, x.N), nil
		case "YEAR":
			return sqltypes.NewInterval(0, 12*x.N), nil
		}
		return sqltypes.Null, fmt.Errorf("engine: bad interval unit %s", x.Unit)
	}
	return sqltypes.Null, fmt.Errorf("engine: cannot evaluate %T", e)
}

// Errors shared between the interpreter and the compiled closures so both
// paths fail identically.
var errModuloZero = fmt.Errorf("engine: modulo by zero")

func errExtractNonDate(k sqltypes.Kind) error {
	return fmt.Errorf("engine: EXTRACT from non-date %s", k)
}

// roundTo rounds f to the given number of decimal digits, shared by the
// interpreted and compiled ROUND.
func roundTo(f float64, digits int64) sqltypes.Value {
	scale := math.Pow(10, float64(digits))
	return sqltypes.NewFloat(math.Round(f*scale) / scale)
}

func (ex *exec) evalBinary(x *sqlast.BinaryExpr, sc *scope) (sqltypes.Value, error) {
	switch x.Op {
	case "AND":
		l, err := ex.eval(x.L, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if lt, known := sqltypes.Truthy(l); known && !lt {
			return sqltypes.NewBool(false), nil
		}
		r, err := ex.eval(x.R, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if rt, known := sqltypes.Truthy(r); known && !rt {
			return sqltypes.NewBool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(true), nil
	case "OR":
		l, err := ex.eval(x.L, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if lt, known := sqltypes.Truthy(l); known && lt {
			return sqltypes.NewBool(true), nil
		}
		r, err := ex.eval(x.R, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if rt, known := sqltypes.Truthy(r); known && rt {
			return sqltypes.NewBool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(false), nil
	}
	l, err := ex.eval(x.L, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	r, err := ex.eval(x.R, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	switch x.Op {
	case "+":
		return sqltypes.Add(l, r)
	case "-":
		return sqltypes.Sub(l, r)
	case "*":
		return sqltypes.Mul(l, r)
	case "/":
		return sqltypes.Div(l, r)
	case "%":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		if r.AsInt() == 0 {
			return sqltypes.Null, errModuloZero
		}
		return sqltypes.NewInt(l.AsInt() % r.AsInt()), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewString(l.AsString() + r.AsString()), nil
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, ok := sqltypes.Compare(l, r)
		if !ok {
			return sqltypes.Null, nil
		}
		var b bool
		switch x.Op {
		case "=":
			b = cmp == 0
		case "<>":
			b = cmp != 0
		case "<":
			b = cmp < 0
		case "<=":
			b = cmp <= 0
		case ">":
			b = cmp > 0
		case ">=":
			b = cmp >= 0
		}
		return sqltypes.NewBool(b), nil
	}
	return sqltypes.Null, fmt.Errorf("engine: unknown operator %s", x.Op)
}

func (ex *exec) evalCase(x *sqlast.CaseExpr, sc *scope) (sqltypes.Value, error) {
	var operand sqltypes.Value
	var err error
	if x.Operand != nil {
		operand, err = ex.eval(x.Operand, sc)
		if err != nil {
			return sqltypes.Null, err
		}
	}
	for _, w := range x.Whens {
		cond, err := ex.eval(w.Cond, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		matched := false
		if x.Operand != nil {
			eq, ok := sqltypes.Equal(operand, cond)
			matched = ok && eq
		} else {
			matched, _ = sqltypes.Truthy(cond)
		}
		if matched {
			return ex.eval(w.Then, sc)
		}
	}
	if x.Else != nil {
		return ex.eval(x.Else, sc)
	}
	return sqltypes.Null, nil
}

func (ex *exec) evalIn(x *sqlast.InExpr, sc *scope) (sqltypes.Value, error) {
	if x.Sub != nil {
		return ex.evalInSubquery(x, sc)
	}
	v, err := ex.eval(x.X, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	sawNull := false
	found := false
	for _, item := range x.List {
		iv, err := ex.eval(item, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		if eq, ok := sqltypes.Equal(v, iv); ok && eq {
			found = true
			break
		}
	}
	if !found && sawNull {
		return sqltypes.Null, nil // unknown per three-valued IN semantics
	}
	return sqltypes.NewBool(found != x.Not), nil
}

// evalInSubquery probes a hashed subquery result. The left side may be a
// row value — (o_orderkey, ttid) IN (SELECT l_orderkey, ttid ...) — which
// is how MTBase makes membership predicates tenant-aware.
func (ex *exec) evalInSubquery(x *sqlast.InExpr, sc *scope) (sqltypes.Value, error) {
	var leftVals []sqltypes.Value
	if row, ok := x.X.(*sqlast.RowExpr); ok {
		leftVals = make([]sqltypes.Value, len(row.Exprs))
		for i, e := range row.Exprs {
			v, err := ex.eval(e, sc)
			if err != nil {
				return sqltypes.Null, err
			}
			leftVals[i] = v
		}
	} else {
		v, err := ex.eval(x.X, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		leftVals = []sqltypes.Value{v}
	}
	for _, v := range leftVals {
		if v.IsNull() {
			return sqltypes.Null, nil
		}
	}

	id := ex.subqID(x.Sub)
	set, ok := ex.inSetCache[id]
	if !ok {
		var err error
		set, err = ex.buildInSet(x.Sub, id, len(leftVals), sc)
		if err != nil {
			return sqltypes.Null, err
		}
	}

	var buf []byte
	for _, v := range leftVals {
		buf = sqltypes.AppendKey(buf, v)
	}
	found := set.m[string(buf)]
	if !found && set.sawNull {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(found != x.Not), nil
}

// buildInSet runs an IN-subquery and hashes its rows, validating that the
// output arity matches the left side (the backstop for shapes plan-time
// validation cannot resolve). The set is memoized exactly when runSubquery
// cached the result — i.e. the subquery proved uncorrelated — shared by the
// interpreter and the batched IN kernel (vector.go).
func (ex *exec) buildInSet(sub *sqlast.Select, id int32, leftArity int, sc *scope) (*inSet, error) {
	res, err := ex.runSubquery(sub, sc)
	if err != nil {
		return nil, err
	}
	if len(res.Cols) != leftArity {
		return nil, fmt.Errorf("engine: IN subquery returns %d columns, left side has %d", len(res.Cols), leftArity)
	}
	set := &inSet{m: make(map[string]bool, len(res.Rows))}
	var buf []byte
	for _, row := range res.Rows {
		buf = buf[:0]
		null := false
		for _, v := range row {
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, v)
		}
		if null {
			set.sawNull = true
			continue
		}
		set.m[string(buf)] = true
	}
	if _, cached := ex.subqCache[id]; cached {
		ex.inSetCache[id] = set
	}
	return set, nil
}

// runSubquery executes a subquery, memoizing the result when execution
// never resolved a name through the subquery boundary (uncorrelated).
func (ex *exec) runSubquery(sub *sqlast.Select, sc *scope) (*Result, error) {
	id := ex.subqID(sub)
	if res, ok := ex.subqCache[id]; ok {
		return res, nil
	}
	if ex.depth > 64 {
		return nil, fmt.Errorf("engine: subquery nesting too deep")
	}
	ex.depth++
	correlated := false
	child := &scope{parent: sc, crossed: &correlated}
	res, err := ex.runQuery(sub, child)
	ex.depth--
	if err != nil {
		return nil, err
	}
	if !correlated {
		ex.subqCache[id] = res
	}
	return res, nil
}

func (ex *exec) evalBetween(x *sqlast.BetweenExpr, sc *scope) (sqltypes.Value, error) {
	v, err := ex.eval(x.X, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	lo, err := ex.eval(x.Lo, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	hi, err := ex.eval(x.Hi, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	c1, ok1 := sqltypes.Compare(v, lo)
	c2, ok2 := sqltypes.Compare(v, hi)
	if !ok1 || !ok2 {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool((c1 >= 0 && c2 <= 0) != x.Not), nil
}

func (ex *exec) evalLike(x *sqlast.LikeExpr, sc *scope) (sqltypes.Value, error) {
	v, err := ex.eval(x.X, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	p, err := ex.eval(x.Pattern, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() || p.IsNull() {
		return sqltypes.Null, nil
	}
	return sqltypes.NewBool(likeMatch(v.AsString(), p.AsString()) != x.Not), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// character) using the classic two-pointer wildcard algorithm. The subject
// is treated as UTF-8: _ consumes one rune, not one byte, and backtracking
// after % advances rune-wise, so multi-byte characters never match half-way.
func likeMatch(s, pattern string) bool {
	si, pi := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case pi < len(pattern) && pattern[pi] == '_':
			_, size := utf8.DecodeRuneInString(s[si:])
			si += size
			pi++
		case pi < len(pattern) && pattern[pi] == s[si]:
			si++
			pi++
		case star >= 0:
			pi = star + 1
			_, size := utf8.DecodeRuneInString(s[match:])
			match += size
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func (ex *exec) evalScalarSubquery(sub *sqlast.Select, sc *scope) (sqltypes.Value, error) {
	res, err := ex.runSubquery(sub, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	if len(res.Cols) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: scalar subquery must return one column")
	}
	switch len(res.Rows) {
	case 0:
		return sqltypes.Null, nil
	case 1:
		return res.Rows[0][0], nil
	}
	return sqltypes.Null, fmt.Errorf("engine: scalar subquery returned %d rows", len(res.Rows))
}

func (ex *exec) evalExtract(x *sqlast.ExtractExpr, sc *scope) (sqltypes.Value, error) {
	v, err := ex.eval(x.X, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() {
		return sqltypes.Null, nil
	}
	if v.K != sqltypes.KindDate {
		return sqltypes.Null, errExtractNonDate(v.K)
	}
	t := sqltypes.DateToTime(v)
	switch x.Field {
	case "YEAR":
		return sqltypes.NewInt(int64(t.Year())), nil
	case "MONTH":
		return sqltypes.NewInt(int64(t.Month())), nil
	case "DAY":
		return sqltypes.NewInt(int64(t.Day())), nil
	}
	return sqltypes.Null, fmt.Errorf("engine: bad EXTRACT field %s", x.Field)
}

func (ex *exec) evalSubstring(x *sqlast.SubstringExpr, sc *scope) (sqltypes.Value, error) {
	v, err := ex.eval(x.X, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	from, err := ex.eval(x.From, sc)
	if err != nil {
		return sqltypes.Null, err
	}
	if v.IsNull() || from.IsNull() {
		return sqltypes.Null, nil
	}
	s := v.AsString()
	start := int(from.AsInt()) - 1 // SQL is 1-based
	if start < 0 {
		start = 0
	}
	if start > len(s) {
		start = len(s)
	}
	end := len(s)
	if x.For != nil {
		n, err := ex.eval(x.For, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if n.IsNull() {
			return sqltypes.Null, nil
		}
		end = start + int(n.AsInt())
		if end > len(s) {
			end = len(s)
		}
		if end < start {
			end = start
		}
	}
	return sqltypes.NewString(s[start:end]), nil
}

// ---------------------------------------------------------------- functions

func (ex *exec) evalFunc(x *sqlast.FuncCall, sc *scope) (sqltypes.Value, error) {
	upper := strings.ToUpper(x.Name)
	if aggregateNames[upper] {
		return ex.evalAggregate(x, sc)
	}
	// scalar builtins
	switch upper {
	case "CONCAT":
		var sb strings.Builder
		for _, a := range x.Args {
			v, err := ex.eval(a, sc)
			if err != nil {
				return sqltypes.Null, err
			}
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			sb.WriteString(v.AsString())
		}
		return sqltypes.NewString(sb.String()), nil
	case "CHAR_LENGTH":
		v, err := ex.evalOneArg(x, sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(int64(len(v.AsString()))), nil
	case "ABS":
		v, err := ex.evalOneArg(x, sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		if v.K == sqltypes.KindInt {
			if v.I < 0 {
				return sqltypes.NewInt(-v.I), nil
			}
			return v, nil
		}
		return sqltypes.NewFloat(math.Abs(v.AsFloat())), nil
	case "ROUND":
		if len(x.Args) == 0 || len(x.Args) > 2 {
			return sqltypes.Null, fmt.Errorf("engine: ROUND takes 1 or 2 arguments")
		}
		v, err := ex.eval(x.Args[0], sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		digits := int64(0)
		if len(x.Args) == 2 {
			d, err := ex.eval(x.Args[1], sc)
			if err != nil || d.IsNull() {
				return sqltypes.Null, err
			}
			digits = d.AsInt()
		}
		return roundTo(v.AsFloat(), digits), nil
	case "COALESCE":
		for _, a := range x.Args {
			v, err := ex.eval(a, sc)
			if err != nil {
				return sqltypes.Null, err
			}
			if !v.IsNull() {
				return v, nil
			}
		}
		return sqltypes.Null, nil
	case "CAST_INTEGER", "CAST_INT", "CAST_BIGINT":
		v, err := ex.evalOneArg(x, sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		return sqltypes.NewInt(v.AsInt()), nil
	case "CAST_DECIMAL", "CAST_NUMERIC":
		v, err := ex.evalOneArg(x, sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		return sqltypes.NewFloat(v.AsFloat()), nil
	case "CAST_VARCHAR", "CAST_CHAR", "CAST_TEXT":
		v, err := ex.evalOneArg(x, sc)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		return sqltypes.NewString(v.AsString()), nil
	}
	// user-defined function
	fn := ex.function(x.Name)
	if fn == nil {
		return sqltypes.Null, fmt.Errorf("engine: unknown function %s", x.Name)
	}
	args := make([]sqltypes.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := ex.eval(a, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		args[i] = v
	}
	return ex.callUDF(fn, args)
}

func (ex *exec) evalOneArg(x *sqlast.FuncCall, sc *scope) (sqltypes.Value, error) {
	if len(x.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: %s takes exactly one argument", x.Name)
	}
	return ex.eval(x.Args[0], sc)
}

// callUDF executes a SQL-bodied function. In ModePostgres the result of an
// IMMUTABLE function is cached per (function, arguments) for the duration
// of the statement; ModeSystemC always re-executes the body — the cost
// difference is exactly what separates Tables 3–5 from Tables 7–9 in the
// paper.
func (ex *exec) callUDF(fn *Function, args []sqltypes.Value) (sqltypes.Value, error) {
	if len(args) != fn.NumParams {
		return sqltypes.Null, fmt.Errorf("engine: %s expects %d arguments, got %d", fn.Name, fn.NumParams, len(args))
	}
	var key string
	if fn.Immutable && ex.db.mode == ModePostgres {
		buf := append(ex.keyBuf[:0], fn.Name...)
		for _, a := range args {
			buf = sqltypes.AppendKey(buf, a)
		}
		ex.keyBuf = buf
		if v, ok := ex.udfCache[string(buf)]; ok {
			atomic.AddInt64(&ex.db.Stats.UDFCacheHits, 1)
			return v, nil
		}
		key = string(buf)
	}
	out, err := ex.execUDFBody(fn, args)
	if err != nil {
		return sqltypes.Null, err
	}
	if key != "" {
		ex.udfCache[key] = out
	}
	return out, nil
}

// execUDFBody runs a function body uncached — the shared tail of callUDF and
// the compiled call sites, which probe the statement cache themselves.
func (ex *exec) execUDFBody(fn *Function, args []sqltypes.Value) (sqltypes.Value, error) {
	atomic.AddInt64(&ex.db.Stats.UDFCalls, 1)
	if ex.depth > 64 {
		return sqltypes.Null, fmt.Errorf("engine: UDF recursion too deep in %s", fn.Name)
	}
	ex.depth++
	var out sqltypes.Value
	var err error
	if plan := ex.planUDF(fn); plan.ok {
		// Planned body: cached FROM/WHERE relation + compiled projection.
		out, err = ex.runPlannedUDF(plan, args)
	} else {
		sc := rootScope()
		// Copy: args is typically a compiled call site's reused argv slice,
		// and a recursive call through the same site would overwrite it while
		// the body still resolves $n through this frame.
		sc.params = append([]sqltypes.Value(nil), args...)
		var res *Result
		res, err = ex.runQuery(fn.Body, sc)
		if err == nil {
			out = sqltypes.Null
			if len(res.Rows) > 0 {
				out = res.Rows[0][0]
			}
		}
	}
	ex.depth--
	if err != nil {
		return sqltypes.Null, fmt.Errorf("engine: in function %s: %w", fn.Name, err)
	}
	return out, nil
}

// ---------------------------------------------------------------- aggregates

func (ex *exec) evalAggregate(x *sqlast.FuncCall, sc *scope) (sqltypes.Value, error) {
	g := sc.group
	if g == nil {
		return sqltypes.Null, fmt.Errorf("engine: aggregate %s outside grouped context", x.Name)
	}
	if g.precomp != nil {
		// Spill-merge path: the group's rows already streamed through this
		// site's accumulator in row order; answer from the stored result.
		if pv, ok := g.precomp[x]; ok {
			return pv.v, pv.err
		}
	}
	upper := strings.ToUpper(x.Name)
	if upper == "COUNT" && x.Star {
		return sqltypes.NewInt(int64(len(g.rows))), nil
	}
	if len(x.Args) != 1 {
		return sqltypes.Null, fmt.Errorf("engine: %s takes exactly one argument", x.Name)
	}
	arg := x.Args[0]

	savedRow, savedGroup := sc.row, sc.group
	sc.group = nil // nested aggregates are invalid
	defer func() { sc.row, sc.group = savedRow, savedGroup }()

	acc := aggAcc{op: upper, distinct: x.Distinct}
	if ex.par > 1 && ex.depth == 0 && len(g.rows) >= 2*morselLen() {
		// Morsel-parallel accumulation for large groups: workers compute the
		// argument column for disjoint chunks of the group's rows, then the
		// values fold serially in row order — identical sums, ties and
		// DISTINCT sets as the serial paths, just computed on all cores.
		// This is where Q1's conversion-function work parallelizes.
		col, err := ex.parallelAggColumn(arg, sc, g.rows)
		if err != nil {
			return sqltypes.Null, err
		}
		for _, v := range col {
			acc.add(v)
		}
	} else if vecFn := g.aggVec[arg]; vecFn != nil && g.scr != nil {
		// Batched accumulation: the argument program fills a column per
		// window of group rows; values accumulate from the column in row
		// order, so sums, ties and DISTINCT sets match the row loop exactly.
		scr := g.scr
		src := scanOp{rows: g.rows}
		for src.next(&scr.b) {
			m := ex.vs.mark()
			col := ex.vs.takeVals(len(scr.b.rows))
			vecFn(&scr.b, scr.b.sel, col)
			if err := scr.b.firstErr(); err != nil {
				return sqltypes.Null, err
			}
			for _, i := range scr.b.sel {
				acc.add(col[i])
			}
			ex.vs.release(m)
		}
	} else {
		for _, row := range g.rows {
			sc.row = row
			v, err := ex.eval(arg, sc)
			if err != nil {
				return sqltypes.Null, err
			}
			acc.add(v)
		}
	}
	res, ok := acc.result()
	if !ok {
		return sqltypes.Null, fmt.Errorf("engine: unknown aggregate %s", x.Name)
	}
	return res, nil
}

// aggAcc accumulates one aggregate over a group's argument values; both the
// batched and the interpreted path feed it in row order.
type aggAcc struct {
	op       string
	distinct bool
	seen     map[string]bool
	count    int64
	sumI     int64
	sumF     float64
	isFloat  bool
	minV     sqltypes.Value
	maxV     sqltypes.Value
}

func (a *aggAcc) add(v sqltypes.Value) {
	if v.IsNull() {
		return
	}
	if a.distinct {
		if a.seen == nil {
			a.seen = make(map[string]bool)
		}
		k := string(sqltypes.AppendKey(nil, v))
		if a.seen[k] {
			return
		}
		a.seen[k] = true
	}
	a.count++
	switch a.op {
	case "SUM", "AVG":
		if v.K == sqltypes.KindFloat {
			a.isFloat = true
			a.sumF += v.F
		} else {
			a.sumI += v.AsInt()
		}
	case "MIN":
		if a.minV.IsNull() {
			a.minV = v
		} else if c, ok := sqltypes.Compare(v, a.minV); ok && c < 0 {
			a.minV = v
		}
	case "MAX":
		if a.maxV.IsNull() {
			a.maxV = v
		} else if c, ok := sqltypes.Compare(v, a.maxV); ok && c > 0 {
			a.maxV = v
		}
	}
}

func (a *aggAcc) result() (sqltypes.Value, bool) {
	switch a.op {
	case "COUNT":
		return sqltypes.NewInt(a.count), true
	case "SUM":
		if a.count == 0 {
			return sqltypes.Null, true
		}
		if a.isFloat {
			return sqltypes.NewFloat(a.sumF + float64(a.sumI)), true
		}
		return sqltypes.NewInt(a.sumI), true
	case "AVG":
		if a.count == 0 {
			return sqltypes.Null, true
		}
		return sqltypes.NewFloat((a.sumF + float64(a.sumI)) / float64(a.count)), true
	case "MIN":
		return a.minV, true
	case "MAX":
		return a.maxV, true
	}
	return sqltypes.Null, false
}

// hasAggregate reports whether e contains an aggregate call at this query
// level (subqueries are separate levels and excluded).
func hasAggregate(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok && aggregateNames[strings.ToUpper(fc.Name)] {
			found = true
			return false
		}
		return !found
	})
	return found
}
