package engine

// This file implements the compiled-expression subsystem: sqlast.Expr trees
// are lowered once per query into closures over the current relation's flat
// row layout, so the per-row hot paths (WHERE filters, projections, join and
// group-by keys, sort keys, aggregate arguments) pay no per-row name
// resolution, no string-keyed scope lookups and no AST dispatch. The paper's
// residual cost after O1–O4 is per-row conversion-function calls; compiling
// the call sites, planning conversion-UDF bodies once per statement and
// memoizing pure conversion results turns that residue into array indexing
// plus hash probes.
//
// Compilation is best-effort: any construct the compiler does not cover —
// subqueries, EXISTS, aggregates, correlated references that resolve in an
// enclosing scope, $n parameters outside a UDF body plan — makes compile
// return nil and the caller falls back to the tree-walking interpreter in
// eval.go. Compiled and interpreted evaluation are kept behaviourally
// identical (including evaluation order, short-circuiting and error
// propagation); the differential property test in property_test.go enforces
// this.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// compiledExpr evaluates an expression against a row laid out according to
// the bindings the expression was compiled with.
type compiledExpr func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error)

// cenv is the compilation environment: the flat row layout plus, inside a
// UDF body plan, the slot the plan stores the current call's arguments in.
// It deliberately holds no *exec — compiled closures take the executing
// exec as a parameter, so a closure cached on a shared plan (a UDF body
// projection, the call sites inside it) runs against whichever execution
// invokes it instead of the one that happened to build it.
type cenv struct {
	db       *DB
	cat      *catalog // the compiling exec's pinned catalog (UDF resolution)
	bindings []*binding
	params   *[]sqltypes.Value // non-nil only inside UDF body plans

	// clientBinds permits lowering a $n to a per-execution bind lookup
	// (exec.bind). It is set only when the compilation scope chain carries
	// no UDF parameter frame: inside a UDF body the same node must resolve
	// to the function argument, which the interpreter fallback handles.
	clientBinds bool
}

// compile lowers e into a closure over the flat row layout described by
// bindings; sc is the scope the expression would be interpreted in, used
// only to decide how $n parameters resolve. It returns nil when e uses any
// construct outside the compiled subset; callers then fall back to exec.eval.
func (ex *exec) compile(e sqlast.Expr, bindings []*binding, sc *scope) compiledExpr {
	if ex.db.noCompile {
		return nil
	}
	env := &cenv{db: ex.db, cat: ex.cat, bindings: bindings, clientBinds: !scopeHasParams(sc)}
	fn, ok := env.compile(e)
	if !ok {
		return nil
	}
	return fn
}

// resolveLocal mirrors one level of scope.lookup: the reference must resolve
// unambiguously against the given bindings. Ambiguous or unresolved
// references (including correlated ones) report !ok so the interpreter
// handles them — reproducing its error or outer-scope resolution.
func resolveLocal(bindings []*binding, table, col string) (int, bool) {
	tl, cl := strings.ToLower(table), strings.ToLower(col)
	found := -1
	for _, b := range bindings {
		if tl != "" && b.name != tl {
			continue
		}
		if i, ok := b.colIdx[cl]; ok {
			if found >= 0 {
				return -1, false // ambiguous: interpreter raises the error
			}
			found = b.off + i
		}
	}
	if found < 0 {
		return -1, false
	}
	return found, true
}

func (env *cenv) compile(e sqlast.Expr) (compiledExpr, bool) {
	switch x := e.(type) {
	case *sqlast.Literal:
		v := x.Val
		return func(*exec, []sqltypes.Value) (sqltypes.Value, error) { return v, nil }, true
	case *sqlast.ColumnRef:
		idx, ok := resolveLocal(env.bindings, x.Table, x.Name)
		if !ok {
			return nil, false
		}
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) { return row[idx], nil }, true
	case *sqlast.Param:
		n := x.N
		if env.params != nil {
			slot := env.params
			return func(*exec, []sqltypes.Value) (sqltypes.Value, error) {
				ps := *slot
				if n < 1 || n > len(ps) {
					return sqltypes.Null, fmt.Errorf("engine: parameter $%d out of range", n)
				}
				return ps[n-1], nil
			}, true
		}
		if env.clientBinds {
			// Statement-level bind: a per-execution constant read off the
			// executing exec, so one compiled plan serves every binding.
			return func(ex *exec, _ []sqltypes.Value) (sqltypes.Value, error) {
				return ex.bind(n)
			}, true
		}
		return nil, false
	case *sqlast.BinaryExpr:
		return env.compileBinary(x)
	case *sqlast.UnaryExpr:
		sub, ok := env.compile(x.X)
		if !ok {
			return nil, false
		}
		if x.Op == "-" {
			return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
				v, err := sub(ex, row)
				if err != nil {
					return sqltypes.Null, err
				}
				return sqltypes.Neg(v)
			}, true
		}
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			v, err := sub(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(!v.Bool()), nil
		}, true
	case *sqlast.FuncCall:
		return env.compileFunc(x)
	case *sqlast.CaseExpr:
		return env.compileCase(x)
	case *sqlast.InExpr:
		return env.compileIn(x)
	case *sqlast.BetweenExpr:
		return env.compileBetween(x)
	case *sqlast.LikeExpr:
		return env.compileLike(x)
	case *sqlast.IsNullExpr:
		sub, ok := env.compile(x.X)
		if !ok {
			return nil, false
		}
		not := x.Not
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			v, err := sub(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			return sqltypes.NewBool(v.IsNull() != not), nil
		}, true
	case *sqlast.ExtractExpr:
		return env.compileExtract(x)
	case *sqlast.SubstringExpr:
		return env.compileSubstring(x)
	case *sqlast.IntervalExpr:
		var v sqltypes.Value
		switch x.Unit {
		case "DAY":
			v = sqltypes.NewInterval(x.N, 0)
		case "MONTH":
			v = sqltypes.NewInterval(0, x.N)
		case "YEAR":
			v = sqltypes.NewInterval(0, 12*x.N)
		default:
			return nil, false
		}
		return func(*exec, []sqltypes.Value) (sqltypes.Value, error) { return v, nil }, true
	}
	// Subqueries, EXISTS, row values: interpreter territory.
	return nil, false
}

func (env *cenv) compileBinary(x *sqlast.BinaryExpr) (compiledExpr, bool) {
	l, ok := env.compile(x.L)
	if !ok {
		return nil, false
	}
	r, ok := env.compile(x.R)
	if !ok {
		return nil, false
	}
	switch x.Op {
	case "AND":
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			lv, err := l(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lt, known := sqltypes.Truthy(lv); known && !lt {
				return sqltypes.NewBool(false), nil
			}
			rv, err := r(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if rt, known := sqltypes.Truthy(rv); known && !rt {
				return sqltypes.NewBool(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(true), nil
		}, true
	case "OR":
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			lv, err := l(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lt, known := sqltypes.Truthy(lv); known && lt {
				return sqltypes.NewBool(true), nil
			}
			rv, err := r(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if rt, known := sqltypes.Truthy(rv); known && rt {
				return sqltypes.NewBool(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(false), nil
		}, true
	case "=", "<>", "<", "<=", ">", ">=":
		op := x.Op
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			lv, err := l(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			cmp, ok := sqltypes.Compare(lv, rv)
			if !ok {
				return sqltypes.Null, nil
			}
			var b bool
			switch op {
			case "=":
				b = cmp == 0
			case "<>":
				b = cmp != 0
			case "<":
				b = cmp < 0
			case "<=":
				b = cmp <= 0
			case ">":
				b = cmp > 0
			case ">=":
				b = cmp >= 0
			}
			return sqltypes.NewBool(b), nil
		}, true
	case "+":
		return compileArith(l, r, sqltypes.Add), true
	case "-":
		return compileArith(l, r, sqltypes.Sub), true
	case "*":
		return compileArith(l, r, sqltypes.Mul), true
	case "/":
		return compileArith(l, r, sqltypes.Div), true
	case "%":
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			lv, err := l(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			if rv.AsInt() == 0 {
				return sqltypes.Null, errModuloZero
			}
			return sqltypes.NewInt(lv.AsInt() % rv.AsInt()), nil
		}, true
	case "||":
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			lv, err := l(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			rv, err := r(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return sqltypes.Null, nil
			}
			return sqltypes.NewString(lv.AsString() + rv.AsString()), nil
		}, true
	}
	return nil, false
}

func compileArith(l, r compiledExpr, op func(a, b sqltypes.Value) (sqltypes.Value, error)) compiledExpr {
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		lv, err := l(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		rv, err := r(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		return op(lv, rv)
	}
}

func (env *cenv) compileCase(x *sqlast.CaseExpr) (compiledExpr, bool) {
	var operand compiledExpr
	if x.Operand != nil {
		var ok bool
		operand, ok = env.compile(x.Operand)
		if !ok {
			return nil, false
		}
	}
	conds := make([]compiledExpr, len(x.Whens))
	thens := make([]compiledExpr, len(x.Whens))
	for i, w := range x.Whens {
		var ok bool
		if conds[i], ok = env.compile(w.Cond); !ok {
			return nil, false
		}
		if thens[i], ok = env.compile(w.Then); !ok {
			return nil, false
		}
	}
	var elseFn compiledExpr
	if x.Else != nil {
		var ok bool
		if elseFn, ok = env.compile(x.Else); !ok {
			return nil, false
		}
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		var opv sqltypes.Value
		if operand != nil {
			var err error
			if opv, err = operand(ex, row); err != nil {
				return sqltypes.Null, err
			}
		}
		for i, cond := range conds {
			cv, err := cond(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			matched := false
			if operand != nil {
				eq, ok := sqltypes.Equal(opv, cv)
				matched = ok && eq
			} else {
				matched, _ = sqltypes.Truthy(cv)
			}
			if matched {
				return thens[i](ex, row)
			}
		}
		if elseFn != nil {
			return elseFn(ex, row)
		}
		return sqltypes.Null, nil
	}, true
}

func (env *cenv) compileIn(x *sqlast.InExpr) (compiledExpr, bool) {
	if x.Sub != nil {
		return nil, false // subquery IN: interpreter caches the hash set
	}
	sub, ok := env.compile(x.X)
	if !ok {
		return nil, false
	}
	not := x.Not

	// Literal-only lists (the common shape after rewrite, e.g. country-code
	// predicates in Q22) collapse to one hash probe. AppendKey encodes
	// integers as float64, so distinct huge integers can share a key; each
	// bucket therefore keeps its values and a hit is confirmed with
	// sqltypes.Equal, giving exact parity with the interpreter's list scan.
	allLit := true
	for _, item := range x.List {
		if _, isLit := item.(*sqlast.Literal); !isLit {
			allLit = false
			break
		}
	}
	if allLit {
		set := make(map[string][]sqltypes.Value, len(x.List))
		sawNull := false
		var buf []byte
		for _, item := range x.List {
			v := item.(*sqlast.Literal).Val
			if v.IsNull() {
				sawNull = true
				continue
			}
			buf = sqltypes.AppendKey(buf[:0], v)
			set[string(buf)] = append(set[string(buf)], v)
		}
		var probe []byte
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			v, err := sub(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if v.IsNull() {
				return sqltypes.Null, nil
			}
			probe = sqltypes.AppendKey(probe[:0], v)
			found := false
			for _, lv := range set[string(probe)] {
				if eq, ok := sqltypes.Equal(v, lv); ok && eq {
					found = true
					break
				}
			}
			if !found && sawNull {
				return sqltypes.Null, nil
			}
			return sqltypes.NewBool(found != not), nil
		}, true
	}

	items := make([]compiledExpr, len(x.List))
	for i, item := range x.List {
		var ok bool
		if items[i], ok = env.compile(item); !ok {
			return nil, false
		}
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		sawNull := false
		found := false
		for _, item := range items {
			iv, err := item(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if eq, ok := sqltypes.Equal(v, iv); ok && eq {
				found = true
				break
			}
		}
		if !found && sawNull {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(found != not), nil
	}, true
}

func (env *cenv) compileBetween(x *sqlast.BetweenExpr) (compiledExpr, bool) {
	sub, ok := env.compile(x.X)
	if !ok {
		return nil, false
	}
	lo, ok := env.compile(x.Lo)
	if !ok {
		return nil, false
	}
	hi, ok := env.compile(x.Hi)
	if !ok {
		return nil, false
	}
	not := x.Not
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		lv, err := lo(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		hv, err := hi(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		c1, ok1 := sqltypes.Compare(v, lv)
		c2, ok2 := sqltypes.Compare(v, hv)
		if !ok1 || !ok2 {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool((c1 >= 0 && c2 <= 0) != not), nil
	}, true
}

func (env *cenv) compileLike(x *sqlast.LikeExpr) (compiledExpr, bool) {
	sub, ok := env.compile(x.X)
	if !ok {
		return nil, false
	}
	pat, ok := env.compile(x.Pattern)
	if !ok {
		return nil, false
	}
	not := x.Not
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		p, err := pat(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() || p.IsNull() {
			return sqltypes.Null, nil
		}
		return sqltypes.NewBool(likeMatch(v.AsString(), p.AsString()) != not), nil
	}, true
}

func (env *cenv) compileExtract(x *sqlast.ExtractExpr) (compiledExpr, bool) {
	sub, ok := env.compile(x.X)
	if !ok {
		return nil, false
	}
	field := x.Field
	switch field {
	case "YEAR", "MONTH", "DAY":
	default:
		return nil, false
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() {
			return sqltypes.Null, nil
		}
		if v.K != sqltypes.KindDate {
			return sqltypes.Null, errExtractNonDate(v.K)
		}
		t := sqltypes.DateToTime(v)
		switch field {
		case "YEAR":
			return sqltypes.NewInt(int64(t.Year())), nil
		case "MONTH":
			return sqltypes.NewInt(int64(t.Month())), nil
		}
		return sqltypes.NewInt(int64(t.Day())), nil
	}, true
}

func (env *cenv) compileSubstring(x *sqlast.SubstringExpr) (compiledExpr, bool) {
	sub, ok := env.compile(x.X)
	if !ok {
		return nil, false
	}
	from, ok := env.compile(x.From)
	if !ok {
		return nil, false
	}
	var forFn compiledExpr
	if x.For != nil {
		if forFn, ok = env.compile(x.For); !ok {
			return nil, false
		}
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		fv, err := from(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		if v.IsNull() || fv.IsNull() {
			return sqltypes.Null, nil
		}
		s := v.AsString()
		start := int(fv.AsInt()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			start = len(s)
		}
		end := len(s)
		if forFn != nil {
			n, err := forFn(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if n.IsNull() {
				return sqltypes.Null, nil
			}
			end = start + int(n.AsInt())
			if end > len(s) {
				end = len(s)
			}
			if end < start {
				end = start
			}
		}
		return sqltypes.NewString(s[start:end]), nil
	}, true
}

// ---------------------------------------------------------------- functions

func (env *cenv) compileFunc(x *sqlast.FuncCall) (compiledExpr, bool) {
	upper := strings.ToUpper(x.Name)
	if aggregateNames[upper] {
		return nil, false // aggregates need the group context
	}
	switch upper {
	case "CONCAT":
		args, ok := env.compileArgs(x.Args)
		if !ok {
			return nil, false
		}
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			var sb strings.Builder
			for _, a := range args {
				v, err := a(ex, row)
				if err != nil {
					return sqltypes.Null, err
				}
				if v.IsNull() {
					return sqltypes.Null, nil
				}
				sb.WriteString(v.AsString())
			}
			return sqltypes.NewString(sb.String()), nil
		}, true
	case "CHAR_LENGTH":
		return env.compileOneArg(x, func(v sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewInt(int64(len(v.AsString()))), nil
		})
	case "ABS":
		return env.compileOneArg(x, func(v sqltypes.Value) (sqltypes.Value, error) {
			if v.K == sqltypes.KindInt {
				if v.I < 0 {
					return sqltypes.NewInt(-v.I), nil
				}
				return v, nil
			}
			return sqltypes.NewFloat(math.Abs(v.AsFloat())), nil
		})
	case "ROUND":
		return env.compileRound(x)
	case "COALESCE":
		args, ok := env.compileArgs(x.Args)
		if !ok {
			return nil, false
		}
		return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
			for _, a := range args {
				v, err := a(ex, row)
				if err != nil {
					return sqltypes.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return sqltypes.Null, nil
		}, true
	case "CAST_INTEGER", "CAST_INT", "CAST_BIGINT":
		return env.compileOneArg(x, func(v sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewInt(v.AsInt()), nil
		})
	case "CAST_DECIMAL", "CAST_NUMERIC":
		return env.compileOneArg(x, func(v sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewFloat(v.AsFloat()), nil
		})
	case "CAST_VARCHAR", "CAST_CHAR", "CAST_TEXT":
		return env.compileOneArg(x, func(v sqltypes.Value) (sqltypes.Value, error) {
			return sqltypes.NewString(v.AsString()), nil
		})
	}
	fn := env.function(x.Name)
	if fn == nil {
		return nil, false // interpreter raises "unknown function"
	}
	if len(x.Args) != fn.NumParams {
		return nil, false // interpreter raises the arity error
	}
	args, ok := env.compileArgs(x.Args)
	if !ok {
		return nil, false
	}
	site := &udfSite{fn: fn, args: args, argv: make([]sqltypes.Value, len(args))}
	if fn.Immutable && env.db.mode == ModePostgres {
		site.cached = true
		site.prefix = []byte(fn.Name)
	}
	return site.call, true
}

// function resolves a UDF against the compiling exec's pinned catalog so a
// compiled closure and its interpreter fallback agree on which function
// definition a name means, even if DDL swaps the live catalog mid-query.
func (env *cenv) function(name string) *Function {
	if env.cat != nil {
		return env.cat.function(name)
	}
	return env.db.Function(name)
}

func (env *cenv) compileArgs(exprs []sqlast.Expr) ([]compiledExpr, bool) {
	args := make([]compiledExpr, len(exprs))
	for i, a := range exprs {
		var ok bool
		if args[i], ok = env.compile(a); !ok {
			return nil, false
		}
	}
	return args, true
}

// compileOneArg handles single-argument builtins with NULL propagation.
// Arity mismatches fall back so the interpreter raises its usual error.
func (env *cenv) compileOneArg(x *sqlast.FuncCall, f func(sqltypes.Value) (sqltypes.Value, error)) (compiledExpr, bool) {
	if len(x.Args) != 1 {
		return nil, false
	}
	sub, ok := env.compile(x.Args[0])
	if !ok {
		return nil, false
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		return f(v)
	}, true
}

func (env *cenv) compileRound(x *sqlast.FuncCall) (compiledExpr, bool) {
	if len(x.Args) == 0 || len(x.Args) > 2 {
		return nil, false
	}
	sub, ok := env.compile(x.Args[0])
	if !ok {
		return nil, false
	}
	var digitsFn compiledExpr
	if len(x.Args) == 2 {
		if digitsFn, ok = env.compile(x.Args[1]); !ok {
			return nil, false
		}
	}
	return func(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
		v, err := sub(ex, row)
		if err != nil || v.IsNull() {
			return sqltypes.Null, err
		}
		digits := int64(0)
		if digitsFn != nil {
			d, err := digitsFn(ex, row)
			if err != nil || d.IsNull() {
				return sqltypes.Null, err
			}
			digits = d.AsInt()
		}
		return roundTo(v.AsFloat(), digits), nil
	}, true
}

// udfSite is one compiled call site of a SQL-bodied function. When the
// function is IMMUTABLE and the engine emulates PostgreSQL, the site probes
// the statement-wide result cache directly with a pre-encoded function-name
// prefix: the paper's conversion functions are deterministic per
// (value, tenant) pair, so the Canonical/O1 levels' 2N conversion calls
// collapse to |distinct inputs| body executions — and sharing the statement
// cache (instead of fronting it with a per-site memo) means a miss pays one
// map probe and one insert, not two of each, while results stay visible
// across call sites of the same function.
//
// The site carries no exec: the executing exec arrives per call. The
// buf/argv scratch is mutable state, which is safe because every compiled
// closure — including UDF body projections, which PR 6 made per-exec
// (ex.udfProj) — belongs to exactly one exec, each parallel worker compiles
// its own closures (workerClone), and recursive re-entry copies argv before
// the body resolves $n (execUDFBody).
type udfSite struct {
	fn     *Function
	args   []compiledExpr
	cached bool   // IMMUTABLE + ModePostgres: probe the statement cache
	prefix []byte // fn.Name, encoded once; must match callUDF's key shape
	buf    []byte
	argv   []sqltypes.Value
}

func (s *udfSite) call(ex *exec, row []sqltypes.Value) (sqltypes.Value, error) {
	for i, a := range s.args {
		v, err := a(ex, row)
		if err != nil {
			return sqltypes.Null, err
		}
		s.argv[i] = v
	}
	if !s.cached {
		return ex.callUDF(s.fn, s.argv)
	}
	buf := append(s.buf[:0], s.prefix...)
	for _, v := range s.argv {
		buf = sqltypes.AppendKey(buf, v)
	}
	s.buf = buf
	if v, ok := ex.udfCache[string(buf)]; ok {
		atomic.AddInt64(&ex.db.Stats.UDFCacheHits, 1)
		return v, nil
	}
	// Materialize the key before executing the body: a recursive function
	// re-enters this site, and the nested call's key encoding reuses the
	// same scratch backing array. Storing under string(buf) after the call
	// would record this result under the *innermost* call's key, poisoning
	// the cache for every later lookup (TestRecursiveMemoPoison2).
	key := string(buf)
	v, err := ex.execUDFBody(s.fn, s.argv)
	if err != nil {
		return sqltypes.Null, err
	}
	ex.udfCache[key] = v
	return v, nil
}

// ---------------------------------------------------------------- UDF plans

// udfPlan is a once-per-plan lowering of a simple UDF body — the shape
// the paper's conversion functions take:
//
//	SELECT <scalar expr over columns and $n> FROM <base tables>
//	WHERE <conjuncts over columns and $n, no subqueries>
//
// The FROM/WHERE part depends only on the parameters the WHERE references
// (the tenant key for conversion functions), so its materialized relation is
// cached per distinct tuple of those parameters; the projection is compiled
// once per cached relation. A conversion call then costs one hash probe plus
// one compiled-closure evaluation instead of a full query plan-and-execute,
// independent of the engine mode — like a prepared plan, it accelerates
// ModeSystemC too without caching *results*, preserving the paper's
// cached-vs-uncached distinction (Tables 3–5 vs 7–9).
//
// udfPlans live on the statement Plan and survive across executions; the
// entries derive exclusively from dep-pinned tables, so plan validation
// doubles as their invalidation. mu guards the entries map: concurrent
// executions (and parallel workers within one) share the plan, and all of
// them pinned identical snapshots of the dep tables — a plan is only handed
// out after validation against the same versions the exec pinned, and any
// version bump produces a fresh plan object — so whichever execution builds
// an entry first builds the same relation every other sharer would.
type udfPlan struct {
	mu          sync.Mutex
	ok          bool
	body        *sqlast.Select
	proj        sqlast.Expr
	whereParams []int // 1-based parameter indices the WHERE references
	entries     map[string]*udfPlanEntry
}

// udfPlanEntryCap bounds the relations a udfPlan accumulates: conversion
// functions are keyed by tenant (entries ≤ tenant count), but a body whose
// WHERE references a value parameter would otherwise grow one materialized
// relation per distinct argument for the life of the cached plan. On
// overflow the memo restarts empty; entries rebuild on demand.
const udfPlanEntryCap = 4096

// udfPlanEntry is the body's FROM/WHERE relation for one tuple of
// WHERE-referenced arguments. It is immutable once inserted; the projection
// closure compiled against it is per-exec (ex.udfProj), because compiled
// closures capture their exec's scratch and must not cross goroutines.
type udfPlanEntry struct {
	rows     [][]sqltypes.Value
	bindings []*binding
}

// planUDF analyses fn's body once per *plan* and returns its lowering. The
// plan owns the memo, so a cached statement pays the analysis — and the
// per-parameter-tuple relations its entries accumulate — once across all of
// its executions; version-based plan invalidation (plan.go) discards them
// the moment any table a body reads changes.
func (ex *exec) planUDF(fn *Function) *udfPlan {
	p := ex.plan
	p.mu.Lock()
	defer p.mu.Unlock()
	if plan, ok := p.udfPlans[fn]; ok {
		return plan
	}
	plan := buildUDFPlan(fn.Body)
	if ex.db.noCompile {
		plan = &udfPlan{}
	}
	if p.udfPlans == nil {
		p.udfPlans = make(map[*Function]*udfPlan)
	}
	p.udfPlans[fn] = plan
	return plan
}

func buildUDFPlan(body *sqlast.Select) *udfPlan {
	if body.Distinct || len(body.GroupBy) > 0 || body.Having != nil ||
		len(body.OrderBy) > 0 || body.Limit >= 0 || len(body.Items) != 1 {
		return &udfPlan{}
	}
	it := body.Items[0]
	if it.Star || hasAggregate(it.Expr) {
		return &udfPlan{}
	}
	for _, te := range body.From {
		if _, isName := te.(*sqlast.TableName); !isName {
			return &udfPlan{}
		}
	}
	if len(sqlast.SubqueriesOf(body.Where)) > 0 || len(sqlast.SubqueriesOf(it.Expr)) > 0 {
		return &udfPlan{}
	}
	seen := map[int]bool{}
	var params []int
	sqlast.WalkExpr(body.Where, func(n sqlast.Expr) bool {
		if p, ok := n.(*sqlast.Param); ok && !seen[p.N] {
			seen[p.N] = true
			params = append(params, p.N)
		}
		return true
	})
	return &udfPlan{
		ok:          true,
		body:        body,
		proj:        it.Expr,
		whereParams: params,
		entries:     make(map[string]*udfPlanEntry),
	}
}

// run executes one call through the plan. Behaviour matches
// runQuery(body, scope-with-params) followed by taking the first row's only
// column (NULL over an empty result), the contract of callUDF.
func (ex *exec) runPlannedUDF(plan *udfPlan, args []sqltypes.Value) (sqltypes.Value, error) {
	buf := ex.keyBuf[:0]
	for _, n := range plan.whereParams {
		if n >= 1 && n <= len(args) {
			buf = sqltypes.AppendKey(buf, args[n-1])
		} else {
			buf = append(buf, 'x')
		}
	}
	ex.keyBuf = buf
	// Materialize the key before any nested evaluation: building the entry
	// relation below can call UDFs in the WHERE, which reuse ex.keyBuf.
	key := string(buf)

	// Per-exec memo first: parallel workers would otherwise serialize on
	// Plan.mu for every call. The memo key carries the plan identity —
	// different functions share the exec-level map — and entries are
	// immutable, so a memoized pointer stays valid even if the plan-level
	// map restarts on overflow.
	memoKey := udfEntryKey{plan: plan, key: key}
	if entry := ex.udfEntries[memoKey]; entry != nil {
		return ex.projectPlannedUDF(plan, entry, args)
	}
	plan.mu.Lock()
	entry := plan.entries[key]
	plan.mu.Unlock()
	if entry == nil {
		// Build outside the lock: the relation derives only from dep-pinned
		// snapshots plus args, so two racing builders produce identical rows
		// and the first insert wins.
		psc := rootScope()
		psc.params = args
		rel, err := ex.fromWhereRelation(plan.body, psc)
		if err != nil {
			return sqltypes.Null, err
		}
		entry = &udfPlanEntry{rows: rel.rows, bindings: rel.bindings}
		plan.mu.Lock()
		if existing := plan.entries[key]; existing != nil {
			entry = existing
		} else {
			if len(plan.entries) >= udfPlanEntryCap {
				plan.entries = make(map[string]*udfPlanEntry)
			}
			plan.entries[key] = entry
		}
		plan.mu.Unlock()
	}
	if ex.udfEntries == nil {
		ex.udfEntries = make(map[udfEntryKey]*udfPlanEntry)
	}
	ex.udfEntries[memoKey] = entry
	return ex.projectPlannedUDF(plan, entry, args)
}

// udfEntryKey identifies a planned-UDF relation in the per-exec memo:
// the owning plan (one per function) plus the encoded WHERE parameters.
type udfEntryKey struct {
	plan *udfPlan
	key  string
}

// projectPlannedUDF evaluates the body projection over an entry's cached
// relation — the per-call tail of runPlannedUDF once the relation is known.
func (ex *exec) projectPlannedUDF(plan *udfPlan, entry *udfPlanEntry, args []sqltypes.Value) (sqltypes.Value, error) {
	// The projection closure is compiled per exec: its $n lowering reads
	// *ex.udfArgs, and the closure itself may capture exec-owned scratch, so
	// sharing it across concurrent executions of the same plan would race.
	projFn, tried := ex.udfProj[entry]
	if !tried {
		env := &cenv{db: ex.db, cat: ex.cat, bindings: entry.bindings, params: &ex.udfArgs}
		projFn, _ = env.compile(plan.proj)
		if ex.udfProj == nil {
			ex.udfProj = make(map[*udfPlanEntry]compiledExpr)
		}
		ex.udfProj[entry] = projFn // nil marks "tried, interpret instead"
	}

	// The interpreter projects every row and returns the first; evaluating
	// all rows keeps error behaviour identical when later rows fail.
	// udfArgs must be a copy: args is typically a call site's reused argv
	// slice, and a recursive call through the same site would overwrite it
	// while the enclosing call's $n closures still read it.
	savedArgs := ex.udfArgs
	ex.udfArgs = append([]sqltypes.Value(nil), args...)
	defer func() { ex.udfArgs = savedArgs }()

	out := sqltypes.Null
	if projFn != nil {
		for i, row := range entry.rows {
			v, err := projFn(ex, row)
			if err != nil {
				return sqltypes.Null, err
			}
			if i == 0 {
				out = v
			}
		}
		return out, nil
	}
	psc := rootScope()
	psc.params = args
	sc := &scope{parent: psc, bindings: entry.bindings}
	for i, row := range entry.rows {
		sc.row = row
		v, err := ex.eval(plan.proj, sc)
		if err != nil {
			return sqltypes.Null, err
		}
		if i == 0 {
			out = v
		}
	}
	return out, nil
}
