package engine

import (
	"fmt"
	"testing"

	"mtbase/internal/sqltypes"
)

// newEmployeeDB builds the paper's running example (Figure 2) as one shared
// ST-layout database plus the conversion meta tables.
func newEmployeeDB(t testing.TB, mode Mode) *DB {
	t.Helper()
	db := Open(mode)
	script := `
CREATE TABLE Employees (
  ttid INTEGER NOT NULL,
  E_emp_id INTEGER NOT NULL,
  E_name VARCHAR(25) NOT NULL,
  E_role_id INTEGER NOT NULL,
  E_reg_id INTEGER NOT NULL,
  E_salary DECIMAL(15,2) NOT NULL,
  E_age INTEGER NOT NULL
);
CREATE TABLE Roles (
  ttid INTEGER NOT NULL,
  R_role_id INTEGER NOT NULL,
  R_name VARCHAR(25) NOT NULL
);
CREATE TABLE Regions (
  Re_reg_id INTEGER NOT NULL,
  Re_name VARCHAR(25) NOT NULL,
  CONSTRAINT pk_reg PRIMARY KEY (Re_reg_id)
);
CREATE TABLE Tenant (
  T_tenant_key INTEGER NOT NULL,
  T_currency_key INTEGER NOT NULL
);
CREATE TABLE CurrencyTransform (
  CT_currency_key INTEGER NOT NULL,
  CT_to_universal DECIMAL(15,2) NOT NULL,
  CT_from_universal DECIMAL(15,2) NOT NULL
);
INSERT INTO Employees VALUES
  (0, 0, 'Patrick', 1, 3, 50000, 30),
  (0, 1, 'John',    0, 3, 70000, 28),
  (0, 2, 'Alice',   2, 3, 150000, 46),
  (1, 0, 'Allan',   1, 2, 80000, 25),
  (1, 1, 'Nancy',   2, 4, 200000, 72),
  (1, 2, 'Ed',      0, 4, 1000000, 46);
INSERT INTO Roles VALUES
  (0, 0, 'phD stud.'), (0, 1, 'postdoc'), (0, 2, 'professor'),
  (1, 0, 'intern'), (1, 1, 'researcher'), (1, 2, 'executive');
INSERT INTO Regions VALUES
  (0, 'AFRICA'), (1, 'ASIA'), (2, 'AUSTRALIA'),
  (3, 'EUROPE'), (4, 'N-AMERICA'), (5, 'S-AMERICA');
INSERT INTO Tenant VALUES (0, 0), (1, 1);
INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, 1.1, 0.909090909);
CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return db
}

func queryRows(t testing.TB, db *DB, sql string) [][]sqltypes.Value {
	t.Helper()
	res, err := db.QuerySQL(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res.Rows
}

func TestSelectBasics(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT E_name FROM Employees WHERE E_age = 46 ORDER BY E_name")
	if len(rows) != 2 || rows[0][0].S != "Alice" || rows[1][0].S != "Ed" {
		t.Errorf("rows = %v", rows)
	}
}

func TestSelectStar(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	res, err := db.QuerySQL("SELECT * FROM Regions WHERE Re_reg_id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 || res.Rows[0][1].S != "EUROPE" {
		t.Errorf("star: %v %v", res.Cols, res.Rows)
	}
}

func TestSelectNoFrom(t *testing.T) {
	db := Open(ModePostgres)
	rows := queryRows(t, db, "SELECT 1 + 2 AS x")
	if len(rows) != 1 || rows[0][0].I != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestWhereThreeValuedLogic(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript("CREATE TABLE t (a INTEGER, b INTEGER); INSERT INTO t VALUES (1, NULL), (2, 5)"); err != nil {
		t.Fatal(err)
	}
	// NULL comparisons are unknown and filtered out.
	rows := queryRows(t, db, "SELECT a FROM t WHERE b > 1")
	if len(rows) != 1 || rows[0][0].I != 2 {
		t.Errorf("rows = %v", rows)
	}
	rows = queryRows(t, db, "SELECT a FROM t WHERE b IS NULL")
	if len(rows) != 1 || rows[0][0].I != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestImplicitJoinWithHash(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// Join within same tenant via ttid predicate (the rewritten form).
	rows := queryRows(t, db, `SELECT E_name, R_name FROM Employees, Roles
		WHERE E_role_id = R_role_id AND Employees.ttid = Roles.ttid AND E_name = 'John'`)
	if len(rows) != 1 || rows[0][1].S != "phD stud." {
		t.Errorf("rows = %v", rows)
	}
	// Without the ttid predicate John joins both tenants' role 0.
	rows = queryRows(t, db, `SELECT R_name FROM Employees, Roles
		WHERE E_role_id = R_role_id AND E_name = 'John' ORDER BY R_name`)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestExplicitJoins(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT E_name, Re_name FROM Employees JOIN Regions ON E_reg_id = Re_reg_id WHERE E_name = 'Nancy'`)
	if len(rows) != 1 || rows[0][1].S != "N-AMERICA" {
		t.Errorf("rows = %v", rows)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	db := Open(ModePostgres)
	script := `
CREATE TABLE c (ck INTEGER, cn VARCHAR(10));
CREATE TABLE o (ok INTEGER, ock INTEGER, cmt VARCHAR(20));
INSERT INTO c VALUES (1, 'one'), (2, 'two'), (3, 'three');
INSERT INTO o VALUES (10, 1, 'normal'), (11, 1, 'special deal'), (12, 2, 'normal');`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, `SELECT cn, ok FROM c LEFT OUTER JOIN o ON ck = ock AND cmt NOT LIKE '%special%' ORDER BY cn, ok`)
	// one->10, three->NULL, two->12
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][0].S != "three" || !rows[1][1].IsNull() {
		t.Errorf("unmatched row: %v", rows[1])
	}
	// COUNT(ok) must skip NULLs: the Q13 pattern.
	rows = queryRows(t, db, `SELECT cn, COUNT(ok) AS cnt FROM c LEFT OUTER JOIN o ON ck = ock GROUP BY cn ORDER BY cnt DESC, cn`)
	if rows[0][1].I != 2 || rows[2][1].I != 0 {
		t.Errorf("grouped outer join: %v", rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT ttid, COUNT(*) AS cnt, SUM(E_salary) AS total, AVG(E_age) AS age, MIN(E_salary) AS lo, MAX(E_salary) AS hi
		FROM Employees GROUP BY ttid ORDER BY ttid`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1].I != 3 || rows[0][2].AsFloat() != 270000 {
		t.Errorf("tenant 0 aggregates: %v", rows[0])
	}
	if rows[1][4].AsFloat() != 80000 || rows[1][5].AsFloat() != 1000000 {
		t.Errorf("tenant 1 min/max: %v", rows[1])
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT COUNT(*), SUM(E_salary) FROM Employees WHERE E_age > 1000")
	if len(rows) != 1 || rows[0][0].I != 0 || !rows[0][1].IsNull() {
		t.Errorf("empty aggregate: %v", rows)
	}
}

func TestHaving(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT E_reg_id, COUNT(*) AS cnt FROM Employees GROUP BY E_reg_id HAVING COUNT(*) > 1 ORDER BY E_reg_id`)
	if len(rows) != 2 { // region 3 (x3) and region 4 (x2)
		t.Errorf("rows = %v", rows)
	}
}

func TestCountDistinct(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT COUNT(DISTINCT E_reg_id) FROM Employees")
	if rows[0][0].I != 3 {
		t.Errorf("distinct regions = %v", rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT DISTINCT E_reg_id FROM Employees ORDER BY E_reg_id")
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestScalarSubqueryCorrelated(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// Employees earning the max salary of their tenant.
	rows := queryRows(t, db, `SELECT E_name FROM Employees e1
		WHERE E_salary = (SELECT MAX(E_salary) FROM Employees e2 WHERE e2.ttid = e1.ttid) ORDER BY E_name`)
	if len(rows) != 2 || rows[0][0].S != "Alice" || rows[1][0].S != "Ed" {
		t.Errorf("rows = %v", rows)
	}
}

func TestExistsCorrelated(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT R_name FROM Roles r
		WHERE EXISTS (SELECT 1 FROM Employees e WHERE e.E_role_id = r.R_role_id AND e.ttid = r.ttid AND e.E_age > 70)`)
	if len(rows) != 1 || rows[0][0].S != "executive" {
		t.Errorf("rows = %v", rows)
	}
	rows = queryRows(t, db, `SELECT COUNT(*) FROM Roles r
		WHERE NOT EXISTS (SELECT 1 FROM Employees e WHERE e.E_role_id = r.R_role_id AND e.ttid = r.ttid)`)
	if rows[0][0].I != 0 {
		t.Errorf("all roles are used: %v", rows)
	}
}

func TestInSubquery(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT E_name FROM Employees WHERE E_reg_id IN (SELECT Re_reg_id FROM Regions WHERE Re_name = 'EUROPE') ORDER BY E_name`)
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDerivedTable(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT AVG(x.sal) FROM (SELECT E_salary AS sal FROM Employees WHERE E_age >= 45) AS x`)
	want := (150000.0 + 200000.0 + 1000000.0) / 3
	_ = want
	got := rows[0][0].AsFloat()
	if got < 449999 || got > 450001 {
		t.Errorf("avg = %v", got)
	}
}

func TestViews(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.ExecSQL("CREATE VIEW seniors AS SELECT E_name, E_age FROM Employees WHERE E_age >= 46"); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM seniors")
	if rows[0][0].I != 3 {
		t.Errorf("view rows = %v", rows)
	}
	if _, err := db.ExecSQL("DROP VIEW seniors"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QuerySQL("SELECT * FROM seniors"); err == nil {
		t.Error("dropped view still queryable")
	}
}

func TestUDFAndCacheModes(t *testing.T) {
	// In ModePostgres, repeated calls with identical arguments hit the cache;
	// ModeSystemC re-executes the body every time (Appendix C).
	for _, mode := range []Mode{ModePostgres, ModeSystemC} {
		db := newEmployeeDB(t, mode)
		db.Stats = Stats{}
		rows := queryRows(t, db, "SELECT currencyToUniversal(100, 1) FROM Employees")
		if len(rows) != 6 {
			t.Fatalf("rows = %v", rows)
		}
		got := rows[0][0].AsFloat()
		if got < 109.9 || got > 110.1 {
			t.Errorf("conversion result = %v", got)
		}
		switch mode {
		case ModePostgres:
			if db.Stats.UDFCalls != 1 || db.Stats.UDFCacheHits != 5 {
				t.Errorf("postgres mode stats = %+v", db.Stats)
			}
		case ModeSystemC:
			if db.Stats.UDFCalls != 6 || db.Stats.UDFCacheHits != 0 {
				t.Errorf("system-c mode stats = %+v", db.Stats)
			}
		}
	}
}

func TestUDFComposition(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// EUR -> universal -> EUR must be (approximately) identity.
	rows := queryRows(t, db, "SELECT currencyFromUniversal(currencyToUniversal(E_salary, ttid), ttid) AS s, E_salary FROM Employees")
	for _, r := range rows {
		a, b := r[0].AsFloat(), r[1].AsFloat()
		if a < b*0.999 || a > b*1.001 {
			t.Errorf("round trip %v != %v", a, b)
		}
	}
}

func TestUDFCacheIsPerStatement(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	db.Stats = Stats{}
	queryRows(t, db, "SELECT currencyToUniversal(100, 1)")
	queryRows(t, db, "SELECT currencyToUniversal(100, 1)")
	if db.Stats.UDFCalls != 2 {
		t.Errorf("cache must not span statements: %+v", db.Stats)
	}
}

func TestCaseExpr(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT SUM(CASE WHEN E_age >= 46 THEN 1 ELSE 0 END) FROM Employees`)
	if rows[0][0].I != 3 {
		t.Errorf("case sum = %v", rows[0][0])
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // _ matches 'e' and 'l'
		{"help", "h__lo", false},
		{"hello", "hello_", false},
		{"hello", "%ell%", true},
		{"hello", "hello", true},
		{"hello", "", false},
		{"", "%", true},
		{"special deal", "%special%", true},
		{"forest green", "forest%", true},
		{"PROMO BRUSHED", "PROMO%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.p, got)
		}
	}
}

func TestOrderByMultipleKeysAndNulls(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript("CREATE TABLE t (a INTEGER, b INTEGER); INSERT INTO t VALUES (1, 2), (1, 1), (2, NULL), (2, 3)"); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT a, b FROM t ORDER BY a DESC, b")
	// a=2 first (NULL before 3), then a=1 (1 before 2)
	if !rows[0][1].IsNull() || rows[1][1].I != 3 || rows[2][1].I != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestLimit(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT E_name FROM Employees ORDER BY E_salary DESC LIMIT 2")
	if len(rows) != 2 || rows[0][0].S != "Ed" {
		t.Errorf("rows = %v", rows)
	}
}

func TestUpdateDelete(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	res, err := db.ExecSQL("UPDATE Employees SET E_salary = E_salary * 2 WHERE E_name = 'John'")
	if err != nil || res.Affected != 1 {
		t.Fatalf("update: %v %v", res, err)
	}
	rows := queryRows(t, db, "SELECT E_salary FROM Employees WHERE E_name = 'John'")
	if rows[0][0].AsFloat() != 140000 {
		t.Errorf("salary = %v", rows[0][0])
	}
	res, err = db.ExecSQL("DELETE FROM Employees WHERE ttid = 1")
	if err != nil || res.Affected != 3 {
		t.Fatalf("delete: %v %v", res, err)
	}
	rows = queryRows(t, db, "SELECT COUNT(*) FROM Employees")
	if rows[0][0].I != 3 {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestInsertSelect(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	_, err := db.ExecSQL(`INSERT INTO Roles (ttid, R_role_id, R_name) SELECT 2, R_role_id, R_name FROM Roles WHERE ttid = 0`)
	if err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM Roles WHERE ttid = 2")
	if rows[0][0].I != 3 {
		t.Errorf("copied roles = %v", rows[0][0])
	}
}

func TestInsertTypeChecks(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE t (a INTEGER NOT NULL, d DATE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("INSERT INTO t VALUES (NULL, NULL)"); err == nil {
		t.Error("NOT NULL violation accepted")
	}
	if _, err := db.ExecSQL("INSERT INTO t VALUES (1, '1994-01-01')"); err != nil {
		t.Errorf("date coercion from string: %v", err)
	}
	rows := queryRows(t, db, "SELECT d FROM t")
	if rows[0][0].K != sqltypes.KindDate {
		t.Errorf("stored kind = %v", rows[0][0].K)
	}
}

func TestConstraintValidation(t *testing.T) {
	db := Open(ModePostgres)
	script := `
CREATE TABLE Roles (R_role_id INTEGER NOT NULL, CONSTRAINT pk_r PRIMARY KEY (R_role_id));
CREATE TABLE Employees (E_id INTEGER NOT NULL, E_role_id INTEGER,
  CONSTRAINT fk_e FOREIGN KEY (E_role_id) REFERENCES Roles (R_role_id));
INSERT INTO Roles VALUES (0), (1);
INSERT INTO Employees VALUES (1, 0), (2, NULL);`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if err := db.ValidateConstraints(); err != nil {
		t.Errorf("valid data rejected: %v", err)
	}
	if _, err := db.ExecSQL("INSERT INTO Employees VALUES (3, 99)"); err != nil {
		t.Fatal(err)
	}
	if err := db.ValidateConstraints(); err == nil {
		t.Error("dangling FK not detected")
	}
}

func TestDateArithmeticInQueries(t *testing.T) {
	db := Open(ModePostgres)
	script := `
CREATE TABLE ship (d DATE);
INSERT INTO ship VALUES ('1998-09-01'), ('1998-09-03'), ('1998-12-01');`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM ship WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY")
	if rows[0][0].I != 1 {
		t.Errorf("count = %v", rows[0][0])
	}
	rows = queryRows(t, db, "SELECT EXTRACT(YEAR FROM d) FROM ship LIMIT 1")
	if rows[0][0].I != 1998 {
		t.Errorf("year = %v", rows[0][0])
	}
}

func TestOrFactoringJoin(t *testing.T) {
	// The Q19 pattern: join predicate repeated in every OR branch.
	db := Open(ModePostgres)
	script := `
CREATE TABLE p (pk INTEGER, brand VARCHAR(10));
CREATE TABLE l (lpk INTEGER, qty INTEGER);`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	np, nl := 200, 2000
	pt := db.Table("p")
	for i := 0; i < np; i++ {
		pt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewString(fmt.Sprintf("B%d", i%5))})
	}
	lt := db.Table("l")
	for i := 0; i < nl; i++ {
		lt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i % np)), sqltypes.NewInt(int64(i % 50))})
	}
	rows := queryRows(t, db, `SELECT COUNT(*) FROM l, p WHERE
		(pk = lpk AND brand = 'B1' AND qty BETWEEN 1 AND 11) OR
		(pk = lpk AND brand = 'B2' AND qty BETWEEN 10 AND 20)`)
	// brand B1: parts 1,6,...  qty in [1,11]; count via direct reasoning is
	// deterministic; just cross-check against the unfactored equivalent.
	rows2 := queryRows(t, db, `SELECT COUNT(*) FROM l, p WHERE pk = lpk AND
		((brand = 'B1' AND qty BETWEEN 1 AND 11) OR (brand = 'B2' AND qty BETWEEN 10 AND 20))`)
	if rows[0][0].I != rows2[0][0].I || rows[0][0].I == 0 {
		t.Errorf("or factoring mismatch: %v vs %v", rows[0][0], rows2[0][0])
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER); INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QuerySQL("SELECT x FROM a, b"); err == nil {
		t.Error("ambiguous column accepted")
	}
	if _, err := db.QuerySQL("SELECT a.x FROM a, b"); err != nil {
		t.Errorf("qualified column rejected: %v", err)
	}
}

func TestDuplicateAlias(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT 1 FROM Employees, Employees"); err == nil {
		t.Error("duplicate alias accepted")
	}
	if _, err := db.QuerySQL("SELECT COUNT(*) FROM Employees e1, Employees e2 WHERE e1.E_age = e2.E_age"); err != nil {
		t.Errorf("self join rejected: %v", err)
	}
}

func TestSelfJoinAges(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// Alice and Ed are both 46 (the paper's §1 example of a cross-tenant
	// comparable join).
	rows := queryRows(t, db, `SELECT e1.E_name, e2.E_name FROM Employees e1, Employees e2
		WHERE e1.E_age = e2.E_age AND e1.E_name < e2.E_name`)
	if len(rows) != 1 || rows[0][0].S != "Alice" || rows[0][1].S != "Ed" {
		t.Errorf("rows = %v", rows)
	}
}

func TestGroupByAliasSubstitution(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT E_age / 10 AS decade, COUNT(*) AS cnt FROM Employees GROUP BY decade ORDER BY decade`)
	if len(rows) != 4 {
		t.Errorf("rows = %v", rows)
	}
}

func TestUnknownObjects(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.QuerySQL("SELECT * FROM nothere"); err == nil {
		t.Error("missing table accepted")
	}
	if _, err := db.QuerySQL("SELECT nosuchfunc(1)"); err == nil {
		t.Error("missing function accepted")
	}
	if _, err := db.ExecSQL("DROP TABLE nothere"); err == nil {
		t.Error("dropping missing table accepted")
	}
}

func TestBuiltinScalars(t *testing.T) {
	db := Open(ModePostgres)
	rows := queryRows(t, db, "SELECT CONCAT('a', 'b'), CHAR_LENGTH('abc'), ABS(-4), ROUND(2.567, 2), COALESCE(NULL, 7)")
	if rows[0][0].S != "ab" || rows[0][1].I != 3 || rows[0][2].I != 4 {
		t.Errorf("builtins: %v", rows[0])
	}
	if rows[0][3].AsFloat() != 2.57 || rows[0][4].I != 7 {
		t.Errorf("round/coalesce: %v", rows[0])
	}
}

func TestSubstringBuiltin(t *testing.T) {
	db := Open(ModePostgres)
	rows := queryRows(t, db, "SELECT SUBSTRING('13-345-6789' FROM 1 FOR 2)")
	if rows[0][0].S != "13" {
		t.Errorf("substring = %v", rows[0][0])
	}
	rows = queryRows(t, db, "SELECT SUBSTRING('abcdef' FROM 3)")
	if rows[0][0].S != "cdef" {
		t.Errorf("substring = %v", rows[0][0])
	}
}

func TestInListSemantics(t *testing.T) {
	db := Open(ModePostgres)
	rows := queryRows(t, db, "SELECT 2 IN (1, 2, 3), 5 IN (1, 2), 5 NOT IN (1, 2)")
	if !rows[0][0].Bool() || rows[0][1].Bool() || !rows[0][2].Bool() {
		t.Errorf("in list: %v", rows[0])
	}
	// NULL in list makes a non-match unknown.
	rows = queryRows(t, db, "SELECT 5 IN (1, NULL)")
	if !rows[0][0].IsNull() {
		t.Errorf("5 IN (1, NULL) = %v, want NULL", rows[0][0])
	}
}

func TestIndexProbeCorrectness(t *testing.T) {
	// The probe path and the scan path must agree.
	db := newEmployeeDB(t, ModePostgres)
	probed := queryRows(t, db, "SELECT E_name FROM Employees WHERE ttid = 1 ORDER BY E_name")
	scanned := queryRows(t, db, "SELECT E_name FROM Employees WHERE ttid + 0 = 1 ORDER BY E_name")
	if len(probed) != len(scanned) || len(probed) != 3 {
		t.Fatalf("probe %v vs scan %v", probed, scanned)
	}
	for i := range probed {
		if probed[i][0].S != scanned[i][0].S {
			t.Errorf("row %d: %v vs %v", i, probed[i], scanned[i])
		}
	}
}

func TestIndexInvalidationOnWrite(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	queryRows(t, db, "SELECT E_name FROM Employees WHERE ttid = 1") // builds index
	if _, err := db.ExecSQL("INSERT INTO Employees VALUES (1, 3, 'Zoe', 0, 0, 1000, 20)"); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM Employees WHERE ttid = 1")
	if rows[0][0].I != 4 {
		t.Errorf("stale index: %v", rows[0][0])
	}
}
