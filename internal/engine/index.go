package engine

import (
	"fmt"
	"strings"

	"mtbase/internal/sqltypes"
)

// hashIndex maps encoded key-column values to row ordinals of a heap
// snapshot. Indexes are built lazily on first use and live inside the
// tableData they were built over, so a pinned snapshot's indexes always
// agree with its heap — writers publish fresh snapshots with no indexes
// instead of invalidating anything in place.
type hashIndex struct {
	cols []int
	m    map[string][]int
}

// index returns (building if necessary) a hash index of the current
// snapshot on the named columns. Callers that pinned a snapshot should use
// tableData.index directly so heap and index stay paired.
func (t *Table) index(cols []string) (*hashIndex, error) {
	return t.data.Load().index(t, cols)
}

// index returns (building if necessary) a hash index over this snapshot's
// heap. idxMu serializes the build so concurrent readers of one snapshot
// construct each index exactly once; the built index is immutable.
func (d *tableData) index(t *Table, cols []string) (*hashIndex, error) {
	key := strings.ToLower(strings.Join(cols, ","))
	d.idxMu.Lock()
	defer d.idxMu.Unlock()
	if idx, ok := d.indexes[key]; ok {
		return idx, nil
	}
	ordinals := make([]int, len(cols))
	for i, c := range cols {
		ordinals[i] = t.ColIndex(c)
		if ordinals[i] < 0 {
			return nil, fmt.Errorf("engine: no column %s in %s", c, t.Name)
		}
	}
	idx := &hashIndex{cols: ordinals, m: make(map[string][]int, len(d.rows))}
	var buf []byte
	for rowID, row := range d.rows {
		buf = buf[:0]
		null := false
		for _, o := range ordinals {
			if row[o].IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, row[o])
		}
		if null {
			continue // NULL keys never match an equi-probe
		}
		idx.m[string(buf)] = append(idx.m[string(buf)], rowID)
	}
	if d.indexes == nil {
		d.indexes = make(map[string]*hashIndex)
	}
	d.indexes[key] = idx
	return idx, nil
}

// probe returns the row ordinals matching the given key values.
func (ix *hashIndex) probe(vals []sqltypes.Value) []int {
	ids, _ := ix.probeBuf(nil, vals)
	return ids
}

// probeBuf is probe with a caller-owned scratch buffer, so per-row probe
// loops (the hash-join index fast path) encode keys without allocating.
// It returns the matching ordinals and the possibly grown buffer.
func (ix *hashIndex) probeBuf(buf []byte, vals []sqltypes.Value) ([]int, []byte) {
	buf = buf[:0]
	for _, v := range vals {
		if v.IsNull() {
			return nil, buf
		}
		buf = sqltypes.AppendKey(buf, v)
	}
	return ix.m[string(buf)], buf
}

// probeKeyCols probes with the i-th entries of precomputed key columns —
// the batched executor's probe form. Callers guarantee the entries are
// non-NULL: batched key computation drops NULL-key rows from the selection
// vector before any probing happens.
func (ix *hashIndex) probeKeyCols(buf []byte, cols [][]sqltypes.Value, i int32) ([]int, []byte) {
	buf = encodeKeyCols(buf[:0], cols, i)
	return ix.m[string(buf)], buf
}
