package engine

import (
	"fmt"
	"strings"

	"mtbase/internal/sqltypes"
)

// hashIndex maps encoded key-column values to row ordinals of a table.
// Indexes are built lazily on first use and discarded whenever the table
// is written (Table.invalidate).
type hashIndex struct {
	cols []int
	m    map[string][]int
}

// index returns (building if necessary) a hash index on the named columns.
func (t *Table) index(cols []string) (*hashIndex, error) {
	key := strings.ToLower(strings.Join(cols, ","))
	if t.indexes == nil {
		t.indexes = make(map[string]*hashIndex)
	}
	if idx, ok := t.indexes[key]; ok {
		return idx, nil
	}
	ordinals := make([]int, len(cols))
	for i, c := range cols {
		ordinals[i] = t.ColIndex(c)
		if ordinals[i] < 0 {
			return nil, fmt.Errorf("engine: no column %s in %s", c, t.Name)
		}
	}
	idx := &hashIndex{cols: ordinals, m: make(map[string][]int, len(t.Rows))}
	var buf []byte
	for rowID, row := range t.Rows {
		buf = buf[:0]
		null := false
		for _, o := range ordinals {
			if row[o].IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, row[o])
		}
		if null {
			continue // NULL keys never match an equi-probe
		}
		idx.m[string(buf)] = append(idx.m[string(buf)], rowID)
	}
	t.indexes[key] = idx
	return idx, nil
}

// probe returns the row ordinals matching the given key values.
func (ix *hashIndex) probe(vals []sqltypes.Value) []int {
	ids, _ := ix.probeBuf(nil, vals)
	return ids
}

// probeBuf is probe with a caller-owned scratch buffer, so per-row probe
// loops (the hash-join index fast path) encode keys without allocating.
// It returns the matching ordinals and the possibly grown buffer.
func (ix *hashIndex) probeBuf(buf []byte, vals []sqltypes.Value) ([]int, []byte) {
	buf = buf[:0]
	for _, v := range vals {
		if v.IsNull() {
			return nil, buf
		}
		buf = sqltypes.AppendKey(buf, v)
	}
	return ix.m[string(buf)], buf
}

// probeKeyCols probes with the i-th entries of precomputed key columns —
// the batched executor's probe form. Callers guarantee the entries are
// non-NULL: batched key computation drops NULL-key rows from the selection
// vector before any probing happens.
func (ix *hashIndex) probeKeyCols(buf []byte, cols [][]sqltypes.Value, i int32) ([]int, []byte) {
	buf = encodeKeyCols(buf[:0], cols, i)
	return ix.m[string(buf)], buf
}
