package engine

import (
	"fmt"
	"testing"

	"mtbase/internal/sqltypes"
)

func TestRecursiveMemoPoison2(t *testing.T) {
	// f(n) = n + f(n/2 - y) evaluated over both rows of t2 (y=0,1),
	// result taken from the first row (y=0). Gives each node two children,
	// so the same child has multiple parents.
	mk := func() *DB {
		db := Open(ModePostgres)
		if _, err := db.ExecScript(`
			CREATE TABLE t2 (y INTEGER);
			CREATE TABLE t (x INTEGER);
			CREATE FUNCTION f (INTEGER) RETURNS INTEGER
				AS 'SELECT CASE WHEN $1 <= 0 THEN 0 ELSE $1 + f($1 / 2 - y) END FROM t2'
				LANGUAGE SQL IMMUTABLE`); err != nil {
			t.Fatal(err)
		}
		db.Table("t2").AppendRow([]sqltypes.Value{sqltypes.NewInt(0)})
		db.Table("t2").AppendRow([]sqltypes.Value{sqltypes.NewInt(1)})
		return db
	}
	for _, xs := range [][]int64{{8, 9, 10, 11, 12, 13}, {13, 12, 11, 10, 9, 8}, {30, 29, 28, 27}} {
		dbC, dbI := mk(), mk()
		dbI.SetCompileExprs(false)
		for _, x := range xs {
			dbC.Table("t").AppendRow([]sqltypes.Value{sqltypes.NewInt(x)})
			dbI.Table("t").AppendRow([]sqltypes.Value{sqltypes.NewInt(x)})
		}
		sql := "SELECT x, f(x) FROM t"
		rc, errC := dbC.ExecSQL(sql)
		ri, errI := dbI.ExecSQL(sql)
		if errC != nil || errI != nil {
			t.Fatalf("errors: compiled %v interp %v", errC, errI)
		}
		for i := range ri.Rows {
			if fmt.Sprint(rc.Rows[i]) != fmt.Sprint(ri.Rows[i]) {
				t.Errorf("xs=%v row %d: compiled %v, interpreter %v", xs, i, rc.Rows[i], ri.Rows[i])
			}
		}
	}
}
