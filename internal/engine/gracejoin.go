package engine

// This file implements the Grace hash join overflow path: when a statement
// memory limit is set and a join's build side exceeds the budget, build and
// probe rows are partitioned to disk by a salted hash of their equi-join
// key, each partition is joined independently (recursing with a fresh salt
// when a build partition still doesn't fit), and the joined tuples merge
// back ordered by probe sequence number.
//
// Byte-identity with the in-memory join follows from three invariants:
//   - a key lands in exactly one partition, so all matches of one probe row
//     are produced together, in build-file order — and partition files
//     preserve original arrival order (sequential writes, sequential
//     re-reads, including through re-partitioning);
//   - every output record carries its probe row's global sequence number,
//     assigned in probe-stream order, and the output spiller's stable sort
//     plus earlier-run-wins merge reassembles the exact in-memory emission
//     order;
//   - NULL keys behave as in memory: dropped for inner joins, immediately
//     null-extended (with their sequence number) for left outer joins.
//
// Exclusions, by design: the cross product (no equi pairs) and the
// pair-less LEFT JOIN degenerate to a single partition and stay in-memory
// (charged, never spilled); the index fast path probes the table's
// persistent index and retains no transient build at all.

import (
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// graceParts is the partition fan-out per level.
const graceParts = 16

// maxGraceDepth bounds re-partitioning; a build partition that still
// exceeds the budget at the deepest level is joined in memory.
const maxGraceDepth = 3

// joinBucketBytes approximates the per-row overhead of the build hash
// table's bucket lists.
const joinBucketBytes = 16

// graceHash is the partitioning hash (FNV-1a over the encoded key, salted
// per recursion level so a skewed partition redistributes).
func graceHash(key []byte, salt int) uint32 {
	h := uint32(2166136261)
	h = (h ^ uint32(salt)) * 16777619
	for _, c := range key {
		h = (h ^ uint32(c)) * 16777619
	}
	return h
}

// graceState drives one spilled join: partition writers for both sides, the
// output spiller ordered by probe sequence, and the merge the operator
// drains at Next.
type graceState struct {
	pairs []equiPair
	width int

	// Left outer join hooks: nulls is the right-width null extension and
	// louter evaluates the residual ON conjuncts per candidate.
	outer  bool
	nulls  []sqltypes.Value
	louter *leftOuterOperator

	buildParts []*partWriter
	probeParts []*partWriter
	probeSeq   int64

	out    *spiller
	merge  *mergeIter
	buf    []byte
	rowBuf [][]sqltypes.Value
	ran    bool
}

func newGraceState(ex *exec, pairs []equiPair, width int) *graceState {
	return &graceState{
		pairs:      pairs,
		width:      width,
		out:        newSpiller(ex, func(a, b *spillRec) bool { return a.seq < b.seq }),
		buildParts: newPartSet(ex),
		probeParts: newPartSet(ex),
	}
}

func newPartSet(ex *exec) []*partWriter {
	ps := make([]*partWriter, graceParts)
	for i := range ps {
		ps[i] = &partWriter{ex: ex}
	}
	return ps
}

func finishParts(ps []*partWriter) error {
	for _, p := range ps {
		if err := p.finish(); err != nil {
			return err
		}
	}
	return nil
}

func (g *graceState) close() {
	for _, p := range g.buildParts {
		p.drop()
	}
	for _, p := range g.probeParts {
		p.drop()
	}
	if g.merge != nil {
		g.merge.close()
		g.merge = nil
	}
	if g.out != nil {
		g.out.close()
		g.out = nil
	}
}

// forEachKeyedRow invokes fn for every row of b whose join key has no NULL
// component, in selection order, with the key encoded exactly as the hash
// probe encodes it. It uses the compiled key set when available and the
// interpreter otherwise — the same split as the in-memory paths.
func (ex *exec) forEachKeyedRow(b *Batch, ks *vecKeySet, sc *scope, exprs []sqlast.Expr, buf []byte, fn func(i int32, key []byte) error) ([]byte, error) {
	if ks != nil {
		m := ex.vs.mark()
		sel := ks.compute(b, true, nil)
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			return buf, err
		}
		for _, i := range sel {
			buf = encodeKeyCols(buf[:0], ks.cols, i)
			if err := fn(i, buf); err != nil {
				ex.vs.release(m)
				return buf, err
			}
		}
		ex.vs.release(m)
		return buf, nil
	}
	for _, i := range b.sel {
		buf = buf[:0]
		null := false
		for _, e := range exprs {
			sc.row = b.rows[i]
			v, err := ex.eval(e, sc)
			if err != nil {
				return buf, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, v)
		}
		if null {
			continue
		}
		if err := fn(i, buf); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// partitionBuildBatch routes one batch of build rows into the build
// partition files.
func (g *graceState) partitionBuildBatch(ex *exec, b *Batch, ks *vecKeySet, sc *scope, exprs []sqlast.Expr) error {
	var err error
	g.buf, err = ex.forEachKeyedRow(b, ks, sc, exprs, g.buf, func(i int32, key []byte) error {
		p := g.buildParts[graceHash(key, 0)%graceParts]
		return p.write(&spillRec{key: key, row: b.rows[i]})
	})
	return err
}

// partitionBuildRows streams already-materialized build rows (table heap or
// the rows drained before the budget overflowed) through the partitioner.
func (g *graceState) partitionBuildRows(ex *exec, rows [][]sqltypes.Value, ks *vecKeySet, sc *scope, exprs []sqlast.Expr) error {
	src := scanOp{rows: rows}
	var b Batch
	for src.next(&b) {
		if err := ex.cancelled(); err != nil {
			return err
		}
		if err := g.partitionBuildBatch(ex, &b, ks, sc, exprs); err != nil {
			return err
		}
	}
	return nil
}

// partitionProbeBatch routes one batch of inner-join probe rows, assigning
// global sequence numbers in stream order. NULL-key rows are dropped — they
// cannot match.
func (g *graceState) partitionProbeBatch(ex *exec, b *Batch, ks *vecKeySet, sc *scope, exprs []sqlast.Expr) error {
	var err error
	g.buf, err = ex.forEachKeyedRow(b, ks, sc, exprs, g.buf, func(i int32, key []byte) error {
		seq := g.probeSeq
		g.probeSeq++
		p := g.probeParts[graceHash(key, 0)%graceParts]
		return p.write(&spillRec{seq: seq, key: key, row: b.rows[i]})
	})
	return err
}

// runPartitions joins every partition pair and opens the output merge.
func (g *graceState) runPartitions(ex *exec) error {
	if err := finishParts(g.buildParts); err != nil {
		return err
	}
	if err := finishParts(g.probeParts); err != nil {
		return err
	}
	for i := 0; i < graceParts; i++ {
		if err := ex.cancelled(); err != nil {
			return err
		}
		if err := g.processPartition(ex, g.buildParts[i], g.probeParts[i], 1, 1); err != nil {
			return err
		}
	}
	var err error
	g.merge, err = g.out.drain()
	return err
}

// emitOut appends one joined tuple to the output spiller, overflowing the
// buffered records to disk whenever the budget is exceeded.
func (g *graceState) emitOut(ex *exec, seq int64, combined []sqltypes.Value) error {
	g.out.add(spillRec{seq: seq, row: combined}, rowBytes(combined))
	return g.out.maybeFlush()
}

// processPartition loads one build partition into a hash table (file order
// = original build order, so bucket lists match the in-memory build) and
// streams the matching probe partition through it. A build partition that
// exceeds the budget re-partitions both sides with the next salt; at
// maxGraceDepth it is joined in memory regardless.
func (g *graceState) processPartition(ex *exec, bp, pp *partWriter, salt, depth int) error {
	defer bp.drop()
	defer pp.drop()
	if pp.file == nil {
		return nil // no probe rows: nothing can be emitted
	}
	if bp.file == nil && !g.outer {
		return nil // inner join with no build rows: no matches
	}
	var brows [][]sqltypes.Value
	var bkeys []string
	var charged int64
	defer func() { ex.acct.release(charged) }()
	if bp.file != nil {
		r, err := bp.open()
		if err != nil {
			return err
		}
		var rec spillRec
		var add int64
		n := 0
		for {
			ok, err := r.next(&rec)
			if err != nil {
				r.close()
				return err
			}
			if !ok {
				break
			}
			brows = append(brows, rec.row)
			bkeys = append(bkeys, string(rec.key))
			add += rowBytes(rec.row) + int64(len(rec.key)) + joinBucketBytes
			n++
			if n%batchSize == 0 {
				ex.acct.charge(add)
				charged += add
				add = 0
				if ex.acct.over() && depth < maxGraceDepth {
					r.close()
					ex.acct.release(charged)
					charged = 0
					return g.subPartition(ex, bp, pp, salt, depth)
				}
			}
		}
		r.close()
		ex.acct.charge(add)
		charged += add
	}
	build := make(map[string][]int, len(brows))
	for i, k := range bkeys {
		build[k] = append(build[k], i)
	}
	r, err := pp.open()
	if err != nil {
		return err
	}
	defer r.close()
	var rec spillRec
	for {
		ok, err := r.next(&rec)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		ids := build[string(rec.key)]
		if g.outer {
			matched := false
			for _, ri := range ids {
				combined := concatRows(rec.row, brows[ri], g.width)
				okm, err := g.louter.matchResidual(ex, combined)
				if err != nil {
					return err
				}
				if okm {
					matched = true
					if err := g.emitOut(ex, rec.seq, combined); err != nil {
						return err
					}
				}
			}
			if !matched {
				if err := g.emitOut(ex, rec.seq, concatRows(rec.row, g.nulls, g.width)); err != nil {
					return err
				}
			}
			continue
		}
		for _, ri := range ids {
			if err := g.emitOut(ex, rec.seq, concatRows(rec.row, brows[ri], g.width)); err != nil {
				return err
			}
		}
	}
}

// subPartition redistributes an oversized partition pair with the next
// salt and joins each sub-partition.
func (g *graceState) subPartition(ex *exec, bp, pp *partWriter, salt, depth int) error {
	subB := newPartSet(ex)
	subP := newPartSet(ex)
	redistribute := func(src *partWriter, dst []*partWriter) error {
		if src.file == nil {
			return nil
		}
		r, err := src.open()
		if err != nil {
			return err
		}
		defer r.close()
		var rec spillRec
		for {
			ok, err := r.next(&rec)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := dst[graceHash(rec.key, salt)%graceParts].write(&rec); err != nil {
				return err
			}
		}
	}
	if err := redistribute(bp, subB); err != nil {
		return err
	}
	if err := redistribute(pp, subP); err != nil {
		return err
	}
	if err := finishParts(subB); err != nil {
		return err
	}
	if err := finishParts(subP); err != nil {
		return err
	}
	bp.drop()
	pp.drop()
	for i := 0; i < graceParts; i++ {
		if err := g.processPartition(ex, subB[i], subP[i], salt+1, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// emit streams the merged output in batch windows.
func (g *graceState) emit(ex *exec, out *Batch) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	g.rowBuf = g.rowBuf[:0]
	for len(g.rowBuf) < batchSize {
		rec, err := g.merge.next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		g.rowBuf = append(g.rowBuf, rec.row)
	}
	if len(g.rowBuf) == 0 {
		return nil, nil
	}
	out.window(g.rowBuf)
	ex.noteStream(len(g.rowBuf))
	return out, nil
}

// openChargedBuild is the memory-limited replacement for the inner join's
// hash build: it charges the build side at batch granularity and, when the
// budget overflows, releases the charges and partitions everything —
// already-drained rows first, then the rest of the build stream without
// ever materializing it.
func (j *joinOperator) openChargedBuild(ex *exec) error {
	j.acct = ex.acct
	brel := &relation{bindings: j.rrel.bindings, width: j.rrel.width}
	rsc := brel.scopeFor(j.parent)
	rexprs := pairExprs(j.pairs, true)
	rks := ex.vecKeys(rexprs, j.rrel.bindings, rsc)
	rows := j.rrel.rows
	streamed := rows == nil
	spill := false
	if streamed {
		if err := j.right.Open(ex); err != nil {
			return err
		}
		for !spill {
			b, err := j.right.Next(ex)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			var add int64
			for _, i := range b.sel {
				rows = append(rows, b.rows[i])
				add += rowBytes(b.rows[i]) + joinBucketBytes
			}
			ex.acct.charge(add)
			j.charged += add
			if ex.acct.over() {
				spill = true
			}
		}
	} else {
		var add int64
		for i := range rows {
			add += rowBytes(rows[i]) + joinBucketBytes
			if (i+1)%batchSize == 0 {
				ex.acct.charge(add)
				j.charged += add
				add = 0
				if ex.acct.over() {
					spill = true
					break
				}
			}
		}
		if !spill {
			ex.acct.charge(add)
			j.charged += add
			spill = ex.acct.over()
		}
	}
	if !spill {
		j.rightRows = rows
		build, err := ex.buildJoinHash(&relation{bindings: j.rrel.bindings, rows: rows, width: j.rrel.width}, j.pairs, j.parent)
		if err != nil {
			return err
		}
		j.build = build
		return nil
	}
	ex.acct.release(j.charged)
	j.charged = 0
	g := newGraceState(ex, j.pairs, j.orel.width)
	j.grace = g
	if err := g.partitionBuildRows(ex, rows, rks, rsc, rexprs); err != nil {
		return err
	}
	if streamed {
		for {
			if err := ex.cancelled(); err != nil {
				return err
			}
			b, err := j.right.Next(ex)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if err := g.partitionBuildBatch(ex, b, rks, rsc, rexprs); err != nil {
				return err
			}
		}
	}
	return nil
}

// graceNext drains the probe side into partition files on first call, joins
// every partition, and then streams the merged output.
func (j *joinOperator) graceNext(ex *exec) (*Batch, error) {
	g := j.grace
	if !g.ran {
		g.ran = true
		lexprs := pairExprs(j.pairs, false)
		for {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			b, err := j.left.Next(ex)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := g.partitionProbeBatch(ex, b, j.lks, j.lsc, lexprs); err != nil {
				return nil, err
			}
		}
		if err := g.runPartitions(ex); err != nil {
			return nil, err
		}
	}
	return g.emit(ex, &j.out)
}

// openChargedBuild is the left outer join's memory-limited build: identical
// charging to the inner join's, with the Grace state carrying the null
// extension and the residual evaluator.
func (o *leftOuterOperator) openChargedBuild(ex *exec) error {
	o.acct = ex.acct
	brel := &relation{bindings: o.rrel.bindings, width: o.rrel.width}
	rsc := brel.scopeFor(o.parent)
	rexprs := pairExprs(o.pairs, true)
	rks := ex.vecKeys(rexprs, o.rrel.bindings, rsc)
	rows := o.rrel.rows
	streamed := rows == nil
	spill := false
	if streamed {
		if err := o.right.Open(ex); err != nil {
			return err
		}
		for !spill {
			b, err := o.right.Next(ex)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			var add int64
			for _, i := range b.sel {
				rows = append(rows, b.rows[i])
				add += rowBytes(b.rows[i]) + joinBucketBytes
			}
			ex.acct.charge(add)
			o.charged += add
			if ex.acct.over() {
				spill = true
			}
		}
	} else {
		var add int64
		for i := range rows {
			add += rowBytes(rows[i]) + joinBucketBytes
			if (i+1)%batchSize == 0 {
				ex.acct.charge(add)
				o.charged += add
				add = 0
				if ex.acct.over() {
					spill = true
					break
				}
			}
		}
		if !spill {
			ex.acct.charge(add)
			o.charged += add
			spill = ex.acct.over()
		}
	}
	if !spill {
		o.rightRows = rows
		build, err := ex.buildJoinHash(&relation{bindings: o.rrel.bindings, rows: rows, width: o.rrel.width}, o.pairs, o.parent)
		if err != nil {
			return err
		}
		o.build = build
		return nil
	}
	ex.acct.release(o.charged)
	o.charged = 0
	g := newGraceState(ex, o.pairs, o.orel.width)
	g.outer = true
	g.nulls = o.nulls
	g.louter = o
	o.grace = g
	if err := g.partitionBuildRows(ex, rows, rks, rsc, rexprs); err != nil {
		return err
	}
	if streamed {
		for {
			if err := ex.cancelled(); err != nil {
				return err
			}
			b, err := o.right.Next(ex)
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			if err := g.partitionBuildBatch(ex, b, rks, rsc, rexprs); err != nil {
				return err
			}
		}
	}
	return nil
}

// gracePartitionProbe routes one probe batch of the left outer join:
// NULL-key rows null-extend immediately (carrying their sequence number so
// they merge back into probe order); valid keys go to their partition.
// Rows dropped from the incoming selection by an upstream filter never
// participate — the same inSel bookkeeping as the in-memory probe.
func (o *leftOuterOperator) gracePartitionProbe(ex *exec, b *Batch) error {
	g := o.grace
	if o.lks != nil {
		n := len(b.rows)
		if cap(o.nullMask) < n {
			o.nullMask = make([]bool, n)
			o.buckets = make([][]int, n)
			o.inSel = make([]bool, n)
		}
		o.nullMask = o.nullMask[:n]
		inSel := o.inSel[:n]
		for i := range inSel {
			o.nullMask[i] = false
			inSel[i] = false
		}
		for _, i := range b.sel {
			inSel[i] = true
		}
		m := ex.vs.mark()
		o.lks.compute(b, true, o.nullMask)
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			return err
		}
		for i := 0; i < n; i++ {
			if !inSel[i] {
				continue
			}
			seq := g.probeSeq
			g.probeSeq++
			if o.nullMask[i] {
				if err := g.emitOut(ex, seq, concatRows(b.rows[i], o.nulls, g.width)); err != nil {
					ex.vs.release(m)
					return err
				}
				continue
			}
			g.buf = encodeKeyCols(g.buf[:0], o.lks.cols, int32(i))
			p := g.probeParts[graceHash(g.buf, 0)%graceParts]
			if err := p.write(&spillRec{seq: seq, key: g.buf, row: b.rows[i]}); err != nil {
				ex.vs.release(m)
				return err
			}
		}
		ex.vs.release(m)
		return nil
	}
	for _, i := range b.sel {
		lr := b.rows[i]
		g.buf = g.buf[:0]
		null := false
		for _, p := range o.pairs {
			o.lsc.row = lr
			v, err := ex.eval(p.left, o.lsc)
			if err != nil {
				return err
			}
			if v.IsNull() {
				null = true
				break
			}
			g.buf = sqltypes.AppendKey(g.buf, v)
		}
		seq := g.probeSeq
		g.probeSeq++
		if null {
			if err := g.emitOut(ex, seq, concatRows(lr, o.nulls, g.width)); err != nil {
				return err
			}
			continue
		}
		pw := g.probeParts[graceHash(g.buf, 0)%graceParts]
		if err := pw.write(&spillRec{seq: seq, key: g.buf, row: lr}); err != nil {
			return err
		}
	}
	return nil
}

// graceNext mirrors the inner join's graceNext for the left outer join.
func (o *leftOuterOperator) graceNext(ex *exec) (*Batch, error) {
	g := o.grace
	if !g.ran {
		g.ran = true
		for {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			b, err := o.left.Next(ex)
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			if err := o.gracePartitionProbe(ex, b); err != nil {
				return nil, err
			}
		}
		if err := g.runPartitions(ex); err != nil {
			return nil, err
		}
	}
	return g.emit(ex, &o.out)
}
