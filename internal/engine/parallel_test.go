package engine

// Tests for morsel-driven parallel execution: differential equivalence of
// the parallel operators against the serial oracle (parallelism 1), error
// parity on poison rows, snapshot isolation of open cursors across writer
// commits, and a reader/writer/DDL stress test meant to run under -race.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mtbase/internal/sqltypes"
)

// forceParallel shrinks the morsel size so the parallel paths engage on
// test-sized tables, restoring the default when the test ends.
func forceParallel(t *testing.T) {
	t.Helper()
	SetMorselSize(1) // rounds up to one batch
	t.Cleanup(func() { SetMorselSize(0) })
}

// TestParallelMatchesSerial runs every streaming shape at parallelism 8
// and requires byte-identical output to the parallelism-1 serial oracle,
// in both compile modes and both executor modes.
func TestParallelMatchesSerial(t *testing.T) {
	forceParallel(t)
	for _, compiled := range []bool{true, false} {
		for _, stream := range []bool{true, false} {
			db := streamTestDB(t, 3000)
			if _, err := db.ExecSQL(`CREATE TABLE fact2 (id INTEGER NOT NULL)`); err != nil {
				t.Fatal(err)
			}
			f2 := db.Table("fact2")
			for i := 0; i < 300; i++ {
				f2.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(i * 2))})
			}
			db.SetCompileExprs(compiled)
			db.SetStreamExec(stream)
			for _, q := range streamShapes {
				db.SetParallelism(1)
				want := execKey(db.QuerySQL(q))
				db.SetParallelism(8)
				got := execKey(db.QuerySQL(q))
				if got != want {
					t.Errorf("compiled=%v stream=%v %q:\npar=8:\n%s\npar=1:\n%s",
						compiled, stream, q, got, want)
				}
			}
		}
	}
}

// TestParallelErrorParity plants a poison row mid-heap and requires the
// parallel scan to surface the same error, and the same prefix of
// survivors before it, as the serial path.
func TestParallelErrorParity(t *testing.T) {
	forceParallel(t)
	for _, compiled := range []bool{true, false} {
		db := Open(ModePostgres)
		if _, err := db.ExecSQL(`CREATE TABLE p (id INTEGER NOT NULL, d INTEGER NOT NULL)`); err != nil {
			t.Fatal(err)
		}
		const n = 6000
		rows := make([][]sqltypes.Value, n)
		for i := 0; i < n; i++ {
			d := int64(1)
			if i == 4000 {
				d = 0 // poison: 100 % d errors here
			}
			rows[i] = []sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(d)}
		}
		db.Table("p").BulkLoad(rows)
		db.SetCompileExprs(compiled)
		const q = `SELECT id FROM p WHERE 100 % d = 0 AND id % 3 = 0`

		collect := func(par int) (got []int64, errStr string) {
			db.SetParallelism(par)
			rs, err := db.QueryRows(q)
			if err != nil {
				return nil, err.Error()
			}
			defer rs.Close()
			for rs.Next() {
				var id int64
				if err := rs.Scan(&id); err != nil {
					t.Fatal(err)
				}
				got = append(got, id)
			}
			if rs.Err() != nil {
				errStr = rs.Err().Error()
			}
			return got, errStr
		}
		ids1, err1 := collect(1)
		ids8, err8 := collect(8)
		if err1 == "" || !strings.Contains(err1, "modulo") {
			t.Fatalf("compiled=%v: serial run did not hit poison row: %q", compiled, err1)
		}
		if err8 != err1 {
			t.Errorf("compiled=%v: error mismatch: par=8 %q, par=1 %q", compiled, err8, err1)
		}
		if fmt.Sprint(ids8) != fmt.Sprint(ids1) {
			t.Errorf("compiled=%v: survivor prefix mismatch: par=8 %d rows, par=1 %d rows",
				compiled, len(ids8), len(ids1))
		}
	}
}

// TestCursorSnapshotAcrossWrites opens a cursor, then commits many writes
// — updates, inserts, and a view swap — while draining it. The cursor
// must see exactly the state pinned at open (no torn reads, no rows from
// later commits), a cursor opened afterwards must see the new state, and
// Close must not deadlock against the writers.
func TestCursorSnapshotAcrossWrites(t *testing.T) {
	forceParallel(t)
	db := Open(ModePostgres)
	if _, err := db.ExecSQL(`CREATE TABLE acct (id INTEGER NOT NULL, bal INTEGER NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	const n = 5000
	rows := make([][]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(1)}
	}
	db.Table("acct").BulkLoad(rows)

	rs, err := db.QueryRows(`SELECT id, bal FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	var sum, count int64
	step := 0
	for rs.Next() {
		var id, bal int64
		if err := rs.Scan(&id, &bal); err != nil {
			t.Fatal(err)
		}
		sum += bal
		count++
		// Every few hundred rows, commit a write that would change the
		// answer if the cursor were reading live state.
		if count%500 == 0 {
			step++
			if _, err := db.ExecSQL(fmt.Sprintf(`UPDATE acct SET bal = %d`, 100+step)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.ExecSQL(fmt.Sprintf(`INSERT INTO acct VALUES (%d, %d)`, n+step, 1000)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	if count != n || sum != n {
		t.Fatalf("cursor saw count=%d sum=%d; want %d/%d (pinned snapshot)", count, sum, n, n)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh query sees every commit: all n rows at the last bal plus the
	// inserted rows.
	res, err := db.QuerySQL(`SELECT COUNT(*), SUM(bal) FROM acct`)
	if err != nil {
		t.Fatal(err)
	}
	// Each step updates every row that exists — including earlier inserts —
	// then adds one row at 1000, so only the final insert keeps bal 1000.
	wantCount := int64(n + step)
	wantSum := (wantCount-1)*int64(100+step) + 1000
	if got := res.Rows[0][0].AsInt(); got != wantCount {
		t.Errorf("post-write COUNT(*) = %d, want %d", got, wantCount)
	}
	if got := res.Rows[0][1].AsInt(); got != wantSum {
		t.Errorf("post-write SUM(bal) = %d, want %d", got, wantSum)
	}
}

// TestParallelStress hammers one DB from concurrent readers (parallel
// scans and open cursors), writers (inserts and updates), and a DDL
// goroutine swapping a view — the shape the -race CI job is meant to
// check. Readers only assert invariants that hold under snapshot reads:
// every scan sees a balance total consistent with some committed state.
func TestParallelStress(t *testing.T) {
	forceParallel(t)
	db := Open(ModePostgres)
	if _, err := db.ExecScript(`
		CREATE TABLE ledger (id INTEGER NOT NULL, amt INTEGER NOT NULL);
		CREATE VIEW pos AS SELECT id, amt FROM ledger WHERE amt >= 0`); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	seed := make([][]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		seed[i] = []sqltypes.Value{sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i % 10))}
	}
	db.Table("ledger").BulkLoad(seed)
	db.SetParallelism(4)

	iters := 30
	if testing.Short() {
		iters = 8
	}
	var wg sync.WaitGroup
	fail := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case fail <- fmt.Errorf(format, args...):
		default:
		}
	}

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := db.QuerySQL(`SELECT COUNT(*), SUM(amt) FROM ledger`)
				if err != nil {
					report("reader %d: %v", r, err)
					return
				}
				if c := res.Rows[0][0].AsInt(); c < n {
					report("reader %d: COUNT(*) = %d < seed %d", r, c, n)
					return
				}
				// Cursor held open across other goroutines' commits.
				rs, err := db.QueryRows(`SELECT amt FROM ledger WHERE amt % 2 = 0`)
				if err != nil {
					report("reader %d cursor: %v", r, err)
					return
				}
				for rs.Next() {
					if rs.Row()[0].AsInt()%2 != 0 {
						report("reader %d: torn read, odd amt from even-filter", r)
						break
					}
				}
				if rs.Err() != nil {
					report("reader %d cursor err: %v", r, rs.Err())
				}
				rs.Close()
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := db.ExecSQL(fmt.Sprintf(`INSERT INTO ledger VALUES (%d, %d)`, n+w*iters+i, i%10)); err != nil {
					report("writer %d insert: %v", w, err)
					return
				}
				if _, err := db.ExecSQL(fmt.Sprintf(`UPDATE ledger SET amt = amt + 2 WHERE id %% 97 = %d`, i%97)); err != nil {
					report("writer %d update: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := db.ExecSQL(`DROP VIEW pos`); err != nil {
				report("ddl drop: %v", err)
				return
			}
			if _, err := db.ExecSQL(`CREATE VIEW pos AS SELECT id, amt FROM ledger WHERE amt >= 0`); err != nil {
				report("ddl create: %v", err)
				return
			}
			if _, err := db.QuerySQL(`SELECT COUNT(*) FROM pos`); err != nil {
				// The view may be mid-swap from this goroutine's own DDL
				// only; no other goroutine drops it, so a miss is a bug.
				report("ddl query: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}
}

// TestSetParallelismAndMorselSize pins down the knob semantics: n <= 0
// restores defaults, morsel sizes round up to a batch multiple.
func TestSetParallelismAndMorselSize(t *testing.T) {
	db := Open(ModePostgres)
	db.SetParallelism(3)
	db.mu.Lock()
	if got := db.parallelism(); got != 3 {
		t.Errorf("parallelism() = %d, want 3", got)
	}
	db.mu.Unlock()
	db.SetParallelism(0)
	db.mu.Lock()
	if got := db.parallelism(); got < 1 {
		t.Errorf("default parallelism() = %d, want >= 1", got)
	}
	db.mu.Unlock()

	SetMorselSize(1)
	if got := morselLen(); got != batchSize {
		t.Errorf("morselLen() after SetMorselSize(1) = %d, want %d", got, batchSize)
	}
	SetMorselSize(batchSize + 1)
	if got := morselLen(); got != 2*batchSize {
		t.Errorf("morselLen() after SetMorselSize(batch+1) = %d, want %d", got, 2*batchSize)
	}
	SetMorselSize(0)
	if got := morselLen(); got != 4*batchSize {
		t.Errorf("default morselLen() = %d, want %d", got, 4*batchSize)
	}
}
