package engine

// Tests for the streaming Rows cursor: parity with the materialized Result,
// genuine laziness of the projection (rows arrive before later batches are
// evaluated), Scan targets and LIMIT handling.

import (
	"strings"
	"testing"

	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// rowsTestDB builds a table with n rows (id 0..n-1, val = id, div = n-1-id).
func rowsTestDB(t *testing.T, compiled bool, n int) *DB {
	t.Helper()
	db := Open(ModePostgres)
	db.SetCompileExprs(compiled)
	if _, err := db.ExecSQL(`CREATE TABLE seq (id INTEGER NOT NULL, val INTEGER NOT NULL, div INTEGER NOT NULL)`); err != nil {
		t.Fatal(err)
	}
	tab := db.Table("seq")
	rows := make([][]sqltypes.Value, n)
	for i := 0; i < n; i++ {
		rows[i] = []sqltypes.Value{
			sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(i)), sqltypes.NewInt(int64(n - 1 - i)),
		}
	}
	tab.BulkLoad(rows)
	return db
}

// TestRowsMatchesResult drains cursors for a spread of query shapes —
// every one of which now streams through the operator tree — and compares
// against the classic materializing executor.
func TestRowsMatchesResult(t *testing.T) {
	queries := []string{
		`SELECT id, val FROM seq WHERE val % 3 = 0`,              // scan shape
		`SELECT id, val * 2 AS dbl FROM seq WHERE id < 100`,      // scan w/ expr
		`SELECT * FROM seq WHERE id >= 2500`,                     // star
		`SELECT id FROM seq WHERE id < 10 ORDER BY id DESC`,      // sort breaker
		`SELECT val % 5 AS k, COUNT(*) AS n FROM seq GROUP BY k`, // group breaker
		`SELECT DISTINCT val % 7 AS k FROM seq`,                  // streamed distinct
		`SELECT id FROM seq WHERE id > 100 LIMIT 17`,             // streamed limit
	}
	for _, compiled := range []bool{true, false} {
		db := rowsTestDB(t, compiled, 3000)
		for _, q := range queries {
			sel, err := sqlparse.ParseQuery(q)
			if err != nil {
				t.Fatalf("%q: %v", q, err)
			}
			// The materializing executor is the reference.
			db.SetStreamExec(false)
			want, err := db.Query(sel)
			db.SetStreamExec(true)
			if err != nil {
				t.Fatalf("compiled=%v %q: %v", compiled, q, err)
			}
			rows, err := db.QueryRows(q)
			if err != nil {
				t.Fatalf("compiled=%v %q: %v", compiled, q, err)
			}
			got, err := rows.Collect()
			if err != nil {
				t.Fatalf("compiled=%v %q: %v", compiled, q, err)
			}
			if gk, wk := resultKey(t, got), resultKey(t, want); gk != wk {
				t.Fatalf("compiled=%v %q: cursor differs from result\n%s\nvs\n%s", compiled, q, gk, wk)
			}
		}
	}
}

// TestRowsStreamsLazily proves the projection is not materialized up front:
// a row deep in the table poisons the projection (modulo by zero), yet every
// row of the earlier batches is delivered through Next before the error
// surfaces. The materialized Result path fails wholesale on the same query.
func TestRowsStreamsLazily(t *testing.T) {
	db := rowsTestDB(t, true, 3000)
	// div = 0 only at id = 2999, far past the first batch of 1024.
	q := `SELECT id, 100 % div AS m FROM seq`
	rows, err := db.QueryRows(q)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for rows.Next() {
		seen++
	}
	if rows.Err() == nil || !strings.Contains(rows.Err().Error(), "modulo by zero") {
		t.Fatalf("want modulo error from cursor, got %v", rows.Err())
	}
	// Everything before the poisoned batch was already delivered.
	if seen < BatchSize || seen >= 3000 {
		t.Fatalf("delivered %d rows before error; want >= %d and < 3000", seen, BatchSize)
	}
	// The convenience wrapper fails as a whole, like the old Result path.
	if _, err := db.QuerySQL(q); err == nil {
		t.Fatal("QuerySQL should fail on the poisoned projection")
	}
}

// TestRowsScan exercises the Scan targets, NULL rejection included.
func TestRowsScan(t *testing.T) {
	db := bindTestDB(t, true)
	rows, err := db.QueryRows(`SELECT id, name, price FROM seqless LIMIT 1`)
	if err == nil {
		t.Fatal("expected error for unknown table")
	}
	rows, err = db.QueryRows(`SELECT id, name, price FROM items WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no row: %v", rows.Err())
	}
	var (
		id    int64
		name  string
		price float64
	)
	if err := rows.Scan(&id, &name, &price); err != nil {
		t.Fatal(err)
	}
	if id != 1 || name != "anvil" || price != 10.5 {
		t.Fatalf("scanned (%d, %q, %v)", id, name, price)
	}
	if err := rows.Scan(&id); err == nil || !strings.Contains(err.Error(), "expects 3 targets") {
		t.Fatalf("want target-count error, got %v", err)
	}
	var v sqltypes.Value
	if err := rows.Scan(&v, &v, &v); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if rows.Next() {
		t.Fatal("Next after Close must be false")
	}

	// NULL into a typed target errors; into *sqltypes.Value it is fine.
	nr, err := db.QueryRows(`SELECT NULL AS n FROM items WHERE id = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !nr.Next() {
		t.Fatalf("no row: %v", nr.Err())
	}
	var s string
	if err := nr.Scan(&s); err == nil || !strings.Contains(err.Error(), "NULL") {
		t.Fatalf("want NULL scan error, got %v", err)
	}
	if err := nr.Scan(&v); err != nil || !v.IsNull() {
		t.Fatalf("NULL into Value: %v %v", v, err)
	}
}

// TestRowsLimitStreams checks LIMIT stops the cursor without draining the
// source (the countdown path).
func TestRowsLimitStreams(t *testing.T) {
	for _, compiled := range []bool{true, false} {
		db := rowsTestDB(t, compiled, 3000)
		rows, err := db.QueryRows(`SELECT id FROM seq LIMIT 5`)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		if n != 5 {
			t.Fatalf("compiled=%v: LIMIT 5 delivered %d rows", compiled, n)
		}
	}
}

// TestMaterializedQueryAtomicWithWriters: the materializing entry points
// run end to end under DB.mu, so they stay safe against concurrent
// in-place UPDATEs (regression for the streaming redesign; run with -race).
func TestMaterializedQueryAtomicWithWriters(t *testing.T) {
	db := rowsTestDB(t, true, 2000)
	done := make(chan error, 2)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := db.QuerySQL(`SELECT id, val * 2 AS d FROM seq WHERE val % 3 = 0`); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := db.ExecArgs(`UPDATE seq SET val = val + ? WHERE id % 7 = 0`, sqltypes.NewInt(1)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
