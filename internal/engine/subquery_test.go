package engine

import (
	"testing"
)

func TestTupleInSubquery(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// Tenant-aware membership: (role, ttid) pairs — role 2 of tenant 0 only.
	rows := queryRows(t, db, `SELECT E_name FROM Employees
		WHERE (E_role_id, ttid) IN (SELECT R_role_id, ttid FROM Roles WHERE R_name = 'professor')
		ORDER BY E_name`)
	if len(rows) != 1 || rows[0][0].S != "Alice" {
		t.Errorf("rows = %v", rows)
	}
	// Without the ttid component both tenants' role-2 employees match.
	rows = queryRows(t, db, `SELECT E_name FROM Employees
		WHERE E_role_id IN (SELECT R_role_id FROM Roles WHERE R_name = 'professor')
		ORDER BY E_name`)
	if len(rows) != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestUncorrelatedSubqueryCachedOnce(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	db.Stats = Stats{}
	// The scalar subquery calls the UDF once per Employees row it scans,
	// but the subquery itself must run exactly once for the whole statement.
	rows := queryRows(t, db, `SELECT E_name FROM Employees
		WHERE E_salary > (SELECT AVG(currencyToUniversal(E_salary, ttid)) FROM Employees)`)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// 6 employee rows with distinct (salary, ttid) pairs -> 6 UDF body runs
	// if the subquery ran once; far more if it ran per outer row.
	if db.Stats.UDFCalls > 6 {
		t.Errorf("uncorrelated subquery not cached: %d UDF calls", db.Stats.UDFCalls)
	}
}

func TestCorrelatedSubqueryNotCached(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// Per-tenant max: the subquery must be re-evaluated per outer row
	// (cached results would return tenant 0's max for tenant 1).
	rows := queryRows(t, db, `SELECT E_name FROM Employees e1
		WHERE E_salary = (SELECT MAX(E_salary) FROM Employees e2 WHERE e2.ttid = e1.ttid)
		ORDER BY E_name`)
	if len(rows) != 2 || rows[0][0].S != "Alice" || rows[1][0].S != "Ed" {
		t.Errorf("rows = %v", rows)
	}
}

func TestCorrelationThroughNestedSubquery(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// The innermost subquery references e1 two boundary levels up; both
	// boundaries must be flagged as correlated.
	rows := queryRows(t, db, `SELECT E_name FROM Employees e1 WHERE EXISTS (
		SELECT 1 FROM Roles r WHERE r.ttid = e1.ttid AND r.R_role_id IN (
			SELECT e2.E_role_id FROM Employees e2 WHERE e2.ttid = e1.ttid AND e2.E_age > 70))
		ORDER BY E_name`)
	// Tenant 1 has Nancy (72, role 2): roles of tenant 1 include role 2 ->
	// all three tenant-1 employees qualify.
	if len(rows) != 3 {
		t.Errorf("rows = %v", rows)
	}
	for _, r := range rows {
		name := r[0].S
		if name != "Allan" && name != "Ed" && name != "Nancy" {
			t.Errorf("unexpected employee %s", name)
		}
	}
}

func TestParamCorrelationInUDFBody(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	// A UDF whose body contains a subquery referencing $1: results must not
	// be reused across different arguments even though the *Select pointer
	// is shared between calls.
	_, err := db.ExecSQL(`CREATE FUNCTION maxSalaryOf (INTEGER) RETURNS DECIMAL(15,2)
		AS 'SELECT (SELECT MAX(E_salary) FROM Employees WHERE ttid = $1) AS m' LANGUAGE SQL`)
	if err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT maxSalaryOf(0), maxSalaryOf(1)")
	if rows[0][0].AsFloat() != 150000 || rows[0][1].AsFloat() != 1000000 {
		t.Errorf("per-tenant maxima: %v", rows[0])
	}
}

func TestExistsCachedWhenUncorrelated(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, `SELECT E_name FROM Employees
		WHERE EXISTS (SELECT 1 FROM Regions WHERE Re_name = 'EUROPE') ORDER BY E_name`)
	if len(rows) != 6 {
		t.Errorf("rows = %v", rows)
	}
	rows = queryRows(t, db, `SELECT COUNT(*) FROM Employees
		WHERE NOT EXISTS (SELECT 1 FROM Regions WHERE Re_name = 'ATLANTIS')`)
	if rows[0][0].I != 6 {
		t.Errorf("rows = %v", rows)
	}
}

func TestRowValueOutsideIn(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT (1, 2) FROM Employees"); err == nil {
		t.Error("row value outside IN accepted")
	}
}
