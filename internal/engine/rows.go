package engine

// This file implements the streaming consumer API: a Rows cursor with the
// database/sql-style Next/Scan/Close contract. For the common shape —
// SELECT without grouping, DISTINCT or ORDER BY, projecting expressions
// that touch no subqueries or SQL-bodied functions — the FROM/WHERE part
// runs eagerly under DB.mu (joins and filters need a consistent view of the
// heap), but the projection itself runs lazily, one batch per Next() window,
// so the full result set is never materialized up front. Everything else —
// grouped, distinct or ordered queries, or projections whose evaluation
// must stay serialized under DB.mu (UDF call sites share plan-level state)
// — falls back to full materialization at query time; the cursor contract
// is identical either way.
//
// A streaming Rows holds references into the source relation (and therefore
// the table heap) while iterating. Reads are safe concurrently with other
// reads; interleaving DML/DDL on the same DB with an open cursor is the
// caller's synchronization problem, exactly like holding a Result's rows
// across a write.

import (
	"context"
	"fmt"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// Rows is a forward-only cursor over a query result.
type Rows struct {
	cols []string
	ex   *exec

	// Materialized mode: every output row is already computed.
	buf    [][]sqltypes.Value
	bufPos int

	// Streaming mode (stream == true): project per batch on demand.
	stream  bool
	src     scanOp
	b       batch
	projs   []projector
	vprojs  []vecExpr // compiled mode; nil entries are star segments
	sc      *scope    // interpreter mode projection scope
	width   int
	remain  int64 // LIMIT countdown; -1 = unlimited
	pending [][]sqltypes.Value
	pendPos int

	cur    []sqltypes.Value
	err    error
	closed bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Err returns the first error encountered while iterating, nil after a
// clean exhaustion.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. It is safe to call multiple times and after
// exhaustion; Next returns false afterwards.
func (r *Rows) Close() error {
	r.closed = true
	r.pending = nil
	r.buf = nil
	r.cur = nil
	return nil
}

// Row returns the current row (valid until the next call to Next). The
// slice must not be modified.
func (r *Rows) Row() []sqltypes.Value { return r.cur }

// Next advances to the next row, reporting whether one is available. After
// it returns false, check Err for the difference between exhaustion and
// failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.remain == 0 {
		r.Close()
		return false
	}
	if !r.stream {
		if r.bufPos >= len(r.buf) {
			r.Close()
			return false
		}
		r.cur = r.buf[r.bufPos]
		r.bufPos++
		return true
	}
	for r.pendPos >= len(r.pending) {
		if !r.fillPending() {
			r.Close()
			return false
		}
	}
	r.cur = r.pending[r.pendPos]
	r.pendPos++
	if r.remain > 0 {
		r.remain--
	}
	return true
}

// fillPending projects the next source batch into r.pending, mirroring
// projectRowsBatched (compiled) or the interpreter's row loop. It reports
// false on exhaustion or error (r.err set).
func (r *Rows) fillPending() bool {
	ex := r.ex
	if err := ex.cancelled(); err != nil {
		r.err = err
		return false
	}
	if !r.src.next(&r.b) {
		return false
	}
	b := &r.b
	r.pending = r.pending[:0]
	r.pendPos = 0
	if r.vprojs != nil {
		n := len(b.rows)
		sel := b.sel
		m := ex.vs.mark()
		selBuf := ex.vs.takeSel(len(sel))
		cols := make([][]sqltypes.Value, len(r.projs))
		for i, vp := range r.vprojs {
			if vp == nil {
				continue
			}
			cols[i] = ex.vs.takeVals(n)
			vp(b, sel, cols[i])
			sel = b.compactSel(selBuf, sel)
		}
		if err := b.firstErr(); err != nil {
			ex.vs.release(m)
			r.err = err
			return false
		}
		ck := newRowChunk(len(sel), r.width)
		for _, i := range sel {
			row := ck.alloc(r.width)
			pos := 0
			for j := range r.projs {
				p := &r.projs[j]
				if p.star {
					for _, seg := range p.segs {
						pos += copy(row[pos:pos+seg[1]], b.rows[i][seg[0]:seg[0]+seg[1]])
					}
					continue
				}
				row[pos] = cols[j][i]
				pos++
			}
			r.pending = append(r.pending, row)
		}
		ex.vs.release(m)
		return true
	}
	// Interpreter mode: row-at-a-time projection of this batch's rows.
	for _, i := range b.sel {
		row := b.rows[i]
		r.sc.row = row
		out := make([]sqltypes.Value, 0, r.width)
		for j := range r.projs {
			p := &r.projs[j]
			if p.star {
				for _, seg := range p.segs {
					out = append(out, row[seg[0]:seg[0]+seg[1]]...)
				}
				continue
			}
			v, err := ex.eval(p.expr, r.sc)
			if err != nil {
				r.err = err
				return false
			}
			out = append(out, v)
		}
		r.pending = append(r.pending, out)
	}
	return true
}

// Scan copies the current row into dest, one target per output column.
// Supported targets: *sqltypes.Value (any value, including NULL), *int64,
// *float64, *string and *bool (which reject NULL).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("engine: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("engine: Scan expects %d targets, got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch t := d.(type) {
		case *sqltypes.Value:
			*t = v
		case *int64:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *int64", i+1)
			}
			*t = v.AsInt()
		case *float64:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *float64", i+1)
			}
			*t = v.AsFloat()
		case *string:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *string", i+1)
			}
			*t = v.AsString()
		case *bool:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *bool", i+1)
			}
			*t = v.Bool()
		default:
			return fmt.Errorf("engine: Scan column %d: unsupported target %T", i+1, d)
		}
	}
	return nil
}

// Collect drains the cursor into a materialized Result and closes it —
// the bridge that keeps Result a thin convenience over Rows.
func (r *Rows) Collect() (*Result, error) {
	defer r.Close()
	res := &Result{Cols: r.cols}
	if !r.stream && r.bufPos == 0 {
		// Materialized cursor, untouched: hand the buffer over wholesale.
		res.Rows = r.buf
		if r.remain >= 0 && int64(len(res.Rows)) > r.remain {
			res.Rows = res.Rows[:r.remain]
		}
		r.buf = nil
		return res, r.err
	}
	for r.Next() {
		res.Rows = append(res.Rows, r.cur)
	}
	if r.err != nil {
		return nil, r.err
	}
	return res, nil
}

// streamableSelect reports whether sel's projection may run outside DB.mu,
// batch-at-a-time: no grouping, DISTINCT or ORDER BY (those consume the
// whole input anyway), and no SELECT item that evaluates a subquery or a
// SQL-bodied function (those share plan-level state that DB.mu serializes).
func (db *DB) streamableSelect(sel *sqlast.Select) bool {
	if len(sel.GroupBy) > 0 || sel.Having != nil || sel.Distinct || len(sel.OrderBy) > 0 {
		return false
	}
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		if hasAggregate(it.Expr) {
			return false
		}
		if len(sqlast.SubqueriesOf(it.Expr)) > 0 {
			return false
		}
		if db.hasUDFCall(it.Expr) {
			return false
		}
	}
	return true
}

// queryRowsLocked builds the cursor for one SELECT execution under db.mu:
// plan validation, bind coercion and the eager FROM/WHERE phase happen
// here; a streamable projection is deferred to the cursor's Next loop.
func (db *DB) queryRowsLocked(ctx context.Context, p *Plan, sel *sqlast.Select, args []sqltypes.Value) (*Rows, error) {
	if p.arityErr != nil {
		return nil, p.arityErr
	}
	ex, err := db.newExecArgs(ctx, p, args)
	if err != nil {
		return nil, err
	}
	if !db.streamableSelect(sel) {
		res, err := ex.runQuery(sel, rootScope())
		if err != nil {
			return nil, err
		}
		return &Rows{cols: res.Cols, ex: ex, buf: res.Rows, remain: -1}, nil
	}
	rel, err := ex.buildFromWhere(sel, rootScope())
	if err != nil {
		return nil, err
	}
	sc := rel.scopeFor(rootScope())
	cols, err := ex.outputShape(sel, rel)
	if err != nil {
		return nil, err
	}
	projs, width := ex.buildProjectors(sel, rel)
	r := &Rows{
		cols:   cols,
		ex:     ex,
		stream: true,
		src:    scanOp{rows: rel.rows},
		projs:  projs,
		sc:     sc,
		width:  width,
		remain: sel.Limit, // -1 when absent
	}
	if !db.noCompile {
		r.vprojs = make([]vecExpr, len(projs))
		for i := range projs {
			if !projs[i].star {
				r.vprojs[i] = ex.vecCompile(projs[i].expr, rel.bindings, sc)
			}
		}
	}
	return r, nil
}
