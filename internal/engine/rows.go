package engine

// This file implements the streaming consumer API: a Rows cursor with the
// database/sql-style Next/Scan/Close contract. Every query shape — joins,
// GROUP BY, ORDER BY, DISTINCT, subqueries — streams through the same
// pull-based operator tree (operator.go): Next pulls one batch at a time
// from the root operator, so memory is bounded by batch size plus whatever
// the tree's pipeline breakers (hash-join builds, group buckets, sort
// buffers) hold, never by the full result set.
//
// Concurrency: the cursor's exec pins its catalog and every table heap
// snapshot under DB.mu at creation (newExecArgs), then the lock is released
// and never touched again — batch pulls run entirely against those
// immutable snapshots. An open cursor therefore observes one consistent
// database state for its whole lifetime, no matter how many writers commit
// between pulls (writers publish fresh snapshots; they never mutate pinned
// ones), never starves writers, and never deadlocks on Close. Plan-level
// shared state the pulls touch (UDF body plans, select analyses) is
// internally synchronized (Plan.mu, udfPlan.mu).

import (
	"context"
	"fmt"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// rowSource is an external row supplier a Rows can wrap (gather.go):
// next returns the following row (nil on exhaustion), close releases the
// source and every resource behind it. Both are called by the single
// cursor consumer only.
type rowSource interface {
	next() ([]sqltypes.Value, error)
	close()
}

// Rows is a forward-only cursor over a query result.
type Rows struct {
	cols []string
	ex   *exec

	// Streaming mode: pull batches from the root operator.
	root   Operator
	opened bool
	b      *Batch
	pos    int

	// Materialized mode (SetStreamExec(false)): every row precomputed.
	buf    [][]sqltypes.Value
	bufPos int

	// External-source mode (gather.go): rows come from a rowSource —
	// a scatter/gather tree over other cursors rather than an operator
	// tree of this engine.
	src rowSource

	cur    []sqltypes.Value
	err    error
	closed bool
}

// Columns returns the output column names.
func (r *Rows) Columns() []string { return r.cols }

// Err returns the first error encountered while iterating, nil after a
// clean exhaustion.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor and its operator tree. It is idempotent: safe
// to call multiple times, after exhaustion, and after a mid-stream error;
// Next returns false afterwards and Err keeps reporting the first error.
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.root != nil {
		r.root.Close()
	}
	if r.src != nil {
		// Cancels and joins the source's feeders: by the time Close
		// returns, every child cursor is closed and its spills released.
		r.src.close()
	}
	if r.ex != nil {
		// Backstop: remove any spill file an errored or abandoned subtree
		// left behind (operator Close handles the common case).
		r.ex.releaseSpills()
	}
	r.b = nil
	r.buf = nil
	r.cur = nil
	return nil
}

// Row returns the current row (valid until the next call to Next). The
// slice must not be modified.
func (r *Rows) Row() []sqltypes.Value { return r.cur }

// Next advances to the next row, reporting whether one is available. After
// it returns false, check Err for the difference between exhaustion and
// failure.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.src != nil {
		row, err := r.src.next()
		if err != nil {
			r.err = err
			r.Close()
			return false
		}
		if row == nil {
			r.Close()
			return false
		}
		r.cur = row
		return true
	}
	if r.root == nil {
		if r.bufPos >= len(r.buf) {
			r.Close()
			return false
		}
		r.cur = r.buf[r.bufPos]
		r.bufPos++
		return true
	}
	for r.b == nil || r.pos >= len(r.b.sel) {
		if !r.pull() {
			r.Close()
			return false
		}
	}
	r.cur = r.b.rows[r.b.sel[r.pos]]
	r.pos++
	return true
}

// pull fetches the next batch from the root operator, opening the tree on
// the first call. It runs lock-free against the exec's pinned snapshots
// and reports false on exhaustion or error (r.err set).
func (r *Rows) pull() bool {
	ex := r.ex
	if err := ex.cancelled(); err != nil {
		r.err = err
		return false
	}
	if !r.opened {
		r.opened = true
		if err := r.root.Open(ex); err != nil {
			r.err = err
			return false
		}
	}
	b, err := r.root.Next(ex)
	if err != nil {
		r.err = err
		return false
	}
	if b == nil {
		return false
	}
	r.b, r.pos = b, 0
	return true
}

// Scan copies the current row into dest, one target per output column.
// Supported targets: *sqltypes.Value (any value, including NULL), *int64,
// *float64, *string and *bool (which reject NULL).
func (r *Rows) Scan(dest ...any) error {
	if r.cur == nil {
		return fmt.Errorf("engine: Scan called without a successful Next")
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("engine: Scan expects %d targets, got %d", len(r.cur), len(dest))
	}
	for i, d := range dest {
		v := r.cur[i]
		switch t := d.(type) {
		case *sqltypes.Value:
			*t = v
		case *int64:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *int64", i+1)
			}
			*t = v.AsInt()
		case *float64:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *float64", i+1)
			}
			*t = v.AsFloat()
		case *string:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *string", i+1)
			}
			*t = v.AsString()
		case *bool:
			if v.IsNull() {
				return fmt.Errorf("engine: Scan column %d: cannot scan NULL into *bool", i+1)
			}
			*t = v.Bool()
		default:
			return fmt.Errorf("engine: Scan column %d: unsupported target %T", i+1, d)
		}
	}
	return nil
}

// Collect drains the cursor into a materialized Result and closes it — the
// bridge that keeps Result a thin convenience over Rows. A mid-stream
// operator error propagates as the call's error; no partial result is
// returned.
func (r *Rows) Collect() (*Result, error) {
	defer r.Close()
	res := &Result{Cols: r.cols}
	if r.root == nil && r.src == nil && r.bufPos == 0 && r.err == nil && !r.closed {
		// Materialized cursor, untouched: hand the buffer over wholesale.
		res.Rows = r.buf
		r.buf = nil
		return res, nil
	}
	for r.Next() {
		res.Rows = append(res.Rows, r.cur)
	}
	if r.err != nil {
		return nil, r.err
	}
	return res, nil
}

// queryRowsUnlock builds the cursor for one SELECT execution. It is
// entered with db.mu held: bind coercion and snapshot pinning (newExecArgs)
// happen under the lock, which is then released — operator tree
// construction and all execution run against the exec's immutable pinned
// snapshots, overlapping freely with writers and other cursors.
func (db *DB) queryRowsUnlock(ctx context.Context, p *Plan, sel *sqlast.Select, args []sqltypes.Value) (*Rows, error) {
	if p.arityErr != nil {
		db.mu.Unlock()
		return nil, p.arityErr
	}
	ex, err := db.newExecArgs(ctx, p, args)
	streamOff := db.streamOff
	db.mu.Unlock()
	if err != nil {
		return nil, err
	}
	// An already-cancelled context fails at cursor creation, not on the
	// first pull — the contract the eager-FROM/WHERE cursor had.
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if streamOff {
		res, err := ex.runQueryMaterialized(sel, rootScope())
		if err != nil {
			return nil, err
		}
		return &Rows{cols: res.Cols, ex: ex, buf: res.Rows}, nil
	}
	root, err := ex.buildQueryOp(sel, rootScope())
	if err != nil {
		return nil, err
	}
	return &Rows{cols: root.cols, ex: ex, root: root.op}, nil
}
