package engine

// This file implements the batch-at-a-time execution infrastructure. The
// compiled path no longer pulls one row at a time through closures: operators
// exchange fixed-size windows of tuples (a batch) together with a selection
// vector of surviving row indices, and expressions run as tight loops over
// those vectors (vector.go). Filters refine the selection vector instead of
// copying rows; join, group-by and sort keys are computed into per-batch key
// columns and encoded from there.
//
// Error discipline: batched evaluation must abort with exactly the error the
// row-at-a-time interpreter would raise — the one belonging to the first
// failing row in row order, with later conjuncts/projectors of that row
// short-circuited exactly as the interpreter short-circuits them. Kernels
// therefore never return an error directly; they poison the failing row in
// batch.errs and drop it from subsequent evaluation, and the driving operator
// picks the first poisoned row of the batch once the batch is complete. The
// differential property test (property_test.go) holds the two paths to
// identical results and identical errors.

import (
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// BatchSize is the number of rows operators exchange per step in batched
// execution. Benchmark artifacts record it so BENCH_*.json files stay
// comparable across configurations.
const BatchSize = 1024

const batchSize = BatchSize

// identSel is the shared identity selection vector; operators slice it to
// the window length for freshly scanned batches. It must never be written.
var identSel = func() []int32 {
	s := make([]int32, batchSize)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}()

// batch is one unit of work flowing between operators: a window of up to
// batchSize tuples, the selection vector of still-live local row indices
// (always ascending), and per-row error slots for poisoned rows.
type Batch struct {
	rows   [][]sqltypes.Value // window into the source relation
	base   int                // ordinal of rows[0] within the source
	sel    []int32            // selected local row indices
	errs   []error            // errs[i] poisons local row i
	anyErr bool               // fast check: any errs entry non-nil

	// keys holds ORDER BY key columns on result-shaped (dense) batches:
	// keys[k][i] is sort key k of rows[i]. Producers (project, group) fill
	// it; distinct filters it alongside rows; sort consumes it.
	keys [][]sqltypes.Value
}

// window prepares b as a dense batch over rows: the identity selection, no
// poisoned rows, no keys. len(rows) must not exceed batchSize.
func (b *Batch) window(rows [][]sqltypes.Value) {
	n := len(rows)
	b.rows = rows
	b.base = 0
	b.sel = identSel[:n]
	b.keys = nil
	b.reset(n)
}

// reset prepares the batch for a new window of n rows.
func (b *Batch) reset(n int) {
	if cap(b.errs) < n {
		b.errs = make([]error, n)
	}
	e := b.errs[:n]
	if b.anyErr {
		for i := range e {
			e[i] = nil
		}
	}
	b.errs = e
	b.anyErr = false
}

// firstErr returns the error of the first poisoned row in row order — the
// error row-at-a-time execution would have raised.
func (b *Batch) firstErr() error {
	if !b.anyErr {
		return nil
	}
	for _, e := range b.errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// poison marks local row i failed.
func (b *Batch) poison(i int32, err error) {
	b.errs[i] = err
	b.anyErr = true
}

// compactSel drops poisoned rows from sel, writing into dst (dst may alias
// sel; compaction never writes ahead of its read position). When the batch is
// clean, sel is returned untouched — the common case costs one flag check.
func (b *Batch) compactSel(dst, sel []int32) []int32 {
	if !b.anyErr {
		return sel
	}
	dst = dst[:0]
	for _, i := range sel {
		if b.errs[i] == nil {
			dst = append(dst, i)
		}
	}
	return dst
}

// growVals returns a value column of length n, reusing buf when possible.
// Contents are not preserved; callers only read indices they wrote this
// batch. Allocation is exact: windows are already batchSize-capped, and
// small relations (correlated subqueries re-plan per execution) must not pay
// full-batch scratch.
func growVals(buf []sqltypes.Value, n int) []sqltypes.Value {
	if cap(buf) >= n {
		return buf[:n]
	}
	return make([]sqltypes.Value, n)
}

// growSel returns a selection scratch buffer with capacity for n entries.
func growSel(buf []int32, n int) []int32 {
	if cap(buf) >= n {
		return buf[:0]
	}
	return make([]int32, 0, n)
}

// encodeKeyCols appends the canonical encoding of the i-th entry of each key
// column to buf — the batched replacement for per-row key evaluation in hash
// join builds, group-by bucketing and index probes.
func encodeKeyCols(buf []byte, cols [][]sqltypes.Value, i int32) []byte {
	for _, c := range cols {
		buf = sqltypes.AppendKey(buf, c[i])
	}
	return buf
}

// ---------------------------------------------------------------- operators

// batchOp is the pull-based operator interface of the batched executor:
// next fills b with the operator's next batch and reports whether one was
// produced. Both execution modes run behind it — the compiled path refines
// selection vectors with vectorized kernels, the interpreter fallback
// evaluates row-at-a-time inside the same batches.
type batchOp interface {
	next(b *Batch) bool
}

// scanOp streams a materialized row set in fixed-size windows.
type scanOp struct {
	rows [][]sqltypes.Value
	pos  int
}

func (s *scanOp) next(b *Batch) bool {
	if s.pos >= len(s.rows) {
		return false
	}
	n := len(s.rows) - s.pos
	if n > batchSize {
		n = batchSize
	}
	b.rows = s.rows[s.pos : s.pos+n]
	b.base = s.pos
	s.pos += n
	b.sel = identSel[:n]
	b.reset(n)
	return true
}

// filterOp refines each input batch's selection vector with a conjunct list.
// In compiled mode every conjunct is a vectorized program looping over the
// selection vector; with compilation disabled the same operator evaluates the
// conjuncts through the tree-walking interpreter one row at a time. A batch
// is only surfaced when rows survive; on a poisoned row the operator stops
// and exposes the first failing row's error via failed.
type filterOp struct {
	src    batchOp
	ex     *exec
	sc     *scope        // row context for interpreted conjuncts
	progs  []vecExpr     // compiled mode: one program per conjunct
	exprs  []sqlast.Expr // interpreter mode: the conjunct expressions
	out    []sqltypes.Value
	selBuf []int32
	failed error
}

func (f *filterOp) next(b *Batch) bool {
	if f.failed != nil {
		return false
	}
	for f.src.next(b) {
		if f.progs != nil {
			f.applyVec(b)
		} else {
			f.applyInterp(b)
		}
		if f.failed != nil {
			return false
		}
		if len(b.sel) > 0 {
			return true
		}
	}
	return false
}

func (f *filterOp) applyVec(b *Batch) {
	sel := b.sel
	for _, prog := range f.progs {
		if len(sel) == 0 {
			break
		}
		f.out = growVals(f.out, len(b.rows))
		prog(b, sel, f.out)
		f.selBuf = growSel(f.selBuf, len(sel))
		kept := f.selBuf[:0]
		for _, i := range sel {
			if b.errs[i] != nil {
				continue
			}
			if truth, _ := sqltypes.Truthy(f.out[i]); truth {
				kept = append(kept, i)
			}
		}
		sel = kept
	}
	b.sel = sel
	f.failed = b.firstErr()
}

func (f *filterOp) applyInterp(b *Batch) {
	f.selBuf = growSel(f.selBuf, len(b.sel))
	kept := f.selBuf[:0]
	for _, i := range b.sel {
		f.sc.row = b.rows[i]
		keep := true
		for _, e := range f.exprs {
			v, err := f.ex.eval(e, f.sc)
			if err != nil {
				f.failed = err
				return
			}
			if truth, _ := sqltypes.Truthy(v); !truth {
				keep = false
				break
			}
		}
		if keep {
			kept = append(kept, i)
		}
	}
	b.sel = kept
}

// ---------------------------------------------------------------- row chunks

// rowChunk hands out fixed-width result tuples from one pre-sized
// allocation. Batch drivers count their output rows before materializing
// (projection emits the selection vector, joins sum their hash buckets), so
// a batch's tuples cost exactly one allocation with zero slack — replacing
// the one-make-per-row pattern of row-at-a-time execution.
type rowChunk struct {
	buf []sqltypes.Value
}

func newRowChunk(rows, width int) rowChunk {
	return rowChunk{buf: make([]sqltypes.Value, 0, rows*width)}
}

func (c *rowChunk) alloc(width int) []sqltypes.Value {
	if width == 0 {
		return nil
	}
	off := len(c.buf)
	c.buf = c.buf[:off+width]
	return c.buf[off : off+width : off+width]
}

// concat appends the concatenation of l and r as one output tuple.
func (c *rowChunk) concat(l, r []sqltypes.Value) []sqltypes.Value {
	off := len(c.buf)
	c.buf = append(append(c.buf, l...), r...)
	return c.buf[off:len(c.buf):len(c.buf)]
}

// concatRows is the row-at-a-time counterpart used by the interpreter paths.
func concatRows(l, r []sqltypes.Value, width int) []sqltypes.Value {
	row := make([]sqltypes.Value, 0, width)
	row = append(row, l...)
	return append(row, r...)
}

// ---------------------------------------------------------------- sorting

// stableSortIdx stably sorts a permutation vector with an explicit
// comparator: bottom-up merge sort over insertion-sorted runs. It replaces
// sort.SliceStable in ORDER BY, whose reflection-based swapper and per-row
// key slices showed up in the Q1/Q22 profiles; keys now live in precomputed
// key columns indexed by the permutation.
func stableSortIdx(idx []int32, less func(a, b int32) bool) {
	n := len(idx)
	if n < 2 {
		return
	}
	const run = 32
	for lo := 0; lo < n; lo += run {
		hi := lo + run
		if hi > n {
			hi = n
		}
		for i := lo + 1; i < hi; i++ {
			for j := i; j > lo && less(idx[j], idx[j-1]); j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
	}
	if n <= run {
		return
	}
	tmp := make([]int32, n)
	for width := run; width < n; width *= 2 {
		for lo := 0; lo+width < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			// merge idx[lo:mid] and idx[mid:hi] into tmp, left wins ties
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if less(idx[j], idx[i]) {
					tmp[k] = idx[j]
					j++
				} else {
					tmp[k] = idx[i]
					i++
				}
				k++
			}
			copy(tmp[k:], idx[i:mid])
			k += mid - i
			copy(tmp[k:], idx[j:hi])
			copy(idx[lo:hi], tmp[lo:hi])
		}
	}
}
