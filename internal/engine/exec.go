package engine

import (
	"fmt"
	"sort"
	"strings"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// relation is a materialized intermediate result: named bindings laid out
// side by side in each row tuple.
type relation struct {
	bindings []*binding
	rows     [][]sqltypes.Value
	width    int
	// base is the backing table when rows is exactly the table heap
	// (unfiltered single-table scan); it enables index probes.
	base *Table
}

func (r *relation) names() map[string]bool {
	m := make(map[string]bool, len(r.bindings))
	for _, b := range r.bindings {
		m[b.name] = true
	}
	return m
}

// scopeFor builds an evaluation scope over this relation.
func (r *relation) scopeFor(parent *scope) *scope {
	return &scope{parent: parent, bindings: r.bindings}
}

// conjunct is one AND-factor of a WHERE clause with its analysis.
type conjunct struct {
	expr         sqlast.Expr
	refs         map[string]bool // local binding names referenced
	hasSub       bool
	used         bool
	fromOrFactor bool // extracted from an OR; implied, never a residual
}

// ---------------------------------------------------------------- runQuery

// runQuery executes one SELECT level. The default executor is the pull-
// based operator tree (operator.go); the materializing executor below is
// retained behind DB.SetStreamExec(false) as the differential-testing
// reference.
func (ex *exec) runQuery(sel *sqlast.Select, parent *scope) (*Result, error) {
	if ex.db.streamOff {
		return ex.runQueryMaterialized(sel, parent)
	}
	return ex.runQueryStream(sel, parent)
}

// runQueryMaterialized is the classic materialize-everything executor:
// FROM/WHERE builds a full intermediate relation, projection and grouping
// build the full result, then DISTINCT/ORDER BY/LIMIT post-process it.
func (ex *exec) runQueryMaterialized(sel *sqlast.Select, parent *scope) (*Result, error) {
	rel, err := ex.buildFromWhere(sel, parent)
	if err != nil {
		return nil, err
	}

	a := ex.selectAnalysis(sel)
	aliases := a.aliases

	var res *execResult
	if a.grouped {
		res, err = ex.projectGrouped(sel, rel, parent, aliases)
	} else {
		res, err = ex.projectRows(sel, rel, parent, aliases)
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		res.dedupe()
	}
	res.sortAndTrim(ex, sel.Limit)
	return res.finish(), nil
}

// execResult carries rows with their sort keys until ordering is applied.
// Sort keys live in precomputed key columns (keyCols[k][i] is ORDER BY key k
// of Rows[i]) rather than per-row key slices: one allocation per key instead
// of one per row, and the sort comparator indexes flat columns.
type execResult struct {
	Cols    []string
	Rows    [][]sqltypes.Value
	keyCols [][]sqltypes.Value
	desc    []bool
}

func (r *execResult) dedupe() {
	seen := make(map[string]bool, len(r.Rows))
	w := 0
	var buf []byte
	for i, row := range r.Rows {
		buf = buf[:0]
		for _, v := range row {
			buf = sqltypes.AppendKey(buf, v)
		}
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		r.Rows[w] = row
		for k := range r.keyCols {
			r.keyCols[k][w] = r.keyCols[k][i]
		}
		w++
	}
	r.Rows = r.Rows[:w]
	for k := range r.keyCols {
		r.keyCols[k] = r.keyCols[k][:w]
	}
}

func (r *execResult) sortAndTrim(ex *exec, limit int64) {
	if len(r.desc) > 0 && len(r.Rows) > 1 {
		idx := make([]int32, len(r.Rows))
		for i := range idx {
			idx[i] = int32(i)
		}
		keys, desc := r.keyCols, r.desc
		less := func(a, b int32) bool {
			for k := range desc {
				c := compareNullsFirst(keys[k][a], keys[k][b])
				if desc[k] {
					c = -c
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		}
		// Parallel sorted runs merge into the same order a global stable
		// sort produces (earlier run wins ties).
		if ex != nil && ex.par > 1 && ex.depth == 0 && len(idx) >= 2*morselLen() {
			parallelSortIdx(ex.par, idx, less)
		} else {
			stableSortIdx(idx, less)
		}
		rows := make([][]sqltypes.Value, len(idx))
		for i, j := range idx {
			rows[i] = r.Rows[j]
		}
		r.Rows = rows
	}
	if limit >= 0 && int64(len(r.Rows)) > limit {
		r.Rows = r.Rows[:limit]
	}
}

// appendKeys evaluates the ORDER BY keys of one output row into the key
// columns; expression keys are interpreted against sc, whose current row (or
// group context) the caller has set.
func (r *execResult) appendKeys(ex *exec, plans []orderPlan, out []sqltypes.Value, sc *scope) error {
	for k := range plans {
		p := &plans[k]
		var v sqltypes.Value
		var err error
		if p.outCol >= 0 {
			v = out[p.outCol]
		} else {
			v, err = ex.eval(p.expr, sc)
		}
		if err != nil {
			return err
		}
		r.keyCols[k] = append(r.keyCols[k], v)
	}
	return nil
}

func (r *execResult) finish() *Result {
	return &Result{Cols: r.Cols, Rows: r.Rows}
}

// compareNullsFirst orders NULL before any value, mixed kinds by kind.
func compareNullsFirst(a, b sqltypes.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	if c, ok := sqltypes.Compare(a, b); ok {
		return c
	}
	// incomparable kinds: order by kind id for determinism
	switch {
	case a.K < b.K:
		return -1
	case a.K > b.K:
		return 1
	}
	return 0
}

// selectAliases maps lower-case output aliases to their expressions.
func selectAliases(sel *sqlast.Select) map[string]sqlast.Expr {
	m := make(map[string]sqlast.Expr)
	for _, it := range sel.Items {
		if !it.Star && it.Alias != "" {
			m[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	return m
}

// substituteAlias replaces an unqualified column reference that does not
// resolve in the relation but matches an output alias with the aliased
// expression (per the SQL rule the paper invokes for GROUP BY, §3.1).
func substituteAlias(e sqlast.Expr, sc *scope, aliases map[string]sqlast.Expr) sqlast.Expr {
	cr, ok := e.(*sqlast.ColumnRef)
	if !ok || cr.Table != "" {
		return e
	}
	if _, _, err := sc.lookup("", cr.Name); err == nil {
		return e // resolves as a real column; prefer it
	}
	if sub, ok := aliases[strings.ToLower(cr.Name)]; ok {
		return sqlast.CloneExpr(sub)
	}
	return e
}

// ---------------------------------------------------------------- projection

func (ex *exec) outputShape(sel *sqlast.Select, rel *relation) ([]string, error) {
	var cols []string
	for _, it := range sel.Items {
		switch {
		case it.Star && it.StarTable == "":
			for _, b := range rel.bindings {
				cols = append(cols, b.cols...)
			}
		case it.Star:
			found := false
			for _, b := range rel.bindings {
				if b.name == strings.ToLower(it.StarTable) {
					cols = append(cols, b.cols...)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("engine: unknown table %s in %s.*", it.StarTable, it.StarTable)
			}
		case it.Alias != "":
			cols = append(cols, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				cols = append(cols, cr.Name)
			} else {
				cols = append(cols, it.Expr.String())
			}
		}
	}
	return cols, nil
}

// orderPlan decides, per ORDER BY item, whether to reuse an output column
// or evaluate an expression in the row/group context. In the ungrouped
// batched path the expression is vectorized against the source relation.
type orderPlan struct {
	outCol int         // >= 0: sort by this output column
	expr   sqlast.Expr // else: evaluate this
	desc   bool
}

func buildOrderPlan(sel *sqlast.Select, outCols []string, sc *scope, aliases map[string]sqlast.Expr) []orderPlan {
	plans := make([]orderPlan, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		plans[i] = orderPlan{outCol: -1, desc: o.Desc}
		if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			for j, c := range outCols {
				if strings.EqualFold(c, cr.Name) {
					plans[i].outCol = j
					break
				}
			}
			if plans[i].outCol >= 0 {
				continue
			}
		}
		plans[i].expr = substituteAlias(sqlast.CloneExpr(o.Expr), sc, aliases)
	}
	return plans
}

// projector is one SELECT item resolved against the source relation once
// per query: star items become row-slice segments, expressions are either
// vectorized (batched path) or interpreted per row.
type projector struct {
	star bool
	segs [][2]int // star: (offset, length) segments of the source row
	expr sqlast.Expr
}

// buildProjectors lowers the SELECT list; width is the output row length.
func (ex *exec) buildProjectors(sel *sqlast.Select, rel *relation) ([]projector, int) {
	projs := make([]projector, len(sel.Items))
	width := 0
	for i, it := range sel.Items {
		switch {
		case it.Star && it.StarTable == "":
			projs[i] = projector{star: true, segs: [][2]int{{0, rel.width}}}
			width += rel.width
		case it.Star:
			var segs [][2]int
			for _, b := range rel.bindings {
				if b.name == strings.ToLower(it.StarTable) {
					segs = append(segs, [2]int{b.off, len(b.cols)})
					width += len(b.cols)
				}
			}
			projs[i] = projector{star: true, segs: segs}
		default:
			projs[i] = projector{expr: it.Expr}
			width++
		}
	}
	return projs, width
}

func (ex *exec) projectRows(sel *sqlast.Select, rel *relation, parent *scope, aliases map[string]sqlast.Expr) (*execResult, error) {
	sc := rel.scopeFor(parent)
	outCols, err := ex.outputShape(sel, rel)
	if err != nil {
		return nil, err
	}
	plans := buildOrderPlan(sel, outCols, sc, aliases)
	projs, width := ex.buildProjectors(sel, rel)

	res := &execResult{Cols: outCols}
	for _, p := range plans {
		res.desc = append(res.desc, p.desc)
	}
	if len(plans) > 0 {
		res.keyCols = make([][]sqltypes.Value, len(plans))
	}

	if !ex.db.noCompile {
		if err := ex.projectRowsBatched(rel, sc, projs, plans, width, res); err != nil {
			return nil, err
		}
		return res, nil
	}

	// Interpreter fallback: row-at-a-time projection.
	for ri, row := range rel.rows {
		if ri&(BatchSize-1) == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		sc.row = row
		out := make([]sqltypes.Value, 0, width)
		for i := range projs {
			p := &projs[i]
			if p.star {
				for _, seg := range p.segs {
					out = append(out, row[seg[0]:seg[0]+seg[1]]...)
				}
				continue
			}
			v, err := ex.eval(p.expr, sc)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
		if err := res.appendKeys(ex, plans, out, sc); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// projectRowsBatched is the compiled projection pipeline: SELECT items and
// ORDER BY keys are vectorized and evaluated column-wise per batch, output
// tuples are carved from one exactly-sized chunk per batch (the selection
// vector's length is known before materializing), and sort keys land
// directly in the result's key columns.
func (ex *exec) projectRowsBatched(rel *relation, sc *scope, projs []projector, plans []orderPlan, width int, res *execResult) error {
	vprojs := make([]vecExpr, len(projs))
	for i := range projs {
		if !projs[i].star {
			vprojs[i] = ex.vecCompile(projs[i].expr, rel.bindings, sc)
		}
	}
	vkeys := make([]vecExpr, len(plans))
	for k := range plans {
		if plans[k].outCol < 0 {
			vkeys[k] = ex.vecCompile(plans[k].expr, rel.bindings, sc)
		}
	}
	cols := make([][]sqltypes.Value, len(projs))
	keyBuf := make([][]sqltypes.Value, len(plans))
	src := scanOp{rows: rel.rows}
	var b Batch
	for src.next(&b) {
		if err := ex.cancelled(); err != nil {
			return err
		}
		n := len(b.rows)
		sel := b.sel
		m := ex.vs.mark()
		selBuf := ex.vs.takeSel(len(sel))
		for i, vp := range vprojs {
			if vp == nil {
				continue
			}
			cols[i] = ex.vs.takeVals(n)
			vp(&b, sel, cols[i])
			sel = b.compactSel(selBuf, sel)
		}
		for k, vk := range vkeys {
			if vk == nil {
				continue
			}
			keyBuf[k] = ex.vs.takeVals(n)
			vk(&b, sel, keyBuf[k])
			sel = b.compactSel(selBuf, sel)
		}
		if err := b.firstErr(); err != nil {
			return err
		}
		ck := newRowChunk(len(sel), width)
		for _, i := range sel {
			row := ck.alloc(width)
			pos := 0
			for j := range projs {
				p := &projs[j]
				if p.star {
					for _, seg := range p.segs {
						pos += copy(row[pos:pos+seg[1]], b.rows[i][seg[0]:seg[0]+seg[1]])
					}
					continue
				}
				row[pos] = cols[j][i]
				pos++
			}
			res.Rows = append(res.Rows, row)
			for k := range plans {
				if plans[k].outCol >= 0 {
					res.keyCols[k] = append(res.keyCols[k], row[plans[k].outCol])
				} else {
					res.keyCols[k] = append(res.keyCols[k], keyBuf[k][i])
				}
			}
		}
		ex.vs.release(m)
	}
	return nil
}

// ---------------------------------------------------------------- grouping

func (ex *exec) projectGrouped(sel *sqlast.Select, rel *relation, parent *scope, aliases map[string]sqlast.Expr) (*execResult, error) {
	sc := rel.scopeFor(parent)
	for _, it := range sel.Items {
		if it.Star {
			return nil, fmt.Errorf("engine: SELECT * is invalid in a grouped query")
		}
	}
	outCols, err := ex.outputShape(sel, rel)
	if err != nil {
		return nil, err
	}
	plans := buildOrderPlan(sel, outCols, sc, aliases)

	groupExprs := make([]sqlast.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		groupExprs[i] = substituteAlias(sqlast.CloneExpr(g), sc, aliases)
		if hasAggregate(groupExprs[i]) {
			return nil, fmt.Errorf("engine: aggregate in GROUP BY")
		}
	}

	type group struct {
		rows [][]sqltypes.Value
	}
	var order []string
	groups := make(map[string]*group)
	var buf []byte
	bucket := func(key []byte, row []sqltypes.Value) {
		k := string(key)
		gr, ok := groups[k]
		if !ok {
			gr = &group{}
			groups[k] = gr
			order = append(order, k)
		}
		gr.rows = append(gr.rows, row)
	}
	if gks := ex.vecKeys(groupExprs, rel.bindings, sc); gks != nil {
		// Batched grouping: key expressions run column-wise per batch, rows
		// are bucketed from the precomputed key columns in row order.
		src := scanOp{rows: rel.rows}
		var b Batch
		for src.next(&b) {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			m := ex.vs.mark()
			gsel := gks.compute(&b, false, nil)
			if err := b.firstErr(); err != nil {
				return nil, err
			}
			for _, i := range gsel {
				buf = encodeKeyCols(buf[:0], gks.cols, i)
				bucket(buf, b.rows[i])
			}
			ex.vs.release(m)
		}
	} else {
		for ri, row := range rel.rows {
			if ri&(BatchSize-1) == 0 {
				if err := ex.cancelled(); err != nil {
					return nil, err
				}
			}
			sc.row = row
			buf = buf[:0]
			for _, g := range groupExprs {
				v, err := ex.eval(g, sc)
				if err != nil {
					return nil, err
				}
				buf = sqltypes.AppendKey(buf, v)
			}
			bucket(buf, row)
		}
	}
	// A global aggregate (no GROUP BY) over zero rows still yields one group.
	if len(sel.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	having := sel.Having
	if having != nil {
		having = sqlast.TransformExpr(sqlast.CloneExpr(having), func(e sqlast.Expr) sqlast.Expr {
			return substituteAlias(e, sc, aliases)
		})
	}

	// Vectorize every aggregate argument once; each group's evaluation then
	// streams its member rows through the batch program.
	aggExprs := make([]sqlast.Expr, 0, len(sel.Items)+1+len(plans))
	for _, it := range sel.Items {
		aggExprs = append(aggExprs, it.Expr)
	}
	if having != nil {
		aggExprs = append(aggExprs, having)
	}
	for _, p := range plans {
		if p.expr != nil {
			aggExprs = append(aggExprs, p.expr)
		}
	}
	aggVec := ex.vecAggArgs(rel.bindings, sc, aggExprs...)
	var aggScr *aggScratch
	if aggVec != nil {
		aggScr = &aggScratch{}
	}

	res := &execResult{Cols: outCols}
	for _, p := range plans {
		res.desc = append(res.desc, p.desc)
	}
	if len(plans) > 0 {
		res.keyCols = make([][]sqltypes.Value, len(plans))
	}
	for _, k := range order {
		gr := groups[k]
		if len(gr.rows) > 0 {
			sc.row = gr.rows[0]
		} else {
			sc.row = nil
		}
		sc.group = &groupCtx{rows: gr.rows, aggVec: aggVec, scr: aggScr}
		if having != nil {
			hv, err := ex.eval(having, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(hv); !truth {
				sc.group = nil
				continue
			}
		}
		out := make([]sqltypes.Value, 0, len(sel.Items))
		for _, it := range sel.Items {
			v, err := ex.eval(it.Expr, sc)
			if err != nil {
				sc.group = nil
				return nil, err
			}
			out = append(out, v)
		}
		res.Rows = append(res.Rows, out)
		if err := res.appendKeys(ex, plans, out, sc); err != nil {
			sc.group = nil
			return nil, err
		}
		sc.group = nil
	}
	return res, nil
}

// ---------------------------------------------------------------- FROM/WHERE

func (ex *exec) buildFromWhere(sel *sqlast.Select, parent *scope) (*relation, error) {
	if len(sel.From) == 0 {
		rel := &relation{rows: [][]sqltypes.Value{{}}}
		if sel.Where != nil {
			sc := rel.scopeFor(parent)
			sc.row = rel.rows[0]
			v, err := ex.eval(sel.Where, sc)
			if err != nil {
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(v); !truth {
				rel.rows = nil
			}
		}
		return rel, nil
	}

	rels := make([]*relation, len(sel.From))
	for i, te := range sel.From {
		r, err := ex.buildTableExpr(te, parent)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	// Duplicate binding names are ambiguous.
	seen := make(map[string]bool)
	for _, r := range rels {
		for _, b := range r.bindings {
			if seen[b.name] {
				return nil, fmt.Errorf("engine: duplicate table alias %s", b.name)
			}
			seen[b.name] = true
		}
	}

	// colOwner: unqualified column name -> binding names that define it.
	colOwner := make(map[string][]string)
	for _, r := range rels {
		for _, b := range r.bindings {
			//mtlint:ignore detmap one append per (column, binding); the binding slice order fixes each per-column list
			for c := range b.colIdx {
				colOwner[c] = append(colOwner[c], b.name)
			}
		}
	}
	local := func(name string) bool { return seen[strings.ToLower(name)] }

	a := ex.selectAnalysis(sel)
	analyzed := make([]*conjunct, len(a.conjs))
	for i, c := range a.conjs {
		analyzed[i] = analyzeConjunct(c, local, colOwner)
		analyzed[i].fromOrFactor = i >= a.nPlain
	}

	// Constant conjuncts (no local refs, no subqueries) gate the whole FROM.
	for _, c := range analyzed {
		if len(c.refs) == 0 && !c.hasSub {
			sc := &scope{parent: parent}
			v, err := ex.eval(c.expr, sc)
			if err != nil {
				return nil, err
			}
			c.used = true
			if truth, _ := sqltypes.Truthy(v); !truth {
				return &relation{bindings: allBindings(rels), rows: nil, width: totalWidth(rels)}, nil
			}
		}
	}

	// Pre-filter each relation with its single-relation conjuncts.
	for i, r := range rels {
		names := r.names()
		var mine []*conjunct
		for _, c := range analyzed {
			if c.used || c.hasSub || len(c.refs) == 0 {
				continue
			}
			if subset(c.refs, names) {
				mine = append(mine, c)
			}
		}
		if len(mine) > 0 {
			fr, err := ex.filterRelation(r, mine, parent)
			if err != nil {
				return nil, err
			}
			rels[i] = fr
		}
	}

	// Greedy hash-join order: prefer relations connected by equi-conjuncts.
	cur := rels[0]
	remaining := rels[1:]
	for len(remaining) > 0 {
		pick := -1
		var pairs []equiPair
		for i, r := range remaining {
			p := equiPairsBetween(analyzed, cur, r)
			if len(p) > 0 {
				pick, pairs = i, p
				break
			}
		}
		if pick < 0 {
			// no connection: take the smallest for the cross product
			pick = 0
			for i, r := range remaining {
				if len(r.rows) < len(remaining[pick].rows) {
					pick = i
				}
			}
		}
		next := remaining[pick]
		remaining = append(remaining[:pick], remaining[pick+1:]...)
		joined, err := ex.hashJoin(cur, next, pairs, parent)
		if err != nil {
			return nil, err
		}
		for _, p := range pairs {
			p.src.used = true
		}
		cur = joined
	}

	// Residual conjuncts (multi-relation non-equi, subqueries).
	var residual []*conjunct
	for _, c := range analyzed {
		if !c.used && !c.fromOrFactor {
			residual = append(residual, c)
		}
	}
	if len(residual) > 0 {
		fr, err := ex.filterRelation(cur, residual, parent)
		if err != nil {
			return nil, err
		}
		cur = fr
	}
	return cur, nil
}

func allBindings(rels []*relation) []*binding {
	var out []*binding
	off := 0
	for _, r := range rels {
		for _, b := range r.bindings {
			nb := *b
			nb.off = off + b.off
			out = append(out, &nb)
		}
		off += r.width
	}
	return out
}

func totalWidth(rels []*relation) int {
	w := 0
	for _, r := range rels {
		w += r.width
	}
	return w
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// splitConjuncts flattens the AND tree of e.
func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sqlast.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sqlast.Expr{e}
}

// factorCommonOr extracts conjuncts common to every branch of a top-level
// OR (textual equality), enabling hash joins for queries like TPC-H Q19:
// (A AND B) OR (A AND C) implies A. The OR itself remains as a filter, so
// the extraction is purely an enabling transformation.
func factorCommonOr(e sqlast.Expr) []sqlast.Expr {
	var out []sqlast.Expr
	for _, c := range splitConjuncts(e) {
		b, ok := c.(*sqlast.BinaryExpr)
		if !ok || b.Op != "OR" {
			continue
		}
		branches := splitDisjuncts(b)
		if len(branches) < 2 {
			continue
		}
		common := make(map[string]sqlast.Expr)
		for _, cj := range splitConjuncts(branches[0]) {
			common[cj.String()] = cj
		}
		for _, br := range branches[1:] {
			here := make(map[string]bool)
			for _, cj := range splitConjuncts(br) {
				here[cj.String()] = true
			}
			for k := range common {
				if !here[k] {
					delete(common, k)
				}
			}
		}
		keys := make([]string, 0, len(common))
		//mtlint:ignore detmap keys are sorted below before the conjuncts are emitted
		for k := range common {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, sqlast.CloneExpr(common[k]))
		}
	}
	return out
}

func splitDisjuncts(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.BinaryExpr); ok && b.Op == "OR" {
		return append(splitDisjuncts(b.L), splitDisjuncts(b.R)...)
	}
	return []sqlast.Expr{e}
}

func analyzeConjunct(e sqlast.Expr, local func(string) bool, colOwner map[string][]string) *conjunct {
	c := &conjunct{expr: e, refs: make(map[string]bool)}
	c.hasSub = len(sqlast.SubqueriesOf(e)) > 0
	addRefs(e, local, colOwner, c.refs)
	return c
}

func addRefs(e sqlast.Expr, local func(string) bool, colOwner map[string][]string, refs map[string]bool) {
	for _, cr := range sqlast.ColumnRefsOf(e) {
		if cr.Table != "" {
			if local(cr.Table) {
				refs[strings.ToLower(cr.Table)] = true
			}
			continue
		}
		for _, owner := range colOwner[strings.ToLower(cr.Name)] {
			refs[owner] = true
		}
	}
}

// filterRelation applies conjuncts to a relation. For an unfiltered base
// table, equality conjuncts whose other side is constant w.r.t. this query
// level (a literal, parameter, or outer/correlated reference) are served by
// a lazily built hash index instead of a scan — the engine's stand-in for
// the B-tree lookups PostgreSQL would use for correlated subqueries and the
// conversion-UDF meta-table lookups.
func (ex *exec) filterRelation(r *relation, conjs []*conjunct, parent *scope) (*relation, error) {
	rows := r.rows
	rest := conjs
	if r.base != nil && len(r.bindings) == 1 {
		var probeCols []string
		var probeExprs []sqlast.Expr
		rest = rest[:0:0]
		for _, c := range conjs {
			if col, val, ok := probeForm(c.expr, r); ok {
				probeCols = append(probeCols, col)
				probeExprs = append(probeExprs, val)
			} else {
				rest = append(rest, c)
			}
		}
		if len(probeCols) > 0 {
			idx, err := ex.tableIndex(r.base, probeCols)
			if err != nil {
				return nil, err
			}
			vals := make([]sqltypes.Value, len(probeExprs))
			psc := &scope{parent: parent}
			for i, e := range probeExprs {
				v, err := ex.eval(e, psc)
				if err != nil {
					return nil, err
				}
				vals[i] = v
			}
			ids := idx.probe(vals)
			rows = make([][]sqltypes.Value, len(ids))
			for i, id := range ids {
				rows[i] = r.rows[id]
			}
		} else {
			rest = conjs
		}
	}

	out := &relation{bindings: r.bindings, width: r.width}
	for _, c := range conjs {
		c.used = true
	}
	if len(rest) == 0 {
		out.rows = rows
		return out, nil
	}
	sc := r.scopeFor(parent)
	f := &filterOp{src: &scanOp{rows: rows}, ex: ex, sc: sc}
	if !ex.db.noCompile {
		f.progs = make([]vecExpr, len(rest))
		for i, c := range rest {
			f.progs[i] = ex.vecCompile(c.expr, r.bindings, sc)
		}
	} else {
		f.exprs = make([]sqlast.Expr, len(rest))
		for i, c := range rest {
			f.exprs[i] = c.expr
		}
	}
	var b Batch
	for f.next(&b) {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		for _, i := range b.sel {
			out.rows = append(out.rows, b.rows[i])
		}
	}
	if f.failed != nil {
		return nil, f.failed
	}
	return out, nil
}

// probeForm recognizes `col = expr` (either side) where col belongs to the
// relation and expr is constant w.r.t. the relation (no local references,
// no subqueries). It returns the column name and the value expression.
func probeForm(e sqlast.Expr, r *relation) (string, sqlast.Expr, bool) {
	be, ok := e.(*sqlast.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", nil, false
	}
	try := func(colSide, valSide sqlast.Expr) (string, sqlast.Expr, bool) {
		cr, ok := colSide.(*sqlast.ColumnRef)
		if !ok || !relationHasRef(r, cr) {
			return "", nil, false
		}
		if len(sqlast.SubqueriesOf(valSide)) > 0 {
			return "", nil, false
		}
		for _, ref := range sqlast.ColumnRefsOf(valSide) {
			if relationHasRef(r, ref) {
				return "", nil, false
			}
		}
		return cr.Name, valSide, true
	}
	if col, val, ok := try(be.L, be.R); ok {
		return col, val, true
	}
	return try(be.R, be.L)
}

// ---------------------------------------------------------------- joins

// equiPair is one hash-join key: left expression over relation A, right
// expression over relation B.
type equiPair struct {
	left, right sqlast.Expr
	src         *conjunct
}

func equiPairsBetween(conjs []*conjunct, a, b *relation) []equiPair {
	var out []equiPair
	for _, c := range conjs {
		if c.used || c.hasSub {
			continue
		}
		be, ok := c.expr.(*sqlast.BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		lrefs := sqlast.ColumnRefsOf(be.L)
		rrefs := sqlast.ColumnRefsOf(be.R)
		if len(lrefs) == 0 || len(rrefs) == 0 {
			continue
		}
		switch {
		case resolvesOnlyIn(lrefs, a, b) && resolvesOnlyIn(rrefs, b, a):
			out = append(out, equiPair{left: be.L, right: be.R, src: c})
		case resolvesOnlyIn(lrefs, b, a) && resolvesOnlyIn(rrefs, a, b):
			out = append(out, equiPair{left: be.R, right: be.L, src: c})
		}
	}
	return out
}

// relationHasRef reports whether a column reference resolves against the
// bindings of r (by qualifier, or unqualified column ownership).
func relationHasRef(r *relation, ref *sqlast.ColumnRef) bool {
	cl := strings.ToLower(ref.Name)
	if ref.Table != "" {
		tl := strings.ToLower(ref.Table)
		for _, b := range r.bindings {
			if b.name == tl {
				_, ok := b.colIdx[cl]
				return ok
			}
		}
		return false
	}
	for _, b := range r.bindings {
		if _, ok := b.colIdx[cl]; ok {
			return true
		}
	}
	return false
}

// resolvesOnlyIn reports whether every reference resolves in relation a
// and none resolves in relation b — the unambiguous condition for using
// the expression as a hash-join key over a.
func resolvesOnlyIn(refs []*sqlast.ColumnRef, a, b *relation) bool {
	if len(refs) == 0 {
		return false
	}
	for _, r := range refs {
		if !relationHasRef(a, r) || relationHasRef(b, r) {
			return false
		}
	}
	return true
}

// pairExprs extracts one side of an equi pair set.
func pairExprs(pairs []equiPair, right bool) []sqlast.Expr {
	exprs := make([]sqlast.Expr, len(pairs))
	for i, p := range pairs {
		if right {
			exprs[i] = p.right
		} else {
			exprs[i] = p.left
		}
	}
	return exprs
}

// hashJoin joins L and R on the equi pairs (inner). With no pairs it
// degrades to the cross product. In compiled mode the probe side streams in
// batches: key expressions fill per-batch key columns (NULL-key rows drop
// out of the selection vector), keys are encoded from the columns, hash
// buckets are counted first, and each batch's output tuples come from one
// exactly-sized chunk.
func (ex *exec) hashJoin(l, r *relation, pairs []equiPair, parent *scope) (*relation, error) {
	out := &relation{width: l.width + r.width}
	out.bindings = append(out.bindings, l.bindings...)
	for _, b := range r.bindings {
		nb := *b
		nb.off += l.width
		out.bindings = append(out.bindings, &nb)
	}
	if len(pairs) == 0 {
		ck := newRowChunk(len(l.rows)*len(r.rows), out.width)
		for _, lr := range l.rows {
			for _, rr := range r.rows {
				out.rows = append(out.rows, ck.concat(lr, rr))
			}
		}
		return out, nil
	}
	lsc := l.scopeFor(parent)
	lks := ex.vecKeys(pairExprs(pairs, false), l.bindings, lsc)
	// Index fast path: when the build side is an unfiltered base table and
	// every right key is a plain column, probe the table's persistent lazy
	// index instead of building a transient hash table. This makes the
	// meta-table lookups inside conversion-UDF bodies O(1) per call
	// regardless of the number of tenants.
	if r.base != nil && len(r.bindings) == 1 {
		cols := make([]string, 0, len(pairs))
		simple := true
		for _, p := range pairs {
			cr, ok := p.right.(*sqlast.ColumnRef)
			if !ok || !relationHasRef(r, cr) {
				simple = false
				break
			}
			cols = append(cols, cr.Name)
		}
		if simple {
			idx, err := ex.tableIndex(r.base, cols)
			if err != nil {
				return nil, err
			}
			var buf []byte
			if lks != nil {
				src := scanOp{rows: l.rows}
				var b Batch
				var buckets [][]int
				for src.next(&b) {
					if err := ex.cancelled(); err != nil {
						return nil, err
					}
					m := ex.vs.mark()
					sel := lks.compute(&b, true, nil)
					if err := b.firstErr(); err != nil {
						return nil, err
					}
					if cap(buckets) < len(b.rows) {
						buckets = make([][]int, len(b.rows))
					}
					total := 0
					for _, i := range sel {
						var ids []int
						ids, buf = idx.probeKeyCols(buf, lks.cols, i)
						buckets[i] = ids
						total += len(ids)
					}
					ck := newRowChunk(total, out.width)
					for _, i := range sel {
						for _, id := range buckets[i] {
							out.rows = append(out.rows, ck.concat(b.rows[i], r.rows[id]))
						}
					}
					ex.vs.release(m)
				}
				return out, nil
			}
			vals := make([]sqltypes.Value, len(pairs))
			for _, lr := range l.rows {
				null := false
				for i, p := range pairs {
					lsc.row = lr
					v, err := ex.eval(p.left, lsc)
					if err != nil {
						return nil, err
					}
					if v.IsNull() {
						null = true
						break
					}
					vals[i] = v
				}
				if null {
					continue
				}
				var ids []int
				ids, buf = idx.probeBuf(buf, vals)
				for _, id := range ids {
					out.rows = append(out.rows, concatRows(lr, r.rows[id], out.width))
				}
			}
			return out, nil
		}
	}
	// build on R
	build, err := ex.buildJoinHash(r, pairs, parent)
	if err != nil {
		return nil, err
	}
	var buf []byte
	if lks != nil {
		src := scanOp{rows: l.rows}
		var b Batch
		var buckets [][]int
		for src.next(&b) {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			m := ex.vs.mark()
			sel := lks.compute(&b, true, nil)
			if err := b.firstErr(); err != nil {
				return nil, err
			}
			if cap(buckets) < len(b.rows) {
				buckets = make([][]int, len(b.rows))
			}
			total := 0
			for _, i := range sel {
				buf = encodeKeyCols(buf[:0], lks.cols, i)
				buckets[i] = build[string(buf)]
				total += len(buckets[i])
			}
			ck := newRowChunk(total, out.width)
			for _, i := range sel {
				for _, ri := range buckets[i] {
					out.rows = append(out.rows, ck.concat(b.rows[i], r.rows[ri]))
				}
			}
			ex.vs.release(m)
		}
		return out, nil
	}
	for _, lr := range l.rows {
		buf = buf[:0]
		null := false
		for _, p := range pairs {
			lsc.row = lr
			v, err := ex.eval(p.left, lsc)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, v)
		}
		if null {
			continue
		}
		for _, ri := range build[string(buf)] {
			out.rows = append(out.rows, concatRows(lr, r.rows[ri], out.width))
		}
	}
	return out, nil
}

// buildJoinHash hashes relation r on the right-side key expressions;
// NULL keys never participate in an equi join. Compiled mode computes the
// keys column-wise per batch and encodes from the key columns.
func (ex *exec) buildJoinHash(r *relation, pairs []equiPair, parent *scope) (map[string][]int, error) {
	rsc := r.scopeFor(parent)
	build := make(map[string][]int, len(r.rows))
	var buf []byte
	// Morsel-parallel build: workers encode the key column for disjoint row
	// ranges, then the map inserts run serially in row order — bucket
	// contents and order match the serial build exactly.
	if !ex.db.noCompile && ex.par > 1 && ex.depth == 0 && len(r.rows) >= 2*morselLen() {
		keys, err := ex.parallelJoinKeys(r, pairs, parent)
		if err != nil {
			return nil, err
		}
		for i, k := range keys {
			if k == nil {
				continue // NULL key: never participates in an equi join
			}
			build[string(k)] = append(build[string(k)], i)
		}
		return build, nil
	}
	if rks := ex.vecKeys(pairExprs(pairs, true), r.bindings, rsc); rks != nil {
		src := scanOp{rows: r.rows}
		var b Batch
		for src.next(&b) {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			m := ex.vs.mark()
			sel := rks.compute(&b, true, nil)
			if err := b.firstErr(); err != nil {
				return nil, err
			}
			for _, i := range sel {
				buf = encodeKeyCols(buf[:0], rks.cols, i)
				build[string(buf)] = append(build[string(buf)], b.base+int(i))
			}
			ex.vs.release(m)
		}
		return build, nil
	}
	for i, row := range r.rows {
		buf = buf[:0]
		null := false
		for _, p := range pairs {
			rsc.row = row
			v, err := ex.eval(p.right, rsc)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, v)
		}
		if null {
			continue
		}
		build[string(buf)] = append(build[string(buf)], i)
	}
	return build, nil
}

// ---------------------------------------------------------------- FROM items

func (ex *exec) buildTableExpr(te sqlast.TableExpr, parent *scope) (*relation, error) {
	switch t := te.(type) {
	case *sqlast.TableName:
		return ex.buildTableName(t, parent)
	case *sqlast.DerivedTable:
		res, err := ex.runQuery(t.Sub, &scope{parent: parent})
		if err != nil {
			return nil, err
		}
		b := newBinding(t.Alias, res.Cols)
		return &relation{bindings: []*binding{b}, rows: res.Rows, width: len(res.Cols)}, nil
	case *sqlast.JoinExpr:
		return ex.buildJoin(t, parent)
	}
	return nil, fmt.Errorf("engine: unsupported FROM item %T", te)
}

func (ex *exec) buildTableName(t *sqlast.TableName, parent *scope) (*relation, error) {
	key := strings.ToLower(t.Name)
	if view, ok := ex.cat.views[key]; ok {
		sub := sqlast.CloneSelect(view)
		res, err := ex.runQuery(sub, &scope{parent: parent})
		if err != nil {
			return nil, fmt.Errorf("engine: in view %s: %w", t.Name, err)
		}
		b := newBinding(t.Binding(), res.Cols)
		return &relation{bindings: []*binding{b}, rows: res.Rows, width: len(res.Cols)}, nil
	}
	tab := ex.cat.tables[key]
	if tab == nil {
		return nil, fmt.Errorf("engine: no such table %s", t.Name)
	}
	b := newBinding(t.Binding(), tab.ColNames())
	return &relation{bindings: []*binding{b}, rows: ex.heap(tab), width: len(tab.Cols), base: tab}, nil
}

func (ex *exec) buildJoin(j *sqlast.JoinExpr, parent *scope) (*relation, error) {
	l, err := ex.buildTableExpr(j.L, parent)
	if err != nil {
		return nil, err
	}
	r, err := ex.buildTableExpr(j.R, parent)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case sqlast.JoinCross:
		return ex.hashJoin(l, r, nil, parent)
	case sqlast.JoinInner:
		conjs := splitConjuncts(j.On)
		analyzed := make([]*conjunct, len(conjs))
		names := func(n string) bool {
			ln := strings.ToLower(n)
			return l.names()[ln] || r.names()[ln]
		}
		colOwner := ownerMap(l, r)
		for i, c := range conjs {
			analyzed[i] = analyzeConjunct(c, names, colOwner)
		}
		pairs := equiPairsBetween(analyzed, l, r)
		joined, err := ex.hashJoin(l, r, pairs, parent)
		if err != nil {
			return nil, err
		}
		var residual []*conjunct
		for _, c := range analyzed {
			used := false
			for _, p := range pairs {
				if p.src == c {
					used = true
					break
				}
			}
			if !used {
				residual = append(residual, c)
			}
		}
		if len(residual) == 0 {
			return joined, nil
		}
		return ex.filterRelation(joined, residual, parent)
	case sqlast.JoinLeftOuter:
		return ex.leftOuterJoin(l, r, j.On, parent)
	}
	return nil, fmt.Errorf("engine: unsupported join kind %v", j.Kind)
}

func ownerMap(rels ...*relation) map[string][]string {
	m := make(map[string][]string)
	for _, r := range rels {
		for _, b := range r.bindings {
			//mtlint:ignore detmap one append per (column, binding); the binding slice order fixes each per-column list
			for c := range b.colIdx {
				m[c] = append(m[c], b.name)
			}
		}
	}
	return m
}

// leftOuterJoin preserves every left row; the full ON condition decides
// matches, with an equi fast path for the probe set.
func (ex *exec) leftOuterJoin(l, r *relation, on sqlast.Expr, parent *scope) (*relation, error) {
	out := &relation{width: l.width + r.width}
	out.bindings = append(out.bindings, l.bindings...)
	for _, b := range r.bindings {
		nb := *b
		nb.off += l.width
		out.bindings = append(out.bindings, &nb)
	}

	conjs := splitConjuncts(on)
	names := func(n string) bool {
		ln := strings.ToLower(n)
		return l.names()[ln] || r.names()[ln]
	}
	colOwner := ownerMap(l, r)
	analyzed := make([]*conjunct, len(conjs))
	for i, c := range conjs {
		analyzed[i] = analyzeConjunct(c, names, colOwner)
	}
	pairs := equiPairsBetween(analyzed, l, r)
	var residual []*conjunct
	for _, c := range analyzed {
		used := false
		for _, p := range pairs {
			if p.src == c {
				used = true
				break
			}
		}
		if !used {
			residual = append(residual, c)
		}
	}

	// Build hash on R over the equi keys (or a single bucket when none).
	build, err := ex.buildJoinHash(r, pairs, parent)
	if err != nil {
		return nil, err
	}

	nulls := make([]sqltypes.Value, r.width)
	osc := out.scopeFor(parent)
	lsc := l.scopeFor(parent)
	resFns := make([]compiledExpr, len(residual))
	for i, c := range residual {
		resFns[i] = ex.compile(c.expr, out.bindings, osc)
	}
	// matchResidual applies the non-equi ON conjuncts to one candidate.
	matchResidual := func(combined []sqltypes.Value) (bool, error) {
		for i, c := range residual {
			var v sqltypes.Value
			var err error
			if resFns[i] != nil {
				v, err = resFns[i](ex, combined)
			} else {
				osc.row = combined
				v, err = ex.eval(c.expr, osc)
			}
			if err != nil {
				return false, err
			}
			if truth, _ := sqltypes.Truthy(v); !truth {
				return false, nil
			}
		}
		return true, nil
	}
	var buf []byte
	if lks := ex.vecKeys(pairExprs(pairs, false), l.bindings, lsc); lks != nil {
		// Batched probe: after key-column computation every row of the batch
		// is either in the selection vector (valid keys) or flagged in the
		// null mask (NULL key: unmatched by definition, emitted null-extended).
		var nullMask []bool
		var buckets [][]int
		src := scanOp{rows: l.rows}
		var b Batch
		for src.next(&b) {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			n := len(b.rows)
			if cap(nullMask) < n {
				nullMask = make([]bool, n)
				buckets = make([][]int, n)
			}
			nullMask = nullMask[:n]
			buckets = buckets[:n]
			for i := range nullMask {
				nullMask[i] = false
			}
			m := ex.vs.mark()
			lks.compute(&b, true, nullMask)
			if err := b.firstErr(); err != nil {
				return nil, err
			}
			// Size the chunk before materializing: every candidate pair plus
			// at most one null-extended tuple per left row.
			total := n
			for i := 0; i < n; i++ {
				buckets[i] = nil
				if !nullMask[i] {
					buf = encodeKeyCols(buf[:0], lks.cols, int32(i))
					buckets[i] = build[string(buf)]
					total += len(buckets[i])
				}
			}
			ck := newRowChunk(total, out.width)
			for i := 0; i < n; i++ {
				matched := false
				for _, ri := range buckets[i] {
					combined := ck.concat(b.rows[i], r.rows[ri])
					ok, err := matchResidual(combined)
					if err != nil {
						return nil, err
					}
					if ok {
						matched = true
						out.rows = append(out.rows, combined)
					}
				}
				if !matched {
					out.rows = append(out.rows, ck.concat(b.rows[i], nulls))
				}
			}
			ex.vs.release(m)
		}
		return out, nil
	}
	for _, lr := range l.rows {
		buf = buf[:0]
		null := false
		for _, p := range pairs {
			lsc.row = lr
			v, err := ex.eval(p.left, lsc)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				null = true
				break
			}
			buf = sqltypes.AppendKey(buf, v)
		}
		matched := false
		if !null {
			for _, ri := range build[string(buf)] {
				combined := concatRows(lr, r.rows[ri], out.width)
				ok, err := matchResidual(combined)
				if err != nil {
					return nil, err
				}
				if ok {
					matched = true
					out.rows = append(out.rows, combined)
				}
			}
		}
		if !matched {
			out.rows = append(out.rows, concatRows(lr, nulls, out.width))
		}
	}
	return out, nil
}
