// Package engine is the substrate DBMS that MTBase runs on: an embedded,
// in-memory SQL engine with a pull-based batch operator executor, hash
// joins, grouped aggregation, correlated subqueries, views and SQL-defined
// scalar functions (UDFs). It stands in for PostgreSQL / "System C" in the
// paper's evaluation; the Mode knob reproduces the one behavioural
// difference the paper leans on — whether results of IMMUTABLE UDFs are
// cached.
//
// Every query shape executes as a tree of physical operators (operator.go)
// exchanging 1024-row batches: scans, filters and join probes stream, and
// only the pipeline breakers — hash-join builds, group-by buckets, sort
// buffers — materialize state, so memory is bounded by batch size plus
// breaker state rather than intermediate result size. Result and the
// ExecPlan* entry points drain the tree eagerly; the Rows cursor pulls it
// batch-at-a-time.
//
// Execution is compile-then-execute: before iterating rows, every per-row
// expression site (WHERE conjuncts, projections, join/group-by/sort keys,
// aggregate arguments, DML predicates) is lowered by compile.go into a
// closure with column references resolved to flat row offsets; constructs
// outside the compiled subset fall back to the tree-walking interpreter in
// eval.go per expression. Simple UDF bodies — the paper's conversion
// functions — are additionally planned once per statement plan: the
// tenant-keyed FROM/WHERE relation is cached per distinct parameter tuple
// and the projection compiled against it, so a conversion call costs a hash
// probe plus a closure invocation. Statement plans themselves are cached on
// the DB keyed by SQL text and invalidated by referenced-table versions and
// DDL (plan.go), so repeated texts skip parsing and lowering entirely.
// DB.SetCompileExprs(false) forces the interpreter everywhere; the
// differential property test relies on both paths producing identical
// results.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// Mode selects the backing-DBMS behaviour being emulated.
type Mode uint8

// Engine modes.
const (
	// ModePostgres caches results of IMMUTABLE UDFs per (function, args)
	// during a statement, like PostgreSQL does for the paper's conversion
	// functions (§6.2).
	ModePostgres Mode = iota
	// ModeSystemC never caches UDF results: the commercial system of
	// Appendix C "does not allow UDFs to be defined as deterministic and
	// hence cannot cache conversion results".
	ModeSystemC
)

func (m Mode) String() string {
	if m == ModeSystemC {
		return "system-c"
	}
	return "postgres"
}

// Column describes one table column.
type Column struct {
	Name    string
	Type    sqltypes.Kind
	NotNull bool
}

// tableData is one immutable snapshot of a table: the row heap plus the
// hash indexes built over exactly that heap. Writers never mutate a
// published tableData — they build a new one and swap the table's data
// pointer — so any reader holding a tableData sees a frozen, internally
// consistent heap/index pair for as long as it keeps the pointer.
type tableData struct {
	rows [][]sqltypes.Value

	// Indexes are built lazily per snapshot; idxMu only serializes the
	// build so concurrent readers of one snapshot construct each index
	// once. The heap itself needs no locking — it is immutable.
	idxMu   sync.Mutex
	indexes map[string]*hashIndex // keyed by lower-case comma-joined cols
}

// Table is an in-memory table whose row heap lives behind an atomically
// swapped snapshot pointer (copy-on-write): readers pin the current
// tableData and scan it without holding DB.mu, writers build a replacement
// under DB.mu and publish it at statement end.
type Table struct {
	Name    string
	Cols    []Column
	PK      []string // primary key column names (may be empty)
	colIdx  map[string]int
	data    atomic.Pointer[tableData]
	version uint64 // read/written atomically; bumped on every publish
	db      *DB    // owning DB, so AppendRow/BulkLoad can self-serialize

	Constraints []sqlast.Constraint // FK / CHECK retained for validation
}

// newTableData wraps rows as a fresh snapshot with no indexes built yet.
func newTableData(rows [][]sqltypes.Value) *tableData {
	return &tableData{rows: rows}
}

// Heap returns the table's current immutable row snapshot. The returned
// slice must not be modified; it stays valid (and frozen) across
// concurrent writes, which publish new snapshots instead of mutating it.
func (t *Table) Heap() [][]sqltypes.Value { return t.data.Load().rows }

// RowCount returns the number of rows in the current snapshot.
func (t *Table) RowCount() int { return len(t.Heap()) }

// ColIndex returns the ordinal of a column (case-insensitive), or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ColNames returns the column names in order.
func (t *Table) ColNames() []string {
	names := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		names[i] = c.Name
	}
	return names
}

// publish installs rows as the table's new current snapshot and bumps the
// version (invalidating cached plans that depend on the table). Callers
// must hold DB.mu — writers are serialized; only readers run lock-free.
func (t *Table) publish(rows [][]sqltypes.Value) {
	t.data.Store(newTableData(rows))
	atomic.AddUint64(&t.version, 1)
}

// Function is a SQL-bodied scalar function.
type Function struct {
	Name      string
	NumParams int
	Body      *sqlast.Select
	Immutable bool
}

// Result is the outcome of a statement.
type Result struct {
	Cols     []string
	Rows     [][]sqltypes.Value
	Affected int
}

// catalog is one immutable snapshot of the schema: tables, views and
// functions. DDL clones the maps under DB.mu and swaps the DB's catalog
// pointer, so an executing statement keeps resolving names against the
// catalog it captured at creation even while DDL runs concurrently.
type catalog struct {
	tables map[string]*Table
	views  map[string]*sqlast.Select
	funcs  map[string]*Function
}

func (c *catalog) table(name string) *Table         { return c.tables[strings.ToLower(name)] }
func (c *catalog) function(name string) *Function   { return c.funcs[strings.ToLower(name)] }
func (c *catalog) view(name string) *sqlast.Select  { return c.views[strings.ToLower(name)] }

// clone returns a shallow copy of the catalog with fresh maps, the
// starting point for every DDL mutation.
func (c *catalog) clone() *catalog {
	nc := &catalog{
		tables: make(map[string]*Table, len(c.tables)+1),
		views:  make(map[string]*sqlast.Select, len(c.views)+1),
		funcs:  make(map[string]*Function, len(c.funcs)+1),
	}
	for k, v := range c.tables {
		nc.tables[k] = v
	}
	for k, v := range c.views {
		nc.views[k] = v
	}
	for k, v := range c.funcs {
		nc.funcs[k] = v
	}
	return nc
}

// DB is an embedded SQL database.
type DB struct {
	mu   sync.Mutex
	mode Mode
	cat  atomic.Pointer[catalog] // current schema snapshot; DDL swaps it

	// par is the degree of intra-query parallelism (SetParallelism);
	// 0 means GOMAXPROCS. Read under mu at exec creation.
	par int

	// noCompile forces the tree-walking interpreter for every expression.
	// The differential property test uses it to prove the compiled and
	// interpreted paths agree.
	noCompile bool

	// streamOff forces the materializing executor (exec.go) instead of the
	// pull-based operator tree (operator.go). The streaming differential
	// test uses it to prove both executors produce identical results.
	streamOff bool

	// plans is the statement plan cache (plan.go): SQL text + compile mode
	// → immutable Plan, validated against dependency versions per lookup.
	plans       map[planKey]*Plan
	planClock   uint64
	noPlanCache bool

	// memLimit caps the bytes one statement's pipeline breakers may retain
	// before spilling to disk (SetMemoryLimit); 0 means unlimited. spillDir
	// is where overflow files go ("" = system temp). spillfs is the
	// injectable spill filesystem hook package tests use to fail I/O
	// mid-run; nil selects the real one.
	memLimit int64
	spillDir string
	spillfs  spillFS

	// Stats accumulates counters across statements; benchmarks reset it.
	Stats Stats
}

// SetCompileExprs toggles the compiled-expression fast path (on by
// default). Turning it off forces the tree-walking interpreter; results
// must be identical either way.
func (db *DB) SetCompileExprs(on bool) { db.noCompile = !on }

// SetStreamExec toggles the pull-based operator executor (on by default).
// Turning it off forces the classic materialize-everything executor;
// results must be identical either way — the streaming differential tests
// rely on it.
func (db *DB) SetStreamExec(on bool) { db.streamOff = !on }

// SetParallelism sets the degree of intra-query parallelism for morsel
// scans, aggregate evaluation, sort runs and join builds. n <= 0 restores
// the default (GOMAXPROCS); 1 keeps the serial execution path, which the
// differential tests use as the oracle. Results are identical at every
// setting — parallel operators emit morsels in heap order and fold
// aggregates in row order, so even float sums match the serial path byte
// for byte.
func (db *DB) SetParallelism(n int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if n < 0 {
		n = 0
	}
	db.par = n
}

// parallelism resolves the effective worker count; callers hold db.mu.
func (db *DB) parallelism() int {
	if db.par > 0 {
		return db.par
	}
	return runtime.GOMAXPROCS(0)
}

// Stats counts interesting engine events.
type Stats struct {
	UDFCalls     int64 // UDF body executions (cache misses in ModePostgres)
	UDFCacheHits int64

	// Plan cache counters: hits serve a validated cached plan, misses build
	// one (cold or after invalidation), invalidations count dependency
	// version/DDL mismatches detected on lookup.
	PlanCacheHits          int64
	PlanCacheMisses        int64
	PlanCacheInvalidations int64

	// Streaming executor counters: RowsStreamed totals the rows emitted by
	// physical operators (every operator counts its own emissions, so one
	// row flowing through a scan, a join and a projection counts three
	// times), PeakBatch is the largest single batch emitted. Benchmarks
	// report them per operation to catch accidental materialization.
	RowsStreamed int64
	PeakBatch    int64

	// Spill counters (SetMemoryLimit): SpillRuns counts overflow files
	// created (sorted runs and Grace join partitions alike), SpillBytes the
	// bytes written to them, and PeakMemBytes the highest accounted
	// pipeline-breaker footprint any single statement reached. All stay
	// zero under the default unlimited budget.
	SpillRuns    int64
	SpillBytes   int64
	PeakMemBytes int64
}

// Snapshot returns an atomically read copy of the counters, safe to call
// while parallel queries are updating them. The fields stay plain int64s
// (updated via sync/atomic) so single-threaded tests and benchmarks can
// keep resetting with db.Stats = Stats{}.
func (s *Stats) Snapshot() Stats {
	return Stats{
		UDFCalls:               atomic.LoadInt64(&s.UDFCalls),
		UDFCacheHits:           atomic.LoadInt64(&s.UDFCacheHits),
		PlanCacheHits:          atomic.LoadInt64(&s.PlanCacheHits),
		PlanCacheMisses:        atomic.LoadInt64(&s.PlanCacheMisses),
		PlanCacheInvalidations: atomic.LoadInt64(&s.PlanCacheInvalidations),
		RowsStreamed:           atomic.LoadInt64(&s.RowsStreamed),
		PeakBatch:              atomic.LoadInt64(&s.PeakBatch),
		SpillRuns:              atomic.LoadInt64(&s.SpillRuns),
		SpillBytes:             atomic.LoadInt64(&s.SpillBytes),
		PeakMemBytes:           atomic.LoadInt64(&s.PeakMemBytes),
	}
}

// Open returns an empty database in the given mode.
func Open(mode Mode) *DB {
	db := &DB{mode: mode}
	db.applyEnvMemLimit()
	db.cat.Store(&catalog{
		tables: make(map[string]*Table),
		views:  make(map[string]*sqlast.Select),
		funcs:  make(map[string]*Function),
	})
	return db
}

// Mode reports the emulation mode.
func (db *DB) Mode() Mode { return db.mode }

// catalogNow returns the current schema snapshot.
func (db *DB) catalogNow() *catalog { return db.cat.Load() }

// Table returns a table by name (case-insensitive) or nil.
func (db *DB) Table(name string) *Table { return db.catalogNow().table(name) }

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	cat := db.catalogNow()
	names := make([]string, 0, len(cat.tables))
	//mtlint:ignore detmap names are sorted below before they are returned
	for _, t := range cat.tables {
		names = append(names, t.Name)
	}
	sort.Strings(names)
	return names
}

// Function returns a registered function by name (case-insensitive) or nil.
func (db *DB) Function(name string) *Function { return db.catalogNow().function(name) }

// ExecSQL parses and executes a single statement through the plan cache:
// repeated texts reuse the cached lowering as long as every referenced
// table, view and function is unchanged.
func (db *DB) ExecSQL(sql string) (*Result, error) {
	return db.ExecContext(context.Background(), sql)
}

// ExecArgs parses and executes a single statement with bind-parameter
// values for its $n / ? placeholders.
func (db *DB) ExecArgs(sql string, args ...sqltypes.Value) (*Result, error) {
	return db.ExecContext(context.Background(), sql, args...)
}

// ExecContext is ExecArgs with cancellation: ctx is polled at batch
// boundaries, so a cancelled context aborts a long scan within one batch.
func (db *DB) ExecContext(ctx context.Context, sql string, args ...sqltypes.Value) (*Result, error) {
	db.mu.Lock()
	p, err := db.planForLocked(sql)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	return db.execPlanUnlock(ctx, p, args)
}

// ExecScript executes a ;-separated script, returning the last result.
func (db *DB) ExecScript(sql string) (*Result, error) {
	stmts, err := sqlparse.ParseStatements(sql)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.Exec(s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Exec executes a parsed statement through an ephemeral (uncached) plan.
func (db *DB) Exec(stmt sqlast.Statement) (*Result, error) {
	db.mu.Lock()
	return db.execPlanUnlock(context.Background(), db.buildPlanLocked("", stmt), nil)
}

// newExecArgs builds the per-statement execution state with validated,
// hint-coerced bind values and the caller's cancellation context.
func (db *DB) newExecArgs(ctx context.Context, p *Plan, args []sqltypes.Value) (*exec, error) {
	bound, err := p.bindArgs(args)
	if err != nil {
		return nil, err
	}
	ex := db.newExec(p)
	ex.ctx = ctx
	ex.binds = bound
	return ex, nil
}

// execPlanUnlock dispatches one statement execution. It is entered with
// db.mu held and releases the lock itself: a SELECT pins its catalog and
// table snapshots while still under the lock (inside newExecArgs), then
// runs lock-free against those immutable snapshots, so scans, open cursors
// and writers overlap. Writes and DDL stay under the lock end to end and
// publish new snapshots before releasing it.
func (db *DB) execPlanUnlock(ctx context.Context, p *Plan, args []sqltypes.Value) (*Result, error) {
	if sel, ok := p.stmt.(*sqlast.Select); ok {
		if p.arityErr != nil {
			db.mu.Unlock()
			return nil, p.arityErr
		}
		ex, err := db.newExecArgs(ctx, p, args)
		db.mu.Unlock()
		if err != nil {
			return nil, err
		}
		res, err := ex.runQuery(sel, rootScope())
		// The statement is over: any spill file an errored subtree abandoned
		// before its operator Close could run is removed here.
		ex.releaseSpills()
		return res, err
	}
	defer db.mu.Unlock()
	return db.execPlanLocked(ctx, p, args)
}

// execPlanLocked dispatches one write or DDL statement under db.mu.
func (db *DB) execPlanLocked(ctx context.Context, p *Plan, args []sqltypes.Value) (*Result, error) {
	if p.arityErr != nil {
		return nil, p.arityErr
	}
	switch s := p.stmt.(type) {
	case *sqlast.Insert:
		ex, err := db.newExecArgs(ctx, p, args)
		if err != nil {
			return nil, err
		}
		return db.insert(ex, s)
	case *sqlast.Update:
		ex, err := db.newExecArgs(ctx, p, args)
		if err != nil {
			return nil, err
		}
		return db.update(ex, s)
	case *sqlast.Delete:
		ex, err := db.newExecArgs(ctx, p, args)
		if err != nil {
			return nil, err
		}
		return db.delete(ex, s)
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("engine: statement takes no bind parameters, got %d", len(args))
	}
	switch s := p.stmt.(type) {
	case *sqlast.CreateTable:
		return db.createTable(s)
	case *sqlast.CreateView:
		return db.createView(s)
	case *sqlast.CreateFunction:
		return db.createFunction(s)
	case *sqlast.DropTable:
		key := strings.ToLower(s.Name)
		cat := db.catalogNow()
		if _, ok := cat.tables[key]; !ok {
			return nil, fmt.Errorf("engine: no such table %s", s.Name)
		}
		nc := cat.clone()
		delete(nc.tables, key)
		db.cat.Store(nc)
		return &Result{}, nil
	case *sqlast.DropView:
		key := strings.ToLower(s.Name)
		cat := db.catalogNow()
		if _, ok := cat.views[key]; !ok {
			return nil, fmt.Errorf("engine: no such view %s", s.Name)
		}
		nc := cat.clone()
		delete(nc.views, key)
		db.cat.Store(nc)
		return &Result{}, nil
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", p.stmt)
}

// Query executes a SELECT through an ephemeral plan.
func (db *DB) Query(sel *sqlast.Select) (*Result, error) {
	db.mu.Lock()
	return db.execPlanUnlock(context.Background(), db.buildPlanLocked("", sel), nil)
}

// QuerySQL parses and executes a SELECT through the plan cache, returning
// the fully materialized Result. The execution runs against the table
// snapshots current when the call started, so the result is atomic with
// respect to concurrent writers without holding DB.mu for the scan.
func (db *DB) QuerySQL(sql string) (*Result, error) {
	db.mu.Lock()
	p, err := db.planForLocked(sql)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	if _, isSel := p.stmt.(*sqlast.Select); !isSel {
		db.mu.Unlock()
		// Not a query: reparse through ParseQuery for its precise error.
		if _, qerr := sqlparse.ParseQuery(sql); qerr != nil {
			return nil, qerr
		}
		return nil, fmt.Errorf("engine: not a query: %s", sql)
	}
	return db.execPlanUnlock(context.Background(), p, nil)
}

// QueryRows parses and executes a SELECT through the plan cache, returning
// a streaming cursor with the given bind-parameter values.
func (db *DB) QueryRows(sql string, args ...sqltypes.Value) (*Rows, error) {
	return db.QueryContext(context.Background(), sql, args...)
}

// QueryContext is QueryRows with cancellation, polled at batch boundaries
// by every operator in the cursor's tree — probe loops, join builds and
// group/sort drains included.
func (db *DB) QueryContext(ctx context.Context, sql string, args ...sqltypes.Value) (*Rows, error) {
	db.mu.Lock()
	p, err := db.planForLocked(sql)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	sel, isSel := p.stmt.(*sqlast.Select)
	if !isSel {
		db.mu.Unlock()
		// Not a query: reparse through ParseQuery for its precise error.
		if _, qerr := sqlparse.ParseQuery(sql); qerr != nil {
			return nil, qerr
		}
		return nil, fmt.Errorf("engine: not a query: %s", sql)
	}
	return db.queryRowsUnlock(ctx, p, sel, args)
}

// ---------------------------------------------------------------- DDL

func kindOfType(t sqlast.TypeName) (sqltypes.Kind, error) {
	switch t.Name {
	case "INTEGER", "INT", "BIGINT":
		return sqltypes.KindInt, nil
	case "DECIMAL", "NUMERIC":
		return sqltypes.KindFloat, nil
	case "VARCHAR", "CHAR", "TEXT":
		return sqltypes.KindString, nil
	case "DATE":
		return sqltypes.KindDate, nil
	case "BOOLEAN":
		return sqltypes.KindBool, nil
	}
	return sqltypes.KindNull, fmt.Errorf("engine: unsupported type %s", t.Name)
}

func (db *DB) createTable(ct *sqlast.CreateTable) (*Result, error) {
	key := strings.ToLower(ct.Name)
	cat := db.catalogNow()
	if _, exists := cat.tables[key]; exists {
		return nil, fmt.Errorf("engine: table %s already exists", ct.Name)
	}
	t := &Table{Name: ct.Name, colIdx: make(map[string]int), db: db}
	t.data.Store(newTableData(nil))
	for i, cd := range ct.Columns {
		kind, err := kindOfType(cd.Type)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", cd.Name, err)
		}
		lower := strings.ToLower(cd.Name)
		if _, dup := t.colIdx[lower]; dup {
			return nil, fmt.Errorf("engine: duplicate column %s", cd.Name)
		}
		t.Cols = append(t.Cols, Column{Name: cd.Name, Type: kind, NotNull: cd.NotNull})
		t.colIdx[lower] = i
	}
	for _, con := range ct.Constraints {
		switch con.Kind {
		case sqlast.ConstraintPrimaryKey:
			t.PK = con.Columns
		default:
			t.Constraints = append(t.Constraints, con)
		}
	}
	nc := cat.clone()
	nc.tables[key] = t
	db.cat.Store(nc)
	return &Result{}, nil
}

// CreateTableDirect registers a table without going through SQL, used by
// generators that build large tables programmatically.
func (db *DB) CreateTableDirect(name string, cols []Column, pk []string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := &Table{Name: name, Cols: cols, PK: pk, colIdx: make(map[string]int), db: db}
	t.data.Store(newTableData(nil))
	for i, c := range cols {
		t.colIdx[strings.ToLower(c.Name)] = i
	}
	nc := db.catalogNow().clone()
	nc.tables[strings.ToLower(name)] = t
	db.cat.Store(nc)
	return t
}

// AppendRow adds a row to a table without per-statement overhead. The row
// is not copied; callers must not retain it. The append is serialized
// against other writers under DB.mu and published as a new snapshot, so
// concurrent readers keep scanning the heap they pinned.
func (t *Table) AppendRow(row []sqltypes.Value) {
	t.BulkLoad([][]sqltypes.Value{row})
}

// BulkLoad appends many rows and publishes one new snapshot.
func (t *Table) BulkLoad(rows [][]sqltypes.Value) {
	if t.db != nil {
		t.db.mu.Lock()
		defer t.db.mu.Unlock()
	}
	// Appending to the previous snapshot's slice is safe even when the
	// backing array is shared: writers are serialized, and readers of the
	// old snapshot are bounded by the old slice length.
	t.publish(append(t.Heap(), rows...))
}

// ReplaceRows publishes rows as the table's entire new heap, the
// copy-on-write replacement for in-place heap surgery by external callers
// (the middleware's revoke path compacts tenant tables this way).
func (t *Table) ReplaceRows(rows [][]sqltypes.Value) {
	if t.db != nil {
		t.db.mu.Lock()
		defer t.db.mu.Unlock()
	}
	t.publish(rows)
}

func (db *DB) createView(cv *sqlast.CreateView) (*Result, error) {
	key := strings.ToLower(cv.Name)
	cat := db.catalogNow()
	if _, exists := cat.views[key]; exists {
		return nil, fmt.Errorf("engine: view %s already exists", cv.Name)
	}
	if _, exists := cat.tables[key]; exists {
		return nil, fmt.Errorf("engine: %s already names a table", cv.Name)
	}
	nc := cat.clone()
	nc.views[key] = cv.Sub
	db.cat.Store(nc)
	return &Result{}, nil
}

func (db *DB) createFunction(cf *sqlast.CreateFunction) (*Result, error) {
	key := strings.ToLower(cf.Name)
	cat := db.catalogNow()
	if _, exists := cat.funcs[key]; exists {
		return nil, fmt.Errorf("engine: function %s already exists", cf.Name)
	}
	nc := cat.clone()
	nc.funcs[key] = &Function{
		Name:      cf.Name,
		NumParams: len(cf.ParamTypes),
		Body:      cf.Body,
		Immutable: cf.Immutable,
	}
	db.cat.Store(nc)
	return &Result{}, nil
}

// ---------------------------------------------------------------- DML

func (db *DB) insert(ex *exec, ins *sqlast.Insert) (*Result, error) {
	t := db.catalogNow().table(ins.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: no such table %s", ins.Table)
	}
	colOrder := make([]int, 0, len(t.Cols))
	if len(ins.Columns) == 0 {
		for i := range t.Cols {
			colOrder = append(colOrder, i)
		}
	} else {
		for _, c := range ins.Columns {
			idx := t.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("engine: no column %s in %s", c, t.Name)
			}
			colOrder = append(colOrder, idx)
		}
	}

	var srcRows [][]sqltypes.Value
	if ins.Sub != nil {
		res, err := ex.runQuery(ins.Sub, rootScope())
		if err != nil {
			return nil, err
		}
		srcRows = res.Rows
	} else {
		for _, exprRow := range ins.Rows {
			row := make([]sqltypes.Value, len(exprRow))
			for i, e := range exprRow {
				v, err := ex.eval(e, rootScope())
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	// Stage coerced rows first and publish once at the end: an error leaves
	// the table untouched, and concurrent readers never observe a partial
	// insert — the new snapshot appears atomically.
	// Appending past the previous snapshot's length may share its backing
	// array; that is safe because writers are serialized and readers of the
	// old snapshot are bounded by the old slice length.
	staged := t.Heap()
	for _, src := range srcRows {
		if len(src) != len(colOrder) {
			return nil, fmt.Errorf("engine: INSERT into %s: %d values for %d columns", t.Name, len(src), len(colOrder))
		}
		row := make([]sqltypes.Value, len(t.Cols))
		for i, idx := range colOrder {
			v, err := coerce(src[i], t.Cols[idx].Type)
			if err != nil {
				return nil, fmt.Errorf("engine: INSERT into %s.%s: %w", t.Name, t.Cols[idx].Name, err)
			}
			row[idx] = v
		}
		for i, c := range t.Cols {
			if c.NotNull && row[i].IsNull() {
				return nil, fmt.Errorf("engine: NULL in NOT NULL column %s.%s", t.Name, c.Name)
			}
		}
		staged = append(staged, row)
	}
	t.publish(staged)
	return &Result{Affected: len(srcRows)}, nil
}

// coerce converts v to the declared column kind where lossless.
func coerce(v sqltypes.Value, kind sqltypes.Kind) (sqltypes.Value, error) {
	if v.IsNull() || v.K == kind {
		return v, nil
	}
	switch {
	case kind == sqltypes.KindFloat && v.K == sqltypes.KindInt:
		return sqltypes.NewFloat(float64(v.I)), nil
	case kind == sqltypes.KindInt && v.K == sqltypes.KindFloat && v.F == float64(int64(v.F)):
		return sqltypes.NewInt(int64(v.F)), nil
	case kind == sqltypes.KindDate && v.K == sqltypes.KindString:
		return sqltypes.ParseDate(v.S)
	case kind == sqltypes.KindString:
		return sqltypes.NewString(v.AsString()), nil
	}
	return sqltypes.Null, fmt.Errorf("cannot store %s as %s", v.K, kind)
}

func (db *DB) update(ex *exec, up *sqlast.Update) (*Result, error) {
	t := db.catalogNow().table(up.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: no such table %s", up.Table)
	}
	sc := tableScope(t)
	var pred compiledExpr
	if up.Where != nil {
		pred = ex.compile(up.Where, sc.bindings, sc)
	}
	setFns := make([]compiledExpr, len(up.Sets))
	allCompiled := (up.Where == nil || pred != nil) && !db.hasUDFCall(up.Where)
	for i, a := range up.Sets {
		setFns[i] = ex.compile(a.Expr, sc.bindings, sc)
		if setFns[i] == nil || db.hasUDFCall(a.Expr) {
			allCompiled = false
		}
	}
	// Batched path: only when the predicate and every assignment are in the
	// compiled subset *and* call no SQL-bodied functions — then they are
	// pure row functions (nothing that could observe earlier rows' in-place
	// updates), so evaluating a batch ahead of applying it is
	// indistinguishable from the row loop.
	if allCompiled && !db.noCompile {
		return db.updateBatched(ex, t, up, sc)
	}
	// Copy-on-write: the scan walks the pristine snapshot, updated rows are
	// cloned into a staged spine, and the new heap is published only after
	// the last row succeeds. The table stays consistent for the whole
	// statement — predicates and assignments (subqueries included) observe
	// pre-update state for every row, and an error publishes nothing.
	heap := t.Heap()
	var staged [][]sqltypes.Value
	affected := 0
	for ri, row := range heap {
		sc.row = row
		if up.Where != nil {
			var v sqltypes.Value
			var err error
			if pred != nil {
				v, err = pred(ex, row)
			} else {
				v, err = ex.eval(up.Where, sc)
			}
			if err != nil {
				return nil, err
			}
			if truth, _ := sqltypes.Truthy(v); !truth {
				continue
			}
		}
		// Evaluate all assignments against the pre-update row.
		newVals := make([]sqltypes.Value, len(up.Sets))
		for i, a := range up.Sets {
			var v sqltypes.Value
			var err error
			if setFns[i] != nil {
				v, err = setFns[i](ex, row)
			} else {
				v, err = ex.eval(a.Expr, sc)
			}
			if err != nil {
				return nil, err
			}
			idx := t.ColIndex(a.Column)
			if idx < 0 {
				return nil, fmt.Errorf("engine: no column %s in %s", a.Column, t.Name)
			}
			cv, err := coerce(v, t.Cols[idx].Type)
			if err != nil {
				return nil, err
			}
			newVals[i] = cv
		}
		if staged == nil {
			staged = append([][]sqltypes.Value(nil), heap...)
		}
		nr := append([]sqltypes.Value(nil), row...)
		for i, a := range up.Sets {
			nr[t.ColIndex(a.Column)] = newVals[i]
		}
		staged[ri] = nr
		affected++
	}
	if affected > 0 {
		t.publish(staged)
	}
	return &Result{Affected: affected}, nil
}

// hasUDFCall reports whether e calls a SQL-bodied function. UDF bodies are
// full queries that may read the table a DML statement is mutating, so the
// batched paths must not evaluate them a batch ahead of applying updates.
func (db *DB) hasUDFCall(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok && db.Function(fc.Name) != nil {
			found = true
		}
		return !found
	})
	return found
}

// updateBatched evaluates the UPDATE predicate and assignments column-wise
// per batch and stages the new rows in row order afterwards, aborting at
// the first poisoned row exactly where the row loop would have stopped.
// Like the row loop it is copy-on-write: updated rows are cloned into a
// staged spine published only when the whole statement succeeds.
func (db *DB) updateBatched(ex *exec, t *Table, up *sqlast.Update, sc *scope) (*Result, error) {
	var vpred vecExpr
	if up.Where != nil {
		vpred = ex.vecCompile(up.Where, sc.bindings, sc)
	}
	vsets := make([]vecExpr, len(up.Sets))
	colIdx := make([]int, len(up.Sets))
	for i, a := range up.Sets {
		vsets[i] = ex.vecCompile(a.Expr, sc.bindings, sc)
		// Resolution is hoisted; the "no column" error stays at apply time so
		// a non-matching UPDATE succeeds exactly like the row loop.
		colIdx[i] = t.ColIndex(a.Column)
	}
	newVals := make([]sqltypes.Value, len(up.Sets))
	affected := 0
	heap := t.Heap()
	var staged [][]sqltypes.Value
	src := scanOp{rows: heap}
	var b Batch
	for src.next(&b) {
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		n := len(b.rows)
		m := ex.vs.mark()
		sel := b.sel
		if vpred != nil {
			predCol := ex.vs.takeVals(n)
			vpred(&b, sel, predCol)
			matched := ex.vs.takeSel(len(sel))
			for _, i := range sel {
				if b.errs[i] != nil {
					continue
				}
				if truth, _ := sqltypes.Truthy(predCol[i]); truth {
					matched = append(matched, i)
				}
			}
			sel = matched
		}
		setCols := make([][]sqltypes.Value, len(vsets))
		selBuf := ex.vs.takeSel(len(sel))
		for j, vs := range vsets {
			setCols[j] = ex.vs.takeVals(n)
			vs(&b, sel, setCols[j])
			sel = b.compactSel(selBuf, sel)
		}
		// Stage in row order; a poisoned row aborts with nothing published.
		si := 0
		for i := 0; i < n; i++ {
			if b.errs[i] != nil {
				return nil, b.errs[i]
			}
			if si >= len(sel) || sel[si] != int32(i) {
				continue
			}
			si++
			row := b.rows[i]
			for j, a := range up.Sets {
				if colIdx[j] < 0 {
					return nil, fmt.Errorf("engine: no column %s in %s", a.Column, t.Name)
				}
				cv, err := coerce(setCols[j][i], t.Cols[colIdx[j]].Type)
				if err != nil {
					return nil, err
				}
				newVals[j] = cv
			}
			if staged == nil {
				staged = append([][]sqltypes.Value(nil), heap...)
			}
			nr := append([]sqltypes.Value(nil), row...)
			for j := range up.Sets {
				nr[colIdx[j]] = newVals[j]
			}
			staged[b.base+i] = nr
			affected++
		}
		ex.vs.release(m)
	}
	if affected > 0 {
		t.publish(staged)
	}
	return &Result{Affected: affected}, nil
}

func (db *DB) delete(ex *exec, del *sqlast.Delete) (*Result, error) {
	t := db.catalogNow().table(del.Table)
	if t == nil {
		return nil, fmt.Errorf("engine: no such table %s", del.Table)
	}
	sc := tableScope(t)
	heap := t.Heap()
	// Both paths stage the kept rows in a fresh slice and publish once at
	// the end: the snapshot is pristine for the whole scan — predicates with
	// subqueries over the same table observe identical state row-at-a-time
	// and batch-ahead, an erroring predicate publishes nothing, and
	// concurrent readers keep their pinned heap.
	if del.Where != nil && !db.noCompile {
		// Batched path: the predicate runs column-wise per batch; the
		// keep/drop walk then follows row order, so the first poisoned row
		// aborts exactly where the row loop would have stopped.
		vpred := ex.vecCompile(del.Where, sc.bindings, sc)
		kept := make([][]sqltypes.Value, 0, len(heap))
		affected := 0
		src := scanOp{rows: heap}
		var b Batch
		for src.next(&b) {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
			m := ex.vs.mark()
			predCol := ex.vs.takeVals(len(b.rows))
			vpred(&b, b.sel, predCol)
			for i := range b.rows {
				if b.errs[i] != nil {
					return nil, b.errs[i]
				}
				if truth, _ := sqltypes.Truthy(predCol[i]); truth {
					affected++
				} else {
					kept = append(kept, b.rows[i])
				}
			}
			ex.vs.release(m)
		}
		if affected > 0 {
			t.publish(kept)
		}
		return &Result{Affected: affected}, nil
	}
	var pred compiledExpr
	if del.Where != nil {
		pred = ex.compile(del.Where, sc.bindings, sc)
	}
	kept := make([][]sqltypes.Value, 0, len(heap))
	affected := 0
	for _, row := range heap {
		sc.row = row
		drop := del.Where == nil
		if del.Where != nil {
			var v sqltypes.Value
			var err error
			if pred != nil {
				v, err = pred(ex, row)
			} else {
				v, err = ex.eval(del.Where, sc)
			}
			if err != nil {
				return nil, err
			}
			truth, _ := sqltypes.Truthy(v)
			drop = truth
		}
		if drop {
			affected++
		} else {
			kept = append(kept, row)
		}
	}
	if affected > 0 {
		t.publish(kept)
	}
	return &Result{Affected: affected}, nil
}

// tableScope builds a single-binding scope over t for DML evaluation.
func tableScope(t *Table) *scope {
	sc := rootScope()
	sc.bindings = []*binding{newBinding(t.Name, t.ColNames())}
	return sc
}

// ---------------------------------------------------------------- constraints

// ValidateConstraints checks every FOREIGN KEY and CHECK constraint of every
// table, returning the first violation found. The MTSQL layer rewrites
// tenant-specific referential integrity into CHECK constraints (Appendix A);
// this is the hook that enforces both kinds.
func (db *DB) ValidateConstraints() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	cat := db.catalogNow()
	names := make([]string, 0, len(cat.tables))
	//mtlint:ignore detmap names are sorted below; validation runs in sorted order
	for k := range cat.tables {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		t := cat.tables[name]
		for _, con := range t.Constraints {
			if err := db.validateConstraint(cat, t, con); err != nil {
				return err
			}
		}
	}
	return nil
}

func (db *DB) validateConstraint(cat *catalog, t *Table, con sqlast.Constraint) error {
	switch con.Kind {
	case sqlast.ConstraintForeignKey:
		ref := cat.table(con.RefTable)
		if ref == nil {
			return fmt.Errorf("engine: constraint %s references missing table %s", con.Name, con.RefTable)
		}
		idx, err := ref.index(con.RefColumns)
		if err != nil {
			return err
		}
		srcIdx := make([]int, len(con.Columns))
		for i, c := range con.Columns {
			srcIdx[i] = t.ColIndex(c)
			if srcIdx[i] < 0 {
				return fmt.Errorf("engine: constraint %s: no column %s", con.Name, c)
			}
		}
		var key []byte
		for _, row := range t.Heap() {
			key = key[:0]
			null := false
			for _, i := range srcIdx {
				if row[i].IsNull() {
					null = true
					break
				}
				key = sqltypes.AppendKey(key, row[i])
			}
			if null {
				continue // NULL FK values vacuously satisfy the constraint
			}
			if len(idx.m[string(key)]) == 0 {
				return fmt.Errorf("engine: FK violation %s on %s: no match in %s", con.Name, t.Name, con.RefTable)
			}
		}
	case sqlast.ConstraintCheck:
		ex := db.newExec(db.buildPlanLocked("", nil))
		v, err := ex.eval(con.Check, rootScope())
		if err != nil {
			return fmt.Errorf("engine: CHECK %s: %w", con.Name, err)
		}
		if truth, known := sqltypes.Truthy(v); known && !truth {
			return fmt.Errorf("engine: CHECK constraint %s violated on %s", con.Name, t.Name)
		}
	}
	return nil
}
