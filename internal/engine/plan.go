package engine

// This file implements the DB-level statement plan cache. A Plan is the
// immutable part of a statement's lowering: the parsed AST (never mutated by
// execution — operators clone before transforming), plan-stable IDs for every
// subquery node (the keys of the per-execution subquery/IN-set memos), the
// plan-time IN-subquery arity validation, and the shared lowerings of called
// UDF bodies. Everything that changes while a statement runs — the UDF result
// memo, subquery result caches, the batch scratch stack — lives in the
// per-execution exec object (eval.go), so one Plan serves any number of
// executions.
//
// Plans are cached on the DB keyed by SQL text plus the compile-mode flag and
// validated against their dependencies on every lookup: each referenced
// table is pinned by identity *and* version (any write bumps Table.version),
// views and functions by identity. A DML write, a DROP/CREATE of a referenced
// name, or a schema change therefore evicts exactly the plans that could
// observe it; plans whose dependencies cannot be resolved at build time
// (missing tables, unknown functions) are never cached, so later DDL cannot
// resurrect a stale lowering.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// planCacheCap bounds the number of cached plans; on overflow the
// least-recently-used half is dropped.
const planCacheCap = 512

// planKey identifies a cached plan: the statement text and whether it was
// lowered for the compiled or the interpreted path (the differential test
// toggles SetCompileExprs on one DB).
type planKey struct {
	sql      string
	compiled bool
}

// planDep pins one schema object the plan depends on. Exactly one of tab,
// view, fn is set. Tables are additionally pinned by version so data writes
// invalidate plans that cache derived artifacts (UDF body relations).
type planDep struct {
	name    string // lower-case
	tab     *Table
	view    *sqlast.Select
	fn      *Function
	version uint64
}

// Plan is an immutable, reentrant lowering of one statement plus the
// artifacts shared by its executions. The only mutable fields — udfPlans,
// analysis, and the entry memo inside each udfPlan — are lazily filled
// caches guarded by mu: SELECT executions run outside DB.mu and may share
// one plan concurrently. lastUse is written only under DB.mu (cache
// bookkeeping happens at lookup, before execution leaves the lock).
type Plan struct {
	mu        sync.Mutex
	stmt      sqlast.Statement
	key       planKey
	subqIDs   map[*sqlast.Select]int32 // plan-stable subquery IDs
	nSubq     int32
	arityErr  error // IN-subquery arity mismatch found at plan time
	deps      []planDep
	cacheable bool
	lastUse   uint64

	// nParams is the bind-parameter arity: the highest $n / ? slot the
	// statement references. Executions must supply exactly this many values.
	nParams int
	// paramKinds holds plan-time type hints per slot (KindNull = no hint or
	// conflicting uses): bind values are coerced to the hinted kind per
	// execution, so e.g. a string date binds cleanly against a DATE column.
	paramKinds []sqltypes.Kind

	// udfPlans holds the once-per-plan lowerings of called UDF bodies
	// (compile.go). Their cached relations derive from dep-pinned tables, so
	// plan validation doubles as their invalidation.
	udfPlans map[*Function]*udfPlan

	// analysis caches the data-independent lowering analysis of plan-owned
	// Select nodes (conjunct split, OR factoring, alias map, grouped-ness) —
	// the part of physical operator tree construction that does not depend
	// on the data. The physical tree itself is rebuilt per execution: join
	// order and index choices are data-dependent. Filled lazily under
	// Plan.mu, like udfPlans.
	analysis map[*sqlast.Select]*selAnalysis
}

// selAnalysis is the per-Select execution analysis shared by the streaming
// and materializing executors: the flattened WHERE conjuncts (with the
// OR-factored implied conjuncts appended after nPlain), the output alias
// map, and whether the query projects through grouping.
type selAnalysis struct {
	conjs   []sqlast.Expr
	nPlain  int
	aliases map[string]sqlast.Expr
	grouped bool
}

func analyzeSelect(sel *sqlast.Select) *selAnalysis {
	a := &selAnalysis{aliases: selectAliases(sel)}
	a.conjs = splitConjuncts(sel.Where)
	a.nPlain = len(a.conjs)
	a.conjs = append(a.conjs, factorCommonOr(sel.Where)...)
	a.grouped = len(sel.GroupBy) > 0 || sel.Having != nil
	if !a.grouped {
		for _, it := range sel.Items {
			if !it.Star && hasAggregate(it.Expr) {
				a.grouped = true
				break
			}
		}
	}
	return a
}

// selectAnalysis returns sel's analysis, serving plan-owned nodes from the
// plan's cache. Nodes the plan has never seen (clones made during
// execution: view bodies, UDF subqueries) are analyzed per use — their
// identity is not stable across executions.
func (ex *exec) selectAnalysis(sel *sqlast.Select) *selAnalysis {
	p := ex.plan
	if _, owned := p.subqIDs[sel]; !owned {
		return analyzeSelect(sel)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if a, ok := p.analysis[sel]; ok {
		return a
	}
	a := analyzeSelect(sel)
	if p.analysis == nil {
		p.analysis = make(map[*sqlast.Select]*selAnalysis)
	}
	p.analysis[sel] = a
	return a
}

// Statement returns the parsed statement the plan executes.
func (p *Plan) Statement() sqlast.Statement { return p.stmt }

// NumParams returns the statement's bind-parameter arity.
func (p *Plan) NumParams() int { return p.nParams }

// bindArgs validates the bind values against the plan's parameter slots and
// returns a private, hint-coerced copy (the exec retains it for the whole
// execution, possibly past the caller's own use of the slice).
func (p *Plan) bindArgs(args []sqltypes.Value) ([]sqltypes.Value, error) {
	if len(args) != p.nParams {
		return nil, fmt.Errorf("engine: statement requires %d bind parameters, got %d", p.nParams, len(args))
	}
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]sqltypes.Value, len(args))
	copy(out, args)
	for i := range out {
		if i >= len(p.paramKinds) {
			break
		}
		kind := p.paramKinds[i]
		if kind == sqltypes.KindNull || out[i].IsNull() || out[i].K == kind {
			continue
		}
		// Hints are advisory: coerce when lossless, otherwise pass the value
		// through unconverted — exactly what the literal-inlined form of the
		// same statement would evaluate (1.5 against an INTEGER slot compares
		// numerically; a malformed date string compares as SQL unknown).
		if cv, err := coerce(out[i], kind); err == nil {
			out[i] = cv
		}
	}
	return out, nil
}

// ---------------------------------------------------------------- build

// buildPlanLocked analyses stmt into a Plan. sql may be empty for ephemeral
// plans built around caller-supplied ASTs.
func (db *DB) buildPlanLocked(sql string, stmt sqlast.Statement) *Plan {
	p := &Plan{
		stmt: stmt,
		key:  planKey{sql: sql, compiled: !db.noCompile},
	}
	switch st := stmt.(type) {
	case *sqlast.Select, *sqlast.Insert, *sqlast.Update, *sqlast.Delete:
		p.subqIDs = make(map[*sqlast.Select]int32)
		for _, sel := range statementSelects(stmt) {
			if _, ok := p.subqIDs[sel]; !ok {
				p.subqIDs[sel] = p.nSubq
				p.nSubq++
			}
		}
		// Dependency pinning only matters for plans that can live in the
		// cache; ephemeral plans (direct AST execution) execute immediately
		// and are never revalidated.
		if sql != "" {
			p.deps, p.cacheable = db.collectDepsLocked(stmt)
		}
		// A VALUES-only INSERT is the classic unique-text shape (bulk loads
		// serialize distinct literals per row); caching those would churn
		// the cache with plans that also self-invalidate on execution.
		if ins, isIns := st.(*sqlast.Insert); isIns && ins.Sub == nil {
			p.cacheable = false
		}
		p.arityErr = db.checkInArityLocked(stmt)
		p.nParams = sqlast.MaxParam(stmt)
		if p.nParams > 0 {
			p.paramKinds = db.paramKindsLocked(stmt, p.nParams)
		}
	default:
		// DDL and anything else: execute through an ephemeral plan.
	}
	return p
}

// statementSelects returns every SELECT node reachable from stmt — nested
// subqueries, derived tables, join operands and INSERT ... SELECT sources —
// in a deterministic pre-order.
func statementSelects(stmt sqlast.Statement) []*sqlast.Select {
	var out []*sqlast.Select
	var visitSel func(s *sqlast.Select)
	var visitTE func(te sqlast.TableExpr)
	visitExpr := func(e sqlast.Expr) {
		for _, sub := range sqlast.SubqueriesOf(e) {
			visitSel(sub)
		}
	}
	visitTE = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.DerivedTable:
			visitSel(t.Sub)
		case *sqlast.JoinExpr:
			visitTE(t.L)
			visitTE(t.R)
			visitExpr(t.On)
		}
	}
	visitSel = func(s *sqlast.Select) {
		if s == nil {
			return
		}
		out = append(out, s)
		for _, te := range s.From {
			visitTE(te)
		}
		for _, e := range selectLevelExprs(s) {
			visitExpr(e)
		}
	}
	switch st := stmt.(type) {
	case *sqlast.Select:
		visitSel(st)
	case *sqlast.Insert:
		visitSel(st.Sub)
		for _, row := range st.Rows {
			for _, e := range row {
				visitExpr(e)
			}
		}
	case *sqlast.Update:
		for _, a := range st.Sets {
			visitExpr(a.Expr)
		}
		visitExpr(st.Where)
	case *sqlast.Delete:
		visitExpr(st.Where)
	}
	return out
}

// selectLevelExprs returns the expressions attached to one query level
// (join ON conditions are enumerated by the FROM traversal).
func selectLevelExprs(s *sqlast.Select) []sqlast.Expr {
	var out []sqlast.Expr
	for _, it := range s.Items {
		if it.Expr != nil {
			out = append(out, it.Expr)
		}
	}
	if s.Where != nil {
		out = append(out, s.Where)
	}
	if s.Having != nil {
		out = append(out, s.Having)
	}
	out = append(out, s.GroupBy...)
	for _, o := range s.OrderBy {
		out = append(out, o.Expr)
	}
	return out
}

// ---------------------------------------------------------------- deps

// collectDepsLocked gathers every table, view and function the statement can
// touch, recursing through view and UDF bodies. It reports cacheable=false
// when any referenced name does not resolve — execution will surface the
// error, and a later CREATE must not hit a stale plan.
func (db *DB) collectDepsLocked(stmt sqlast.Statement) ([]planDep, bool) {
	cat := db.catalogNow()
	var deps []planDep
	seen := make(map[string]bool)
	ok := true

	var addName func(name string)
	var visitSelDeps func(s *sqlast.Select)
	visitFunc := func(name string) {
		upper := strings.ToUpper(name)
		if aggregateNames[upper] || builtinScalarFuncs[upper] {
			return
		}
		key := "f:" + strings.ToLower(name)
		if seen[key] {
			return
		}
		seen[key] = true
		fn := cat.funcs[strings.ToLower(name)]
		if fn == nil {
			ok = false
			return
		}
		deps = append(deps, planDep{name: strings.ToLower(name), fn: fn})
		visitSelDeps(fn.Body)
	}
	visitExprDeps := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			if fc, isCall := n.(*sqlast.FuncCall); isCall {
				visitFunc(fc.Name)
			}
			return true
		})
		for _, sub := range sqlast.SubqueriesOf(e) {
			visitSelDeps(sub)
		}
	}
	addName = func(name string) {
		lower := strings.ToLower(name)
		key := "t:" + lower
		if seen[key] {
			return
		}
		seen[key] = true
		if view, isView := cat.views[lower]; isView {
			deps = append(deps, planDep{name: lower, view: view})
			visitSelDeps(view)
			return
		}
		if tab := cat.tables[lower]; tab != nil {
			deps = append(deps, planDep{name: lower, tab: tab, version: atomic.LoadUint64(&tab.version)})
			return
		}
		ok = false
	}
	var visitTEDeps func(te sqlast.TableExpr)
	visitTEDeps = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableName:
			addName(t.Name)
		case *sqlast.DerivedTable:
			visitSelDeps(t.Sub)
		case *sqlast.JoinExpr:
			visitTEDeps(t.L)
			visitTEDeps(t.R)
			visitExprDeps(t.On)
		}
	}
	visitSelDeps = func(s *sqlast.Select) {
		if s == nil {
			return
		}
		for _, te := range s.From {
			visitTEDeps(te)
		}
		for _, e := range selectLevelExprs(s) {
			visitExprDeps(e)
		}
	}

	switch st := stmt.(type) {
	case *sqlast.Select:
		visitSelDeps(st)
	case *sqlast.Insert:
		addName(st.Table)
		visitSelDeps(st.Sub)
		for _, row := range st.Rows {
			for _, e := range row {
				visitExprDeps(e)
			}
		}
	case *sqlast.Update:
		addName(st.Table)
		for _, a := range st.Sets {
			visitExprDeps(a.Expr)
		}
		visitExprDeps(st.Where)
	case *sqlast.Delete:
		addName(st.Table)
		visitExprDeps(st.Where)
	default:
		return nil, false
	}
	return deps, ok
}

// planValidLocked reports whether every dependency still resolves to the
// same object at the same version.
func (db *DB) planValidLocked(p *Plan) bool {
	cat := db.catalogNow()
	for i := range p.deps {
		d := &p.deps[i]
		switch {
		case d.tab != nil:
			if cat.tables[d.name] != d.tab || atomic.LoadUint64(&d.tab.version) != d.version {
				return false
			}
		case d.view != nil:
			if cat.views[d.name] != d.view {
				return false
			}
		case d.fn != nil:
			if cat.funcs[d.name] != d.fn {
				return false
			}
		}
	}
	return true
}

// ---------------------------------------------------------------- IN arity

// checkInArityLocked validates every IN-subquery whose output arity is
// derivable from the schema at plan time. The check used to run only on the
// set-build path of evalInSubquery, so a memo hit skipped it; validating here
// makes the error independent of evaluation order, caching and engine mode.
// Shapes whose arity cannot be derived (unresolvable names) keep the runtime
// check in buildInSet as the backstop.
func (db *DB) checkInArityLocked(stmt sqlast.Statement) error {
	var err error
	check := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			if err != nil {
				return false
			}
			x, isIn := n.(*sqlast.InExpr)
			if !isIn || x.Sub == nil {
				return true
			}
			left := 1
			if row, isRow := x.X.(*sqlast.RowExpr); isRow {
				left = len(row.Exprs)
			}
			if n, known := db.selectArityLocked(x.Sub, 0); known && n != left {
				err = fmt.Errorf("engine: IN subquery returns %d columns, left side has %d", n, left)
			}
			return err == nil
		})
	}
	for _, sel := range statementSelects(stmt) {
		for _, e := range selectLevelExprs(sel) {
			check(e)
		}
		var visitON func(te sqlast.TableExpr)
		visitON = func(te sqlast.TableExpr) {
			if j, isJoin := te.(*sqlast.JoinExpr); isJoin {
				visitON(j.L)
				visitON(j.R)
				check(j.On)
			}
		}
		for _, te := range sel.From {
			visitON(te)
		}
	}
	switch st := stmt.(type) {
	case *sqlast.Update:
		for _, a := range st.Sets {
			check(a.Expr)
		}
		check(st.Where)
	case *sqlast.Delete:
		check(st.Where)
	case *sqlast.Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				check(e)
			}
		}
	}
	return err
}

// selectArityLocked derives the output column count of sel against the
// current schema; known=false when any name fails to resolve (runtime will
// raise its own error, or the shape is star-free and trivially countable).
func (db *DB) selectArityLocked(sel *sqlast.Select, depth int) (n int, known bool) {
	if depth > 24 {
		return 0, false
	}
	cat := db.catalogNow()
	type bnd struct {
		name  string
		width int
	}
	var bnds []bnd
	var add func(te sqlast.TableExpr) bool
	add = func(te sqlast.TableExpr) bool {
		switch t := te.(type) {
		case *sqlast.TableName:
			lower := strings.ToLower(t.Name)
			if view, isView := cat.views[lower]; isView {
				w, wok := db.selectArityLocked(view, depth+1)
				if !wok {
					return false
				}
				bnds = append(bnds, bnd{strings.ToLower(t.Binding()), w})
				return true
			}
			if tab := cat.tables[lower]; tab != nil {
				bnds = append(bnds, bnd{strings.ToLower(t.Binding()), len(tab.Cols)})
				return true
			}
			return false
		case *sqlast.DerivedTable:
			w, wok := db.selectArityLocked(t.Sub, depth+1)
			if !wok {
				return false
			}
			bnds = append(bnds, bnd{strings.ToLower(t.Alias), w})
			return true
		case *sqlast.JoinExpr:
			return add(t.L) && add(t.R)
		}
		return false
	}
	for _, te := range sel.From {
		if !add(te) {
			return 0, false
		}
	}
	for _, it := range sel.Items {
		switch {
		case it.Star && it.StarTable == "":
			if len(bnds) == 0 {
				return 0, false
			}
			for _, b := range bnds {
				n += b.width
			}
		case it.Star:
			found := false
			for _, b := range bnds {
				if b.name == strings.ToLower(it.StarTable) {
					n += b.width
					found = true
				}
			}
			if !found {
				return 0, false
			}
		default:
			n++
		}
	}
	return n, true
}

// ---------------------------------------------------------------- param hints

// paramKindsLocked derives a type hint per bind-parameter slot from the
// contexts the slot appears in against the current schema: direct
// comparisons with base-table columns, BETWEEN bounds, IN lists, LIKE
// patterns and DML assignment targets. Slots used against columns of
// different kinds get no hint (KindNull) and bind values pass through
// unconverted, exactly like pre-hint behaviour.
func (db *DB) paramKindsLocked(stmt sqlast.Statement, n int) []sqltypes.Kind {
	kinds := make([]sqltypes.Kind, n)
	conflict := make([]bool, n)
	hint := func(pn int, k sqltypes.Kind) {
		if pn < 1 || pn > n || k == sqltypes.KindNull || conflict[pn-1] {
			return
		}
		switch kinds[pn-1] {
		case sqltypes.KindNull:
			kinds[pn-1] = k
		case k:
		default:
			conflict[pn-1] = true
			kinds[pn-1] = sqltypes.KindNull
		}
	}

	// hintExprs pattern-matches one query level's expressions against a
	// column-kind resolver (nil kind = unresolvable).
	hintExprs := func(e sqlast.Expr, kindOf func(cr *sqlast.ColumnRef) sqltypes.Kind) {
		sqlast.WalkExpr(e, func(node sqlast.Expr) bool {
			switch x := node.(type) {
			case *sqlast.BinaryExpr:
				if !comparisonPlanOps[x.Op] {
					return true
				}
				if p, ok := x.L.(*sqlast.Param); ok {
					if cr, ok := x.R.(*sqlast.ColumnRef); ok {
						hint(p.N, kindOf(cr))
					}
				}
				if p, ok := x.R.(*sqlast.Param); ok {
					if cr, ok := x.L.(*sqlast.ColumnRef); ok {
						hint(p.N, kindOf(cr))
					}
				}
			case *sqlast.BetweenExpr:
				if cr, ok := x.X.(*sqlast.ColumnRef); ok {
					k := kindOf(cr)
					if p, ok := x.Lo.(*sqlast.Param); ok {
						hint(p.N, k)
					}
					if p, ok := x.Hi.(*sqlast.Param); ok {
						hint(p.N, k)
					}
				}
			case *sqlast.InExpr:
				if cr, ok := x.X.(*sqlast.ColumnRef); ok && x.Sub == nil {
					k := kindOf(cr)
					for _, item := range x.List {
						if p, ok := item.(*sqlast.Param); ok {
							hint(p.N, k)
						}
					}
				}
			case *sqlast.LikeExpr:
				if p, ok := x.Pattern.(*sqlast.Param); ok {
					hint(p.N, sqltypes.KindString)
				}
				if p, ok := x.X.(*sqlast.Param); ok {
					hint(p.N, sqltypes.KindString)
				}
			}
			return true
		})
	}

	for _, sel := range statementSelects(stmt) {
		kindOf := db.colKindResolverLocked(sel)
		for _, e := range selectLevelExprs(sel) {
			hintExprs(e, kindOf)
		}
		var visitON func(te sqlast.TableExpr)
		visitON = func(te sqlast.TableExpr) {
			if j, isJoin := te.(*sqlast.JoinExpr); isJoin {
				visitON(j.L)
				visitON(j.R)
				if j.On != nil {
					hintExprs(j.On, kindOf)
				}
			}
		}
		for _, te := range sel.From {
			visitON(te)
		}
	}

	// DML statements evaluate against their target table's layout.
	tableKindOf := func(name string) func(cr *sqlast.ColumnRef) sqltypes.Kind {
		t := db.catalogNow().table(name)
		return func(cr *sqlast.ColumnRef) sqltypes.Kind {
			if t == nil {
				return sqltypes.KindNull
			}
			if cr.Table != "" && !strings.EqualFold(cr.Table, t.Name) {
				return sqltypes.KindNull
			}
			if i := t.ColIndex(cr.Name); i >= 0 {
				return t.Cols[i].Type
			}
			return sqltypes.KindNull
		}
	}
	switch st := stmt.(type) {
	case *sqlast.Update:
		kindOf := tableKindOf(st.Table)
		for _, a := range st.Sets {
			if p, ok := a.Expr.(*sqlast.Param); ok {
				hint(p.N, kindOf(&sqlast.ColumnRef{Name: a.Column}))
			}
			hintExprs(a.Expr, kindOf)
		}
		hintExprs(st.Where, kindOf)
	case *sqlast.Delete:
		hintExprs(st.Where, tableKindOf(st.Table))
	case *sqlast.Insert:
		if t := db.catalogNow().table(st.Table); t != nil && st.Sub == nil {
			cols := st.Columns
			if len(cols) == 0 {
				cols = t.ColNames()
			}
			for _, row := range st.Rows {
				for i, e := range row {
					if p, ok := e.(*sqlast.Param); ok && i < len(cols) {
						if ci := t.ColIndex(cols[i]); ci >= 0 {
							hint(p.N, t.Cols[ci].Type)
						}
					}
				}
			}
		}
	}
	return kinds
}

var comparisonPlanOps = map[string]bool{
	"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true,
}

// colKindResolverLocked builds a column-kind resolver for one query level:
// base tables in FROM contribute their columns under the binding name and,
// when unambiguous across the level, unqualified. Views and derived tables
// contribute nothing (no hint is always safe).
func (db *DB) colKindResolverLocked(sel *sqlast.Select) func(cr *sqlast.ColumnRef) sqltypes.Kind {
	type colKey struct{ binding, col string }
	qualified := make(map[colKey]sqltypes.Kind)
	unqualified := make(map[string]sqltypes.Kind)
	ambiguous := make(map[string]bool)
	var addTE func(te sqlast.TableExpr)
	addTE = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableName:
			tab := db.catalogNow().table(t.Name)
			if tab == nil {
				return
			}
			bname := strings.ToLower(t.Binding())
			for _, c := range tab.Cols {
				cl := strings.ToLower(c.Name)
				qualified[colKey{bname, cl}] = c.Type
				if prev, seen := unqualified[cl]; seen && prev != c.Type {
					ambiguous[cl] = true
				}
				unqualified[cl] = c.Type
			}
		case *sqlast.JoinExpr:
			addTE(t.L)
			addTE(t.R)
		}
	}
	for _, te := range sel.From {
		addTE(te)
	}
	return func(cr *sqlast.ColumnRef) sqltypes.Kind {
		cl := strings.ToLower(cr.Name)
		if cr.Table != "" {
			return qualified[colKey{strings.ToLower(cr.Table), cl}]
		}
		if ambiguous[cl] {
			return sqltypes.KindNull
		}
		return unqualified[cl]
	}
}

// ---------------------------------------------------------------- cache

// planForLocked returns the plan for sql, reusing the cached one when its
// dependencies are unchanged, re-lowering the retained AST when they are
// not (the parse never depends on the schema), and parsing on a cold miss.
func (db *DB) planForLocked(sql string) (*Plan, error) {
	key := planKey{sql: sql, compiled: !db.noCompile}
	if p, ok := db.plans[key]; ok {
		if db.planValidLocked(p) {
			atomic.AddInt64(&db.Stats.PlanCacheHits, 1)
			db.planClock++
			p.lastUse = db.planClock
			return p, nil
		}
		atomic.AddInt64(&db.Stats.PlanCacheInvalidations, 1)
		np := db.buildPlanLocked(sql, p.stmt)
		atomic.AddInt64(&db.Stats.PlanCacheMisses, 1)
		if np.cacheable {
			db.storePlanLocked(np)
		} else {
			// The rebuild cannot be pinned (a dependency no longer
			// resolves): drop the stale entry instead of leaving a zombie
			// that re-invalidates on every lookup.
			delete(db.plans, key)
		}
		return np, nil
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&db.Stats.PlanCacheMisses, 1)
	p := db.buildPlanLocked(sql, stmt)
	db.storePlanLocked(p)
	return p, nil
}

func (db *DB) storePlanLocked(p *Plan) {
	if !p.cacheable || p.key.sql == "" || db.noPlanCache {
		return
	}
	if db.plans == nil {
		db.plans = make(map[planKey]*Plan)
	}
	if len(db.plans) >= planCacheCap {
		db.evictPlansLocked()
	}
	db.planClock++
	p.lastUse = db.planClock
	db.plans[p.key] = p
}

// evictPlansLocked drops the least-recently-used half of the cache.
func (db *DB) evictPlansLocked() {
	uses := make([]uint64, 0, len(db.plans))
	//mtlint:ignore detmap uses are sorted below to pick the cutoff; eviction itself is order-free
	for _, p := range db.plans {
		uses = append(uses, p.lastUse)
	}
	sort.Slice(uses, func(i, j int) bool { return uses[i] < uses[j] })
	cutoff := uses[len(uses)/2]
	for k, p := range db.plans {
		if p.lastUse <= cutoff {
			delete(db.plans, k)
		}
	}
}

// PreparePlan parses sql and returns its plan, reusing the cache. Errors
// are always parse errors: plan analysis itself never fails (validation
// errors are reported by ExecPlan, like their runtime counterparts). This
// is the plan-level API the middleware builds on; clients use DB.Prepare,
// which returns a bind-aware Stmt handle instead.
func (db *DB) PreparePlan(sql string) (*Plan, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.planForLocked(sql)
}

// revalidatePlanLocked returns p, or a fresh re-lowering of its AST when
// any dependency changed since the plan was built.
func (db *DB) revalidatePlanLocked(p *Plan) *Plan {
	if db.planValidLocked(p) {
		return p
	}
	atomic.AddInt64(&db.Stats.PlanCacheInvalidations, 1)
	np := db.buildPlanLocked(p.key.sql, p.stmt)
	if np.cacheable {
		db.storePlanLocked(np)
	} else if p.key.sql != "" {
		delete(db.plans, p.key)
	}
	return np
}

// ExecPlan executes a prepared plan, revalidating its dependencies first:
// a plan invalidated since PreparePlan is transparently re-lowered from its
// AST.
func (db *DB) ExecPlan(p *Plan) (*Result, error) {
	return db.ExecPlanContext(context.Background(), p)
}

// ExecPlanArgs executes a prepared plan with bind-parameter values.
func (db *DB) ExecPlanArgs(p *Plan, args ...sqltypes.Value) (*Result, error) {
	return db.ExecPlanContext(context.Background(), p, args...)
}

// ExecPlanContext executes a prepared plan with bind-parameter values,
// honouring ctx cancellation at batch boundaries. SELECTs pin their table
// snapshots under the lock and then run lock-free (execPlanUnlock).
func (db *DB) ExecPlanContext(ctx context.Context, p *Plan, args ...sqltypes.Value) (*Result, error) {
	db.mu.Lock()
	return db.execPlanUnlock(ctx, db.revalidatePlanLocked(p), args)
}

// InvalidatePlans drops every cached plan (and resets nothing else); used
// by benchmarks to isolate planning cost and by tests.
func (db *DB) InvalidatePlans() {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.plans = nil
}

// SetPlanCache toggles plan caching (on by default). With caching off every
// statement is parsed and lowered from scratch — the pre-cache behaviour.
func (db *DB) SetPlanCache(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.noPlanCache = !on
	if !on {
		db.plans = nil
	}
}
