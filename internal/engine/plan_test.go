package engine

import (
	"fmt"
	"sync"
	"testing"

	"mtbase/internal/sqltypes"
)

// TestPlanCacheHitsRepeatedText: repeated execution of the same SQL text
// reuses the cached plan; distinct texts and distinct compile modes do not.
func TestPlanCacheHitsRepeatedText(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	db.Stats = Stats{}
	sql := "SELECT COUNT(*) FROM Employees WHERE E_age > 27"
	for i := 0; i < 4; i++ {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats.PlanCacheHits != 3 || db.Stats.PlanCacheMisses != 1 {
		t.Fatalf("want 3 hits / 1 miss, got %+v", db.Stats)
	}
	// The interpreter lowering is a separate plan.
	db.SetCompileExprs(false)
	if _, err := db.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	db.SetCompileExprs(true)
	if db.Stats.PlanCacheMisses != 2 {
		t.Fatalf("interpreter run should miss: %+v", db.Stats)
	}
}

// TestPlanCacheVersionEviction is the acceptance regression for data-write
// invalidation: the cached plan of a conversion-UDF query holds the UDF
// body's materialized meta-table relation, so serving it after the meta
// table changed would return stale conversions. A write to any referenced
// table must evict the plan.
func TestPlanCacheVersionEviction(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	db.Stats = Stats{}
	sql := "SELECT currencyToUniversal(100.0, 1) FROM Regions WHERE Re_reg_id = 0"
	res, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsFloat(); got < 109.99 || got > 110.01 {
		t.Fatalf("initial conversion = %v, want ~110", got)
	}
	if _, err := db.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	if db.Stats.PlanCacheHits != 1 {
		t.Fatalf("second run should hit: %+v", db.Stats)
	}
	// Change the conversion rate of tenant 1's currency: the UDF body reads
	// CurrencyTransform, which the plan pinned by version.
	if _, err := db.ExecSQL("UPDATE CurrencyTransform SET CT_to_universal = 2.0 WHERE CT_currency_key = 1"); err != nil {
		t.Fatal(err)
	}
	res, err = db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0][0].AsFloat(); got != 200 {
		t.Fatalf("conversion after rate change = %v, want 200 (stale plan served)", got)
	}
	if db.Stats.PlanCacheInvalidations == 0 {
		t.Fatalf("version bump did not evict the plan: %+v", db.Stats)
	}
}

// TestPlanCacheDDLEviction is the acceptance regression for schema-change
// invalidation: dropping and recreating a referenced table with a different
// shape must re-lower the statement, not replay the old binding layout.
func TestPlanCacheDDLEviction(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b INTEGER);
		INSERT INTO t VALUES (1, 2)`); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT * FROM t"
	res, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 2 {
		t.Fatalf("cols = %v", res.Cols)
	}
	if _, err := db.ExecSQL(sql); err != nil { // warm the plan
		t.Fatal(err)
	}
	if _, err := db.ExecScript(`
		DROP TABLE t;
		CREATE TABLE t (x INTEGER, y INTEGER, z VARCHAR);
		INSERT INTO t VALUES (7, 8, 'nine')`); err != nil {
		t.Fatal(err)
	}
	res, err = db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 3 || res.Cols[2] != "z" || res.Rows[0][2].S != "nine" {
		t.Fatalf("stale plan after DDL: cols %v rows %v", res.Cols, res.Rows)
	}
	// A table dropped and re-created as a *view* must also be re-resolved.
	if _, err := db.ExecScript(`
		DROP TABLE t;
		CREATE TABLE u (x INTEGER); INSERT INTO u VALUES (42);
		CREATE VIEW t AS SELECT x FROM u`); err != nil {
		t.Fatal(err)
	}
	res, err = db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cols) != 1 || res.Rows[0][0].I != 42 {
		t.Fatalf("stale plan after table->view swap: %v %v", res.Cols, res.Rows)
	}
}

// TestPlanNotCachedForMissingNames: a statement referencing an unresolvable
// table or function must not be cached — a later CREATE has to see a fresh
// lowering, never a plan built against the old namespace.
func TestPlanNotCachedForMissingNames(t *testing.T) {
	db := Open(ModePostgres)
	sql := "SELECT missingFn(1) FROM nowhere"
	if _, err := db.ExecSQL(sql); err == nil {
		t.Fatal("query over missing table succeeded")
	}
	if _, err := db.ExecSQL(`CREATE TABLE nowhere (a INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL(`CREATE FUNCTION missingFn (INTEGER) RETURNS INTEGER
		AS 'SELECT $1 + 1' LANGUAGE SQL IMMUTABLE`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("INSERT INTO nowhere VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatalf("after CREATE, cached failure replayed: %v", err)
	}
	if res.Rows[0][0].I != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestStalePlanEntryDroppedWhenRebuildUncacheable: after a referenced
// table is dropped, re-executing the text must remove the dead cache entry
// instead of leaving a zombie that re-invalidates on every lookup.
func TestStalePlanEntryDroppedWhenRebuildUncacheable(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT a FROM t"
	if _, err := db.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL(sql); err == nil {
		t.Fatal("query over dropped table succeeded")
	}
	if _, zombie := db.plans[planKey{sql: sql, compiled: true}]; zombie {
		t.Fatal("stale plan entry left in cache after uncacheable rebuild")
	}
	inv := db.Stats.PlanCacheInvalidations
	if _, err := db.ExecSQL(sql); err == nil {
		t.Fatal("query over dropped table succeeded")
	}
	if db.Stats.PlanCacheInvalidations != inv {
		t.Fatal("dead entry still being invalidated per lookup")
	}
}

// TestValuesInsertNotCached: VALUES-only INSERT texts are the unique-text
// bulk-load shape and self-invalidate on execution; caching them would only
// churn the plan cache.
func TestValuesInsertNotCached(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	sql := "INSERT INTO t VALUES (7)"
	for i := 0; i < 2; i++ {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	if _, cached := db.plans[planKey{sql: sql, compiled: true}]; cached {
		t.Fatal("VALUES-only INSERT plan was cached")
	}
}

// TestInSubqueryArityPlanTime pins the fix for the arity-check hole: the
// left-side/subquery column count used to be validated only on the set-build
// path of evalInSubquery, so a memo hit — or a left side that was entirely
// NULL — skipped it. The check now runs at plan time, identically in both
// engine modes and on every execution.
func TestInSubqueryArityPlanTime(t *testing.T) {
	for _, mode := range []Mode{ModePostgres, ModeSystemC} {
		for _, compiled := range []bool{true, false} {
			db := newEmployeeDB(t, mode)
			db.SetCompileExprs(compiled)
			want := "engine: IN subquery returns 1 columns, left side has 2"
			_, err := db.QuerySQL(`SELECT E_name FROM Employees
				WHERE (E_role_id, ttid) IN (SELECT R_role_id FROM Roles)`)
			if err == nil || err.Error() != want {
				t.Fatalf("mode %s compiled=%v: err = %v, want %q", mode, compiled, err, want)
			}
			// Zero-row outer relation: the set-build path never ran before,
			// so this mismatch used to pass silently.
			_, err = db.QuerySQL(`SELECT E_name FROM Employees
				WHERE E_age > 1000 AND (E_role_id, ttid) IN (SELECT R_role_id FROM Roles)`)
			if err == nil || err.Error() != want {
				t.Fatalf("mode %s compiled=%v zero-row: err = %v, want %q", mode, compiled, err, want)
			}
		}
	}
}

// TestConcurrentExecutionsShareCachedPlan runs many goroutines through one
// DB and one cached plan whose statement exercises the per-exec memos
// (uncorrelated IN-subquery, scalar subquery, conversion UDF). The
// plan must be reentrant: every execution owns its memos, keyed by
// plan-stable subquery IDs, and the -race CI job enforces the discipline.
func TestConcurrentExecutionsShareCachedPlan(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	sql := `SELECT E_name FROM Employees
		WHERE E_role_id IN (SELECT R_role_id FROM Roles WHERE R_name = 'professor')
		AND E_salary > (SELECT MIN(currencyToUniversal(E_salary, ttid)) FROM Employees)
		ORDER BY E_name`
	want, err := db.ExecSQL(sql) // warm the plan
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := db.ExecSQL(sql)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != len(want.Rows) {
					errs <- fmt.Errorf("row count %d, want %d", len(res.Rows), len(want.Rows))
					return
				}
				for r := range res.Rows {
					if res.Rows[r][0].S != want.Rows[r][0].S {
						errs <- fmt.Errorf("row %d = %v, want %v", r, res.Rows[r], want.Rows[r])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPlanCacheDisabled: SetPlanCache(false) restores per-statement
// lowering.
func TestPlanCacheDisabled(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	db.SetPlanCache(false)
	db.Stats = Stats{}
	sql := "SELECT COUNT(*) FROM Roles"
	for i := 0; i < 3; i++ {
		if _, err := db.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats.PlanCacheHits != 0 || db.Stats.PlanCacheMisses != 3 {
		t.Fatalf("want 0 hits / 3 misses with cache off, got %+v", db.Stats)
	}
}

// TestPlanCacheEviction fills the cache beyond its capacity and checks it
// stays bounded while continuing to serve correct results.
func TestPlanCacheEviction(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (5)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*planCacheCap; i++ {
		res, err := db.ExecSQL(fmt.Sprintf("SELECT a + %d FROM t", i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Rows[0][0].I != int64(5+i) {
			t.Fatalf("i=%d: %v", i, res.Rows[0][0])
		}
	}
	if len(db.plans) > planCacheCap {
		t.Fatalf("cache grew to %d entries (cap %d)", len(db.plans), planCacheCap)
	}
}

// TestUDFPlanRelationsSharedAcrossExecutions: with a cached plan, the
// conversion-UDF body's per-tenant relation is materialized once and reused
// by later executions of the same statement — the repeated-execution payoff
// the paper's recurring cross-tenant statements motivate.
func TestUDFPlanRelationsSharedAcrossExecutions(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	sql := "SELECT SUM(currencyToUniversal(E_salary, ttid)) FROM Employees"
	first, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	p := db.plans[planKey{sql: sql, compiled: true}]
	if p == nil {
		t.Fatal("plan not cached")
	}
	var entries int
	for _, up := range p.udfPlans {
		entries += len(up.entries)
	}
	if entries == 0 {
		t.Fatal("no UDF plan entries materialized on the cached plan")
	}
	again, err := db.ExecSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rows[0][0] != again.Rows[0][0] {
		t.Fatalf("results differ across executions: %v vs %v", first.Rows[0][0], again.Rows[0][0])
	}
	if db.plans[planKey{sql: sql, compiled: true}] != p {
		t.Fatal("second execution rebuilt the plan")
	}
	// Writes to an unrelated table must NOT evict the plan.
	if _, err := db.ExecSQL("INSERT INTO Regions VALUES (6, 'ANTARCTICA')"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	if db.plans[planKey{sql: sql, compiled: true}] != p {
		t.Fatal("write to unrelated table evicted the plan")
	}
	// Appending an employee (referenced table) must evict it.
	db.Table("Employees").AppendRow([]sqltypes.Value{
		sqltypes.NewInt(0), sqltypes.NewInt(9), sqltypes.NewString("Zoe"),
		sqltypes.NewInt(1), sqltypes.NewInt(3), sqltypes.NewFloat(100), sqltypes.NewInt(33),
	})
	if _, err := db.ExecSQL(sql); err != nil {
		t.Fatal(err)
	}
	if db.plans[planKey{sql: sql, compiled: true}] == p {
		t.Fatal("write to referenced table did not evict the plan")
	}
}
