package engine

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"mtbase/internal/sqltypes"
)

// TestLikeMatchesRegexpOracle checks the LIKE matcher against a regexp
// translation on random inputs.
func TestLikeMatchesRegexpOracle(t *testing.T) {
	alphabet := []rune{'a', 'b', 'c', '%', '_'}
	r := rand.New(rand.NewSource(11))
	randomWord := func(n int, withWild bool) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			max := 3
			if withWild {
				max = len(alphabet)
			}
			sb.WriteRune(alphabet[r.Intn(max)])
		}
		return sb.String()
	}
	toRegexp := func(pattern string) *regexp.Regexp {
		var sb strings.Builder
		sb.WriteString("^")
		for _, c := range pattern {
			switch c {
			case '%':
				sb.WriteString("(?s).*")
			case '_':
				sb.WriteString("(?s).")
			default:
				sb.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		sb.WriteString("$")
		return regexp.MustCompile(sb.String())
	}
	for i := 0; i < 5000; i++ {
		s := randomWord(r.Intn(8), false)
		p := randomWord(r.Intn(6), true)
		want := toRegexp(p).MatchString(s)
		if got := likeMatch(s, p); got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, regexp says %v", s, p, got, want)
		}
	}
}

// TestHashJoinMatchesNestedLoopOracle compares the hash-join plan against
// a brute-force cross product + filter on random tables.
func TestHashJoinMatchesNestedLoopOracle(t *testing.T) {
	f := func(leftKeys, rightKeys []uint8) bool {
		if len(leftKeys) > 40 {
			leftKeys = leftKeys[:40]
		}
		if len(rightKeys) > 40 {
			rightKeys = rightKeys[:40]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecScript("CREATE TABLE l (lk INTEGER, lv INTEGER); CREATE TABLE r (rk INTEGER, rv INTEGER)"); err != nil {
			t.Fatal(err)
		}
		lt, rt := db.Table("l"), db.Table("r")
		for i, k := range leftKeys {
			lt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 8)), sqltypes.NewInt(int64(i))})
		}
		for i, k := range rightKeys {
			rt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 8)), sqltypes.NewInt(int64(i))})
		}
		// Hash-join path (equi conjunct).
		a, err := db.QuerySQL("SELECT lv, rv FROM l, r WHERE lk = rk ORDER BY lv, rv")
		if err != nil {
			t.Fatal(err)
		}
		// Forced nested-loop path (arithmetic defeats equi detection).
		b, err := db.QuerySQL("SELECT lv, rv FROM l, r WHERE lk + 0 = rk + 0 ORDER BY lv, rv")
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			if a.Rows[i][0].I != b.Rows[i][0].I || a.Rows[i][1].I != b.Rows[i][1].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGroupByMatchesManualAggregation cross-checks grouped SUM/COUNT
// against a hand-rolled aggregation over random data.
func TestGroupByMatchesManualAggregation(t *testing.T) {
	f := func(vals []int16) bool {
		db := Open(ModePostgres)
		if _, err := db.ExecSQL("CREATE TABLE t (g INTEGER, v INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		sums := map[int64]int64{}
		counts := map[int64]int64{}
		for _, v := range vals {
			g := int64(v % 5)
			if g < 0 {
				g = -g
			}
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(g), sqltypes.NewInt(int64(v))})
			sums[g] += int64(v)
			counts[g]++
		}
		res, err := db.QuerySQL("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(sums) {
			return false
		}
		for _, row := range res.Rows {
			g := row[0].I
			if row[1].I != sums[g] || row[2].I != counts[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLeftOuterJoinInvariants: every left row appears at least once, and
// rows without a match carry NULLs.
func TestLeftOuterJoinInvariants(t *testing.T) {
	f := func(leftKeys, rightKeys []uint8) bool {
		if len(leftKeys) > 30 {
			leftKeys = leftKeys[:30]
		}
		if len(rightKeys) > 30 {
			rightKeys = rightKeys[:30]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecScript("CREATE TABLE l (lk INTEGER, id INTEGER); CREATE TABLE r (rk INTEGER)"); err != nil {
			t.Fatal(err)
		}
		lt, rt := db.Table("l"), db.Table("r")
		rightSet := map[int64]int{}
		for i, k := range leftKeys {
			lt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 6)), sqltypes.NewInt(int64(i))})
		}
		for _, k := range rightKeys {
			rt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 6))})
			rightSet[int64(k%6)]++
		}
		res, err := db.QuerySQL("SELECT id, lk, rk FROM l LEFT OUTER JOIN r ON lk = rk")
		if err != nil {
			t.Fatal(err)
		}
		perLeft := map[int64]int{}
		for _, row := range res.Rows {
			perLeft[row[0].I]++
			if row[2].IsNull() {
				if rightSet[row[1].I] != 0 {
					return false // NULL despite existing match
				}
			} else if row[1].I != row[2].I {
				return false // ON condition violated
			}
		}
		for i, k := range leftKeys {
			want := rightSet[int64(k%6)]
			if want == 0 {
				want = 1 // null-extended
			}
			if perLeft[int64(i)] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOrderByPermutationStable: ORDER BY must produce a sorted permutation
// of the input.
func TestOrderByPermutationStable(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) > 100 {
			vals = vals[:100]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecSQL("CREATE TABLE t (v INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for _, v := range vals {
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(v))})
		}
		res, err := db.QuerySQL("SELECT v FROM t ORDER BY v")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(vals) {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].I > res.Rows[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNestedViews(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.ExecScript(`
		CREATE VIEW v1 AS SELECT E_name, E_age FROM Employees WHERE E_age > 27;
		CREATE VIEW v2 AS SELECT E_name FROM v1 WHERE E_age < 50`); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM v2")
	// ages 30, 28, 46, 46 qualify (25 and 72 excluded)
	if rows[0][0].I != 4 {
		t.Errorf("nested view count = %v", rows[0][0])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT E_name FROM Employees WHERE SUM(E_age) > 10"); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
	if _, err := db.QuerySQL("SELECT SUM(MAX(E_age)) FROM Employees"); err == nil {
		t.Error("nested aggregate accepted")
	}
	if _, err := db.QuerySQL("SELECT E_age, COUNT(*) FROM Employees GROUP BY SUM(E_age)"); err == nil {
		t.Error("aggregate in GROUP BY accepted")
	}
}

func TestCrossJoinCount(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT COUNT(*) FROM Roles CROSS JOIN Regions")
	if rows[0][0].I != 6*6 {
		t.Errorf("cross join count = %v", rows[0][0])
	}
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT (SELECT E_name FROM Employees) FROM Regions"); err == nil {
		t.Error("multi-row scalar subquery accepted")
	}
	if _, err := db.QuerySQL("SELECT (SELECT E_name, E_age FROM Employees LIMIT 1) FROM Regions"); err == nil {
		t.Error("multi-column scalar subquery accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModePostgres.String() != "postgres" || ModeSystemC.String() != "system-c" {
		t.Error("mode strings")
	}
}

func TestConcurrentReads(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, err := db.QuerySQL(fmt.Sprintf("SELECT COUNT(*) FROM Employees WHERE E_age > %d", 20+i))
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
