package engine

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"testing"
	"testing/quick"

	"mtbase/internal/sqltypes"
)

// TestLikeMatchesRegexpOracle checks the LIKE matcher against a regexp
// translation on random inputs, including multi-byte runes in the subject:
// _ must consume one character, not one byte.
func TestLikeMatchesRegexpOracle(t *testing.T) {
	alphabet := []rune{'a', 'b', 'é', '☃', '%', '_'}
	r := rand.New(rand.NewSource(11))
	randomWord := func(n int, withWild bool) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			max := 4
			if withWild {
				max = len(alphabet)
			}
			sb.WriteRune(alphabet[r.Intn(max)])
		}
		return sb.String()
	}
	toRegexp := func(pattern string) *regexp.Regexp {
		var sb strings.Builder
		sb.WriteString("^")
		for _, c := range pattern {
			switch c {
			case '%':
				sb.WriteString("(?s).*")
			case '_':
				sb.WriteString("(?s).")
			default:
				sb.WriteString(regexp.QuoteMeta(string(c)))
			}
		}
		sb.WriteString("$")
		return regexp.MustCompile(sb.String())
	}
	for i := 0; i < 5000; i++ {
		s := randomWord(r.Intn(8), false)
		p := randomWord(r.Intn(6), true)
		want := toRegexp(p).MatchString(s)
		if got := likeMatch(s, p); got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, regexp says %v", s, p, got, want)
		}
	}
}

// TestLikeMatchUTF8 pins the rune semantics of _ on multi-byte strings
// (regression: _ used to consume a single byte).
func TestLikeMatchUTF8(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"héllo", "h_llo", true},
		{"héllo", "h__llo", false},
		{"é", "_", true},
		{"☃☃", "__", true},
		{"☃☃", "_", false},
		{"prix: 10€", "prix%€", true},
		{"naïve", "na_ve", true},
		{"naïve", "%_ve", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

// TestHashJoinMatchesNestedLoopOracle compares the hash-join plan against
// a brute-force cross product + filter on random tables.
func TestHashJoinMatchesNestedLoopOracle(t *testing.T) {
	f := func(leftKeys, rightKeys []uint8) bool {
		if len(leftKeys) > 40 {
			leftKeys = leftKeys[:40]
		}
		if len(rightKeys) > 40 {
			rightKeys = rightKeys[:40]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecScript("CREATE TABLE l (lk INTEGER, lv INTEGER); CREATE TABLE r (rk INTEGER, rv INTEGER)"); err != nil {
			t.Fatal(err)
		}
		lt, rt := db.Table("l"), db.Table("r")
		for i, k := range leftKeys {
			lt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 8)), sqltypes.NewInt(int64(i))})
		}
		for i, k := range rightKeys {
			rt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 8)), sqltypes.NewInt(int64(i))})
		}
		// Hash-join path (equi conjunct).
		a, err := db.QuerySQL("SELECT lv, rv FROM l, r WHERE lk = rk ORDER BY lv, rv")
		if err != nil {
			t.Fatal(err)
		}
		// Forced nested-loop path (arithmetic defeats equi detection).
		b, err := db.QuerySQL("SELECT lv, rv FROM l, r WHERE lk + 0 = rk + 0 ORDER BY lv, rv")
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Rows) != len(b.Rows) {
			return false
		}
		for i := range a.Rows {
			if a.Rows[i][0].I != b.Rows[i][0].I || a.Rows[i][1].I != b.Rows[i][1].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestGroupByMatchesManualAggregation cross-checks grouped SUM/COUNT
// against a hand-rolled aggregation over random data.
func TestGroupByMatchesManualAggregation(t *testing.T) {
	f := func(vals []int16) bool {
		db := Open(ModePostgres)
		if _, err := db.ExecSQL("CREATE TABLE t (g INTEGER, v INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		sums := map[int64]int64{}
		counts := map[int64]int64{}
		for _, v := range vals {
			g := int64(v % 5)
			if g < 0 {
				g = -g
			}
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(g), sqltypes.NewInt(int64(v))})
			sums[g] += int64(v)
			counts[g]++
		}
		res, err := db.QuerySQL("SELECT g, SUM(v), COUNT(*) FROM t GROUP BY g")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(sums) {
			return false
		}
		for _, row := range res.Rows {
			g := row[0].I
			if row[1].I != sums[g] || row[2].I != counts[g] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestLeftOuterJoinInvariants: every left row appears at least once, and
// rows without a match carry NULLs.
func TestLeftOuterJoinInvariants(t *testing.T) {
	f := func(leftKeys, rightKeys []uint8) bool {
		if len(leftKeys) > 30 {
			leftKeys = leftKeys[:30]
		}
		if len(rightKeys) > 30 {
			rightKeys = rightKeys[:30]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecScript("CREATE TABLE l (lk INTEGER, id INTEGER); CREATE TABLE r (rk INTEGER)"); err != nil {
			t.Fatal(err)
		}
		lt, rt := db.Table("l"), db.Table("r")
		rightSet := map[int64]int{}
		for i, k := range leftKeys {
			lt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 6)), sqltypes.NewInt(int64(i))})
		}
		for _, k := range rightKeys {
			rt.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(k % 6))})
			rightSet[int64(k%6)]++
		}
		res, err := db.QuerySQL("SELECT id, lk, rk FROM l LEFT OUTER JOIN r ON lk = rk")
		if err != nil {
			t.Fatal(err)
		}
		perLeft := map[int64]int{}
		for _, row := range res.Rows {
			perLeft[row[0].I]++
			if row[2].IsNull() {
				if rightSet[row[1].I] != 0 {
					return false // NULL despite existing match
				}
			} else if row[1].I != row[2].I {
				return false // ON condition violated
			}
		}
		for i, k := range leftKeys {
			want := rightSet[int64(k%6)]
			if want == 0 {
				want = 1 // null-extended
			}
			if perLeft[int64(i)] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestOrderByPermutationStable: ORDER BY must produce a sorted permutation
// of the input.
func TestOrderByPermutationStable(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) > 100 {
			vals = vals[:100]
		}
		db := Open(ModePostgres)
		if _, err := db.ExecSQL("CREATE TABLE t (v INTEGER)"); err != nil {
			t.Fatal(err)
		}
		tab := db.Table("t")
		for _, v := range vals {
			tab.AppendRow([]sqltypes.Value{sqltypes.NewInt(int64(v))})
		}
		res, err := db.QuerySQL("SELECT v FROM t ORDER BY v")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(vals) {
			return false
		}
		for i := 1; i < len(res.Rows); i++ {
			if res.Rows[i-1][0].I > res.Rows[i][0].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNestedViews(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.ExecScript(`
		CREATE VIEW v1 AS SELECT E_name, E_age FROM Employees WHERE E_age > 27;
		CREATE VIEW v2 AS SELECT E_name FROM v1 WHERE E_age < 50`); err != nil {
		t.Fatal(err)
	}
	rows := queryRows(t, db, "SELECT COUNT(*) FROM v2")
	// ages 30, 28, 46, 46 qualify (25 and 72 excluded)
	if rows[0][0].I != 4 {
		t.Errorf("nested view count = %v", rows[0][0])
	}
}

func TestAggregateErrors(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT E_name FROM Employees WHERE SUM(E_age) > 10"); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
	if _, err := db.QuerySQL("SELECT SUM(MAX(E_age)) FROM Employees"); err == nil {
		t.Error("nested aggregate accepted")
	}
	if _, err := db.QuerySQL("SELECT E_age, COUNT(*) FROM Employees GROUP BY SUM(E_age)"); err == nil {
		t.Error("aggregate in GROUP BY accepted")
	}
}

func TestCrossJoinCount(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	rows := queryRows(t, db, "SELECT COUNT(*) FROM Roles CROSS JOIN Regions")
	if rows[0][0].I != 6*6 {
		t.Errorf("cross join count = %v", rows[0][0])
	}
}

func TestScalarSubqueryCardinalityError(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	if _, err := db.QuerySQL("SELECT (SELECT E_name FROM Employees) FROM Regions"); err == nil {
		t.Error("multi-row scalar subquery accepted")
	}
	if _, err := db.QuerySQL("SELECT (SELECT E_name, E_age FROM Employees LIMIT 1) FROM Regions"); err == nil {
		t.Error("multi-column scalar subquery accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModePostgres.String() != "postgres" || ModeSystemC.String() != "system-c" {
		t.Error("mode strings")
	}
}

func TestConcurrentReads(t *testing.T) {
	db := newEmployeeDB(t, ModePostgres)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			_, err := db.QuerySQL(fmt.Sprintf("SELECT COUNT(*) FROM Employees WHERE E_age > %d", 20+i))
			done <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}

// ---------------------------------------------------------------- differential

// diffDB builds a small two-table schema with NULLs, a rates meta table and
// a conversion-style UDF, mirroring the shapes the MTSQL rewrite emits. The
// big table spans multiple execution batches (> 2×1024 rows) so the batched
// pipeline's window and selection-vector handling is exercised across batch
// boundaries, not just inside one window.
func diffDB(t testing.TB, mode Mode) *DB {
	t.Helper()
	db := Open(mode)
	script := `
		CREATE TABLE t (a INTEGER, b INTEGER, s VARCHAR, f DECIMAL, d DATE);
		CREATE TABLE u (k INTEGER, v INTEGER, w VARCHAR);
		CREATE TABLE big (g INTEGER, h INTEGER, fl DECIMAL);
		CREATE TABLE rates (tid INTEGER, r DECIMAL);
		CREATE FUNCTION conv (DECIMAL, INTEGER) RETURNS DECIMAL
			AS 'SELECT r * $1 FROM rates WHERE tid = $2' LANGUAGE SQL IMMUTABLE`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	words := []string{"alpha", "beta", "gamma", "héllo", "a%b", "x_y", ""}
	tt := db.Table("t")
	for i := 0; i < 120; i++ {
		row := []sqltypes.Value{
			sqltypes.NewInt(int64(r.Intn(20))),
			sqltypes.NewInt(int64(r.Intn(6))),
			sqltypes.NewString(words[r.Intn(len(words))]),
			sqltypes.NewFloat(float64(r.Intn(1000)) / 10),
			sqltypes.NewDate(int64(10000 + r.Intn(400))),
		}
		for j := range row {
			if r.Intn(10) == 0 {
				row[j] = sqltypes.Null
			}
		}
		tt.AppendRow(row)
	}
	ut := db.Table("u")
	for i := 0; i < 40; i++ {
		ut.AppendRow([]sqltypes.Value{
			sqltypes.NewInt(int64(r.Intn(20))),
			sqltypes.NewInt(int64(r.Intn(50))),
			sqltypes.NewString(words[r.Intn(len(words))]),
		})
	}
	bt := db.Table("big")
	for i := 0; i < 2600; i++ {
		row := []sqltypes.Value{
			sqltypes.NewInt(int64(r.Intn(20))),
			sqltypes.NewInt(int64(i)),
			sqltypes.NewFloat(float64(r.Intn(500)) / 4),
		}
		if r.Intn(12) == 0 {
			row[r.Intn(3)] = sqltypes.Null
		}
		bt.AppendRow(row)
	}
	rt := db.Table("rates")
	for tid := 0; tid < 6; tid++ {
		rt.AppendRow([]sqltypes.Value{
			sqltypes.NewInt(int64(tid)), sqltypes.NewFloat(1 + float64(tid)/4),
		})
	}
	return db
}

// genBigExpr builds a random scalar expression over the big table's columns.
func genBigExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return "g"
		case 1:
			return "h"
		case 2:
			return "fl"
		default:
			return fmt.Sprintf("%d", r.Intn(25))
		}
	}
	sub := func() string { return genBigExpr(r, depth-1) }
	switch r.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", sub(), sub())
	case 1:
		return fmt.Sprintf("(%s * %s)", sub(), sub())
	case 2:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return fmt.Sprintf("(%s %s %s)", sub(), ops[r.Intn(len(ops))], sub())
	case 3:
		return fmt.Sprintf("(%s AND %s)", sub(), sub())
	case 4:
		return fmt.Sprintf("(%s OR %s)", sub(), sub())
	case 5:
		return fmt.Sprintf("(%s BETWEEN %d AND %d)", sub(), r.Intn(800), 800+r.Intn(1800))
	case 6:
		return fmt.Sprintf("(g IN (%d, %d, %d))", r.Intn(20), r.Intn(20), r.Intn(20))
	case 7:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", sub(), sub(), sub())
	}
	return "g"
}

// genDiffExpr builds a random scalar expression over table t's columns,
// covering every construct the compiler lowers.
func genDiffExpr(r *rand.Rand, depth int) string {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "f"
		case 3:
			return fmt.Sprintf("%d", r.Intn(25))
		case 4:
			return "s"
		default:
			return "d"
		}
	}
	sub := func() string { return genDiffExpr(r, depth-1) }
	switch r.Intn(16) {
	case 0:
		return fmt.Sprintf("(%s + %s)", sub(), sub())
	case 1:
		return fmt.Sprintf("(%s * %s)", sub(), sub())
	case 2:
		return fmt.Sprintf("(%s - %s)", sub(), sub())
	case 3:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return fmt.Sprintf("(%s %s %s)", sub(), ops[r.Intn(len(ops))], sub())
	case 4:
		return fmt.Sprintf("(%s AND %s)", sub(), sub())
	case 5:
		return fmt.Sprintf("(%s OR %s)", sub(), sub())
	case 6:
		return fmt.Sprintf("(NOT %s)", sub())
	case 7:
		return fmt.Sprintf("(%s BETWEEN %d AND %d)", sub(), r.Intn(10), 10+r.Intn(10))
	case 8:
		return fmt.Sprintf("(a IN (%d, %d, %d))", r.Intn(20), r.Intn(20), r.Intn(20))
	case 9:
		pats := []string{"'a%'", "'%a'", "'h_llo'", "'%é%'", "'x%y'"}
		return fmt.Sprintf("(s LIKE %s)", pats[r.Intn(len(pats))])
	case 10:
		return fmt.Sprintf("(%s IS NULL)", sub())
	case 11:
		return fmt.Sprintf("CASE WHEN %s THEN %s ELSE %s END", sub(), sub(), sub())
	case 12:
		return fmt.Sprintf("COALESCE(%s, %s)", sub(), sub())
	case 13:
		return fmt.Sprintf("ABS(%s)", sub())
	case 14:
		return "conv(f, b)"
	case 15:
		return "SUBSTRING(s FROM 2 FOR 3)"
	}
	return "a"
}

// runBothPaths executes sql with the compiled path forced off and on,
// returning both outcomes.
func runBothPaths(db *DB, sql string) (interp, compiled *Result, interpErr, compiledErr error) {
	db.SetCompileExprs(false)
	interp, interpErr = db.QuerySQL(sql)
	db.SetCompileExprs(true)
	compiled, compiledErr = db.QuerySQL(sql)
	return
}

func sameResult(a, b *Result) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCompiledMatchesInterpreter is the differential property test for the
// compiled subsystem, now batch-at-a-time: every generated query must
// produce the identical result (or the identical error) through the batched
// pipeline and the row-at-a-time tree-walking interpreter, in both engine
// modes. The big-table shapes cross multiple execution batches, driving
// selection-vector refinement, batched grouping, join key columns and the
// key-column sort over batch boundaries.
func TestCompiledMatchesInterpreter(t *testing.T) {
	for _, mode := range []Mode{ModePostgres, ModeSystemC} {
		db := diffDB(t, mode)
		r := rand.New(rand.NewSource(int64(99 + mode)))
		for i := 0; i < 400; i++ {
			var sql string
			switch i % 10 {
			case 0: // filtered projection with ORDER BY
				sql = fmt.Sprintf("SELECT %s, %s FROM t WHERE %s ORDER BY %s, a, b, s",
					genDiffExpr(r, 2), genDiffExpr(r, 2), genDiffExpr(r, 2), genDiffExpr(r, 1))
			case 1: // grouped aggregation incl. batched aggregate args
				sql = fmt.Sprintf("SELECT b, SUM(%s), COUNT(*), MIN(%s) FROM t WHERE %s GROUP BY b HAVING COUNT(*) > %d ORDER BY b",
					genDiffExpr(r, 2), genDiffExpr(r, 1), genDiffExpr(r, 2), r.Intn(3))
			case 2: // hash join with batched keys + residual
				sql = fmt.Sprintf("SELECT a, v FROM t, u WHERE a = k AND %s ORDER BY a, v, w",
					genDiffExpr(r, 2))
			case 3: // conversion UDF through the body plan
				sql = fmt.Sprintf("SELECT conv(%s, b) FROM t WHERE %s ORDER BY a, b, s, f",
					genDiffExpr(r, 1), genDiffExpr(r, 2))
			case 4: // DISTINCT + expression projection
				sql = fmt.Sprintf("SELECT DISTINCT %s FROM t ORDER BY 1 LIMIT 20",
					genDiffExpr(r, 2))
			case 5: // multi-batch filter + projection + expression sort keys
				sql = fmt.Sprintf("SELECT g, h, %s FROM big WHERE %s ORDER BY %s, h LIMIT 600",
					genBigExpr(r, 2), genBigExpr(r, 2), genBigExpr(r, 1))
			case 6: // multi-batch grouping with NULL group keys
				sql = fmt.Sprintf("SELECT g, COUNT(*), SUM(%s), MAX(h) FROM big WHERE %s GROUP BY g ORDER BY g",
					genBigExpr(r, 2), genBigExpr(r, 2))
			case 7: // multi-batch probe side of a hash join
				sql = fmt.Sprintf("SELECT a, h FROM t, big WHERE a = g AND %s ORDER BY a, h LIMIT 500",
					genBigExpr(r, 2))
			case 8: // IN-subquery through the native batch kernel: scalar and
				// tuple left sides, uncorrelated (memoized set) and NOT'd,
				// over a multi-batch outer relation
				if i%20 < 10 {
					sql = fmt.Sprintf("SELECT g, h FROM big WHERE g IN (SELECT k FROM u WHERE v < %d) AND %s ORDER BY h LIMIT 400",
						r.Intn(40), genBigExpr(r, 1))
				} else {
					sql = fmt.Sprintf("SELECT a, b FROM t WHERE (a, b) NOT IN (SELECT k, v FROM u WHERE v < %d) ORDER BY a, b, s, f",
						r.Intn(20))
				}
			case 9: // EXISTS / NOT EXISTS: correlated per-row and uncorrelated
				if i%20 < 10 {
					sql = fmt.Sprintf("SELECT a, b FROM t WHERE EXISTS (SELECT 1 FROM u WHERE k = a AND v > %d) ORDER BY a, b, s, f",
						r.Intn(30))
				} else {
					sql = fmt.Sprintf("SELECT g FROM big WHERE NOT EXISTS (SELECT 1 FROM u WHERE v = %d) AND %s ORDER BY h LIMIT 300",
						r.Intn(60), genBigExpr(r, 1))
				}
			}
			ir, cr, ierr, cerr := runBothPaths(db, sql)
			if (ierr == nil) != (cerr == nil) {
				t.Fatalf("mode %s query %q: interpreter err %v, compiled err %v", mode, sql, ierr, cerr)
			}
			if ierr != nil {
				if ierr.Error() != cerr.Error() {
					t.Fatalf("mode %s query %q: error mismatch:\n  interp:   %v\n  compiled: %v", mode, sql, ierr, cerr)
				}
				continue
			}
			if !sameResult(ir, cr) {
				t.Fatalf("mode %s query %q: result mismatch:\n  interp:   %v rows\n  compiled: %v rows", mode, sql, ir.Rows, cr.Rows)
			}
		}
		db.SetCompileExprs(true)
	}
}

// TestRecursiveUDFCompiledParity pins the fix for argument clobbering in
// recursive UDFs: a call site's reused argv slice must not serve as the
// enclosing call's parameter frame while a nested call overwrites it.
func TestRecursiveUDFCompiledParity(t *testing.T) {
	for _, mode := range []Mode{ModePostgres, ModeSystemC} {
		db := Open(mode)
		if _, err := db.ExecScript(`
			CREATE TABLE one (x INTEGER);
			CREATE FUNCTION f (INTEGER, INTEGER) RETURNS INTEGER
				AS 'SELECT CASE WHEN $1 <= 0 THEN $2 ELSE f($2 - 1, $1) END FROM one'
				LANGUAGE SQL IMMUTABLE`); err != nil {
			t.Fatal(err)
		}
		db.Table("one").AppendRow([]sqltypes.Value{sqltypes.NewInt(1)})
		ir, cr, ierr, cerr := runBothPaths(db, "SELECT f(2, 5) FROM one")
		if ierr != nil || cerr != nil {
			t.Fatalf("mode %s: errors %v / %v", mode, ierr, cerr)
		}
		if !sameResult(ir, cr) {
			t.Fatalf("mode %s: interpreter %v, compiled %v", mode, ir.Rows, cr.Rows)
		}
		if got := cr.Rows[0][0].I; got != 3 {
			t.Fatalf("mode %s: f(2,5) = %d, want 3", mode, got)
		}
	}
}

// TestCompiledInListLargeInts pins the fix for hash-key collisions in the
// compiled literal IN set: integers beyond 2^53 share float-encoded keys,
// so membership must be confirmed with exact equality.
func TestCompiledInListLargeInts(t *testing.T) {
	db := Open(ModePostgres)
	if _, err := db.ExecSQL("CREATE TABLE big (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	db.Table("big").AppendRow([]sqltypes.Value{sqltypes.NewInt(9007199254740993)}) // 2^53 + 1
	sql := "SELECT a FROM big WHERE a IN (9007199254740992)"                       // 2^53
	ir, cr, ierr, cerr := runBothPaths(db, sql)
	if ierr != nil || cerr != nil {
		t.Fatalf("errors %v / %v", ierr, cerr)
	}
	if !sameResult(ir, cr) {
		t.Fatalf("interpreter %d rows, compiled %d rows", len(ir.Rows), len(cr.Rows))
	}
	if len(cr.Rows) != 0 {
		t.Fatalf("2^53+1 IN (2^53) matched: %v", cr.Rows)
	}
}
