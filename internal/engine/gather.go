package engine

// Deterministic gather: combine several independent cursors into one Rows.
// This is the merge side of the sharding layer's scatter/gather — each part
// is a cursor over one shard's result, and the gather must be byte-stable:
// MergeRows performs an ordered k-way merge under the statement's ORDER BY
// keys (ties broken by part rank, so the output never depends on goroutine
// scheduling); ConcatRows emits parts whole, in rank order.
//
// Each part is drained by its own feeder goroutine so shards produce rows
// concurrently, but every row crosses the goroutine boundary through a
// bounded channel and is chosen by the single consumer — ordering decisions
// never race. Feeders copy rows before sending (cursor rows may be reused
// by the engine between Next calls) and own their cursor's Close; closing
// the gathered Rows closes the done channel and then drains every feeder
// channel, so by the time Close returns all shard cursors are closed and
// their spill files released — a LIMIT short-circuit or an early Close
// cancels in-flight shard work synchronously.

import (
	"mtbase/internal/sqltypes"
)

// MergeKey names one ORDER BY key of a gathered result by output column
// position. Comparison follows the engine's sort order exactly:
// NULLs first, descending negated (NULLs last under DESC).
type MergeKey struct {
	Col  int
	Desc bool
}

// feedChunk is one hop across the feeder boundary: a run of copied rows,
// plus the cursor's terminal error on the final chunk.
type feedChunk struct {
	rows [][]sqltypes.Value
	err  error
}

// feederChunk bounds rows per channel hop; feederDepth bounds buffered
// chunks per part, so a fast shard cannot run unboundedly ahead of the
// consumer.
const (
	feederChunk = 64
	feederDepth = 4
)

// feeder drains one part cursor on its own goroutine. The consumer side
// (fill/next) owns buf, pos, eof and err; the goroutine only sends.
type feeder struct {
	ch  chan feedChunk
	buf [][]sqltypes.Value
	pos int
	eof bool
	err error
}

func startFeeder(r *Rows, done <-chan struct{}) *feeder {
	f := &feeder{ch: make(chan feedChunk, feederDepth)}
	go func() {
		defer close(f.ch) // runs after Close: channel closure implies cursor+spills released
		defer r.Close()
		rows := make([][]sqltypes.Value, 0, feederChunk)
		send := func(c feedChunk) bool {
			select {
			case f.ch <- c:
				return true
			case <-done:
				return false
			}
		}
		for r.Next() {
			cp := make([]sqltypes.Value, len(r.Row()))
			copy(cp, r.Row())
			rows = append(rows, cp)
			if len(rows) == feederChunk {
				if !send(feedChunk{rows: rows}) {
					return
				}
				rows = make([][]sqltypes.Value, 0, feederChunk)
			}
		}
		send(feedChunk{rows: rows, err: r.Err()})
	}()
	return f
}

// fill ensures the feeder's head row is available, blocking on the channel
// as needed. It reports false on exhaustion or error (f.err set). A chunk
// carrying an error surfaces the error and discards its rows: the gathered
// statement failed, partial output would be nondeterministic.
func (f *feeder) fill() bool {
	for !f.eof && f.pos >= len(f.buf) {
		c, ok := <-f.ch
		if !ok {
			f.eof = true
			break
		}
		if c.err != nil {
			f.err = c.err
			f.eof = true
			break
		}
		f.buf, f.pos = c.rows, 0
	}
	return !f.eof && f.pos < len(f.buf)
}

// gatherSrc is the state shared by both gather shapes: the feeders in part
// rank order, the cross-part LIMIT and the shutdown plumbing.
type gatherSrc struct {
	feeders []*feeder
	done    chan struct{}
	limit   int64 // -1: unlimited
	emitted int64
	closed  bool
}

func (g *gatherSrc) limited() bool { return g.limit >= 0 && g.emitted >= g.limit }

// close cancels every feeder and waits for each to finish: after it
// returns, all part cursors are closed and their spill files gone.
func (g *gatherSrc) close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.done)
	for _, f := range g.feeders {
		for range f.ch {
		}
	}
}

// concatSrc emits each part whole, in rank order.
type concatSrc struct {
	gatherSrc
	idx int
}

func (c *concatSrc) next() ([]sqltypes.Value, error) {
	if c.limited() {
		return nil, nil
	}
	for c.idx < len(c.feeders) {
		f := c.feeders[c.idx]
		if f.fill() {
			row := f.buf[f.pos]
			f.pos++
			c.emitted++
			return row, nil
		}
		if f.err != nil {
			return nil, f.err
		}
		c.idx++
	}
	return nil, nil
}

// kwayMergeSrc performs the ordered k-way merge. Each call compares the head
// row of every live part under the merge keys and emits the least; ties go
// to the lowest part rank, making the interleaving deterministic.
type kwayMergeSrc struct {
	gatherSrc
	keys []MergeKey
}

func (m *kwayMergeSrc) next() ([]sqltypes.Value, error) {
	if m.limited() {
		return nil, nil
	}
	best := -1
	for i, f := range m.feeders {
		if !f.fill() {
			if f.err != nil {
				return nil, f.err
			}
			continue
		}
		if best < 0 || m.less(f, m.feeders[best]) {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	f := m.feeders[best]
	row := f.buf[f.pos]
	f.pos++
	m.emitted++
	return row, nil
}

// less orders two head rows under the merge keys with the engine's sort
// comparator (compareNullsFirst, negated on Desc). Equal keys return
// false, so the caller's rank-order scan keeps the earlier part.
func (m *kwayMergeSrc) less(a, b *feeder) bool {
	ra, rb := a.buf[a.pos], b.buf[b.pos]
	for _, k := range m.keys {
		c := compareNullsFirst(ra[k.Col], rb[k.Col])
		if k.Desc {
			c = -c
		}
		if c != 0 {
			return c < 0
		}
	}
	return false
}

// ConcatRows gathers parts into one cursor in stable part-rank order:
// every row of parts[0], then every row of parts[1], and so on. limit < 0
// means no cross-part limit; otherwise iteration stops after limit rows
// and closing the cursor cancels the remaining parts.
func ConcatRows(cols []string, limit int64, parts ...*Rows) *Rows {
	src := &concatSrc{gatherSrc: newGatherSrc(limit, parts)}
	return &Rows{cols: cols, src: src}
}

// MergeRows gathers sorted parts into one globally sorted cursor by
// ordered k-way merge under keys. Every part must already be sorted under
// the same keys (each shard ran the same ORDER BY); ties across parts are
// broken by part rank. limit < 0 means no cross-part limit.
func MergeRows(cols []string, keys []MergeKey, limit int64, parts ...*Rows) *Rows {
	src := &kwayMergeSrc{gatherSrc: newGatherSrc(limit, parts), keys: keys}
	return &Rows{cols: cols, src: src}
}

func newGatherSrc(limit int64, parts []*Rows) gatherSrc {
	done := make(chan struct{})
	feeders := make([]*feeder, len(parts))
	for i, p := range parts {
		feeders[i] = startFeeder(p, done)
	}
	return gatherSrc{feeders: feeders, done: done, limit: limit}
}

// MaterializedRows wraps precomputed rows as a cursor. The sharding
// layer's partial-aggregation gather folds shard partials on a coordinator
// table and hands the (small) folded result back through the standard
// cursor surface.
func MaterializedRows(cols []string, rows [][]sqltypes.Value) *Rows {
	return &Rows{cols: cols, buf: rows}
}
